#ifndef FAIRRANK_DATA_TABLE_H_
#define FAIRRANK_DATA_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/column.h"
#include "data/schema.h"

namespace fairrank {

/// In-memory columnar table: a Schema plus one Column per attribute. This is
/// the dataset abstraction every other module works against — the worker
/// generator fills one, scoring functions read observed columns from one,
/// and the partition search groups its rows by protected columns.
///
/// Partitions never copy rows; they hold row-index vectors referencing a
/// shared const Table.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t index) const { return columns_[index]; }

  /// Appends one row. `cells` must have one entry per schema attribute.
  /// Categorical cells may be given as a category label (string) or as an
  /// in-range integer code; numeric cells as int64 or double. Fails with
  /// InvalidArgument / OutOfRange / NotFound on mismatches; on failure the
  /// table is left unchanged.
  Status AppendRow(const std::vector<Cell>& cells);

  /// Reserves storage for `n` rows in every column.
  void Reserve(size_t n);

  /// Group index of `row` under protected attribute `attr_index`
  /// (category code or numeric bucket). See AttributeSpec::GroupIndexOf*.
  int GroupIndex(size_t row, size_t attr_index) const;

  /// Numeric view of a cell (code, integer, or real as double).
  double ValueAsDouble(size_t row, size_t attr_index) const {
    return columns_[attr_index].AsDouble(row);
  }

  /// Renders a cell for display: category label, integer, or real.
  std::string CellToString(size_t row, size_t attr_index) const;

 private:
  /// Validates and converts one cell; does not mutate the table.
  Status ConvertCell(const Cell& cell, const AttributeSpec& spec,
                     Cell* converted) const;

  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace fairrank

#endif  // FAIRRANK_DATA_TABLE_H_
