#include "data/table.h"

#include <cmath>

#include "common/str_util.h"

namespace fairrank {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_attributes());
  for (size_t i = 0; i < schema_.num_attributes(); ++i) {
    columns_.emplace_back(schema_.attribute(i).kind());
  }
}

Status Table::ConvertCell(const Cell& cell, const AttributeSpec& spec,
                          Cell* converted) const {
  switch (spec.kind()) {
    case AttributeKind::kCategorical: {
      int code = -1;
      if (const std::string* label = std::get_if<std::string>(&cell)) {
        FAIRRANK_ASSIGN_OR_RETURN(code, spec.CodeOf(*label));
      } else if (const int64_t* v = std::get_if<int64_t>(&cell)) {
        if (*v < 0 || *v >= spec.num_groups()) {
          return Status::OutOfRange("code " + std::to_string(*v) +
                                    " out of range for categorical '" +
                                    spec.name() + "'");
        }
        code = static_cast<int>(*v);
      } else {
        return Status::InvalidArgument(
            "real cell given for categorical attribute '" + spec.name() + "'");
      }
      *converted = static_cast<int64_t>(code);
      return Status::OK();
    }
    case AttributeKind::kInteger: {
      int64_t value = 0;
      if (const int64_t* v = std::get_if<int64_t>(&cell)) {
        value = *v;
      } else if (const std::string* s = std::get_if<std::string>(&cell)) {
        if (!ParseInt64(*s, &value)) {
          return Status::InvalidArgument("cannot parse '" + *s +
                                         "' as integer for attribute '" +
                                         spec.name() + "'");
        }
      } else {
        return Status::InvalidArgument(
            "real cell given for integer attribute '" + spec.name() + "'");
      }
      *converted = value;
      return Status::OK();
    }
    case AttributeKind::kReal: {
      double value = 0.0;
      if (const double* v = std::get_if<double>(&cell)) {
        value = *v;
      } else if (const int64_t* v = std::get_if<int64_t>(&cell)) {
        value = static_cast<double>(*v);
      } else {
        const std::string& s = std::get<std::string>(cell);
        if (!ParseDouble(s, &value)) {
          return Status::InvalidArgument("cannot parse '" + s +
                                         "' as real for attribute '" +
                                         spec.name() + "'");
        }
      }
      // NaN/inf would make bucketization undefined behaviour downstream.
      if (!std::isfinite(value)) {
        return Status::InvalidArgument("non-finite value for attribute '" +
                                       spec.name() + "'");
      }
      *converted = value;
      return Status::OK();
    }
  }
  return Status::Internal("unreachable attribute kind");
}

Status Table::AppendRow(const std::vector<Cell>& cells) {
  if (cells.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(cells.size()) + " cells, schema expects " +
        std::to_string(schema_.num_attributes()));
  }
  // Two-phase append: validate/convert everything first so a mid-row failure
  // cannot leave columns with unequal lengths.
  std::vector<Cell> converted(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    FAIRRANK_RETURN_NOT_OK(
        ConvertCell(cells[i], schema_.attribute(i), &converted[i]));
  }
  for (size_t i = 0; i < converted.size(); ++i) {
    switch (schema_.attribute(i).kind()) {
      case AttributeKind::kCategorical:
        columns_[i].AppendCode(
            static_cast<int32_t>(std::get<int64_t>(converted[i])));
        break;
      case AttributeKind::kInteger:
        columns_[i].AppendInt(std::get<int64_t>(converted[i]));
        break;
      case AttributeKind::kReal:
        columns_[i].AppendReal(std::get<double>(converted[i]));
        break;
    }
  }
  ++num_rows_;
  return Status::OK();
}

void Table::Reserve(size_t n) {
  for (Column& c : columns_) c.Reserve(n);
}

int Table::GroupIndex(size_t row, size_t attr_index) const {
  const AttributeSpec& spec = schema_.attribute(attr_index);
  const Column& col = columns_[attr_index];
  switch (spec.kind()) {
    case AttributeKind::kCategorical:
      return spec.GroupIndexOfInt(col.CodeAt(row));
    case AttributeKind::kInteger:
      return spec.GroupIndexOfInt(col.IntAt(row));
    case AttributeKind::kReal:
      return spec.GroupIndexOfReal(col.RealAt(row));
  }
  return 0;
}

std::string Table::CellToString(size_t row, size_t attr_index) const {
  const AttributeSpec& spec = schema_.attribute(attr_index);
  const Column& col = columns_[attr_index];
  switch (spec.kind()) {
    case AttributeKind::kCategorical:
      return spec.categories()[col.CodeAt(row)];
    case AttributeKind::kInteger:
      return std::to_string(col.IntAt(row));
    case AttributeKind::kReal:
      return FormatDouble(col.RealAt(row), 4);
  }
  return "";
}

}  // namespace fairrank
