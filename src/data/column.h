#ifndef FAIRRANK_DATA_COLUMN_H_
#define FAIRRANK_DATA_COLUMN_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "data/attribute.h"

namespace fairrank {

/// One raw cell value on its way into a Table: an integer, a real, or a
/// category label that will be resolved to a code against the schema.
using Cell = std::variant<int64_t, double, std::string>;

/// Columnar storage for one attribute. The physical representation depends
/// on the attribute kind:
///   categorical -> int32 category codes
///   integer     -> int64 values
///   real        -> double values
class Column {
 public:
  explicit Column(AttributeKind kind);

  AttributeKind kind() const { return kind_; }
  size_t size() const;

  /// Appenders. The appender must match the column kind (asserted).
  void AppendCode(int32_t code);
  void AppendInt(int64_t value);
  void AppendReal(double value);

  /// Typed accessors. The accessor must match the column kind (asserted).
  int32_t CodeAt(size_t row) const {
    assert(kind_ == AttributeKind::kCategorical);
    return codes_[row];
  }
  int64_t IntAt(size_t row) const {
    assert(kind_ == AttributeKind::kInteger);
    return ints_[row];
  }
  double RealAt(size_t row) const {
    assert(kind_ == AttributeKind::kReal);
    return reals_[row];
  }

  /// Kind-independent numeric view of a cell (category code, integer, or
  /// real), used by scoring functions and group mapping.
  double AsDouble(size_t row) const;

  /// Reserves storage for `n` rows.
  void Reserve(size_t n);

 private:
  AttributeKind kind_;
  std::vector<int32_t> codes_;
  std::vector<int64_t> ints_;
  std::vector<double> reals_;
};

}  // namespace fairrank

#endif  // FAIRRANK_DATA_COLUMN_H_
