#include "data/schema.h"

namespace fairrank {

Status Schema::AddAttribute(AttributeSpec spec) {
  FAIRRANK_RETURN_NOT_OK(spec.Validate());
  if (index_by_name_.count(spec.name()) > 0) {
    return Status::AlreadyExists("attribute '" + spec.name() +
                                 "' already in schema");
  }
  index_by_name_.emplace(spec.name(), attributes_.size());
  attributes_.push_back(std::move(spec));
  return Status::OK();
}

StatusOr<size_t> Schema::FindIndex(const std::string& name) const {
  auto it = index_by_name_.find(name);
  if (it == index_by_name_.end()) {
    return Status::NotFound("no attribute named '" + name + "'");
  }
  return it->second;
}

std::vector<size_t> Schema::ProtectedIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].is_protected()) out.push_back(i);
  }
  return out;
}

std::vector<size_t> Schema::ObservedIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].is_observed()) out.push_back(i);
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (const AttributeSpec& a : attributes_) {
    out += a.name();
    out += " (";
    out += AttributeKindToString(a.kind());
    out += ", ";
    out += AttributeRoleToString(a.role());
    out += ", ";
    out += std::to_string(a.num_groups());
    out += " groups)\n";
  }
  return out;
}

}  // namespace fairrank
