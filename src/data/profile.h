#ifndef FAIRRANK_DATA_PROFILE_H_
#define FAIRRANK_DATA_PROFILE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace fairrank {

/// Per-group occupancy of one attribute.
struct GroupCount {
  std::string label;
  size_t count = 0;
  double fraction = 0.0;
};

/// Profile of one attribute: group occupancy plus numeric summaries where
/// applicable.
struct AttributeProfile {
  std::string name;
  AttributeKind kind = AttributeKind::kCategorical;
  AttributeRole role = AttributeRole::kOther;
  std::vector<GroupCount> groups;  ///< In group-index order; empty groups kept.
  // Numeric attributes only:
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Whole-table profile.
struct TableProfile {
  size_t num_rows = 0;
  std::vector<AttributeProfile> attributes;
};

/// Summarizes every attribute of `table`: group counts (category or bucket
/// occupancy) and, for numeric attributes, min/max/mean/stddev. Fails only
/// on an empty table.
StatusOr<TableProfile> ProfileTable(const Table& table);

/// Association between one protected attribute's groups and a score vector,
/// the cheap single-attribute screen that motivates the full subgroup
/// search: a strong single-attribute association will be found by any
/// method; the partition search exists for the combinations this misses.
struct ScoreAssociation {
  std::string attribute;
  /// Correlation ratio eta^2 in [0, 1]: fraction of score variance
  /// explained by the group assignment (ANOVA between/total).
  double eta_squared = 0.0;
  /// Largest |group mean - overall mean| across groups.
  double max_mean_gap = 0.0;
};

/// Computes eta^2 and the max mean gap for every protected attribute,
/// sorted by descending eta^2. `scores` must have one entry per row.
StatusOr<std::vector<ScoreAssociation>> ScoreAssociations(
    const Table& table, const std::vector<double>& scores);

/// Human-readable rendering of a table profile.
std::string FormatTableProfile(const TableProfile& profile);

}  // namespace fairrank

#endif  // FAIRRANK_DATA_PROFILE_H_
