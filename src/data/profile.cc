#include "data/profile.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace fairrank {

StatusOr<TableProfile> ProfileTable(const Table& table) {
  if (table.num_rows() == 0) {
    return Status::FailedPrecondition("cannot profile an empty table");
  }
  TableProfile profile;
  profile.num_rows = table.num_rows();
  const Schema& schema = table.schema();
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const AttributeSpec& spec = schema.attribute(a);
    AttributeProfile ap;
    ap.name = spec.name();
    ap.kind = spec.kind();
    ap.role = spec.role();

    std::vector<size_t> counts(static_cast<size_t>(spec.num_groups()), 0);
    double sum = 0.0;
    double sq = 0.0;
    double mn = 0.0;
    double mx = 0.0;
    for (size_t row = 0; row < table.num_rows(); ++row) {
      ++counts[static_cast<size_t>(table.GroupIndex(row, a))];
      if (spec.kind() != AttributeKind::kCategorical) {
        double v = table.ValueAsDouble(row, a);
        if (row == 0) {
          mn = mx = v;
        } else {
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
        sum += v;
        sq += v * v;
      }
    }
    for (size_t g = 0; g < counts.size(); ++g) {
      GroupCount gc;
      gc.label = spec.GroupLabel(static_cast<int>(g));
      gc.count = counts[g];
      gc.fraction =
          static_cast<double>(counts[g]) / static_cast<double>(table.num_rows());
      ap.groups.push_back(std::move(gc));
    }
    if (spec.kind() != AttributeKind::kCategorical) {
      double n = static_cast<double>(table.num_rows());
      ap.min = mn;
      ap.max = mx;
      ap.mean = sum / n;
      double variance = std::max(0.0, sq / n - ap.mean * ap.mean);
      ap.stddev = std::sqrt(variance);
    }
    profile.attributes.push_back(std::move(ap));
  }
  return profile;
}

StatusOr<std::vector<ScoreAssociation>> ScoreAssociations(
    const Table& table, const std::vector<double>& scores) {
  if (scores.size() != table.num_rows()) {
    return Status::InvalidArgument("scores/table size mismatch");
  }
  if (table.num_rows() == 0) {
    return Status::FailedPrecondition("empty table");
  }
  const double n = static_cast<double>(scores.size());
  double overall_mean = 0.0;
  for (double s : scores) overall_mean += s;
  overall_mean /= n;
  double total_ss = 0.0;
  for (double s : scores) {
    total_ss += (s - overall_mean) * (s - overall_mean);
  }

  std::vector<ScoreAssociation> associations;
  for (size_t a : table.schema().ProtectedIndices()) {
    const AttributeSpec& spec = table.schema().attribute(a);
    std::vector<double> group_sum(static_cast<size_t>(spec.num_groups()), 0.0);
    std::vector<size_t> group_count(static_cast<size_t>(spec.num_groups()), 0);
    for (size_t row = 0; row < table.num_rows(); ++row) {
      size_t g = static_cast<size_t>(table.GroupIndex(row, a));
      group_sum[g] += scores[row];
      ++group_count[g];
    }
    double between_ss = 0.0;
    double max_gap = 0.0;
    for (size_t g = 0; g < group_sum.size(); ++g) {
      if (group_count[g] == 0) continue;
      double mean = group_sum[g] / static_cast<double>(group_count[g]);
      between_ss += static_cast<double>(group_count[g]) *
                    (mean - overall_mean) * (mean - overall_mean);
      max_gap = std::max(max_gap, std::abs(mean - overall_mean));
    }
    ScoreAssociation assoc;
    assoc.attribute = spec.name();
    assoc.eta_squared = (total_ss > 0.0) ? between_ss / total_ss : 0.0;
    assoc.max_mean_gap = max_gap;
    associations.push_back(std::move(assoc));
  }
  std::stable_sort(associations.begin(), associations.end(),
                   [](const ScoreAssociation& x, const ScoreAssociation& y) {
                     return x.eta_squared > y.eta_squared;
                   });
  return associations;
}

std::string FormatTableProfile(const TableProfile& profile) {
  std::string out =
      "rows: " + std::to_string(profile.num_rows) + "\n";
  for (const AttributeProfile& ap : profile.attributes) {
    out += ap.name;
    out += " (";
    out += AttributeKindToString(ap.kind);
    out += ", ";
    out += AttributeRoleToString(ap.role);
    out += ")";
    if (ap.kind != AttributeKind::kCategorical) {
      out += "  min " + FormatDouble(ap.min, 2) + "  max " +
             FormatDouble(ap.max, 2) + "  mean " + FormatDouble(ap.mean, 2) +
             "  stddev " + FormatDouble(ap.stddev, 2);
    }
    out += "\n";
    for (const GroupCount& g : ap.groups) {
      out += "  " + g.label + ": " + std::to_string(g.count) + " (" +
             FormatDouble(100.0 * g.fraction, 1) + "%)\n";
    }
  }
  return out;
}

}  // namespace fairrank
