#ifndef FAIRRANK_DATA_CSV_H_
#define FAIRRANK_DATA_CSV_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace fairrank {

/// Options for CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// First row is a header naming the columns. Columns are matched to schema
  /// attributes by name; extra CSV columns are ignored, and every schema
  /// attribute must be present.
  bool has_header = true;
  /// Skip blank lines instead of failing on them.
  bool skip_blank_lines = true;
  /// Maximum number of data rows to accept; 0 = unlimited. Exceeding it
  /// fails with ResourceExhausted — a guard against unbounded memory when
  /// reading untrusted or accidentally huge files.
  size_t max_rows = 0;
  /// Maximum bytes in a single parsed field; 0 = unlimited. Exceeding it
  /// fails with ResourceExhausted (e.g. an unterminated quote swallowing
  /// the rest of a large line).
  size_t max_field_bytes = 0;
};

/// Parses one CSV record with RFC 4180 quoting (quoted fields may contain the
/// delimiter; doubled quotes escape a quote). Fields longer than
/// `max_field_bytes` (0 = unlimited) fail with ResourceExhausted. Exposed
/// for testing.
StatusOr<std::vector<std::string>> ParseCsvRecord(const std::string& line,
                                                  char delimiter,
                                                  size_t max_field_bytes = 0);

/// Reads a table from a CSV stream against `schema`. With a header, schema
/// attributes are matched by column name; without one, the first
/// schema.num_attributes() columns are used positionally.
///
/// Hardening: a UTF-8 byte-order mark on the first line is stripped; every
/// data row must have exactly as many fields as the header (first data row
/// when there is no header) — ragged rows fail with InvalidArgument rather
/// than silently truncating or misaligning columns.
StatusOr<Table> ReadCsv(std::istream& in, const Schema& schema,
                        const CsvOptions& options = CsvOptions());

/// Reads a table from a CSV file. See ReadCsv.
StatusOr<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                            const CsvOptions& options = CsvOptions());

/// Writes `table` as CSV (header + one record per row); categorical cells
/// are written as labels. Fields containing the delimiter, quotes or
/// newlines are quoted.
Status WriteCsv(std::ostream& out, const Table& table,
                const CsvOptions& options = CsvOptions());

/// Writes `table` to a CSV file. See WriteCsv.
Status WriteCsvFile(const std::string& path, const Table& table,
                    const CsvOptions& options = CsvOptions());

}  // namespace fairrank

#endif  // FAIRRANK_DATA_CSV_H_
