#ifndef FAIRRANK_DATA_SCHEMA_H_
#define FAIRRANK_DATA_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/attribute.h"

namespace fairrank {

/// Ordered collection of attribute specs with unique names. Immutable once
/// built (build with AddAttribute, then hand to a Table).
class Schema {
 public:
  Schema() = default;

  /// Appends an attribute. Fails with AlreadyExists on a duplicate name and
  /// with InvalidArgument if the spec itself is inconsistent.
  Status AddAttribute(AttributeSpec spec);

  size_t num_attributes() const { return attributes_.size(); }
  const AttributeSpec& attribute(size_t index) const {
    return attributes_[index];
  }

  /// Index of the attribute with the given name, or NotFound.
  StatusOr<size_t> FindIndex(const std::string& name) const;

  /// Indices of all protected attributes, in schema order.
  std::vector<size_t> ProtectedIndices() const;

  /// Indices of all observed attributes, in schema order.
  std::vector<size_t> ObservedIndices() const;

  /// One-line-per-attribute description, for reports and debugging.
  std::string ToString() const;

 private:
  std::vector<AttributeSpec> attributes_;
  std::unordered_map<std::string, size_t> index_by_name_;
};

}  // namespace fairrank

#endif  // FAIRRANK_DATA_SCHEMA_H_
