#include "data/column.h"

namespace fairrank {

Column::Column(AttributeKind kind) : kind_(kind) {}

size_t Column::size() const {
  switch (kind_) {
    case AttributeKind::kCategorical:
      return codes_.size();
    case AttributeKind::kInteger:
      return ints_.size();
    case AttributeKind::kReal:
      return reals_.size();
  }
  return 0;
}

void Column::AppendCode(int32_t code) {
  assert(kind_ == AttributeKind::kCategorical);
  codes_.push_back(code);
}

void Column::AppendInt(int64_t value) {
  assert(kind_ == AttributeKind::kInteger);
  ints_.push_back(value);
}

void Column::AppendReal(double value) {
  assert(kind_ == AttributeKind::kReal);
  reals_.push_back(value);
}

double Column::AsDouble(size_t row) const {
  switch (kind_) {
    case AttributeKind::kCategorical:
      return static_cast<double>(codes_[row]);
    case AttributeKind::kInteger:
      return static_cast<double>(ints_[row]);
    case AttributeKind::kReal:
      return reals_[row];
  }
  return 0.0;
}

void Column::Reserve(size_t n) {
  switch (kind_) {
    case AttributeKind::kCategorical:
      codes_.reserve(n);
      break;
    case AttributeKind::kInteger:
      ints_.reserve(n);
      break;
    case AttributeKind::kReal:
      reals_.reserve(n);
      break;
  }
}

}  // namespace fairrank
