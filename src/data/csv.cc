#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace fairrank {

StatusOr<std::vector<std::string>> ParseCsvRecord(const std::string& line,
                                                  char delimiter,
                                                  size_t max_field_bytes) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    if (max_field_bytes != 0 && current.size() > max_field_bytes) {
      return Status::ResourceExhausted(
          "CSV field exceeds max_field_bytes = " +
          std::to_string(max_field_bytes));
    }
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      if (!current.empty()) {
        return Status::InvalidArgument(
            "unexpected quote inside unquoted field: " + line);
      }
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    if (c == '\r' && i + 1 == line.size()) {
      ++i;  // Tolerate CRLF line endings.
      continue;
    }
    current.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field: " + line);
  }
  if (max_field_bytes != 0 && current.size() > max_field_bytes) {
    return Status::ResourceExhausted("CSV field exceeds max_field_bytes = " +
                                     std::to_string(max_field_bytes));
  }
  fields.push_back(std::move(current));
  return fields;
}

namespace {

/// Strips a UTF-8 byte-order mark, which some spreadsheet exports prepend;
/// left in place it would corrupt the first header name.
void StripUtf8Bom(std::string* line) {
  if (line->size() >= 3 && (*line)[0] == '\xEF' && (*line)[1] == '\xBB' &&
      (*line)[2] == '\xBF') {
    line->erase(0, 3);
  }
}

}  // namespace

namespace {

std::string QuoteIfNeeded(const std::string& field, char delimiter) {
  bool needs_quoting = false;
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') {
      needs_quoting = true;
      break;
    }
  }
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

StatusOr<Table> ReadCsv(std::istream& in, const Schema& schema,
                        const CsvOptions& options) {
  Table table(schema);
  std::string line;
  size_t line_number = 0;

  // column_of_attr[i] = CSV column index feeding schema attribute i.
  std::vector<size_t> column_of_attr(schema.num_attributes());
  bool mapped = false;

  // Expected field count of every data row (ragged-row check): the header's
  // width, or the first data row's width when there is no header.
  size_t expected_fields = 0;
  bool width_known = false;

  if (options.has_header) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("CSV stream empty: missing header");
    }
    ++line_number;
    StripUtf8Bom(&line);
    FAIRRANK_ASSIGN_OR_RETURN(
        std::vector<std::string> header,
        ParseCsvRecord(line, options.delimiter, options.max_field_bytes));
    expected_fields = header.size();
    width_known = true;
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const std::string& want = schema.attribute(a).name();
      bool found = false;
      for (size_t c = 0; c < header.size(); ++c) {
        if (std::string(Trim(header[c])) == want) {
          column_of_attr[a] = c;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::NotFound("CSV header has no column named '" + want +
                                "'");
      }
    }
    mapped = true;
  } else {
    for (size_t a = 0; a < schema.num_attributes(); ++a) column_of_attr[a] = a;
    mapped = true;
  }
  (void)mapped;

  bool first_data_line = true;
  while (std::getline(in, line)) {
    ++line_number;
    if (options.skip_blank_lines && Trim(line).empty()) continue;
    if (first_data_line) {
      if (!options.has_header) StripUtf8Bom(&line);
      first_data_line = false;
    }
    FAIRRANK_ASSIGN_OR_RETURN(
        std::vector<std::string> fields,
        ParseCsvRecord(line, options.delimiter, options.max_field_bytes));
    if (!width_known) {
      expected_fields = fields.size();
      width_known = true;
    } else if (fields.size() != expected_fields) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": ragged row with " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(expected_fields));
    }
    if (options.max_rows != 0 && table.num_rows() >= options.max_rows) {
      return Status::ResourceExhausted(
          "CSV exceeds max_rows = " + std::to_string(options.max_rows));
    }
    std::vector<Cell> cells;
    cells.reserve(schema.num_attributes());
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      size_t c = column_of_attr[a];
      if (c >= fields.size()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + ": only " +
            std::to_string(fields.size()) + " fields, need column " +
            std::to_string(c + 1) + " for attribute '" +
            schema.attribute(a).name() + "'");
      }
      cells.emplace_back(std::string(Trim(fields[c])));
    }
    Status st = table.AppendRow(cells);
    if (!st.ok()) {
      return Status(st.code(), "line " + std::to_string(line_number) + ": " +
                                   st.message());
    }
  }
  return table;
}

StatusOr<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                            const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return ReadCsv(in, schema, options);
}

Status WriteCsv(std::ostream& out, const Table& table,
                const CsvOptions& options) {
  const Schema& schema = table.schema();
  const std::string delim(1, options.delimiter);
  if (options.has_header) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      if (a > 0) out << delim;
      out << QuoteIfNeeded(schema.attribute(a).name(), options.delimiter);
    }
    out << "\n";
  }
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      if (a > 0) out << delim;
      out << QuoteIfNeeded(table.CellToString(row, a), options.delimiter);
    }
    out << "\n";
  }
  if (!out) return Status::IOError("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const std::string& path, const Table& table,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return WriteCsv(out, table, options);
}

}  // namespace fairrank
