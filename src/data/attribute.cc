#include "data/attribute.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/str_util.h"

namespace fairrank {

const char* AttributeKindToString(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kCategorical:
      return "categorical";
    case AttributeKind::kInteger:
      return "integer";
    case AttributeKind::kReal:
      return "real";
  }
  return "unknown";
}

const char* AttributeRoleToString(AttributeRole role) {
  switch (role) {
    case AttributeRole::kProtected:
      return "protected";
    case AttributeRole::kObserved:
      return "observed";
    case AttributeRole::kOther:
      return "other";
  }
  return "unknown";
}

AttributeSpec AttributeSpec::Categorical(std::string name, AttributeRole role,
                                         std::vector<std::string> categories) {
  AttributeSpec spec;
  spec.name_ = std::move(name);
  spec.kind_ = AttributeKind::kCategorical;
  spec.role_ = role;
  spec.categories_ = std::move(categories);
  return spec;
}

AttributeSpec AttributeSpec::Integer(std::string name, AttributeRole role,
                                     int64_t min, int64_t max,
                                     int num_buckets) {
  AttributeSpec spec;
  spec.name_ = std::move(name);
  spec.kind_ = AttributeKind::kInteger;
  spec.role_ = role;
  spec.min_ = static_cast<double>(min);
  spec.max_ = static_cast<double>(max);
  spec.num_buckets_ = num_buckets;
  return spec;
}

AttributeSpec AttributeSpec::Real(std::string name, AttributeRole role,
                                  double min, double max, int num_buckets) {
  AttributeSpec spec;
  spec.name_ = std::move(name);
  spec.kind_ = AttributeKind::kReal;
  spec.role_ = role;
  spec.min_ = min;
  spec.max_ = max;
  spec.num_buckets_ = num_buckets;
  return spec;
}

int AttributeSpec::num_groups() const {
  if (kind_ == AttributeKind::kCategorical) {
    return static_cast<int>(categories_.size());
  }
  return num_buckets_;
}

Status AttributeSpec::Validate() const {
  if (name_.empty()) {
    return Status::InvalidArgument("attribute has empty name");
  }
  if (kind_ == AttributeKind::kCategorical) {
    if (categories_.empty()) {
      return Status::InvalidArgument("categorical attribute '" + name_ +
                                     "' has no categories");
    }
    std::unordered_set<std::string> seen;
    for (const std::string& c : categories_) {
      if (!seen.insert(c).second) {
        return Status::InvalidArgument("categorical attribute '" + name_ +
                                       "' has duplicate category '" + c + "'");
      }
    }
  } else {
    if (!(min_ < max_)) {
      return Status::InvalidArgument("numeric attribute '" + name_ +
                                     "' has empty range");
    }
    if (num_buckets_ <= 0) {
      return Status::InvalidArgument("numeric attribute '" + name_ +
                                     "' must have a positive bucket count");
    }
  }
  return Status::OK();
}

StatusOr<int> AttributeSpec::CodeOf(const std::string& category) const {
  if (kind_ != AttributeKind::kCategorical) {
    return Status::FailedPrecondition("CodeOf on non-categorical attribute '" +
                                      name_ + "'");
  }
  auto it = std::find(categories_.begin(), categories_.end(), category);
  if (it == categories_.end()) {
    return Status::NotFound("category '" + category +
                            "' not in attribute '" + name_ + "'");
  }
  return static_cast<int>(it - categories_.begin());
}

int AttributeSpec::GroupIndexOfInt(int64_t value) const {
  if (kind_ == AttributeKind::kCategorical) {
    int code = static_cast<int>(value);
    if (code < 0) return 0;
    if (code >= num_groups()) return num_groups() - 1;
    return code;
  }
  return GroupIndexOfReal(static_cast<double>(value));
}

int AttributeSpec::GroupIndexOfReal(double value) const {
  double width = (max_ - min_) / num_buckets_;
  int idx = static_cast<int>(std::floor((value - min_) / width));
  if (idx < 0) return 0;
  if (idx >= num_buckets_) return num_buckets_ - 1;
  return idx;
}

std::string AttributeSpec::GroupLabel(int group_index) const {
  if (kind_ == AttributeKind::kCategorical) {
    if (group_index >= 0 && group_index < num_groups()) {
      return categories_[group_index];
    }
    return "<invalid>";
  }
  double width = (max_ - min_) / num_buckets_;
  double lo = min_ + group_index * width;
  double hi = lo + width;
  const int precision = (kind_ == AttributeKind::kInteger) ? 0 : 2;
  // Built with append rather than chained operator+ — the temporary chain
  // trips GCC 12's -Wrestrict false positive (PR105651) under -Werror.
  std::string label = "[";
  label += FormatDouble(lo, precision);
  label += ",";
  label += FormatDouble(hi, precision);
  label += (group_index == num_buckets_ - 1) ? "]" : ")";
  return label;
}

}  // namespace fairrank
