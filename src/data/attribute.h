#ifndef FAIRRANK_DATA_ATTRIBUTE_H_
#define FAIRRANK_DATA_ATTRIBUTE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fairrank {

/// Physical/logical type of an attribute.
enum class AttributeKind {
  /// Finite set of named categories (e.g. Gender = {Male, Female}).
  kCategorical,
  /// Integer range [min, max], bucketized into equal-width groups for
  /// partitioning (e.g. Year of Birth = [1950, 2009] with 5 buckets).
  kInteger,
  /// Real range [min, max], bucketized into equal-width groups for
  /// partitioning (observed attributes are typically real-valued scores).
  kReal,
};

/// Role of an attribute in the fairness problem (Definition 1 of the paper):
/// protected attributes A define the partitioning space; observed attributes
/// B feed the scoring function.
enum class AttributeRole {
  kProtected,
  kObserved,
  kOther,
};

const char* AttributeKindToString(AttributeKind kind);
const char* AttributeRoleToString(AttributeRole role);

/// Declarative description of one attribute: its name, kind, role, and —
/// crucially for the partition search — how raw values map onto a small set
/// of *groups* (category index or numeric bucket).
///
/// The paper's simulation caps every attribute at <= 5 distinct values; we
/// realize that by bucketizing numeric attributes at schema level. The number
/// of groups of an attribute is the branching factor a split on it produces.
class AttributeSpec {
 public:
  /// Builds a categorical attribute. `categories` must be non-empty and
  /// free of duplicates (checked lazily by Validate()).
  static AttributeSpec Categorical(std::string name, AttributeRole role,
                                   std::vector<std::string> categories);

  /// Builds an integer-range attribute bucketized into `num_buckets`
  /// equal-width groups over [min, max].
  static AttributeSpec Integer(std::string name, AttributeRole role,
                               int64_t min, int64_t max, int num_buckets);

  /// Builds a real-range attribute bucketized into `num_buckets`
  /// equal-width groups over [min, max].
  static AttributeSpec Real(std::string name, AttributeRole role, double min,
                            double max, int num_buckets);

  const std::string& name() const { return name_; }
  AttributeKind kind() const { return kind_; }
  AttributeRole role() const { return role_; }
  bool is_protected() const { return role_ == AttributeRole::kProtected; }
  bool is_observed() const { return role_ == AttributeRole::kObserved; }

  /// Categorical only: the category labels, in code order.
  const std::vector<std::string>& categories() const { return categories_; }

  /// Numeric only: inclusive range bounds.
  double min() const { return min_; }
  double max() const { return max_; }

  /// Number of partition groups a split on this attribute produces.
  int num_groups() const;

  /// Checks internal consistency (non-empty name, valid range, unique
  /// categories, positive bucket count).
  Status Validate() const;

  /// Categorical only: code of a category label, or NotFound.
  StatusOr<int> CodeOf(const std::string& category) const;

  /// Maps a raw value to its group index in [0, num_groups()).
  /// For categorical attributes the value is the category code.
  /// Values outside the declared range are clamped to the edge buckets.
  int GroupIndexOfInt(int64_t value) const;
  int GroupIndexOfReal(double value) const;

  /// Human-readable label of a group: the category name, or the bucket
  /// interval like "[1950,1962)".
  std::string GroupLabel(int group_index) const;

 private:
  AttributeSpec() = default;

  std::string name_;
  AttributeKind kind_ = AttributeKind::kCategorical;
  AttributeRole role_ = AttributeRole::kOther;
  std::vector<std::string> categories_;
  double min_ = 0.0;
  double max_ = 0.0;
  int num_buckets_ = 1;
};

}  // namespace fairrank

#endif  // FAIRRANK_DATA_ATTRIBUTE_H_
