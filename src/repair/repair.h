#ifndef FAIRRANK_REPAIR_REPAIR_H_
#define FAIRRANK_REPAIR_REPAIR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"
#include "fairness/evaluator.h"
#include "fairness/partition.h"

namespace fairrank {

/// Score repair: given the most unfair partitioning an audit found, rewrite
/// scores so the partitions' score distributions (approximately) coincide —
/// the paper lists "repairing bias in the context of ranking" as its next
/// step; these strategies implement the standard distribution-alignment
/// approaches from the fair-ranking literature.
///
/// Implementations take the original scores and return repaired scores of
/// the same length; they never mutate the table.
class RepairStrategy {
 public:
  virtual ~RepairStrategy() = default;

  /// Short stable identifier ("quantile", "affine", ...).
  virtual std::string Name() const = 0;

  /// Produces repaired scores. `partitioning` must be a valid full disjoint
  /// partitioning of the table rows and `scores` must have one entry per
  /// row.
  virtual StatusOr<std::vector<double>> Repair(
      const Table& table, const Partitioning& partitioning,
      const std::vector<double>& scores) const = 0;
};

/// Full quantile normalization: each worker's score is replaced by the
/// pooled (whole-population) quantile of their *within-partition* rank.
/// After repair every partition's score distribution matches the pooled
/// distribution, driving pairwise EMD to ~0 while preserving the ranking
/// *within* each partition.
std::unique_ptr<RepairStrategy> MakeQuantileRepair();

/// Partial quantile repair: linear interpolation
///   repaired = (1 - lambda) * original + lambda * quantile-repaired
/// lambda in [0, 1]; 0 is a no-op, 1 equals MakeQuantileRepair. Lets a
/// platform trade ranking utility against fairness.
std::unique_ptr<RepairStrategy> MakeInterpolationRepair(double lambda);

/// Affine (mean/variance) alignment: per partition, scores are shifted and
/// scaled so the partition mean and standard deviation match the pooled
/// ones, then clamped into [clamp_lo, clamp_hi]. Cheaper but weaker than
/// quantile repair (only two moments aligned).
std::unique_ptr<RepairStrategy> MakeAffineRepair(double clamp_lo = 0.0,
                                                 double clamp_hi = 1.0);

/// Before/after unfairness of a repair on a fixed partitioning.
struct RepairEvaluation {
  double unfairness_before = 0.0;
  double unfairness_after = 0.0;
  /// Mean |repaired - original| over all workers: the utility cost.
  double mean_score_change = 0.0;
  /// Spearman correlation between original and repaired global rankings
  /// (1 = order fully preserved).
  double rank_correlation = 0.0;
  std::vector<double> repaired_scores;
};

/// Runs `strategy` and measures unfairness (per `evaluator_options`) on
/// `partitioning` before and after, plus utility metrics.
StatusOr<RepairEvaluation> EvaluateRepair(
    const Table& table, const Partitioning& partitioning,
    const std::vector<double>& scores, const RepairStrategy& strategy,
    const EvaluatorOptions& evaluator_options);

}  // namespace fairrank

#endif  // FAIRRANK_REPAIR_REPAIR_H_
