#include "repair/repair.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace fairrank {

namespace {

Status CheckInputs(const Table& table, const Partitioning& partitioning,
                   const std::vector<double>& scores) {
  if (scores.size() != table.num_rows()) {
    return Status::InvalidArgument("scores/table size mismatch");
  }
  if (!IsValidPartitioning(partitioning, table.num_rows())) {
    return Status::InvalidArgument("invalid partitioning for this table");
  }
  return Status::OK();
}

/// Linear-interpolated value of sorted `pooled` at quantile q in [0,1].
double PooledQuantile(const std::vector<double>& pooled, double q) {
  double pos = q * static_cast<double>(pooled.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return pooled[lo] * (1.0 - frac) + pooled[hi] * frac;
}

std::vector<double> QuantileRepairScores(const Table& table,
                                         const Partitioning& partitioning,
                                         const std::vector<double>& scores) {
  std::vector<double> pooled = scores;
  std::sort(pooled.begin(), pooled.end());
  std::vector<double> repaired(scores.size(), 0.0);
  (void)table;
  for (const Partition& p : partitioning) {
    // Rank members within the partition (stable: ties keep row order).
    std::vector<size_t> order(p.rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return scores[p.rows[a]] < scores[p.rows[b]];
    });
    const double k = static_cast<double>(p.rows.size());
    for (size_t rank = 0; rank < order.size(); ++rank) {
      double q = (static_cast<double>(rank) + 0.5) / k;
      repaired[p.rows[order[rank]]] = PooledQuantile(pooled, q);
    }
  }
  return repaired;
}

class QuantileRepair : public RepairStrategy {
 public:
  std::string Name() const override { return "quantile"; }
  StatusOr<std::vector<double>> Repair(
      const Table& table, const Partitioning& partitioning,
      const std::vector<double>& scores) const override {
    FAIRRANK_RETURN_NOT_OK(CheckInputs(table, partitioning, scores));
    return QuantileRepairScores(table, partitioning, scores);
  }
};

class InterpolationRepair : public RepairStrategy {
 public:
  explicit InterpolationRepair(double lambda) : lambda_(lambda) {}
  std::string Name() const override { return "interpolation"; }
  StatusOr<std::vector<double>> Repair(
      const Table& table, const Partitioning& partitioning,
      const std::vector<double>& scores) const override {
    if (lambda_ < 0.0 || lambda_ > 1.0) {
      return Status::InvalidArgument("lambda must be in [0,1]");
    }
    FAIRRANK_RETURN_NOT_OK(CheckInputs(table, partitioning, scores));
    std::vector<double> full = QuantileRepairScores(table, partitioning,
                                                    scores);
    for (size_t i = 0; i < full.size(); ++i) {
      full[i] = (1.0 - lambda_) * scores[i] + lambda_ * full[i];
    }
    return full;
  }

 private:
  double lambda_;
};

class AffineRepair : public RepairStrategy {
 public:
  AffineRepair(double clamp_lo, double clamp_hi)
      : clamp_lo_(clamp_lo), clamp_hi_(clamp_hi) {}
  std::string Name() const override { return "affine"; }
  StatusOr<std::vector<double>> Repair(
      const Table& table, const Partitioning& partitioning,
      const std::vector<double>& scores) const override {
    FAIRRANK_RETURN_NOT_OK(CheckInputs(table, partitioning, scores));
    FAIRRANK_ASSIGN_OR_RETURN(Summary pooled, Describe(scores));
    std::vector<double> repaired(scores.size(), 0.0);
    for (const Partition& p : partitioning) {
      std::vector<double> member_scores;
      member_scores.reserve(p.rows.size());
      for (size_t row : p.rows) member_scores.push_back(scores[row]);
      FAIRRANK_ASSIGN_OR_RETURN(Summary local, Describe(member_scores));
      // Degenerate partitions (constant scores) collapse onto the pooled
      // mean.
      double scale =
          (local.stddev > 0.0) ? pooled.stddev / local.stddev : 0.0;
      for (size_t row : p.rows) {
        double v = pooled.mean + (scores[row] - local.mean) * scale;
        repaired[row] = std::clamp(v, clamp_lo_, clamp_hi_);
      }
    }
    return repaired;
  }

 private:
  double clamp_lo_;
  double clamp_hi_;
};

}  // namespace

std::unique_ptr<RepairStrategy> MakeQuantileRepair() {
  return std::make_unique<QuantileRepair>();
}

std::unique_ptr<RepairStrategy> MakeInterpolationRepair(double lambda) {
  return std::make_unique<InterpolationRepair>(lambda);
}

std::unique_ptr<RepairStrategy> MakeAffineRepair(double clamp_lo,
                                                 double clamp_hi) {
  return std::make_unique<AffineRepair>(clamp_lo, clamp_hi);
}

StatusOr<RepairEvaluation> EvaluateRepair(
    const Table& table, const Partitioning& partitioning,
    const std::vector<double>& scores, const RepairStrategy& strategy,
    const EvaluatorOptions& evaluator_options) {
  FAIRRANK_ASSIGN_OR_RETURN(
      UnfairnessEvaluator before,
      UnfairnessEvaluator::Make(&table, scores, evaluator_options));
  RepairEvaluation eval;
  FAIRRANK_ASSIGN_OR_RETURN(eval.unfairness_before,
                            before.AveragePairwiseUnfairness(partitioning));
  FAIRRANK_ASSIGN_OR_RETURN(eval.repaired_scores,
                            strategy.Repair(table, partitioning, scores));
  FAIRRANK_ASSIGN_OR_RETURN(
      UnfairnessEvaluator after,
      UnfairnessEvaluator::Make(&table, eval.repaired_scores,
                                evaluator_options));
  FAIRRANK_ASSIGN_OR_RETURN(eval.unfairness_after,
                            after.AveragePairwiseUnfairness(partitioning));
  double change = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    change += std::abs(eval.repaired_scores[i] - scores[i]);
  }
  eval.mean_score_change =
      scores.empty() ? 0.0 : change / static_cast<double>(scores.size());
  if (scores.size() >= 2) {
    StatusOr<double> rho =
        SpearmanCorrelation(scores, eval.repaired_scores);
    // Degenerate (constant) score vectors have no defined correlation;
    // report 1 (order trivially preserved).
    eval.rank_correlation = rho.ok() ? *rho : 1.0;
  } else {
    eval.rank_correlation = 1.0;
  }
  return eval;
}

}  // namespace fairrank
