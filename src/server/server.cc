#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <memory>
#include <utility>

#include "common/parallel.h"
#include "common/str_util.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "fairness/report.h"

namespace fairrank {

namespace {

/// Accumulated cache counters worth rolling up (all-zero snapshots are
/// common for /healthz//stats and add lock traffic for nothing).
bool HasCacheActivity(const EvalCacheStats& stats) {
  return stats.histogram_lookups() != 0 || stats.divergence_lookups() != 0 ||
         stats.evictions != 0;
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl(O_NONBLOCK): " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

/// Waits for `events` on `fd` until `deadline`, in short slices so drain
/// cancellation is noticed promptly. True when the fd is ready.
bool PollFd(int fd, short events, const Deadline& deadline,
            const CancellationToken& cancel) {
  for (;;) {
    if (cancel.cancel_requested()) return false;
    double remaining = deadline.RemainingSeconds();
    if (remaining <= 0) return false;
    int slice_ms = 100;
    if (remaining * 1000.0 < slice_ms) {
      slice_ms = static_cast<int>(remaining * 1000.0) + 1;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int n = poll(&pfd, 1, slice_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n > 0 && (pfd.revents & (events | POLLHUP | POLLERR)) != 0) {
      return true;
    }
  }
}

/// Maps a request-read failure to the HTTP status of the early error reply.
/// OutOfRange is the parser's "header fields too large/too many" signal
/// (431); ResourceExhausted is an oversized body (413); Unimplemented is
/// well-formed HTTP the server chooses not to speak — unsupported methods
/// and non-identity transfer codings (501).
int HttpStatusForReadError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
      return 413;
    case StatusCode::kOutOfRange:
      return 431;
    case StatusCode::kDeadlineExceeded:
      return 408;
    case StatusCode::kUnimplemented:
      return 501;
    default:
      return 400;
  }
}

/// A client-supplied X-Request-Id is echoed only when it is 1..64 bytes of
/// printable ASCII — anything else (binary, oversized, empty) is replaced
/// with a server-minted id so log lines and response headers stay clean.
bool IsValidRequestId(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    if (c < 0x20 || c > 0x7E) return false;
  }
  return true;
}

/// One JSON access-log line. `trace_id` is empty for untraced requests.
std::string AccessLogLine(const std::string& request_id,
                          const std::string& method, const std::string& path,
                          int status, double duration_ms,
                          const std::string& trace_id) {
  std::string out = "{\"request_id\":\"" + JsonEscape(request_id) + "\",";
  out += "\"method\":\"" + JsonEscape(method) + "\",";
  out += "\"path\":\"" + JsonEscape(path) + "\",";
  out += "\"status\":" + std::to_string(status) + ",";
  out += "\"duration_ms\":" + FormatDouble(duration_ms, 3);
  if (!trace_id.empty()) {
    out += ",\"trace_id\":\"" + JsonEscape(trace_id) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

FairAuditServer::FairAuditServer(
    std::map<std::string, std::unique_ptr<Table>> tables,
    std::string default_name, ServerOptions options)
    : tables_(std::move(tables)),
      options_(std::move(options)),
      num_workers_(options_.num_workers > 0 ? options_.num_workers
                                            : HardwareThreads()),
      process_budget_(options_.max_total_nodes,
                      options_.max_total_memory_mb << 20),
      admission_(options_.max_inflight_audits > 0
                     ? options_.max_inflight_audits
                     : num_workers_,
                 &process_budget_),
      response_cache_(options_.response_cache_mb << 20, &process_budget_),
      queue_(options_.queue_capacity) {
  env_.default_dataset = std::move(default_name);
  for (const auto& [name, table] : tables_) {
    env_.datasets[name] = table.get();
  }
  env_.timeout_ceiling_ms = options_.request_timeout_ceiling_ms;
  env_.default_timeout_ms = options_.default_timeout_ms;
  env_.process_budget = &process_budget_;
  env_.drain_cancel = drain_source_.token();
  env_.max_request_threads =
      options_.max_request_threads > 0 ? options_.max_request_threads : 1;
  env_.retry_after_ms = options_.retry_after_ms;
}

FairAuditServer::~FairAuditServer() {
  if (listen_fd_ >= 0) close(listen_fd_);
}

Status FairAuditServer::Start() {
  if (tables_.empty()) {
    return Status::InvalidArgument("server needs at least one dataset");
  }
  if (env_.datasets.find(env_.default_dataset) == env_.datasets.end()) {
    return Status::InvalidArgument("default dataset '" + env_.default_dataset +
                                   "' is not among the loaded datasets");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host '" + options_.host +
                                   "' as an IPv4 address");
  }
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    return Status::IOError("bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (listen(listen_fd_, 64) < 0) {
    return Status::IOError("listen: " + std::string(std::strerror(errno)));
  }
  FAIRRANK_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                  &bound_len) < 0) {
    return Status::IOError("getsockname: " +
                           std::string(std::strerror(errno)));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Status FairAuditServer::Serve() {
  if (listen_fd_ < 0) {
    return Status::FailedPrecondition("Serve() called before Start()");
  }
  try {
    // One pool carries the whole server: task 0 is the listener (and drain
    // coordinator), tasks 1..N serve requests. ParallelForEach is the
    // repo's single audited thread source.
    ParallelForEach(static_cast<size_t>(num_workers_) + 1, num_workers_ + 1,
                    [this](size_t i) {
                      if (i == 0) {
                        ListenerLoop();
                      } else {
                        WorkerLoop();
                      }
                    });
  } catch (const std::exception& e) {
    return Status::Internal(std::string("server pool failed: ") + e.what());
  }
  return Status::OK();
}

void FairAuditServer::RequestShutdown() {
  draining_.store(true, std::memory_order_relaxed);
}

void FairAuditServer::ListenerLoop() {
  while (!draining_.load(std::memory_order_relaxed)) {
    if (options_.external_shutdown && options_.external_shutdown()) {
      RequestShutdown();
      break;
    }
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int n = poll(&pfd, 1, 100);
    if (n < 0 && errno != EINTR) break;
    if (n <= 0) continue;
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Shed at the door with a canned 503 so the client learns to back off
    // instead of hanging. The two causes are distinct operational signals:
    // queue_full is load (clients should back off), fd_setup_failed is a
    // local kernel/resource problem (backing off won't help; an operator
    // should look). The shed send is bounded by shed_send_timeout_ms —
    // task 0 is the accept loop and must not be held hostage by one slow
    // client for a full io_timeout.
    bool fd_ready = SetNonBlocking(fd).ok();
    if (fd_ready && queue_.TryPush(fd)) continue;
    const char* reason = fd_ready ? "queue_full" : "fd_setup_failed";
    stats_.RecordShed(reason);
    HttpResponse shed = MakeErrorResponse(
        503, "ResourceExhausted", reason,
        std::string("request shed: ") + reason, options_.retry_after_ms);
    // The listener sheds before reading the request, so there is no client
    // id to echo — a minted one still lets the client quote something.
    shed.request_id = NextRequestId();
    SendResponse(fd, shed,
                 Deadline::AfterMillis(options_.shed_send_timeout_ms > 0
                                           ? options_.shed_send_timeout_ms
                                           : 1));
    close(fd);
  }

  // Drain: stop accepting, let queued connections flush (they are shed as
  // "draining"), give in-flight requests a grace window, then cancel
  // cooperatively so stragglers return truncated best-so-far answers.
  close(listen_fd_);
  listen_fd_ = -1;
  queue_.Close();
  Deadline grace = options_.drain_grace_ms > 0
                       ? Deadline::AfterMillis(options_.drain_grace_ms)
                       : Deadline::AfterMillis(0);
  if (!admission_.WaitUntilIdle(grace)) {
    drain_source_.RequestCancellation();
  }
}

void FairAuditServer::WorkerLoop() {
  while (true) {
    std::optional<int> fd = queue_.Pop();
    if (!fd.has_value()) return;
    ServeConnection(*fd);
  }
}

void FairAuditServer::ServeConnection(int fd) {
  std::string carry;  // Bytes read past the previous request (pipelining).
  int served = 0;
  for (;;) {
    auto start = std::chrono::steady_clock::now();
    StatusOr<HttpRequest> request = ReadRequest(fd, &carry, served > 0);
    if (!request.ok()) {
      const Status& status = request.status();
      // Cancelled marks the quiet ends of a kept-alive connection — peer
      // closed between requests, idle deadline, drain — not a protocol
      // error: close without a response and without polluting the
      // parse-error counter.
      if (status.code() != StatusCode::kCancelled) {
        stats_.RecordParseError();
        HttpResponse error = MakeErrorResponse(
            HttpStatusForReadError(status), StatusCodeToString(status.code()),
            "bad_request", status.message());
        // The request never parsed, so a client-supplied id (if any) is
        // unreachable — mint one so even malformed requests get a handle.
        error.request_id = NextRequestId();
        SendResponse(fd, error, IoDeadline());
      }
      break;
    }
    if (served > 0) stats_.RecordConnectionReuse();

    // Every response carries an X-Request-Id: the client's own (when valid)
    // so its logs and ours share a key, a minted one otherwise.
    std::string request_id;
    auto id_header = request->headers.find("x-request-id");
    if (id_header != request->headers.end() &&
        IsValidRequestId(id_header->second)) {
      request_id = id_header->second;
    } else {
      request_id = NextRequestId();
    }

    // Per-request tracing only when slow-request diagnosis asked for it and
    // the endpoint actually runs the pipeline; everything else keeps the
    // null-trace fast path.
    std::unique_ptr<TraceContext> trace;
    if (options_.slow_request_ms > 0 &&
        (request->path == "/audit" || request->path == "/suite")) {
      trace = std::make_unique<TraceContext>();
    }

    // Decide the connection's future before routing so the response frames
    // it: the client must opt in (HTTP/1.1 default), the per-connection
    // request cap must leave room, and a draining server closes as fast as
    // it can.
    bool keep = options_.keep_alive && RequestWantsKeepAlive(*request) &&
                (options_.max_requests_per_connection <= 0 ||
                 served + 1 < options_.max_requests_per_connection) &&
                !draining_.load(std::memory_order_relaxed);
    HandlerResult result = Route(*request, trace.get());
    result.response.keep_alive = keep;
    result.response.request_id = request_id;
    SendResponse(fd, result.response, IoDeadline());

    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    // Known endpoints keyed as-is; everything else collapses into one
    // bucket so a path-scanning client cannot grow the stats map
    // unboundedly.
    const std::string& path = request->path;
    bool known = path == "/audit" || path == "/suite" || path == "/healthz" ||
                 path == "/stats" || path == "/metrics";
    stats_.RecordRequest(known ? path : "(other)", result.response.status,
                         seconds, result.truncated);
    if (HasCacheActivity(result.cache)) stats_.RecordCache(result.cache);

    const double duration_ms = seconds * 1000.0;
    if (options_.log_sink) {
      if (options_.access_log) {
        options_.log_sink(AccessLogLine(
            request_id, request->method, path, result.response.status,
            duration_ms, trace != nullptr ? trace->trace_id() : ""));
      }
      if (trace != nullptr && duration_ms >=
              static_cast<double>(options_.slow_request_ms)) {
        options_.log_sink("slow request " + request_id + " (" +
                          FormatDouble(duration_ms, 3) + " ms >= " +
                          std::to_string(options_.slow_request_ms) +
                          " ms threshold)\n" + trace->FormatTree());
      }
    }

    ++served;
    if (!keep) break;
  }
  close(fd);
}

HandlerResult FairAuditServer::Route(const HttpRequest& request,
                                     TraceContext* trace) {
  HandlerResult result;
  bool is_draining = draining_.load(std::memory_order_relaxed);
  if (request.path == "/metrics") {
    // Observability must outlive admission: /metrics bypasses the gate and
    // is served even while draining, exactly when an operator most needs
    // it. Process-registry families (pipeline counters, audit histograms)
    // come first, then the server's own request/shed/cache/budget families
    // — both from the same state /stats snapshots.
    result.response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    result.response.body =
        MetricsRegistry::Global().RenderPrometheus() +
        stats_.ToPrometheus(&process_budget_, admission_.in_flight(),
                            is_draining, queue_.size(),
                            response_cache_.Snapshot());
    return result;
  }
  if (request.path == "/healthz") {
    if (is_draining) {
      result.response =
          MakeErrorResponse(503, "ResourceExhausted", "draining",
                            "server is draining", options_.retry_after_ms);
    } else {
      result.response.body = "{\"status\":\"ok\"}";
    }
    return result;
  }
  if (request.path == "/stats") {
    result.response.body = StatsJson();
    return result;
  }
  if (request.path == "/audit" || request.path == "/suite") {
    // Response cache first: a hit replays a completed success without
    // touching admission — no evaluation runs, so there is nothing to
    // gate, charge, or shed. Skipped while draining (the drain contract is
    // "stop answering audit work", cached or not). A request whose flags
    // fail to parse gets no key and flows to the handler for its
    // structured 400.
    std::string cache_key;
    if (response_cache_.enabled() && !is_draining) {
      StatusOr<std::string> key = CanonicalRequestKey(env_, request);
      if (key.ok()) {
        cache_key = std::move(key).value();
        if (response_cache_.Find(cache_key, &result.response)) return result;
      }
    }
    AdmissionVerdict verdict = admission_.TryAdmit(is_draining);
    if (verdict != AdmissionVerdict::kAdmit) {
      stats_.RecordShed(AdmissionVerdictToString(verdict));
      // Overload (a transient in-flight spike) is the client's cue to
      // retry soon: 429. Draining and an exhausted process budget are
      // server-side unavailability: 503.
      int status = verdict == AdmissionVerdict::kShedOverload ? 429 : 503;
      result.response = MakeErrorResponse(
          status, "ResourceExhausted", AdmissionVerdictToString(verdict),
          std::string("request shed: ") + AdmissionVerdictToString(verdict),
          options_.retry_after_ms);
      return result;
    }
    stats_.RecordAccepted();
    result = request.path == "/audit" ? HandleAudit(env_, request, trace)
                                      : HandleSuite(env_, request, trace);
    admission_.Release();
    // Only complete successes are replayable: an error is cheap to
    // recompute and a truncated body froze a transient budget/deadline
    // state that the next identical request might not hit.
    if (!cache_key.empty() && result.response.status == 200 &&
        !result.truncated) {
      response_cache_.Insert(cache_key, result.response);
    }
    return result;
  }
  result.response = MakeErrorResponse(
      404, "NotFound", "unknown_path",
      "unknown path '" + request.path +
          "' (endpoints: /audit, /suite, /healthz, /stats, /metrics)");
  return result;
}

Deadline FairAuditServer::IoDeadline() const {
  return options_.io_timeout_ms > 0
             ? Deadline::AfterMillis(options_.io_timeout_ms)
             : Deadline::Infinite();
}

StatusOr<HttpRequest> FairAuditServer::ReadRequest(int fd, std::string* carry,
                                                   bool subsequent) const {
  const HttpSizeLimits& limits = options_.size_limits;
  std::string buffer = std::move(*carry);
  carry->clear();

  // Between requests of a kept-alive connection: wait for the first byte
  // under the idle deadline (the earlier of io_timeout and
  // keep_alive_idle_ms), in short slices so a drain request closes idle
  // connections promptly instead of after a full idle window. All quiet
  // ends — peer close, idle expiry, drain — return Cancelled, which the
  // caller maps to "close without a response".
  if (subsequent && buffer.empty()) {
    Deadline idle = Deadline::Earlier(
        IoDeadline(), options_.keep_alive_idle_ms > 0
                          ? Deadline::AfterMillis(options_.keep_alive_idle_ms)
                          : Deadline::Infinite());
    for (;;) {
      if (draining_.load(std::memory_order_relaxed) ||
          env_.drain_cancel.cancel_requested()) {
        return Status::Cancelled("server draining");
      }
      double remaining = idle.RemainingSeconds();
      if (remaining <= 0) return Status::Cancelled("keep-alive idle timeout");
      int slice_ms = 50;
      if (remaining * 1000.0 < slice_ms) {
        slice_ms = static_cast<int>(remaining * 1000.0) + 1;
      }
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      int n = poll(&pfd, 1, slice_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Cancelled("poll: " + std::string(std::strerror(errno)));
      }
      if (n > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) break;
    }
  }

  Deadline deadline = IoDeadline();
  size_t head_end = std::string::npos;
  size_t terminator = 0;

  for (;;) {
    // The carry (or a previous recv) may already hold a complete head —
    // check before waiting for more bytes, or a pipelining client stalls.
    size_t crlf = buffer.find("\r\n\r\n");
    size_t lf = buffer.find("\n\n");
    if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
      head_end = crlf;
      terminator = 4;
      break;
    }
    if (lf != std::string::npos) {
      head_end = lf;
      terminator = 2;
      break;
    }
    if (buffer.size() > limits.max_head_bytes) {
      return Status::OutOfRange(
          "request head exceeds " + std::to_string(limits.max_head_bytes) +
          " bytes");
    }
    if (!PollFd(fd, POLLIN, deadline, env_.drain_cancel)) {
      return Status::DeadlineExceeded("timed out reading request head");
    }
    char chunk[4096];
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return Status::IOError("recv: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      if (buffer.empty() && subsequent) {
        return Status::Cancelled("connection closed between requests");
      }
      return Status::InvalidArgument("connection closed mid-request");
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  FAIRRANK_ASSIGN_OR_RETURN(
      HttpRequest request, ParseRequestHead(buffer.substr(0, head_end),
                                            limits));
  FAIRRANK_ASSIGN_OR_RETURN(size_t body_bytes,
                            ContentLength(request, limits));
  std::string body = buffer.substr(head_end + terminator);
  while (body.size() < body_bytes) {
    if (!PollFd(fd, POLLIN, deadline, env_.drain_cancel)) {
      return Status::DeadlineExceeded("timed out reading request body");
    }
    char chunk[4096];
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return Status::IOError("recv: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::InvalidArgument("connection closed mid-body");
    }
    body.append(chunk, static_cast<size_t>(n));
  }
  // Bytes past this request's body are the start of the next pipelined
  // request: keep them for the connection's next ReadRequest.
  if (body.size() > body_bytes) {
    *carry = body.substr(body_bytes);
    body.resize(body_bytes);
  }
  request.body = std::move(body);
  return request;
}

void FairAuditServer::SendResponse(int fd, const HttpResponse& response,
                                   const Deadline& deadline) const {
  std::string wire = FormatHttpResponse(response);
  size_t sent = 0;
  while (sent < wire.size()) {
    double remaining = deadline.RemainingSeconds();
    if (remaining <= 0) return;
    int slice_ms = 100;
    if (remaining * 1000.0 < slice_ms) {
      slice_ms = static_cast<int>(remaining * 1000.0) + 1;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    int n = poll(&pfd, 1, slice_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (n == 0) continue;  // Slice elapsed; re-check the deadline.
    if ((pfd.revents & POLLOUT) == 0) {
      // POLLHUP/POLLERR without writability: the peer is gone or the
      // socket is broken. A plain `continue` here would spin — poll
      // reports the (persistent) hangup immediately while send keeps
      // returning EAGAIN against the full buffer of a stalled client.
      return;
    }
    ssize_t w = send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return;  // Peer went away; response delivery is best-effort.
    }
    sent += static_cast<size_t>(w);
  }
}

std::string FairAuditServer::StatsJson() const {
  return stats_.ToJson(&process_budget_, admission_.in_flight(), draining(),
                       queue_.size(), response_cache_.Snapshot());
}

}  // namespace fairrank
