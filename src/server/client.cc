#include "server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/deadline.h"
#include "common/str_util.h"

namespace fairrank {

namespace {

bool PollFd(int fd, short events, const Deadline& deadline) {
  for (;;) {
    double remaining = deadline.RemainingSeconds();
    if (remaining <= 0) return false;
    int slice_ms = 100;
    if (remaining * 1000.0 < slice_ms) {
      slice_ms = static_cast<int>(remaining * 1000.0) + 1;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int n = poll(&pfd, 1, slice_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n > 0) return true;
  }
}

/// RAII fd so every early return closes the socket.
class UniqueFd {
 public:
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() {
    if (fd_ >= 0) close(fd_);
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  int get() const { return fd_; }

 private:
  int fd_;
};

}  // namespace

StatusOr<HttpFetchResult> HttpFetch(const std::string& host, int port,
                                    const std::string& method,
                                    const std::string& target,
                                    const std::string& body,
                                    int64_t timeout_ms) {
  Deadline deadline = timeout_ms > 0 ? Deadline::AfterMillis(timeout_ms)
                                     : Deadline::Infinite();
  int raw_fd = socket(AF_INET, SOCK_STREAM, 0);
  if (raw_fd < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  UniqueFd fd(raw_fd);
  int flags = fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl: " + std::string(std::strerror(errno)));
  }

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host '" + host +
                                   "' as an IPv4 address");
  }
  if (connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      return Status::IOError("connect " + host + ":" + std::to_string(port) +
                             ": " + std::strerror(errno));
    }
    if (!PollFd(fd.get(), POLLOUT, deadline)) {
      return Status::DeadlineExceeded("timed out connecting to " + host + ":" +
                                      std::to_string(port));
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 ||
        err != 0) {
      return Status::IOError("connect " + host + ":" + std::to_string(port) +
                             ": " + std::strerror(err != 0 ? err : errno));
    }
  }

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + host + ":" + std::to_string(port) + "\r\n";
  if (!body.empty() || method == "POST") {
    request += "Content-Type: application/x-www-form-urlencoded\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "Connection: close\r\n\r\n";
  request += body;

  size_t sent = 0;
  while (sent < request.size()) {
    if (!PollFd(fd.get(), POLLOUT, deadline)) {
      return Status::DeadlineExceeded("timed out sending request");
    }
    ssize_t n = send(fd.get(), request.data() + sent, request.size() - sent,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return Status::IOError("send: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }

  std::string response;
  for (;;) {
    if (!PollFd(fd.get(), POLLIN, deadline)) {
      return Status::DeadlineExceeded("timed out reading response");
    }
    char chunk[4096];
    ssize_t n = recv(fd.get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return Status::IOError("recv: " + std::string(std::strerror(errno)));
    }
    if (n == 0) break;  // Server closed: message complete.
    response.append(chunk, static_cast<size_t>(n));
  }

  size_t head_end = response.find("\r\n\r\n");
  size_t terminator = 4;
  if (head_end == std::string::npos) {
    head_end = response.find("\n\n");
    terminator = 2;
  }
  if (head_end == std::string::npos) {
    return Status::InvalidArgument("malformed response (no header block)");
  }
  HttpFetchResult result;
  result.head = response.substr(0, head_end);
  result.body = response.substr(head_end + terminator);
  // Status line: "HTTP/1.1 200 OK".
  size_t sp = result.head.find(' ');
  int64_t code = 0;
  if (sp == std::string::npos ||
      !ParseInt64(Trim(result.head.substr(sp + 1, 3)), &code)) {
    return Status::InvalidArgument("malformed status line '" +
                                   result.head.substr(0, 32) + "'");
  }
  result.status_code = static_cast<int>(code);
  return result;
}

}  // namespace fairrank
