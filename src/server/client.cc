#include "server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/deadline.h"
#include "common/str_util.h"

namespace fairrank {

namespace {

bool PollFd(int fd, short events, const Deadline& deadline) {
  for (;;) {
    double remaining = deadline.RemainingSeconds();
    if (remaining <= 0) return false;
    int slice_ms = 100;
    if (remaining * 1000.0 < slice_ms) {
      slice_ms = static_cast<int>(remaining * 1000.0) + 1;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int n = poll(&pfd, 1, slice_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n > 0) return true;
  }
}

/// RAII fd so every early return closes the socket.
class UniqueFd {
 public:
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() {
    if (fd_ >= 0) close(fd_);
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  int get() const { return fd_; }
  /// Gives up ownership (the destructor no longer closes).
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

/// Connects to host:port with a non-blocking socket under `deadline`.
/// Returns the raw fd; the caller owns it.
StatusOr<int> ConnectNonBlocking(const std::string& host, int port,
                                 const Deadline& deadline) {
  int raw_fd = socket(AF_INET, SOCK_STREAM, 0);
  if (raw_fd < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  UniqueFd fd(raw_fd);
  int flags = fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl: " + std::string(std::strerror(errno)));
  }

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host '" + host +
                                   "' as an IPv4 address");
  }
  if (connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      return Status::IOError("connect " + host + ":" + std::to_string(port) +
                             ": " + std::strerror(errno));
    }
    if (!PollFd(fd.get(), POLLOUT, deadline)) {
      return Status::DeadlineExceeded("timed out connecting to " + host + ":" +
                                      std::to_string(port));
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 ||
        err != 0) {
      return Status::IOError("connect " + host + ":" + std::to_string(port) +
                             ": " + std::strerror(err != 0 ? err : errno));
    }
  }
  return fd.release();
}

/// True when the kernel already buffered response bytes on `fd`. Used on
/// send-side failures of a reused connection: if the server answered before
/// resetting (early response, e.g. 431 + close), the request DID reach it
/// and retrying could replay a non-idempotent POST. Preserves errno.
bool ResponseBytesPending(int fd) {
  int saved_errno = errno;
  char probe;
  ssize_t n = recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  errno = saved_errno;
  return n > 0;
}

/// Case-insensitive single-header lookup in a raw response head. Returns
/// false when absent.
bool FindHeader(const std::string& head, const std::string& lower_name,
                std::string* value) {
  for (const std::string& line : Split(head, '\n')) {
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (ToLower(Trim(line.substr(0, colon))) != lower_name) continue;
    *value = std::string(Trim(line.substr(colon + 1)));
    return true;
  }
  return false;
}

/// Parses "HTTP/1.1 200 OK" into its numeric code.
Status ParseStatusLine(const std::string& head, int* code) {
  size_t sp = head.find(' ');
  int64_t parsed = 0;
  if (sp == std::string::npos ||
      !ParseInt64(Trim(head.substr(sp + 1, 3)), &parsed)) {
    return Status::InvalidArgument("malformed status line '" +
                                   head.substr(0, 32) + "'");
  }
  *code = static_cast<int>(parsed);
  return Status::OK();
}

}  // namespace

StatusOr<HttpFetchResult> HttpFetch(const std::string& host, int port,
                                    const std::string& method,
                                    const std::string& target,
                                    const std::string& body,
                                    int64_t timeout_ms,
                                    const std::string& extra_headers) {
  Deadline deadline = timeout_ms > 0 ? Deadline::AfterMillis(timeout_ms)
                                     : Deadline::Infinite();
  FAIRRANK_ASSIGN_OR_RETURN(int raw_fd,
                            ConnectNonBlocking(host, port, deadline));
  UniqueFd fd(raw_fd);

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + host + ":" + std::to_string(port) + "\r\n";
  request += extra_headers;
  if (!body.empty() || method == "POST") {
    request += "Content-Type: application/x-www-form-urlencoded\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "Connection: close\r\n\r\n";
  request += body;

  size_t sent = 0;
  while (sent < request.size()) {
    if (!PollFd(fd.get(), POLLOUT, deadline)) {
      return Status::DeadlineExceeded("timed out sending request");
    }
    ssize_t n = send(fd.get(), request.data() + sent, request.size() - sent,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return Status::IOError("send: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }

  std::string response;
  for (;;) {
    if (!PollFd(fd.get(), POLLIN, deadline)) {
      return Status::DeadlineExceeded("timed out reading response");
    }
    char chunk[4096];
    ssize_t n = recv(fd.get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return Status::IOError("recv: " + std::string(std::strerror(errno)));
    }
    if (n == 0) break;  // Server closed: message complete.
    response.append(chunk, static_cast<size_t>(n));
  }

  size_t head_end = response.find("\r\n\r\n");
  size_t terminator = 4;
  if (head_end == std::string::npos) {
    head_end = response.find("\n\n");
    terminator = 2;
  }
  if (head_end == std::string::npos) {
    return Status::InvalidArgument("malformed response (no header block)");
  }
  HttpFetchResult result;
  result.head = response.substr(0, head_end);
  result.body = response.substr(head_end + terminator);
  FAIRRANK_RETURN_NOT_OK(ParseStatusLine(result.head, &result.status_code));
  return result;
}

HttpClient::HttpClient(std::string host, int port)
    : host_(std::move(host)), port_(port) {}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  carry_.clear();
}

StatusOr<HttpFetchResult> HttpClient::Fetch(const std::string& method,
                                            const std::string& target,
                                            const std::string& body,
                                            int64_t timeout_ms,
                                            const std::string& extra_headers) {
  bool reused = fd_ >= 0;
  bool stale = false;
  StatusOr<HttpFetchResult> result =
      FetchOnce(method, target, body, timeout_ms, extra_headers, &stale);
  if (!result.ok() && reused && stale) {
    // The server closed the kept-alive connection between our requests
    // (idle timeout, per-connection cap, drain). That is its prerogative —
    // retry exactly once on a fresh connection.
    Close();
    result = FetchOnce(method, target, body, timeout_ms, extra_headers, &stale);
  }
  if (!result.ok()) Close();
  return result;
}

StatusOr<HttpFetchResult> HttpClient::FetchOnce(
    const std::string& method, const std::string& target,
    const std::string& body, int64_t timeout_ms,
    const std::string& extra_headers, bool* stale) {
  *stale = false;
  Deadline deadline = timeout_ms > 0 ? Deadline::AfterMillis(timeout_ms)
                                     : Deadline::Infinite();
  bool reused = fd_ >= 0;
  if (!reused) {
    FAIRRANK_ASSIGN_OR_RETURN(fd_,
                              ConnectNonBlocking(host_, port_, deadline));
    ++connects_;
    carry_.clear();
  }
  // Response bytes already sitting in the carry belong to this socket's
  // stream: once any were received, a failure is never "stale idle close"
  // and must not trigger a retry (a replayed POST would double its side
  // effects).
  const bool received_any = !carry_.empty();

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  request += extra_headers;
  if (!body.empty() || method == "POST") {
    request += "Content-Type: application/x-www-form-urlencoded\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "Connection: keep-alive\r\n\r\n";
  request += body;

  size_t sent = 0;
  while (sent < request.size()) {
    if (!PollFd(fd_, POLLOUT, deadline)) {
      return Status::DeadlineExceeded("timed out sending request");
    }
    ssize_t n = send(fd_, request.data() + sent, request.size() - sent,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      // EPIPE/ECONNRESET on a reused socket usually means the server closed
      // the idle connection between our requests — safe to retry. But only
      // when NO response bytes exist for it: neither carried over from the
      // previous read nor already buffered by the kernel. Received bytes
      // prove the server saw (part of) a request, and retrying could run a
      // POST's side effects twice.
      *stale = reused && (errno == EPIPE || errno == ECONNRESET) &&
               !received_any && !ResponseBytesPending(fd_);
      return Status::IOError("send: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }

  // Read the response head. The carry may already hold (part of) it when
  // the server pipelined ahead of us.
  std::string response = std::move(carry_);
  carry_.clear();
  size_t head_end = std::string::npos;
  size_t terminator = 0;
  for (;;) {
    size_t crlf = response.find("\r\n\r\n");
    size_t lf = response.find("\n\n");
    if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
      head_end = crlf;
      terminator = 4;
      break;
    }
    if (lf != std::string::npos) {
      head_end = lf;
      terminator = 2;
      break;
    }
    if (!PollFd(fd_, POLLIN, deadline)) {
      return Status::DeadlineExceeded("timed out reading response head");
    }
    char chunk[4096];
    ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      *stale = reused && errno == ECONNRESET && response.empty();
      return Status::IOError("recv: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      *stale = reused && response.empty();
      return Status::IOError("connection closed before response head");
    }
    response.append(chunk, static_cast<size_t>(n));
  }

  HttpFetchResult result;
  result.head = response.substr(0, head_end);
  FAIRRANK_RETURN_NOT_OK(ParseStatusLine(result.head, &result.status_code));

  std::string length_value;
  if (!FindHeader(result.head, "content-length", &length_value)) {
    // Without a length the only framing left is connection close: drain to
    // EOF and drop the socket.
    result.body = response.substr(head_end + terminator);
    for (;;) {
      if (!PollFd(fd_, POLLIN, deadline)) {
        return Status::DeadlineExceeded("timed out reading response body");
      }
      char chunk[4096];
      ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        return Status::IOError("recv: " + std::string(std::strerror(errno)));
      }
      if (n == 0) break;
      result.body.append(chunk, static_cast<size_t>(n));
    }
    Close();
    return result;
  }

  int64_t body_bytes = 0;
  if (!ParseInt64(length_value, &body_bytes) || body_bytes < 0) {
    return Status::InvalidArgument("bad Content-Length '" + length_value +
                                   "'");
  }
  std::string full_body = response.substr(head_end + terminator);
  while (full_body.size() < static_cast<size_t>(body_bytes)) {
    if (!PollFd(fd_, POLLIN, deadline)) {
      return Status::DeadlineExceeded("timed out reading response body");
    }
    char chunk[4096];
    ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return Status::IOError("recv: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IOError("connection closed mid-body");
    }
    full_body.append(chunk, static_cast<size_t>(n));
  }
  if (full_body.size() > static_cast<size_t>(body_bytes)) {
    carry_ = full_body.substr(static_cast<size_t>(body_bytes));
    full_body.resize(static_cast<size_t>(body_bytes));
  }
  result.body = std::move(full_body);

  std::string connection;
  if (FindHeader(result.head, "connection", &connection) &&
      ToLower(connection).find("close") != std::string::npos) {
    Close();
  }
  return result;
}

}  // namespace fairrank
