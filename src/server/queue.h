#ifndef FAIRRANK_SERVER_QUEUE_H_
#define FAIRRANK_SERVER_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "common/thread_annotations.h"

namespace fairrank {

/// Bounded multi-producer/multi-consumer queue of pending work (accepted
/// connection fds). The bound is the server's backpressure point: when the
/// queue is full the listener sheds the connection with a structured 503
/// instead of queueing unboundedly — admission control by construction.
///
/// Close() ends the stream: pending items are still drained (so already
/// accepted connections get a response — typically a fast "draining" shed),
/// after which Pop() returns nullopt and the workers exit. Push after close
/// is refused.
template <typename T>
class BoundedQueue {
 public:
  /// `capacity` 0 behaves as capacity 1 (a zero-capacity queue could never
  /// hand work to the pool at all).
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push. False when full or closed — the caller sheds.
  bool TryPush(T item) FAIRRANK_EXCLUDES(mutex_) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty
  /// (then nullopt).
  std::optional<T> Pop() FAIRRANK_EXCLUDES(mutex_) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this]() FAIRRANK_REQUIRES(mutex_) {
      return closed_ || !items_.empty();
    });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Ends the stream and wakes every blocked Pop().
  void Close() FAIRRANK_EXCLUDES(mutex_) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const FAIRRANK_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_ FAIRRANK_GUARDED_BY(mutex_);
  bool closed_ FAIRRANK_GUARDED_BY(mutex_) = false;
};

}  // namespace fairrank

#endif  // FAIRRANK_SERVER_QUEUE_H_
