#include "server/http.h"

#include <algorithm>

#include "common/str_util.h"
#include "fairness/report.h"

namespace fairrank {

namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Splits the head into lines, accepting CRLF or bare LF.
std::vector<std::string_view> SplitLines(std::string_view head) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= head.size()) {
    size_t nl = head.find('\n', start);
    std::string_view line = nl == std::string_view::npos
                                ? head.substr(start)
                                : head.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    lines.push_back(line);
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return lines;
}

/// True when the comma-separated header list `value` contains `token`
/// (case-insensitive, per-element trimmed) — RFC 7230 list semantics.
bool HeaderListContains(std::string_view value, std::string_view token) {
  for (const std::string& element : Split(value, ',')) {
    if (ToLower(Trim(element)) == token) return true;
  }
  return false;
}

}  // namespace

std::string PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+') {
      out.push_back(' ');
      continue;
    }
    if (c == '%' && i + 2 < s.size()) {
      int hi = HexValue(s[i + 1]);
      int lo = HexValue(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(c);
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> ParseQueryString(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> pairs;
  size_t start = 0;
  while (start <= query.size()) {
    size_t amp = query.find('&', start);
    std::string_view segment = amp == std::string_view::npos
                                   ? query.substr(start)
                                   : query.substr(start, amp - start);
    if (!segment.empty()) {
      size_t eq = segment.find('=');
      if (eq == std::string_view::npos) {
        pairs.emplace_back(PercentDecode(segment), "");
      } else {
        pairs.emplace_back(PercentDecode(segment.substr(0, eq)),
                           PercentDecode(segment.substr(eq + 1)));
      }
    }
    if (amp == std::string_view::npos) break;
    start = amp + 1;
  }
  return pairs;
}

StatusOr<HttpRequest> ParseRequestHead(std::string_view head,
                                       const HttpSizeLimits& limits) {
  // The server's read loop aborts oversized heads while still WAITING for
  // the terminator, but a head that arrives complete in one burst reaches
  // this parser without ever tripping that check — enforce the cap here
  // too so the limit holds regardless of packet arrival timing.
  if (limits.max_head_bytes > 0 && head.size() > limits.max_head_bytes) {
    return Status::OutOfRange("request head exceeds " +
                              std::to_string(limits.max_head_bytes) +
                              " bytes");
  }
  std::vector<std::string_view> lines = SplitLines(head);
  if (lines.empty() || lines[0].empty()) {
    return Status::InvalidArgument("empty request");
  }
  HttpRequest request;
  {
    std::string_view line = lines[0];
    size_t sp1 = line.find(' ');
    size_t sp2 = line.rfind(' ');
    if (sp1 == std::string_view::npos || sp2 == sp1) {
      return Status::InvalidArgument("malformed request line");
    }
    request.method = std::string(line.substr(0, sp1));
    request.target = std::string(Trim(line.substr(sp1 + 1, sp2 - sp1 - 1)));
    std::string_view version = line.substr(sp2 + 1);
    if (!StartsWith(version, "HTTP/1.")) {
      return Status::InvalidArgument("unsupported protocol '" +
                                     std::string(version) + "'");
    }
    request.minor_version = version == "HTTP/1.0" ? 0 : 1;
  }
  if (request.method != "GET" && request.method != "POST") {
    return Status::Unimplemented("method '" + request.method +
                                 "' not supported (GET/POST only)");
  }
  if (request.target.empty() || request.target[0] != '/') {
    return Status::InvalidArgument("request target must start with '/'");
  }
  size_t qmark = request.target.find('?');
  if (qmark == std::string::npos) {
    request.path = request.target;
  } else {
    request.path = request.target.substr(0, qmark);
    request.query = ParseQueryString(
        std::string_view(request.target).substr(qmark + 1));
  }
  size_t header_count = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    if (line.empty()) break;  // End of headers.
    if (limits.max_header_count > 0 &&
        ++header_count > limits.max_header_count) {
      return Status::OutOfRange(
          "more than " + std::to_string(limits.max_header_count) +
          " header fields");
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("malformed header line '" +
                                     std::string(line) + "'");
    }
    std::string name = ToLower(Trim(line.substr(0, colon)));
    if (name.empty()) {
      return Status::InvalidArgument("empty header name");
    }
    std::string value(Trim(line.substr(colon + 1)));
    auto [it, inserted] = request.headers.emplace(name, value);
    if (!inserted) {
      // Duplicated framing headers are the classic request-smuggling
      // vector: two Content-Lengths (or a CL + TE pair split across
      // proxies) make different hops disagree on where the body ends.
      // Refuse instead of silently letting the last one win.
      if (name == "content-length" || name == "transfer-encoding") {
        return Status::InvalidArgument("duplicate " + name + " header");
      }
      it->second += ", " + value;  // RFC 7230 list merge for the rest.
    }
  }
  return request;
}

StatusOr<size_t> ContentLength(const HttpRequest& request,
                               const HttpSizeLimits& limits) {
  auto te = request.headers.find("transfer-encoding");
  if (te != request.headers.end()) {
    // "identity" (alone or repeated in a comma-separated list) means "no
    // transformation" and is equivalent to absent. Anything else —
    // chunked, gzip, ... — is well-formed HTTP this server deliberately
    // does not implement: 501, not 400.
    for (const std::string& coding : Split(te->second, ',')) {
      std::string token = ToLower(Trim(coding));
      if (token.empty() || token == "identity") continue;
      return Status::Unimplemented(
          "transfer coding '" + token +
          "' not supported; send an identity body with Content-Length");
    }
  }
  auto it = request.headers.find("content-length");
  if (it == request.headers.end()) return size_t{0};
  int64_t length = 0;
  if (!ParseInt64(it->second, &length) || length < 0) {
    return Status::InvalidArgument("malformed Content-Length '" + it->second +
                                   "'");
  }
  if (static_cast<uint64_t>(length) > limits.max_body_bytes) {
    return Status::ResourceExhausted(
        "request body of " + std::to_string(length) + " bytes exceeds the " +
        std::to_string(limits.max_body_bytes) + "-byte limit");
  }
  return static_cast<size_t>(length);
}

bool RequestWantsKeepAlive(const HttpRequest& request) {
  auto it = request.headers.find("connection");
  if (request.minor_version == 0) {
    return it != request.headers.end() &&
           HeaderListContains(it->second, "keep-alive");
  }
  return it == request.headers.end() ||
         !HeaderListContains(it->second, "close");
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string FormatHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  if (!response.request_id.empty()) {
    out += "X-Request-Id: " + response.request_id + "\r\n";
  }
  if (response.retry_after_ms > 0) {
    // Retry-After is whole seconds; round up so a 250 ms hint never becomes
    // an immediate (0 s) retry.
    out += "Retry-After: " +
           std::to_string((response.retry_after_ms + 999) / 1000) + "\r\n";
  }
  out += response.keep_alive ? "Connection: keep-alive\r\n\r\n"
                             : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

std::string JsonErrorBody(int status, std::string_view code,
                          std::string_view reason, std::string_view message,
                          int64_t retry_after_ms) {
  std::string out = "{\"error\":{";
  out += "\"status\":" + std::to_string(status) + ",";
  out += "\"code\":\"" + JsonEscape(std::string(code)) + "\",";
  out += "\"reason\":\"" + JsonEscape(std::string(reason)) + "\",";
  out += "\"message\":\"" + JsonEscape(std::string(message)) + "\"";
  if (retry_after_ms > 0) {
    out += ",\"retry_after_ms\":" + std::to_string(retry_after_ms);
  }
  out += "}}";
  return out;
}

HttpResponse MakeErrorResponse(int status, std::string_view code,
                               std::string_view reason,
                               std::string_view message,
                               int64_t retry_after_ms) {
  HttpResponse response;
  response.status = status;
  response.body = JsonErrorBody(status, code, reason, message, retry_after_ms);
  response.retry_after_ms = retry_after_ms;
  return response;
}

}  // namespace fairrank
