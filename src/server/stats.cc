#include "server/stats.h"

#include "common/str_util.h"
#include "fairness/report.h"

namespace fairrank {

void ServerStats::RecordRequest(const std::string& endpoint, int status,
                                double seconds, bool truncated) {
  std::lock_guard<std::mutex> lock(mutex_);
  EndpointStats& ep = endpoints_[endpoint];
  ++ep.count;
  if (status >= 400) ++ep.errors;
  if (truncated) ++ep.truncated;
  ep.total_seconds += seconds;
  if (seconds > ep.max_seconds) ep.max_seconds = seconds;
  ep.latency.Observe(seconds);
}

void ServerStats::RecordCache(const EvalCacheStats& stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.Add(stats);
}

void ServerStats::RecordShed(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++shed_[reason];
}

void ServerStats::RecordAccepted() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++accepted_;
}

void ServerStats::RecordParseError() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++parse_errors_;
}

void ServerStats::RecordConnectionReuse() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++keep_alive_reuses_;
}

std::string ServerStats::ToJson(const ResourceBudget* process_budget,
                                int in_flight, bool draining,
                                size_t queue_depth,
                                const ResponseCacheStats& response_cache)
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  out += "\"in_flight\":" + std::to_string(in_flight) + ",";
  out += "\"draining\":" + std::string(draining ? "true" : "false") + ",";
  out += "\"queue_depth\":" + std::to_string(queue_depth) + ",";
  out += "\"accepted\":" + std::to_string(accepted_) + ",";
  out += "\"parse_errors\":" + std::to_string(parse_errors_) + ",";
  out += "\"keep_alive_reuses\":" + std::to_string(keep_alive_reuses_) + ",";

  out += "\"response_cache\":{";
  out += "\"hits\":" + std::to_string(response_cache.hits) + ",";
  out += "\"misses\":" + std::to_string(response_cache.misses) + ",";
  out += "\"insertions\":" + std::to_string(response_cache.insertions) + ",";
  out += "\"evictions\":" + std::to_string(response_cache.evictions) + ",";
  out += "\"bytes_used\":" + std::to_string(response_cache.bytes_used) + ",";
  out += "\"entries\":" + std::to_string(response_cache.entries);
  out += "},";

  out += "\"shed\":{";
  uint64_t shed_total = 0;
  bool first = true;
  for (const auto& [reason, count] : shed_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(reason) + "\":" + std::to_string(count);
    shed_total += count;
  }
  if (!first) out += ",";
  out += "\"total\":" + std::to_string(shed_total);
  out += "},";

  out += "\"budget\":";
  if (process_budget == nullptr) {
    out += "null,";
  } else {
    out += "{";
    out += "\"nodes_used\":" + std::to_string(process_budget->nodes_used()) +
           ",";
    out += "\"max_nodes\":" + std::to_string(process_budget->max_nodes()) +
           ",";
    out += "\"memory_used_bytes\":" +
           std::to_string(process_budget->memory_used_bytes()) + ",";
    out += "\"max_memory_bytes\":" +
           std::to_string(process_budget->max_memory_bytes()) + ",";
    out += "\"nodes_exhausted\":" +
           std::string(process_budget->nodes_exhausted() ? "true" : "false") +
           ",";
    out += "\"memory_exhausted\":" +
           std::string(process_budget->memory_exhausted() ? "true" : "false");
    out += "},";
  }

  out += "\"cache\":{";
  out += "\"histogram_hits\":" + std::to_string(cache_.histogram_hits) + ",";
  out += "\"histogram_misses\":" + std::to_string(cache_.histogram_misses) +
         ",";
  out += "\"divergence_hits\":" + std::to_string(cache_.divergence_hits) + ",";
  out += "\"divergence_misses\":" + std::to_string(cache_.divergence_misses) +
         ",";
  out += "\"evictions\":" + std::to_string(cache_.evictions) + ",";
  out += "\"histogram_hit_rate\":" +
         FormatDouble(cache_.histogram_hit_rate(), 4) + ",";
  out += "\"divergence_hit_rate\":" +
         FormatDouble(cache_.divergence_hit_rate(), 4);
  out += "},";

  out += "\"endpoints\":{";
  first = true;
  for (const auto& [endpoint, ep] : endpoints_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(endpoint) + "\":{";
    out += "\"count\":" + std::to_string(ep.count) + ",";
    out += "\"errors\":" + std::to_string(ep.errors) + ",";
    out += "\"truncated\":" + std::to_string(ep.truncated) + ",";
    out += "\"total_ms\":" + FormatDouble(ep.total_seconds * 1000.0, 3) + ",";
    out += "\"max_ms\":" + FormatDouble(ep.max_seconds * 1000.0, 3) + ",";
    // Same sketch reads as ToPrometheus' quantile samples: /stats reports
    // milliseconds at 3 decimals, /metrics seconds at 6 — identical digits.
    out += "\"p50_ms\":" +
           FormatDouble(ep.latency.QuantileSeconds(0.5).value_or(0.0) * 1000.0,
                        3) +
           ",";
    out += "\"p99_ms\":" +
           FormatDouble(ep.latency.QuantileSeconds(0.99).value_or(0.0) *
                            1000.0,
                        3);
    out += "}";
  }
  out += "}";

  out += "}";
  return out;
}

namespace {

/// One `name{labels} value` sample line; `labels` may be empty.
void Sample(std::string* out, const std::string& name,
            const std::string& labels, const std::string& value) {
  *out += name;
  if (!labels.empty()) *out += "{" + labels + "}";
  *out += " " + value + "\n";
}

void Header(std::string* out, const std::string& name, const char* type,
            const std::string& help) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " " + std::string(type) + "\n";
}

std::string EndpointLabel(const std::string& endpoint) {
  return "endpoint=\"" + JsonEscape(endpoint) + "\"";
}

}  // namespace

std::string ServerStats::ToPrometheus(
    const ResourceBudget* process_budget, int in_flight, bool draining,
    size_t queue_depth, const ResponseCacheStats& response_cache) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;

  const std::string requests = "fairrank_http_requests_total";
  Header(&out, requests, "counter", "Requests served, by endpoint");
  for (const auto& [endpoint, ep] : endpoints_) {
    Sample(&out, requests, EndpointLabel(endpoint), std::to_string(ep.count));
  }

  const std::string errors = "fairrank_http_request_errors_total";
  Header(&out, errors, "counter", "Responses with status >= 400, by endpoint");
  for (const auto& [endpoint, ep] : endpoints_) {
    Sample(&out, errors, EndpointLabel(endpoint), std::to_string(ep.errors));
  }

  const std::string truncated = "fairrank_http_requests_truncated_total";
  Header(&out, truncated, "counter",
         "200s whose body carried truncated results, by endpoint");
  for (const auto& [endpoint, ep] : endpoints_) {
    Sample(&out, truncated, EndpointLabel(endpoint),
           std::to_string(ep.truncated));
  }

  const std::string duration = "fairrank_http_request_duration_seconds";
  Header(&out, duration, "summary",
         "Request wall time, by endpoint (GK sketch; same sketch as /stats)");
  for (const auto& [endpoint, ep] : endpoints_) {
    const std::string label = EndpointLabel(endpoint);
    if (ep.latency.count() > 0) {
      Sample(&out, duration, label + ",quantile=\"0.5\"",
             FormatDouble(ep.latency.QuantileSeconds(0.5).value_or(0.0), 6));
      Sample(&out, duration, label + ",quantile=\"0.99\"",
             FormatDouble(ep.latency.QuantileSeconds(0.99).value_or(0.0), 6));
    }
    Sample(&out, duration + "_sum", label,
           FormatDouble(ep.total_seconds, 6));
    Sample(&out, duration + "_count", label, std::to_string(ep.count));
  }

  const std::string shed = "fairrank_http_shed_total";
  Header(&out, shed, "counter",
         "Requests shed before any work ran, by reason");
  uint64_t shed_total = 0;
  for (const auto& [reason, count] : shed_) {
    Sample(&out, shed, "reason=\"" + JsonEscape(reason) + "\"",
           std::to_string(count));
    shed_total += count;
  }
  Sample(&out, shed, "reason=\"total\"", std::to_string(shed_total));

  Header(&out, "fairrank_http_accepted_total", "counter",
         "Requests admitted past the admission gate");
  Sample(&out, "fairrank_http_accepted_total", "", std::to_string(accepted_));
  Header(&out, "fairrank_http_parse_errors_total", "counter",
         "Connections whose bytes never parsed into a routable request");
  Sample(&out, "fairrank_http_parse_errors_total", "",
         std::to_string(parse_errors_));
  Header(&out, "fairrank_http_keep_alive_reuses_total", "counter",
         "Requests served on an already-used kept-alive connection");
  Sample(&out, "fairrank_http_keep_alive_reuses_total", "",
         std::to_string(keep_alive_reuses_));

  Header(&out, "fairrank_http_in_flight_count", "gauge",
         "Requests currently executing");
  Sample(&out, "fairrank_http_in_flight_count", "",
         std::to_string(in_flight));
  Header(&out, "fairrank_http_queue_depth_count", "gauge",
         "Accepted connections waiting for a worker");
  Sample(&out, "fairrank_http_queue_depth_count", "",
         std::to_string(queue_depth));
  Header(&out, "fairrank_http_draining_info", "gauge",
         "1 while the server is draining for shutdown");
  Sample(&out, "fairrank_http_draining_info", "", draining ? "1" : "0");

  const std::string rcache = "fairrank_response_cache_events_total";
  Header(&out, rcache, "counter", "Response-cache activity, by event");
  Sample(&out, rcache, "event=\"hits\"", std::to_string(response_cache.hits));
  Sample(&out, rcache, "event=\"misses\"",
         std::to_string(response_cache.misses));
  Sample(&out, rcache, "event=\"insertions\"",
         std::to_string(response_cache.insertions));
  Sample(&out, rcache, "event=\"evictions\"",
         std::to_string(response_cache.evictions));
  Header(&out, "fairrank_response_cache_bytes", "gauge",
         "Resident bytes of cached responses");
  Sample(&out, "fairrank_response_cache_bytes", "",
         std::to_string(response_cache.bytes_used));
  Header(&out, "fairrank_response_cache_entries_count", "gauge",
         "Cached responses currently resident");
  Sample(&out, "fairrank_response_cache_entries_count", "",
         std::to_string(response_cache.entries));

  const std::string ecache = "fairrank_eval_cache_events_total";
  Header(&out, ecache, "counter",
         "Evaluator-cache activity rolled up over finished requests");
  Sample(&out, ecache, "event=\"histogram_hits\"",
         std::to_string(cache_.histogram_hits));
  Sample(&out, ecache, "event=\"histogram_misses\"",
         std::to_string(cache_.histogram_misses));
  Sample(&out, ecache, "event=\"divergence_hits\"",
         std::to_string(cache_.divergence_hits));
  Sample(&out, ecache, "event=\"divergence_misses\"",
         std::to_string(cache_.divergence_misses));
  Sample(&out, ecache, "event=\"evictions\"",
         std::to_string(cache_.evictions));

  if (process_budget != nullptr) {
    Header(&out, "fairrank_budget_nodes_used_count", "gauge",
           "Process-budget nodes spent");
    Sample(&out, "fairrank_budget_nodes_used_count", "",
           std::to_string(process_budget->nodes_used()));
    Header(&out, "fairrank_budget_nodes_limit_count", "gauge",
           "Process-budget node cap (0 = unlimited)");
    Sample(&out, "fairrank_budget_nodes_limit_count", "",
           std::to_string(process_budget->max_nodes()));
    Header(&out, "fairrank_budget_memory_used_bytes", "gauge",
           "Process-budget approximate memory spent");
    Sample(&out, "fairrank_budget_memory_used_bytes", "",
           std::to_string(process_budget->memory_used_bytes()));
    Header(&out, "fairrank_budget_memory_limit_bytes", "gauge",
           "Process-budget memory cap (0 = unlimited)");
    Sample(&out, "fairrank_budget_memory_limit_bytes", "",
           std::to_string(process_budget->max_memory_bytes()));
  }

  return out;
}

}  // namespace fairrank
