#include "server/stats.h"

#include "common/str_util.h"
#include "fairness/report.h"

namespace fairrank {

void ServerStats::RecordRequest(const std::string& endpoint, int status,
                                double seconds, bool truncated) {
  std::lock_guard<std::mutex> lock(mutex_);
  EndpointStats& ep = endpoints_[endpoint];
  ++ep.count;
  if (status >= 400) ++ep.errors;
  if (truncated) ++ep.truncated;
  ep.total_seconds += seconds;
  if (seconds > ep.max_seconds) ep.max_seconds = seconds;
}

void ServerStats::RecordCache(const EvalCacheStats& stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.Add(stats);
}

void ServerStats::RecordShed(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++shed_[reason];
}

void ServerStats::RecordAccepted() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++accepted_;
}

void ServerStats::RecordParseError() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++parse_errors_;
}

void ServerStats::RecordConnectionReuse() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++keep_alive_reuses_;
}

std::string ServerStats::ToJson(const ResourceBudget* process_budget,
                                int in_flight, bool draining,
                                size_t queue_depth,
                                const ResponseCacheStats& response_cache)
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  out += "\"in_flight\":" + std::to_string(in_flight) + ",";
  out += "\"draining\":" + std::string(draining ? "true" : "false") + ",";
  out += "\"queue_depth\":" + std::to_string(queue_depth) + ",";
  out += "\"accepted\":" + std::to_string(accepted_) + ",";
  out += "\"parse_errors\":" + std::to_string(parse_errors_) + ",";
  out += "\"keep_alive_reuses\":" + std::to_string(keep_alive_reuses_) + ",";

  out += "\"response_cache\":{";
  out += "\"hits\":" + std::to_string(response_cache.hits) + ",";
  out += "\"misses\":" + std::to_string(response_cache.misses) + ",";
  out += "\"insertions\":" + std::to_string(response_cache.insertions) + ",";
  out += "\"evictions\":" + std::to_string(response_cache.evictions) + ",";
  out += "\"bytes_used\":" + std::to_string(response_cache.bytes_used) + ",";
  out += "\"entries\":" + std::to_string(response_cache.entries);
  out += "},";

  out += "\"shed\":{";
  uint64_t shed_total = 0;
  bool first = true;
  for (const auto& [reason, count] : shed_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(reason) + "\":" + std::to_string(count);
    shed_total += count;
  }
  if (!first) out += ",";
  out += "\"total\":" + std::to_string(shed_total);
  out += "},";

  out += "\"budget\":";
  if (process_budget == nullptr) {
    out += "null,";
  } else {
    out += "{";
    out += "\"nodes_used\":" + std::to_string(process_budget->nodes_used()) +
           ",";
    out += "\"max_nodes\":" + std::to_string(process_budget->max_nodes()) +
           ",";
    out += "\"memory_used_bytes\":" +
           std::to_string(process_budget->memory_used_bytes()) + ",";
    out += "\"max_memory_bytes\":" +
           std::to_string(process_budget->max_memory_bytes()) + ",";
    out += "\"nodes_exhausted\":" +
           std::string(process_budget->nodes_exhausted() ? "true" : "false") +
           ",";
    out += "\"memory_exhausted\":" +
           std::string(process_budget->memory_exhausted() ? "true" : "false");
    out += "},";
  }

  out += "\"cache\":{";
  out += "\"histogram_hits\":" + std::to_string(cache_.histogram_hits) + ",";
  out += "\"histogram_misses\":" + std::to_string(cache_.histogram_misses) +
         ",";
  out += "\"divergence_hits\":" + std::to_string(cache_.divergence_hits) + ",";
  out += "\"divergence_misses\":" + std::to_string(cache_.divergence_misses) +
         ",";
  out += "\"evictions\":" + std::to_string(cache_.evictions) + ",";
  out += "\"histogram_hit_rate\":" +
         FormatDouble(cache_.histogram_hit_rate(), 4) + ",";
  out += "\"divergence_hit_rate\":" +
         FormatDouble(cache_.divergence_hit_rate(), 4);
  out += "},";

  out += "\"endpoints\":{";
  first = true;
  for (const auto& [endpoint, ep] : endpoints_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(endpoint) + "\":{";
    out += "\"count\":" + std::to_string(ep.count) + ",";
    out += "\"errors\":" + std::to_string(ep.errors) + ",";
    out += "\"truncated\":" + std::to_string(ep.truncated) + ",";
    out += "\"total_ms\":" + FormatDouble(ep.total_seconds * 1000.0, 3) + ",";
    out += "\"max_ms\":" + FormatDouble(ep.max_seconds * 1000.0, 3);
    out += "}";
  }
  out += "}";

  out += "}";
  return out;
}

}  // namespace fairrank
