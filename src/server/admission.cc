#include "server/admission.h"

#include <chrono>

namespace fairrank {

const char* AdmissionVerdictToString(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::kAdmit:
      return "admit";
    case AdmissionVerdict::kShedDraining:
      return "draining";
    case AdmissionVerdict::kShedBudget:
      return "budget_exhausted";
    case AdmissionVerdict::kShedOverload:
      return "overloaded";
  }
  return "admit";
}

bool AdmissionController::BudgetOutOfHeadroom() const {
  if (process_budget_ == nullptr) return false;
  if (process_budget_->nodes_exhausted() ||
      process_budget_->memory_exhausted()) {
    return true;
  }
  if (process_budget_->max_nodes() != 0 &&
      process_budget_->nodes_used() >= process_budget_->max_nodes()) {
    return true;
  }
  if (process_budget_->max_memory_bytes() != 0 &&
      process_budget_->memory_used_bytes() >=
          process_budget_->max_memory_bytes()) {
    return true;
  }
  return false;
}

AdmissionVerdict AdmissionController::TryAdmit(bool draining) {
  if (draining) return AdmissionVerdict::kShedDraining;
  if (BudgetOutOfHeadroom()) return AdmissionVerdict::kShedBudget;
  std::lock_guard<std::mutex> lock(mutex_);
  if (max_inflight_ > 0 && in_flight_ >= max_inflight_) {
    return AdmissionVerdict::kShedOverload;
  }
  ++in_flight_;
  return AdmissionVerdict::kAdmit;
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (in_flight_ > 0) --in_flight_;
  }
  idle_.notify_all();
}

bool AdmissionController::WaitUntilIdle(const Deadline& deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto idle = [this]() FAIRRANK_REQUIRES(mutex_) { return in_flight_ == 0; };
  if (deadline.is_infinite()) {
    idle_.wait(lock, idle);
    return true;
  }
  double remaining = deadline.RemainingSeconds();
  if (remaining <= 0) return idle();
  return idle_.wait_for(lock, std::chrono::duration<double>(remaining), idle);
}

int AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

}  // namespace fairrank
