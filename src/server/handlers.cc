#include "server/handlers.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "fairness/aggregate.h"
#include "fairness/auditor.h"
#include "fairness/option_flags.h"
#include "fairness/report.h"
#include "fairness/suite.h"

namespace fairrank {

namespace {

/// Collects the request's parameters (query string, plus the form-encoded
/// body of a POST) into a FlagParser so the CLI's option parsers apply
/// verbatim. Parameter names normalize '_' to '-', so `max_nodes` and
/// `max-nodes` are the same flag. Later duplicates win; the body overrides
/// the query string.
StatusOr<FlagParser> RequestFlags(const HttpRequest& request) {
  std::vector<std::pair<std::string, std::string>> pairs = request.query;
  if (request.method == "POST" && !request.body.empty()) {
    for (auto& [name, value] : ParseQueryString(request.body)) {
      pairs.emplace_back(std::move(name), std::move(value));
    }
  }
  for (auto& [name, value] : pairs) {
    std::replace(name.begin(), name.end(), '_', '-');
  }
  return FlagParser::FromPairs(pairs);
}

/// Resolves the `dataset` parameter against the loaded tables.
StatusOr<const Table*> ResolveDataset(const ServerEnv& env,
                                      const FlagParser& flags) {
  std::string name = flags.GetString("dataset", env.default_dataset);
  auto it = env.datasets.find(name);
  if (it != env.datasets.end()) return it->second;
  std::vector<std::string> known;
  known.reserve(env.datasets.size());
  for (const auto& [key, table] : env.datasets) known.push_back(key);
  return Status::NotFound("unknown dataset '" + name + "' (loaded: " +
                          Join(known, ", ") + ")");
}

/// Composes a request's parsed limits with the server's: the deadline is the
/// earlier of the request timeout and the server ceiling, cancellation is
/// the drain token, and the budget chains to the process-level parent so
/// admission control sees every node this request spends.
void ComposeLimits(const ServerEnv& env, const FlagParser& flags,
                   ExecutionLimits* limits) {
  if (limits->timeout_ms <= 0 && !flags.Has("timeout-ms") &&
      env.default_timeout_ms > 0) {
    limits->timeout_ms = env.default_timeout_ms;
  }
  if (env.timeout_ceiling_ms > 0) {
    limits->deadline = Deadline::AfterMillis(env.timeout_ceiling_ms);
  }
  limits->cancel = env.drain_cancel;
  limits->parent_budget = env.process_budget;
}

int ClampThreads(int requested, int max_threads) {
  if (requested < 1) return 1;
  if (max_threads > 0 && requested > max_threads) return max_threads;
  return requested;
}

std::vector<std::string> KnownAuditParams() {
  std::vector<std::string> known = AuditOptionFlagNames();
  known.push_back("function");
  known.push_back("dataset");
  known.push_back("aggregate");
  known.push_back("ingest-threads");
  return known;
}

/// `/audit?aggregate=1`: the cell-store route — sharded ingest (bounded by
/// the composed request limits) followed by the balanced audit over cells.
/// Served out of the same handler so admission control, tracing, and the
/// response cache (the canonicalizer folds `aggregate` and `ingest-threads`
/// into the key by iterating FlagNames()) treat it like any audit.
StatusOr<HandlerResult> RunAuditAggregate(const ServerEnv& env,
                                          const FlagParser& flags,
                                          const Table& table,
                                          const ScoringFunction& fn,
                                          const AuditOptions& options) {
  FAIRRANK_ASSIGN_OR_RETURN(std::vector<double> scores, fn.ScoreAll(table));
  FAIRRANK_ASSIGN_OR_RETURN(int64_t ingest_threads,
                            flags.GetInt("ingest-threads", 1));

  CellStoreIngestOptions ingest;
  ingest.num_bins = options.evaluator.num_bins;
  ingest.score_lo = options.evaluator.score_lo;
  ingest.score_hi = options.evaluator.score_hi;
  ingest.num_threads =
      ClampThreads(static_cast<int>(ingest_threads), env.max_request_threads);
  ingest.protected_attributes = options.protected_attributes;

  ResourceBudget budget = options.limits.MakeBudget();
  ExecutionContext context = options.limits.MakeContext(&budget);

  Stopwatch ingest_timer;
  FAIRRANK_ASSIGN_OR_RETURN(
      CellStore store, BuildCellStoreParallel(table, scores, ingest, context));
  AggregateReportInfo info;
  info.scoring_function = fn.Name();
  info.divergence = options.evaluator.divergence;
  info.ingest_threads = ingest.num_threads;
  info.ingest_seconds = ingest_timer.ElapsedSeconds();

  Stopwatch audit_timer;
  FAIRRANK_ASSIGN_OR_RETURN(
      AggregateAuditResult result,
      AuditAggregateBalanced(store, options.evaluator.divergence, context));
  info.audit_seconds = audit_timer.ElapsedSeconds();

  HandlerResult out;
  out.response.body = FormatAggregateAuditJson(store, result, info);
  return out;
}

std::vector<std::string> KnownSuiteParams() {
  std::vector<std::string> known = AuditOptionFlagNames();
  known.push_back("functions");
  known.push_back("algorithms");
  known.push_back("suite-threads");
  known.push_back("suite-budget");
  known.push_back("no-share-cache");
  known.push_back("dataset");
  return known;
}

StatusOr<HandlerResult> RunAudit(const ServerEnv& env,
                                 const HttpRequest& request,
                                 TraceContext* trace) {
  FAIRRANK_ASSIGN_OR_RETURN(FlagParser flags, RequestFlags(request));
  FAIRRANK_RETURN_NOT_OK(ValidateKnownFlags(flags, KnownAuditParams()));
  FAIRRANK_ASSIGN_OR_RETURN(const Table* table, ResolveDataset(env, flags));
  FAIRRANK_ASSIGN_OR_RETURN(
      std::unique_ptr<ScoringFunction> fn,
      MakeFunctionFromSpec(flags.GetString("function", "alpha:0.5")));
  FAIRRANK_ASSIGN_OR_RETURN(AuditOptions options,
                            AuditOptionsFromFlags(flags));
  ComposeLimits(env, flags, &options.limits);
  options.limits.trace = trace;
  options.evaluator.num_threads =
      ClampThreads(options.evaluator.num_threads, env.max_request_threads);

  FAIRRANK_ASSIGN_OR_RETURN(bool aggregate, flags.GetBool("aggregate", false));
  if (aggregate) return RunAuditAggregate(env, flags, *table, *fn, options);

  FairnessAuditor auditor(table);
  FAIRRANK_ASSIGN_OR_RETURN(AuditResult result, auditor.Audit(*fn, options));
  HandlerResult out;
  out.response.body = FormatAuditJson(result);
  out.truncated = result.truncated;
  out.cache = result.cache;
  return out;
}

StatusOr<HandlerResult> RunSuite(const ServerEnv& env,
                                 const HttpRequest& request,
                                 TraceContext* trace) {
  FAIRRANK_ASSIGN_OR_RETURN(FlagParser flags, RequestFlags(request));
  FAIRRANK_RETURN_NOT_OK(ValidateKnownFlags(flags, KnownSuiteParams()));
  FAIRRANK_ASSIGN_OR_RETURN(const Table* table, ResolveDataset(env, flags));
  FAIRRANK_ASSIGN_OR_RETURN(AuditOptions audit_options,
                            AuditOptionsFromFlags(flags));

  std::vector<std::unique_ptr<ScoringFunction>> owned;
  std::vector<const ScoringFunction*> functions;
  for (const std::string& spec :
       Split(flags.GetString("functions", "alpha:0.25,alpha:0.5,alpha:0.75"),
             ',')) {
    FAIRRANK_ASSIGN_OR_RETURN(std::unique_ptr<ScoringFunction> fn,
                              MakeFunctionFromSpec(std::string(Trim(spec))));
    owned.push_back(std::move(fn));
    functions.push_back(owned.back().get());
  }

  SuiteOptions options;
  std::string algorithms = flags.GetString("algorithms", "");
  if (!algorithms.empty()) {
    for (const std::string& name : Split(algorithms, ',')) {
      options.algorithms.emplace_back(Trim(name));
    }
  }
  options.evaluator = audit_options.evaluator;
  options.seed = audit_options.seed;
  options.protected_attributes = audit_options.protected_attributes;
  options.limits = audit_options.limits;
  ComposeLimits(env, flags, &options.limits);
  options.limits.trace = trace;
  options.evaluator.num_threads =
      ClampThreads(options.evaluator.num_threads, env.max_request_threads);
  FAIRRANK_ASSIGN_OR_RETURN(int64_t suite_threads,
                            flags.GetInt("suite-threads", 1));
  if (suite_threads < 0) {
    return Status::InvalidArgument("suite-threads must be >= 0");
  }
  options.num_threads =
      ClampThreads(static_cast<int>(suite_threads), env.max_request_threads);
  std::string budget_mode = flags.GetString("suite-budget", "total");
  if (budget_mode == "total") {
    options.budget_mode = SuiteBudgetMode::kTotal;
  } else if (budget_mode == "per-cell") {
    options.budget_mode = SuiteBudgetMode::kPerCell;
  } else {
    return Status::InvalidArgument("suite-budget must be total|per-cell");
  }
  FAIRRANK_ASSIGN_OR_RETURN(bool no_share,
                            flags.GetBool("no-share-cache", false));
  options.share_column_cache = !no_share;

  AuditSuite suite(table);
  FAIRRANK_ASSIGN_OR_RETURN(SuiteResult result,
                            suite.Run(functions, options));
  HandlerResult out;
  out.response.body = FormatSuiteJson(result);
  out.truncated = result.summary.cells_truncated > 0;
  out.cache = result.summary.cache;
  return out;
}

/// The no-exceptions-escape wrapper both endpoints share: a library failure
/// becomes a structured status response and a thrown exception becomes a
/// 500 — one misbehaving request must never take the process down.
template <typename Fn>
HandlerResult GuardRequest(const ServerEnv& env, Fn&& fn) {
  try {
    StatusOr<HandlerResult> result = fn();
    if (result.ok()) return std::move(result).value();
    HandlerResult out;
    out.response = ResponseFromStatus(result.status(), env.retry_after_ms);
    return out;
  } catch (const std::exception& e) {
    HandlerResult out;
    out.response = MakeErrorResponse(
        500, "Internal", "exception",
        std::string("unhandled exception: ") + e.what());
    return out;
  } catch (...) {
    HandlerResult out;
    out.response =
        MakeErrorResponse(500, "Internal", "exception", "unknown exception");
    return out;
  }
}

}  // namespace

StatusOr<std::string> CanonicalRequestKey(const ServerEnv& env,
                                          const HttpRequest& request) {
  FAIRRANK_ASSIGN_OR_RETURN(FlagParser flags, RequestFlags(request));
  std::string key = request.path;
  key += '\n';
  key += flags.GetString("dataset", env.default_dataset);
  for (const std::string& name : flags.FlagNames()) {
    // The dataset is already folded into the key above, with the default
    // resolved — repeating the raw flag here would split "dataset=<default>
    // spelled out" and "dataset omitted" into two cache entries.
    if (name == "dataset") continue;
    key += '\n';
    key += name;
    key += '=';
    key += flags.GetString(name, "");
  }
  return key;
}

HttpResponse ResponseFromStatus(const Status& status, int64_t retry_after_ms) {
  int http_status = 500;
  int64_t retry = 0;
  const char* reason = "error";
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kUnimplemented:
      http_status = 400;
      reason = "bad_request";
      break;
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
      http_status = 503;
      reason = "exhausted";
      retry = retry_after_ms;
      break;
    default:
      break;
  }
  return MakeErrorResponse(http_status, StatusCodeToString(status.code()),
                           reason, status.message(), retry);
}

HandlerResult HandleAudit(const ServerEnv& env, const HttpRequest& request,
                          TraceContext* trace) {
  return GuardRequest(env, [&] { return RunAudit(env, request, trace); });
}

HandlerResult HandleSuite(const ServerEnv& env, const HttpRequest& request,
                          TraceContext* trace) {
  return GuardRequest(env, [&] { return RunSuite(env, request, trace); });
}

}  // namespace fairrank
