#ifndef FAIRRANK_SERVER_HANDLERS_H_
#define FAIRRANK_SERVER_HANDLERS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/budget.h"
#include "common/deadline.h"
#include "data/table.h"
#include "fairness/eval_cache.h"
#include "server/http.h"

namespace fairrank {

/// Immutable environment the request handlers run against. The tables are
/// loaded once at startup and shared read-only by every request (Table is
/// thread-compatible; handlers only call const methods), so a request costs
/// no data loading.
struct ServerEnv {
  /// Dataset name -> borrowed table. The server owns the tables and
  /// guarantees they outlive every request.
  std::map<std::string, const Table*> datasets;
  /// Dataset used when the request names none.
  std::string default_dataset;
  /// Server-wide per-request wall-clock ceiling. A request's own
  /// `timeout_ms` composes with this via Deadline::Earlier — a client can
  /// tighten its deadline but never loosen it past the ceiling. <= 0 means
  /// no ceiling.
  int64_t timeout_ceiling_ms = 10000;
  /// Applied when the request supplies no `timeout_ms`. <= 0 means the
  /// ceiling alone bounds the request.
  int64_t default_timeout_ms = 0;
  /// Process-level budget every request's child budget chains to (may be
  /// null = unbounded). Borrowed from the server.
  ResourceBudget* process_budget = nullptr;
  /// Cancelled when the server drains; in-flight searches degrade to
  /// truncated best-so-far answers and return promptly.
  CancellationToken drain_cancel;
  /// Upper bound on evaluator threads a single request may ask for.
  int max_request_threads = 1;
  /// Backoff hint attached to load-shedding (503) responses.
  int64_t retry_after_ms = 250;
};

/// What a handler produced: the wire response plus the observability the
/// worker rolls into ServerStats after sending.
struct HandlerResult {
  HttpResponse response;
  bool truncated = false;   ///< 200 whose body carries truncated: true.
  EvalCacheStats cache;     ///< Evaluator-cache counters of this request.
};

/// GET/POST /audit — one audit over a loaded dataset. Query (and
/// form-encoded body) parameters mirror the fairaudit CLI flags
/// (`function`, `algorithm`, `timeout-ms`, ... — '_' and '-' are
/// interchangeable) plus `dataset`. Unknown parameters are a 400, exactly
/// like an unknown CLI flag. Exhaustion inside the request (its own limits)
/// degrades to a 200 with truncated: true; only pre-flight failures and
/// evaluation errors are non-200. Never throws. `trace`, when non-null, is
/// the request's span collector (threaded into ExecutionLimits::trace —
/// the server attaches one when slow-request diagnosis is on).
HandlerResult HandleAudit(const ServerEnv& env, const HttpRequest& request,
                          TraceContext* trace = nullptr);

/// GET/POST /suite — an algorithms × functions grid over a loaded dataset.
/// Accepts the audit parameters plus `functions`, `algorithms`,
/// `suite-threads` (clamped to max_request_threads), `suite-budget`,
/// `no-share-cache`. Failed cells degrade inside the grid (SuiteCell::
/// error); the response is 200 unless the grid itself cannot be configured.
/// `trace` as in HandleAudit (cells record spans concurrently; the trace
/// is thread-safe).
HandlerResult HandleSuite(const ServerEnv& env, const HttpRequest& request,
                          TraceContext* trace = nullptr);

/// Canonical identity of a cacheable /audit//suite request:
/// "<path>\n<dataset>\n<name>=<value>\n..." with the flags normalized
/// exactly as the handlers see them (query string plus POST form body,
/// '_' -> '-', later duplicates win) and serialized in sorted name order —
/// so GET vs POST and parameter reordering collapse onto one key, and two
/// requests with equal keys run the identical computation over the same
/// immutable table. The `dataset` component is resolved against
/// `env.default_dataset` so naming the default explicitly hits the same
/// entry as omitting it. Fails only when the parameters fail to parse (the
/// handler would fail the same request identically).
StatusOr<std::string> CanonicalRequestKey(const ServerEnv& env,
                                          const HttpRequest& request);

/// Maps a non-OK library Status to the server's structured error response:
/// InvalidArgument/NotFound/OutOfRange/Unimplemented -> 400,
/// exhaustion (ResourceExhausted/DeadlineExceeded/Cancelled) -> 503 with
/// `retry_after_ms`, everything else -> 500.
HttpResponse ResponseFromStatus(const Status& status, int64_t retry_after_ms);

}  // namespace fairrank

#endif  // FAIRRANK_SERVER_HANDLERS_H_
