#ifndef FAIRRANK_SERVER_STATS_H_
#define FAIRRANK_SERVER_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/budget.h"
#include "common/telemetry.h"
#include "common/thread_annotations.h"
#include "fairness/eval_cache.h"
#include "server/admission.h"
#include "server/response_cache.h"

namespace fairrank {

/// Aggregated observability for fairauditd, exposed at /stats and flushed
/// once more at shutdown. Everything here is monotonic over the life of the
/// process; instantaneous gauges (in-flight, queue depth, budget headroom)
/// are read from their owners at snapshot time rather than mirrored.
/// Thread-safe; RecordRequest is on every request's path, so the critical
/// section is a few counter bumps.
class ServerStats {
 public:
  /// A finished request on `endpoint` ("/audit", "/suite", "/healthz",
  /// "/stats"), its HTTP status, wall seconds spent, and whether the body
  /// carried truncated results.
  void RecordRequest(const std::string& endpoint, int status, double seconds,
                     bool truncated) FAIRRANK_EXCLUDES(mutex_);

  /// Rolls a finished request's evaluator-cache counters into the
  /// process-wide rollup.
  void RecordCache(const EvalCacheStats& stats) FAIRRANK_EXCLUDES(mutex_);

  /// A request shed before any work ran, keyed by admission verdict
  /// ("draining", "budget_exhausted", "overloaded") or by the listener's
  /// own "queue_full".
  void RecordShed(const std::string& reason) FAIRRANK_EXCLUDES(mutex_);

  /// A request admitted past the gate (it may still fail or truncate).
  void RecordAccepted() FAIRRANK_EXCLUDES(mutex_);

  /// A connection whose bytes never parsed into a routable request.
  void RecordParseError() FAIRRANK_EXCLUDES(mutex_);

  /// A request served on an already-used kept-alive connection (the
  /// second and later requests of one fd) — the saved TCP setups.
  void RecordConnectionReuse() FAIRRANK_EXCLUDES(mutex_);

  /// JSON snapshot. `process_budget` may be null; `in_flight`,
  /// `queue_depth`, `draining`, and `response_cache` are the live gauges
  /// sampled by the caller who owns them.
  std::string ToJson(const ResourceBudget* process_budget, int in_flight,
                     bool draining, size_t queue_depth,
                     const ResponseCacheStats& response_cache) const
      FAIRRANK_EXCLUDES(mutex_);

  /// Prometheus text exposition of the same counters (and the same latency
  /// sketches — `/stats` p50/p99 and `/metrics` quantiles are one
  /// GK-sketch read apart, never two implementations). Serves the server
  /// half of GET /metrics; the process-registry half comes from
  /// MetricsRegistry::RenderPrometheus.
  std::string ToPrometheus(const ResourceBudget* process_budget, int in_flight,
                           bool draining, size_t queue_depth,
                           const ResponseCacheStats& response_cache) const
      FAIRRANK_EXCLUDES(mutex_);

 private:
  struct EndpointStats {
    uint64_t count = 0;
    uint64_t errors = 0;     ///< Responses with status >= 400.
    uint64_t truncated = 0;  ///< 200s that carried truncated: true.
    double total_seconds = 0;
    double max_seconds = 0;
    /// GK-backed per-endpoint latency (seconds); p50/p99 in both /stats
    /// and /metrics are read off this one sketch (see common/telemetry.h).
    LatencySketch latency;
  };

  mutable std::mutex mutex_;
  uint64_t accepted_ FAIRRANK_GUARDED_BY(mutex_) = 0;
  uint64_t parse_errors_ FAIRRANK_GUARDED_BY(mutex_) = 0;
  uint64_t keep_alive_reuses_ FAIRRANK_GUARDED_BY(mutex_) = 0;
  std::map<std::string, uint64_t> shed_ FAIRRANK_GUARDED_BY(mutex_);
  std::map<std::string, EndpointStats> endpoints_ FAIRRANK_GUARDED_BY(mutex_);
  EvalCacheStats cache_ FAIRRANK_GUARDED_BY(mutex_);
};

}  // namespace fairrank

#endif  // FAIRRANK_SERVER_STATS_H_
