#ifndef FAIRRANK_SERVER_SERVER_H_
#define FAIRRANK_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/budget.h"
#include "common/deadline.h"
#include "common/status.h"
#include "data/table.h"
#include "server/admission.h"
#include "server/handlers.h"
#include "server/http.h"
#include "server/queue.h"
#include "server/response_cache.h"
#include "server/stats.h"

namespace fairrank {

/// Configuration of a fairauditd instance.
struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; the bound port is port() after Start().
  /// Worker threads serving requests; <= 0 picks HardwareThreads().
  int num_workers = 4;
  /// Concurrent /audit//suite requests past admission; 0 = num_workers.
  int max_inflight_audits = 0;
  /// Accepted connections waiting for a worker; beyond this the listener
  /// sheds with a canned 503 ("queue_full").
  size_t queue_capacity = 16;
  /// Server-wide per-request wall-clock ceiling (see ServerEnv).
  int64_t request_timeout_ceiling_ms = 10000;
  /// Default per-request timeout when the client sends none; 0 = ceiling
  /// only.
  int64_t default_timeout_ms = 0;
  /// Process-level aggregate budgets across ALL requests ever served
  /// (0 = unlimited). When the node budget runs dry the server stops
  /// admitting audit work (503 + retry_after_ms) rather than crashing or
  /// queueing.
  uint64_t max_total_nodes = 0;
  uint64_t max_total_memory_mb = 0;
  /// Backoff hint on every load-shedding response.
  int64_t retry_after_ms = 250;
  /// How long the drain sequence waits for in-flight requests before
  /// cancelling them cooperatively.
  int64_t drain_grace_ms = 2000;
  /// Per-connection socket read/write inactivity timeout.
  int64_t io_timeout_ms = 5000;
  /// HTTP/1.1 keep-alive: serve multiple requests per connection. Off
  /// forces `Connection: close` after every response.
  bool keep_alive = true;
  /// How long a kept-alive connection may sit idle between requests before
  /// the worker closes it (composed with io_timeout_ms via
  /// Deadline::Earlier; a kept-alive idle connection holds a worker, so
  /// this also bounds worker occupancy). <= 0 falls back to io_timeout_ms.
  int64_t keep_alive_idle_ms = 5000;
  /// Requests served on one connection before the server closes it
  /// (guards a single client monopolizing a worker forever); <= 0 is
  /// unlimited.
  int max_requests_per_connection = 100;
  /// Byte cap of the whole-response cache over (dataset, canonicalized
  /// flags); 0 disables caching. Cache memory is charged to the
  /// process-level memory budget.
  uint64_t response_cache_mb = 8;
  /// Upper bound on the time the *listener* spends pushing a canned shed
  /// response to a slow client — task 0 must return to accepting, so this
  /// is much shorter than io_timeout_ms.
  int64_t shed_send_timeout_ms = 250;
  /// Evaluator-thread cap per request.
  int max_request_threads = 1;
  /// Any /audit or /suite request slower than this many milliseconds gets
  /// its span tree dumped through log_sink. > 0 also turns on per-request
  /// tracing for those endpoints (a TraceContext per request); 0 leaves
  /// requests untraced — the pipeline then pays a single null-pointer
  /// check per instrumentation site.
  int64_t slow_request_ms = 0;
  /// One structured JSON line per finished request through log_sink
  /// (request_id, method, path, status, duration_ms, trace_id).
  bool access_log = false;
  /// Sink for access-log lines and slow-request span dumps. The server
  /// never touches stdio itself; fairauditd wires this to stdout. Called
  /// from worker threads, so it must be thread-safe. Empty = lines are
  /// dropped.
  std::function<void(const std::string&)> log_sink;
  HttpSizeLimits size_limits;
  /// Polled by the listener between accepts; returning true triggers the
  /// same graceful drain as RequestShutdown(). Lets main() wire the process
  /// signal latch (common/shutdown.h) in without the server owning signal
  /// handling. May be empty.
  std::function<bool()> external_shutdown;
};

/// A long-running audit service over immutable, load-once tables.
///
/// Lifecycle:
///   FairAuditServer server(std::move(tables), options);
///   FAIRRANK_RETURN_NOT_OK(server.Start());   // binds; port() now valid
///   Status done = server.Serve();             // blocks until drained
///
/// Serve() runs a listener task plus num_workers worker tasks on one
/// ParallelForEach pool (the repo's only sanctioned thread source). The
/// listener accepts, tags connections with arrival order, and hands fds to
/// a BoundedQueue; workers pop, parse, route, and answer. Admission control
/// (AdmissionController) gates /audit and /suite; /healthz, /stats, and
/// /metrics are always served, even while draining.
///
/// Fault containment: every request runs under GuardRequest (see
/// handlers.cc) — bad input, fault-injected library failures, and budget
/// trips produce structured JSON errors or truncated bodies on that one
/// connection; the process and concurrent requests are unaffected.
///
/// Drain: RequestShutdown() (or external_shutdown returning true, wired to
/// SIGINT/SIGTERM by fairauditd) stops accepting, waits up to
/// drain_grace_ms for in-flight requests, then requests cooperative
/// cancellation so stragglers return truncated best-so-far answers; Serve()
/// returns OK after the last worker exits. Stats survive for a final
/// StatsJson() flush.
class FairAuditServer {
 public:
  /// `tables` are owned by the server and must be non-null; `default_name`
  /// must be a key of `tables`.
  FairAuditServer(std::map<std::string, std::unique_ptr<Table>> tables,
                  std::string default_name, ServerOptions options);
  ~FairAuditServer();

  FairAuditServer(const FairAuditServer&) = delete;
  FairAuditServer& operator=(const FairAuditServer&) = delete;

  /// Binds and listens. After OK, port() returns the bound port (resolves
  /// an ephemeral port 0 request).
  Status Start();

  int port() const { return port_; }

  /// Serves until drained; blocks the calling thread. Call Start() first.
  Status Serve();

  /// Starts the graceful drain from any thread. Idempotent.
  void RequestShutdown();

  /// True once a drain has been requested.
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Snapshot of the /stats body, also valid after Serve() returns (the
  /// final flush fairauditd prints on exit).
  std::string StatsJson() const;

 private:
  /// Task 0 of the pool: accept loop + drain coordinator.
  void ListenerLoop();
  /// Tasks 1..N: pop a connection, serve it until it closes.
  void WorkerLoop();
  /// Serves one connection end to end: a keep-alive loop reading requests
  /// off one fd until the client opts out (`Connection: close`), the idle
  /// deadline expires, the per-connection request cap is reached, or a
  /// drain starts.
  void ServeConnection(int fd);
  /// Routes a parsed request to its endpoint (response cache consulted for
  /// /audit and /suite). `trace` is this request's span collector (null
  /// when tracing is off); it reaches the handlers via ExecutionLimits.
  HandlerResult Route(const HttpRequest& request, TraceContext* trace);

  /// Reads one request (head + body) off `fd` under io_timeout_ms and the
  /// size limits. `carry` holds bytes read past the previous request on
  /// this connection (in) and past this one (out). With `subsequent` true
  /// (second and later requests of a kept-alive connection) the wait for
  /// the first byte runs under the idle deadline and aborts on drain; a
  /// quiet connection end there returns Cancelled, which the caller treats
  /// as a normal close rather than an error. Other non-OK statuses map to
  /// the HTTP error the caller sends.
  StatusOr<HttpRequest> ReadRequest(int fd, std::string* carry,
                                    bool subsequent) const;
  /// Best-effort blocking send of the whole response, bounded by
  /// `deadline`. Gives up early when the peer hangs up without becoming
  /// writable (no busy-spin against a dead or stalled client).
  void SendResponse(int fd, const HttpResponse& response,
                    const Deadline& deadline) const;
  /// The per-request I/O deadline (io_timeout_ms, infinite when 0).
  Deadline IoDeadline() const;

  std::map<std::string, std::unique_ptr<Table>> tables_;
  const ServerOptions options_;
  const int num_workers_;
  ResourceBudget process_budget_;
  AdmissionController admission_;
  ResponseCache response_cache_;
  ServerStats stats_;
  BoundedQueue<int> queue_;
  CancellationSource drain_source_;
  ServerEnv env_;
  std::atomic<bool> draining_{false};
  int listen_fd_ = -1;
  int port_ = 0;
};

}  // namespace fairrank

#endif  // FAIRRANK_SERVER_SERVER_H_
