#ifndef FAIRRANK_SERVER_ADMISSION_H_
#define FAIRRANK_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/budget.h"
#include "common/deadline.h"
#include "common/thread_annotations.h"

namespace fairrank {

/// Why an audit request was refused at the door. The server maps each to a
/// structured 429/503 body with a `retry_after_ms` backoff hint.
enum class AdmissionVerdict {
  kAdmit = 0,
  kShedDraining,   ///< Server is draining after SIGINT/SIGTERM.
  kShedBudget,     ///< Process-level node/memory budget has no headroom.
  kShedOverload,   ///< In-flight audit cap reached.
};

/// Stable snake_case name used in error bodies and /stats
/// ("draining", "budget_exhausted", "overloaded").
const char* AdmissionVerdictToString(AdmissionVerdict verdict);

/// Gate in front of the expensive endpoints (/audit, /suite). Admission is
/// the inverse of the hierarchical budget chain: every admitted request runs
/// over a child ResourceBudget chained to `process_budget`, so when the
/// parent runs out of headroom the gate closes and further work is shed
/// before it starts — the aggregate node/memory spend of all requests ever
/// admitted stays bounded by the process budget (plus at most one in-flight
/// charge per concurrent request, the budget's documented overshoot
/// granularity).
///
/// Also bounds concurrency: at most `max_inflight` admitted requests run at
/// once; the rest shed with kShedOverload rather than queue behind a
/// convoy. Thread-safe.
class AdmissionController {
 public:
  /// `process_budget` is borrowed and may be null (no budget gate);
  /// `max_inflight` <= 0 disables the concurrency gate.
  AdmissionController(int max_inflight, const ResourceBudget* process_budget)
      : max_inflight_(max_inflight), process_budget_(process_budget) {}

  /// One admission decision. On kAdmit the caller owns one in-flight slot
  /// and must call Release() exactly once.
  AdmissionVerdict TryAdmit(bool draining) FAIRRANK_EXCLUDES(mutex_);

  /// Returns an admitted request's slot.
  void Release() FAIRRANK_EXCLUDES(mutex_);

  /// Blocks until no request is in flight or `deadline` expires; true when
  /// idle. The drain sequence waits here before cancelling stragglers.
  bool WaitUntilIdle(const Deadline& deadline) FAIRRANK_EXCLUDES(mutex_);

  int in_flight() const FAIRRANK_EXCLUDES(mutex_);

 private:
  /// True when the process budget has no headroom left. "No headroom"
  /// is `used >= max` (not the budget's own latched `used > max`): once the
  /// last node is spent, the next request could only run to be refused by
  /// its first charge, so the gate closes one step earlier.
  bool BudgetOutOfHeadroom() const;

  const int max_inflight_;
  const ResourceBudget* process_budget_;
  mutable std::mutex mutex_;
  std::condition_variable idle_;
  int in_flight_ FAIRRANK_GUARDED_BY(mutex_) = 0;
};

}  // namespace fairrank

#endif  // FAIRRANK_SERVER_ADMISSION_H_
