#ifndef FAIRRANK_SERVER_RESPONSE_CACHE_H_
#define FAIRRANK_SERVER_RESPONSE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/budget.h"
#include "common/thread_annotations.h"
#include "server/http.h"

namespace fairrank {

/// Observability counters of the response cache, surfaced in /stats.
/// hits + misses = lookups; insertions <= misses (error and truncated
/// responses are never stored).
struct ResponseCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;   ///< Entries dropped to make room (LRU order).
  uint64_t bytes_used = 0;  ///< Resident cached bytes (keys + bodies).
  uint64_t entries = 0;     ///< Live cached responses.
};

/// Whole-response memoization for the expensive endpoints. Keyed on the
/// canonical request identity (endpoint, dataset, canonicalized flags — see
/// CanonicalRequestKey in handlers.h); the loaded tables are immutable for
/// the life of the process, so two requests with the same key are the same
/// computation and the first 200 body can be replayed bit-identically.
///
/// Policy:
///  - Only complete successes are cached: status 200 and not truncated.
///    A truncated body depends on wall-clock/budget state at evaluation
///    time, so replaying it would freeze a transient degradation.
///  - `max_bytes` caps resident size with LRU eviction (per-entry, not
///    epoch: one giant suite body must not flush every small audit entry).
///  - Net new cache memory is charged to the borrowed process-level
///    ResourceBudget on every insert. Once a charge reports exhaustion the cache
///    latches read-only (lookups still serve, inserts stop) — the same
///    degrade-don't-die discipline as the evaluator caches. Eviction does
///    not refund the budget: the budget's memory axis is documented as
///    cumulative, an allocation-pressure proxy rather than a live gauge.
///
/// Thread-safe: one mutex guards the map, the LRU list, and the counters.
class ResponseCache {
 public:
  /// `max_bytes` 0 disables the cache entirely (every lookup misses and
  /// nothing is stored — counters still run so /stats shows the misses).
  /// `budget` is borrowed and may be null (no charging).
  ResponseCache(uint64_t max_bytes, ResourceBudget* budget)
      : max_bytes_(max_bytes), budget_(budget) {}

  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  bool enabled() const { return max_bytes_ > 0; }

  /// True (and `*out` filled) on a hit. The returned response carries the
  /// cached status/content-type/body; connection-level fields (keep_alive)
  /// are reset so the caller frames it for the current connection.
  bool Find(const std::string& key, HttpResponse* out)
      FAIRRANK_EXCLUDES(mutex_);

  /// Stores a response under `key`. No-op when disabled, budget-latched, or
  /// the entry alone exceeds max_bytes. Re-inserting an existing key
  /// replaces the entry (concurrent identical misses race benignly: both
  /// computed the same bytes).
  void Insert(const std::string& key, const HttpResponse& response)
      FAIRRANK_EXCLUDES(mutex_);

  ResponseCacheStats Snapshot() const FAIRRANK_EXCLUDES(mutex_);

 private:
  struct Entry {
    HttpResponse response;
    uint64_t bytes = 0;
    std::list<std::string>::iterator lru_position;
  };

  /// Approximate resident cost of one entry.
  static uint64_t EntryBytes(const std::string& key,
                             const HttpResponse& response);

  /// Evicts LRU entries until `incoming` fits under max_bytes. Returns
  /// false when it cannot fit (entry larger than the whole cap).
  bool MakeRoomLocked(uint64_t incoming) FAIRRANK_REQUIRES(mutex_);

  /// Charges `bytes` of net-new cache memory to the budget (one atomic add
  /// per miss-side insert); latches budget_stopped_ on exhaustion.
  void ChargeLocked(uint64_t bytes) FAIRRANK_REQUIRES(mutex_);

  const uint64_t max_bytes_;        ///< Immutable after construction.
  ResourceBudget* const budget_;    ///< Borrowed; may be null.

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_ FAIRRANK_GUARDED_BY(mutex_);
  /// Front = most recently used; back = eviction candidate.
  std::list<std::string> lru_ FAIRRANK_GUARDED_BY(mutex_);
  ResponseCacheStats stats_ FAIRRANK_GUARDED_BY(mutex_);
  /// A budget charge tripped: the cache stops growing.
  bool budget_stopped_ FAIRRANK_GUARDED_BY(mutex_) = false;
};

}  // namespace fairrank

#endif  // FAIRRANK_SERVER_RESPONSE_CACHE_H_
