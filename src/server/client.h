#ifndef FAIRRANK_SERVER_CLIENT_H_
#define FAIRRANK_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace fairrank {

/// Result of one HttpFetch: parsed status line plus the raw body.
struct HttpFetchResult {
  int status_code = 0;
  std::string head;  ///< Status line + headers, verbatim.
  std::string body;
};

/// Minimal blocking HTTP/1.1 client for tests and fairauditd's --fetch
/// smoke mode: one request over one fresh connection, `Connection: close`,
/// read to EOF, no redirects, no TLS. `timeout_ms` bounds connect + send +
/// receive together; <= 0 means no timeout. `extra_headers` are raw
/// pre-formatted header lines ("Name: value\r\n" each, may be several or
/// empty) spliced after Host — how tests supply X-Request-Id.
StatusOr<HttpFetchResult> HttpFetch(const std::string& host, int port,
                                    const std::string& method,
                                    const std::string& target,
                                    const std::string& body,
                                    int64_t timeout_ms,
                                    const std::string& extra_headers = "");

/// A persistent HTTP/1.1 connection: connect once, issue many requests on
/// one socket. Every Fetch asks for keep-alive and reads exactly
/// Content-Length body bytes, leaving the socket positioned at the next
/// response. When the server closes anyway (idle timeout, request cap,
/// drain, `Connection: close` in its response) the next Fetch reconnects
/// transparently; reconnects() counts how often that happened, which is the
/// load generator's measure of connection reuse actually achieved.
///
/// Not thread-safe — one HttpClient per client thread.
class HttpClient {
 public:
  HttpClient(std::string host, int port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// One request/response. Opens the connection on first use; retries once
  /// on a fresh connection when a reused socket turns out stale (the server
  /// closed it between requests). The retry fires ONLY when zero response
  /// bytes were received for the request — once any bytes arrived the
  /// server demonstrably processed it, and replaying a POST could run its
  /// side effects twice; such failures surface as errors instead.
  /// `timeout_ms` bounds the whole attempt including any reconnect; <= 0
  /// means no timeout. `extra_headers` as in HttpFetch.
  StatusOr<HttpFetchResult> Fetch(const std::string& method,
                                  const std::string& target,
                                  const std::string& body, int64_t timeout_ms,
                                  const std::string& extra_headers = "");

  /// Connections opened so far (1 = perfect reuse across all fetches).
  uint64_t connects() const { return connects_; }

  /// Drops the current connection (next Fetch reconnects).
  void Close();

 private:
  /// One request/response over the current socket. `*stale` is set when the
  /// failure looks like the server closed a previously-good connection
  /// under us — the caller may retry on a fresh one.
  StatusOr<HttpFetchResult> FetchOnce(const std::string& method,
                                      const std::string& target,
                                      const std::string& body,
                                      int64_t timeout_ms,
                                      const std::string& extra_headers,
                                      bool* stale);

  const std::string host_;
  const int port_;
  int fd_ = -1;
  std::string carry_;  ///< Bytes read past the previous response.
  uint64_t connects_ = 0;
};

}  // namespace fairrank

#endif  // FAIRRANK_SERVER_CLIENT_H_
