#ifndef FAIRRANK_SERVER_CLIENT_H_
#define FAIRRANK_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace fairrank {

/// Result of one HttpFetch: parsed status line plus the raw body.
struct HttpFetchResult {
  int status_code = 0;
  std::string head;  ///< Status line + headers, verbatim.
  std::string body;
};

/// Minimal blocking HTTP/1.1 client for tests and fairauditd's --fetch
/// smoke mode: one request, read to EOF (the server always closes), no
/// redirects, no TLS. `timeout_ms` bounds connect + send + receive
/// together; <= 0 means no timeout.
StatusOr<HttpFetchResult> HttpFetch(const std::string& host, int port,
                                    const std::string& method,
                                    const std::string& target,
                                    const std::string& body,
                                    int64_t timeout_ms);

}  // namespace fairrank

#endif  // FAIRRANK_SERVER_CLIENT_H_
