#include "server/response_cache.h"

#include <utility>

namespace fairrank {

uint64_t ResponseCache::EntryBytes(const std::string& key,
                                   const HttpResponse& response) {
  // Key + body dominate; the fixed struct overhead is folded into a small
  // constant so a million tiny entries still register.
  return key.size() + response.body.size() + response.content_type.size() +
         64;
}

bool ResponseCache::Find(const std::string& key, HttpResponse* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  *out = it->second.response;
  out->keep_alive = false;  // Connection framing is per-connection.
  return true;
}

void ResponseCache::Insert(const std::string& key,
                           const HttpResponse& response) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (budget_stopped_) return;

  uint64_t incoming = EntryBytes(key, response);
  auto existing = entries_.find(key);
  if (existing != entries_.end()) {
    // Replacement (a concurrent identical miss got here first). Drop the
    // old entry; the new bytes take its place.
    stats_.bytes_used -= existing->second.bytes;
    lru_.erase(existing->second.lru_position);
    entries_.erase(existing);
    --stats_.entries;
  }
  if (!MakeRoomLocked(incoming)) return;

  lru_.push_front(key);
  Entry entry;
  entry.response = response;
  entry.response.keep_alive = false;
  entry.response.retry_after_ms = 0;
  entry.bytes = incoming;
  entry.lru_position = lru_.begin();
  entries_.emplace(key, std::move(entry));
  stats_.bytes_used += incoming;
  ++stats_.entries;
  ++stats_.insertions;
  ChargeLocked(incoming);
}

bool ResponseCache::MakeRoomLocked(uint64_t incoming) {
  if (incoming > max_bytes_) return false;
  while (stats_.bytes_used + incoming > max_bytes_ && !lru_.empty()) {
    auto victim = entries_.find(lru_.back());
    lru_.pop_back();
    if (victim == entries_.end()) continue;  // Defensive; lists stay in sync.
    stats_.bytes_used -= victim->second.bytes;
    entries_.erase(victim);
    --stats_.entries;
    ++stats_.evictions;
  }
  return stats_.bytes_used + incoming <= max_bytes_;
}

void ResponseCache::ChargeLocked(uint64_t bytes) {
  if (budget_ == nullptr) return;
  // One atomic add per insert — inserts happen at most once per cache miss,
  // never on the hit path, so there is nothing to batch.
  if (!budget_->ChargeMemoryBytes(bytes)) budget_stopped_ = true;
}

ResponseCacheStats ResponseCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace fairrank
