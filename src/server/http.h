#ifndef FAIRRANK_SERVER_HTTP_H_
#define FAIRRANK_SERVER_HTTP_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace fairrank {

/// Minimal, dependency-free HTTP/1.1 message handling for fairauditd.
/// Deliberately small surface: GET/POST, Content-Length bodies only (no
/// chunked encoding), with hard size limits on head, body, and header count
/// so a misbehaving client can never balloon server memory. HTTP/1.1
/// connections are kept alive by default (`Connection: close` opts out);
/// HTTP/1.0 connections close unless the client asks for keep-alive.
/// Parsing is pure (string -> struct), so every limit and error path is
/// unit-testable without a socket.

/// Hard caps applied while reading a request off the wire.
struct HttpSizeLimits {
  size_t max_head_bytes = 8192;      ///< Request line + headers (431 when over).
  size_t max_body_bytes = 64 * 1024; ///< Content-Length ceiling (413 when over).
  size_t max_header_count = 64;      ///< Distinct header lines (431 when over).
};

/// A parsed request. Header names are lower-cased; duplicate header values
/// are joined with ", " (RFC 7230 list semantics) except Content-Length /
/// Transfer-Encoding, whose duplication is rejected outright
/// (request-smuggling hygiene). Query parameters are percent-decoded and
/// kept in order of appearance (later duplicates win when converted to
/// flags).
struct HttpRequest {
  std::string method;   ///< "GET" or "POST" (parse rejects others).
  std::string target;   ///< Raw request target, e.g. "/audit?function=f6".
  std::string path;     ///< Target up to '?'.
  int minor_version = 1;  ///< 1 for HTTP/1.1, 0 for HTTP/1.0.
  std::vector<std::pair<std::string, std::string>> query;
  std::map<std::string, std::string> headers;
  std::string body;
};

/// A response about to be serialized. `retry_after_ms` > 0 additionally
/// emits a Retry-After header (rounded up to whole seconds) so well-behaved
/// HTTP clients back off without parsing the JSON body. `keep_alive`
/// controls the Connection header; error paths leave it false so a
/// desynchronized connection is always torn down.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  int64_t retry_after_ms = 0;
  bool keep_alive = false;
  /// Emitted as an X-Request-Id header when non-empty. The server sets it
  /// on every response — echoing a valid client-supplied id, otherwise a
  /// freshly minted one — including error and load-shedding replies, so a
  /// client can correlate any answer with its logs.
  std::string request_id;
};

/// Decodes %xx escapes and '+' (as space). Malformed escapes pass through
/// literally rather than failing the whole request.
std::string PercentDecode(std::string_view s);

/// Splits "a=1&b=two" into decoded pairs. Empty segments are skipped; a
/// segment without '=' becomes {name, ""}.
std::vector<std::pair<std::string, std::string>> ParseQueryString(
    std::string_view query);

/// Parses the request head (everything before the blank line, body
/// excluded). Accepts both CRLF and bare-LF line endings. Fails with
/// InvalidArgument on malformed syntax (including duplicated
/// Content-Length / Transfer-Encoding headers), OutOfRange when the header
/// count exceeds `limits.max_header_count` (the caller answers 431), and
/// Unimplemented on methods other than GET/POST.
StatusOr<HttpRequest> ParseRequestHead(std::string_view head,
                                       const HttpSizeLimits& limits = {});

/// Content-Length of a parsed head, validated against `limits`:
/// 0 when absent, InvalidArgument when malformed, Unimplemented when the
/// Transfer-Encoding list names any codings beyond "identity" (the caller
/// answers 501 — the request is well-formed HTTP the server chooses not to
/// implement), ResourceExhausted when over max_body_bytes.
StatusOr<size_t> ContentLength(const HttpRequest& request,
                               const HttpSizeLimits& limits);

/// True when the client may receive further responses on this connection:
/// HTTP/1.1 defaults to keep-alive unless the Connection header lists
/// "close"; HTTP/1.0 defaults to close unless it lists "keep-alive".
bool RequestWantsKeepAlive(const HttpRequest& request);

/// Stable reason phrase for the status codes the server emits.
const char* HttpReasonPhrase(int status);

/// Serializes status line + headers + body, with Content-Length always
/// present and `Connection: keep-alive` or `close` from
/// `response.keep_alive`.
std::string FormatHttpResponse(const HttpResponse& response);

/// The server's structured error body:
/// {"error":{"status":503,"code":"ResourceExhausted","reason":"...",
///   "message":"...","retry_after_ms":250}}
/// `retry_after_ms` is emitted only when > 0 — the client backoff hint for
/// load-shedding responses.
std::string JsonErrorBody(int status, std::string_view code,
                          std::string_view reason, std::string_view message,
                          int64_t retry_after_ms);

/// Convenience: an error HttpResponse wrapping JsonErrorBody.
HttpResponse MakeErrorResponse(int status, std::string_view code,
                               std::string_view reason,
                               std::string_view message,
                               int64_t retry_after_ms = 0);

}  // namespace fairrank

#endif  // FAIRRANK_SERVER_HTTP_H_
