#ifndef FAIRRANK_STATS_TRANSPORTATION_H_
#define FAIRRANK_STATS_TRANSPORTATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace fairrank {

/// One shipment in an optimal transportation plan: move `amount` units from
/// supply node `from` to demand node `to`.
struct Shipment {
  size_t from;
  size_t to;
  int64_t amount;
};

/// Solution of a balanced transportation problem.
struct TransportationPlan {
  /// Total cost sum(amount * cost[from][to]).
  double total_cost = 0.0;
  std::vector<Shipment> shipments;
};

/// Exact solver for the balanced transportation problem
///
///   minimize   sum_ij x_ij * cost[i][j]
///   subject to sum_j x_ij = supply[i],  sum_i x_ij = demand[j],  x_ij >= 0
///
/// with integer supplies/demands and non-negative real costs, via successive
/// shortest augmenting paths with node potentials (Dijkstra). This is the
/// general EMD backend (Rubner-style EMD with an arbitrary ground-distance
/// matrix); the O(bins) closed form in emd.h covers the 1-D case and is what
/// the partition search uses.
///
/// Requires sum(supply) == sum(demand) and all entries >= 0; fails with
/// InvalidArgument otherwise. Complexity O(F * E log V) where F is the number
/// of augmentations (at most supply-node count * demand-node count).
StatusOr<TransportationPlan> SolveTransportation(
    const std::vector<int64_t>& supply, const std::vector<int64_t>& demand,
    const std::vector<std::vector<double>>& cost);

}  // namespace fairrank

#endif  // FAIRRANK_STATS_TRANSPORTATION_H_
