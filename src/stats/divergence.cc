#include "stats/divergence.h"

#include <cmath>

#include "stats/emd.h"

namespace fairrank {

namespace {

Status CheckComparable(const Histogram& a, const Histogram& b) {
  if (!a.SameShape(b)) {
    return Status::InvalidArgument(
        "histograms have different shapes (bins/range)");
  }
  if (a.empty() || b.empty()) {
    return Status::FailedPrecondition(
        "divergence of an empty histogram is undefined");
  }
  return Status::OK();
}

class EmdDivergence : public Divergence {
 public:
  std::string Name() const override { return "emd"; }
  StatusOr<double> Distance(const Histogram& a,
                            const Histogram& b) const override {
    return Emd1D(a, b);
  }
};

class GeneralEmdDivergence : public Divergence {
 public:
  std::string Name() const override { return "emd-general"; }
  StatusOr<double> Distance(const Histogram& a,
                            const Histogram& b) const override {
    return EmdGeneral1DCost(a, b);
  }
};

class ThresholdedEmdDivergence : public Divergence {
 public:
  explicit ThresholdedEmdDivergence(double threshold) : threshold_(threshold) {}
  std::string Name() const override { return "emd-thresholded"; }
  StatusOr<double> Distance(const Histogram& a,
                            const Histogram& b) const override {
    return EmdThresholded(a, b, threshold_);
  }

 private:
  double threshold_;
};

class JensenShannonDivergence : public Divergence {
 public:
  std::string Name() const override { return "js"; }
  StatusOr<double> Distance(const Histogram& a,
                            const Histogram& b) const override {
    FAIRRANK_RETURN_NOT_OK(CheckComparable(a, b));
    std::vector<double> pa = a.Normalized();
    std::vector<double> pb = b.Normalized();
    double js = 0.0;
    for (size_t i = 0; i < pa.size(); ++i) {
      double m = 0.5 * (pa[i] + pb[i]);
      if (pa[i] > 0.0) js += 0.5 * pa[i] * std::log2(pa[i] / m);
      if (pb[i] > 0.0) js += 0.5 * pb[i] * std::log2(pb[i] / m);
    }
    return std::max(0.0, js);
  }
};

class SymmetricKlDivergence : public Divergence {
 public:
  explicit SymmetricKlDivergence(double epsilon) : epsilon_(epsilon) {}
  std::string Name() const override { return "kl"; }
  StatusOr<double> Distance(const Histogram& a,
                            const Histogram& b) const override {
    FAIRRANK_RETURN_NOT_OK(CheckComparable(a, b));
    std::vector<double> pa = a.Normalized();
    std::vector<double> pb = b.Normalized();
    // Epsilon-smooth and renormalize so log ratios stay finite.
    double za = 0.0;
    double zb = 0.0;
    for (size_t i = 0; i < pa.size(); ++i) {
      pa[i] += epsilon_;
      pb[i] += epsilon_;
      za += pa[i];
      zb += pb[i];
    }
    double kl = 0.0;
    for (size_t i = 0; i < pa.size(); ++i) {
      double x = pa[i] / za;
      double y = pb[i] / zb;
      kl += 0.5 * (x * std::log(x / y) + y * std::log(y / x));
    }
    return std::max(0.0, kl);
  }

 private:
  double epsilon_;
};

class TotalVariationDivergence : public Divergence {
 public:
  std::string Name() const override { return "tv"; }
  StatusOr<double> Distance(const Histogram& a,
                            const Histogram& b) const override {
    FAIRRANK_RETURN_NOT_OK(CheckComparable(a, b));
    std::vector<double> pa = a.Normalized();
    std::vector<double> pb = b.Normalized();
    double l1 = 0.0;
    for (size_t i = 0; i < pa.size(); ++i) l1 += std::abs(pa[i] - pb[i]);
    return 0.5 * l1;
  }
};

class KolmogorovSmirnovDivergence : public Divergence {
 public:
  std::string Name() const override { return "ks"; }
  StatusOr<double> Distance(const Histogram& a,
                            const Histogram& b) const override {
    FAIRRANK_RETURN_NOT_OK(CheckComparable(a, b));
    std::vector<double> ca = a.Cdf();
    std::vector<double> cb = b.Cdf();
    double ks = 0.0;
    for (size_t i = 0; i < ca.size(); ++i) {
      ks = std::max(ks, std::abs(ca[i] - cb[i]));
    }
    return ks;
  }
};

class HellingerDivergence : public Divergence {
 public:
  std::string Name() const override { return "hellinger"; }
  StatusOr<double> Distance(const Histogram& a,
                            const Histogram& b) const override {
    FAIRRANK_RETURN_NOT_OK(CheckComparable(a, b));
    std::vector<double> pa = a.Normalized();
    std::vector<double> pb = b.Normalized();
    double sum = 0.0;
    for (size_t i = 0; i < pa.size(); ++i) {
      double d = std::sqrt(pa[i]) - std::sqrt(pb[i]);
      sum += d * d;
    }
    return std::sqrt(0.5 * sum);
  }
};

class ChiSquareDivergence : public Divergence {
 public:
  std::string Name() const override { return "chi2"; }
  StatusOr<double> Distance(const Histogram& a,
                            const Histogram& b) const override {
    FAIRRANK_RETURN_NOT_OK(CheckComparable(a, b));
    std::vector<double> pa = a.Normalized();
    std::vector<double> pb = b.Normalized();
    double chi2 = 0.0;
    for (size_t i = 0; i < pa.size(); ++i) {
      double denom = pa[i] + pb[i];
      if (denom > 0.0) {
        chi2 += (pa[i] - pb[i]) * (pa[i] - pb[i]) / denom;
      }
    }
    return chi2;
  }
};

class BhattacharyyaDivergence : public Divergence {
 public:
  explicit BhattacharyyaDivergence(double epsilon) : epsilon_(epsilon) {}
  std::string Name() const override { return "bhattacharyya"; }
  StatusOr<double> Distance(const Histogram& a,
                            const Histogram& b) const override {
    FAIRRANK_RETURN_NOT_OK(CheckComparable(a, b));
    std::vector<double> pa = a.Normalized();
    std::vector<double> pb = b.Normalized();
    double za = 0.0;
    double zb = 0.0;
    for (size_t i = 0; i < pa.size(); ++i) {
      pa[i] += epsilon_;
      pb[i] += epsilon_;
      za += pa[i];
      zb += pb[i];
    }
    double bc = 0.0;
    for (size_t i = 0; i < pa.size(); ++i) {
      bc += std::sqrt((pa[i] / za) * (pb[i] / zb));
    }
    return std::max(0.0, -std::log(std::min(bc, 1.0)));
  }

 private:
  double epsilon_;
};

}  // namespace

std::unique_ptr<Divergence> MakeEmdDivergence() {
  return std::make_unique<EmdDivergence>();
}
std::unique_ptr<Divergence> MakeGeneralEmdDivergence() {
  return std::make_unique<GeneralEmdDivergence>();
}
std::unique_ptr<Divergence> MakeThresholdedEmdDivergence(double threshold) {
  return std::make_unique<ThresholdedEmdDivergence>(threshold);
}
std::unique_ptr<Divergence> MakeJensenShannonDivergence() {
  return std::make_unique<JensenShannonDivergence>();
}
std::unique_ptr<Divergence> MakeSymmetricKlDivergence(double epsilon) {
  return std::make_unique<SymmetricKlDivergence>(epsilon);
}
std::unique_ptr<Divergence> MakeTotalVariationDivergence() {
  return std::make_unique<TotalVariationDivergence>();
}
std::unique_ptr<Divergence> MakeKolmogorovSmirnovDivergence() {
  return std::make_unique<KolmogorovSmirnovDivergence>();
}
std::unique_ptr<Divergence> MakeHellingerDivergence() {
  return std::make_unique<HellingerDivergence>();
}
std::unique_ptr<Divergence> MakeChiSquareDivergence() {
  return std::make_unique<ChiSquareDivergence>();
}
std::unique_ptr<Divergence> MakeBhattacharyyaDivergence(double epsilon) {
  return std::make_unique<BhattacharyyaDivergence>(epsilon);
}

StatusOr<std::unique_ptr<Divergence>> MakeDivergenceByName(
    const std::string& name) {
  if (name == "emd") return MakeEmdDivergence();
  if (name == "emd-general") return MakeGeneralEmdDivergence();
  if (name == "js") return MakeJensenShannonDivergence();
  if (name == "kl") return MakeSymmetricKlDivergence();
  if (name == "tv") return MakeTotalVariationDivergence();
  if (name == "ks") return MakeKolmogorovSmirnovDivergence();
  if (name == "hellinger") return MakeHellingerDivergence();
  if (name == "chi2") return MakeChiSquareDivergence();
  if (name == "bhattacharyya") return MakeBhattacharyyaDivergence();
  return Status::NotFound("unknown divergence '" + name + "'");
}

std::vector<std::string> KnownDivergenceNames() {
  return {"emd", "emd-general", "js",   "kl",
          "tv",  "ks",          "hellinger", "chi2", "bhattacharyya"};
}

}  // namespace fairrank
