#ifndef FAIRRANK_STATS_DIVERGENCE_H_
#define FAIRRANK_STATS_DIVERGENCE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "stats/histogram.h"

namespace fairrank {

/// Pluggable dissimilarity between two score histograms. The paper uses EMD
/// and names "other formulations and metrics for fairness" as future work;
/// the unfairness evaluator accepts any Divergence so those variants are a
/// one-line swap (see bench/ablation_divergence).
///
/// Implementations must be symmetric and return 0 for identical inputs.
class Divergence {
 public:
  virtual ~Divergence() = default;

  /// Short stable identifier ("emd", "js", ...), used by the registry and
  /// in reports.
  virtual std::string Name() const = 0;

  /// Distance between two same-shape, non-empty histograms.
  virtual StatusOr<double> Distance(const Histogram& a,
                                    const Histogram& b) const = 0;
};

/// Closed-form 1-D Earth Mover's Distance (the paper's measure).
std::unique_ptr<Divergence> MakeEmdDivergence();

/// Exact general EMD via the transportation solver with the 1-D ground
/// distance. Numerically identical to MakeEmdDivergence (validated in
/// tests); orders of magnitude slower. Useful for cross-checks.
std::unique_ptr<Divergence> MakeGeneralEmdDivergence();

/// Thresholded EMD (Pele-Werman style robust variant).
std::unique_ptr<Divergence> MakeThresholdedEmdDivergence(double threshold);

/// Jensen-Shannon divergence (base-2 logarithm, bounded in [0, 1]).
std::unique_ptr<Divergence> MakeJensenShannonDivergence();

/// Symmetrized Kullback-Leibler divergence with epsilon smoothing (raw KL is
/// infinite on disjoint supports, useless as a utility for the greedy
/// search).
std::unique_ptr<Divergence> MakeSymmetricKlDivergence(double epsilon = 1e-9);

/// Total variation distance: 0.5 * L1 between probability masses.
std::unique_ptr<Divergence> MakeTotalVariationDivergence();

/// Kolmogorov-Smirnov statistic: max |CDF_a - CDF_b|.
std::unique_ptr<Divergence> MakeKolmogorovSmirnovDivergence();

/// Hellinger distance, bounded in [0, 1].
std::unique_ptr<Divergence> MakeHellingerDivergence();

/// Symmetrized chi-square distance: sum (p-q)^2 / (p+q) over bins with
/// p+q > 0; bounded in [0, 2].
std::unique_ptr<Divergence> MakeChiSquareDivergence();

/// Bhattacharyya distance -ln(sum sqrt(p*q)), epsilon-smoothed so disjoint
/// supports stay finite.
std::unique_ptr<Divergence> MakeBhattacharyyaDivergence(
    double epsilon = 1e-9);

/// Factory by name ("emd", "emd-general", "js", "kl", "tv", "ks",
/// "hellinger", "chi2", "bhattacharyya"); NotFound for anything else.
StatusOr<std::unique_ptr<Divergence>> MakeDivergenceByName(
    const std::string& name);

/// Names accepted by MakeDivergenceByName.
std::vector<std::string> KnownDivergenceNames();

}  // namespace fairrank

#endif  // FAIRRANK_STATS_DIVERGENCE_H_
