#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fairrank {

StatusOr<double> Mean(const std::vector<double>& values) {
  if (values.empty()) return Status::InvalidArgument("mean of empty sample");
  double sum = std::accumulate(values.begin(), values.end(), 0.0);
  return sum / static_cast<double>(values.size());
}

StatusOr<Summary> Describe(const std::vector<double>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("describe of empty sample");
  }
  Summary s;
  s.count = values.size();
  s.mean = Mean(values).value();
  double sq = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    sq += (v - s.mean) * (v - s.mean);
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.variance = sq / static_cast<double>(values.size());
  s.stddev = std::sqrt(s.variance);
  s.median = Quantile(values, 0.5).value();
  return s;
}

StatusOr<double> Quantile(std::vector<double> values, double q) {
  if (values.empty()) {
    return Status::InvalidArgument("quantile of empty sample");
  }
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("quantile q must be in [0,1]");
  }
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

StatusOr<double> PearsonCorrelation(const std::vector<double>& x,
                                    const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("correlation inputs differ in length");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("correlation needs at least two points");
  }
  double mx = Mean(x).value();
  double my = Mean(y).value();
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) {
    return Status::FailedPrecondition("zero variance in correlation input");
  }
  return sxy / std::sqrt(sxx * syy);
}

namespace {

/// Average ranks (1-based) with ties sharing the mean rank.
std::vector<double> Ranks(const std::vector<double>& values) {
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(values.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                      1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

StatusOr<double> SpearmanCorrelation(const std::vector<double>& x,
                                     const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("correlation inputs differ in length");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("correlation needs at least two points");
  }
  return PearsonCorrelation(Ranks(x), Ranks(y));
}

}  // namespace fairrank
