#include "stats/transportation.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace fairrank {

namespace {

/// Residual-graph edge for min-cost flow.
struct Edge {
  size_t to;
  int64_t capacity;
  double cost;
  size_t reverse_index;  // Index of the paired reverse edge in graph[to].
};

class MinCostFlow {
 public:
  explicit MinCostFlow(size_t num_nodes) : graph_(num_nodes) {}

  void AddEdge(size_t from, size_t to, int64_t capacity, double cost) {
    graph_[from].push_back({to, capacity, cost, graph_[to].size()});
    graph_[to].push_back({from, 0, -cost, graph_[from].size() - 1});
  }

  /// Sends `max_flow` units from `source` to `sink`; returns total cost.
  /// Requires the graph to admit that much flow (guaranteed for balanced
  /// transportation instances).
  double Run(size_t source, size_t sink, int64_t max_flow) {
    const double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> potential(graph_.size(), 0.0);
    double total_cost = 0.0;
    int64_t flow_remaining = max_flow;
    while (flow_remaining > 0) {
      // Dijkstra on reduced costs.
      std::vector<double> dist(graph_.size(), kInf);
      std::vector<size_t> prev_node(graph_.size(), SIZE_MAX);
      std::vector<size_t> prev_edge(graph_.size(), SIZE_MAX);
      using Item = std::pair<double, size_t>;
      std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
      dist[source] = 0.0;
      heap.emplace(0.0, source);
      while (!heap.empty()) {
        auto [d, u] = heap.top();
        heap.pop();
        if (d > dist[u] + 1e-12) continue;
        for (size_t ei = 0; ei < graph_[u].size(); ++ei) {
          const Edge& e = graph_[u][ei];
          if (e.capacity <= 0) continue;
          double nd = dist[u] + e.cost + potential[u] - potential[e.to];
          if (nd < dist[e.to] - 1e-12) {
            dist[e.to] = nd;
            prev_node[e.to] = u;
            prev_edge[e.to] = ei;
            heap.emplace(nd, e.to);
          }
        }
      }
      assert(dist[sink] < kInf && "transportation instance is infeasible");
      for (size_t v = 0; v < graph_.size(); ++v) {
        if (dist[v] < kInf) potential[v] += dist[v];
      }
      // Find bottleneck along the augmenting path.
      int64_t bottleneck = flow_remaining;
      for (size_t v = sink; v != source; v = prev_node[v]) {
        bottleneck =
            std::min(bottleneck, graph_[prev_node[v]][prev_edge[v]].capacity);
      }
      // Apply flow.
      for (size_t v = sink; v != source; v = prev_node[v]) {
        Edge& e = graph_[prev_node[v]][prev_edge[v]];
        e.capacity -= bottleneck;
        graph_[v][e.reverse_index].capacity += bottleneck;
        total_cost += bottleneck * e.cost;
      }
      flow_remaining -= bottleneck;
    }
    return total_cost;
  }

  const std::vector<std::vector<Edge>>& graph() const { return graph_; }

 private:
  std::vector<std::vector<Edge>> graph_;
};

}  // namespace

StatusOr<TransportationPlan> SolveTransportation(
    const std::vector<int64_t>& supply, const std::vector<int64_t>& demand,
    const std::vector<std::vector<double>>& cost) {
  if (supply.empty() || demand.empty()) {
    return Status::InvalidArgument("supply and demand must be non-empty");
  }
  if (cost.size() != supply.size()) {
    return Status::InvalidArgument("cost matrix has wrong row count");
  }
  int64_t total_supply = 0;
  int64_t total_demand = 0;
  for (int64_t s : supply) {
    if (s < 0) return Status::InvalidArgument("negative supply");
    total_supply += s;
  }
  for (int64_t d : demand) {
    if (d < 0) return Status::InvalidArgument("negative demand");
    total_demand += d;
  }
  if (total_supply != total_demand) {
    return Status::InvalidArgument("unbalanced instance: supply " +
                                   std::to_string(total_supply) +
                                   " != demand " +
                                   std::to_string(total_demand));
  }
  for (const auto& row : cost) {
    if (row.size() != demand.size()) {
      return Status::InvalidArgument("cost matrix has wrong column count");
    }
    for (double c : row) {
      if (c < 0.0) return Status::InvalidArgument("negative cost");
    }
  }

  const size_t m = supply.size();
  const size_t n = demand.size();
  // Node layout: 0 = source, [1, m] supplies, [m+1, m+n] demands, m+n+1 sink.
  const size_t source = 0;
  const size_t sink = m + n + 1;
  MinCostFlow mcf(m + n + 2);
  for (size_t i = 0; i < m; ++i) {
    if (supply[i] > 0) mcf.AddEdge(source, 1 + i, supply[i], 0.0);
  }
  for (size_t j = 0; j < n; ++j) {
    if (demand[j] > 0) mcf.AddEdge(1 + m + j, sink, demand[j], 0.0);
  }
  for (size_t i = 0; i < m; ++i) {
    if (supply[i] <= 0) continue;
    for (size_t j = 0; j < n; ++j) {
      if (demand[j] <= 0) continue;
      mcf.AddEdge(1 + i, 1 + m + j, supply[i], cost[i][j]);
    }
  }

  TransportationPlan plan;
  plan.total_cost = mcf.Run(source, sink, total_supply);

  // Recover shipments from reverse-edge capacities on supply->demand arcs.
  for (size_t i = 0; i < m; ++i) {
    if (supply[i] <= 0) continue;
    for (const auto& e : mcf.graph()[1 + i]) {
      bool is_demand_node = e.to >= 1 + m && e.to < 1 + m + n;
      if (!is_demand_node) continue;
      // Forward arcs were created with cost >= 0; the shipped amount equals
      // the residual capacity accumulated on the reverse edge.
      int64_t shipped =
          mcf.graph()[e.to][e.reverse_index].capacity > 0 && e.cost >= 0.0
              ? mcf.graph()[e.to][e.reverse_index].capacity
              : 0;
      if (shipped > 0 && e.cost >= 0.0) {
        plan.shipments.push_back({i, e.to - 1 - m, shipped});
      }
    }
  }
  return plan;
}

}  // namespace fairrank
