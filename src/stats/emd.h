#ifndef FAIRRANK_STATS_EMD_H_
#define FAIRRANK_STATS_EMD_H_

#include <vector>

#include "common/status.h"
#include "stats/histogram.h"

namespace fairrank {

/// Earth Mover's Distance between two same-shape, non-empty histograms with
/// the 1-D ground distance |bin_center_i - bin_center_j| in the value domain.
///
/// Because the ground distance is one-dimensional and convex, the optimal
/// plan is the monotone coupling and EMD reduces to the L1 distance between
/// CDFs scaled by the bin width:
///
///   EMD(a, b) = bin_width * sum_i |CDF_a(i) - CDF_b(i)|
///
/// Histograms are normalized to probability mass before comparison, so
/// partitions of different sizes are comparable (the paper compares, e.g.,
/// a Male partition against a Female partition of different cardinality).
///
/// On the paper's score range [0,1] the result lies in
/// [0, hi - lo - bin_width]. Fails with InvalidArgument on shape mismatch
/// and FailedPrecondition on an empty histogram.
StatusOr<double> Emd1D(const Histogram& a, const Histogram& b);

/// As Emd1D but on raw normalized mass vectors of equal length with unit
/// ground distance between adjacent bins scaled by `bin_width`.
/// `a` and `b` must each sum to 1 (not checked; garbage in, garbage out).
double Emd1DMass(const std::vector<double>& a, const std::vector<double>& b,
                 double bin_width);

/// General EMD with an arbitrary non-negative ground-distance matrix
/// (cost[i][j] = distance between bin i of `a` and bin j of `b`), solved
/// exactly via the transportation solver. Counts are scaled to a common
/// integer grid, so the result is exact for count-based histograms.
///
/// This is the Rubner/Pele-Werman formulation; Emd1D is its closed form for
/// the 1-D metric and is validated against this in tests.
StatusOr<double> EmdGeneral(const Histogram& a, const Histogram& b,
                            const std::vector<std::vector<double>>& cost);

/// Convenience: general EMD with the 1-D |center - center| ground distance.
StatusOr<double> EmdGeneral1DCost(const Histogram& a, const Histogram& b);

/// Thresholded EMD (Pele & Werman's EMD-hat family): ground distances are
/// clamped at `threshold`, making the metric robust to outlier bins. With
/// threshold >= full range this equals EmdGeneral1DCost.
StatusOr<double> EmdThresholded(const Histogram& a, const Histogram& b,
                                double threshold);

/// Builds the |center_i - center_j| cost matrix for two same-shape
/// histograms.
std::vector<std::vector<double>> Make1DCostMatrix(const Histogram& a,
                                                  const Histogram& b);

/// Exact (unbinned) Wasserstein-1 distance between two empirical samples:
/// the integral of |F_a - F_b| over the real line, computed by a sorted
/// merge in O((n+m) log(n+m)). Sample sizes may differ.
///
/// This is what the histogram EMD converges to as the bin count grows
/// (bench/ablation_bins reports both). Fails on an empty sample.
StatusOr<double> EmdSamples1D(std::vector<double> a, std::vector<double> b);

}  // namespace fairrank

#endif  // FAIRRANK_STATS_EMD_H_
