#ifndef FAIRRANK_STATS_HISTOGRAM_H_
#define FAIRRANK_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fairrank {

/// Equal-width histogram over a fixed range, exactly as the paper builds
/// them: "creating equal bins over the range of f and counting the number of
/// workers whose function values fall in each bin".
///
/// Values outside [lo, hi] are clamped into the edge bins (scoring functions
/// are supposed to map into [0,1], but biased generators may graze the
/// boundary). The upper bound is inclusive in the last bin. Clamping is no
/// longer silent: `clamped_count()` reports how much mass landed outside the
/// range, so callers (UnfairnessEvaluator::Make, reports) can reject or warn
/// instead of quietly distorting the edge bins.
class Histogram {
 public:
  /// Requires num_bins >= 1 and lo < hi (asserted via Validate in factory).
  static StatusOr<Histogram> Make(int num_bins, double lo, double hi);

  /// Builds a histogram directly from per-bin counts (plus the clamped
  /// out-of-range mass included in those counts). The constructor shards
  /// and merge paths need: a shard that accumulated counts in a flat array
  /// rehydrates them without replaying the observations. Fails unless the
  /// Make invariants hold, `counts` has exactly `num_bins` entries, every
  /// count is finite and non-negative, and `clamped` is non-negative and no
  /// larger than the total mass.
  static StatusOr<Histogram> FromCounts(int num_bins, double lo, double hi,
                                        std::vector<double> counts,
                                        double clamped = 0.0);

  /// Unchecked constructor for internal/trusted callers.
  Histogram(int num_bins, double lo, double hi);

  int num_bins() const { return static_cast<int>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return (hi_ - lo_) / num_bins(); }

  /// Adds one observation.
  void Add(double value);

  /// Adds `weight` observations worth of mass to the bin containing `value`.
  void AddWeighted(double value, double weight);

  /// Bin index a value falls into (clamped to [0, num_bins)).
  int BinOf(double value) const;

  /// Center of bin `i` in the value domain.
  double BinCenter(int i) const { return lo_ + (i + 0.5) * bin_width(); }

  const std::vector<double>& counts() const { return counts_; }
  double total() const { return total_; }
  bool empty() const { return total_ <= 0.0; }

  /// Total weight of observations outside [lo, hi] that were folded into an
  /// edge bin. Included in total(); MergeWith sums it.
  double clamped_count() const { return clamped_; }

  /// Probability masses (counts / total). Requires total() > 0.
  std::vector<double> Normalized() const;

  /// Cumulative probability masses; last entry is 1 (up to rounding).
  /// Requires total() > 0.
  std::vector<double> Cdf() const;

  /// True if both histograms share bin count and range (so they are
  /// comparable by EMD / divergences).
  bool SameShape(const Histogram& other) const;

  /// Adds `other`'s counts bin-by-bin — the histogram of the union of the
  /// two underlying samples. Fails on shape mismatch.
  Status MergeWith(const Histogram& other);

  /// ASCII rendering for reports: one `#` bar row per bin.
  std::string ToAscii(int max_bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
  double clamped_ = 0.0;
};

}  // namespace fairrank

#endif  // FAIRRANK_STATS_HISTOGRAM_H_
