#ifndef FAIRRANK_STATS_QUANTILE_SKETCH_H_
#define FAIRRANK_STATS_QUANTILE_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace fairrank {

/// Greenwald-Khanna epsilon-approximate quantile sketch (SIGMOD'01): a
/// streaming summary answering any quantile query with rank error at most
/// epsilon * n in O((1/epsilon) * log(epsilon * n)) space.
///
/// Use case here: auditing score streams too large (or too transient) to
/// buffer — per-group sketches feed EmdFromSketches below, giving an
/// approximate Wasserstein-1 audit without storing individual scores.
class GkSketch {
 public:
  /// `epsilon` is the rank-error fraction, in (0, 0.5]. Typical: 0.005.
  explicit GkSketch(double epsilon);

  /// Adds one observation. Amortized O(log(1/epsilon)).
  void Insert(double value);

  /// Value whose rank is within epsilon*n of q*n, for q in [0, 1].
  /// Fails when the sketch is empty or q is out of range.
  StatusOr<double> Quantile(double q) const;

  /// Number of observations inserted.
  size_t count() const { return count_; }

  /// Number of stored tuples (the space bound under test).
  size_t tuples() const { return tuples_.size(); }

  double epsilon() const { return epsilon_; }

 private:
  struct Tuple {
    double value;
    int64_t g;      ///< rmin(i) - rmin(i-1).
    int64_t delta;  ///< rmax(i) - rmin(i).
  };

  void Compress();

  std::vector<Tuple> tuples_;  // Sorted by value.
  double epsilon_;
  size_t count_ = 0;
  size_t inserts_since_compress_ = 0;
};

/// Approximate 1-D Wasserstein-1 distance between two sketched
/// distributions via the quantile formulation W1 = integral over u in [0,1]
/// of |Qa(u) - Qb(u)|, evaluated at `num_points` midpoint samples.
/// Error is bounded by the sketches' rank errors plus the discretization.
/// Fails on empty sketches or num_points == 0.
StatusOr<double> EmdFromSketches(const GkSketch& a, const GkSketch& b,
                                 size_t num_points = 256);

}  // namespace fairrank

#endif  // FAIRRANK_STATS_QUANTILE_SKETCH_H_
