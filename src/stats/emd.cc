#include "stats/emd.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "stats/transportation.h"

namespace fairrank {

namespace {

Status CheckComparable(const Histogram& a, const Histogram& b) {
  if (!a.SameShape(b)) {
    return Status::InvalidArgument(
        "histograms have different shapes (bins/range)");
  }
  if (a.empty() || b.empty()) {
    return Status::FailedPrecondition("EMD of an empty histogram is undefined");
  }
  return Status::OK();
}

}  // namespace

double Emd1DMass(const std::vector<double>& a, const std::vector<double>& b,
                 double bin_width) {
  double emd = 0.0;
  double cdf_diff = 0.0;
  // The final term |sum(a) - sum(b)| is included: it vanishes for equal-mass
  // inputs (normalized histograms agree up to rounding) but carries the
  // mass-imbalance cost for unnormalized or drifted vectors, so imbalance is
  // visible instead of silently dropped.
  for (size_t i = 0; i < a.size(); ++i) {
    cdf_diff += a[i] - b[i];
    emd += std::abs(cdf_diff);
  }
  return emd * bin_width;
}

StatusOr<double> Emd1D(const Histogram& a, const Histogram& b) {
  FAIRRANK_RETURN_NOT_OK(CheckComparable(a, b));
  return Emd1DMass(a.Normalized(), b.Normalized(), a.bin_width());
}

std::vector<std::vector<double>> Make1DCostMatrix(const Histogram& a,
                                                  const Histogram& b) {
  std::vector<std::vector<double>> cost(
      static_cast<size_t>(a.num_bins()),
      std::vector<double>(static_cast<size_t>(b.num_bins()), 0.0));
  for (int i = 0; i < a.num_bins(); ++i) {
    for (int j = 0; j < b.num_bins(); ++j) {
      cost[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          std::abs(a.BinCenter(i) - b.BinCenter(j));
    }
  }
  return cost;
}

StatusOr<double> EmdGeneral(const Histogram& a, const Histogram& b,
                            const std::vector<std::vector<double>>& cost) {
  FAIRRANK_RETURN_NOT_OK(CheckComparable(a, b));
  // Scale both mass distributions onto a common integer grid: supplies are
  // counts(a) * total(b), demands counts(b) * total(a); both sum to
  // total(a) * total(b). Counts come from whole observations, so rounding
  // is exact for unweighted histograms.
  const double ta = a.total();
  const double tb = b.total();
  std::vector<int64_t> supply(a.counts().size());
  std::vector<int64_t> demand(b.counts().size());
  int64_t supply_sum = 0;
  int64_t demand_sum = 0;
  for (size_t i = 0; i < supply.size(); ++i) {
    supply[i] = static_cast<int64_t>(std::llround(a.counts()[i] * tb));
    supply_sum += supply[i];
  }
  for (size_t j = 0; j < demand.size(); ++j) {
    demand[j] = static_cast<int64_t>(std::llround(b.counts()[j] * ta));
    demand_sum += demand[j];
  }
  // Repair rounding drift (possible with weighted histograms) on the largest
  // entry so the instance stays balanced.
  if (supply_sum != demand_sum) {
    auto it = (supply_sum < demand_sum)
                  ? std::max_element(supply.begin(), supply.end())
                  : std::max_element(demand.begin(), demand.end());
    *it += std::llabs(demand_sum - supply_sum);
  }
  FAIRRANK_ASSIGN_OR_RETURN(TransportationPlan plan,
                            SolveTransportation(supply, demand, cost));
  // Undo the scaling: each unit of integer flow carries 1 / (ta * tb) mass.
  return plan.total_cost / (ta * tb);
}

StatusOr<double> EmdGeneral1DCost(const Histogram& a, const Histogram& b) {
  FAIRRANK_RETURN_NOT_OK(CheckComparable(a, b));
  return EmdGeneral(a, b, Make1DCostMatrix(a, b));
}

StatusOr<double> EmdSamples1D(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) {
    return Status::FailedPrecondition("EMD of an empty sample is undefined");
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // Walk the merged order; between consecutive points the difference of the
  // empirical CDFs is constant, contributing |Fa - Fb| * gap.
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  size_t ia = 0;
  size_t ib = 0;
  double emd = 0.0;
  double prev = std::min(a[0], b[0]);
  while (ia < a.size() || ib < b.size()) {
    double next;
    if (ib >= b.size() || (ia < a.size() && a[ia] <= b[ib])) {
      next = a[ia];
    } else {
      next = b[ib];
    }
    double fa = static_cast<double>(ia) / na;
    double fb = static_cast<double>(ib) / nb;
    emd += std::abs(fa - fb) * (next - prev);
    prev = next;
    while (ia < a.size() && a[ia] == next) ++ia;
    while (ib < b.size() && b[ib] == next) ++ib;
  }
  return emd;
}

StatusOr<double> EmdThresholded(const Histogram& a, const Histogram& b,
                                double threshold) {
  FAIRRANK_RETURN_NOT_OK(CheckComparable(a, b));
  if (threshold <= 0.0) {
    return Status::InvalidArgument("threshold must be positive");
  }
  std::vector<std::vector<double>> cost = Make1DCostMatrix(a, b);
  for (auto& row : cost) {
    for (double& c : row) c = std::min(c, threshold);
  }
  return EmdGeneral(a, b, cost);
}

}  // namespace fairrank
