#ifndef FAIRRANK_STATS_DESCRIPTIVE_H_
#define FAIRRANK_STATS_DESCRIPTIVE_H_

#include <vector>

#include "common/status.h"

namespace fairrank {

/// Summary statistics of a sample. Produced by Describe().
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< Population variance (divide by n).
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes summary statistics. Fails on an empty sample.
StatusOr<Summary> Describe(const std::vector<double>& values);

/// Arithmetic mean. Fails on an empty sample.
StatusOr<double> Mean(const std::vector<double>& values);

/// Linear-interpolated quantile, q in [0, 1]. Fails on empty input or
/// out-of-range q.
StatusOr<double> Quantile(std::vector<double> values, double q);

/// Pearson correlation coefficient. Fails on size mismatch, n < 2, or a
/// zero-variance side.
StatusOr<double> PearsonCorrelation(const std::vector<double>& x,
                                    const std::vector<double>& y);

/// Spearman rank correlation (average ranks for ties). Same failure modes
/// as Pearson.
StatusOr<double> SpearmanCorrelation(const std::vector<double>& x,
                                     const std::vector<double>& y);

}  // namespace fairrank

#endif  // FAIRRANK_STATS_DESCRIPTIVE_H_
