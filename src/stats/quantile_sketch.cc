#include "stats/quantile_sketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace fairrank {

GkSketch::GkSketch(double epsilon) : epsilon_(epsilon) {
  assert(epsilon > 0.0 && epsilon <= 0.5);
}

void GkSketch::Insert(double value) {
  // Find the first tuple with a larger value; insert before it.
  auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), value,
      [](double v, const Tuple& t) { return v < t.value; });
  int64_t delta = 0;
  if (it != tuples_.begin() && it != tuples_.end()) {
    // Interior insert: the new tuple's uncertainty is the current band.
    delta = static_cast<int64_t>(
                std::floor(2.0 * epsilon_ * static_cast<double>(count_))) -
            1;
    if (delta < 0) delta = 0;
  }
  tuples_.insert(it, Tuple{value, 1, delta});
  ++count_;

  // Compress periodically (every ~1/(2*epsilon) inserts).
  if (++inserts_since_compress_ >=
      static_cast<size_t>(std::max(1.0, 1.0 / (2.0 * epsilon_)))) {
    Compress();
    inserts_since_compress_ = 0;
  }
}

void GkSketch::Compress() {
  if (tuples_.size() < 3) return;
  const int64_t threshold = static_cast<int64_t>(
      std::floor(2.0 * epsilon_ * static_cast<double>(count_)));
  // Merge right-to-left: tuple i is absorbed into i+1 when the combined
  // uncertainty stays within the band. First and last tuples (stream min
  // and max) are never removed.
  std::vector<Tuple> compressed;
  compressed.reserve(tuples_.size());
  compressed.push_back(tuples_[0]);
  for (size_t i = 1; i < tuples_.size(); ++i) {
    Tuple& prev = compressed.back();
    const Tuple& cur = tuples_[i];
    bool prev_is_first = compressed.size() == 1;
    if (!prev_is_first && prev.g + cur.g + cur.delta < threshold) {
      // Absorb prev into cur.
      Tuple merged = cur;
      merged.g += prev.g;
      compressed.back() = merged;
    } else {
      compressed.push_back(cur);
    }
  }
  tuples_ = std::move(compressed);
}

StatusOr<double> GkSketch::Quantile(double q) const {
  if (count_ == 0) {
    return Status::FailedPrecondition("quantile of an empty sketch");
  }
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("q must be in [0,1]");
  }
  const double n = static_cast<double>(count_);
  const double target = q * (n - 1.0) + 1.0;  // 1-based rank.
  const double tolerance = epsilon_ * n;
  // GK query: answer with the first tuple whose whole rank interval
  // [rmin, rmax] lies inside [target - tolerance, target + tolerance] —
  // only containment bounds the error by epsilon*n. (Interval *overlap*
  // admits tuples whose far edge is up to g+delta beyond the window,
  // i.e. up to ~3*epsilon*n of rank error.) The compress invariant
  // g + delta <= 2*epsilon*n guarantees such a tuple exists whenever
  // tolerance >= 1; for tiny streams (tolerance < 1, compression never
  // fired) fall back to the tuple whose interval is nearest the target,
  // which is exact there because every tuple still has g = 1, delta = 0.
  int64_t rmin = 0;
  double best_value = tuples_.back().value;
  double best_distance = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < tuples_.size(); ++i) {
    rmin += tuples_[i].g;
    const int64_t rmax = rmin + tuples_[i].delta;
    if (static_cast<double>(rmax) <= target + tolerance &&
        static_cast<double>(rmin) >= target - tolerance) {
      return tuples_[i].value;
    }
    double distance = 0.0;
    if (static_cast<double>(rmin) > target) {
      distance = static_cast<double>(rmin) - target;
    } else if (static_cast<double>(rmax) < target) {
      distance = target - static_cast<double>(rmax);
    }
    if (distance < best_distance) {
      best_distance = distance;
      best_value = tuples_[i].value;
    }
  }
  return best_value;
}

StatusOr<double> EmdFromSketches(const GkSketch& a, const GkSketch& b,
                                 size_t num_points) {
  if (a.count() == 0 || b.count() == 0) {
    return Status::FailedPrecondition("EMD of an empty sketch");
  }
  if (num_points == 0) {
    return Status::InvalidArgument("num_points must be positive");
  }
  double sum = 0.0;
  for (size_t i = 0; i < num_points; ++i) {
    double u = (static_cast<double>(i) + 0.5) / static_cast<double>(num_points);
    FAIRRANK_ASSIGN_OR_RETURN(double qa, a.Quantile(u));
    FAIRRANK_ASSIGN_OR_RETURN(double qb, b.Quantile(u));
    sum += std::abs(qa - qb);
  }
  return sum / static_cast<double>(num_points);
}

}  // namespace fairrank
