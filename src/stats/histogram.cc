#include "stats/histogram.h"

#include <cassert>
#include <cmath>

#include "common/str_util.h"

namespace fairrank {

StatusOr<Histogram> Histogram::Make(int num_bins, double lo, double hi) {
  if (num_bins < 1) {
    return Status::InvalidArgument("histogram needs at least one bin");
  }
  if (!(lo < hi)) {
    return Status::InvalidArgument("histogram range is empty");
  }
  return Histogram(num_bins, lo, hi);
}

StatusOr<Histogram> Histogram::FromCounts(int num_bins, double lo, double hi,
                                          std::vector<double> counts,
                                          double clamped) {
  FAIRRANK_ASSIGN_OR_RETURN(Histogram histogram, Make(num_bins, lo, hi));
  if (counts.size() != static_cast<size_t>(num_bins)) {
    std::string message = "histogram has ";
    message += std::to_string(num_bins);
    message += " bins but ";
    message += std::to_string(counts.size());
    message += " counts were supplied";
    return Status::InvalidArgument(message);
  }
  double total = 0.0;
  for (double count : counts) {
    if (!std::isfinite(count) || count < 0.0) {
      return Status::InvalidArgument(
          "histogram counts must be finite and non-negative");
    }
    total += count;
  }
  if (!std::isfinite(clamped) || clamped < 0.0 || clamped > total) {
    return Status::InvalidArgument(
        "clamped mass must lie within [0, total mass]");
  }
  histogram.counts_ = std::move(counts);
  histogram.total_ = total;
  histogram.clamped_ = clamped;
  return histogram;
}

Histogram::Histogram(int num_bins, double lo, double hi)
    : lo_(lo), hi_(hi), counts_(static_cast<size_t>(num_bins), 0.0) {
  assert(num_bins >= 1 && lo < hi);
}

int Histogram::BinOf(double value) const {
  int idx = static_cast<int>(std::floor((value - lo_) / bin_width()));
  if (idx < 0) return 0;
  if (idx >= num_bins()) return num_bins() - 1;
  return idx;
}

void Histogram::Add(double value) { AddWeighted(value, 1.0); }

void Histogram::AddWeighted(double value, double weight) {
  if (value < lo_ || value > hi_) clamped_ += weight;
  counts_[BinOf(value)] += weight;
  total_ += weight;
}

std::vector<double> Histogram::Normalized() const {
  assert(total_ > 0.0);
  std::vector<double> probs(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) probs[i] = counts_[i] / total_;
  return probs;
}

std::vector<double> Histogram::Cdf() const {
  std::vector<double> cdf = Normalized();
  for (size_t i = 1; i < cdf.size(); ++i) cdf[i] += cdf[i - 1];
  return cdf;
}

bool Histogram::SameShape(const Histogram& other) const {
  return num_bins() == other.num_bins() && lo_ == other.lo_ && hi_ == other.hi_;
}

Status Histogram::MergeWith(const Histogram& other) {
  if (!SameShape(other)) {
    // Name both configurations: merge failures usually mean two stores or
    // cells were built with different bin settings, and the caller needs to
    // see which.
    std::string message = "cannot merge histograms of different shape: ";
    message += std::to_string(num_bins());
    message += " bins over [";
    message += FormatDouble(lo_, 6);
    message += ", ";
    message += FormatDouble(hi_, 6);
    message += "] vs ";
    message += std::to_string(other.num_bins());
    message += " bins over [";
    message += FormatDouble(other.lo_, 6);
    message += ", ";
    message += FormatDouble(other.hi_, 6);
    message += "]";
    return Status::InvalidArgument(message);
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  clamped_ += other.clamped_;
  return Status::OK();
}

std::string Histogram::ToAscii(int max_bar_width) const {
  double max_count = 0.0;
  for (double c : counts_) max_count = std::max(max_count, c);
  std::string out;
  for (int i = 0; i < num_bins(); ++i) {
    double lo = lo_ + i * bin_width();
    double hi = lo + bin_width();
    // Appended stepwise: chained string operator+ trips GCC 12's -Wrestrict
    // false positive (PR105651) under -Werror.
    out += "[";
    out += FormatDouble(lo, 2);
    out += ",";
    out += FormatDouble(hi, 2);
    out += (i == num_bins() - 1) ? "]" : ")";
    out += " ";
    int bar = (max_count > 0.0)
                  ? static_cast<int>(std::lround(counts_[i] / max_count *
                                                 max_bar_width))
                  : 0;
    out.append(static_cast<size_t>(bar), '#');
    out += " ";
    out += FormatDouble(counts_[i], 0);
    out += "\n";
  }
  return out;
}

}  // namespace fairrank
