#ifndef FAIRRANK_COMMON_FLAGS_H_
#define FAIRRANK_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace fairrank {

/// Minimal command-line parser for the fairaudit CLI and the bench
/// harnesses. Understands:
///
///   --name=value     --name value     --flag         (bare boolean)
///
/// Everything that does not start with `--` is a positional argument.
/// A literal `--` ends flag parsing; the rest is positional.
class FlagParser {
 public:
  /// Parses argv (excluding argv[0]). Fails on malformed input such as a
  /// flag with an empty name.
  static StatusOr<FlagParser> Parse(int argc, const char* const* argv);

  /// Builds a parser from already-split name/value pairs (the server's
  /// decoded query parameters), so flag-consuming helpers are shared
  /// verbatim between the CLI and the HTTP surface. Later duplicates win,
  /// matching Parse(). An empty name fails.
  static StatusOr<FlagParser> FromPairs(
      const std::vector<std::pair<std::string, std::string>>& pairs);

  /// True if --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of --name, or `fallback` if absent. A bare boolean flag
  /// has value "true".
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;

  /// Integer value of --name; fails if present but unparsable.
  StatusOr<int64_t> GetInt(const std::string& name, int64_t fallback) const;

  /// Double value of --name; fails if present but unparsable.
  StatusOr<double> GetDouble(const std::string& name, double fallback) const;

  /// Boolean value: absent -> fallback; bare flag or "true"/"1" -> true;
  /// "false"/"0" -> false; anything else fails.
  StatusOr<bool> GetBool(const std::string& name, bool fallback) const;

  /// Positional arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of all flags seen, for unknown-flag validation by callers.
  std::vector<std::string> FlagNames() const;

 private:
  FlagParser() = default;

  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Rejects flags outside `known` with InvalidArgument naming every unknown
/// flag — a misspelled `--max-node` must fail loudly, not silently run an
/// unbounded audit. Every command of fairaudit/fairauditd and every server
/// endpoint passes its accepted set through this.
Status ValidateKnownFlags(const FlagParser& flags,
                          const std::vector<std::string>& known);

}  // namespace fairrank

#endif  // FAIRRANK_COMMON_FLAGS_H_
