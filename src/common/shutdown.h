#ifndef FAIRRANK_COMMON_SHUTDOWN_H_
#define FAIRRANK_COMMON_SHUTDOWN_H_

namespace fairrank {

/// Process-wide graceful-shutdown latch for long-running binaries
/// (fairauditd). A signal handler may only touch async-signal-safe state, so
/// the handler here does exactly one thing: it latches the delivered signal
/// number into a lock-free atomic. Pollers (the server's accept loop) check
/// ShutdownRequested() between waits and run the actual drain on a normal
/// thread, where mutexes and allocation are legal again.
///
/// The latch is sticky: a second SIGINT/SIGTERM does not force an immediate
/// exit by itself — the server's drain already bounds shutdown latency with
/// its grace deadline, so there is no escalation path to kill in-flight work
/// abruptly from the handler.

/// Installs SIGINT and SIGTERM handlers that latch the shutdown flag.
/// Idempotent; safe to call more than once.
void InstallShutdownHandlers();

/// True once any installed handler has fired (or RequestShutdownForTest).
bool ShutdownRequested();

/// The signal number that triggered shutdown, or 0 when none fired.
int ShutdownSignal();

/// Latches shutdown without a real signal — lets tests and embedders drive
/// the same drain path the handlers do.
void RequestShutdownForTest();

/// Clears the latch so one process can run several serve cycles (tests).
void ResetShutdownState();

}  // namespace fairrank

#endif  // FAIRRANK_COMMON_SHUTDOWN_H_
