#include "common/str_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace fairrank {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(input.substr(start));
      break;
    }
    fields.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string Join(const std::vector<std::string>& parts, std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string CsvEscape(std::string_view field) {
  if (field.find_first_of(",\"\n\r") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto result = std::from_chars(begin, end, *out);
  return result.ec == std::errc() && result.ptr == end;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto result = std::from_chars(begin, end, *out);
  return result.ec == std::errc() && result.ptr == end;
}

}  // namespace fairrank
