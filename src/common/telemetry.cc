#include "common/telemetry.h"

#include <algorithm>

#include "common/str_util.h"

namespace fairrank {

namespace {

/// Prometheus floats: 6 significant decimals is enough for millisecond
/// latencies in seconds and keeps /stats (milliseconds, 3 decimals) and
/// /metrics (seconds, 6 decimals) renderings of one quantile digit-for-digit
/// comparable.
std::string Num(double v) { return FormatDouble(v, 6); }

void AppendHeader(std::string* out, const std::string& name,
                  const std::string& help, const char* type) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " " + std::string(type) + "\n";
}

}  // namespace

LatencySketch::LatencySketch(double epsilon) : sketch_(epsilon) {}

void LatencySketch::Observe(double seconds) {
  sketch_.Insert(seconds);
  ++count_;
  sum_seconds_ += seconds;
  max_seconds_ = std::max(max_seconds_, seconds);
}

StatusOr<double> LatencySketch::QuantileSeconds(double q) const {
  return sketch_.Quantile(q);
}

MetricHistogram::MetricHistogram(double epsilon) : sketch_(epsilon) {}

void MetricHistogram::Observe(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  sketch_.Observe(seconds);
}

MetricHistogram::Snapshot MetricHistogram::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snapshot;
  snapshot.count = sketch_.count();
  snapshot.sum_seconds = sketch_.sum_seconds();
  snapshot.max_seconds = sketch_.max_seconds();
  if (sketch_.count() > 0) {
    snapshot.p50_seconds = sketch_.QuantileSeconds(0.5).value_or(0.0);
    snapshot.p90_seconds = sketch_.QuantileSeconds(0.9).value_or(0.0);
    snapshot.p99_seconds = sketch_.QuantileSeconds(0.99).value_or(0.0);
  }
  return snapshot;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

template <typename T>
T* MetricsRegistry::GetOrCreate(
    std::map<std::string, std::unique_ptr<T>>* metrics,
    const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics->find(name);
  if (it == metrics->end()) {
    it = metrics->emplace(name, std::make_unique<T>()).first;
    help_.emplace(name, help);
  }
  return it->second.get();
}

MetricCounter* MetricsRegistry::GetCounter(const std::string& name,
                                           const std::string& help) {
  return GetOrCreate(&counters_, name, help);
}

MetricGauge* MetricsRegistry::GetGauge(const std::string& name,
                                       const std::string& help) {
  return GetOrCreate(&gauges_, name, help);
}

MetricHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                               const std::string& help) {
  return GetOrCreate(&histograms_, name, help);
}

std::string MetricsRegistry::RenderPrometheus() const {
  // Snapshot the (name -> metric) views under the lock, then render without
  // it — histogram snapshots take their own per-histogram lock.
  std::map<std::string, const MetricCounter*> counters;
  std::map<std::string, const MetricGauge*> gauges;
  std::map<std::string, const MetricHistogram*> histograms;
  std::map<std::string, std::string> help;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& entry : counters_) {
      counters.emplace(entry.first, entry.second.get());
    }
    for (const auto& entry : gauges_) {
      gauges.emplace(entry.first, entry.second.get());
    }
    for (const auto& entry : histograms_) {
      histograms.emplace(entry.first, entry.second.get());
    }
    help = help_;
  }
  std::string out;
  for (const auto& [name, counter] : counters) {
    AppendHeader(&out, name, help[name], "counter");
    out += name + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges) {
    AppendHeader(&out, name, help[name], "gauge");
    out += name + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms) {
    const MetricHistogram::Snapshot s = histogram->TakeSnapshot();
    AppendHeader(&out, name, help[name], "summary");
    if (s.count > 0) {
      out += name + "{quantile=\"0.5\"} " + Num(s.p50_seconds) + "\n";
      out += name + "{quantile=\"0.9\"} " + Num(s.p90_seconds) + "\n";
      out += name + "{quantile=\"0.99\"} " + Num(s.p99_seconds) + "\n";
    }
    out += name + "_sum " + Num(s.sum_seconds) + "\n";
    out += name + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

bool MetricsRegistry::IsValidMetricName(const std::string& name) {
  static const char* kSuffixes[] = {"_total", "_seconds", "_bytes",
                                    "_count", "_ratio",   "_info"};
  const std::string prefix = "fairrank_";
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix)) {
    return false;
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  if (name.find("__") != std::string::npos) return false;
  for (const char* suffix : kSuffixes) {
    const std::string s(suffix);
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace fairrank
