#ifndef FAIRRANK_COMMON_RNG_H_
#define FAIRRANK_COMMON_RNG_H_

#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace fairrank {

/// Deterministic 64-bit random number generator. Every stochastic component
/// in the library takes an explicit seed so experiments are reproducible;
/// benches print the seeds they use.
///
/// Wraps std::mt19937_64 with convenience samplers. Not thread-safe; create
/// one Rng per thread (fork child streams with `Fork`).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi). Requires lo < hi.
  double UniformDouble(double lo, double hi);

  /// Uniform double in [0, 1).
  double NextDouble() { return UniformDouble(0.0, 1.0); }

  /// Uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n);

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p);

  /// Gaussian sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = UniformIndex(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Derives an independent child generator. Deterministic given this
  /// generator's current state.
  Rng Fork();

  /// Access to the underlying engine for std::distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace fairrank

#endif  // FAIRRANK_COMMON_RNG_H_
