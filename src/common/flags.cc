#include "common/flags.h"

#include "common/str_util.h"

namespace fairrank {

StatusOr<FlagParser> FlagParser::Parse(int argc, const char* const* argv) {
  FlagParser parser;
  bool flags_done = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (flags_done || !StartsWith(arg, "--")) {
      parser.positional_.push_back(std::move(arg));
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("malformed flag '" + arg + "'");
      }
      parser.flags_[name] = body.substr(eq + 1);
      continue;
    }
    if (body.empty()) {
      return Status::InvalidArgument("malformed flag '" + arg + "'");
    }
    // `--name value` if the next token is not a flag; else bare boolean.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      parser.flags_[body] = argv[i + 1];
      ++i;
    } else {
      parser.flags_[body] = "true";
    }
  }
  return parser;
}

StatusOr<FlagParser> FlagParser::FromPairs(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  FlagParser parser;
  for (const auto& [name, value] : pairs) {
    if (name.empty()) {
      return Status::InvalidArgument("empty parameter name");
    }
    parser.flags_[name] = value;
  }
  return parser;
}

bool FlagParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

StatusOr<int64_t> FlagParser::GetInt(const std::string& name,
                                     int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  int64_t value = 0;
  if (!ParseInt64(it->second, &value)) {
    return Status::InvalidArgument("--" + name + " expects an integer, got '" +
                                   it->second + "'");
  }
  return value;
}

StatusOr<double> FlagParser::GetDouble(const std::string& name,
                                       double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  double value = 0.0;
  if (!ParseDouble(it->second, &value)) {
    return Status::InvalidArgument("--" + name + " expects a number, got '" +
                                   it->second + "'");
  }
  return value;
}

StatusOr<bool> FlagParser::GetBool(const std::string& name,
                                   bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::string v = ToLower(it->second);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return Status::InvalidArgument("--" + name + " expects a boolean, got '" +
                                 it->second + "'");
}

std::vector<std::string> FlagParser::FlagNames() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, value] : flags_) names.push_back(name);
  return names;
}

Status ValidateKnownFlags(const FlagParser& flags,
                          const std::vector<std::string>& known) {
  std::vector<std::string> unknown;
  for (const std::string& name : flags.FlagNames()) {
    bool found = false;
    for (const std::string& k : known) {
      if (name == k) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back("--" + name);
  }
  if (unknown.empty()) return Status::OK();
  return Status::InvalidArgument("unknown flag" +
                                 std::string(unknown.size() > 1 ? "s " : " ") +
                                 Join(unknown, ", "));
}

}  // namespace fairrank
