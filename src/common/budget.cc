#include "common/budget.h"

#include "common/fault_injection.h"

namespace fairrank {

const char* ExhaustionReasonToString(ExhaustionReason reason) {
  switch (reason) {
    case ExhaustionReason::kNone:
      return "none";
    case ExhaustionReason::kDeadline:
      return "deadline";
    case ExhaustionReason::kCancelled:
      return "cancelled";
    case ExhaustionReason::kNodeBudget:
      return "node-budget";
    case ExhaustionReason::kMemoryBudget:
      return "memory-budget";
  }
  return "none";
}

bool ResourceBudget::ChargeNodes(uint64_t n) {
  uint64_t used = nodes_used_.fetch_add(n, std::memory_order_relaxed) + n;
  bool ok = max_nodes_ == 0 || used <= max_nodes_;
  // Charge the parent unconditionally (never short-circuit): the parent's
  // counters must reflect every unit of work its children attempted.
  if (parent_ != nullptr && !parent_->ChargeNodes(n)) ok = false;
  return ok;
}

bool ResourceBudget::ChargeMemoryBytes(uint64_t bytes) {
  uint64_t used = memory_used_.fetch_add(bytes, std::memory_order_relaxed) +
                  bytes;
  bool ok = max_memory_bytes_ == 0 || used <= max_memory_bytes_;
  if (parent_ != nullptr && !parent_->ChargeMemoryBytes(bytes)) ok = false;
  if (memory_tripped_.load(std::memory_order_relaxed)) return false;
  return ok;
}

bool ResourceBudget::nodes_exhausted() const {
  if (max_nodes_ != 0 &&
      nodes_used_.load(std::memory_order_relaxed) > max_nodes_) {
    return true;
  }
  return parent_ != nullptr && parent_->nodes_exhausted();
}

bool ResourceBudget::memory_exhausted() const {
  if (memory_tripped_.load(std::memory_order_relaxed)) return true;
  if (max_memory_bytes_ != 0 &&
      memory_used_.load(std::memory_order_relaxed) > max_memory_bytes_) {
    return true;
  }
  return parent_ != nullptr && parent_->memory_exhausted();
}

const ExecutionContext& ExecutionContext::Unbounded() {
  static const ExecutionContext* context = new ExecutionContext();
  return *context;
}

ExhaustionReason ExecutionContext::Check() const {
  if (deadline_.Expired()) return ExhaustionReason::kDeadline;
  if (cancel_.cancel_requested()) return ExhaustionReason::kCancelled;
  if (budget_ != nullptr) {
    if (budget_->nodes_exhausted()) return ExhaustionReason::kNodeBudget;
    if (budget_->memory_exhausted()) return ExhaustionReason::kMemoryBudget;
  }
  return ExhaustionReason::kNone;
}

ExhaustionReason ExecutionContext::CheckNodes(uint64_t n) const {
  if (budget_ != nullptr && !budget_->ChargeNodes(n)) {
    return ExhaustionReason::kNodeBudget;
  }
  return Check();
}

ExhaustionReason ExecutionContext::CheckMemory(uint64_t bytes) const {
  if (fault::OnAllocCheckpoint()) {
    if (budget_ != nullptr) budget_->TripMemory();
    return ExhaustionReason::kMemoryBudget;
  }
  if (budget_ != nullptr && !budget_->ChargeMemoryBytes(bytes)) {
    return ExhaustionReason::kMemoryBudget;
  }
  return Check();
}

bool ExecutionContext::IsUnbounded() const {
  return deadline_.is_infinite() && !cancel_.cancel_requested() &&
         budget_ == nullptr;
}

bool ExecutionLimits::unlimited() const {
  return timeout_ms <= 0 && deadline.is_infinite() && max_nodes == 0 &&
         max_memory_mb == 0 && !cancel.cancel_requested() &&
         parent_budget == nullptr;
}

ResourceBudget ExecutionLimits::MakeBudget() const {
  return ResourceBudget(max_nodes, max_memory_mb * (uint64_t{1} << 20),
                        parent_budget);
}

Deadline ExecutionLimits::EffectiveDeadline() const {
  Deadline from_timeout =
      timeout_ms > 0 ? Deadline::AfterMillis(timeout_ms) : Deadline::Infinite();
  return Deadline::Earlier(deadline, from_timeout);
}

ExecutionContext ExecutionLimits::MakeContext(ResourceBudget* budget) const {
  ExecutionContext context(EffectiveDeadline(), cancel, budget);
  return trace != nullptr ? context.WithTrace(trace, -1) : context;
}

Status ExhaustionStatus(ExhaustionReason reason) {
  switch (reason) {
    case ExhaustionReason::kNone:
      return Status::OK();
    case ExhaustionReason::kDeadline:
      return Status::DeadlineExceeded("deadline expired");
    case ExhaustionReason::kCancelled:
      return Status::Cancelled("cancellation requested");
    case ExhaustionReason::kNodeBudget:
      return Status::ResourceExhausted("node budget exhausted");
    case ExhaustionReason::kMemoryBudget:
      return Status::ResourceExhausted("memory budget exhausted");
  }
  return Status::OK();
}

bool IsExhaustion(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kCancelled ||
         status.code() == StatusCode::kResourceExhausted;
}

ExhaustionReason ExhaustionReasonFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      return ExhaustionReason::kDeadline;
    case StatusCode::kCancelled:
      return ExhaustionReason::kCancelled;
    case StatusCode::kResourceExhausted:
      // ExhaustionStatus encodes which budget in the message; default to the
      // node budget for foreign ResourceExhausted statuses.
      return status.message().find("memory") != std::string::npos
                 ? ExhaustionReason::kMemoryBudget
                 : ExhaustionReason::kNodeBudget;
    default:
      return ExhaustionReason::kNone;
  }
}

}  // namespace fairrank
