#ifndef FAIRRANK_COMMON_STR_UTIL_H_
#define FAIRRANK_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fairrank {

/// Splits `input` on `delim`. Keeps empty fields ("a,,b" -> {"a","","b"});
/// an empty input yields a single empty field, matching CSV semantics.
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `delim` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view delim);

/// RFC-4180 CSV field escaping: a field containing a comma, a double quote,
/// or a line break is wrapped in double quotes with embedded quotes doubled;
/// any other field passes through unchanged. Every emitted CSV field flows
/// through this — unescaped algorithm/function/attribute names corrupt rows.
std::string CsvEscape(std::string_view field);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view s);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

/// Parses a double; returns false on malformed or trailing garbage.
bool ParseDouble(std::string_view s, double* out);

/// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

}  // namespace fairrank

#endif  // FAIRRANK_COMMON_STR_UTIL_H_
