#ifndef FAIRRANK_COMMON_TELEMETRY_H_
#define FAIRRANK_COMMON_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "stats/quantile_sketch.h"

namespace fairrank {

/// Unsynchronized latency accumulator: a GK quantile sketch plus
/// count/sum/max. This is THE latency implementation — the per-endpoint
/// latencies in `/stats`, the summaries in `/metrics`, and the registry
/// histograms all read quantiles off this one type, so p50/p99 come from a
/// single code path (the same GK sketch that backs EMD elsewhere).
///
/// Synchronization is the owner's job: ServerStats embeds it under its own
/// mutex; MetricHistogram wraps it with one.
class LatencySketch {
 public:
  /// `epsilon` is the GK rank-error bound; 0.005 keeps p99 of 10k samples
  /// within ±50 ranks.
  explicit LatencySketch(double epsilon = 0.005);

  void Observe(double seconds);

  uint64_t count() const { return count_; }
  double sum_seconds() const { return sum_seconds_; }
  double max_seconds() const { return max_seconds_; }

  /// Approximate q-quantile in seconds; fails on an empty sketch.
  StatusOr<double> QuantileSeconds(double q) const;

 private:
  GkSketch sketch_;
  uint64_t count_ = 0;
  double sum_seconds_ = 0.0;
  double max_seconds_ = 0.0;
};

/// Monotonic counter; relaxed atomics (each sample is independent, only the
/// eventual total matters), so concurrent Increment is TSan-clean and
/// wait-free.
class MetricCounter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value (queue depths, resident bytes).
class MetricGauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Thread-safe LatencySketch for registry use (rendered as a Prometheus
/// summary). Observations are expected at per-request granularity, not
/// per-EMD — keep hot loops on counters.
class MetricHistogram {
 public:
  explicit MetricHistogram(double epsilon = 0.005);

  void Observe(double seconds) FAIRRANK_EXCLUDES(mutex_);

  struct Snapshot {
    uint64_t count = 0;
    double sum_seconds = 0.0;
    double max_seconds = 0.0;
    double p50_seconds = 0.0;  ///< 0 when empty.
    double p90_seconds = 0.0;
    double p99_seconds = 0.0;
  };
  Snapshot TakeSnapshot() const FAIRRANK_EXCLUDES(mutex_);

 private:
  mutable std::mutex mutex_;
  LatencySketch sketch_ FAIRRANK_GUARDED_BY(mutex_);
};

/// Process-wide metrics registry. Get* registers on first use and returns a
/// stable pointer, so call sites hold a function-local static and updates
/// are lock-free counter/gauge bumps ("static registration"):
///
///   static MetricCounter* audits = MetricsRegistry::Global().GetCounter(
///       "fairrank_audits_total", "Completed audits");
///   audits->Increment();
///
/// Names must pass IsValidMetricName (snake_case, `fairrank_` prefix, a
/// recognized unit/kind suffix) — enforced by the metrics-naming lint rule
/// at review time and checked here in debug via the returned pointer being
/// shared per name. RenderPrometheus emits the text exposition format
/// (sorted by name, summaries for histograms).
class MetricsRegistry {
 public:
  /// The process registry (what `/metrics` serves). Separate instances are
  /// constructible for tests.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  MetricCounter* GetCounter(const std::string& name, const std::string& help)
      FAIRRANK_EXCLUDES(mutex_);
  MetricGauge* GetGauge(const std::string& name, const std::string& help)
      FAIRRANK_EXCLUDES(mutex_);
  MetricHistogram* GetHistogram(const std::string& name,
                                const std::string& help)
      FAIRRANK_EXCLUDES(mutex_);

  /// Prometheus text exposition of every registered metric, deterministic
  /// (sorted by name). Histograms render as summaries with quantile 0.5 /
  /// 0.9 / 0.99 plus _sum / _count.
  std::string RenderPrometheus() const FAIRRANK_EXCLUDES(mutex_);

  /// True for `fairrank_`-prefixed snake_case names carrying a recognized
  /// unit/kind suffix (_total, _seconds, _bytes, _count, _ratio, _info).
  static bool IsValidMetricName(const std::string& name);

 private:
  template <typename T>
  T* GetOrCreate(std::map<std::string, std::unique_ptr<T>>* metrics,
                 const std::string& name, const std::string& help)
      FAIRRANK_EXCLUDES(mutex_);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_
      FAIRRANK_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<MetricGauge>> gauges_
      FAIRRANK_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_
      FAIRRANK_GUARDED_BY(mutex_);
  std::map<std::string, std::string> help_ FAIRRANK_GUARDED_BY(mutex_);
};

}  // namespace fairrank

#endif  // FAIRRANK_COMMON_TELEMETRY_H_
