#include "common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace fairrank {

int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  // Not worth spawning threads for tiny ranges.
  const size_t kMinPerThread = 64;
  size_t usable = std::min<size_t>(static_cast<size_t>(std::max(num_threads, 1)),
                                   (n + kMinPerThread - 1) / kMinPerThread);
  if (usable <= 1) {
    body(0, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(usable - 1);
  size_t chunk = (n + usable - 1) / usable;
  for (size_t t = 1; t < usable; ++t) {
    size_t begin = t * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&body, begin, end]() { body(begin, end); });
  }
  body(0, std::min(n, chunk));
  for (std::thread& w : workers) w.join();
}

}  // namespace fairrank
