#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_annotations.h"

namespace fairrank {

int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

// Not worth spawning threads for tiny ranges.
constexpr size_t kMinPerThread = 64;
// Stop-check granularity of the cancellable variant: small enough that a
// cancelled audit stops within microseconds of real work, large enough that
// the deadline clock read is amortized away.
constexpr size_t kStopCheckBlock = 1024;

/// Exception channel shared by the workers of one ParallelFor: keeps only
/// the exception from the lowest chunk index, so the rethrown error is
/// deterministic no matter which worker faults first in wall-clock order.
class ExceptionChannel {
 public:
  /// Records `error` for `chunk_index` unless a lower chunk already faulted.
  void Report(size_t chunk_index, std::exception_ptr error)
      FAIRRANK_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (chunk_index < first_chunk_) {
      first_chunk_ = chunk_index;
      error_ = std::move(error);
    }
  }

  /// Rethrows the winning exception, if any. Call only after every worker
  /// has been joined (no further Report can race).
  void RethrowIfSet() FAIRRANK_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::mutex mutex_;
  size_t first_chunk_ FAIRRANK_GUARDED_BY(mutex_) =
      std::numeric_limits<size_t>::max();
  std::exception_ptr error_ FAIRRANK_GUARDED_BY(mutex_);
};

/// Runs one chunk, optionally in stop-checked blocks. Returns false when
/// stopped early. May throw (body or injected fault).
bool RunChunk(size_t chunk_index, size_t begin, size_t end, bool stoppable,
              const CancellationToken& cancel, const Deadline& deadline,
              const std::function<void(size_t, size_t)>& body) {
  fault::OnParallelChunk(chunk_index, cancel);
  if (!stoppable) {
    body(begin, end);
    return true;
  }
  for (size_t b = begin; b < end; b += kStopCheckBlock) {
    if (cancel.cancel_requested() || deadline.Expired()) return false;
    body(b, std::min(end, b + kStopCheckBlock));
  }
  return true;
}

/// Shared driver. Joins every worker before returning or rethrowing; the
/// exception from the lowest chunk index wins (see ExceptionChannel).
bool Run(size_t n, int num_threads, bool stoppable,
         const CancellationToken& cancel, const Deadline& deadline,
         const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return true;
  size_t usable = std::min<size_t>(static_cast<size_t>(std::max(num_threads, 1)),
                                   (n + kMinPerThread - 1) / kMinPerThread);
  if (usable <= 1) {
    return RunChunk(0, 0, n, stoppable, cancel, deadline, body);
  }
  std::vector<std::thread> workers;
  workers.reserve(usable - 1);
  ExceptionChannel errors;
  std::atomic<bool> complete{true};
  size_t chunk = (n + usable - 1) / usable;
  for (size_t t = 1; t < usable; ++t) {
    size_t begin = t * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&, t, begin, end]() {
      try {
        if (!RunChunk(t, begin, end, stoppable, cancel, deadline, body)) {
          complete.store(false, std::memory_order_relaxed);
        }
      } catch (...) {
        errors.Report(t, std::current_exception());
      }
    });
  }
  try {
    if (!RunChunk(0, 0, std::min(n, chunk), stoppable, cancel, deadline,
                  body)) {
      complete.store(false, std::memory_order_relaxed);
    }
  } catch (...) {
    errors.Report(0, std::current_exception());
  }
  for (std::thread& w : workers) w.join();
  errors.RethrowIfSet();
  return complete.load(std::memory_order_relaxed);
}

}  // namespace

void ParallelForEach(size_t n, int num_threads,
                     const std::function<void(size_t)>& task) {
  if (n == 0) return;
  size_t usable =
      std::min<size_t>(static_cast<size_t>(std::max(num_threads, 1)), n);
  std::atomic<size_t> next{0};
  ExceptionChannel errors;
  auto drain = [&]() {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        task(i);
      } catch (...) {
        // Keyed by task index (not worker id) so the rethrown exception is
        // deterministic no matter which worker claimed the faulting item.
        errors.Report(i, std::current_exception());
      }
    }
  };
  // usable == 1 degenerates to a serial in-order drain on the calling
  // thread with identical semantics: every task still runs, the lowest
  // faulting index still wins the rethrow.
  std::vector<std::thread> workers;
  workers.reserve(usable - 1);
  for (size_t t = 1; t < usable; ++t) workers.emplace_back(drain);
  drain();
  for (std::thread& w : workers) w.join();
  errors.RethrowIfSet();
}

void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t)>& body) {
  Run(n, num_threads, /*stoppable=*/false, CancellationToken(),
      Deadline::Infinite(), body);
}

bool ParallelForCancellable(size_t n, int num_threads,
                            const CancellationToken& cancel,
                            const Deadline& deadline,
                            const std::function<void(size_t, size_t)>& body) {
  return Run(n, num_threads, /*stoppable=*/true, cancel, deadline, body);
}

}  // namespace fairrank
