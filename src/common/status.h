#ifndef FAIRRANK_COMMON_STATUS_H_
#define FAIRRANK_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace fairrank {

/// Error categories used across the library. Mirrors the RocksDB/Abseil
/// convention: no exceptions cross the public API; every fallible operation
/// returns a Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIOError,
  kAlreadyExists,
  kResourceExhausted,
  kCancelled,
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic result of a fallible operation: a code plus an optional
/// message. Cheap to copy in the OK case (empty message).
///
/// [[nodiscard]]: silently dropping a Status is the classic way an IO or
/// validation error disappears; every ignored return is a compile error
/// (-Werror in CI). An intentionally best-effort call site documents itself
/// with a `(void)` cast and a comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never holds both.
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from an error status. Must not be OK (an OK status with no
  /// value is meaningless); enforced by assertion.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace fairrank

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define FAIRRANK_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::fairrank::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

#define FAIRRANK_CONCAT_INNER_(a, b) a##b
#define FAIRRANK_CONCAT_(a, b) FAIRRANK_CONCAT_INNER_(a, b)

/// Assigns the value of a StatusOr expression to `lhs`, or returns its error.
#define FAIRRANK_ASSIGN_OR_RETURN(lhs, expr) \
  FAIRRANK_ASSIGN_OR_RETURN_IMPL_(FAIRRANK_CONCAT_(_statusor_, __LINE__), lhs, \
                                  expr)

#define FAIRRANK_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                    \
  if (!var.ok()) return var.status();                   \
  lhs = std::move(var).value()

#endif  // FAIRRANK_COMMON_STATUS_H_
