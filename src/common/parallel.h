#ifndef FAIRRANK_COMMON_PARALLEL_H_
#define FAIRRANK_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace fairrank {

/// Runs `body(begin, end)` over a partition of [0, n) across up to
/// `num_threads` worker threads (including the calling thread) and joins.
/// With num_threads <= 1 or tiny n the body runs inline — callers never
/// need a special single-threaded path.
///
/// `body` must be safe to call concurrently on disjoint ranges.
void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t)>& body);

/// Number of hardware threads, at least 1.
int HardwareThreads();

}  // namespace fairrank

#endif  // FAIRRANK_COMMON_PARALLEL_H_
