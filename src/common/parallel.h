#ifndef FAIRRANK_COMMON_PARALLEL_H_
#define FAIRRANK_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/deadline.h"

namespace fairrank {

/// Runs `body(begin, end)` over a partition of [0, n) across up to
/// `num_threads` worker threads (including the calling thread) and joins.
/// With num_threads <= 1 or tiny n the body runs inline — callers never
/// need a special single-threaded path.
///
/// Exception safety: every worker is joined even if bodies throw; the first
/// exception (by chunk index, deterministic) is rethrown on the calling
/// thread. Callers that must not leak exceptions across a Status-based API
/// wrap the call in try/catch.
///
/// `body` must be safe to call concurrently on disjoint ranges.
void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t)>& body);

/// Cancellable ParallelFor: each worker processes its chunk in small blocks
/// and stops between blocks once `cancel` is requested or `deadline`
/// expires, so a cancelled audit actually stops its workers instead of
/// finishing the full range. Returns true if the whole range was processed,
/// false on an early stop (an unspecified tail of each chunk unprocessed —
/// partial results must be discarded). Exception behavior as ParallelFor.
bool ParallelForCancellable(size_t n, int num_threads,
                            const CancellationToken& cancel,
                            const Deadline& deadline,
                            const std::function<void(size_t, size_t)>& body);

/// Task-pool variant for heavyweight, uneven work items (suite cells, whole
/// audits): runs `task(i)` for every i in [0, n) across up to `num_threads`
/// workers (including the calling thread) with *dynamic* scheduling — each
/// worker pulls the next unclaimed index from a shared atomic counter, so a
/// slow item (the paper's `balanced` algorithm dominates a grid) never idles
/// the other workers the way ParallelFor's static chunking would. With
/// num_threads <= 1 or n <= 1 the tasks run inline in index order.
///
/// Exception behavior is uniform across thread counts: a throwing task
/// never stops the pool (the remaining indices still run), every worker is
/// joined, and the exception from the lowest task index is rethrown
/// deterministically afterwards. Tasks must be safe to run concurrently;
/// each index runs exactly once.
void ParallelForEach(size_t n, int num_threads,
                     const std::function<void(size_t)>& task);

/// Number of hardware threads, at least 1.
int HardwareThreads();

}  // namespace fairrank

#endif  // FAIRRANK_COMMON_PARALLEL_H_
