#include "common/rng.h"

namespace fairrank {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformDouble(double lo, double hi) {
  assert(lo < hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

size_t Rng::UniformIndex(size_t n) {
  assert(n > 0);
  std::uniform_int_distribution<size_t> dist(0, n - 1);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double x = UniformDouble(0.0, total);
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (x < cum) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() {
  uint64_t child_seed = engine_();
  return Rng(child_seed);
}

}  // namespace fairrank
