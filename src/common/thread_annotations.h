#ifndef FAIRRANK_COMMON_THREAD_ANNOTATIONS_H_
#define FAIRRANK_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes (no-ops on other compilers).
///
/// These turn locking discipline from convention into a compile-time
/// contract: a field declared `FAIRRANK_GUARDED_BY(mutex_)` may only be
/// touched while `mutex_` is held, and a function declared
/// `FAIRRANK_REQUIRES(mutex_)` may only be called with it held. Clang
/// enforces the contract with `-Wthread-safety` (CI builds the library with
/// `-Wthread-safety -Werror`); GCC compiles the macros away.
///
/// Conventions used in this codebase:
///  - Every field protected by a mutex carries FAIRRANK_GUARDED_BY. Fields
///    that are atomic, const after construction, or confined to one thread
///    carry a comment instead, never a fake annotation.
///  - Private `...Locked()` helpers that assume the caller holds the lock
///    are declared FAIRRANK_REQUIRES(mutex) rather than re-locking.
///  - Annotated mutexes are plain std::mutex wrapped by FAIRRANK_CAPABILITY
///    usage through std::lock_guard / std::unique_lock, which Clang
///    understands natively.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && (!defined(SWIG))
#define FAIRRANK_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FAIRRANK_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Declares that a field or variable is protected by `x` (a mutex member).
#define FAIRRANK_GUARDED_BY(x) FAIRRANK_THREAD_ANNOTATION_(guarded_by(x))

/// Declares that the pointee of a pointer field is protected by `x`.
#define FAIRRANK_PT_GUARDED_BY(x) \
  FAIRRANK_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that a function may only be called while holding `...`.
#define FAIRRANK_REQUIRES(...) \
  FAIRRANK_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Declares that a function must NOT be called while holding `...` (guards
/// against self-deadlock on non-recursive mutexes).
#define FAIRRANK_EXCLUDES(...) \
  FAIRRANK_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that a function acquires `...` and does not release it.
#define FAIRRANK_ACQUIRE(...) \
  FAIRRANK_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Declares that a function releases `...`.
#define FAIRRANK_RELEASE(...) \
  FAIRRANK_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Escape hatch: turns the analysis off for one function. Use only with a
/// comment explaining why the analysis cannot see the invariant.
#define FAIRRANK_NO_THREAD_SAFETY_ANALYSIS \
  FAIRRANK_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // FAIRRANK_COMMON_THREAD_ANNOTATIONS_H_
