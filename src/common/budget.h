#ifndef FAIRRANK_COMMON_BUDGET_H_
#define FAIRRANK_COMMON_BUDGET_H_

#include <atomic>
#include <cstdint>

#include "common/deadline.h"
#include "common/status.h"

namespace fairrank {

class TraceContext;

/// Why a bounded search stopped early. `kNone` means it ran to completion.
enum class ExhaustionReason {
  kNone = 0,
  kDeadline,      ///< The monotonic deadline expired.
  kCancelled,     ///< Cooperative cancellation was requested.
  kNodeBudget,    ///< The node / EMD-evaluation budget ran out.
  kMemoryBudget,  ///< The approximate-memory budget ran out.
};

/// Stable lower-case name ("none", "deadline", "cancelled", "node-budget",
/// "memory-budget") used in reports and JSON output.
const char* ExhaustionReasonToString(ExhaustionReason reason);

/// Thread-safe counters of search work. Two axes:
///
///  - nodes: split / candidate-evaluation checkpoints, the unit the paper's
///    intractable exhaustive search blows up in. Roughly one node per
///    candidate partitioning whose unfairness is evaluated.
///  - memory: approximate bytes of search state (materialized partitionings,
///    distance matrices). Cumulative, not live — a cheap deterministic
///    proxy, charged at allocation checkpoints, never released.
///
/// A limit of 0 means unlimited on that axis. Charging is allowed to
/// overshoot by the final charge; exhaustion latches (once over, always
/// over). Shared by every worker of one audit; all members are atomic.
///
/// Budgets compose hierarchically: a budget constructed with a `parent`
/// forwards every charge to the parent atomically and is exhausted as soon
/// as either its own limit or the parent's trips. A suite gives each cell a
/// locally-unlimited child of one parent budget, so the cells' aggregate
/// work respects the user's *total* allowance while the child counters keep
/// per-cell observability. The parent must outlive every child.
class ResourceBudget {
 public:
  /// Unlimited on both axes.
  ResourceBudget() = default;

  ResourceBudget(uint64_t max_nodes, uint64_t max_memory_bytes,
                 ResourceBudget* parent = nullptr)
      : max_nodes_(max_nodes),
        max_memory_bytes_(max_memory_bytes),
        parent_(parent) {}

  /// Charges `n` nodes. Returns false once the node budget is exhausted.
  [[nodiscard]] bool ChargeNodes(uint64_t n = 1);

  /// Charges an approximate allocation. Returns false once the memory
  /// budget is exhausted (or a fault-injected checkpoint failure latched
  /// it via ExecutionContext::CheckMemory).
  [[nodiscard]] bool ChargeMemoryBytes(uint64_t bytes);

  bool nodes_exhausted() const;
  bool memory_exhausted() const;

  /// Latches memory exhaustion without charging — the hook fault injection
  /// uses to simulate a failed allocation.
  void TripMemory() { memory_tripped_.store(true, std::memory_order_relaxed); }

  uint64_t nodes_used() const {
    return nodes_used_.load(std::memory_order_relaxed);
  }
  uint64_t memory_used_bytes() const {
    return memory_used_.load(std::memory_order_relaxed);
  }
  uint64_t max_nodes() const { return max_nodes_; }
  uint64_t max_memory_bytes() const { return max_memory_bytes_; }
  ResourceBudget* parent() const { return parent_; }

 private:
  uint64_t max_nodes_ = 0;         ///< 0 = unlimited.
  uint64_t max_memory_bytes_ = 0;  ///< 0 = unlimited.
  ResourceBudget* parent_ = nullptr;  ///< Borrowed; shared by siblings.
  std::atomic<uint64_t> nodes_used_{0};
  std::atomic<uint64_t> memory_used_{0};
  std::atomic<bool> memory_tripped_{false};
};

/// Everything a search needs to bound its work: a deadline, a cancellation
/// token, and an optional borrowed ResourceBudget. Value-type view, cheap to
/// copy; the budget (if any) must outlive every context referring to it.
///
/// Algorithms call Check()/CheckNodes() at split and evaluation boundaries
/// and CheckMemory() before materializing large search state, and degrade
/// gracefully — return the best valid partitioning found so far, flagged
/// truncated — when any check reports exhaustion.
class ExecutionContext {
 public:
  /// Unbounded: infinite deadline, null token, no budget.
  ExecutionContext() = default;

  ExecutionContext(Deadline deadline, CancellationToken cancel,
                   ResourceBudget* budget)
      : deadline_(deadline), cancel_(std::move(cancel)), budget_(budget) {}

  /// A shared unbounded context for convenience call sites.
  static const ExecutionContext& Unbounded();

  const Deadline& deadline() const { return deadline_; }
  const CancellationToken& cancel() const { return cancel_; }
  ResourceBudget* budget() const { return budget_; }

  /// Deadline / cancellation / already-latched budget exhaustion, in that
  /// priority order. Charges nothing.
  [[nodiscard]] ExhaustionReason Check() const;

  /// Check() plus charging `n` nodes against the budget (if any).
  [[nodiscard]] ExhaustionReason CheckNodes(uint64_t n = 1) const;

  /// Allocation checkpoint: Check() plus charging `bytes` of approximate
  /// memory. Fault injection counts these checkpoints and can force the Nth
  /// one to fail even without a budget (see common/fault_injection.h).
  [[nodiscard]] ExhaustionReason CheckMemory(uint64_t bytes) const;

  /// True when no configured limit can ever fire.
  bool IsUnbounded() const;

  /// Same deadline and cancellation, no resource budget. Used for fallback
  /// work (e.g. exhaustive falling back to beam once its node budget trips)
  /// that must stay deadline-bounded but needs room to produce an answer.
  /// The trace (if any) rides along: fallback spans belong to the same
  /// request.
  ExecutionContext WithoutBudget() const {
    ExecutionContext context(deadline_, cancel_, nullptr);
    context.trace_ = trace_;
    context.trace_parent_ = trace_parent_;
    return context;
  }

  /// Borrowed per-request trace, threaded like the deadline and the budget;
  /// null = tracing off (see common/trace.h). `trace_parent()` is the span
  /// id new spans should parent under (-1 = root).
  TraceContext* trace() const { return trace_; }
  int64_t trace_parent() const { return trace_parent_; }

  /// Copy of this context recording spans under `parent` on `trace`.
  ExecutionContext WithTrace(TraceContext* trace, int64_t parent) const {
    ExecutionContext context = *this;
    context.trace_ = trace;
    context.trace_parent_ = parent;
    return context;
  }

 private:
  Deadline deadline_;
  CancellationToken cancel_;
  ResourceBudget* budget_ = nullptr;
  TraceContext* trace_ = nullptr;  ///< Borrowed; must outlive the context.
  int64_t trace_parent_ = -1;
};

/// User-facing execution limits, the shape the CLI flags take. Inert by
/// default. A pre-armed finite `deadline` (already ticking — lets a caller
/// share one deadline across several audits) and `timeout_ms` compose: the
/// *earlier* of the two wins, so a caller's 10s shared deadline cannot be
/// loosened by a 60s per-call timeout and vice versa.
struct ExecutionLimits {
  int64_t timeout_ms = 0;      ///< <= 0: no deadline.
  Deadline deadline;           ///< Pre-armed deadline; the earlier of this
                               ///< and timeout_ms applies.
  uint64_t max_nodes = 0;      ///< 0: unlimited.
  uint64_t max_memory_mb = 0;  ///< 0: unlimited.
  CancellationToken cancel;    ///< Default token never cancels.
  /// Hierarchical parent: when set, MakeBudget() chains the new budget to
  /// it, so charges land on both and the parent's exhaustion stops this
  /// child too. Borrowed — the owner (e.g. a suite holding one budget for
  /// the whole grid) must outlive every context made from these limits.
  ResourceBudget* parent_budget = nullptr;
  /// Borrowed per-request trace attached to contexts made from these limits
  /// (MakeContext). Null = tracing off; not a limit, so `unlimited()`
  /// ignores it. The owner (CLI run, server request) must outlive every
  /// context.
  TraceContext* trace = nullptr;

  /// True when every limit is inert (no deadline, no budgets, null token,
  /// no parent).
  bool unlimited() const;

  /// Budget sized to max_nodes / max_memory_mb, chained to `parent_budget`
  /// when one is set.
  ResourceBudget MakeBudget() const;

  /// The deadline a context made now would carry: the earlier of the
  /// pre-armed `deadline` and a fresh timeout_ms one.
  Deadline EffectiveDeadline() const;

  /// Context over `budget` (may be null); arms EffectiveDeadline() now.
  ExecutionContext MakeContext(ResourceBudget* budget) const;
};

/// The Status a bounded operation that cannot degrade gracefully returns for
/// `reason`; OK for kNone.
Status ExhaustionStatus(ExhaustionReason reason);

/// True for statuses produced by ExhaustionStatus-style exhaustion
/// (DeadlineExceeded, Cancelled, ResourceExhausted) — the signal for a
/// caller holding partial results to degrade instead of failing.
bool IsExhaustion(const Status& status);

/// Inverse of ExhaustionStatus, for recording why a search truncated.
/// kNone for OK or non-exhaustion statuses.
ExhaustionReason ExhaustionReasonFromStatus(const Status& status);

}  // namespace fairrank

#endif  // FAIRRANK_COMMON_BUDGET_H_
