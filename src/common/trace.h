#ifndef FAIRRANK_COMMON_TRACE_H_
#define FAIRRANK_COMMON_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace fairrank {

/// Monotonic nanoseconds (steady clock) — the timebase of every span.
uint64_t TraceNowNanos();

/// Per-request span collector threaded through ExecutionContext alongside
/// the deadline and the resource budget. One TraceContext covers one logical
/// operation (a CLI audit, one HTTP request); spans are recorded from any
/// thread (the pairwise-distance pool included) under one internal mutex.
///
/// Cost model: a null TraceContext* is tracing compiled in with sampling off
/// — instrumented code does a single pointer check and nothing else (the
/// bench/trace_overhead harness keeps this ≤ 2% on the table2 path). A
/// constructed-but-unsampled context (`sampled = false`) additionally pays
/// the sampled() check. Only a sampled context takes the mutex.
///
/// Storage is bounded: at most `max_spans` spans are kept; later spans are
/// counted as dropped but their durations still feed the per-name totals
/// (AddEvent) so hot-path aggregates stay exact past the cap.
class TraceContext {
 public:
  /// One named span. `parent` is the id of the enclosing span (-1 = root).
  /// `end_ns` is 0 while the span is still open.
  struct Span {
    int64_t id = -1;
    int64_t parent = -1;
    const char* name = "";
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
  };

  /// Aggregate of every completed span / event of one name, including those
  /// dropped past the span cap.
  struct NamedTotal {
    std::string name;
    uint64_t count = 0;
    uint64_t total_ns = 0;
  };

  static constexpr size_t kDefaultMaxSpans = 4096;

  explicit TraceContext(bool sampled = true,
                        size_t max_spans = kDefaultMaxSpans);

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// False = the context exists but records nothing (sampling off).
  bool sampled() const { return sampled_; }

  /// Process-unique hex id, derived from a monotonic counter and the steady
  /// clock (no global RNG — see the rng-discipline lint rule).
  const std::string& trace_id() const { return trace_id_; }

  /// Opens a span; returns its id, or -1 when not recording (unsampled or
  /// span cap reached). `name` must outlive the context (string literals).
  int64_t StartSpan(const char* name, int64_t parent = -1)
      FAIRRANK_EXCLUDES(mutex_);

  /// Closes the span and folds its duration into the per-name totals.
  /// No-op for id < 0.
  void EndSpan(int64_t id) FAIRRANK_EXCLUDES(mutex_);

  /// Records an already-measured operation of `duration_ns` ending now: a
  /// completed span when below the cap, and always a totals update. This is
  /// the hot-path form (histogram / emd / cache-hit) — one mutex
  /// acquisition, no id round trip.
  void AddEvent(const char* name, int64_t parent, uint64_t duration_ns)
      FAIRRANK_EXCLUDES(mutex_);

  /// Instantaneous event (zero-duration span), e.g. a cache hit.
  void Event(const char* name, int64_t parent = -1) {
    AddEvent(name, parent, 0);
  }

  size_t span_count() const FAIRRANK_EXCLUDES(mutex_);
  uint64_t spans_dropped() const FAIRRANK_EXCLUDES(mutex_);

  /// Copies of the recorded spans / per-name totals (totals sorted by name).
  std::vector<Span> Snapshot() const FAIRRANK_EXCLUDES(mutex_);
  std::vector<NamedTotal> Totals() const FAIRRANK_EXCLUDES(mutex_);

  /// Human-readable span tree: one line per span, two-space indentation per
  /// depth, children in start order, followed by the per-name totals. Used
  /// by `fairaudit --trace` and the server's slow-request dump.
  std::string FormatTree() const FAIRRANK_EXCLUDES(mutex_);

 private:
  const bool sampled_;
  const size_t max_spans_;
  std::string trace_id_;
  /// Totals entry for `name`, created on first use. The pipeline uses under
  /// a dozen distinct span names, so a linear strcmp scan beats a map — and
  /// unlike a string-keyed map it never allocates on the per-EMD hot path.
  NamedTotal* TotalFor(const char* name) FAIRRANK_REQUIRES(mutex_);

  mutable std::mutex mutex_;
  std::vector<Span> spans_ FAIRRANK_GUARDED_BY(mutex_);
  std::vector<NamedTotal> totals_ FAIRRANK_GUARDED_BY(mutex_);
  uint64_t dropped_ FAIRRANK_GUARDED_BY(mutex_) = 0;
};

/// RAII span: opens on construction (no-op when `trace` is null), closes on
/// destruction. `id()` is the parent handle for child spans.
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* trace, const char* name, int64_t parent = -1)
      : trace_(trace),
        id_(trace != nullptr ? trace->StartSpan(name, parent) : -1) {}
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  int64_t id() const { return id_; }

 private:
  TraceContext* trace_;
  int64_t id_;
};

/// Process-unique request id ("req-<boot-hex>-<serial>"): printable, short,
/// and built from a monotonic counter plus the steady clock so it stays
/// inside the rng-discipline rule (no random_device outside common/rng).
std::string NextRequestId();

}  // namespace fairrank

#endif  // FAIRRANK_COMMON_TRACE_H_
