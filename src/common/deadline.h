#ifndef FAIRRANK_COMMON_DEADLINE_H_
#define FAIRRANK_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

namespace fairrank {

/// A monotonic-clock deadline. Value-semantic and cheap to copy; the default
/// (and `Infinite()`) deadline never expires, so unlimited callers pay a
/// single branch per check. Deadlines are anchored to std::chrono::
/// steady_clock, so wall-clock adjustments cannot fire or starve them.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now; ms <= 0 is already expired.
  static Deadline AfterMillis(int64_t ms);

  /// Expires `seconds` seconds from now.
  static Deadline AfterSeconds(double seconds);

  bool is_infinite() const { return !finite_; }

  bool Expired() const {
    return finite_ && std::chrono::steady_clock::now() >= when_;
  }

  /// The deadline that fires first. An infinite deadline never wins against
  /// a finite one; two infinite deadlines stay infinite. Used wherever a
  /// caller-supplied pre-armed deadline meets a timeout-derived one (the two
  /// must compose, not override each other).
  static Deadline Earlier(const Deadline& a, const Deadline& b) {
    if (a.is_infinite()) return b;
    if (b.is_infinite()) return a;
    return a.when_ <= b.when_ ? a : b;
  }

  /// Seconds until expiry: +infinity for an infinite deadline, <= 0 once
  /// expired.
  double RemainingSeconds() const {
    if (!finite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(when_ -
                                         std::chrono::steady_clock::now())
        .count();
  }

 private:
  explicit Deadline(std::chrono::steady_clock::time_point when)
      : finite_(true), when_(when) {}

  bool finite_ = false;
  std::chrono::steady_clock::time_point when_{};
};

/// Observer half of a cooperative cancellation pair. Default-constructed
/// tokens are "null": never cancelled, and free to check. Copies share the
/// underlying flag; checking is a relaxed atomic load, safe from any thread.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool cancel_requested() const {
    return state_ != nullptr && state_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const std::atomic<bool>> state_;
};

/// Owner half: the party that may cancel. Hand out token() to workers;
/// RequestCancellation() is sticky (there is no un-cancel) and may be called
/// from any thread, including a signal-adjacent watchdog.
class CancellationSource {
 public:
  CancellationSource() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void RequestCancellation() { state_->store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return state_->load(std::memory_order_relaxed);
  }

  CancellationToken token() const { return CancellationToken(state_); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

}  // namespace fairrank

#endif  // FAIRRANK_COMMON_DEADLINE_H_
