#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace fairrank {

namespace {

/// Serial numbers shared by trace ids and request ids. The hex "boot" part
/// makes ids from different processes unlikely to collide without touching
/// any RNG.
std::atomic<uint64_t> g_trace_serial{0};
std::atomic<uint64_t> g_request_serial{0};

uint64_t BootNanos() {
  static const uint64_t boot = TraceNowNanos();
  return boot;
}

std::string HexId(uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

/// Fibonacci-hash mix so consecutive serials produce visually distinct ids.
uint64_t Mix(uint64_t serial) {
  return (BootNanos() ^ (serial * 0x9e3779b97f4a7c15ull)) *
         0x2545f4914f6cdd1dull;
}

std::string FormatMillis(uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  return std::string(buf);
}

}  // namespace

uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceContext::TraceContext(bool sampled, size_t max_spans)
    : sampled_(sampled),
      max_spans_(max_spans),
      trace_id_(HexId(Mix(g_trace_serial.fetch_add(
          1, std::memory_order_relaxed)))) {}

int64_t TraceContext::StartSpan(const char* name, int64_t parent) {
  if (!sampled_) return -1;
  const uint64_t now = TraceNowNanos();
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return -1;
  }
  const int64_t id = static_cast<int64_t>(spans_.size());
  spans_.push_back(Span{id, parent, name, now, 0});
  return id;
}

void TraceContext::EndSpan(int64_t id) {
  if (!sampled_ || id < 0) return;
  const uint64_t now = TraceNowNanos();
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<size_t>(id) >= spans_.size()) return;
  Span& span = spans_[static_cast<size_t>(id)];
  if (span.end_ns != 0) return;  // Already closed.
  span.end_ns = now;
  NamedTotal* total = TotalFor(span.name);
  ++total->count;
  total->total_ns += now - span.start_ns;
}

void TraceContext::AddEvent(const char* name, int64_t parent,
                            uint64_t duration_ns) {
  if (!sampled_) return;
  const uint64_t now = TraceNowNanos();
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() < max_spans_) {
    const int64_t id = static_cast<int64_t>(spans_.size());
    spans_.push_back(
        Span{id, parent, name, now - std::min(duration_ns, now), now});
  } else {
    ++dropped_;
  }
  NamedTotal* total = TotalFor(name);
  ++total->count;
  total->total_ns += duration_ns;
}

TraceContext::NamedTotal* TraceContext::TotalFor(const char* name) {
  for (NamedTotal& total : totals_) {
    if (std::strcmp(total.name.c_str(), name) == 0) return &total;
  }
  totals_.push_back(NamedTotal{name, 0, 0});
  return &totals_.back();
}

size_t TraceContext::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

uint64_t TraceContext::spans_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<TraceContext::Span> TraceContext::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<TraceContext::NamedTotal> TraceContext::Totals() const {
  std::vector<NamedTotal> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = totals_;
  }
  std::sort(out.begin(), out.end(),
            [](const NamedTotal& a, const NamedTotal& b) {
              return a.name < b.name;
            });
  return out;
}

std::string TraceContext::FormatTree() const {
  std::vector<Span> spans;
  std::vector<NamedTotal> totals;
  uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    spans = spans_;
    totals = totals_;
    dropped = dropped_;
  }
  std::sort(totals.begin(), totals.end(),
            [](const NamedTotal& a, const NamedTotal& b) {
              return a.name < b.name;
            });

  std::string out = "trace " + trace_id_ + ": " +
                    std::to_string(spans.size()) + " spans";
  if (dropped > 0) out += " (" + std::to_string(dropped) + " dropped)";
  out += "\n";

  // Children of each span, in start (= id) order: span ids are assigned
  // sequentially, so iterating ids ascending within a parent bucket already
  // yields start order.
  std::vector<std::vector<size_t>> children(spans.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    const int64_t parent = spans[i].parent;
    if (parent >= 0 && static_cast<size_t>(parent) < spans.size() &&
        static_cast<size_t>(parent) != i) {
      children[static_cast<size_t>(parent)].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  // Iterative DFS; stack entries are (span index, depth).
  std::vector<std::pair<size_t, int>> stack;
  for (size_t r = roots.size(); r > 0; --r) stack.push_back({roots[r - 1], 0});
  while (!stack.empty()) {
    auto [index, depth] = stack.back();
    stack.pop_back();
    const Span& span = spans[index];
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += "- ";
    out += span.name;
    if (span.end_ns != 0) {
      out += " " + FormatMillis(span.end_ns - span.start_ns);
    } else {
      out += " (open)";
    }
    out += "\n";
    const std::vector<size_t>& kids = children[index];
    for (size_t k = kids.size(); k > 0; --k) {
      stack.push_back({kids[k - 1], depth + 1});
    }
  }
  if (!totals.empty()) {
    out += "totals:\n";
    for (const NamedTotal& total : totals) {
      out += "  " + total.name + " n=" + std::to_string(total.count) +
             " total=" + FormatMillis(total.total_ns) + "\n";
    }
  }
  return out;
}

std::string NextRequestId() {
  static const std::string prefix =
      "req-" + HexId(Mix(0)).substr(0, 12) + "-";
  return prefix + std::to_string(g_request_serial.fetch_add(
                      1, std::memory_order_relaxed));
}

}  // namespace fairrank
