#ifndef FAIRRANK_COMMON_FAULT_INJECTION_H_
#define FAIRRANK_COMMON_FAULT_INJECTION_H_

#include <cstdint>

#include "common/deadline.h"

namespace fairrank {
namespace fault {

/// Deterministic process-global fault injection for robustness tests and
/// chaos runs. Disarmed by default; the hooks cost one relaxed atomic load
/// on the hot path when off. Arm programmatically (tests) or via
/// environment variables read once at first hook call (CLI chaos runs):
///
///   FAIRRANK_FAULT_ALLOC_N=<n>         fail the nth allocation checkpoint
///   FAIRRANK_FAULT_PARALLEL_CHUNK=<k>  throw in parallel chunk k (0-based)
///   FAIRRANK_FAULT_STALL_CHUNK=<k>     stall parallel chunk k ...
///   FAIRRANK_FAULT_STALL_MS=<ms>       ... for this long (default 50)
///   FAIRRANK_FAULT_DIVERGENCE_N=<n>    fail the nth divergence evaluation
///
/// The hooks are wired into ExecutionContext::CheckMemory (allocation
/// checkpoints) and ParallelFor / ParallelForCancellable (chunk faults), so
/// armed faults exercise exactly the degradation paths production failures
/// would: budget trips, captured worker exceptions, and deadline overruns.
struct FaultPlan {
  /// Fail the nth (1-based) allocation checkpoint; 0 disables.
  int64_t fail_alloc_checkpoint = 0;
  /// Throw std::runtime_error at the start of parallel chunk k (0-based,
  /// chunk 0 runs on the calling thread); -1 disables.
  int64_t throw_in_chunk = -1;
  /// Fail the nth (1-based) divergence evaluation in the unfairness
  /// evaluator's hot path; 0 disables. Exercises the error path of the
  /// pairwise loops (including sibling-chunk early abort).
  int64_t fail_divergence_eval = 0;
  /// Stall parallel chunk k before its body runs; -1 disables.
  int64_t stall_chunk = -1;
  /// Stall duration. The stall sleeps in 1 ms slices and aborts early once
  /// cancellation is requested, so a stalled worker cannot outlive a
  /// cancelled audit by more than a slice.
  int64_t stall_ms = 50;
};

/// Arms `plan` and resets the checkpoint counters. Overwrites any plan
/// loaded from the environment.
void Arm(const FaultPlan& plan);

/// Disarms all faults (counters keep counting; they are cheap and useful
/// for observability).
void Disarm();

/// True when any fault is armed (programmatically or via environment).
bool armed();

/// Total allocation checkpoints hit since the last Arm().
uint64_t alloc_checkpoints_hit();

/// Total divergence evaluations (actual computations, not cache hits) hit
/// since the last Arm(). Counted while armed, even when no divergence fault
/// is configured — tests use it to measure evaluator work.
uint64_t divergence_evals_hit();

/// Hook: called by ExecutionContext::CheckMemory at every allocation
/// checkpoint. Returns true when this checkpoint must fail.
bool OnAllocCheckpoint();

/// Hook: called by UnfairnessEvaluator before every actual divergence
/// computation. Returns true when this evaluation must fail.
bool OnDivergenceEval();

/// Hook: called by the parallel runtime at the start of every chunk. May
/// throw (throw_in_chunk) or sleep cancellation-aware (stall_chunk).
void OnParallelChunk(size_t chunk_index, const CancellationToken& cancel);

/// RAII guard for tests: arms on construction, disarms on destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan) { Arm(plan); }
  ~ScopedFaultPlan() { Disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace fault
}  // namespace fairrank

#endif  // FAIRRANK_COMMON_FAULT_INJECTION_H_
