#include "common/deadline.h"

namespace fairrank {

Deadline Deadline::AfterMillis(int64_t ms) {
  return Deadline(std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(ms));
}

Deadline Deadline::AfterSeconds(double seconds) {
  return Deadline(
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds)));
}

}  // namespace fairrank
