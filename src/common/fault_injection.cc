#include "common/fault_injection.h"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/thread_annotations.h"

namespace fairrank {
namespace fault {

namespace {

std::atomic<bool> g_armed{false};
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_divergence_count{0};
std::mutex g_plan_mutex;
FaultPlan g_plan FAIRRANK_GUARDED_BY(g_plan_mutex);
std::once_flag g_env_once;

bool EnvInt(const char* name, int64_t* out) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return false;
  *out = std::strtoll(value, nullptr, 10);
  return true;
}

void LoadEnvOnce() {
  std::call_once(g_env_once, [] {
    FaultPlan plan;
    bool any = false;
    any |= EnvInt("FAIRRANK_FAULT_ALLOC_N", &plan.fail_alloc_checkpoint);
    any |= EnvInt("FAIRRANK_FAULT_DIVERGENCE_N", &plan.fail_divergence_eval);
    any |= EnvInt("FAIRRANK_FAULT_PARALLEL_CHUNK", &plan.throw_in_chunk);
    any |= EnvInt("FAIRRANK_FAULT_STALL_CHUNK", &plan.stall_chunk);
    EnvInt("FAIRRANK_FAULT_STALL_MS", &plan.stall_ms);
    if (any) Arm(plan);
  });
}

FaultPlan CurrentPlan() {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  return g_plan;
}

}  // namespace

void Arm(const FaultPlan& plan) {
  {
    std::lock_guard<std::mutex> lock(g_plan_mutex);
    g_plan = plan;
  }
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_divergence_count.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);
}

void Disarm() { g_armed.store(false, std::memory_order_relaxed); }

bool armed() {
  LoadEnvOnce();
  return g_armed.load(std::memory_order_relaxed);
}

uint64_t alloc_checkpoints_hit() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

bool OnAllocCheckpoint() {
  if (!armed()) return false;
  uint64_t n = g_alloc_count.fetch_add(1, std::memory_order_relaxed) + 1;
  FaultPlan plan = CurrentPlan();
  return plan.fail_alloc_checkpoint > 0 &&
         n == static_cast<uint64_t>(plan.fail_alloc_checkpoint);
}

uint64_t divergence_evals_hit() {
  return g_divergence_count.load(std::memory_order_relaxed);
}

bool OnDivergenceEval() {
  if (!armed()) return false;
  uint64_t n = g_divergence_count.fetch_add(1, std::memory_order_relaxed) + 1;
  FaultPlan plan = CurrentPlan();
  return plan.fail_divergence_eval > 0 &&
         n == static_cast<uint64_t>(plan.fail_divergence_eval);
}

void OnParallelChunk(size_t chunk_index, const CancellationToken& cancel) {
  if (!armed()) return;
  FaultPlan plan = CurrentPlan();
  if (plan.stall_chunk >= 0 &&
      chunk_index == static_cast<size_t>(plan.stall_chunk)) {
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(plan.stall_ms);
    while (std::chrono::steady_clock::now() < until &&
           !cancel.cancel_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  if (plan.throw_in_chunk >= 0 &&
      chunk_index == static_cast<size_t>(plan.throw_in_chunk)) {
    throw std::runtime_error("fault injection: worker exception in chunk " +
                             std::to_string(chunk_index));
  }
}

}  // namespace fault
}  // namespace fairrank
