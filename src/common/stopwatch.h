#ifndef FAIRRANK_COMMON_STOPWATCH_H_
#define FAIRRANK_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace fairrank {

/// Simple wall-clock stopwatch used by benchmark harnesses to report the
/// runtime columns of the paper's tables.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart();

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const;

  /// Microseconds elapsed since construction or the last Restart().
  int64_t ElapsedMicros() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fairrank

#endif  // FAIRRANK_COMMON_STOPWATCH_H_
