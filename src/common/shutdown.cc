#include "common/shutdown.h"

#include <atomic>
#include <csignal>

namespace fairrank {
namespace {

// Lock-free atomic stores are async-signal-safe; this is the only state the
// handler touches. 0 = no shutdown requested.
std::atomic<int> g_shutdown_signal{0};

extern "C" void FairrankShutdownHandler(int signum) {
  g_shutdown_signal.store(signum, std::memory_order_relaxed);
}

}  // namespace

void InstallShutdownHandlers() {
  struct sigaction action {};
  action.sa_handler = FairrankShutdownHandler;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a blocking accept/poll should return EINTR so the serve
  // loop notices the latch at the next iteration instead of one poll later.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool ShutdownRequested() {
  return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

int ShutdownSignal() {
  return g_shutdown_signal.load(std::memory_order_relaxed);
}

void RequestShutdownForTest() {
  g_shutdown_signal.store(-1, std::memory_order_relaxed);
}

void ResetShutdownState() {
  g_shutdown_signal.store(0, std::memory_order_relaxed);
}

}  // namespace fairrank
