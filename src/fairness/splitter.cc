#include "fairness/splitter.h"

namespace fairrank {

std::vector<Partition> SplitPartition(const Table& table,
                                      const Partition& partition,
                                      size_t attr_index) {
  const int num_groups = table.schema().attribute(attr_index).num_groups();
  std::vector<Partition> children(static_cast<size_t>(num_groups));
  for (size_t row : partition.rows) {
    int g = table.GroupIndex(row, attr_index);
    children[static_cast<size_t>(g)].rows.push_back(row);
  }
  std::vector<Partition> result;
  result.reserve(children.size());
  for (int g = 0; g < num_groups; ++g) {
    Partition& child = children[static_cast<size_t>(g)];
    if (child.rows.empty()) continue;
    child.path = partition.path;
    child.path.push_back({attr_index, g});
    // Fingerprint the row set (not the path): the same cell reached through
    // a different split order hits the same evaluator cache entries.
    child.fingerprint = RowSetFingerprint(child.rows);
    result.push_back(std::move(child));
  }
  return result;
}

Partitioning SplitAll(const Table& table, const Partitioning& partitioning,
                      size_t attr_index) {
  Partitioning result;
  for (const Partition& p : partitioning) {
    std::vector<Partition> children = SplitPartition(table, p, attr_index);
    for (Partition& c : children) result.push_back(std::move(c));
  }
  return result;
}

}  // namespace fairrank
