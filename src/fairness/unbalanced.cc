#include "fairness/unbalanced.h"

#include "fairness/splitter.h"

namespace fairrank {

namespace {

class UnbalancedAlgorithm : public PartitioningAlgorithm {
 public:
  UnbalancedAlgorithm(std::string name,
                      std::unique_ptr<AttributeSelector> selector)
      : name_(std::move(name)), selector_(std::move(selector)) {}

  std::string Name() const override { return name_; }

  StatusOr<Partitioning> Run(const UnfairnessEvaluator& eval,
                             std::vector<size_t> attrs) override {
    Partition root = MakeRootPartition(eval.table().num_rows());
    if (attrs.empty()) return Partitioning{root};

    // Initial split on the selector's attribute, "as in the case of
    // balanced"; Algorithm 2 is then invoked once per resulting partition.
    Partitioning current{root};
    FAIRRANK_ASSIGN_OR_RETURN(size_t pos,
                              selector_->SelectGlobal(eval, current, attrs));
    size_t attr = attrs[pos];
    attrs.erase(attrs.begin() + static_cast<ptrdiff_t>(pos));
    std::vector<Partition> children = SplitPartition(eval.table(), root, attr);

    Partitioning output;
    for (size_t i = 0; i < children.size(); ++i) {
      std::vector<Partition> siblings = SiblingsOf(children, i);
      FAIRRANK_RETURN_NOT_OK(
          Recurse(eval, children[i], siblings, attrs, &output));
    }
    return output;
  }

 private:
  static std::vector<Partition> SiblingsOf(const std::vector<Partition>& all,
                                           size_t skip) {
    std::vector<Partition> siblings;
    siblings.reserve(all.size() - 1);
    for (size_t i = 0; i < all.size(); ++i) {
      if (i != skip) siblings.push_back(all[i]);
    }
    return siblings;
  }

  /// Algorithm 2. `attrs` is passed by value: each branch of the recursion
  /// consumes its own copy, so sibling subtrees may split on different
  /// attributes (the "unbalanced" tree).
  Status Recurse(const UnfairnessEvaluator& eval, const Partition& current,
                 const std::vector<Partition>& siblings,
                 std::vector<size_t> attrs, Partitioning* output) {
    if (attrs.empty()) {  // Line 1-2.
      output->push_back(current);
      return Status::OK();
    }
    FAIRRANK_ASSIGN_OR_RETURN(double current_avg,
                              eval.AverageWithSiblings(current, siblings));
    FAIRRANK_ASSIGN_OR_RETURN(
        size_t pos, selector_->SelectLocal(eval, current, siblings, attrs));
    size_t attr = attrs[pos];
    attrs.erase(attrs.begin() + static_cast<ptrdiff_t>(pos));
    std::vector<Partition> children =
        SplitPartition(eval.table(), current, attr);
    FAIRRANK_ASSIGN_OR_RETURN(
        double children_avg,
        eval.AverageChildrenWithSiblings(children, siblings));
    if (current_avg >= children_avg) {  // Line 9-10.
      output->push_back(current);
      return Status::OK();
    }
    for (size_t i = 0; i < children.size(); ++i) {  // Lines 12-14.
      FAIRRANK_RETURN_NOT_OK(Recurse(eval, children[i],
                                     SiblingsOf(children, i), attrs, output));
    }
    return Status::OK();
  }

  std::string name_;
  std::unique_ptr<AttributeSelector> selector_;
};

}  // namespace

std::unique_ptr<PartitioningAlgorithm> MakeUnbalancedAlgorithm(
    std::string name, std::unique_ptr<AttributeSelector> selector) {
  return std::make_unique<UnbalancedAlgorithm>(std::move(name),
                                               std::move(selector));
}

}  // namespace fairrank
