#include "fairness/unbalanced.h"

#include "common/trace.h"
#include "fairness/splitter.h"

namespace fairrank {

namespace {

class UnbalancedAlgorithm : public PartitioningAlgorithm {
 public:
  UnbalancedAlgorithm(std::string name,
                      std::unique_ptr<AttributeSelector> selector)
      : name_(std::move(name)), selector_(std::move(selector)) {}

  std::string Name() const override { return name_; }

  using PartitioningAlgorithm::Run;

  StatusOr<SearchResult> Run(const UnfairnessEvaluator& eval,
                             std::vector<size_t> attrs,
                             const ExecutionContext& context) override {
    SearchResult result;
    Partition root = MakeRootPartition(eval.table().num_rows());
    result.partitioning = {root};
    if (attrs.empty()) return result;

    // Initial split on the selector's attribute, "as in the case of
    // balanced"; Algorithm 2 is then invoked once per resulting partition.
    ExhaustionReason why = context.CheckNodes(attrs.size());
    if (why != ExhaustionReason::kNone) {
      return TruncatedResult(std::move(result), why);
    }
    result.nodes_visited += attrs.size();
    int64_t expand_span = -1;
    if (context.trace() != nullptr) {
      expand_span =
          context.trace()->StartSpan("expand", context.trace_parent());
    }
    StatusOr<size_t> pos =
        selector_->SelectGlobal(eval, result.partitioning, attrs);
    if (context.trace() != nullptr) context.trace()->EndSpan(expand_span);
    if (!pos.ok()) return DegradeOnExhaustion(std::move(result), pos.status());
    size_t attr = attrs[*pos];
    attrs.erase(attrs.begin() + static_cast<ptrdiff_t>(*pos));
    std::vector<Partition> children = SplitPartition(eval.table(), root, attr);

    RunState state{&context, &result};
    Partitioning output;
    for (size_t i = 0; i < children.size(); ++i) {
      std::vector<Partition> siblings = SiblingsOf(children, i);
      FAIRRANK_RETURN_NOT_OK(
          Recurse(eval, children[i], siblings, attrs, &state, &output));
    }
    result.partitioning = std::move(output);
    return result;
  }

 private:
  /// Truncation state shared across the recursion. Once `tripped`, every
  /// pending branch immediately closes its partition as a leaf — the output
  /// is then still a valid full partitioning, just shallower than the
  /// untruncated run would have produced.
  struct RunState {
    const ExecutionContext* context;
    SearchResult* result;

    bool tripped() const { return result->truncated; }
    void Trip(ExhaustionReason reason) {
      *result = TruncatedResult(std::move(*result), reason);
    }
  };

  static std::vector<Partition> SiblingsOf(const std::vector<Partition>& all,
                                           size_t skip) {
    std::vector<Partition> siblings;
    siblings.reserve(all.size() - 1);
    for (size_t i = 0; i < all.size(); ++i) {
      if (i != skip) siblings.push_back(all[i]);
    }
    return siblings;
  }

  /// Degradation path for a failed evaluator / selector call inside the
  /// recursion: exhaustion trips the run state and closes `current` as a
  /// leaf; real errors propagate.
  static Status CloseOrFail(const Status& status, const Partition& current,
                            RunState* state, Partitioning* output) {
    if (!IsExhaustion(status)) return status;
    state->Trip(ExhaustionReasonFromStatus(status));
    output->push_back(current);
    return Status::OK();
  }

  /// Algorithm 2. `attrs` is passed by value: each branch of the recursion
  /// consumes its own copy, so sibling subtrees may split on different
  /// attributes (the "unbalanced" tree).
  Status Recurse(const UnfairnessEvaluator& eval, const Partition& current,
                 const std::vector<Partition>& siblings,
                 std::vector<size_t> attrs, RunState* state,
                 Partitioning* output) {
    if (attrs.empty() || state->tripped()) {  // Line 1-2 (or degrading).
      output->push_back(current);
      return Status::OK();
    }
    ExhaustionReason why = state->context->CheckNodes(attrs.size());
    if (why != ExhaustionReason::kNone) {
      state->Trip(why);
      output->push_back(current);
      return Status::OK();
    }
    state->result->nodes_visited += attrs.size();
    TraceContext* trace = state->context->trace();
    const int64_t trace_parent = state->context->trace_parent();
    int64_t eval_span =
        trace != nullptr ? trace->StartSpan("evaluate", trace_parent) : -1;
    StatusOr<double> current_avg = eval.AverageWithSiblings(current, siblings);
    if (trace != nullptr) trace->EndSpan(eval_span);
    if (!current_avg.ok()) {
      return CloseOrFail(current_avg.status(), current, state, output);
    }
    int64_t expand_span =
        trace != nullptr ? trace->StartSpan("expand", trace_parent) : -1;
    StatusOr<size_t> pos =
        selector_->SelectLocal(eval, current, siblings, attrs);
    if (trace != nullptr) trace->EndSpan(expand_span);
    if (!pos.ok()) return CloseOrFail(pos.status(), current, state, output);
    size_t attr = attrs[*pos];
    attrs.erase(attrs.begin() + static_cast<ptrdiff_t>(*pos));
    std::vector<Partition> children =
        SplitPartition(eval.table(), current, attr);
    int64_t children_span =
        trace != nullptr ? trace->StartSpan("evaluate", trace_parent) : -1;
    StatusOr<double> children_avg =
        eval.AverageChildrenWithSiblings(children, siblings);
    if (trace != nullptr) trace->EndSpan(children_span);
    if (!children_avg.ok()) {
      return CloseOrFail(children_avg.status(), current, state, output);
    }
    if (*current_avg >= *children_avg) {  // Line 9-10.
      output->push_back(current);
      return Status::OK();
    }
    for (size_t i = 0; i < children.size(); ++i) {  // Lines 12-14.
      FAIRRANK_RETURN_NOT_OK(Recurse(eval, children[i], SiblingsOf(children, i),
                                     attrs, state, output));
    }
    return Status::OK();
  }

  std::string name_;
  std::unique_ptr<AttributeSelector> selector_;
};

}  // namespace

std::unique_ptr<PartitioningAlgorithm> MakeUnbalancedAlgorithm(
    std::string name, std::unique_ptr<AttributeSelector> selector) {
  return std::make_unique<UnbalancedAlgorithm>(std::move(name),
                                               std::move(selector));
}

}  // namespace fairrank
