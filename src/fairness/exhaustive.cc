#include "fairness/exhaustive.h"

#include "common/stopwatch.h"
#include "fairness/splitter.h"

namespace fairrank {

namespace {

/// One unresolved node of the partitioning tree being enumerated: a
/// partition plus the attributes still allowed on its subtree.
struct PendingNode {
  Partition partition;
  std::vector<size_t> attrs;
};

class ExhaustiveAlgorithm : public PartitioningAlgorithm {
 public:
  explicit ExhaustiveAlgorithm(const ExhaustiveOptions& options)
      : options_(options) {}

  std::string Name() const override { return "exhaustive"; }

  StatusOr<Partitioning> Run(const UnfairnessEvaluator& eval,
                             std::vector<size_t> attrs) override {
    evaluated_ = 0;
    best_avg_ = -1.0;
    best_.clear();
    stopwatch_.Restart();
    std::vector<PendingNode> pending;
    pending.push_back(
        {MakeRootPartition(eval.table().num_rows()), std::move(attrs)});
    Partitioning leaves;
    FAIRRANK_RETURN_NOT_OK(Recurse(eval, &pending, &leaves));
    return best_;
  }

  /// Number of complete partitionings evaluated by the last Run.
  uint64_t evaluated() const { return evaluated_; }

 private:
  Status Recurse(const UnfairnessEvaluator& eval,
                 std::vector<PendingNode>* pending, Partitioning* leaves) {
    if (pending->empty()) {
      // A complete partitioning: score it against the incumbent.
      ++evaluated_;
      if (evaluated_ > options_.max_partitionings) {
        return Status::ResourceExhausted(
            "exhaustive search exceeded max_partitionings = " +
            std::to_string(options_.max_partitionings));
      }
      if (options_.max_seconds > 0.0 &&
          stopwatch_.ElapsedSeconds() > options_.max_seconds) {
        return Status::ResourceExhausted(
            "exhaustive search exceeded time budget");
      }
      FAIRRANK_ASSIGN_OR_RETURN(double avg,
                                eval.AveragePairwiseUnfairness(*leaves));
      if (avg > best_avg_) {
        best_avg_ = avg;
        best_ = *leaves;
      }
      return Status::OK();
    }

    PendingNode node = std::move(pending->back());
    pending->pop_back();

    // Option 1: close this node as a leaf.
    leaves->push_back(node.partition);
    FAIRRANK_RETURN_NOT_OK(Recurse(eval, pending, leaves));
    leaves->pop_back();

    // Option 2: split on each remaining attribute with >= 2 represented
    // values (single-child splits would re-enumerate the same partitioning).
    for (size_t pos = 0; pos < node.attrs.size(); ++pos) {
      std::vector<Partition> children =
          SplitPartition(eval.table(), node.partition, node.attrs[pos]);
      if (children.size() < 2) continue;
      std::vector<size_t> remaining = node.attrs;
      remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pos));
      size_t old_size = pending->size();
      for (Partition& child : children) {
        pending->push_back({std::move(child), remaining});
      }
      FAIRRANK_RETURN_NOT_OK(Recurse(eval, pending, leaves));
      pending->resize(old_size);
    }

    pending->push_back(std::move(node));
    return Status::OK();
  }

  ExhaustiveOptions options_;
  uint64_t evaluated_ = 0;
  double best_avg_ = -1.0;
  Partitioning best_;
  Stopwatch stopwatch_;
};

uint64_t CountRecurse(const Table& table, std::vector<PendingNode>* pending,
                      uint64_t cap, uint64_t count_so_far) {
  if (count_so_far >= cap) return cap;
  if (pending->empty()) return count_so_far + 1;

  PendingNode node = std::move(pending->back());
  pending->pop_back();

  uint64_t count = CountRecurse(table, pending, cap, count_so_far);

  for (size_t pos = 0; pos < node.attrs.size() && count < cap; ++pos) {
    std::vector<Partition> children =
        SplitPartition(table, node.partition, node.attrs[pos]);
    if (children.size() < 2) continue;
    std::vector<size_t> remaining = node.attrs;
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pos));
    size_t old_size = pending->size();
    for (Partition& child : children) {
      pending->push_back({std::move(child), remaining});
    }
    count = CountRecurse(table, pending, cap, count);
    pending->resize(old_size);
  }

  pending->push_back(std::move(node));
  return count;
}

}  // namespace

std::unique_ptr<PartitioningAlgorithm> MakeExhaustiveAlgorithm(
    const ExhaustiveOptions& options) {
  return std::make_unique<ExhaustiveAlgorithm>(options);
}

uint64_t CountHierarchicalPartitionings(const UnfairnessEvaluator& eval,
                                        std::vector<size_t> attrs,
                                        uint64_t cap) {
  std::vector<PendingNode> pending;
  pending.push_back(
      {MakeRootPartition(eval.table().num_rows()), std::move(attrs)});
  return CountRecurse(eval.table(), &pending, cap, 0);
}

}  // namespace fairrank
