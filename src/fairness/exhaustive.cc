#include "fairness/exhaustive.h"

#include "common/stopwatch.h"
#include "common/trace.h"
#include "fairness/beam.h"
#include "fairness/splitter.h"

namespace fairrank {

namespace {

/// One unresolved node of the partitioning tree being enumerated: a
/// partition plus the attributes still allowed on its subtree.
struct PendingNode {
  Partition partition;
  std::vector<size_t> attrs;
};

class ExhaustiveAlgorithm : public PartitioningAlgorithm {
 public:
  explicit ExhaustiveAlgorithm(const ExhaustiveOptions& options)
      : options_(options) {}

  std::string Name() const override { return "exhaustive"; }

  using PartitioningAlgorithm::Run;

  StatusOr<SearchResult> Run(const UnfairnessEvaluator& eval,
                             std::vector<size_t> attrs,
                             const ExecutionContext& context) override {
    evaluated_ = 0;
    best_avg_ = -1.0;
    best_.clear();
    trip_ = ExhaustionReason::kNone;
    context_ = &context;
    stopwatch_.Restart();

    Partition root = MakeRootPartition(eval.table().num_rows());
    std::vector<size_t> attrs_copy = attrs;  // For the beam fallback.
    std::vector<PendingNode> pending;
    pending.push_back({root, std::move(attrs)});
    Partitioning leaves;
    FAIRRANK_RETURN_NOT_OK(Recurse(eval, &pending, &leaves));

    SearchResult result;
    result.nodes_visited = evaluated_;
    // The root partitioning is the first one enumerated, so best_ is only
    // empty when the budget tripped before a single evaluation.
    if (best_.empty()) best_ = Partitioning{root};
    if (trip_ == ExhaustionReason::kNone) {
      result.partitioning = std::move(best_);
      return result;
    }
    result.truncated = true;
    result.reason = trip_;
    if (options_.fallback_to_beam && trip_ == ExhaustionReason::kNodeBudget) {
      FallbackToBeam(eval, std::move(attrs_copy), context, &result);
    }
    if (result.partitioning.empty()) result.partitioning = std::move(best_);
    return result;
  }

 private:
  /// Reruns the search as a width-bounded beam under the same deadline and
  /// cancellation but without the exhausted node budget, keeping whichever
  /// of {enumeration best-so-far, beam result} scores higher. Fallback
  /// failures are swallowed: the enumeration's best-so-far already stands.
  void FallbackToBeam(const UnfairnessEvaluator& eval,
                      std::vector<size_t> attrs,
                      const ExecutionContext& context, SearchResult* result) {
    std::unique_ptr<PartitioningAlgorithm> beam =
        MakeBeamAlgorithm(options_.fallback_beam_width);
    StatusOr<SearchResult> beam_result =
        beam->Run(eval, std::move(attrs), context.WithoutBudget());
    if (!beam_result.ok()) return;
    result->nodes_visited += beam_result->nodes_visited;
    StatusOr<double> beam_avg =
        eval.AveragePairwiseUnfairness(beam_result->partitioning);
    if (!beam_avg.ok()) return;
    if (*beam_avg > best_avg_) {
      result->partitioning = std::move(beam_result->partitioning);
    }
  }

  Status Recurse(const UnfairnessEvaluator& eval,
                 std::vector<PendingNode>* pending, Partitioning* leaves) {
    if (trip_ != ExhaustionReason::kNone) return Status::OK();  // Unwinding.
    if (pending->empty()) {
      // A complete partitioning: score it against the incumbent.
      ++evaluated_;
      ExhaustionReason why = context_->CheckNodes(1);
      if (why == ExhaustionReason::kNone &&
          evaluated_ > options_.max_partitionings) {
        why = ExhaustionReason::kNodeBudget;
      }
      if (why == ExhaustionReason::kNone && options_.max_seconds > 0.0 &&
          stopwatch_.ElapsedSeconds() > options_.max_seconds) {
        why = ExhaustionReason::kDeadline;
      }
      if (why != ExhaustionReason::kNone) {
        trip_ = why;
        return Status::OK();
      }
      ScopedSpan evaluate_span(context_->trace(), "evaluate",
                               context_->trace_parent());
      StatusOr<double> avg = eval.AveragePairwiseUnfairness(*leaves);
      if (!avg.ok()) {
        if (!IsExhaustion(avg.status())) return avg.status();
        trip_ = ExhaustionReasonFromStatus(avg.status());
        return Status::OK();
      }
      if (*avg > best_avg_) {
        best_avg_ = *avg;
        best_ = *leaves;
      }
      return Status::OK();
    }

    PendingNode node = std::move(pending->back());
    pending->pop_back();

    // Option 1: close this node as a leaf.
    leaves->push_back(node.partition);
    FAIRRANK_RETURN_NOT_OK(Recurse(eval, pending, leaves));
    leaves->pop_back();

    // Option 2: split on each remaining attribute with >= 2 represented
    // values (single-child splits would re-enumerate the same partitioning).
    for (size_t pos = 0;
         pos < node.attrs.size() && trip_ == ExhaustionReason::kNone; ++pos) {
      std::vector<Partition> children;
      {
        ScopedSpan expand_span(context_->trace(), "expand",
                               context_->trace_parent());
        children = SplitPartition(eval.table(), node.partition,
                                  node.attrs[pos]);
      }
      if (children.size() < 2) continue;
      std::vector<size_t> remaining = node.attrs;
      remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pos));
      size_t old_size = pending->size();
      for (Partition& child : children) {
        pending->push_back({std::move(child), remaining});
      }
      FAIRRANK_RETURN_NOT_OK(Recurse(eval, pending, leaves));
      pending->resize(old_size);
    }

    pending->push_back(std::move(node));
    return Status::OK();
  }

  ExhaustiveOptions options_;
  const ExecutionContext* context_ = nullptr;
  ExhaustionReason trip_ = ExhaustionReason::kNone;
  uint64_t evaluated_ = 0;
  double best_avg_ = -1.0;
  Partitioning best_;
  Stopwatch stopwatch_;
};

uint64_t CountRecurse(const Table& table, std::vector<PendingNode>* pending,
                      uint64_t cap, uint64_t count_so_far) {
  if (count_so_far >= cap) return cap;
  if (pending->empty()) return count_so_far + 1;

  PendingNode node = std::move(pending->back());
  pending->pop_back();

  uint64_t count = CountRecurse(table, pending, cap, count_so_far);

  for (size_t pos = 0; pos < node.attrs.size() && count < cap; ++pos) {
    std::vector<Partition> children =
        SplitPartition(table, node.partition, node.attrs[pos]);
    if (children.size() < 2) continue;
    std::vector<size_t> remaining = node.attrs;
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pos));
    size_t old_size = pending->size();
    for (Partition& child : children) {
      pending->push_back({std::move(child), remaining});
    }
    count = CountRecurse(table, pending, cap, count);
    pending->resize(old_size);
  }

  pending->push_back(std::move(node));
  return count;
}

}  // namespace

std::unique_ptr<PartitioningAlgorithm> MakeExhaustiveAlgorithm(
    const ExhaustiveOptions& options) {
  return std::make_unique<ExhaustiveAlgorithm>(options);
}

uint64_t CountHierarchicalPartitionings(const UnfairnessEvaluator& eval,
                                        std::vector<size_t> attrs,
                                        uint64_t cap) {
  std::vector<PendingNode> pending;
  pending.push_back(
      {MakeRootPartition(eval.table().num_rows()), std::move(attrs)});
  return CountRecurse(eval.table(), &pending, cap, 0);
}

}  // namespace fairrank
