#ifndef FAIRRANK_FAIRNESS_AGGREGATE_H_
#define FAIRRANK_FAIRNESS_AGGREGATE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/attribute.h"
#include "data/table.h"
#include "stats/divergence.h"
#include "stats/histogram.h"

namespace fairrank {

/// Audit from aggregates: per-demographic-cell score histograms are a
/// *sufficient statistic* for every partitioning the search space contains
/// — any partition is a union of cells and its histogram is the bin-wise
/// sum — so the full balanced search can run without retaining a single
/// individual record. Use cases: privacy-constrained audits (only
/// aggregate counts leave the platform) and continuous audits over streams.
///
/// CellStore accumulates the cells; AuditAggregate runs the paper's
/// balanced algorithm directly on them and provably matches the table-based
/// audit with the same bin configuration (tested in aggregate_test).
class CellStore {
 public:
  /// `protected_specs` fixes the cell key order; scores land in equal-width
  /// bins over [score_lo, score_hi] as in the evaluator.
  CellStore(std::vector<AttributeSpec> protected_specs, int num_bins,
            double score_lo, double score_hi);

  /// Adds one observation for the worker whose protected attribute groups
  /// are `groups` (one group index per spec, in spec order). Fails on a
  /// wrong arity or an out-of-range group.
  Status Add(const std::vector<int>& groups, double score);

  /// Convenience: adds row `row` of `table` (whose schema must contain
  /// every spec attribute by name) with the given score.
  Status AddRow(const Table& table, size_t row, double score);

  size_t num_cells() const { return cells_.size(); }
  size_t num_observations() const { return observations_; }
  const std::vector<AttributeSpec>& specs() const { return specs_; }
  int num_bins() const { return num_bins_; }
  double score_lo() const { return score_lo_; }
  double score_hi() const { return score_hi_; }

  /// Read-only view of the cells (key = group vector).
  const std::map<std::vector<int>, Histogram>& cells() const { return cells_; }

 private:
  std::vector<AttributeSpec> specs_;
  int num_bins_;
  double score_lo_;
  double score_hi_;
  std::map<std::vector<int>, Histogram> cells_;
  size_t observations_ = 0;
};

/// One partition of an aggregate audit: which attribute/group constraints
/// define it, its histogram, and how many workers it covers.
struct AggregatePartition {
  /// Pairs (spec index, group index), in split order.
  std::vector<std::pair<size_t, int>> constraints;
  Histogram histogram;
  size_t size = 0;

  AggregatePartition() : histogram(1, 0.0, 1.0) {}
};

/// Result of an aggregate audit.
struct AggregateAuditResult {
  std::vector<AggregatePartition> partitions;
  double unfairness = 0.0;
  /// Spec indices split on, in order.
  std::vector<size_t> attributes_used;
};

/// Human-readable label of an aggregate partition ("Gender=Male &
/// Country=India", "<all>").
std::string AggregatePartitionLabel(const std::vector<AttributeSpec>& specs,
                                    const AggregatePartition& partition);

/// Runs the paper's balanced algorithm (worst-attribute greedy with the
/// global stopping condition) directly on the store's cells, using
/// `divergence` ("emd" reproduces the paper). Empty cells never exist (the
/// store only materializes observed combinations), matching the splitter's
/// empty-group behaviour.
StatusOr<AggregateAuditResult> AuditAggregateBalanced(
    const CellStore& store, const std::string& divergence = "emd");

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_AGGREGATE_H_
