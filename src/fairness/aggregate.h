#ifndef FAIRRANK_FAIRNESS_AGGREGATE_H_
#define FAIRRANK_FAIRNESS_AGGREGATE_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/budget.h"
#include "common/status.h"
#include "data/attribute.h"
#include "data/table.h"
#include "stats/divergence.h"
#include "stats/histogram.h"

namespace fairrank {

/// Audit from aggregates: per-demographic-cell score histograms are a
/// *sufficient statistic* for every partitioning the search space contains
/// — any partition is a union of cells and its histogram is the bin-wise
/// sum — so the full balanced search can run without retaining a single
/// individual record. Use cases: privacy-constrained audits (only
/// aggregate counts leave the platform), continuous audits over streams,
/// and million-worker audits whose ingest is the only O(n) stage
/// (BuildCellStoreParallel below).
///
/// CellStore accumulates the cells; AuditAggregate runs the paper's
/// balanced algorithm directly on them and provably matches the table-based
/// audit with the same bin configuration (tested in aggregate_test).

/// One demographic cell: the score histogram of every observation whose
/// protected-group vector equals the cell key, plus the *exact* number of
/// observations behind it. The count is tracked separately from histogram
/// mass on purpose — out-of-range scores clamped into edge bins (or, later,
/// sketch mass) keep `histogram.total()` an unreliable population count
/// while `count` stays exact.
struct StoreCell {
  Histogram histogram;
  size_t count = 0;

  StoreCell(int num_bins, double score_lo, double score_hi)
      : histogram(num_bins, score_lo, score_hi) {}
};

class CellStore {
 public:
  /// Validating factory: requires at least one attribute spec (each
  /// internally consistent per AttributeSpec::Validate), num_bins >= 1 and
  /// score_lo < score_hi. The previously unchecked constructor let
  /// degenerate bin configs through and every Add built broken Histograms;
  /// use Make on any untrusted configuration.
  static StatusOr<CellStore> Make(std::vector<AttributeSpec> protected_specs,
                                  int num_bins, double score_lo,
                                  double score_hi);

  /// Unchecked constructor for trusted callers (asserts the Make
  /// invariants, mirroring Histogram's constructor/factory split).
  CellStore(std::vector<AttributeSpec> protected_specs, int num_bins,
            double score_lo, double score_hi);

  /// Adds one observation for the worker whose protected attribute groups
  /// are `groups` (one group index per spec, in spec order). Fails on a
  /// wrong arity or an out-of-range group.
  Status Add(const std::vector<int>& groups, double score);

  /// Convenience: adds row `row` of `table` (whose schema must contain
  /// every spec attribute by name) with the given score. Resolves column
  /// indices by name per call — fine for tests and small batches; bulk
  /// ingest goes through BuildCellStoreParallel.
  Status AddRow(const Table& table, size_t row, double score);

  /// Installs-or-merges one whole cell: `histogram` must match the store's
  /// bin configuration and `count` is the exact observation count behind
  /// it. The building block shard conversion and MergeFrom share.
  Status MergeCell(const std::vector<int>& groups, const Histogram& histogram,
                   size_t count);

  /// Histogram-wise merge of a compatible store: every cell of `other` is
  /// added into this store (bin-wise histogram sums, exact count sums).
  /// Fails with InvalidArgument — naming the mismatch — unless both stores
  /// share the attribute specs (count, names, group cardinalities) and the
  /// bin configuration (num_bins, score_lo, score_hi). All observation
  /// weights are 1.0 and bin counts stay far below 2^53, so merged bin
  /// counts are exact integers and the merged store is bit-identical to
  /// serial ingestion regardless of shard boundaries or merge order.
  Status MergeFrom(const CellStore& other);

  size_t num_cells() const { return cells_.size(); }
  size_t num_observations() const { return observations_; }
  const std::vector<AttributeSpec>& specs() const { return specs_; }
  int num_bins() const { return num_bins_; }
  double score_lo() const { return score_lo_; }
  double score_hi() const { return score_hi_; }

  /// Read-only view of the cells (key = group vector).
  const std::map<std::vector<int>, StoreCell>& cells() const { return cells_; }

 private:
  /// Arity and per-attribute group-range check shared by Add/MergeCell.
  Status CheckKey(const std::vector<int>& groups) const;

  std::vector<AttributeSpec> specs_;
  int num_bins_;
  double score_lo_;
  double score_hi_;
  std::map<std::vector<int>, StoreCell> cells_;
  size_t observations_ = 0;
};

/// Configuration of BuildCellStoreParallel.
struct CellStoreIngestOptions {
  /// Histogram bin configuration, as in EvaluatorOptions: equal-width bins
  /// over [score_lo, score_hi].
  int num_bins = 10;
  double score_lo = 0.0;
  double score_hi = 1.0;
  /// Ingest worker threads (one CellStore shard per thread, no locks on the
  /// add path). <= 0 means HardwareThreads(); 1 is fully serial. Results
  /// are bit-identical across thread counts.
  int num_threads = 1;
  /// Attribute names to build cells over; empty = every attribute the
  /// table's schema marks protected, in schema order.
  std::vector<std::string> protected_attributes;
};

/// Sharded, parallel cell-store ingestion: splits the table's rows into one
/// contiguous range per shard, accumulates each shard on its own worker
/// thread (ParallelForEach pool; the shard accumulators are thread-private,
/// so the add path takes no locks), then merges the shards with
/// CellStore::MergeFrom in shard order. The result is bit-identical to
/// serial ingestion (see MergeFrom).
///
/// Bounded like every other stage: charges shard memory to the context's
/// ResourceBudget, checks the Deadline / cancellation between row blocks,
/// records an "ingest" trace span (with an "ingest_merge" child) when the
/// context carries a sampled trace, and bumps the fairrank_ingest_* metrics.
/// A failing shard surfaces exactly one Status (lowest shard index wins,
/// deterministically) without poisoning sibling shards.
///
/// `scores` must hold one score per table row.
StatusOr<CellStore> BuildCellStoreParallel(
    const Table& table, const std::vector<double>& scores,
    const CellStoreIngestOptions& options = CellStoreIngestOptions(),
    const ExecutionContext& context = ExecutionContext::Unbounded());

/// One partition of an aggregate audit: which attribute/group constraints
/// define it, its histogram, and how many workers it covers.
struct AggregatePartition {
  /// Pairs (spec index, group index), in split order.
  std::vector<std::pair<size_t, int>> constraints;
  Histogram histogram;
  /// Exact observation count (sum of the member cells' counts) — not
  /// histogram mass, which clamping or sketches can distort.
  size_t size = 0;

  AggregatePartition() : histogram(1, 0.0, 1.0) {}
};

/// Result of an aggregate audit.
struct AggregateAuditResult {
  std::vector<AggregatePartition> partitions;
  double unfairness = 0.0;
  /// Spec indices split on, in order.
  std::vector<size_t> attributes_used;
};

/// Human-readable label of an aggregate partition ("Gender=Male &
/// Country=India", "<all>").
std::string AggregatePartitionLabel(const std::vector<AttributeSpec>& specs,
                                    const AggregatePartition& partition);

/// Runs the paper's balanced algorithm (worst-attribute greedy with the
/// global stopping condition) directly on the store's cells, using
/// `divergence` ("emd" reproduces the paper). Empty cells never exist (the
/// store only materializes observed combinations), matching the splitter's
/// empty-group behaviour.
///
/// The partition sizes come from the cells' exact counts and are verified
/// to sum to store.num_observations() (Internal error on desync). The
/// optional context bounds the search: deadline / cancellation / budget
/// exhaustion between split evaluations returns the matching
/// ExhaustionStatus instead of an audit.
StatusOr<AggregateAuditResult> AuditAggregateBalanced(
    const CellStore& store, const std::string& divergence = "emd",
    const ExecutionContext& context = ExecutionContext::Unbounded());

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_AGGREGATE_H_
