#include "fairness/agglomerative.h"

#include <algorithm>
#include <limits>

#include "common/trace.h"
#include "fairness/splitter.h"

namespace fairrank {

namespace {

class AgglomerativeAlgorithm : public PartitioningAlgorithm {
 public:
  std::string Name() const override { return "merge"; }

  using PartitioningAlgorithm::Run;

  StatusOr<SearchResult> Run(const UnfairnessEvaluator& eval,
                             std::vector<size_t> attrs,
                             const ExecutionContext& context) override {
    SearchResult result;
    // Start from the full partitioning. Each split level is one node; a trip
    // here degrades to the partial split reached so far (still valid).
    Partitioning current{MakeRootPartition(eval.table().num_rows())};
    {
      ScopedSpan expand_span(context.trace(), "expand",
                             context.trace_parent());
      for (size_t attr : attrs) {
        ExhaustionReason why = context.CheckNodes(1);
        if (why != ExhaustionReason::kNone) {
          result.partitioning = std::move(current);
          return TruncatedResult(std::move(result), why);
        }
        ++result.nodes_visited;
        current = SplitAll(eval.table(), current, attr);
      }
    }
    const size_t k = current.size();
    if (k < 3) {  // Nothing to merge (k=2 merging gives k=1).
      result.partitioning = std::move(current);
      return result;
    }

    // The k x k distance matrix is the algorithm's big allocation — an
    // allocation checkpoint guards it; on a trip the full partitioning is
    // returned without a merge trajectory.
    ExhaustionReason why =
        context.CheckMemory(k * k * sizeof(double) + k * sizeof(Histogram));
    if (why != ExhaustionReason::kNone) {
      result.partitioning = std::move(current);
      return TruncatedResult(std::move(result), why);
    }

    // Histograms and the pairwise distance matrix. `alive[i]` marks live
    // clusters; merged clusters are tombstoned instead of erased so the
    // matrix stays index-stable.
    ScopedSpan evaluate_span(context.trace(), "evaluate",
                             context.trace_parent());
    std::vector<Histogram> hists;
    hists.reserve(k);
    for (const Partition& p : current) hists.push_back(eval.BuildHistogram(p));
    std::vector<bool> alive(k, true);
    std::vector<std::vector<double>> dist(k, std::vector<double>(k, 0.0));
    double sum = 0.0;  // Sum of pairwise distances over live pairs.
    for (size_t i = 0; i < k; ++i) {
      // One matrix row = k-i-1 distance evaluations; a trip mid-build
      // degrades to the full partitioning (no usable trajectory yet).
      why = context.CheckNodes(k - i - 1);
      if (why != ExhaustionReason::kNone) {
        result.partitioning = std::move(current);
        return TruncatedResult(std::move(result), why);
      }
      result.nodes_visited += k - i - 1;
      for (size_t j = i + 1; j < k; ++j) {
        StatusOr<double> d = TracedDistance(eval, context, hists[i], hists[j]);
        if (!d.ok()) {
          result.partitioning = std::move(current);
          return DegradeOnExhaustion(std::move(result), d.status());
        }
        dist[i][j] = dist[j][i] = *d;
        sum += *d;
      }
    }
    size_t live = k;
    double current_avg = sum / PairCount(live);

    // Unlike the top-down heuristics, the merge trajectory is deliberately
    // run all the way down to two clusters: the average pairwise divergence
    // is not monotone along it (collapsing same-treatment cells first
    // *lowers* the average before the final cross-treatment structure
    // emerges), so the best partitioning is the best snapshot along the
    // trajectory, not the first local optimum.
    Partitioning best = Snapshot(current, alive);
    double best_avg = current_avg;

    while (live > 2) {
      // A merge iteration re-evaluates up to `live` distances against the
      // combined cluster; a trip returns the best snapshot so far.
      why = context.CheckNodes(live);
      if (why != ExhaustionReason::kNone) {
        result.partitioning = std::move(best);
        return TruncatedResult(std::move(result), why);
      }
      result.nodes_visited += live;

      // Merge the closest live pair (classic agglomerative step; with ties
      // broken toward the smallest indices for determinism).
      size_t best_i = 0;
      size_t best_j = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < k; ++i) {
        if (!alive[i]) continue;
        for (size_t j = i + 1; j < k; ++j) {
          if (!alive[j]) continue;
          if (dist[i][j] < best_d) {
            best_d = dist[i][j];
            best_i = i;
            best_j = j;
          }
        }
      }

      // Merged histogram = count sum.
      Histogram combined = hists[best_i];
      FAIRRANK_RETURN_NOT_OK(combined.MergeWith(hists[best_j]));

      // Update the distance matrix and the pair sum.
      double new_sum = sum - best_d;
      for (size_t m = 0; m < k; ++m) {
        if (!alive[m] || m == best_i || m == best_j) continue;
        StatusOr<double> d = TracedDistance(eval, context, combined, hists[m]);
        if (!d.ok()) {
          result.partitioning = std::move(best);
          return DegradeOnExhaustion(std::move(result), d.status());
        }
        new_sum -= dist[best_i][m];
        new_sum -= dist[best_j][m];
        new_sum += *d;
        dist[best_i][m] = dist[m][best_i] = *d;
      }

      // Commit: best_i absorbs best_j.
      Partition& a = current[best_i];
      Partition& b = current[best_j];
      std::vector<size_t> rows;
      rows.reserve(a.rows.size() + b.rows.size());
      std::merge(a.rows.begin(), a.rows.end(), b.rows.begin(), b.rows.end(),
                 std::back_inserter(rows));
      if (a.merged_paths.empty()) a.merged_paths.push_back(a.path);
      if (b.merged_paths.empty()) {
        a.merged_paths.push_back(b.path);
      } else {
        a.merged_paths.insert(a.merged_paths.end(), b.merged_paths.begin(),
                              b.merged_paths.end());
      }
      a.path.clear();
      a.rows = std::move(rows);
      a.fingerprint = RowSetFingerprint(a.rows);
      hists[best_i] = std::move(combined);
      alive[best_j] = false;
      sum = new_sum;
      --live;
      current_avg = sum / PairCount(live);

      if (current_avg > best_avg) {
        best_avg = current_avg;
        best = Snapshot(current, alive);
      }
    }
    result.partitioning = std::move(best);
    return result;
  }

 private:
  /// The merge loops call the divergence directly (their histograms are
  /// synthetic merged cells, never cacheable by row-set fingerprint), so
  /// "emd" events are recorded here instead of in the evaluator cache path.
  static StatusOr<double> TracedDistance(const UnfairnessEvaluator& eval,
                                         const ExecutionContext& context,
                                         const Histogram& a,
                                         const Histogram& b) {
    if (context.trace() == nullptr) return eval.divergence().Distance(a, b);
    const uint64_t start_ns = TraceNowNanos();
    StatusOr<double> d = eval.divergence().Distance(a, b);
    context.trace()->AddEvent("emd", context.trace_parent(),
                              TraceNowNanos() - start_ns);
    return d;
  }

  static double PairCount(size_t live) {
    return static_cast<double>(live) * static_cast<double>(live - 1) / 2.0;
  }

  static Partitioning Snapshot(const Partitioning& current,
                               const std::vector<bool>& alive) {
    Partitioning out;
    for (size_t i = 0; i < current.size(); ++i) {
      if (alive[i]) out.push_back(current[i]);
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<PartitioningAlgorithm> MakeAgglomerativeAlgorithm() {
  return std::make_unique<AgglomerativeAlgorithm>();
}

}  // namespace fairrank
