#ifndef FAIRRANK_FAIRNESS_AGGLOMERATIVE_H_
#define FAIRRANK_FAIRNESS_AGGLOMERATIVE_H_

#include <memory>

#include "fairness/algorithm.h"

namespace fairrank {

/// Bottom-up counterpart of the paper's top-down heuristics (our
/// extension): start from the *full* partitioning (the all-attributes
/// baseline), repeatedly merge the closest pair of score histograms all the
/// way down to two clusters, and return the partitioning with the highest
/// average pairwise divergence seen anywhere along the trajectory.
///
/// Running to the bottom matters: the average is not monotone along the
/// merge path — collapsing same-treatment cells first *lowers* it before
/// the cross-treatment structure emerges (under f6 the trajectory ends at
/// {all-male cells, all-female cells} with average ~0.8, twice what any
/// intermediate step shows). `merge` therefore reaches partitionings no
/// tree-structured algorithm can represent: merged cells need not share a
/// split prefix.
///
/// Merged partitions carry every constituent cell path in
/// `Partition::merged_paths` ("A | B" labels). Cost: one full pairwise
/// distance matrix up front (O(k^2) divergence evaluations for k initial
/// cells), then O(k) divergences plus an O(k^2) matrix scan per merge.
std::unique_ptr<PartitioningAlgorithm> MakeAgglomerativeAlgorithm();

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_AGGLOMERATIVE_H_
