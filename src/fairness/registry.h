#ifndef FAIRRANK_FAIRNESS_REGISTRY_H_
#define FAIRRANK_FAIRNESS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fairness/algorithm.h"
#include "fairness/exhaustive.h"

namespace fairrank {

/// Configuration shared by algorithm construction.
struct AlgorithmConfig {
  /// Seed for the randomized baselines (r-balanced, r-unbalanced).
  uint64_t seed = 0;
  /// Budgets for the exhaustive brute force.
  ExhaustiveOptions exhaustive;
  /// Beam width for the "beam" extension algorithm.
  int beam_width = 3;
};

/// Builds an algorithm by its stable name:
///   "balanced", "unbalanced"       — the paper's two heuristics
///   "r-balanced", "r-unbalanced"   — random-attribute baselines
///   "all-attributes"               — full-split baseline
///   "exhaustive"                   — bounded brute force (toy sizes only)
///   "beam"                         — beam-search extension (ours)
///   "merge"                        — bottom-up agglomerative extension
/// NotFound for anything else.
StatusOr<std::unique_ptr<PartitioningAlgorithm>> MakeAlgorithmByName(
    const std::string& name, const AlgorithmConfig& config = AlgorithmConfig());

/// The five algorithms of the paper's tables, in table row order.
std::vector<std::string> PaperAlgorithmNames();

/// Every name accepted by MakeAlgorithmByName.
std::vector<std::string> KnownAlgorithmNames();

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_REGISTRY_H_
