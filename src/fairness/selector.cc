#include "fairness/algorithm.h"
#include "fairness/splitter.h"

namespace fairrank {

namespace {

class WorstAttributeSelector : public AttributeSelector {
 public:
  StatusOr<size_t> SelectGlobal(const UnfairnessEvaluator& eval,
                                const Partitioning& current,
                                const std::vector<size_t>& attrs) override {
    if (attrs.empty()) {
      return Status::InvalidArgument("no attributes to select from");
    }
    size_t best_pos = 0;
    double best_avg = -1.0;
    for (size_t pos = 0; pos < attrs.size(); ++pos) {
      Partitioning candidate = SplitAll(eval.table(), current, attrs[pos]);
      FAIRRANK_ASSIGN_OR_RETURN(double avg,
                                eval.AveragePairwiseUnfairness(candidate));
      if (avg > best_avg) {
        best_avg = avg;
        best_pos = pos;
      }
    }
    return best_pos;
  }

  StatusOr<size_t> SelectLocal(const UnfairnessEvaluator& eval,
                               const Partition& current,
                               const std::vector<Partition>& siblings,
                               const std::vector<size_t>& attrs) override {
    if (attrs.empty()) {
      return Status::InvalidArgument("no attributes to select from");
    }
    size_t best_pos = 0;
    double best_avg = -1.0;
    for (size_t pos = 0; pos < attrs.size(); ++pos) {
      std::vector<Partition> children =
          SplitPartition(eval.table(), current, attrs[pos]);
      FAIRRANK_ASSIGN_OR_RETURN(
          double avg, eval.AverageChildrenWithSiblings(children, siblings));
      if (avg > best_avg) {
        best_avg = avg;
        best_pos = pos;
      }
    }
    return best_pos;
  }
};

class RandomAttributeSelector : public AttributeSelector {
 public:
  explicit RandomAttributeSelector(uint64_t seed) : rng_(seed) {}

  StatusOr<size_t> SelectGlobal(const UnfairnessEvaluator& eval,
                                const Partitioning& current,
                                const std::vector<size_t>& attrs) override {
    (void)eval;
    (void)current;
    if (attrs.empty()) {
      return Status::InvalidArgument("no attributes to select from");
    }
    return rng_.UniformIndex(attrs.size());
  }

  StatusOr<size_t> SelectLocal(const UnfairnessEvaluator& eval,
                               const Partition& current,
                               const std::vector<Partition>& siblings,
                               const std::vector<size_t>& attrs) override {
    (void)eval;
    (void)current;
    (void)siblings;
    if (attrs.empty()) {
      return Status::InvalidArgument("no attributes to select from");
    }
    return rng_.UniformIndex(attrs.size());
  }

 private:
  Rng rng_;
};

}  // namespace

std::unique_ptr<AttributeSelector> MakeWorstAttributeSelector() {
  return std::make_unique<WorstAttributeSelector>();
}

std::unique_ptr<AttributeSelector> MakeRandomAttributeSelector(uint64_t seed) {
  return std::make_unique<RandomAttributeSelector>(seed);
}

}  // namespace fairrank
