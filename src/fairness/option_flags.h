#ifndef FAIRRANK_FAIRNESS_OPTION_FLAGS_H_
#define FAIRRANK_FAIRNESS_OPTION_FLAGS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/flags.h"
#include "common/status.h"
#include "fairness/auditor.h"
#include "marketplace/scoring.h"

namespace fairrank {

/// Flag-shaped option parsing shared by the fairaudit CLI and the fairauditd
/// HTTP server (which converts query parameters into a FlagParser via
/// FlagParser::FromPairs). Keeping one parser means one validation story:
/// a limit rejected on the command line is rejected identically over HTTP.

/// Parses a scoring-function spec:
///   alpha:<a>              the paper's linear family
///   f6..f9[:<seed>]        the biased-by-design functions
///   weights:A=0.7,B=0.3    arbitrary linear function over attributes
StatusOr<std::unique_ptr<ScoringFunction>> MakeFunctionFromSpec(
    const std::string& spec);

/// Parses and validates `--timeout-ms`, `--max-nodes`, `--max-memory-mb`
/// into ExecutionLimits. Negative values are rejected here, before any
/// int64 -> uint64 cast can wrap them into near-infinite budgets. The
/// deadline/cancel/parent fields are left inert for the caller to compose.
StatusOr<ExecutionLimits> ParseExecutionLimits(const FlagParser& flags);

/// Parses the audit-shaping flags (algorithm, bins, divergence, seed,
/// beam-width, threads, attributes, cache flags) plus ParseExecutionLimits
/// into AuditOptions.
StatusOr<AuditOptions> AuditOptionsFromFlags(const FlagParser& flags);

/// Exact set of flag names AuditOptionsFromFlags consumes. Callers append
/// their own surface-specific flags and pass the union to
/// ValidateKnownFlags so misspellings fail instead of silently defaulting.
const std::vector<std::string>& AuditOptionFlagNames();

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_OPTION_FLAGS_H_
