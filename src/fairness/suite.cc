#include "fairness/suite.h"

#include <exception>
#include <utility>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "fairness/report.h"

namespace fairrank {

namespace {

/// Everything one scoring-function column shares across its algorithm
/// cells: the scores (computed once, not once per cell), the column's
/// shared evaluator cache, and the scoring status poisoning the column's
/// cells when ScoreAll failed.
struct ColumnState {
  Status status;
  std::vector<double> scores;
  std::shared_ptr<EvaluatorCache> cache;
};

}  // namespace

StatusOr<SuiteResult> AuditSuite::Run(
    const std::vector<const ScoringFunction*>& functions,
    const SuiteOptions& options) const {
  if (functions.empty()) {
    return Status::InvalidArgument("suite needs at least one function");
  }
  if (options.evaluator.shared_cache != nullptr) {
    return Status::InvalidArgument(
        "SuiteOptions::evaluator.shared_cache must be null — the suite "
        "manages per-column cache sharing itself (share_column_cache)");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  SuiteResult result;
  result.algorithms = options.algorithms.empty() ? PaperAlgorithmNames()
                                                 : options.algorithms;
  for (const ScoringFunction* fn : functions) {
    if (fn == nullptr) {
      return Status::InvalidArgument("null scoring function");
    }
    result.functions.push_back(fn->Name());
  }
  // Unknown algorithm names are a configuration error of the whole grid, so
  // they fail the run up-front instead of failing A cells one by one.
  for (const std::string& name : result.algorithms) {
    FAIRRANK_ASSIGN_OR_RETURN(std::unique_ptr<PartitioningAlgorithm> probe,
                              MakeAlgorithmByName(name, AlgorithmConfig()));
    (void)probe;  // Only the name resolution matters here.
  }

  const size_t num_algorithms = result.algorithms.size();
  const size_t num_functions = functions.size();
  const bool total_budget = options.budget_mode == SuiteBudgetMode::kTotal;

  // Arm the suite deadline once so every cell shares it; cells reached
  // after expiry degrade instantly instead of each getting a fresh
  // allowance. A caller-armed deadline and timeout_ms compose — the earlier
  // of the two wins (see SuiteOptions::limits).
  const Deadline deadline = options.limits.EffectiveDeadline();

  // In kTotal mode one parent budget bounds the aggregate work: every cell
  // gets a locally-unlimited child charging through to it, so the grid
  // respects the user's total --max-nodes/--max-memory-mb while the child
  // counters keep per-cell observability.
  ResourceBudget parent_budget = options.limits.MakeBudget();
  const ExecutionContext grid_context(deadline, options.limits.cancel,
                                      total_budget ? &parent_budget : nullptr);

  // Score each function once per column and set up the column-shared
  // evaluator caches (valid: one column = one score vector). Shared caches
  // charge their growth against the grid context (parent budget in kTotal).
  std::vector<ColumnState> columns(num_functions);
  for (size_t f = 0; f < num_functions; ++f) {
    StatusOr<std::vector<double>> scores = functions[f]->ScoreAll(*table_);
    if (scores.ok()) {
      columns[f].scores = std::move(scores).value();
    } else {
      columns[f].status = scores.status();
    }
    if (options.share_column_cache) {
      columns[f].cache = std::make_shared<EvaluatorCache>(
          options.evaluator.enable_cache, options.evaluator.cache_max_bytes);
      columns[f].cache->AttachContext(grid_context);
    }
  }

  result.cells.assign(num_algorithms, std::vector<SuiteCell>(num_functions));

  FairnessAuditor auditor(table_);
  Stopwatch wall;
  // Dispatch the cells onto a dynamically scheduled pool. Every cell writes
  // only its own pre-allocated slot, so the grid assembles in deterministic
  // (algorithm, function) order no matter which cells finish first, and one
  // failing cell degrades that cell alone — completed cells are kept.
  ParallelForEach(
      num_algorithms * num_functions, options.num_threads, [&](size_t job) {
        const size_t a = job / num_functions;
        const size_t f = job % num_functions;
        SuiteCell& cell = result.cells[a][f];
        cell.algorithm = result.algorithms[a];
        cell.function = result.functions[f];
        if (!columns[f].status.ok()) {
          cell.error = columns[f].status;
          return;
        }
        AuditOptions audit_options;
        audit_options.algorithm = result.algorithms[a];
        audit_options.evaluator = options.evaluator;
        audit_options.evaluator.shared_cache = columns[f].cache;
        audit_options.seed = options.seed + f;
        audit_options.protected_attributes = options.protected_attributes;
        audit_options.num_worst_pairs = 0;
        audit_options.limits.deadline = deadline;
        audit_options.limits.cancel = options.limits.cancel;
        // Spans from every cell land on the caller's trace (the recorder is
        // thread-safe); each cell's "audit" root carries its own subtree.
        audit_options.limits.trace = options.limits.trace;
        if (total_budget) {
          audit_options.limits.parent_budget = &parent_budget;
        } else {
          audit_options.limits.max_nodes = options.limits.max_nodes;
          audit_options.limits.max_memory_mb = options.limits.max_memory_mb;
          audit_options.limits.parent_budget = options.limits.parent_budget;
        }
        StatusOr<AuditResult> audit = Status::Internal("audit not run");
        try {
          audit = auditor.AuditScores(columns[f].scores,
                                      result.functions[f], audit_options);
        } catch (const std::exception& e) {
          audit = Status::Internal(std::string("audit threw: ") + e.what());
        } catch (...) {
          audit = Status::Internal("audit threw a non-standard exception");
        }
        if (!audit.ok()) {
          cell.error = audit.status();
          return;
        }
        cell.unfairness = audit->unfairness;
        cell.seconds = audit->seconds;
        cell.num_partitions = audit->partitions.size();
        cell.attributes_used = std::move(audit->attributes_used);
        cell.truncated = audit->truncated;
        cell.exhaustion_reason = audit->exhaustion_reason;
        cell.nodes_visited = audit->nodes_visited;
        cell.nodes_per_sec = audit->nodes_per_sec;
        cell.cache = audit->cache;
      });
  result.summary.wall_seconds = wall.ElapsedSeconds();

  // Column-level and suite-level rollups. With shared caches the per-cell
  // counters are cumulative column snapshots, so totals come from the
  // column caches themselves — summing cells would multi-count.
  result.column_cache.assign(num_functions, EvalCacheStats());
  for (size_t f = 0; f < num_functions; ++f) {
    if (columns[f].cache != nullptr) {
      result.column_cache[f] = columns[f].cache->Snapshot();
    } else {
      for (size_t a = 0; a < num_algorithms; ++a) {
        result.column_cache[f].Add(result.cells[a][f].cache);
      }
    }
    result.summary.cache.Add(result.column_cache[f]);
  }
  for (const auto& row : result.cells) {
    for (const SuiteCell& cell : row) {
      result.summary.cell_seconds += cell.seconds;
      result.summary.total_nodes += cell.nodes_visited;
      if (cell.truncated) ++result.summary.cells_truncated;
      if (!cell.error.ok()) ++result.summary.cells_failed;
    }
  }
  result.summary.nodes_per_sec =
      result.summary.wall_seconds > 0.0
          ? static_cast<double>(result.summary.total_nodes) /
                result.summary.wall_seconds
          : 0.0;
  return result;
}

namespace {

std::string FormatGrid(const SuiteResult& result, bool runtime) {
  TextTable table;
  std::vector<std::string> header = {"Algorithm"};
  header.insert(header.end(), result.functions.begin(),
                result.functions.end());
  table.SetHeader(header);
  for (size_t a = 0; a < result.algorithms.size(); ++a) {
    std::vector<std::string> row = {result.algorithms[a]};
    for (const SuiteCell& cell : result.cells[a]) {
      row.push_back(cell.error.ok() ? FormatDouble(
                                          runtime ? cell.seconds
                                                  : cell.unfairness,
                                          3)
                                    : std::string("ERR"));
    }
    table.AddRow(row);
  }
  return table.ToString();
}

}  // namespace

std::string FormatSuiteUnfairness(const SuiteResult& result) {
  return FormatGrid(result, /*runtime=*/false);
}

std::string FormatSuiteRuntime(const SuiteResult& result) {
  return FormatGrid(result, /*runtime=*/true);
}

std::string FormatSuiteCsv(const SuiteResult& result) {
  std::string out =
      "algorithm,function,unfairness,seconds,num_partitions,attributes,"
      "truncated,exhaustion_reason,nodes_visited,nodes_per_sec,"
      "hist_hit_rate,div_hit_rate,error\n";
  for (const auto& row : result.cells) {
    for (const SuiteCell& cell : row) {
      std::vector<std::string> fields = {
          CsvEscape(cell.algorithm),
          CsvEscape(cell.function),
          FormatDouble(cell.unfairness, 6),
          FormatDouble(cell.seconds, 6),
          std::to_string(cell.num_partitions),
          CsvEscape(Join(cell.attributes_used, "|")),
          cell.truncated ? "true" : "false",
          ExhaustionReasonToString(cell.exhaustion_reason),
          std::to_string(cell.nodes_visited),
          FormatDouble(cell.nodes_per_sec, 1),
          FormatDouble(cell.cache.histogram_hit_rate(), 3),
          FormatDouble(cell.cache.divergence_hit_rate(), 3),
          CsvEscape(cell.error.ok() ? "" : cell.error.ToString()),
      };
      out += Join(fields, ",");
      out += "\n";
    }
  }
  return out;
}

std::string FormatSuiteSummary(const SuiteResult& result) {
  const SuiteSummary& s = result.summary;
  const size_t cells = result.algorithms.size() * result.functions.size();
  std::string out;
  out += "suite: ";
  out += std::to_string(cells);
  out += " cells in ";
  out += FormatDouble(s.wall_seconds, 3);
  out += " s wall (";
  out += FormatDouble(s.cell_seconds, 3);
  out += " s serial-equivalent";
  if (s.wall_seconds > 0.0) {
    out += ", ";
    out += FormatDouble(s.cell_seconds / s.wall_seconds, 2);
    out += "x speedup";
  }
  out += ")\n";
  out += "search: ";
  out += std::to_string(s.total_nodes);
  out += " nodes (";
  out += FormatDouble(s.nodes_per_sec, 0);
  out += " nodes/s), ";
  out += std::to_string(s.cells_truncated);
  out += " cells truncated, ";
  out += std::to_string(s.cells_failed);
  out += " failed\n";
  out += "evaluator cache: histogram hit rate ";
  out += FormatDouble(100.0 * s.cache.histogram_hit_rate(), 1);
  out += "% (";
  out += std::to_string(s.cache.histogram_hits);
  out += "/";
  out += std::to_string(s.cache.histogram_lookups());
  out += "), divergence hit rate ";
  out += FormatDouble(100.0 * s.cache.divergence_hit_rate(), 1);
  out += "% (";
  out += std::to_string(s.cache.divergence_hits);
  out += "/";
  out += std::to_string(s.cache.divergence_lookups());
  out += "), evictions ";
  out += std::to_string(s.cache.evictions);
  out += "\n";
  return out;
}

std::string FormatSuiteSummaryCsv(const SuiteResult& result) {
  const SuiteSummary& s = result.summary;
  std::string out =
      "wall_seconds,cell_seconds,total_nodes,nodes_per_sec,cells_truncated,"
      "cells_failed,hist_hit_rate,div_hit_rate,evictions\n";
  std::vector<std::string> fields = {
      FormatDouble(s.wall_seconds, 6),
      FormatDouble(s.cell_seconds, 6),
      std::to_string(s.total_nodes),
      FormatDouble(s.nodes_per_sec, 1),
      std::to_string(s.cells_truncated),
      std::to_string(s.cells_failed),
      FormatDouble(s.cache.histogram_hit_rate(), 3),
      FormatDouble(s.cache.divergence_hit_rate(), 3),
      std::to_string(s.cache.evictions),
  };
  out += Join(fields, ",");
  out += "\n";
  return out;
}

namespace {

void AppendCacheJson(std::string& out, const EvalCacheStats& cache) {
  out += "{\"histogram_hits\":";
  out += std::to_string(cache.histogram_hits);
  out += ",\"histogram_misses\":";
  out += std::to_string(cache.histogram_misses);
  out += ",\"divergence_hits\":";
  out += std::to_string(cache.divergence_hits);
  out += ",\"divergence_misses\":";
  out += std::to_string(cache.divergence_misses);
  out += ",\"evictions\":";
  out += std::to_string(cache.evictions);
  out += "}";
}

}  // namespace

std::string FormatSuiteJson(const SuiteResult& result) {
  std::string out = "{\"algorithms\":[";
  for (size_t a = 0; a < result.algorithms.size(); ++a) {
    if (a > 0) out += ",";
    out += "\"";
    out += JsonEscape(result.algorithms[a]);
    out += "\"";
  }
  out += "],\"functions\":[";
  for (size_t f = 0; f < result.functions.size(); ++f) {
    if (f > 0) out += ",";
    out += "\"";
    out += JsonEscape(result.functions[f]);
    out += "\"";
  }
  out += "],\"cells\":[";
  for (size_t a = 0; a < result.cells.size(); ++a) {
    if (a > 0) out += ",";
    out += "[";
    for (size_t f = 0; f < result.cells[a].size(); ++f) {
      const SuiteCell& cell = result.cells[a][f];
      if (f > 0) out += ",";
      out += "{\"algorithm\":\"";
      out += JsonEscape(cell.algorithm);
      out += "\",\"function\":\"";
      out += JsonEscape(cell.function);
      out += "\",\"unfairness\":";
      out += FormatDouble(cell.unfairness, 6);
      out += ",\"seconds\":";
      out += FormatDouble(cell.seconds, 6);
      out += ",\"num_partitions\":";
      out += std::to_string(cell.num_partitions);
      out += ",\"attributes_used\":[";
      for (size_t i = 0; i < cell.attributes_used.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"";
        out += JsonEscape(cell.attributes_used[i]);
        out += "\"";
      }
      out += "],\"truncated\":";
      out += cell.truncated ? "true" : "false";
      out += ",\"exhaustion_reason\":\"";
      out += ExhaustionReasonToString(cell.exhaustion_reason);
      out += "\",\"nodes_visited\":";
      out += std::to_string(cell.nodes_visited);
      out += ",\"nodes_per_sec\":";
      out += FormatDouble(cell.nodes_per_sec, 1);
      out += ",\"cache\":";
      AppendCacheJson(out, cell.cache);
      out += ",\"error\":\"";
      out += JsonEscape(cell.error.ok() ? "" : cell.error.ToString());
      out += "\"}";
    }
    out += "]";
  }
  const SuiteSummary& s = result.summary;
  out += "],\"summary\":{\"wall_seconds\":";
  out += FormatDouble(s.wall_seconds, 6);
  out += ",\"cell_seconds\":";
  out += FormatDouble(s.cell_seconds, 6);
  out += ",\"total_nodes\":";
  out += std::to_string(s.total_nodes);
  out += ",\"nodes_per_sec\":";
  out += FormatDouble(s.nodes_per_sec, 1);
  out += ",\"cells_truncated\":";
  out += std::to_string(s.cells_truncated);
  out += ",\"cells_failed\":";
  out += std::to_string(s.cells_failed);
  out += ",\"cache\":";
  AppendCacheJson(out, s.cache);
  out += "}}";
  return out;
}

}  // namespace fairrank
