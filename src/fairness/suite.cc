#include "fairness/suite.h"

#include "common/str_util.h"
#include "fairness/report.h"

namespace fairrank {

StatusOr<SuiteResult> AuditSuite::Run(
    const std::vector<const ScoringFunction*>& functions,
    const SuiteOptions& options) const {
  if (functions.empty()) {
    return Status::InvalidArgument("suite needs at least one function");
  }
  SuiteResult result;
  result.algorithms = options.algorithms.empty() ? PaperAlgorithmNames()
                                                 : options.algorithms;
  for (const ScoringFunction* fn : functions) {
    if (fn == nullptr) {
      return Status::InvalidArgument("null scoring function");
    }
    result.functions.push_back(fn->Name());
  }

  // Arm the suite deadline once so every cell shares it; cells reached after
  // expiry degrade instantly instead of each getting a fresh allowance.
  ExecutionLimits cell_limits = options.limits;
  if (cell_limits.deadline.is_infinite() && cell_limits.timeout_ms > 0) {
    cell_limits.deadline = Deadline::AfterMillis(cell_limits.timeout_ms);
  }

  FairnessAuditor auditor(table_);
  result.cells.resize(result.algorithms.size());
  for (size_t a = 0; a < result.algorithms.size(); ++a) {
    for (size_t f = 0; f < functions.size(); ++f) {
      AuditOptions audit_options;
      audit_options.algorithm = result.algorithms[a];
      audit_options.evaluator = options.evaluator;
      audit_options.seed = options.seed + f;
      audit_options.protected_attributes = options.protected_attributes;
      audit_options.num_worst_pairs = 0;
      audit_options.limits = cell_limits;
      FAIRRANK_ASSIGN_OR_RETURN(AuditResult audit,
                                auditor.Audit(*functions[f], audit_options));
      SuiteCell cell;
      cell.algorithm = result.algorithms[a];
      cell.function = result.functions[f];
      cell.unfairness = audit.unfairness;
      cell.seconds = audit.seconds;
      cell.num_partitions = audit.partitions.size();
      cell.attributes_used = std::move(audit.attributes_used);
      cell.truncated = audit.truncated;
      cell.nodes_visited = audit.nodes_visited;
      cell.cache = audit.cache;
      result.cells[a].push_back(std::move(cell));
    }
  }
  return result;
}

namespace {

std::string FormatGrid(const SuiteResult& result, bool runtime) {
  TextTable table;
  std::vector<std::string> header = {"Algorithm"};
  header.insert(header.end(), result.functions.begin(),
                result.functions.end());
  table.SetHeader(header);
  for (size_t a = 0; a < result.algorithms.size(); ++a) {
    std::vector<std::string> row = {result.algorithms[a]};
    for (const SuiteCell& cell : result.cells[a]) {
      row.push_back(FormatDouble(runtime ? cell.seconds : cell.unfairness, 3));
    }
    table.AddRow(row);
  }
  return table.ToString();
}

}  // namespace

std::string FormatSuiteUnfairness(const SuiteResult& result) {
  return FormatGrid(result, /*runtime=*/false);
}

std::string FormatSuiteRuntime(const SuiteResult& result) {
  return FormatGrid(result, /*runtime=*/true);
}

std::string FormatSuiteCsv(const SuiteResult& result) {
  std::string out =
      "algorithm,function,unfairness,seconds,num_partitions,attributes,"
      "truncated,nodes_visited,hist_hit_rate,div_hit_rate\n";
  for (const auto& row : result.cells) {
    for (const SuiteCell& cell : row) {
      out += cell.algorithm + "," + cell.function + "," +
             FormatDouble(cell.unfairness, 6) + "," +
             FormatDouble(cell.seconds, 6) + "," +
             std::to_string(cell.num_partitions) + "," +
             Join(cell.attributes_used, "|") + "," +
             (cell.truncated ? "true" : "false") + "," +
             std::to_string(cell.nodes_visited) + "," +
             FormatDouble(cell.cache.histogram_hit_rate(), 3) + "," +
             FormatDouble(cell.cache.divergence_hit_rate(), 3) + "\n";
    }
  }
  return out;
}

}  // namespace fairrank
