#ifndef FAIRRANK_FAIRNESS_SIGNIFICANCE_H_
#define FAIRRANK_FAIRNESS_SIGNIFICANCE_H_

#include <cstdint>

#include "common/status.h"
#include "fairness/evaluator.h"
#include "fairness/partition.h"

namespace fairrank {

/// The paper observes that even uniformly random scores yield a nonzero
/// average pairwise EMD (Tables 1-2 hover around 0.15-0.33): finite
/// partitions of random data always differ somewhat, and the search
/// *maximizes* over partitionings. These tools separate that sampling
/// floor from real signal on a *fixed* partitioning.

/// Bootstrap confidence interval for unfairness(P, f).
struct BootstrapResult {
  double observed = 0.0;   ///< Unfairness on the original scores.
  double mean = 0.0;       ///< Mean over bootstrap resamples.
  double ci_lo = 0.0;      ///< 2.5th percentile.
  double ci_hi = 0.0;      ///< 97.5th percentile.
  size_t iterations = 0;
};

/// Resamples each partition's members with replacement `iterations` times
/// and recomputes the average pairwise divergence, yielding a confidence
/// interval for the unfairness estimate of `partitioning`. Deterministic
/// given `seed`. `partitioning` must be valid for the evaluator's table.
StatusOr<BootstrapResult> BootstrapUnfairness(const UnfairnessEvaluator& eval,
                                              const Partitioning& partitioning,
                                              size_t iterations,
                                              uint64_t seed);

/// Permutation test for unfairness(P, f).
struct PermutationResult {
  double observed = 0.0;   ///< Unfairness on the original scores.
  double null_mean = 0.0;  ///< Mean unfairness under permuted scores.
  /// Fraction of permutations with unfairness >= observed, with the +1
  /// correction: (count + 1) / (iterations + 1). Small values mean the
  /// observed unfairness is not explained by chance assignment.
  double p_value = 1.0;
  size_t iterations = 0;
};

/// Shuffles the score vector across workers `iterations` times (breaking
/// any association between scores and protected attributes, keeping the
/// score distribution intact) and recomputes unfairness on the same
/// partitioning. Deterministic given `seed`.
StatusOr<PermutationResult> PermutationTestUnfairness(
    const UnfairnessEvaluator& eval, const Partitioning& partitioning,
    size_t iterations, uint64_t seed);

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_SIGNIFICANCE_H_
