#include "fairness/option_flags.h"

#include <utility>

#include "common/str_util.h"
#include "marketplace/biased_scoring.h"

namespace fairrank {

StatusOr<std::unique_ptr<ScoringFunction>> MakeFunctionFromSpec(
    const std::string& spec) {
  std::vector<std::string> parts = Split(spec, ':');
  const std::string& kind = parts[0];
  if (kind == "alpha") {
    double alpha = 0.5;
    if (parts.size() > 1 && !ParseDouble(parts[1], &alpha)) {
      return Status::InvalidArgument("bad alpha in spec '" + spec + "'");
    }
    return MakeAlphaFunction("alpha=" + FormatDouble(alpha, 2), alpha);
  }
  if (kind == "f6" || kind == "f7" || kind == "f8" || kind == "f9") {
    int64_t seed = 42;
    if (parts.size() > 1 && !ParseInt64(parts[1], &seed)) {
      return Status::InvalidArgument("bad seed in spec '" + spec + "'");
    }
    uint64_t s = static_cast<uint64_t>(seed);
    if (kind == "f6") return MakeF6(s);
    if (kind == "f7") return MakeF7(s);
    if (kind == "f8") return MakeF8(s);
    return MakeF9(s);
  }
  if (kind == "weights" && parts.size() > 1) {
    std::vector<std::pair<std::string, double>> weights;
    for (const std::string& term : Split(parts[1], ',')) {
      std::vector<std::string> kv = Split(term, '=');
      double w = 0.0;
      if (kv.size() != 2 || !ParseDouble(kv[1], &w)) {
        return Status::InvalidArgument("bad weight term '" + term + "'");
      }
      weights.emplace_back(std::string(Trim(kv[0])), w);
    }
    return std::unique_ptr<ScoringFunction>(
        std::make_unique<LinearScoringFunction>(spec, std::move(weights)));
  }
  return Status::InvalidArgument(
      "unknown function spec '" + spec +
      "' (want alpha:<a>, f6..f9[:<seed>], or weights:A=0.7,B=0.3)");
}

StatusOr<ExecutionLimits> ParseExecutionLimits(const FlagParser& flags) {
  ExecutionLimits limits;
  FAIRRANK_ASSIGN_OR_RETURN(int64_t timeout_ms, flags.GetInt("timeout-ms", 0));
  if (timeout_ms < 0) {
    return Status::InvalidArgument("--timeout-ms must be >= 0");
  }
  limits.timeout_ms = timeout_ms;
  FAIRRANK_ASSIGN_OR_RETURN(int64_t max_nodes, flags.GetInt("max-nodes", 0));
  if (max_nodes < 0) {
    return Status::InvalidArgument("--max-nodes must be >= 0");
  }
  limits.max_nodes = static_cast<uint64_t>(max_nodes);
  FAIRRANK_ASSIGN_OR_RETURN(int64_t max_memory_mb,
                            flags.GetInt("max-memory-mb", 0));
  if (max_memory_mb < 0) {
    return Status::InvalidArgument("--max-memory-mb must be >= 0");
  }
  limits.max_memory_mb = static_cast<uint64_t>(max_memory_mb);
  return limits;
}

StatusOr<AuditOptions> AuditOptionsFromFlags(const FlagParser& flags) {
  AuditOptions options;
  options.algorithm = flags.GetString("algorithm", "balanced");
  FAIRRANK_ASSIGN_OR_RETURN(int64_t bins, flags.GetInt("bins", 10));
  options.evaluator.num_bins = static_cast<int>(bins);
  options.evaluator.divergence = flags.GetString("divergence", "emd");
  FAIRRANK_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 0));
  options.seed = static_cast<uint64_t>(seed);
  FAIRRANK_ASSIGN_OR_RETURN(int64_t width, flags.GetInt("beam-width", 3));
  options.beam_width = static_cast<int>(width);
  FAIRRANK_ASSIGN_OR_RETURN(int64_t threads, flags.GetInt("threads", 1));
  options.evaluator.num_threads = static_cast<int>(threads);
  std::string attrs = flags.GetString("attributes", "");
  if (!attrs.empty()) {
    for (const std::string& name : Split(attrs, ',')) {
      options.protected_attributes.emplace_back(Trim(name));
    }
  }
  FAIRRANK_ASSIGN_OR_RETURN(options.limits, ParseExecutionLimits(flags));
  FAIRRANK_ASSIGN_OR_RETURN(bool no_cache, flags.GetBool("no-cache", false));
  options.evaluator.enable_cache = !no_cache;
  FAIRRANK_ASSIGN_OR_RETURN(int64_t cache_mb, flags.GetInt("cache-mb", 256));
  if (cache_mb < 0) {
    return Status::InvalidArgument("--cache-mb must be >= 0");
  }
  options.evaluator.cache_max_bytes = static_cast<uint64_t>(cache_mb) << 20;
  return options;
}

const std::vector<std::string>& AuditOptionFlagNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "algorithm",  "bins",      "divergence",    "seed",
      "beam-width", "threads",   "attributes",    "timeout-ms",
      "max-nodes",  "max-memory-mb", "no-cache",  "cache-mb",
  };
  return *names;
}

}  // namespace fairrank
