#include "fairness/auditor.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace fairrank {

namespace {

/// Always-on audit-level metrics: one bump per audit, so the cost is
/// invisible next to the search itself.
struct AuditMetrics {
  MetricCounter* audits;
  MetricCounter* truncated;
  MetricCounter* nodes;
  MetricHistogram* search_seconds;

  static const AuditMetrics& Get() {
    static const AuditMetrics* metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      auto* m = new AuditMetrics();
      m->audits = registry.GetCounter("fairrank_audits_total",
                                      "Completed audits (search + report)");
      m->truncated = registry.GetCounter(
          "fairrank_audits_truncated_total",
          "Audits whose search stopped early (deadline / cancel / budget)");
      m->nodes = registry.GetCounter(
          "fairrank_audit_nodes_total",
          "Search nodes visited across all audits");
      m->search_seconds = registry.GetHistogram(
          "fairrank_audit_search_seconds",
          "Wall-clock seconds of the partition search phase");
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

StatusOr<std::vector<size_t>> FairnessAuditor::ResolveProtectedAttributes(
    const AuditOptions& options) const {
  const Schema& schema = table_->schema();
  if (options.protected_attributes.empty()) {
    std::vector<size_t> indices = schema.ProtectedIndices();
    if (indices.empty()) {
      return Status::FailedPrecondition(
          "schema has no protected attributes and none were requested");
    }
    return indices;
  }
  std::vector<size_t> indices;
  indices.reserve(options.protected_attributes.size());
  for (const std::string& name : options.protected_attributes) {
    FAIRRANK_ASSIGN_OR_RETURN(size_t index, schema.FindIndex(name));
    indices.push_back(index);
  }
  return indices;
}

StatusOr<AuditResult> FairnessAuditor::Audit(const ScoringFunction& fn,
                                             const AuditOptions& options) const {
  FAIRRANK_ASSIGN_OR_RETURN(std::vector<double> scores,
                            fn.ScoreAll(*table_));
  return AuditScores(std::move(scores), fn.Name(), options);
}

StatusOr<AuditResult> FairnessAuditor::AuditScores(
    std::vector<double> scores, const std::string& score_name,
    const AuditOptions& options) const {
  if (table_->num_rows() == 0) {
    return Status::FailedPrecondition("cannot audit an empty table");
  }
  FAIRRANK_ASSIGN_OR_RETURN(std::vector<size_t> attrs,
                            ResolveProtectedAttributes(options));

  // Two evaluators: the *search* one carries the deadline / cancellation so
  // in-flight pairwise loops stop, while the *reporting* one stays unbounded
  // — metrics of the (possibly truncated) winner must not themselves fail
  // because the deadline has since expired.
  ResourceBudget budget = options.limits.MakeBudget();
  ExecutionContext context = options.limits.MakeContext(&budget);

  // Per-request trace: an "audit" root span with "search" / "report"
  // children; the search span is the parent of every algorithm and
  // evaluator span below it. Null trace = tracing off, zero-cost checks.
  // Head-based sampling decides here, once: an attached-but-unsampled
  // context degrades the whole pipeline to the identical null fast path,
  // so "tracing compiled in, sampling off" costs one boolean per audit —
  // not a timestamp per EMD (the <= 2% contract bench/trace_overhead.cc
  // enforces).
  TraceContext* trace = options.limits.trace;
  if (trace != nullptr && !trace->sampled()) trace = nullptr;
  ScopedSpan audit_span(trace, "audit");
  const int64_t search_span =
      trace != nullptr ? trace->StartSpan("search", audit_span.id()) : -1;
  context = context.WithTrace(trace, search_span);

  EvaluatorOptions search_evaluator_options = options.evaluator;
  search_evaluator_options.deadline = context.deadline();
  search_evaluator_options.cancel = context.cancel();
  search_evaluator_options.trace = trace;
  search_evaluator_options.trace_parent = search_span;
  EvaluatorOptions report_evaluator_options = options.evaluator;
  report_evaluator_options.trace = trace;
  report_evaluator_options.trace_parent = audit_span.id();
  std::vector<double> scores_copy = scores;
  FAIRRANK_ASSIGN_OR_RETURN(
      UnfairnessEvaluator search_eval,
      UnfairnessEvaluator::Make(table_, std::move(scores_copy),
                                search_evaluator_options));
  FAIRRANK_ASSIGN_OR_RETURN(
      UnfairnessEvaluator eval,
      UnfairnessEvaluator::Make(table_, std::move(scores),
                                report_evaluator_options));
  // Cache growth of the search evaluator is charged against the search's
  // resource budget; the reporting evaluator stays unbounded like its
  // deadline. A shared (suite-owned) cache already carries the suite's
  // charging context — attaching each cell's would let cells overwrite each
  // other's budgets.
  const bool shared_cache = options.evaluator.shared_cache != nullptr;
  if (!shared_cache) {
    search_eval.AttachExecutionContext(context);
  }

  AlgorithmConfig config;
  config.seed = options.seed;
  config.exhaustive = options.exhaustive;
  config.beam_width = options.beam_width;
  FAIRRANK_ASSIGN_OR_RETURN(std::unique_ptr<PartitioningAlgorithm> algorithm,
                            MakeAlgorithmByName(options.algorithm, config));

  Stopwatch stopwatch;
  FAIRRANK_ASSIGN_OR_RETURN(SearchResult search,
                            algorithm->Run(search_eval, std::move(attrs),
                                           context));
  double seconds = stopwatch.ElapsedSeconds();
  if (trace != nullptr) trace->EndSpan(search_span);
  search.cache = search_eval.cache_stats();
  Partitioning partitioning = std::move(search.partitioning);

  const AuditMetrics& metrics = AuditMetrics::Get();
  metrics.audits->Increment();
  if (search.truncated) metrics.truncated->Increment();
  metrics.nodes->Increment(search.nodes_visited);
  metrics.search_seconds->Observe(seconds);

  ScopedSpan report_span(trace, "report", audit_span.id());
  AuditResult result;
  result.algorithm = algorithm->Name();
  result.scoring_function = score_name;
  result.seconds = seconds;
  result.truncated = search.truncated;
  result.exhaustion_reason = search.reason;
  result.nodes_visited = search.nodes_visited;
  result.nodes_per_sec =
      seconds > 0.0 ? static_cast<double>(search.nodes_visited) / seconds : 0.0;
  result.out_of_range_scores = search_eval.num_out_of_range();
  FAIRRANK_ASSIGN_OR_RETURN(result.unfairness,
                            eval.AveragePairwiseUnfairness(partitioning));
  result.attributes_used = AttributesUsed(table_->schema(), partitioning);
  if (options.num_worst_pairs > 0) {
    FAIRRANK_ASSIGN_OR_RETURN(
        std::vector<DivergentPair> pairs,
        TopDivergentPairs(eval, partitioning, options.num_worst_pairs));
    for (const DivergentPair& pair : pairs) {
      result.worst_pairs.push_back(
          {PartitionLabel(table_->schema(), partitioning[pair.index_a]),
           PartitionLabel(table_->schema(), partitioning[pair.index_b]),
           pair.distance});
    }
  }

  result.partitions.reserve(partitioning.size());
  for (const Partition& p : partitioning) {
    PartitionSummary summary;
    summary.label = PartitionLabel(table_->schema(), p);
    summary.size = p.size();
    summary.histogram = eval.BuildHistogram(p);
    double sum = 0.0;
    for (size_t row : p.rows) sum += eval.scores()[row];
    summary.mean_score = p.rows.empty() ? 0.0 : sum / p.size();
    result.partitions.push_back(std::move(summary));
  }
  std::stable_sort(result.partitions.begin(), result.partitions.end(),
                   [](const PartitionSummary& a, const PartitionSummary& b) {
                     return a.size > b.size;
                   });
  result.partitioning = std::move(partitioning);
  if (shared_cache) {
    // Both evaluators fed the one shared cache: a single snapshot covers
    // them (adding the two would double-count). The counters are cumulative
    // over every evaluator sharing the cache, not per-audit.
    result.cache = eval.cache_stats();
  } else {
    // Combined cache view: search evaluator (bounded) plus the reporting
    // evaluator that computed the metrics above.
    result.cache = search.cache;
    result.cache.Add(eval.cache_stats());
  }
  return result;
}

}  // namespace fairrank
