#include "fairness/auditor.h"

#include <algorithm>

#include "common/stopwatch.h"

namespace fairrank {

StatusOr<std::vector<size_t>> FairnessAuditor::ResolveProtectedAttributes(
    const AuditOptions& options) const {
  const Schema& schema = table_->schema();
  if (options.protected_attributes.empty()) {
    std::vector<size_t> indices = schema.ProtectedIndices();
    if (indices.empty()) {
      return Status::FailedPrecondition(
          "schema has no protected attributes and none were requested");
    }
    return indices;
  }
  std::vector<size_t> indices;
  indices.reserve(options.protected_attributes.size());
  for (const std::string& name : options.protected_attributes) {
    FAIRRANK_ASSIGN_OR_RETURN(size_t index, schema.FindIndex(name));
    indices.push_back(index);
  }
  return indices;
}

StatusOr<AuditResult> FairnessAuditor::Audit(const ScoringFunction& fn,
                                             const AuditOptions& options) const {
  FAIRRANK_ASSIGN_OR_RETURN(std::vector<double> scores,
                            fn.ScoreAll(*table_));
  return AuditScores(std::move(scores), fn.Name(), options);
}

StatusOr<AuditResult> FairnessAuditor::AuditScores(
    std::vector<double> scores, const std::string& score_name,
    const AuditOptions& options) const {
  if (table_->num_rows() == 0) {
    return Status::FailedPrecondition("cannot audit an empty table");
  }
  FAIRRANK_ASSIGN_OR_RETURN(std::vector<size_t> attrs,
                            ResolveProtectedAttributes(options));

  // Two evaluators: the *search* one carries the deadline / cancellation so
  // in-flight pairwise loops stop, while the *reporting* one stays unbounded
  // — metrics of the (possibly truncated) winner must not themselves fail
  // because the deadline has since expired.
  ResourceBudget budget = options.limits.MakeBudget();
  ExecutionContext context = options.limits.MakeContext(&budget);
  EvaluatorOptions search_evaluator_options = options.evaluator;
  search_evaluator_options.deadline = context.deadline();
  search_evaluator_options.cancel = context.cancel();
  std::vector<double> scores_copy = scores;
  FAIRRANK_ASSIGN_OR_RETURN(
      UnfairnessEvaluator search_eval,
      UnfairnessEvaluator::Make(table_, std::move(scores_copy),
                                search_evaluator_options));
  FAIRRANK_ASSIGN_OR_RETURN(
      UnfairnessEvaluator eval,
      UnfairnessEvaluator::Make(table_, std::move(scores), options.evaluator));
  // Cache growth of the search evaluator is charged against the search's
  // resource budget; the reporting evaluator stays unbounded like its
  // deadline. A shared (suite-owned) cache already carries the suite's
  // charging context — attaching each cell's would let cells overwrite each
  // other's budgets.
  const bool shared_cache = options.evaluator.shared_cache != nullptr;
  if (!shared_cache) {
    search_eval.AttachExecutionContext(context);
  }

  AlgorithmConfig config;
  config.seed = options.seed;
  config.exhaustive = options.exhaustive;
  config.beam_width = options.beam_width;
  FAIRRANK_ASSIGN_OR_RETURN(std::unique_ptr<PartitioningAlgorithm> algorithm,
                            MakeAlgorithmByName(options.algorithm, config));

  Stopwatch stopwatch;
  FAIRRANK_ASSIGN_OR_RETURN(SearchResult search,
                            algorithm->Run(search_eval, std::move(attrs),
                                           context));
  double seconds = stopwatch.ElapsedSeconds();
  search.cache = search_eval.cache_stats();
  Partitioning partitioning = std::move(search.partitioning);

  AuditResult result;
  result.algorithm = algorithm->Name();
  result.scoring_function = score_name;
  result.seconds = seconds;
  result.truncated = search.truncated;
  result.exhaustion_reason = search.reason;
  result.nodes_visited = search.nodes_visited;
  result.nodes_per_sec =
      seconds > 0.0 ? static_cast<double>(search.nodes_visited) / seconds : 0.0;
  result.out_of_range_scores = search_eval.num_out_of_range();
  FAIRRANK_ASSIGN_OR_RETURN(result.unfairness,
                            eval.AveragePairwiseUnfairness(partitioning));
  result.attributes_used = AttributesUsed(table_->schema(), partitioning);
  if (options.num_worst_pairs > 0) {
    FAIRRANK_ASSIGN_OR_RETURN(
        std::vector<DivergentPair> pairs,
        TopDivergentPairs(eval, partitioning, options.num_worst_pairs));
    for (const DivergentPair& pair : pairs) {
      result.worst_pairs.push_back(
          {PartitionLabel(table_->schema(), partitioning[pair.index_a]),
           PartitionLabel(table_->schema(), partitioning[pair.index_b]),
           pair.distance});
    }
  }

  result.partitions.reserve(partitioning.size());
  for (const Partition& p : partitioning) {
    PartitionSummary summary;
    summary.label = PartitionLabel(table_->schema(), p);
    summary.size = p.size();
    summary.histogram = eval.BuildHistogram(p);
    double sum = 0.0;
    for (size_t row : p.rows) sum += eval.scores()[row];
    summary.mean_score = p.rows.empty() ? 0.0 : sum / p.size();
    result.partitions.push_back(std::move(summary));
  }
  std::stable_sort(result.partitions.begin(), result.partitions.end(),
                   [](const PartitionSummary& a, const PartitionSummary& b) {
                     return a.size > b.size;
                   });
  result.partitioning = std::move(partitioning);
  if (shared_cache) {
    // Both evaluators fed the one shared cache: a single snapshot covers
    // them (adding the two would double-count). The counters are cumulative
    // over every evaluator sharing the cache, not per-audit.
    result.cache = eval.cache_stats();
  } else {
    // Combined cache view: search evaluator (bounded) plus the reporting
    // evaluator that computed the metrics above.
    result.cache = search.cache;
    result.cache.Add(eval.cache_stats());
  }
  return result;
}

}  // namespace fairrank
