#include "fairness/evaluator.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <mutex>

#include "common/parallel.h"

namespace fairrank {

StatusOr<UnfairnessEvaluator> UnfairnessEvaluator::Make(
    const Table* table, std::vector<double> scores,
    const EvaluatorOptions& options) {
  if (table == nullptr) {
    return Status::InvalidArgument("table is null");
  }
  if (scores.size() != table->num_rows()) {
    return Status::InvalidArgument(
        "got " + std::to_string(scores.size()) + " scores for " +
        std::to_string(table->num_rows()) + " rows");
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!std::isfinite(scores[i])) {
      return Status::InvalidArgument("score " + std::to_string(i) +
                                     " is not finite");
    }
  }
  if (options.num_bins < 1) {
    return Status::InvalidArgument("num_bins must be >= 1");
  }
  if (!(options.score_lo < options.score_hi)) {
    return Status::InvalidArgument("empty score range");
  }
  FAIRRANK_ASSIGN_OR_RETURN(std::unique_ptr<Divergence> divergence,
                            MakeDivergenceByName(options.divergence));
  return UnfairnessEvaluator(table, std::move(scores), options,
                             std::move(divergence));
}

Histogram UnfairnessEvaluator::BuildHistogram(
    const Partition& partition) const {
  Histogram h(options_.num_bins, options_.score_lo, options_.score_hi);
  for (size_t row : partition.rows) h.Add(scores_[row]);
  return h;
}

StatusOr<double> UnfairnessEvaluator::Distance(const Partition& a,
                                               const Partition& b) const {
  return divergence_->Distance(BuildHistogram(a), BuildHistogram(b));
}

StatusOr<double> UnfairnessEvaluator::AveragePairwiseUnfairness(
    const Partitioning& partitioning) const {
  if (partitioning.size() < 2) return 0.0;
  std::vector<Histogram> hists;
  hists.reserve(partitioning.size());
  for (const Partition& p : partitioning) hists.push_back(BuildHistogram(p));

  const size_t k = hists.size();
  const size_t num_pairs = k * (k - 1) / 2;
  // Flatten the upper triangle so pair m maps to (i, j) and distances land
  // in a fixed slot — the final reduction order is deterministic regardless
  // of thread count.
  std::vector<double> distances(num_pairs, 0.0);
  Status first_error;
  std::mutex error_mutex;
  bool complete = true;
  try {
    complete = ParallelForCancellable(
        num_pairs, options_.num_threads, options_.cancel, options_.deadline,
        [&](size_t begin, size_t end) {
          // Locate (i, j) for `begin`, then walk forward.
          size_t m = 0;
          size_t i = 0;
          size_t j = 1;
          // Advance row-by-row; k is small relative to pair count.
          while (m + (k - 1 - i) <= begin) {
            m += k - 1 - i;
            ++i;
          }
          j = i + 1 + (begin - m);
          for (size_t p = begin; p < end; ++p) {
            StatusOr<double> d = divergence_->Distance(hists[i], hists[j]);
            if (!d.ok()) {
              std::lock_guard<std::mutex> lock(error_mutex);
              if (first_error.ok()) first_error = d.status();
              return;
            }
            distances[p] = *d;
            if (++j == k) {
              ++i;
              j = i + 1;
            }
          }
        });
  } catch (const std::exception& e) {
    // Worker exceptions (including injected faults) are captured by
    // ParallelFor and rethrown here; keep them inside the Status API.
    return Status::Internal(std::string("pairwise unfairness worker: ") +
                            e.what());
  }
  FAIRRANK_RETURN_NOT_OK(first_error);
  if (!complete) {
    return options_.cancel.cancel_requested()
               ? Status::Cancelled("pairwise unfairness cancelled")
               : Status::DeadlineExceeded(
                     "deadline expired during pairwise unfairness");
  }
  double sum = 0.0;
  for (double d : distances) sum += d;
  return sum / static_cast<double>(num_pairs);
}

StatusOr<std::vector<DivergentPair>> TopDivergentPairs(
    const UnfairnessEvaluator& eval, const Partitioning& partitioning,
    size_t k) {
  std::vector<DivergentPair> pairs;
  if (partitioning.size() < 2 || k == 0) return pairs;
  std::vector<Histogram> hists;
  hists.reserve(partitioning.size());
  for (const Partition& p : partitioning) {
    hists.push_back(eval.BuildHistogram(p));
  }
  for (size_t i = 0; i < hists.size(); ++i) {
    for (size_t j = i + 1; j < hists.size(); ++j) {
      FAIRRANK_ASSIGN_OR_RETURN(double d,
                                eval.divergence().Distance(hists[i], hists[j]));
      pairs.push_back({i, j, d});
    }
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const DivergentPair& a, const DivergentPair& b) {
                     return a.distance > b.distance;
                   });
  if (pairs.size() > k) pairs.resize(k);
  return pairs;
}

StatusOr<double> UnfairnessEvaluator::AverageWithSiblings(
    const Partition& current, const std::vector<Partition>& siblings) const {
  if (siblings.empty()) return 0.0;
  Histogram current_hist = BuildHistogram(current);
  double sum = 0.0;
  for (const Partition& s : siblings) {
    FAIRRANK_ASSIGN_OR_RETURN(
        double d, divergence_->Distance(current_hist, BuildHistogram(s)));
    sum += d;
  }
  return sum / static_cast<double>(siblings.size());
}

StatusOr<double> UnfairnessEvaluator::AverageChildrenWithSiblings(
    const std::vector<Partition>& children,
    const std::vector<Partition>& siblings) const {
  std::vector<Histogram> child_hists;
  child_hists.reserve(children.size());
  for (const Partition& c : children) child_hists.push_back(BuildHistogram(c));
  std::vector<Histogram> sibling_hists;
  sibling_hists.reserve(siblings.size());
  for (const Partition& s : siblings) {
    sibling_hists.push_back(BuildHistogram(s));
  }

  double sum = 0.0;
  size_t pairs = 0;
  // Child-child pairs.
  for (size_t i = 0; i < child_hists.size(); ++i) {
    for (size_t j = i + 1; j < child_hists.size(); ++j) {
      FAIRRANK_ASSIGN_OR_RETURN(
          double d, divergence_->Distance(child_hists[i], child_hists[j]));
      sum += d;
      ++pairs;
    }
  }
  // Child-sibling pairs.
  for (const Histogram& ch : child_hists) {
    for (const Histogram& sh : sibling_hists) {
      FAIRRANK_ASSIGN_OR_RETURN(double d, divergence_->Distance(ch, sh));
      sum += d;
      ++pairs;
    }
  }
  if (options_.sibling_comparison == SiblingComparison::kAllPairs) {
    // Also count sibling-sibling pairs: the result is then the average
    // pairwise unfairness of (children ∪ siblings).
    for (size_t i = 0; i < sibling_hists.size(); ++i) {
      for (size_t j = i + 1; j < sibling_hists.size(); ++j) {
        FAIRRANK_ASSIGN_OR_RETURN(
            double d,
            divergence_->Distance(sibling_hists[i], sibling_hists[j]));
        sum += d;
        ++pairs;
      }
    }
  }
  if (pairs == 0) return 0.0;
  return sum / static_cast<double>(pairs);
}

}  // namespace fairrank
