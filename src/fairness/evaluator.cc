#include "fairness/evaluator.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>

#include "common/fault_injection.h"
#include "common/parallel.h"
#include "common/telemetry.h"

namespace fairrank {

namespace {

/// Always-on pipeline counters (one relaxed atomic add per operation —
/// cheap next to the histogram/EMD work itself, and exact regardless of
/// cache sharing because they count at the source). `/metrics` serves them
/// as the per-phase pipeline families.
struct PipelineMetrics {
  MetricCounter* histogram_builds;
  MetricCounter* histogram_cache_hits;
  MetricCounter* emd_computations;
  MetricCounter* emd_cache_hits;

  static const PipelineMetrics& Get() {
    static const PipelineMetrics* metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      auto* m = new PipelineMetrics();
      m->histogram_builds = registry.GetCounter(
          "fairrank_pipeline_histogram_builds_total",
          "Per-partition score histograms actually built (cache misses)");
      m->histogram_cache_hits = registry.GetCounter(
          "fairrank_pipeline_histogram_cache_hits_total",
          "Histogram requests served from the evaluator cache");
      m->emd_computations = registry.GetCounter(
          "fairrank_pipeline_emd_computations_total",
          "Pairwise divergences actually computed (cache misses)");
      m->emd_cache_hits = registry.GetCounter(
          "fairrank_pipeline_emd_cache_hits_total",
          "Pairwise divergences served from the evaluator cache");
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

StatusOr<UnfairnessEvaluator> UnfairnessEvaluator::Make(
    const Table* table, std::vector<double> scores,
    const EvaluatorOptions& options) {
  if (table == nullptr) {
    return Status::InvalidArgument("table is null");
  }
  if (scores.size() != table->num_rows()) {
    return Status::InvalidArgument(
        "got " + std::to_string(scores.size()) + " scores for " +
        std::to_string(table->num_rows()) + " rows");
  }
  if (options.num_bins < 1) {
    return Status::InvalidArgument("num_bins must be >= 1");
  }
  if (!(options.score_lo < options.score_hi)) {
    return Status::InvalidArgument("empty score range");
  }
  size_t num_out_of_range = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!std::isfinite(scores[i])) {
      return Status::InvalidArgument("score " + std::to_string(i) +
                                     " is not finite");
    }
    if (scores[i] < options.score_lo || scores[i] > options.score_hi) {
      ++num_out_of_range;
      if (options.out_of_range == OutOfRangePolicy::kReject) {
        return Status::InvalidArgument(
            "score " + std::to_string(i) + " (" + std::to_string(scores[i]) +
            ") is outside [" + std::to_string(options.score_lo) + ", " +
            std::to_string(options.score_hi) +
            "] and out_of_range is kReject");
      }
    }
  }
  FAIRRANK_ASSIGN_OR_RETURN(std::unique_ptr<Divergence> divergence,
                            MakeDivergenceByName(options.divergence));
  return UnfairnessEvaluator(table, std::move(scores), options,
                             std::move(divergence), num_out_of_range);
}

std::shared_ptr<const Histogram> UnfairnessEvaluator::CachedHistogram(
    const Partition& partition) const {
  const uint64_t fp = PartitionFingerprint(partition);
  if (std::shared_ptr<const Histogram> hit = cache_->FindHistogram(fp)) {
    PipelineMetrics::Get().histogram_cache_hits->Increment();
    if (options_.trace != nullptr) {
      options_.trace->Event("cache-hit", options_.trace_parent);
    }
    return hit;
  }
  const uint64_t start_ns =
      options_.trace != nullptr ? TraceNowNanos() : 0;
  auto built = std::make_shared<Histogram>(options_.num_bins,
                                           options_.score_lo,
                                           options_.score_hi);
  for (size_t row : partition.rows) built->Add(scores_[row]);
  std::shared_ptr<const Histogram> result = std::move(built);
  cache_->InsertHistogram(fp, result);
  PipelineMetrics::Get().histogram_builds->Increment();
  if (options_.trace != nullptr) {
    options_.trace->AddEvent("histogram", options_.trace_parent,
                             TraceNowNanos() - start_ns);
  }
  return result;
}

StatusOr<double> UnfairnessEvaluator::CachedDistance(uint64_t fp_a,
                                                     const Histogram& a,
                                                     uint64_t fp_b,
                                                     const Histogram& b) const {
  double cached = 0.0;
  if (cache_->FindDivergence(fp_a, fp_b, &cached)) {
    PipelineMetrics::Get().emd_cache_hits->Increment();
    if (options_.trace != nullptr) {
      options_.trace->Event("cache-hit", options_.trace_parent);
    }
    return cached;
  }
  if (fault::OnDivergenceEval()) {
    return Status::Internal("fault injection: divergence evaluation failed");
  }
  const uint64_t start_ns =
      options_.trace != nullptr ? TraceNowNanos() : 0;
  StatusOr<double> d = divergence_->Distance(a, b);
  if (d.ok()) cache_->InsertDivergence(fp_a, fp_b, *d);
  PipelineMetrics::Get().emd_computations->Increment();
  if (options_.trace != nullptr) {
    options_.trace->AddEvent("emd", options_.trace_parent,
                             TraceNowNanos() - start_ns);
  }
  return d;
}

Histogram UnfairnessEvaluator::BuildHistogram(
    const Partition& partition) const {
  return *CachedHistogram(partition);
}

StatusOr<double> UnfairnessEvaluator::Distance(const Partition& a,
                                               const Partition& b) const {
  std::shared_ptr<const Histogram> ha = CachedHistogram(a);
  std::shared_ptr<const Histogram> hb = CachedHistogram(b);
  return CachedDistance(PartitionFingerprint(a), *ha, PartitionFingerprint(b),
                        *hb);
}

StatusOr<std::vector<double>> UnfairnessEvaluator::PairwiseDistances(
    const Partitioning& partitioning) const {
  std::vector<double> distances;
  if (partitioning.size() < 2) return distances;
  const size_t k = partitioning.size();
  std::vector<uint64_t> fps(k);
  std::vector<std::shared_ptr<const Histogram>> hists(k);
  for (size_t i = 0; i < k; ++i) {
    fps[i] = PartitionFingerprint(partitioning[i]);
    hists[i] = CachedHistogram(partitioning[i]);
  }

  const size_t num_pairs = k * (k - 1) / 2;
  // Flatten the upper triangle so pair m maps to (i, j) and distances land
  // in a fixed slot — the final reduction order is deterministic regardless
  // of thread count.
  distances.assign(num_pairs, 0.0);
  Status first_error;
  std::mutex error_mutex;
  // Once any pair fails, sibling chunks stop at their next iteration instead
  // of burning through the rest of their range — the result is discarded
  // anyway.
  std::atomic<bool> abort{false};
  bool complete = true;
  try {
    complete = ParallelForCancellable(
        num_pairs, options_.num_threads, options_.cancel, options_.deadline,
        [&](size_t begin, size_t end) {
          // Locate (i, j) for `begin`, then walk forward.
          size_t m = 0;
          size_t i = 0;
          size_t j = 1;
          // Advance row-by-row; k is small relative to pair count.
          while (m + (k - 1 - i) <= begin) {
            m += k - 1 - i;
            ++i;
          }
          j = i + 1 + (begin - m);
          for (size_t p = begin; p < end; ++p) {
            if (abort.load(std::memory_order_relaxed)) return;
            StatusOr<double> d =
                CachedDistance(fps[i], *hists[i], fps[j], *hists[j]);
            if (!d.ok()) {
              abort.store(true, std::memory_order_relaxed);
              std::lock_guard<std::mutex> lock(error_mutex);
              if (first_error.ok()) first_error = d.status();
              return;
            }
            distances[p] = *d;
            if (++j == k) {
              ++i;
              j = i + 1;
            }
          }
        });
  } catch (const std::exception& e) {
    // Worker exceptions (including injected faults) are captured by
    // ParallelFor and rethrown here; keep them inside the Status API.
    return Status::Internal(std::string("pairwise unfairness worker: ") +
                            e.what());
  }
  FAIRRANK_RETURN_NOT_OK(first_error);
  if (!complete) {
    return options_.cancel.cancel_requested()
               ? Status::Cancelled("pairwise unfairness cancelled")
               : Status::DeadlineExceeded(
                     "deadline expired during pairwise unfairness");
  }
  return distances;
}

StatusOr<double> UnfairnessEvaluator::AveragePairwiseUnfairness(
    const Partitioning& partitioning) const {
  if (partitioning.size() < 2) return 0.0;
  FAIRRANK_ASSIGN_OR_RETURN(std::vector<double> distances,
                            PairwiseDistances(partitioning));
  double sum = 0.0;
  for (double d : distances) sum += d;
  return sum / static_cast<double>(distances.size());
}

StatusOr<std::vector<DivergentPair>> TopDivergentPairs(
    const UnfairnessEvaluator& eval, const Partitioning& partitioning,
    size_t k) {
  std::vector<DivergentPair> pairs;
  if (partitioning.size() < 2 || k == 0) return pairs;
  // Same flattened upper triangle as AveragePairwiseUnfairness — when the
  // audit already computed it, every lookup below is a cache hit.
  FAIRRANK_ASSIGN_OR_RETURN(std::vector<double> distances,
                            eval.PairwiseDistances(partitioning));
  pairs.reserve(distances.size());
  size_t m = 0;
  for (size_t i = 0; i < partitioning.size(); ++i) {
    for (size_t j = i + 1; j < partitioning.size(); ++j) {
      pairs.push_back({i, j, distances[m++]});
    }
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const DivergentPair& a, const DivergentPair& b) {
                     return a.distance > b.distance;
                   });
  if (pairs.size() > k) pairs.resize(k);
  return pairs;
}

StatusOr<double> UnfairnessEvaluator::AverageWithSiblings(
    const Partition& current, const std::vector<Partition>& siblings) const {
  if (siblings.empty()) return 0.0;
  const uint64_t current_fp = PartitionFingerprint(current);
  std::shared_ptr<const Histogram> current_hist = CachedHistogram(current);
  double sum = 0.0;
  for (const Partition& s : siblings) {
    std::shared_ptr<const Histogram> sh = CachedHistogram(s);
    FAIRRANK_ASSIGN_OR_RETURN(
        double d, CachedDistance(current_fp, *current_hist,
                                 PartitionFingerprint(s), *sh));
    sum += d;
  }
  return sum / static_cast<double>(siblings.size());
}

StatusOr<double> UnfairnessEvaluator::AverageChildrenWithSiblings(
    const std::vector<Partition>& children,
    const std::vector<Partition>& siblings) const {
  std::vector<uint64_t> child_fps;
  std::vector<std::shared_ptr<const Histogram>> child_hists;
  child_fps.reserve(children.size());
  child_hists.reserve(children.size());
  for (const Partition& c : children) {
    child_fps.push_back(PartitionFingerprint(c));
    child_hists.push_back(CachedHistogram(c));
  }
  std::vector<uint64_t> sibling_fps;
  std::vector<std::shared_ptr<const Histogram>> sibling_hists;
  sibling_fps.reserve(siblings.size());
  sibling_hists.reserve(siblings.size());
  for (const Partition& s : siblings) {
    sibling_fps.push_back(PartitionFingerprint(s));
    sibling_hists.push_back(CachedHistogram(s));
  }

  double sum = 0.0;
  size_t pairs = 0;
  // Child-child pairs.
  for (size_t i = 0; i < child_hists.size(); ++i) {
    for (size_t j = i + 1; j < child_hists.size(); ++j) {
      FAIRRANK_ASSIGN_OR_RETURN(
          double d, CachedDistance(child_fps[i], *child_hists[i],
                                   child_fps[j], *child_hists[j]));
      sum += d;
      ++pairs;
    }
  }
  // Child-sibling pairs.
  for (size_t i = 0; i < child_hists.size(); ++i) {
    for (size_t j = 0; j < sibling_hists.size(); ++j) {
      FAIRRANK_ASSIGN_OR_RETURN(
          double d, CachedDistance(child_fps[i], *child_hists[i],
                                   sibling_fps[j], *sibling_hists[j]));
      sum += d;
      ++pairs;
    }
  }
  if (options_.sibling_comparison == SiblingComparison::kAllPairs) {
    // Also count sibling-sibling pairs: the result is then the average
    // pairwise unfairness of (children ∪ siblings).
    for (size_t i = 0; i < sibling_hists.size(); ++i) {
      for (size_t j = i + 1; j < sibling_hists.size(); ++j) {
        FAIRRANK_ASSIGN_OR_RETURN(
            double d, CachedDistance(sibling_fps[i], *sibling_hists[i],
                                     sibling_fps[j], *sibling_hists[j]));
        sum += d;
        ++pairs;
      }
    }
  }
  if (pairs == 0) return 0.0;
  return sum / static_cast<double>(pairs);
}

}  // namespace fairrank
