#include "fairness/eval_cache.h"

#include <algorithm>

#include "common/telemetry.h"
#include "common/trace.h"

namespace fairrank {

namespace {

/// Approximate per-entry overheads (node + bucket bookkeeping of the
/// unordered_maps). The budget proxy is deliberately coarse; what matters is
/// that growth is monotone and roughly proportional to real usage.
constexpr uint64_t kHistogramEntryOverhead = 96;
constexpr uint64_t kDivergenceEntryBytes = 64;

/// Budget checkpoints are batched so the cache does not spam the fault-
/// injection / budget layer with one CheckMemory per tiny entry.
constexpr uint64_t kChargeBatchBytes = 64 * 1024;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HistogramEntryBytes(const Histogram& histogram) {
  return kHistogramEntryOverhead + sizeof(Histogram) +
         histogram.counts().size() * sizeof(double);
}

}  // namespace

void EvalCacheStats::Add(const EvalCacheStats& other) {
  histogram_hits += other.histogram_hits;
  histogram_misses += other.histogram_misses;
  divergence_hits += other.divergence_hits;
  divergence_misses += other.divergence_misses;
  evictions += other.evictions;
  bytes_used += other.bytes_used;
  entries += other.entries;
}

size_t EvaluatorCache::PairKeyHash::operator()(const PairKey& key) const {
  return static_cast<size_t>(SplitMix64(key.lo ^ SplitMix64(key.hi)));
}

EvaluatorCache::EvaluatorCache(bool enabled, uint64_t max_bytes)
    : enabled_(enabled), max_bytes_(max_bytes) {}

void EvaluatorCache::AttachContext(const ExecutionContext& context) {
  std::lock_guard<std::mutex> lock(mutex_);
  context_ = context;
}

bool EvaluatorCache::ReserveLocked(uint64_t incoming_bytes) {
  if (budget_stopped_) return false;
  if (max_bytes_ > 0 && incoming_bytes > max_bytes_) return false;
  if (max_bytes_ > 0 && stats_.bytes_used + incoming_bytes > max_bytes_) {
    // Epoch eviction: drop everything rather than tracking per-entry LRU —
    // deterministic, O(1) amortized, and the hot working set repopulates
    // within one selection round.
    const uint64_t evicted = histograms_.size() + divergences_.size();
    stats_.evictions += evicted;
    histograms_.clear();
    divergences_.clear();
    stats_.bytes_used = 0;
    stats_.entries = 0;
    static MetricCounter* evictions = MetricsRegistry::Global().GetCounter(
        "fairrank_pipeline_cache_evictions_total",
        "Evaluator-cache entries dropped by epoch evictions");
    evictions->Increment(evicted);
    // The attached context carries the request's trace (if any): an epoch
    // eviction is exactly the kind of mid-request cliff a span dump should
    // show. The trace mutex is a leaf — safe under the cache mutex.
    if (context_.trace() != nullptr) {
      context_.trace()->Event("cache-evict", context_.trace_parent());
    }
  }
  pending_charge_ += incoming_bytes;
  if (pending_charge_ >= kChargeBatchBytes) {
    ExhaustionReason why = context_.CheckMemory(pending_charge_);
    pending_charge_ = 0;
    if (why != ExhaustionReason::kNone) {
      // The budget (or an injected allocation fault) tripped: stop growing.
      // The search sees the latched exhaustion at its next checkpoint and
      // truncates gracefully; cached values already stored remain valid.
      budget_stopped_ = true;
      return false;
    }
  }
  return true;
}

std::shared_ptr<const Histogram> EvaluatorCache::FindHistogram(
    uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (enabled_ && fingerprint != 0) {
    auto it = histograms_.find(fingerprint);
    if (it != histograms_.end()) {
      ++stats_.histogram_hits;
      return it->second;
    }
  }
  ++stats_.histogram_misses;
  return nullptr;
}

void EvaluatorCache::InsertHistogram(
    uint64_t fingerprint, std::shared_ptr<const Histogram> histogram) {
  if (!enabled_ || fingerprint == 0 || histogram == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t bytes = HistogramEntryBytes(*histogram);
  if (!ReserveLocked(bytes)) return;
  if (histograms_.emplace(fingerprint, std::move(histogram)).second) {
    stats_.bytes_used += bytes;
    ++stats_.entries;
  }
}

bool EvaluatorCache::FindDivergence(uint64_t fp_a, uint64_t fp_b,
                                    double* value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (enabled_ && fp_a != 0 && fp_b != 0) {
    PairKey key{std::min(fp_a, fp_b), std::max(fp_a, fp_b)};
    auto it = divergences_.find(key);
    if (it != divergences_.end()) {
      ++stats_.divergence_hits;
      *value = it->second;
      return true;
    }
  }
  ++stats_.divergence_misses;
  return false;
}

void EvaluatorCache::InsertDivergence(uint64_t fp_a, uint64_t fp_b,
                                      double value) {
  if (!enabled_ || fp_a == 0 || fp_b == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ReserveLocked(kDivergenceEntryBytes)) return;
  PairKey key{std::min(fp_a, fp_b), std::max(fp_a, fp_b)};
  if (divergences_.emplace(key, value).second) {
    stats_.bytes_used += kDivergenceEntryBytes;
    ++stats_.entries;
  }
}

EvalCacheStats EvaluatorCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace fairrank
