#ifndef FAIRRANK_FAIRNESS_UNBALANCED_H_
#define FAIRRANK_FAIRNESS_UNBALANCED_H_

#include <memory>

#include "fairness/algorithm.h"

namespace fairrank {

/// Algorithm 2 of the paper (`unbalanced`): after an initial global split,
/// recursively decides per partition whether to split further, comparing the
/// partition's average divergence with its siblings against that of its
/// potential children with the same siblings. Produces an unbalanced
/// partitioning tree — different leaves may use different attributes.
///
/// `name` lets the registry reuse this implementation for "unbalanced" and
/// "r-unbalanced".
std::unique_ptr<PartitioningAlgorithm> MakeUnbalancedAlgorithm(
    std::string name, std::unique_ptr<AttributeSelector> selector);

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_UNBALANCED_H_
