#ifndef FAIRRANK_FAIRNESS_ALGORITHM_H_
#define FAIRRANK_FAIRNESS_ALGORITHM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "fairness/evaluator.h"
#include "fairness/partition.h"

namespace fairrank {

/// Strategy for picking the next attribute to split on. The paper's
/// algorithms pick the *worst* attribute (highest resulting average pairwise
/// EMD); the r-balanced / r-unbalanced baselines pick uniformly at random.
///
/// Both methods return a *position into `attrs`* (not an attribute index),
/// so callers can erase the chosen entry.
class AttributeSelector {
 public:
  virtual ~AttributeSelector() = default;

  /// Picks the attribute for a global split of `current` (Algorithm 1's
  /// worstAttribute(current, f, A)). `attrs` must be non-empty.
  virtual StatusOr<size_t> SelectGlobal(const UnfairnessEvaluator& eval,
                                        const Partitioning& current,
                                        const std::vector<size_t>& attrs) = 0;

  /// Picks the attribute for a local split of one partition against its
  /// siblings (Algorithm 2's worstAttribute(current, f, A)). `attrs` must be
  /// non-empty.
  virtual StatusOr<size_t> SelectLocal(const UnfairnessEvaluator& eval,
                                       const Partition& current,
                                       const std::vector<Partition>& siblings,
                                       const std::vector<size_t>& attrs) = 0;
};

/// Greedy selector: tries every remaining attribute and returns the one
/// whose split yields the highest average pairwise divergence (globally for
/// SelectGlobal; children-vs-siblings for SelectLocal). Ties break toward
/// the earliest position, keeping runs deterministic.
std::unique_ptr<AttributeSelector> MakeWorstAttributeSelector();

/// Uniform-random selector for the r-* baselines. Deterministic given the
/// seed.
std::unique_ptr<AttributeSelector> MakeRandomAttributeSelector(uint64_t seed);

/// A partition-search algorithm. Implementations must return a valid full
/// disjoint partitioning of the evaluator's table (IsValidPartitioning).
class PartitioningAlgorithm {
 public:
  virtual ~PartitioningAlgorithm() = default;

  /// Stable identifier, e.g. "balanced".
  virtual std::string Name() const = 0;

  /// Searches for an unfair partitioning over the protected attributes
  /// `attrs` (indices into the evaluator's table schema). `attrs` may be
  /// consumed in any order; passing an empty list yields the trivial
  /// root partitioning.
  virtual StatusOr<Partitioning> Run(const UnfairnessEvaluator& eval,
                                     std::vector<size_t> attrs) = 0;
};

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_ALGORITHM_H_
