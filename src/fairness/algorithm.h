#ifndef FAIRRANK_FAIRNESS_ALGORITHM_H_
#define FAIRRANK_FAIRNESS_ALGORITHM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/rng.h"
#include "common/status.h"
#include "fairness/evaluator.h"
#include "fairness/partition.h"

namespace fairrank {

/// Strategy for picking the next attribute to split on. The paper's
/// algorithms pick the *worst* attribute (highest resulting average pairwise
/// EMD); the r-balanced / r-unbalanced baselines pick uniformly at random.
///
/// Both methods return a *position into `attrs`* (not an attribute index),
/// so callers can erase the chosen entry.
class AttributeSelector {
 public:
  virtual ~AttributeSelector() = default;

  /// Picks the attribute for a global split of `current` (Algorithm 1's
  /// worstAttribute(current, f, A)). `attrs` must be non-empty.
  virtual StatusOr<size_t> SelectGlobal(const UnfairnessEvaluator& eval,
                                        const Partitioning& current,
                                        const std::vector<size_t>& attrs) = 0;

  /// Picks the attribute for a local split of one partition against its
  /// siblings (Algorithm 2's worstAttribute(current, f, A)). `attrs` must be
  /// non-empty.
  virtual StatusOr<size_t> SelectLocal(const UnfairnessEvaluator& eval,
                                       const Partition& current,
                                       const std::vector<Partition>& siblings,
                                       const std::vector<size_t>& attrs) = 0;
};

/// Greedy selector: tries every remaining attribute and returns the one
/// whose split yields the highest average pairwise divergence (globally for
/// SelectGlobal; children-vs-siblings for SelectLocal). Ties break toward
/// the earliest position, keeping runs deterministic.
std::unique_ptr<AttributeSelector> MakeWorstAttributeSelector();

/// Uniform-random selector for the r-* baselines. Deterministic given the
/// seed.
std::unique_ptr<AttributeSelector> MakeRandomAttributeSelector(uint64_t seed);

/// Outcome of a bounded partition search. Always carries a valid full
/// disjoint partitioning; `truncated` marks a best-effort answer produced
/// under deadline, cancellation, or budget exhaustion rather than a
/// completed search.
struct SearchResult {
  Partitioning partitioning;
  /// True when the search stopped early and returned its best-so-far.
  bool truncated = false;
  /// Why it stopped early; kNone when not truncated.
  ExhaustionReason reason = ExhaustionReason::kNone;
  /// Split / candidate-evaluation checkpoints passed — the work actually
  /// done, comparable across algorithms and against --max-nodes.
  uint64_t nodes_visited = 0;
  /// Evaluator-cache counters over the search (hits, misses = actual
  /// histogram builds / divergence computations, evictions). Filled by
  /// FairnessAuditor and bench harnesses from the search evaluator after
  /// the algorithm returns; algorithms themselves leave it zeroed.
  EvalCacheStats cache;
};

/// A partition-search algorithm. Implementations must return a valid full
/// disjoint partitioning of the evaluator's table (IsValidPartitioning) —
/// even when truncated: on deadline, cancellation, or budget exhaustion they
/// degrade gracefully to the best (or deepest) valid partitioning found so
/// far instead of failing. A non-OK status is reserved for real errors
/// (invalid arguments, internal faults), never for exhaustion.
class PartitioningAlgorithm {
 public:
  virtual ~PartitioningAlgorithm() = default;

  /// Stable identifier, e.g. "balanced".
  virtual std::string Name() const = 0;

  /// Searches for an unfair partitioning over the protected attributes
  /// `attrs` (indices into the evaluator's table schema), checking `context`
  /// at split and evaluation boundaries. `attrs` may be consumed in any
  /// order; passing an empty list yields the trivial root partitioning.
  virtual StatusOr<SearchResult> Run(const UnfairnessEvaluator& eval,
                                     std::vector<size_t> attrs,
                                     const ExecutionContext& context) = 0;

  /// Unbounded convenience: runs with ExecutionContext::Unbounded() and
  /// yields just the partitioning (never truncated).
  StatusOr<Partitioning> Run(const UnfairnessEvaluator& eval,
                             std::vector<size_t> attrs);
};

/// Marks `result` truncated for `reason` and returns it (no-op for kNone).
SearchResult TruncatedResult(SearchResult result, ExhaustionReason reason);

/// Degradation helper for a sub-step that failed with `status`: exhaustion
/// statuses (deadline / cancelled / budget) convert the best-so-far `result`
/// into a truncated success; real errors propagate unchanged.
StatusOr<SearchResult> DegradeOnExhaustion(SearchResult result,
                                           const Status& status);

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_ALGORITHM_H_
