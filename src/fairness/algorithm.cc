#include "fairness/algorithm.h"

namespace fairrank {

StatusOr<Partitioning> PartitioningAlgorithm::Run(
    const UnfairnessEvaluator& eval, std::vector<size_t> attrs) {
  FAIRRANK_ASSIGN_OR_RETURN(
      SearchResult result,
      Run(eval, std::move(attrs), ExecutionContext::Unbounded()));
  return std::move(result.partitioning);
}

SearchResult TruncatedResult(SearchResult result, ExhaustionReason reason) {
  if (reason != ExhaustionReason::kNone) {
    result.truncated = true;
    result.reason = reason;
  }
  return result;
}

StatusOr<SearchResult> DegradeOnExhaustion(SearchResult result,
                                           const Status& status) {
  if (!IsExhaustion(status)) return status;
  return TruncatedResult(std::move(result),
                         ExhaustionReasonFromStatus(status));
}

}  // namespace fairrank
