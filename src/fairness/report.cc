#include "fairness/report.h"

#include <algorithm>

#include "common/str_util.h"

namespace fairrank {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  size_t num_columns = header_.size();
  for (const auto& row : rows_) num_columns = std::max(num_columns, row.size());
  std::vector<size_t> widths(num_columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += "  ";
      line += row[i];
      if (i + 1 < row.size()) {
        line.append(widths[i] - row[i].size(), ' ');
      }
    }
    line += "\n";
    return line;
  };

  std::string out;
  if (!header_.empty()) {
    out += render(header_);
    size_t rule_width = 0;
    for (size_t i = 0; i < num_columns; ++i) {
      rule_width += widths[i] + (i > 0 ? 2 : 0);
    }
    out.append(rule_width, '-');
    out += "\n";
  }
  for (const auto& row : rows_) out += render(row);
  return out;
}

std::string FormatAuditReport(const AuditResult& result,
                              const ReportOptions& options) {
  std::string out;
  out += "Audit: " + result.scoring_function + " via " + result.algorithm +
         "\n";
  out += "  unfairness (avg pairwise divergence): " +
         FormatDouble(result.unfairness, 4) + "\n";
  out += "  runtime: " + FormatDouble(result.seconds, 4) + " s\n";
  if (result.nodes_visited > 0) {
    out += "  nodes visited: " + std::to_string(result.nodes_visited);
    if (result.nodes_per_sec > 0.0) {
      out += " (" + FormatDouble(result.nodes_per_sec, 0) + " nodes/s)";
    }
    out += "\n";
  }
  // Cache and range diagnostics print only when the audit recorded any, so
  // hand-built results render exactly as before.
  if (result.cache.histogram_lookups() > 0 ||
      result.cache.divergence_lookups() > 0) {
    out += "  cache: histograms " +
           std::to_string(result.cache.histogram_hits) + "/" +
           std::to_string(result.cache.histogram_lookups()) + " hits (" +
           FormatDouble(100.0 * result.cache.histogram_hit_rate(), 1) +
           "%), divergences " + std::to_string(result.cache.divergence_hits) +
           "/" + std::to_string(result.cache.divergence_lookups()) +
           " hits (" +
           FormatDouble(100.0 * result.cache.divergence_hit_rate(), 1) +
           "%), evictions " + std::to_string(result.cache.evictions) + "\n";
  }
  if (result.out_of_range_scores > 0) {
    out += "  warning: " + std::to_string(result.out_of_range_scores) +
           " scores fell outside the histogram range and were clamped into "
           "edge bins\n";
  }
  if (result.truncated) {
    out += "  truncated: search stopped early (" +
           std::string(ExhaustionReasonToString(result.exhaustion_reason)) +
           " after " + std::to_string(result.nodes_visited) +
           " nodes); showing best partitioning found so far\n";
  }
  out += "  partitions: " + std::to_string(result.partitions.size()) + "\n";
  out += "  attributes used: " +
         (result.attributes_used.empty()
              ? std::string("<none>")
              : Join(result.attributes_used, ", ")) +
         "\n";
  if (!result.worst_pairs.empty()) {
    out += "  most divergent pairs:\n";
    for (const DivergentPairSummary& pair : result.worst_pairs) {
      out += "    " + pair.label_a + "  vs  " + pair.label_b + "  (" +
             FormatDouble(pair.distance, 3) + ")\n";
    }
  }
  out += "\n";

  TextTable table;
  table.SetHeader({"partition", "size", "mean score"});
  size_t limit = options.max_partitions == 0
                     ? result.partitions.size()
                     : std::min(options.max_partitions,
                                result.partitions.size());
  for (size_t i = 0; i < limit; ++i) {
    const PartitionSummary& p = result.partitions[i];
    table.AddRow({p.label, std::to_string(p.size),
                  FormatDouble(p.mean_score, 3)});
  }
  out += table.ToString();
  if (limit < result.partitions.size()) {
    out += "... (" + std::to_string(result.partitions.size() - limit) +
           " more partitions)\n";
  }

  if (options.include_histograms) {
    for (size_t i = 0; i < limit; ++i) {
      const PartitionSummary& p = result.partitions[i];
      out += "\n" + p.label + ":\n" + p.histogram.ToAscii();
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string FormatAuditJson(const AuditResult& result) {
  std::string out = "{";
  out += "\"algorithm\":\"" + JsonEscape(result.algorithm) + "\",";
  out += "\"scoring_function\":\"" + JsonEscape(result.scoring_function) +
         "\",";
  out += "\"unfairness\":" + FormatDouble(result.unfairness, 6) + ",";
  out += "\"seconds\":" + FormatDouble(result.seconds, 6) + ",";
  out += std::string("\"truncated\":") +
         (result.truncated ? "true" : "false") + ",";
  out += "\"exhaustion_reason\":\"" +
         std::string(ExhaustionReasonToString(result.exhaustion_reason)) +
         "\",";
  out += "\"nodes_visited\":" + std::to_string(result.nodes_visited) + ",";
  out += "\"nodes_per_sec\":" + FormatDouble(result.nodes_per_sec, 1) + ",";
  out += "\"out_of_range_scores\":" +
         std::to_string(result.out_of_range_scores) + ",";
  out += "\"cache\":{";
  out += "\"histogram_hits\":" + std::to_string(result.cache.histogram_hits) +
         ",";
  out += "\"histogram_misses\":" +
         std::to_string(result.cache.histogram_misses) + ",";
  out += "\"divergence_hits\":" +
         std::to_string(result.cache.divergence_hits) + ",";
  out += "\"divergence_misses\":" +
         std::to_string(result.cache.divergence_misses) + ",";
  out += "\"evictions\":" + std::to_string(result.cache.evictions) + ",";
  out += "\"bytes_used\":" + std::to_string(result.cache.bytes_used) + "},";
  out += "\"attributes_used\":[";
  for (size_t i = 0; i < result.attributes_used.size(); ++i) {
    if (i > 0) out += ",";
    // Stepwise append: chained operator+ trips GCC 12's -Wrestrict false
    // positive (PR105651) under -Werror.
    out += "\"";
    out += JsonEscape(result.attributes_used[i]);
    out += "\"";
  }
  out += "],\"partitions\":[";
  for (size_t i = 0; i < result.partitions.size(); ++i) {
    const PartitionSummary& p = result.partitions[i];
    if (i > 0) out += ",";
    out += "{\"label\":\"" + JsonEscape(p.label) + "\",";
    out += "\"size\":" + std::to_string(p.size) + ",";
    out += "\"mean_score\":" + FormatDouble(p.mean_score, 6) + ",";
    out += "\"histogram\":[";
    for (size_t b = 0; b < p.histogram.counts().size(); ++b) {
      if (b > 0) out += ",";
      out += FormatDouble(p.histogram.counts()[b], 0);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string FormatAggregateAuditReport(const CellStore& store,
                                       const AggregateAuditResult& result,
                                       const AggregateReportInfo& info,
                                       const ReportOptions& options) {
  std::string out;
  out += "aggregate audit (cell store)\n";
  out += "  function:       " + info.scoring_function + "\n";
  out += "  divergence:     " + info.divergence + "\n";
  out += "  unfairness:     " + FormatDouble(result.unfairness, 6) + "\n";
  out += "  observations:   " + std::to_string(store.num_observations()) +
         " in " + std::to_string(store.num_cells()) + " cells\n";
  out += "  ingest:         " + FormatDouble(info.ingest_seconds, 3) + "s (" +
         std::to_string(info.ingest_threads) + " thread" +
         (info.ingest_threads == 1 ? "" : "s") + ")\n";
  out += "  audit:          " + FormatDouble(info.audit_seconds, 3) + "s\n";
  std::vector<std::string> attr_names;
  attr_names.reserve(result.attributes_used.size());
  for (size_t index : result.attributes_used) {
    attr_names.push_back(store.specs()[index].name());
  }
  out += "  attributes:     " +
         (attr_names.empty() ? std::string("(none)") : Join(attr_names, ", ")) +
         "\n\n";

  TextTable table;
  table.SetHeader({"partition", "size"});
  size_t limit = options.max_partitions == 0
                     ? result.partitions.size()
                     : std::min(options.max_partitions,
                                result.partitions.size());
  for (size_t i = 0; i < limit; ++i) {
    const AggregatePartition& p = result.partitions[i];
    table.AddRow({AggregatePartitionLabel(store.specs(), p),
                  std::to_string(p.size)});
  }
  out += table.ToString();
  if (limit < result.partitions.size()) {
    out += "... (" + std::to_string(result.partitions.size() - limit) +
           " more partitions)\n";
  }
  if (options.include_histograms) {
    for (size_t i = 0; i < limit; ++i) {
      const AggregatePartition& p = result.partitions[i];
      out += "\n" + AggregatePartitionLabel(store.specs(), p) + ":\n" +
             p.histogram.ToAscii();
    }
  }
  return out;
}

std::string FormatAggregateAuditJson(const CellStore& store,
                                     const AggregateAuditResult& result,
                                     const AggregateReportInfo& info) {
  std::string out = "{";
  out += "\"mode\":\"aggregate\",";
  out += "\"scoring_function\":\"" + JsonEscape(info.scoring_function) +
         "\",";
  out += "\"divergence\":\"" + JsonEscape(info.divergence) + "\",";
  out += "\"unfairness\":" + FormatDouble(result.unfairness, 6) + ",";
  out += "\"ingest_threads\":" + std::to_string(info.ingest_threads) + ",";
  out += "\"ingest_seconds\":" + FormatDouble(info.ingest_seconds, 6) + ",";
  out += "\"audit_seconds\":" + FormatDouble(info.audit_seconds, 6) + ",";
  out += "\"num_cells\":" + std::to_string(store.num_cells()) + ",";
  out += "\"num_observations\":" + std::to_string(store.num_observations()) +
         ",";
  out += "\"attributes_used\":[";
  for (size_t i = 0; i < result.attributes_used.size(); ++i) {
    if (i > 0) out += ",";
    // Stepwise append: chained operator+ trips GCC 12's -Wrestrict false
    // positive (PR105651) under -Werror.
    out += "\"";
    out += JsonEscape(store.specs()[result.attributes_used[i]].name());
    out += "\"";
  }
  out += "],\"partitions\":[";
  for (size_t i = 0; i < result.partitions.size(); ++i) {
    const AggregatePartition& p = result.partitions[i];
    if (i > 0) out += ",";
    out += "{\"label\":\"" +
           JsonEscape(AggregatePartitionLabel(store.specs(), p)) + "\",";
    out += "\"size\":" + std::to_string(p.size) + ",";
    out += "\"histogram\":[";
    for (size_t b = 0; b < p.histogram.counts().size(); ++b) {
      if (b > 0) out += ",";
      out += FormatDouble(p.histogram.counts()[b], 0);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string FormatAuditCsvRow(const AuditResult& result) {
  // RFC-4180: every field is escaped — algorithm and function names are
  // caller-supplied and may contain commas or quotes, and the |-joined
  // attribute list is escaped as one field.
  std::vector<std::string> fields = {
      CsvEscape(result.algorithm),
      CsvEscape(result.scoring_function),
      FormatDouble(result.unfairness, 6),
      FormatDouble(result.seconds, 6),
      std::to_string(result.partitions.size()),
      CsvEscape(Join(result.attributes_used, "|")),
  };
  return Join(fields, ",");
}

}  // namespace fairrank
