#include "fairness/beam.h"

#include <algorithm>

#include "common/trace.h"
#include "fairness/splitter.h"

namespace fairrank {

namespace {

/// One beam entry: a partitioning, the attributes its subtree may still
/// use, and its unfairness score.
struct BeamEntry {
  Partitioning partitioning;
  std::vector<size_t> remaining;
  double unfairness = 0.0;
};

class BeamAlgorithm : public PartitioningAlgorithm {
 public:
  explicit BeamAlgorithm(int width) : width_(width) {}

  std::string Name() const override { return "beam"; }

  using PartitioningAlgorithm::Run;

  StatusOr<SearchResult> Run(const UnfairnessEvaluator& eval,
                             std::vector<size_t> attrs,
                             const ExecutionContext& context) override {
    if (width_ < 1) {
      return Status::InvalidArgument("beam width must be >= 1");
    }
    SearchResult result;
    BeamEntry root;
    root.partitioning = {MakeRootPartition(eval.table().num_rows())};
    root.remaining = std::move(attrs);
    root.unfairness = 0.0;

    std::vector<BeamEntry> beam = {root};
    BeamEntry best = std::move(root);

    // Each candidate expansion costs one node (one unfairness evaluation).
    // On exhaustion the level's partial candidate set still competes for
    // best-so-far before the search stops.
    while (!result.truncated) {
      std::vector<BeamEntry> candidates;
      for (const BeamEntry& entry : beam) {
        if (result.truncated) break;
        for (size_t pos = 0; pos < entry.remaining.size(); ++pos) {
          ExhaustionReason why = context.CheckNodes(1);
          if (why != ExhaustionReason::kNone) {
            result = TruncatedResult(std::move(result), why);
            break;
          }
          ++result.nodes_visited;
          BeamEntry child;
          {
            ScopedSpan expand_span(context.trace(), "expand",
                                   context.trace_parent());
            child.partitioning = SplitAll(eval.table(), entry.partitioning,
                                          entry.remaining[pos]);
          }
          child.remaining = entry.remaining;
          child.remaining.erase(child.remaining.begin() +
                                static_cast<ptrdiff_t>(pos));
          ScopedSpan evaluate_span(context.trace(), "evaluate",
                                   context.trace_parent());
          StatusOr<double> unfairness =
              eval.AveragePairwiseUnfairness(child.partitioning);
          if (!unfairness.ok()) {
            if (!IsExhaustion(unfairness.status())) return unfairness.status();
            result = TruncatedResult(
                std::move(result),
                ExhaustionReasonFromStatus(unfairness.status()));
            break;
          }
          child.unfairness = *unfairness;
          candidates.push_back(std::move(child));
        }
      }
      if (candidates.empty()) break;
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const BeamEntry& a, const BeamEntry& b) {
                         return a.unfairness > b.unfairness;
                       });
      if (candidates.size() > static_cast<size_t>(width_)) {
        candidates.resize(static_cast<size_t>(width_));
      }
      if (candidates.front().unfairness > best.unfairness) {
        best = candidates.front();
      } else {
        break;  // Best-so-far plateaued: stop expanding.
      }
      beam = std::move(candidates);
    }
    result.partitioning = std::move(best.partitioning);
    return result;
  }

 private:
  int width_;
};

}  // namespace

std::unique_ptr<PartitioningAlgorithm> MakeBeamAlgorithm(int width) {
  return std::make_unique<BeamAlgorithm>(width);
}

}  // namespace fairrank
