#include "fairness/beam.h"

#include <algorithm>

#include "fairness/splitter.h"

namespace fairrank {

namespace {

/// One beam entry: a partitioning, the attributes its subtree may still
/// use, and its unfairness score.
struct BeamEntry {
  Partitioning partitioning;
  std::vector<size_t> remaining;
  double unfairness = 0.0;
};

class BeamAlgorithm : public PartitioningAlgorithm {
 public:
  explicit BeamAlgorithm(int width) : width_(width) {}

  std::string Name() const override { return "beam"; }

  StatusOr<Partitioning> Run(const UnfairnessEvaluator& eval,
                             std::vector<size_t> attrs) override {
    if (width_ < 1) {
      return Status::InvalidArgument("beam width must be >= 1");
    }
    BeamEntry root;
    root.partitioning = {MakeRootPartition(eval.table().num_rows())};
    root.remaining = std::move(attrs);
    root.unfairness = 0.0;

    std::vector<BeamEntry> beam = {root};
    BeamEntry best = std::move(root);

    while (true) {
      std::vector<BeamEntry> candidates;
      for (const BeamEntry& entry : beam) {
        for (size_t pos = 0; pos < entry.remaining.size(); ++pos) {
          BeamEntry child;
          child.partitioning = SplitAll(eval.table(), entry.partitioning,
                                        entry.remaining[pos]);
          child.remaining = entry.remaining;
          child.remaining.erase(child.remaining.begin() +
                                static_cast<ptrdiff_t>(pos));
          FAIRRANK_ASSIGN_OR_RETURN(
              child.unfairness,
              eval.AveragePairwiseUnfairness(child.partitioning));
          candidates.push_back(std::move(child));
        }
      }
      if (candidates.empty()) break;
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const BeamEntry& a, const BeamEntry& b) {
                         return a.unfairness > b.unfairness;
                       });
      if (candidates.size() > static_cast<size_t>(width_)) {
        candidates.resize(static_cast<size_t>(width_));
      }
      bool improved = false;
      if (candidates.front().unfairness > best.unfairness) {
        best = candidates.front();
        improved = true;
      }
      if (!improved) break;  // Best-so-far plateaued: stop expanding.
      beam = std::move(candidates);
    }
    return best.partitioning;
  }

 private:
  int width_;
};

}  // namespace

std::unique_ptr<PartitioningAlgorithm> MakeBeamAlgorithm(int width) {
  return std::make_unique<BeamAlgorithm>(width);
}

}  // namespace fairrank
