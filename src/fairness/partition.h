#ifndef FAIRRANK_FAIRNESS_PARTITION_H_
#define FAIRRANK_FAIRNESS_PARTITION_H_

#include <string>
#include <vector>

#include "data/schema.h"

namespace fairrank {

/// One step on the path from the root of a partitioning tree to a
/// partition: "protected attribute `attr_index` took group `group_index`".
struct SplitStep {
  size_t attr_index;
  int group_index;

  bool operator==(const SplitStep& other) const {
    return attr_index == other.attr_index && group_index == other.group_index;
  }
};

/// A set of workers (row indices into a shared Table) plus the split path
/// that produced it. Partitions never copy rows.
///
/// Tree-produced partitions have a single `path`. Partitions built by
/// *merging* tree cells (the agglomerative algorithm) carry the paths of
/// every merged cell in `merged_paths` and leave `path` empty; their label
/// joins the cell labels with " | ".
struct Partition {
  std::vector<size_t> rows;
  std::vector<SplitStep> path;
  std::vector<std::vector<SplitStep>> merged_paths;
  /// Stable 64-bit fingerprint of the row set, assigned at split/merge time
  /// by the splitter (and MakeRootPartition); never 0 once assigned. Equal
  /// row sets reached through different split orders share the fingerprint,
  /// which is what lets the evaluator cache share histograms across
  /// candidate partitionings. 0 means "not assigned" — evaluators fall back
  /// to PartitionFingerprint, which recomputes it from `rows`.
  uint64_t fingerprint = 0;

  size_t size() const { return rows.size(); }
  bool is_merged() const { return !merged_paths.empty(); }
};

/// A full disjoint partitioning P = {p1, ..., pk} of the table rows
/// (Definition 1): partitions are pairwise disjoint and their union covers
/// every row. Invariants are enforced by construction in the splitter and
/// checked by ValidatePartitioning in tests.
using Partitioning = std::vector<Partition>;

/// The root partition containing all `num_rows` rows, with an empty path
/// and its fingerprint assigned.
Partition MakeRootPartition(size_t num_rows);

/// 64-bit fingerprint of a row set. Rows are hashed in sequence order, which
/// is canonical here: every construction path (splitter, merger, spec
/// application) emits rows in ascending table order. Never returns 0.
uint64_t RowSetFingerprint(const std::vector<size_t>& rows);

/// The partition's assigned fingerprint, or RowSetFingerprint(rows) when it
/// was constructed without one (hand-built partitions in tests / specs).
uint64_t PartitionFingerprint(const Partition& partition);

/// Human-readable label of a partition's path, e.g.
/// "Gender=Male & Language=English"; "<all>" for the root.
std::string PartitionLabel(const Schema& schema, const Partition& partition);

/// Distinct attribute names appearing on any partition's path, in schema
/// order. This is the set of attributes the partitioning used.
std::vector<std::string> AttributesUsed(const Schema& schema,
                                        const Partitioning& partitioning);

/// Checks the Definition 1 constraints: every row index in [0, num_rows)
/// appears in exactly one partition and no partition is empty.
bool IsValidPartitioning(const Partitioning& partitioning, size_t num_rows);

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_PARTITION_H_
