#ifndef FAIRRANK_FAIRNESS_BEAM_H_
#define FAIRRANK_FAIRNESS_BEAM_H_

#include <memory>

#include "fairness/algorithm.h"

namespace fairrank {

/// Beam-search generalization of Algorithm 1 (our extension; the paper's
/// future work asks for "other formulations"). Where balanced commits to
/// the single worst attribute at every depth, beam keeps the `width` best
/// partitionings found so far and expands each of them with every remaining
/// attribute, keeping global (balanced-style) splits.
///
/// width = 1 reduces to `balanced` with one difference: beam compares
/// against the best-so-far across *all* depths, so it cannot get stuck on a
/// locally flat step the way balanced's immediate stopping condition can.
/// Larger widths trade runtime for a better chance of escaping greedy
/// mistakes; the search is still exponential only in depth (bounded by the
/// attribute count), not in the number of partitionings.
std::unique_ptr<PartitioningAlgorithm> MakeBeamAlgorithm(int width);

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_BEAM_H_
