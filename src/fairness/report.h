#ifndef FAIRRANK_FAIRNESS_REPORT_H_
#define FAIRRANK_FAIRNESS_REPORT_H_

#include <string>
#include <vector>

#include "fairness/aggregate.h"
#include "fairness/auditor.h"

namespace fairrank {

/// Column-aligned plain-text table builder used by reports and the bench
/// harnesses that regenerate the paper's tables.
class TextTable {
 public:
  /// Sets the header row. Column count is fixed by the longest row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row.
  void AddRow(std::vector<std::string> row);

  /// Renders with two-space column gaps and a dash rule under the header.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Options controlling report rendering.
struct ReportOptions {
  /// Include an ASCII histogram per partition.
  bool include_histograms = false;
  /// Cap on the number of partitions listed (largest first); 0 = no cap.
  size_t max_partitions = 0;
};

/// Renders an audit result as a human-readable report: headline (algorithm,
/// function, unfairness, runtime, attributes used) plus a partition table.
std::string FormatAuditReport(const AuditResult& result,
                              const ReportOptions& options = ReportOptions());

/// Renders an audit result as a single CSV-ish machine-readable line:
/// algorithm,function,unfairness,seconds,num_partitions,attributes_used.
std::string FormatAuditCsvRow(const AuditResult& result);

/// Escapes a string for embedding in a JSON document (quotes, backslashes,
/// control characters). Exposed for testing.
std::string JsonEscape(const std::string& s);

/// Renders an audit result as a JSON object:
/// {
///   "algorithm": ..., "scoring_function": ..., "unfairness": ...,
///   "seconds": ..., "truncated": ..., "exhaustion_reason": ...,
///   "nodes_visited": ..., "attributes_used": [...],
///   "partitions": [{"label": ..., "size": ..., "mean_score": ...,
///                   "histogram": [counts...]}, ...]
/// }
std::string FormatAuditJson(const AuditResult& result);

/// Run metadata the aggregate formatters render alongside the result (the
/// CellStore itself carries no timing or provenance).
struct AggregateReportInfo {
  std::string scoring_function;
  std::string divergence = "emd";
  int ingest_threads = 1;
  double ingest_seconds = 0.0;
  double audit_seconds = 0.0;
};

/// Human-readable report of an aggregate (cell-store) audit: headline
/// (function, unfairness, cells/observations, ingest + audit timing) plus a
/// partition table, mirroring FormatAuditReport.
std::string FormatAggregateAuditReport(
    const CellStore& store, const AggregateAuditResult& result,
    const AggregateReportInfo& info,
    const ReportOptions& options = ReportOptions());

/// JSON rendering of an aggregate audit:
/// {
///   "mode": "aggregate", "scoring_function": ..., "divergence": ...,
///   "unfairness": ..., "ingest_threads": ..., "ingest_seconds": ...,
///   "audit_seconds": ..., "num_cells": ..., "num_observations": ...,
///   "attributes_used": [names...],
///   "partitions": [{"label": ..., "size": ..., "histogram": [counts...]}]
/// }
std::string FormatAggregateAuditJson(const CellStore& store,
                                     const AggregateAuditResult& result,
                                     const AggregateReportInfo& info);

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_REPORT_H_
