#ifndef FAIRRANK_FAIRNESS_AUDITOR_H_
#define FAIRRANK_FAIRNESS_AUDITOR_H_

#include <string>
#include <vector>

#include "common/budget.h"
#include "common/status.h"
#include "data/table.h"
#include "fairness/evaluator.h"
#include "fairness/partition.h"
#include "fairness/registry.h"
#include "marketplace/scoring.h"
#include "stats/histogram.h"

namespace fairrank {

/// Everything needed to run one audit: which algorithm, how unfairness is
/// measured, and which protected attributes to search over.
struct AuditOptions {
  /// Algorithm name resolved via MakeAlgorithmByName.
  std::string algorithm = "unbalanced";
  /// Histogram / divergence configuration (Definition 2).
  EvaluatorOptions evaluator;
  /// Seed for randomized baselines.
  uint64_t seed = 0;
  /// Budgets for the exhaustive algorithm.
  ExhaustiveOptions exhaustive;
  /// Beam width for the "beam" algorithm.
  int beam_width = 3;
  /// Names of protected attributes to search over; empty means every
  /// attribute the schema marks kProtected.
  std::vector<std::string> protected_attributes;
  /// How many of the most divergent partition pairs to surface in the
  /// result (0 disables).
  size_t num_worst_pairs = 3;
  /// Deadline / cancellation / resource budgets for the search. Inert by
  /// default. The limits bound only the *search*: when they trip, the audit
  /// still returns the best partitioning found so far (AuditResult::
  /// truncated), and the reported metrics for it are computed unbounded.
  ExecutionLimits limits;
};

/// A labeled divergent partition pair for reports: "Gender=Male vs
/// Gender=Female differ by 0.80".
struct DivergentPairSummary {
  std::string label_a;
  std::string label_b;
  double distance = 0.0;
};

/// Per-partition digest of an audit result.
struct PartitionSummary {
  std::string label;       ///< "Gender=Male & Language=English".
  size_t size = 0;         ///< Number of workers.
  double mean_score = 0.0;
  Histogram histogram;     ///< Score histogram (evaluator's bin config).

  PartitionSummary() : histogram(1, 0.0, 1.0) {}
};

/// Result of one audit: the most unfair partitioning the algorithm found,
/// its unfairness value, runtime, and per-partition summaries.
struct AuditResult {
  std::string algorithm;
  std::string scoring_function;
  Partitioning partitioning;
  double unfairness = 0.0;   ///< avg pairwise divergence of `partitioning`.
  double seconds = 0.0;      ///< Wall-clock of the search itself.
  std::vector<PartitionSummary> partitions;  ///< Sorted by descending size.
  std::vector<std::string> attributes_used;  ///< Distinct split attributes.
  /// The most divergent partition pairs, descending (see
  /// AuditOptions::num_worst_pairs).
  std::vector<DivergentPairSummary> worst_pairs;
  /// True when the search stopped early (deadline, cancellation, or budget)
  /// and `partitioning` is the best-so-far rather than the full search's
  /// answer. The metrics above still describe `partitioning` exactly.
  bool truncated = false;
  /// Why the search truncated; kNone when it ran to completion.
  ExhaustionReason exhaustion_reason = ExhaustionReason::kNone;
  /// Split / evaluation checkpoints the search passed (see SearchResult).
  uint64_t nodes_visited = 0;
  /// Search throughput: nodes_visited / seconds (0 when seconds is 0).
  double nodes_per_sec = 0.0;
  /// Evaluator-cache counters, combined over the search and reporting
  /// evaluators of this audit (see EvalCacheStats; misses count actual
  /// histogram builds / divergence computations, so they are meaningful
  /// with the cache disabled too).
  EvalCacheStats cache;
  /// Scores outside the evaluator's [score_lo, score_hi] range, folded into
  /// edge bins under OutOfRangePolicy::kCount. Reports warn when nonzero.
  uint64_t out_of_range_scores = 0;
};

/// The library's front door: audits a scoring function over a worker table.
///
///   FairnessAuditor auditor(&workers);
///   auto result = auditor.Audit(*MakeAlphaFunction("f1", 0.5), options);
///
/// The table must outlive the auditor. Thread-compatible (const methods).
class FairnessAuditor {
 public:
  explicit FairnessAuditor(const Table* table) : table_(table) {}

  /// Scores the table with `fn` and searches for the most unfair
  /// partitioning per `options`.
  StatusOr<AuditResult> Audit(const ScoringFunction& fn,
                              const AuditOptions& options) const;

  /// As Audit but with precomputed scores (one per row); useful when scores
  /// come from an external system rather than a ScoringFunction.
  StatusOr<AuditResult> AuditScores(std::vector<double> scores,
                                    const std::string& score_name,
                                    const AuditOptions& options) const;

  const Table& table() const { return *table_; }

 private:
  /// Resolves AuditOptions::protected_attributes to schema indices.
  StatusOr<std::vector<size_t>> ResolveProtectedAttributes(
      const AuditOptions& options) const;

  const Table* table_;
};

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_AUDITOR_H_
