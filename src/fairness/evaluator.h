#ifndef FAIRRANK_FAIRNESS_EVALUATOR_H_
#define FAIRRANK_FAIRNESS_EVALUATOR_H_

#include <memory>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "data/table.h"
#include "fairness/partition.h"
#include "stats/divergence.h"
#include "stats/histogram.h"

namespace fairrank {

/// Two readings of Algorithm 2's `averageEMD(children, siblings, f)` — the
/// paper's prose ("the average pairwise EMD of its potential children with
/// the partition's siblings") is ambiguous; both are implemented and the
/// choice is an option so the difference can be studied
/// (bench/ablation_divergence reports it).
enum class SiblingComparison {
  /// Average over pairs within (children ∪ siblings) that involve at least
  /// one child (child-child and child-sibling pairs). This is the natural
  /// counterpart of `averageEMD(current, siblings)` = pairs involving
  /// `current`, and the default.
  kChildPairs,
  /// Average over all pairs of (children ∪ siblings), i.e. the average
  /// pairwise unfairness of the candidate partitioning after replacing the
  /// partition by its children (sibling-sibling pairs included).
  kAllPairs,
};

/// Configuration of the unfairness measure.
struct EvaluatorOptions {
  /// Histogram bin count over the score range ("equal bins over the range
  /// of f").
  int num_bins = 10;
  /// Score range of f; the paper's functions map into [0, 1].
  double score_lo = 0.0;
  double score_hi = 1.0;
  SiblingComparison sibling_comparison = SiblingComparison::kChildPairs;
  /// Divergence name resolved via MakeDivergenceByName; "emd" reproduces
  /// the paper.
  std::string divergence = "emd";
  /// Worker threads for the pairwise-distance loops of
  /// AveragePairwiseUnfairness. 1 = fully serial (default); results are
  /// bit-identical across thread counts (per-pair sums are accumulated in
  /// a deterministic order).
  int num_threads = 1;
  /// Deadline / cancellation honored inside AveragePairwiseUnfairness: the
  /// pairwise loop stops between blocks once either fires and the call
  /// returns DeadlineExceeded / Cancelled instead of finishing the range.
  /// Both are inert by default. Keep them inert on evaluators used for
  /// *reporting* — only the search evaluator should be interruptible.
  Deadline deadline;
  CancellationToken cancel;
};

/// Computes unfairness(P, f) (Definition 2): the average pairwise divergence
/// between the score histograms of a partitioning's partitions. Owns the
/// scores of every row under the audited scoring function, builds per-
/// partition histograms on demand, and exposes the sibling-relative averages
/// Algorithm 2 needs.
///
/// Thread-compatible: const after construction; all accessors are const.
class UnfairnessEvaluator {
 public:
  /// `table` must outlive the evaluator; `scores` must have one entry per
  /// table row. Fails on size mismatch, bad options, or unknown divergence.
  static StatusOr<UnfairnessEvaluator> Make(const Table* table,
                                            std::vector<double> scores,
                                            const EvaluatorOptions& options);

  /// Score histogram of one partition.
  Histogram BuildHistogram(const Partition& partition) const;

  /// Divergence between two partitions' histograms. Both must be non-empty
  /// (guaranteed for splitter-produced partitions).
  StatusOr<double> Distance(const Partition& a, const Partition& b) const;

  /// unfairness(P, f): average pairwise divergence over all partition pairs.
  /// A partitioning with fewer than two partitions has unfairness 0.
  StatusOr<double> AveragePairwiseUnfairness(
      const Partitioning& partitioning) const;

  /// Algorithm 2's averageEMD(current, siblings, f): mean divergence between
  /// `current` and each sibling; 0 when `siblings` is empty.
  StatusOr<double> AverageWithSiblings(
      const Partition& current, const std::vector<Partition>& siblings) const;

  /// Algorithm 2's averageEMD(children, siblings, f), per the configured
  /// SiblingComparison reading; 0 when there are fewer than two histograms
  /// or no qualifying pairs.
  StatusOr<double> AverageChildrenWithSiblings(
      const std::vector<Partition>& children,
      const std::vector<Partition>& siblings) const;

  const Table& table() const { return *table_; }
  const std::vector<double>& scores() const { return scores_; }
  const EvaluatorOptions& options() const { return options_; }
  const Divergence& divergence() const { return *divergence_; }

 private:
  UnfairnessEvaluator(const Table* table, std::vector<double> scores,
                      const EvaluatorOptions& options,
                      std::unique_ptr<Divergence> divergence)
      : table_(table),
        scores_(std::move(scores)),
        options_(options),
        divergence_(std::move(divergence)) {}

  const Table* table_;
  std::vector<double> scores_;
  EvaluatorOptions options_;
  std::unique_ptr<Divergence> divergence_;
};

/// One highly divergent partition pair — the "who exactly is treated
/// differently from whom" answer an auditor reads off first.
struct DivergentPair {
  size_t index_a = 0;  ///< Index into the partitioning.
  size_t index_b = 0;
  double distance = 0.0;
};

/// The k partition pairs with the largest pairwise divergence, sorted
/// descending (ties broken by pair order, deterministic). k larger than the
/// number of pairs is clamped; a partitioning with < 2 partitions yields an
/// empty list.
StatusOr<std::vector<DivergentPair>> TopDivergentPairs(
    const UnfairnessEvaluator& eval, const Partitioning& partitioning,
    size_t k);

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_EVALUATOR_H_
