#ifndef FAIRRANK_FAIRNESS_EVALUATOR_H_
#define FAIRRANK_FAIRNESS_EVALUATOR_H_

#include <memory>
#include <vector>

#include "common/budget.h"
#include "common/deadline.h"
#include "common/status.h"
#include "common/trace.h"
#include "data/table.h"
#include "fairness/eval_cache.h"
#include "fairness/partition.h"
#include "stats/divergence.h"
#include "stats/histogram.h"

namespace fairrank {

/// Two readings of Algorithm 2's `averageEMD(children, siblings, f)` — the
/// paper's prose ("the average pairwise EMD of its potential children with
/// the partition's siblings") is ambiguous; both are implemented and the
/// choice is an option so the difference can be studied
/// (bench/ablation_divergence reports it).
enum class SiblingComparison {
  /// Average over pairs within (children ∪ siblings) that involve at least
  /// one child (child-child and child-sibling pairs). This is the natural
  /// counterpart of `averageEMD(current, siblings)` = pairs involving
  /// `current`, and the default.
  kChildPairs,
  /// Average over all pairs of (children ∪ siblings), i.e. the average
  /// pairwise unfairness of the candidate partitioning after replacing the
  /// partition by its children (sibling-sibling pairs included).
  kAllPairs,
};

/// What to do when scores fall outside [score_lo, score_hi]. Histograms
/// clamp such values into the edge bins; before this policy existed the
/// clamping was silent and quietly distorted the edge bins.
enum class OutOfRangePolicy {
  /// Count the offenders and surface the count via
  /// UnfairnessEvaluator::num_out_of_range() (reports warn on it). Default:
  /// repaired or generated score vectors may legitimately graze the range.
  kCount,
  /// Reject the score vector in Make with InvalidArgument.
  kReject,
};

/// Configuration of the unfairness measure.
struct EvaluatorOptions {
  /// Histogram bin count over the score range ("equal bins over the range
  /// of f").
  int num_bins = 10;
  /// Score range of f; the paper's functions map into [0, 1].
  double score_lo = 0.0;
  double score_hi = 1.0;
  SiblingComparison sibling_comparison = SiblingComparison::kChildPairs;
  /// Divergence name resolved via MakeDivergenceByName; "emd" reproduces
  /// the paper.
  std::string divergence = "emd";
  /// Worker threads for the pairwise-distance loops of
  /// AveragePairwiseUnfairness. 1 = fully serial (default); results are
  /// bit-identical across thread counts (per-pair sums are accumulated in
  /// a deterministic order).
  int num_threads = 1;
  /// Deadline / cancellation honored inside AveragePairwiseUnfairness: the
  /// pairwise loop stops between blocks once either fires and the call
  /// returns DeadlineExceeded / Cancelled instead of finishing the range.
  /// Both are inert by default. Keep them inert on evaluators used for
  /// *reporting* — only the search evaluator should be interruptible.
  Deadline deadline;
  CancellationToken cancel;
  /// Memoize per-partition histograms and pairwise divergences by row-set
  /// fingerprint (see EvaluatorCache). On by default; `--no-cache` turns it
  /// off. Results are bit-identical either way — the cache stores exactly
  /// the values the uncached path would recompute.
  bool enable_cache = true;
  /// Byte cap of the memoization cache (0 = uncapped). Exceeding it triggers
  /// an epoch eviction, never an error.
  uint64_t cache_max_bytes = 256ull << 20;
  /// Externally owned cache shared by several evaluators. Null (default):
  /// the evaluator creates a private cache. Sharing is only valid between
  /// evaluators over the *same* score vector and histogram shape — cache
  /// entries are keyed by row-set fingerprint alone. The suite scheduler
  /// uses this to share one cache per scoring-function column across that
  /// column's algorithm cells (EvaluatorCache is thread-safe); the sharer is
  /// responsible for attaching any budget-charging context exactly once.
  /// When set, `enable_cache`/`cache_max_bytes` above are ignored — the
  /// shared cache was built with its own configuration.
  std::shared_ptr<EvaluatorCache> shared_cache;
  /// Policy for scores outside [score_lo, score_hi]; see OutOfRangePolicy.
  OutOfRangePolicy out_of_range = OutOfRangePolicy::kCount;
  /// Borrowed per-request trace (see common/trace.h). When set, every
  /// histogram build, divergence computation, and cache hit records a span
  /// ("histogram" / "emd" / "cache-hit") under `trace_parent`. Null =
  /// tracing off; recording is thread-safe (the pairwise pool records
  /// concurrently). The auditor wires this from its ExecutionLimits.
  TraceContext* trace = nullptr;
  int64_t trace_parent = -1;
};

/// Computes unfairness(P, f) (Definition 2): the average pairwise divergence
/// between the score histograms of a partitioning's partitions. Owns the
/// scores of every row under the audited scoring function, builds per-
/// partition histograms on demand, and exposes the sibling-relative averages
/// Algorithm 2 needs.
///
/// All evaluation paths are memoized through an EvaluatorCache keyed by
/// partition row-set fingerprints: a partition reached twice (sibling
/// re-evaluation, beam overlap, different split orders producing the same
/// cell) pays for its histogram and its divergences once. The cache is
/// internal to this evaluator — it is never valid for a different score
/// vector — and cache-on/off results are bit-identical.
///
/// Thread-compatible: logically const after construction; all accessors are
/// const (the cache is internally synchronized).
class UnfairnessEvaluator {
 public:
  /// `table` must outlive the evaluator; `scores` must have one entry per
  /// table row. Fails on size mismatch, bad options, or unknown divergence.
  static StatusOr<UnfairnessEvaluator> Make(const Table* table,
                                            std::vector<double> scores,
                                            const EvaluatorOptions& options);

  /// Score histogram of one partition.
  Histogram BuildHistogram(const Partition& partition) const;

  /// Divergence between two partitions' histograms. Both must be non-empty
  /// (guaranteed for splitter-produced partitions).
  StatusOr<double> Distance(const Partition& a, const Partition& b) const;

  /// unfairness(P, f): average pairwise divergence over all partition pairs.
  /// A partitioning with fewer than two partitions has unfairness 0.
  StatusOr<double> AveragePairwiseUnfairness(
      const Partitioning& partitioning) const;

  /// Algorithm 2's averageEMD(current, siblings, f): mean divergence between
  /// `current` and each sibling; 0 when `siblings` is empty.
  StatusOr<double> AverageWithSiblings(
      const Partition& current, const std::vector<Partition>& siblings) const;

  /// Algorithm 2's averageEMD(children, siblings, f), per the configured
  /// SiblingComparison reading; 0 when there are fewer than two histograms
  /// or no qualifying pairs.
  StatusOr<double> AverageChildrenWithSiblings(
      const std::vector<Partition>& children,
      const std::vector<Partition>& siblings) const;

  /// All pairwise divergences of `partitioning`, flattened in upper-triangle
  /// order: pair (i, j), i < j, lands at the slot both
  /// AveragePairwiseUnfairness and TopDivergentPairs read — one memoized
  /// computation serves both. Honors the deadline/cancel options like
  /// AveragePairwiseUnfairness; fewer than two partitions yields an empty
  /// vector.
  StatusOr<std::vector<double>> PairwiseDistances(
      const Partitioning& partitioning) const;

  /// Attaches the search's ExecutionContext so net new cache memory is
  /// charged against its ResourceBudget (see EvaluatorCache). Call before
  /// the search starts; auditors do this for the search evaluator only.
  void AttachExecutionContext(const ExecutionContext& context) {
    cache_->AttachContext(context);
  }

  /// Cache counters so far (hits, misses = actual builds, evictions,
  /// resident bytes). Meaningful with the cache disabled too: misses then
  /// count every recomputation.
  EvalCacheStats cache_stats() const { return cache_->Snapshot(); }

  /// Number of input scores outside [score_lo, score_hi] (0 under kReject,
  /// which refuses such inputs). Reports surface a warning when nonzero.
  size_t num_out_of_range() const { return num_out_of_range_; }

  const Table& table() const { return *table_; }
  const std::vector<double>& scores() const { return scores_; }
  const EvaluatorOptions& options() const { return options_; }
  const Divergence& divergence() const { return *divergence_; }

 private:
  UnfairnessEvaluator(const Table* table, std::vector<double> scores,
                      const EvaluatorOptions& options,
                      std::unique_ptr<Divergence> divergence,
                      size_t num_out_of_range)
      : table_(table),
        scores_(std::move(scores)),
        options_(options),
        divergence_(std::move(divergence)),
        num_out_of_range_(num_out_of_range),
        cache_(options.shared_cache != nullptr
                   ? options.shared_cache
                   : std::make_shared<EvaluatorCache>(
                         options.enable_cache, options.cache_max_bytes)) {}

  /// The partition's histogram via the cache: lookup by fingerprint, build
  /// and insert on a miss. Never null.
  std::shared_ptr<const Histogram> CachedHistogram(
      const Partition& partition) const;

  /// The divergence of two histograms via the cache, keyed by the unordered
  /// fingerprint pair. Runs the fault-injection divergence hook on the
  /// compute (miss) path only.
  StatusOr<double> CachedDistance(uint64_t fp_a, const Histogram& a,
                                  uint64_t fp_b, const Histogram& b) const;

  const Table* table_;
  std::vector<double> scores_;
  EvaluatorOptions options_;
  std::unique_ptr<Divergence> divergence_;
  size_t num_out_of_range_ = 0;
  /// shared_ptr so the evaluator stays movable/copyable; the cache contents
  /// are keyed by row sets, which move with the score vector.
  std::shared_ptr<EvaluatorCache> cache_;
};

/// One highly divergent partition pair — the "who exactly is treated
/// differently from whom" answer an auditor reads off first.
struct DivergentPair {
  size_t index_a = 0;  ///< Index into the partitioning.
  size_t index_b = 0;
  double distance = 0.0;
};

/// The k partition pairs with the largest pairwise divergence, sorted
/// descending (ties broken by pair order, deterministic). k larger than the
/// number of pairs is clamped; a partitioning with < 2 partitions yields an
/// empty list.
StatusOr<std::vector<DivergentPair>> TopDivergentPairs(
    const UnfairnessEvaluator& eval, const Partitioning& partitioning,
    size_t k);

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_EVALUATOR_H_
