#include "fairness/balanced.h"

#include "fairness/splitter.h"

namespace fairrank {

namespace {

class BalancedAlgorithm : public PartitioningAlgorithm {
 public:
  BalancedAlgorithm(std::string name,
                    std::unique_ptr<AttributeSelector> selector)
      : name_(std::move(name)), selector_(std::move(selector)) {}

  std::string Name() const override { return name_; }

  StatusOr<Partitioning> Run(const UnfairnessEvaluator& eval,
                             std::vector<size_t> attrs) override {
    Partitioning current{MakeRootPartition(eval.table().num_rows())};
    if (attrs.empty()) return current;

    // First split (Algorithm 1, lines 1-4).
    FAIRRANK_ASSIGN_OR_RETURN(size_t pos,
                              selector_->SelectGlobal(eval, current, attrs));
    size_t attr = attrs[pos];
    attrs.erase(attrs.begin() + static_cast<ptrdiff_t>(pos));
    current = SplitAll(eval.table(), current, attr);
    FAIRRANK_ASSIGN_OR_RETURN(double current_avg,
                              eval.AveragePairwiseUnfairness(current));

    // Iterative deepening (lines 5-16).
    while (!attrs.empty()) {
      FAIRRANK_ASSIGN_OR_RETURN(pos,
                                selector_->SelectGlobal(eval, current, attrs));
      attr = attrs[pos];
      attrs.erase(attrs.begin() + static_cast<ptrdiff_t>(pos));
      Partitioning children = SplitAll(eval.table(), current, attr);
      FAIRRANK_ASSIGN_OR_RETURN(double children_avg,
                                eval.AveragePairwiseUnfairness(children));
      if (current_avg >= children_avg) break;
      current = std::move(children);
      current_avg = children_avg;
    }
    return current;
  }

 private:
  std::string name_;
  std::unique_ptr<AttributeSelector> selector_;
};

}  // namespace

std::unique_ptr<PartitioningAlgorithm> MakeBalancedAlgorithm(
    std::string name, std::unique_ptr<AttributeSelector> selector) {
  return std::make_unique<BalancedAlgorithm>(std::move(name),
                                             std::move(selector));
}

}  // namespace fairrank
