#include "fairness/balanced.h"

#include "common/trace.h"
#include "fairness/splitter.h"

namespace fairrank {

namespace {

class BalancedAlgorithm : public PartitioningAlgorithm {
 public:
  BalancedAlgorithm(std::string name,
                    std::unique_ptr<AttributeSelector> selector)
      : name_(std::move(name)), selector_(std::move(selector)) {}

  std::string Name() const override { return name_; }

  using PartitioningAlgorithm::Run;

  StatusOr<SearchResult> Run(const UnfairnessEvaluator& eval,
                             std::vector<size_t> attrs,
                             const ExecutionContext& context) override {
    SearchResult result;
    result.partitioning = {MakeRootPartition(eval.table().num_rows())};
    if (attrs.empty()) return result;

    // Algorithm 1: the first split is unconditional (lines 1-4); each later
    // level is kept only while the average pairwise divergence improves
    // (lines 5-16). One selection round evaluates a candidate split per
    // remaining attribute — charge them as nodes up front so a node budget
    // bounds the EMD evaluations actually performed.
    Partitioning& current = result.partitioning;
    double current_avg = 0.0;
    bool first = true;
    while (!attrs.empty()) {
      ExhaustionReason why = context.CheckNodes(attrs.size());
      if (why != ExhaustionReason::kNone) {
        return TruncatedResult(std::move(result), why);
      }
      result.nodes_visited += attrs.size();

      int64_t expand_span = -1;
      if (context.trace() != nullptr) {
        expand_span =
            context.trace()->StartSpan("expand", context.trace_parent());
      }
      StatusOr<size_t> pos = selector_->SelectGlobal(eval, current, attrs);
      if (context.trace() != nullptr) context.trace()->EndSpan(expand_span);
      if (!pos.ok()) return DegradeOnExhaustion(std::move(result),
                                                pos.status());
      size_t attr = attrs[*pos];
      attrs.erase(attrs.begin() + static_cast<ptrdiff_t>(*pos));
      Partitioning children = SplitAll(eval.table(), current, attr);
      ScopedSpan evaluate_span(context.trace(), "evaluate",
                               context.trace_parent());
      StatusOr<double> children_avg = eval.AveragePairwiseUnfairness(children);
      if (!children_avg.ok()) {
        return DegradeOnExhaustion(std::move(result), children_avg.status());
      }
      if (!first && current_avg >= *children_avg) break;
      current = std::move(children);
      current_avg = *children_avg;
      first = false;
    }
    return result;
  }

 private:
  std::string name_;
  std::unique_ptr<AttributeSelector> selector_;
};

}  // namespace

std::unique_ptr<PartitioningAlgorithm> MakeBalancedAlgorithm(
    std::string name, std::unique_ptr<AttributeSelector> selector) {
  return std::make_unique<BalancedAlgorithm>(std::move(name),
                                             std::move(selector));
}

}  // namespace fairrank
