#include "fairness/baselines.h"

#include "fairness/splitter.h"

namespace fairrank {

namespace {

class AllAttributesAlgorithm : public PartitioningAlgorithm {
 public:
  std::string Name() const override { return "all-attributes"; }

  using PartitioningAlgorithm::Run;

  StatusOr<SearchResult> Run(const UnfairnessEvaluator& eval,
                             std::vector<size_t> attrs,
                             const ExecutionContext& context) override {
    SearchResult result;
    result.partitioning = {MakeRootPartition(eval.table().num_rows())};
    for (size_t attr : attrs) {
      ExhaustionReason why = context.CheckNodes(1);
      if (why != ExhaustionReason::kNone) {
        return TruncatedResult(std::move(result), why);
      }
      ++result.nodes_visited;
      result.partitioning =
          SplitAll(eval.table(), result.partitioning, attr);
    }
    return result;
  }
};

}  // namespace

std::unique_ptr<PartitioningAlgorithm> MakeAllAttributesAlgorithm() {
  return std::make_unique<AllAttributesAlgorithm>();
}

}  // namespace fairrank
