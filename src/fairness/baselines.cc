#include "fairness/baselines.h"

#include "fairness/splitter.h"

namespace fairrank {

namespace {

class AllAttributesAlgorithm : public PartitioningAlgorithm {
 public:
  std::string Name() const override { return "all-attributes"; }

  StatusOr<Partitioning> Run(const UnfairnessEvaluator& eval,
                             std::vector<size_t> attrs) override {
    Partitioning current{MakeRootPartition(eval.table().num_rows())};
    for (size_t attr : attrs) {
      current = SplitAll(eval.table(), current, attr);
    }
    return current;
  }
};

}  // namespace

std::unique_ptr<PartitioningAlgorithm> MakeAllAttributesAlgorithm() {
  return std::make_unique<AllAttributesAlgorithm>();
}

}  // namespace fairrank
