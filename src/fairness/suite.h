#ifndef FAIRRANK_FAIRNESS_SUITE_H_
#define FAIRRANK_FAIRNESS_SUITE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "fairness/auditor.h"

namespace fairrank {

/// Configuration of a comparative audit grid (the shape of the paper's
/// Tables 1-3: rows = algorithms, columns = scoring functions).
struct SuiteOptions {
  /// Algorithm names; empty means the paper's five (PaperAlgorithmNames).
  std::vector<std::string> algorithms;
  /// Evaluator configuration shared by every cell.
  EvaluatorOptions evaluator;
  /// Base seed; cell (a, f) derives seed + f for its randomized baseline so
  /// every algorithm sees the same stream per function.
  uint64_t seed = 0;
  /// Restrict the searched protected attributes (empty = all).
  std::vector<std::string> protected_attributes;
  /// Execution limits for the grid. The deadline/timeout is *shared*: it is
  /// armed once before the first cell, so a 10s timeout bounds the whole
  /// grid (late cells degrade to truncated best-so-far answers, keeping the
  /// grid complete). Node/memory budgets apply per cell.
  ExecutionLimits limits;
};

/// One (algorithm, function) cell of the grid.
struct SuiteCell {
  std::string algorithm;
  std::string function;
  double unfairness = 0.0;
  double seconds = 0.0;
  size_t num_partitions = 0;
  std::vector<std::string> attributes_used;
  bool truncated = false;  ///< Search stopped early; see AuditResult.
  uint64_t nodes_visited = 0;  ///< Search work; see AuditResult.
  /// Evaluator-cache counters of this cell's audit (search + reporting).
  EvalCacheStats cache;
};

/// A full grid of audits.
struct SuiteResult {
  std::vector<std::string> algorithms;           ///< Row labels.
  std::vector<std::string> functions;            ///< Column labels.
  std::vector<std::vector<SuiteCell>> cells;     ///< [algorithm][function].
};

/// Runs every algorithm against every function on one table — the
/// programmatic form of the paper's evaluation; bench/table* are thin
/// wrappers over this.
class AuditSuite {
 public:
  /// `table` must outlive the suite.
  explicit AuditSuite(const Table* table) : table_(table) {}

  /// Runs the grid. Functions are borrowed, not owned.
  StatusOr<SuiteResult> Run(
      const std::vector<const ScoringFunction*>& functions,
      const SuiteOptions& options = SuiteOptions()) const;

 private:
  const Table* table_;
};

/// Renders the "Average EMD" (unfairness) table of a suite result.
std::string FormatSuiteUnfairness(const SuiteResult& result);

/// Renders the "time (in secs)" table of a suite result.
std::string FormatSuiteRuntime(const SuiteResult& result);

/// Renders the grid as CSV rows:
/// algorithm,function,unfairness,seconds,num_partitions,attributes.
std::string FormatSuiteCsv(const SuiteResult& result);

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_SUITE_H_
