#ifndef FAIRRANK_FAIRNESS_SUITE_H_
#define FAIRRANK_FAIRNESS_SUITE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "fairness/auditor.h"

namespace fairrank {

/// How SuiteOptions::limits' node/memory budgets apply to the grid.
enum class SuiteBudgetMode {
  /// One parent budget for the whole grid: every cell charges a shared
  /// hierarchical budget, so `max_nodes` / `max_memory_mb` bound the
  /// *aggregate* work of all cells — the per-request shape a production
  /// deployment needs. Cells reached after exhaustion degrade to truncated
  /// best-so-far answers, keeping the grid complete. Default.
  kTotal,
  /// Legacy semantics: every cell gets the full allowance, so an A×F grid
  /// may spend A×F times the stated budget.
  kPerCell,
};

/// Configuration of a comparative audit grid (the shape of the paper's
/// Tables 1-3: rows = algorithms, columns = scoring functions).
struct SuiteOptions {
  /// Algorithm names; empty means the paper's five (PaperAlgorithmNames).
  std::vector<std::string> algorithms;
  /// Evaluator configuration shared by every cell.
  EvaluatorOptions evaluator;
  /// Base seed; cell (a, f) derives seed + f for its randomized baseline so
  /// every algorithm sees the same stream per function.
  uint64_t seed = 0;
  /// Restrict the searched protected attributes (empty = all).
  std::vector<std::string> protected_attributes;
  /// Execution limits for the grid. The deadline is *shared*: it is armed
  /// once before the first cell, so a 10s timeout bounds the whole grid
  /// (late cells degrade to truncated best-so-far answers, keeping the grid
  /// complete). Precedence: when both a pre-armed finite `deadline` and a
  /// positive `timeout_ms` are supplied, the *earlier* of the two wins —
  /// neither overrides the other. Node/memory budgets apply per
  /// `budget_mode`.
  ExecutionLimits limits;
  /// How `limits.max_nodes` / `limits.max_memory_mb` bound the grid.
  SuiteBudgetMode budget_mode = SuiteBudgetMode::kTotal;
  /// Worker threads for the grid itself: cells are dispatched onto a
  /// dynamically scheduled pool (ParallelForEach), results assembled in
  /// deterministic (algorithm, function) order regardless of completion
  /// order. 1 = serial (default). For deterministic algorithms results are
  /// bit-identical across thread counts.
  int num_threads = 1;
  /// Share one evaluator cache per scoring-function column across that
  /// column's algorithm cells (valid: one column = one score vector; cache
  /// entries are keyed by row-set fingerprint). Saves re-building the same
  /// histograms five times per column; values are bit-identical either way.
  /// With sharing on, per-cell cache counters are cumulative snapshots of
  /// the column's cache at cell completion — use SuiteSummary::cache (or
  /// SuiteResult::column_cache) for exact totals. Under kTotal the shared
  /// caches charge their growth to the grid's parent budget; under kPerCell
  /// they are bounded by `evaluator.cache_max_bytes` only.
  bool share_column_cache = true;
};

/// One (algorithm, function) cell of the grid.
struct SuiteCell {
  std::string algorithm;
  std::string function;
  double unfairness = 0.0;
  double seconds = 0.0;
  size_t num_partitions = 0;
  std::vector<std::string> attributes_used;
  bool truncated = false;  ///< Search stopped early; see AuditResult.
  /// Why the search truncated; kNone when it ran to completion.
  ExhaustionReason exhaustion_reason = ExhaustionReason::kNone;
  uint64_t nodes_visited = 0;  ///< Search work; see AuditResult.
  double nodes_per_sec = 0.0;  ///< Search throughput of this cell.
  /// Evaluator-cache counters of this cell's audit (search + reporting).
  /// With SuiteOptions::share_column_cache these are cumulative over the
  /// cell's whole column up to this cell's completion.
  EvalCacheStats cache;
  /// Non-OK when this cell's audit failed: the failure degrades the cell
  /// (rendered as ERR, metrics zeroed), never the grid — completed cells
  /// are always kept.
  Status error = Status::OK();
};

/// Grid-level observability: what the whole suite cost and how it degraded.
struct SuiteSummary {
  double wall_seconds = 0.0;   ///< Wall-clock of the whole grid run.
  double cell_seconds = 0.0;   ///< Sum of per-cell audit runtimes (the
                               ///< serial-equivalent cost; cell_seconds /
                               ///< wall_seconds ~ parallel speedup).
  uint64_t total_nodes = 0;    ///< Aggregate search work across all cells.
  double nodes_per_sec = 0.0;  ///< total_nodes / wall_seconds.
  size_t cells_truncated = 0;  ///< Cells whose search stopped early.
  size_t cells_failed = 0;     ///< Cells carrying a non-OK SuiteCell::error.
  /// Exact aggregate cache counters (summed over column caches when shared,
  /// over per-cell caches otherwise — never double-counted).
  EvalCacheStats cache;
};

/// A full grid of audits.
struct SuiteResult {
  std::vector<std::string> algorithms;           ///< Row labels.
  std::vector<std::string> functions;            ///< Column labels.
  std::vector<std::vector<SuiteCell>> cells;     ///< [algorithm][function].
  /// Final cache counters per function column (aligned with `functions`).
  /// With share_column_cache each entry is that column's one shared cache;
  /// otherwise the sum of the column's per-cell caches.
  std::vector<EvalCacheStats> column_cache;
  SuiteSummary summary;
};

/// Runs every algorithm against every function on one table — the
/// programmatic form of the paper's evaluation; bench/table* are thin
/// wrappers over this.
class AuditSuite {
 public:
  /// `table` must outlive the suite.
  explicit AuditSuite(const Table* table) : table_(table) {}

  /// Runs the grid: cells are scheduled onto SuiteOptions::num_threads
  /// workers under one shared deadline and (in kTotal mode) one shared
  /// hierarchical budget. A failing cell is captured in SuiteCell::error and
  /// never aborts the grid; a non-OK return is reserved for invalid
  /// configuration (empty/null functions, unknown algorithm names).
  /// Functions are borrowed, not owned.
  StatusOr<SuiteResult> Run(
      const std::vector<const ScoringFunction*>& functions,
      const SuiteOptions& options = SuiteOptions()) const;

 private:
  const Table* table_;
};

/// Renders the "Average EMD" (unfairness) table of a suite result. Failed
/// cells render as ERR.
std::string FormatSuiteUnfairness(const SuiteResult& result);

/// Renders the "time (in secs)" table of a suite result. Failed cells
/// render as ERR.
std::string FormatSuiteRuntime(const SuiteResult& result);

/// Renders the grid as RFC-4180 CSV rows:
/// algorithm,function,unfairness,seconds,num_partitions,attributes,
/// truncated,exhaustion_reason,nodes_visited,nodes_per_sec,hist_hit_rate,
/// div_hit_rate,error. Every field is CsvEscape'd.
std::string FormatSuiteCsv(const SuiteResult& result);

/// Renders the suite-level summary (wall time, serial-equivalent time,
/// total nodes, cache hit rates, truncated/failed counts) as text lines.
std::string FormatSuiteSummary(const SuiteResult& result);

/// The summary as a one-row CSV block (header + row), for appending to the
/// FormatSuiteCsv output.
std::string FormatSuiteSummaryCsv(const SuiteResult& result);

/// The full grid plus summary as a JSON object.
std::string FormatSuiteJson(const SuiteResult& result);

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_SUITE_H_
