#ifndef FAIRRANK_FAIRNESS_BASELINES_H_
#define FAIRRANK_FAIRNESS_BASELINES_H_

#include <memory>

#include "fairness/algorithm.h"

namespace fairrank {

/// The paper's third baseline (`all-attributes`): split the workers on every
/// protected attribute, in the order given, producing the full partitioning
/// tree. No stopping condition, no attribute selection.
std::unique_ptr<PartitioningAlgorithm> MakeAllAttributesAlgorithm();

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_BASELINES_H_
