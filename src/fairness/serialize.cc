#include "fairness/serialize.h"

#include <cstring>
#include <vector>

#include "common/str_util.h"

namespace fairrank {

namespace {
constexpr char kHeader[] = "# fairrank partitioning v1";
}  // namespace

std::string SerializePartitioning(const Schema& schema,
                                  const Partitioning& partitioning) {
  std::string out = kHeader;
  out += "\n";
  for (const Partition& p : partitioning) {
    out += "partition: ";
    if (p.path.empty()) {
      out += "<all>";
    } else {
      for (size_t i = 0; i < p.path.size(); ++i) {
        if (i > 0) out += " & ";
        out += schema.attribute(p.path[i].attr_index).name();
        out += "=";
        out += std::to_string(p.path[i].group_index);
      }
    }
    out += "\n";
  }
  return out;
}

StatusOr<Partitioning> ApplyPartitioningSpec(const Table& table,
                                             const std::string& serialized,
                                             UnmatchedRowPolicy policy) {
  std::vector<std::string> lines = Split(serialized, '\n');
  if (lines.empty() || Trim(lines[0]) != kHeader) {
    return Status::InvalidArgument(
        "missing '# fairrank partitioning v1' header");
  }

  // Parse leaf paths.
  std::vector<std::vector<SplitStep>> paths;
  for (size_t ln = 1; ln < lines.size(); ++ln) {
    std::string_view line = Trim(lines[ln]);
    if (line.empty() || line[0] == '#') continue;
    if (!StartsWith(line, "partition:")) {
      return Status::InvalidArgument("line " + std::to_string(ln + 1) +
                                     ": expected 'partition: ...'");
    }
    std::string_view body = Trim(line.substr(strlen("partition:")));
    std::vector<SplitStep> path;
    if (body != "<all>") {
      for (const std::string& step_text : Split(body, '&')) {
        std::vector<std::string> kv = Split(Trim(step_text), '=');
        if (kv.size() != 2) {
          return Status::InvalidArgument("malformed step '" +
                                         std::string(step_text) + "'");
        }
        FAIRRANK_ASSIGN_OR_RETURN(
            size_t attr_index,
            table.schema().FindIndex(std::string(Trim(kv[0]))));
        int64_t group = 0;
        if (!ParseInt64(kv[1], &group)) {
          return Status::InvalidArgument("malformed group index in '" +
                                         std::string(step_text) + "'");
        }
        if (group < 0 ||
            group >= table.schema().attribute(attr_index).num_groups()) {
          return Status::OutOfRange(
              "group index " + std::to_string(group) + " out of range for '" +
              table.schema().attribute(attr_index).name() + "'");
        }
        path.push_back({attr_index, static_cast<int>(group)});
      }
    }
    paths.push_back(std::move(path));
  }
  if (paths.empty()) {
    return Status::InvalidArgument("spec declares no partitions");
  }

  // Assign rows.
  Partitioning result(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) result[i].path = paths[i];
  Partition rest;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    int match = -1;
    for (size_t i = 0; i < paths.size(); ++i) {
      bool ok = true;
      for (const SplitStep& step : paths[i]) {
        if (table.GroupIndex(row, step.attr_index) != step.group_index) {
          ok = false;
          break;
        }
      }
      if (ok) {
        if (match >= 0) {
          return Status::InvalidArgument(
              "row " + std::to_string(row) + " matches partitions " +
              std::to_string(match) + " and " + std::to_string(i) +
              "; paths are not mutually exclusive");
        }
        match = static_cast<int>(i);
      }
    }
    if (match >= 0) {
      result[static_cast<size_t>(match)].rows.push_back(row);
    } else if (policy == UnmatchedRowPolicy::kCollectRest) {
      rest.rows.push_back(row);
    } else {
      return Status::InvalidArgument("row " + std::to_string(row) +
                                     " matches no partition in the spec");
    }
  }

  // Drop empty partitions; append the rest-bucket if used.
  Partitioning compact;
  for (Partition& p : result) {
    if (p.rows.empty()) continue;
    p.fingerprint = RowSetFingerprint(p.rows);
    compact.push_back(std::move(p));
  }
  if (!rest.rows.empty()) {
    rest.fingerprint = RowSetFingerprint(rest.rows);
    compact.push_back(std::move(rest));
  }
  if (compact.empty()) {
    return Status::InvalidArgument("spec matched no rows of this table");
  }
  return compact;
}

}  // namespace fairrank
