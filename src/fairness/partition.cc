#include "fairness/partition.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace fairrank {

Partition MakeRootPartition(size_t num_rows) {
  Partition root;
  root.rows.resize(num_rows);
  std::iota(root.rows.begin(), root.rows.end(), size_t{0});
  root.fingerprint = RowSetFingerprint(root.rows);
  return root;
}

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t RowSetFingerprint(const std::vector<size_t>& rows) {
  // FNV-style fold over strongly mixed row indices, seeded with the size so
  // prefixes of a row list never collide with the list itself.
  uint64_t h = SplitMix64(0x66616972ULL ^ rows.size());  // "fair"
  for (size_t row : rows) {
    h = (h ^ SplitMix64(static_cast<uint64_t>(row))) * 0x100000001B3ULL;
  }
  return h == 0 ? 1 : h;
}

uint64_t PartitionFingerprint(const Partition& partition) {
  if (partition.fingerprint != 0) return partition.fingerprint;
  return RowSetFingerprint(partition.rows);
}

namespace {

std::string PathLabel(const Schema& schema,
                      const std::vector<SplitStep>& path) {
  if (path.empty()) return "<all>";
  std::string label;
  for (size_t i = 0; i < path.size(); ++i) {
    const SplitStep& step = path[i];
    if (i > 0) label += " & ";
    const AttributeSpec& spec = schema.attribute(step.attr_index);
    label += spec.name();
    label += "=";
    label += spec.GroupLabel(step.group_index);
  }
  return label;
}

}  // namespace

std::string PartitionLabel(const Schema& schema, const Partition& partition) {
  if (partition.is_merged()) {
    std::string label;
    for (size_t i = 0; i < partition.merged_paths.size(); ++i) {
      if (i > 0) label += " | ";
      label += PathLabel(schema, partition.merged_paths[i]);
    }
    return label;
  }
  return PathLabel(schema, partition.path);
}

std::vector<std::string> AttributesUsed(const Schema& schema,
                                        const Partitioning& partitioning) {
  std::set<size_t> indices;
  for (const Partition& p : partitioning) {
    for (const SplitStep& step : p.path) indices.insert(step.attr_index);
    for (const auto& path : p.merged_paths) {
      for (const SplitStep& step : path) indices.insert(step.attr_index);
    }
  }
  std::vector<std::string> names;
  names.reserve(indices.size());
  for (size_t i : indices) names.push_back(schema.attribute(i).name());
  return names;
}

bool IsValidPartitioning(const Partitioning& partitioning, size_t num_rows) {
  std::vector<bool> seen(num_rows, false);
  size_t covered = 0;
  for (const Partition& p : partitioning) {
    if (p.rows.empty()) return false;
    for (size_t row : p.rows) {
      if (row >= num_rows || seen[row]) return false;
      seen[row] = true;
      ++covered;
    }
  }
  return covered == num_rows;
}

}  // namespace fairrank
