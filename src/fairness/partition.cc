#include "fairness/partition.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace fairrank {

Partition MakeRootPartition(size_t num_rows) {
  Partition root;
  root.rows.resize(num_rows);
  std::iota(root.rows.begin(), root.rows.end(), size_t{0});
  return root;
}

namespace {

std::string PathLabel(const Schema& schema,
                      const std::vector<SplitStep>& path) {
  if (path.empty()) return "<all>";
  std::string label;
  for (size_t i = 0; i < path.size(); ++i) {
    const SplitStep& step = path[i];
    if (i > 0) label += " & ";
    const AttributeSpec& spec = schema.attribute(step.attr_index);
    label += spec.name();
    label += "=";
    label += spec.GroupLabel(step.group_index);
  }
  return label;
}

}  // namespace

std::string PartitionLabel(const Schema& schema, const Partition& partition) {
  if (partition.is_merged()) {
    std::string label;
    for (size_t i = 0; i < partition.merged_paths.size(); ++i) {
      if (i > 0) label += " | ";
      label += PathLabel(schema, partition.merged_paths[i]);
    }
    return label;
  }
  return PathLabel(schema, partition.path);
}

std::vector<std::string> AttributesUsed(const Schema& schema,
                                        const Partitioning& partitioning) {
  std::set<size_t> indices;
  for (const Partition& p : partitioning) {
    for (const SplitStep& step : p.path) indices.insert(step.attr_index);
    for (const auto& path : p.merged_paths) {
      for (const SplitStep& step : path) indices.insert(step.attr_index);
    }
  }
  std::vector<std::string> names;
  names.reserve(indices.size());
  for (size_t i : indices) names.push_back(schema.attribute(i).name());
  return names;
}

bool IsValidPartitioning(const Partitioning& partitioning, size_t num_rows) {
  std::vector<bool> seen(num_rows, false);
  size_t covered = 0;
  for (const Partition& p : partitioning) {
    if (p.rows.empty()) return false;
    for (size_t row : p.rows) {
      if (row >= num_rows || seen[row]) return false;
      seen[row] = true;
      ++covered;
    }
  }
  return covered == num_rows;
}

}  // namespace fairrank
