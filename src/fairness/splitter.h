#ifndef FAIRRANK_FAIRNESS_SPLITTER_H_
#define FAIRRANK_FAIRNESS_SPLITTER_H_

#include <vector>

#include "data/table.h"
#include "fairness/partition.h"

namespace fairrank {

/// Splits one partition on protected attribute `attr_index`: rows are
/// grouped by their attribute group (category code or numeric bucket); only
/// non-empty groups are returned, each with the parent's path extended by
/// the corresponding SplitStep. Row order within children preserves the
/// parent's order, keeping everything deterministic.
///
/// A partition in which the attribute takes a single value yields exactly
/// one child (identical row set, longer path).
std::vector<Partition> SplitPartition(const Table& table,
                                      const Partition& partition,
                                      size_t attr_index);

/// Splits every partition of `partitioning` on `attr_index` and concatenates
/// the children — the `split(current, a)` of Algorithm 1 (balanced).
Partitioning SplitAll(const Table& table, const Partitioning& partitioning,
                      size_t attr_index);

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_SPLITTER_H_
