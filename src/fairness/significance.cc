#include "fairness/significance.h"

#include <algorithm>

#include "common/rng.h"
#include "stats/descriptive.h"

namespace fairrank {

namespace {

Status CheckInputs(const UnfairnessEvaluator& eval,
                   const Partitioning& partitioning, size_t iterations) {
  if (iterations == 0) {
    return Status::InvalidArgument("iterations must be positive");
  }
  if (!IsValidPartitioning(partitioning, eval.table().num_rows())) {
    return Status::InvalidArgument("invalid partitioning for this table");
  }
  return Status::OK();
}

/// Average pairwise divergence over histograms built from `scores` under
/// the evaluator's bin configuration.
StatusOr<double> UnfairnessWithScores(const UnfairnessEvaluator& eval,
                                      const Partitioning& partitioning,
                                      const std::vector<double>& scores) {
  if (partitioning.size() < 2) return 0.0;
  std::vector<Histogram> hists;
  hists.reserve(partitioning.size());
  for (const Partition& p : partitioning) {
    Histogram h(eval.options().num_bins, eval.options().score_lo,
                eval.options().score_hi);
    for (size_t row : p.rows) h.Add(scores[row]);
    hists.push_back(std::move(h));
  }
  double sum = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < hists.size(); ++i) {
    for (size_t j = i + 1; j < hists.size(); ++j) {
      FAIRRANK_ASSIGN_OR_RETURN(
          double d, eval.divergence().Distance(hists[i], hists[j]));
      sum += d;
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

}  // namespace

StatusOr<BootstrapResult> BootstrapUnfairness(const UnfairnessEvaluator& eval,
                                              const Partitioning& partitioning,
                                              size_t iterations,
                                              uint64_t seed) {
  FAIRRANK_RETURN_NOT_OK(CheckInputs(eval, partitioning, iterations));
  BootstrapResult result;
  result.iterations = iterations;
  FAIRRANK_ASSIGN_OR_RETURN(result.observed,
                            eval.AveragePairwiseUnfairness(partitioning));

  Rng rng(seed);
  std::vector<double> samples;
  samples.reserve(iterations);
  std::vector<double> scores = eval.scores();
  for (size_t it = 0; it < iterations; ++it) {
    // Resample each partition's members with replacement, writing the
    // drawn scores onto the partition's own row slots so the partitioning
    // structure is reused as-is.
    std::vector<double> resampled = scores;
    for (const Partition& p : partitioning) {
      for (size_t slot : p.rows) {
        size_t pick = p.rows[rng.UniformIndex(p.rows.size())];
        resampled[slot] = scores[pick];
      }
    }
    FAIRRANK_ASSIGN_OR_RETURN(
        double u, UnfairnessWithScores(eval, partitioning, resampled));
    samples.push_back(u);
  }
  FAIRRANK_ASSIGN_OR_RETURN(result.mean, Mean(samples));
  FAIRRANK_ASSIGN_OR_RETURN(result.ci_lo, Quantile(samples, 0.025));
  FAIRRANK_ASSIGN_OR_RETURN(result.ci_hi, Quantile(samples, 0.975));
  return result;
}

StatusOr<PermutationResult> PermutationTestUnfairness(
    const UnfairnessEvaluator& eval, const Partitioning& partitioning,
    size_t iterations, uint64_t seed) {
  FAIRRANK_RETURN_NOT_OK(CheckInputs(eval, partitioning, iterations));
  PermutationResult result;
  result.iterations = iterations;
  FAIRRANK_ASSIGN_OR_RETURN(result.observed,
                            eval.AveragePairwiseUnfairness(partitioning));

  Rng rng(seed);
  std::vector<double> permuted = eval.scores();
  size_t at_least_as_extreme = 0;
  double null_sum = 0.0;
  for (size_t it = 0; it < iterations; ++it) {
    rng.Shuffle(&permuted);
    FAIRRANK_ASSIGN_OR_RETURN(
        double u, UnfairnessWithScores(eval, partitioning, permuted));
    null_sum += u;
    if (u >= result.observed - 1e-12) ++at_least_as_extreme;
  }
  result.null_mean = null_sum / static_cast<double>(iterations);
  result.p_value = static_cast<double>(at_least_as_extreme + 1) /
                   static_cast<double>(iterations + 1);
  return result;
}

}  // namespace fairrank
