#ifndef FAIRRANK_FAIRNESS_BALANCED_H_
#define FAIRRANK_FAIRNESS_BALANCED_H_

#include <memory>

#include "fairness/algorithm.h"

namespace fairrank {

/// Algorithm 1 of the paper (`balanced`): repeatedly split *every* current
/// partition on the attribute chosen by `selector` (the worst attribute for
/// the paper's variant, a random one for r-balanced), stopping when the
/// average pairwise divergence no longer increases. Produces a balanced
/// partitioning tree — all leaves share the same split attributes.
///
/// `name` lets the registry reuse this implementation for "balanced" and
/// "r-balanced".
std::unique_ptr<PartitioningAlgorithm> MakeBalancedAlgorithm(
    std::string name, std::unique_ptr<AttributeSelector> selector);

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_BALANCED_H_
