#include "fairness/aggregate.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <utility>

#include "common/fault_injection.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace fairrank {
namespace {

/// Always-on ingest / aggregate-audit metrics, registered once (the
/// static-registration idiom of telemetry.h).
struct AggregateMetrics {
  MetricCounter* ingest_rows;
  MetricCounter* ingest_shards;
  MetricCounter* ingest_builds;
  MetricHistogram* ingest_seconds;
  MetricCounter* audits;

  static const AggregateMetrics& Get() {
    static const AggregateMetrics* metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      auto* m = new AggregateMetrics();
      m->ingest_rows = registry.GetCounter(
          "fairrank_ingest_rows_total",
          "Rows ingested into cell stores via BuildCellStoreParallel");
      m->ingest_shards = registry.GetCounter(
          "fairrank_ingest_shards_total",
          "Cell-store shards accumulated by parallel ingest");
      m->ingest_builds = registry.GetCounter(
          "fairrank_ingest_builds_total",
          "Completed BuildCellStoreParallel calls");
      m->ingest_seconds = registry.GetHistogram(
          "fairrank_ingest_seconds",
          "Wall-clock seconds of one parallel cell-store ingest");
      m->audits = registry.GetCounter(
          "fairrank_aggregate_audits_total",
          "Completed aggregate (cell-store) balanced audits");
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

StatusOr<CellStore> CellStore::Make(std::vector<AttributeSpec> protected_specs,
                                    int num_bins, double score_lo,
                                    double score_hi) {
  if (protected_specs.empty()) {
    return Status::InvalidArgument(
        "cell store needs at least one protected attribute");
  }
  for (const AttributeSpec& spec : protected_specs) {
    FAIRRANK_RETURN_NOT_OK(spec.Validate());
  }
  if (num_bins < 1) {
    return Status::InvalidArgument(
        "cell store needs at least one histogram bin, got " +
        std::to_string(num_bins));
  }
  if (!(score_lo < score_hi)) {
    std::string message = "cell store score range is empty: [";
    message += FormatDouble(score_lo, 6);
    message += ", ";
    message += FormatDouble(score_hi, 6);
    message += "]";
    return Status::InvalidArgument(message);
  }
  return CellStore(std::move(protected_specs), num_bins, score_lo, score_hi);
}

CellStore::CellStore(std::vector<AttributeSpec> protected_specs, int num_bins,
                     double score_lo, double score_hi)
    : specs_(std::move(protected_specs)),
      num_bins_(num_bins),
      score_lo_(score_lo),
      score_hi_(score_hi) {
  assert(!specs_.empty() && num_bins >= 1 && score_lo < score_hi);
}

Status CellStore::CheckKey(const std::vector<int>& groups) const {
  if (groups.size() != specs_.size()) {
    return Status::InvalidArgument(
        "cell key has " + std::to_string(groups.size()) + " groups, store has " +
        std::to_string(specs_.size()) + " attributes");
  }
  for (size_t a = 0; a < groups.size(); ++a) {
    if (groups[a] < 0 || groups[a] >= specs_[a].num_groups()) {
      return Status::OutOfRange("group " + std::to_string(groups[a]) +
                                " out of range for attribute '" +
                                specs_[a].name() + "'");
    }
  }
  return Status::OK();
}

Status CellStore::Add(const std::vector<int>& groups, double score) {
  FAIRRANK_RETURN_NOT_OK(CheckKey(groups));
  auto it = cells_.find(groups);
  if (it == cells_.end()) {
    it = cells_.emplace(groups, StoreCell(num_bins_, score_lo_, score_hi_))
             .first;
  }
  it->second.histogram.Add(score);
  ++it->second.count;
  ++observations_;
  return Status::OK();
}

Status CellStore::AddRow(const Table& table, size_t row, double score) {
  std::vector<int> groups(specs_.size());
  for (size_t a = 0; a < specs_.size(); ++a) {
    FAIRRANK_ASSIGN_OR_RETURN(size_t index,
                              table.schema().FindIndex(specs_[a].name()));
    groups[a] = table.GroupIndex(row, index);
  }
  return Add(groups, score);
}

Status CellStore::MergeCell(const std::vector<int>& groups,
                            const Histogram& histogram, size_t count) {
  FAIRRANK_RETURN_NOT_OK(CheckKey(groups));
  auto it = cells_.find(groups);
  if (it == cells_.end()) {
    it = cells_.emplace(groups, StoreCell(num_bins_, score_lo_, score_hi_))
             .first;
  }
  // MergeWith rejects a bin-config mismatch, naming both shapes.
  FAIRRANK_RETURN_NOT_OK(it->second.histogram.MergeWith(histogram));
  it->second.count += count;
  observations_ += count;
  return Status::OK();
}

Status CellStore::MergeFrom(const CellStore& other) {
  if (other.specs_.size() != specs_.size()) {
    return Status::InvalidArgument(
        "cannot merge cell stores: " + std::to_string(specs_.size()) +
        " attributes here vs " + std::to_string(other.specs_.size()) +
        " there");
  }
  for (size_t a = 0; a < specs_.size(); ++a) {
    if (specs_[a].name() != other.specs_[a].name() ||
        specs_[a].num_groups() != other.specs_[a].num_groups()) {
      std::string message = "cannot merge cell stores: attribute ";
      message += std::to_string(a);
      message += " is '";
      message += specs_[a].name();
      message += "' (";
      message += std::to_string(specs_[a].num_groups());
      message += " groups) here vs '";
      message += other.specs_[a].name();
      message += "' (";
      message += std::to_string(other.specs_[a].num_groups());
      message += " groups) there";
      return Status::InvalidArgument(message);
    }
  }
  if (other.num_bins_ != num_bins_ || other.score_lo_ != score_lo_ ||
      other.score_hi_ != score_hi_) {
    std::string message = "cannot merge cell stores: ";
    message += std::to_string(num_bins_);
    message += " bins over [";
    message += FormatDouble(score_lo_, 6);
    message += ", ";
    message += FormatDouble(score_hi_, 6);
    message += "] here vs ";
    message += std::to_string(other.num_bins_);
    message += " bins over [";
    message += FormatDouble(other.score_lo_, 6);
    message += ", ";
    message += FormatDouble(other.score_hi_, 6);
    message += "] there";
    return Status::InvalidArgument(message);
  }
  for (const auto& [key, cell] : other.cells_) {
    FAIRRANK_RETURN_NOT_OK(MergeCell(key, cell.histogram, cell.count));
  }
  return Status::OK();
}

namespace {

/// Above this many dense cells (cross-product of group cardinalities) the
/// flat per-shard arrays stop being cheap and shards fall back to a private
/// CellStore map. The paper's worker schema has 1800 cells; the cap leaves
/// two orders of magnitude of headroom (64K cells * 10 bins * 8 B ≈ 5 MB
/// per shard).
constexpr size_t kDenseCellCap = size_t{1} << 16;

/// Row block between deadline / cancellation checks on the shard hot loop.
constexpr size_t kIngestCheckBlock = 4096;

/// Precomputed ingest plan shared read-only by every shard: resolved specs,
/// their table column indices, and the mixed-radix strides mapping a group
/// vector to a dense cell id (spec 0 most significant, so ascending dense
/// ids enumerate cell keys in lexicographic — i.e. std::map — order).
struct IngestPlan {
  std::vector<AttributeSpec> specs;
  std::vector<size_t> columns;
  std::vector<size_t> strides;
  size_t num_dense_cells = 0;  ///< 0 = too many, use the sparse fallback.
  int num_bins = 1;
  double score_lo = 0.0;
  double score_hi = 1.0;
};

StatusOr<IngestPlan> MakeIngestPlan(const Table& table,
                                    const CellStoreIngestOptions& options) {
  IngestPlan plan;
  plan.num_bins = options.num_bins;
  plan.score_lo = options.score_lo;
  plan.score_hi = options.score_hi;
  if (options.protected_attributes.empty()) {
    for (size_t index : table.schema().ProtectedIndices()) {
      plan.columns.push_back(index);
      plan.specs.push_back(table.schema().attribute(index));
    }
    if (plan.columns.empty()) {
      return Status::FailedPrecondition(
          "table schema declares no protected attributes");
    }
  } else {
    for (const std::string& name : options.protected_attributes) {
      FAIRRANK_ASSIGN_OR_RETURN(size_t index, table.schema().FindIndex(name));
      plan.columns.push_back(index);
      plan.specs.push_back(table.schema().attribute(index));
    }
  }
  size_t cells = 1;
  for (const AttributeSpec& spec : plan.specs) {
    size_t groups = static_cast<size_t>(spec.num_groups());
    if (groups == 0 || cells > kDenseCellCap / groups) {
      cells = 0;
      break;
    }
    cells *= groups;
  }
  plan.num_dense_cells = cells;
  plan.strides.assign(plan.specs.size(), 1);
  if (cells > 0) {
    for (size_t a = plan.specs.size(); a-- > 1;) {
      plan.strides[a - 1] =
          plan.strides[a] * static_cast<size_t>(plan.specs[a].num_groups());
    }
  }
  return plan;
}

/// One worker thread's private accumulator (no locks on the add path).
/// Dense schemas use flat arrays indexed by the mixed-radix cell id; huge
/// cross-products fall back to a private CellStore map.
struct CellStoreShard {
  std::vector<double> bins;     ///< num_dense_cells * num_bins.
  std::vector<size_t> counts;   ///< num_dense_cells.
  std::vector<double> clamped;  ///< num_dense_cells.
  std::optional<CellStore> sparse;
  Status status = Status::OK();
  size_t rows = 0;
};

/// Approximate bytes one dense shard allocates, for the memory budget.
uint64_t DenseShardBytes(const IngestPlan& plan) {
  return static_cast<uint64_t>(plan.num_dense_cells) *
         (static_cast<uint64_t>(plan.num_bins) * sizeof(double) +
          sizeof(size_t) + sizeof(double));
}

/// Runs one shard over rows [begin, end), leaving the outcome in `shard`.
void RunIngestShard(const Table& table, const std::vector<double>& scores,
                    const IngestPlan& plan, const ExecutionContext& context,
                    size_t begin, size_t end, CellStoreShard* shard) {
  const bool dense = plan.num_dense_cells > 0;
  uint64_t shard_bytes = dense ? DenseShardBytes(plan) : 0;
  ExhaustionReason reason = context.CheckMemory(shard_bytes);
  if (reason != ExhaustionReason::kNone) {
    shard->status = ExhaustionStatus(reason);
    return;
  }
  if (dense) {
    shard->bins.assign(plan.num_dense_cells * static_cast<size_t>(plan.num_bins),
                       0.0);
    shard->counts.assign(plan.num_dense_cells, 0);
    shard->clamped.assign(plan.num_dense_cells, 0.0);
  } else {
    shard->sparse.emplace(plan.specs, plan.num_bins, plan.score_lo,
                          plan.score_hi);
  }
  // Scratch histogram purely for BinOf: bit-identical binning (and clamp
  // semantics) with the serial Histogram::Add path.
  Histogram binner(plan.num_bins, plan.score_lo, plan.score_hi);
  std::vector<int> groups(plan.specs.size());
  size_t sparse_cells_charged = 0;
  for (size_t row = begin; row < end; ++row) {
    if ((shard->rows % kIngestCheckBlock) == 0 && shard->rows > 0) {
      reason = context.Check();
      if (reason != ExhaustionReason::kNone) {
        shard->status = ExhaustionStatus(reason);
        return;
      }
    }
    size_t cell = 0;
    for (size_t a = 0; a < plan.columns.size(); ++a) {
      int group = table.GroupIndex(row, plan.columns[a]);
      if (group < 0 || group >= plan.specs[a].num_groups()) {
        shard->status = Status::OutOfRange(
            "row " + std::to_string(row) + ": group " + std::to_string(group) +
            " out of range for attribute '" + plan.specs[a].name() + "'");
        return;
      }
      if (dense) {
        cell += static_cast<size_t>(group) * plan.strides[a];
      } else {
        groups[a] = group;
      }
    }
    double score = scores[row];
    if (dense) {
      shard->bins[cell * static_cast<size_t>(plan.num_bins) +
                  static_cast<size_t>(binner.BinOf(score))] += 1.0;
      if (score < plan.score_lo || score > plan.score_hi) {
        shard->clamped[cell] += 1.0;
      }
      ++shard->counts[cell];
    } else {
      shard->status = shard->sparse->Add(groups, score);
      if (!shard->status.ok()) return;
      // Sparse shards charge memory as cells materialize (the dense path
      // charged its arrays up front).
      size_t cells_now = shard->sparse->num_cells();
      if (cells_now > sparse_cells_charged) {
        uint64_t per_cell =
            static_cast<uint64_t>(plan.num_bins) * sizeof(double) + 96;
        reason = context.CheckMemory(
            (cells_now - sparse_cells_charged) * per_cell);
        sparse_cells_charged = cells_now;
        if (reason != ExhaustionReason::kNone) {
          shard->status = ExhaustionStatus(reason);
          return;
        }
      }
    }
    ++shard->rows;
  }
}

/// Converts a finished shard into a CellStore (dense arrays rehydrate via
/// Histogram::FromCounts; sparse shards already are one).
StatusOr<CellStore> ShardToStore(const IngestPlan& plan,
                                 CellStoreShard&& shard) {
  if (shard.sparse.has_value()) return std::move(*shard.sparse);
  FAIRRANK_ASSIGN_OR_RETURN(
      CellStore store, CellStore::Make(plan.specs, plan.num_bins,
                                       plan.score_lo, plan.score_hi));
  std::vector<int> key(plan.specs.size(), 0);
  for (size_t cell = 0; cell < plan.num_dense_cells; ++cell) {
    if (shard.counts[cell] == 0) continue;
    size_t rest = cell;
    for (size_t a = 0; a < plan.specs.size(); ++a) {
      key[a] = static_cast<int>(rest / plan.strides[a]);
      rest %= plan.strides[a];
    }
    std::vector<double> counts(
        shard.bins.begin() +
            static_cast<ptrdiff_t>(cell * static_cast<size_t>(plan.num_bins)),
        shard.bins.begin() + static_cast<ptrdiff_t>(
                                 (cell + 1) * static_cast<size_t>(plan.num_bins)));
    FAIRRANK_ASSIGN_OR_RETURN(
        Histogram histogram,
        Histogram::FromCounts(plan.num_bins, plan.score_lo, plan.score_hi,
                              std::move(counts), shard.clamped[cell]));
    FAIRRANK_RETURN_NOT_OK(store.MergeCell(key, histogram, shard.counts[cell]));
  }
  return store;
}

}  // namespace

StatusOr<CellStore> BuildCellStoreParallel(const Table& table,
                                           const std::vector<double>& scores,
                                           const CellStoreIngestOptions& options,
                                           const ExecutionContext& context) {
  if (scores.size() != table.num_rows()) {
    return Status::InvalidArgument(
        "scores has " + std::to_string(scores.size()) + " entries, table has " +
        std::to_string(table.num_rows()) + " rows");
  }
  FAIRRANK_ASSIGN_OR_RETURN(IngestPlan plan, MakeIngestPlan(table, options));
  // The factory validates the bin configuration once; shards inherit it.
  FAIRRANK_ASSIGN_OR_RETURN(
      CellStore result, CellStore::Make(plan.specs, options.num_bins,
                                        options.score_lo, options.score_hi));

  TraceContext* trace = context.trace();
  if (trace != nullptr && !trace->sampled()) trace = nullptr;
  ScopedSpan ingest_span(trace, "ingest", context.trace_parent());
  ExecutionContext bounded = context.WithTrace(trace, ingest_span.id());

  int threads = options.num_threads;
  if (threads <= 0) threads = HardwareThreads();
  size_t rows = table.num_rows();
  size_t num_shards =
      std::max<size_t>(1, std::min<size_t>(static_cast<size_t>(threads), rows));

  Stopwatch timer;
  std::vector<CellStoreShard> shards(num_shards);
  try {
    ParallelForEach(num_shards, threads, [&](size_t s) {
      // ParallelForEach doesn't run the chunk fault hook itself (ParallelFor
      // does); call it here so armed FAIRRANK_FAULT_* plans exercise the
      // ingest shards like any other parallel stage.
      fault::OnParallelChunk(s, bounded.cancel());
      size_t begin = rows * s / num_shards;
      size_t end = rows * (s + 1) / num_shards;
      RunIngestShard(table, scores, plan, bounded, begin, end, &shards[s]);
    });
  } catch (const std::exception& e) {
    // A thrown shard (fault injection, bad_alloc) surfaces as one Status;
    // ParallelForEach already ran every other shard to completion.
    return Status::Internal(std::string("ingest shard failed: ") + e.what());
  }
  // First failing shard by index wins, deterministically; sibling shards
  // are unaffected (they completed on their private accumulators).
  for (const CellStoreShard& shard : shards) {
    FAIRRANK_RETURN_NOT_OK(shard.status);
  }
  {
    ScopedSpan merge_span(trace, "ingest_merge", ingest_span.id());
    for (CellStoreShard& shard : shards) {
      FAIRRANK_ASSIGN_OR_RETURN(CellStore store,
                                ShardToStore(plan, std::move(shard)));
      FAIRRANK_RETURN_NOT_OK(result.MergeFrom(store));
    }
  }
  if (result.num_observations() != rows) {
    return Status::Internal(
        "ingest accounting desync: " +
        std::to_string(result.num_observations()) + " observations from " +
        std::to_string(rows) + " rows");
  }

  const AggregateMetrics& metrics = AggregateMetrics::Get();
  metrics.ingest_rows->Increment(rows);
  metrics.ingest_shards->Increment(num_shards);
  metrics.ingest_builds->Increment();
  metrics.ingest_seconds->Observe(timer.ElapsedSeconds());
  return result;
}

std::string AggregatePartitionLabel(const std::vector<AttributeSpec>& specs,
                                    const AggregatePartition& partition) {
  if (partition.constraints.empty()) return "<all>";
  std::string label;
  for (size_t i = 0; i < partition.constraints.size(); ++i) {
    const auto& [spec_index, group] = partition.constraints[i];
    if (i > 0) label += " & ";
    label += specs[spec_index].name();
    label += "=";
    label += specs[spec_index].GroupLabel(group);
  }
  return label;
}

namespace {

/// Internal partition: constraints plus the keys of the cells it unions.
struct WorkingPartition {
  std::vector<std::pair<size_t, int>> constraints;
  std::vector<const std::pair<const std::vector<int>, StoreCell>*> cells;
  Histogram histogram;
  size_t size = 0;  ///< Exact observation count (sum of cell counts).

  explicit WorkingPartition(int bins, double lo, double hi)
      : histogram(bins, lo, hi) {}
};

StatusOr<double> AvgPairwise(const std::vector<WorkingPartition>& parts,
                             const Divergence& divergence) {
  if (parts.size() < 2) return 0.0;
  double sum = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < parts.size(); ++i) {
    for (size_t j = i + 1; j < parts.size(); ++j) {
      FAIRRANK_ASSIGN_OR_RETURN(
          double d,
          divergence.Distance(parts[i].histogram, parts[j].histogram));
      sum += d;
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

/// Splits every partition on spec `attr`; cells group by key[attr].
StatusOr<std::vector<WorkingPartition>> SplitAllCells(
    const CellStore& store, const std::vector<WorkingPartition>& parts,
    size_t attr) {
  std::vector<WorkingPartition> result;
  for (const WorkingPartition& part : parts) {
    std::map<int, WorkingPartition> children;
    for (const auto* cell : part.cells) {
      int group = cell->first[attr];
      auto it = children.find(group);
      if (it == children.end()) {
        WorkingPartition child(store.num_bins(), store.score_lo(),
                               store.score_hi());
        child.constraints = part.constraints;
        child.constraints.emplace_back(attr, group);
        it = children.emplace(group, std::move(child)).first;
      }
      it->second.cells.push_back(cell);
      it->second.size += cell->second.count;
      FAIRRANK_RETURN_NOT_OK(
          it->second.histogram.MergeWith(cell->second.histogram));
    }
    for (auto& [group, child] : children) {
      result.push_back(std::move(child));
    }
  }
  return result;
}

}  // namespace

StatusOr<AggregateAuditResult> AuditAggregateBalanced(
    const CellStore& store, const std::string& divergence_name,
    const ExecutionContext& context) {
  if (store.num_cells() == 0) {
    return Status::FailedPrecondition("cell store is empty");
  }
  FAIRRANK_ASSIGN_OR_RETURN(std::unique_ptr<Divergence> divergence,
                            MakeDivergenceByName(divergence_name));

  TraceContext* trace = context.trace();
  if (trace != nullptr && !trace->sampled()) trace = nullptr;
  ScopedSpan audit_span(trace, "aggregate_audit", context.trace_parent());

  // Root partition holding every cell.
  WorkingPartition root(store.num_bins(), store.score_lo(), store.score_hi());
  for (const auto& cell : store.cells()) {
    root.cells.push_back(&cell);
    root.size += cell.second.count;
    FAIRRANK_RETURN_NOT_OK(root.histogram.MergeWith(cell.second.histogram));
  }
  std::vector<WorkingPartition> current;
  current.push_back(std::move(root));

  std::vector<size_t> attrs(store.specs().size());
  for (size_t i = 0; i < attrs.size(); ++i) attrs[i] = i;
  std::vector<size_t> used;

  // Balanced (Algorithm 1) over cells: pick the worst attribute, split all,
  // stop when the average pairwise divergence no longer increases. The
  // context is checked between candidate evaluations: the cell space is
  // tiny next to ingest, but a server deadline still has to be able to cut
  // a pathological cross-product short.
  auto select_worst = [&](const std::vector<WorkingPartition>& parts,
                          const std::vector<size_t>& remaining)
      -> StatusOr<size_t> {
    size_t best_pos = 0;
    double best_avg = -1.0;
    for (size_t pos = 0; pos < remaining.size(); ++pos) {
      ExhaustionReason reason = context.Check();
      if (reason != ExhaustionReason::kNone) return ExhaustionStatus(reason);
      FAIRRANK_ASSIGN_OR_RETURN(
          std::vector<WorkingPartition> candidate,
          SplitAllCells(store, parts, remaining[pos]));
      FAIRRANK_ASSIGN_OR_RETURN(double avg,
                                AvgPairwise(candidate, *divergence));
      if (avg > best_avg) {
        best_avg = avg;
        best_pos = pos;
      }
    }
    return best_pos;
  };

  double current_avg = 0.0;
  bool first = true;
  while (!attrs.empty()) {
    ExhaustionReason reason = context.Check();
    if (reason != ExhaustionReason::kNone) return ExhaustionStatus(reason);
    FAIRRANK_ASSIGN_OR_RETURN(size_t pos, select_worst(current, attrs));
    size_t attr = attrs[pos];
    attrs.erase(attrs.begin() + static_cast<ptrdiff_t>(pos));
    FAIRRANK_ASSIGN_OR_RETURN(std::vector<WorkingPartition> children,
                              SplitAllCells(store, current, attr));
    FAIRRANK_ASSIGN_OR_RETURN(double children_avg,
                              AvgPairwise(children, *divergence));
    if (!first && current_avg >= children_avg) break;
    current = std::move(children);
    current_avg = children_avg;
    used.push_back(attr);
    first = false;
  }

  AggregateAuditResult result;
  result.unfairness = current_avg;
  result.attributes_used = std::move(used);
  result.partitions.reserve(current.size());
  size_t covered = 0;
  for (WorkingPartition& part : current) {
    AggregatePartition out;
    out.constraints = std::move(part.constraints);
    // Exact count, not histogram mass: clamped out-of-range scores (or
    // future sketch mass) would silently desync the latter from
    // num_observations().
    out.size = part.size;
    covered += part.size;
    out.histogram = std::move(part.histogram);
    result.partitions.push_back(std::move(out));
  }
  if (covered != store.num_observations()) {
    return Status::Internal(
        "aggregate audit lost observations: partitions cover " +
        std::to_string(covered) + " of " +
        std::to_string(store.num_observations()));
  }
  AggregateMetrics::Get().audits->Increment();
  return result;
}

}  // namespace fairrank
