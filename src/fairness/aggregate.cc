#include "fairness/aggregate.h"

#include <algorithm>

namespace fairrank {

CellStore::CellStore(std::vector<AttributeSpec> protected_specs, int num_bins,
                     double score_lo, double score_hi)
    : specs_(std::move(protected_specs)),
      num_bins_(num_bins),
      score_lo_(score_lo),
      score_hi_(score_hi) {}

Status CellStore::Add(const std::vector<int>& groups, double score) {
  if (groups.size() != specs_.size()) {
    return Status::InvalidArgument(
        "cell key has " + std::to_string(groups.size()) + " groups, store has " +
        std::to_string(specs_.size()) + " attributes");
  }
  for (size_t a = 0; a < groups.size(); ++a) {
    if (groups[a] < 0 || groups[a] >= specs_[a].num_groups()) {
      return Status::OutOfRange("group " + std::to_string(groups[a]) +
                                " out of range for attribute '" +
                                specs_[a].name() + "'");
    }
  }
  auto it = cells_.find(groups);
  if (it == cells_.end()) {
    it = cells_.emplace(groups, Histogram(num_bins_, score_lo_, score_hi_))
             .first;
  }
  it->second.Add(score);
  ++observations_;
  return Status::OK();
}

Status CellStore::AddRow(const Table& table, size_t row, double score) {
  std::vector<int> groups(specs_.size());
  for (size_t a = 0; a < specs_.size(); ++a) {
    FAIRRANK_ASSIGN_OR_RETURN(size_t index,
                              table.schema().FindIndex(specs_[a].name()));
    groups[a] = table.GroupIndex(row, index);
  }
  return Add(groups, score);
}

std::string AggregatePartitionLabel(const std::vector<AttributeSpec>& specs,
                                    const AggregatePartition& partition) {
  if (partition.constraints.empty()) return "<all>";
  std::string label;
  for (size_t i = 0; i < partition.constraints.size(); ++i) {
    const auto& [spec_index, group] = partition.constraints[i];
    if (i > 0) label += " & ";
    label += specs[spec_index].name();
    label += "=";
    label += specs[spec_index].GroupLabel(group);
  }
  return label;
}

namespace {

/// Internal partition: constraints plus the keys of the cells it unions.
struct WorkingPartition {
  std::vector<std::pair<size_t, int>> constraints;
  std::vector<const std::pair<const std::vector<int>, Histogram>*> cells;
  Histogram histogram;

  explicit WorkingPartition(int bins, double lo, double hi)
      : histogram(bins, lo, hi) {}
};

StatusOr<double> AvgPairwise(const std::vector<WorkingPartition>& parts,
                             const Divergence& divergence) {
  if (parts.size() < 2) return 0.0;
  double sum = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < parts.size(); ++i) {
    for (size_t j = i + 1; j < parts.size(); ++j) {
      FAIRRANK_ASSIGN_OR_RETURN(
          double d,
          divergence.Distance(parts[i].histogram, parts[j].histogram));
      sum += d;
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

/// Splits every partition on spec `attr`; cells group by key[attr].
StatusOr<std::vector<WorkingPartition>> SplitAllCells(
    const CellStore& store, const std::vector<WorkingPartition>& parts,
    size_t attr) {
  std::vector<WorkingPartition> result;
  for (const WorkingPartition& part : parts) {
    std::map<int, WorkingPartition> children;
    for (const auto* cell : part.cells) {
      int group = cell->first[attr];
      auto it = children.find(group);
      if (it == children.end()) {
        WorkingPartition child(store.num_bins(), store.score_lo(),
                               store.score_hi());
        child.constraints = part.constraints;
        child.constraints.emplace_back(attr, group);
        it = children.emplace(group, std::move(child)).first;
      }
      it->second.cells.push_back(cell);
      FAIRRANK_RETURN_NOT_OK(it->second.histogram.MergeWith(cell->second));
    }
    for (auto& [group, child] : children) {
      result.push_back(std::move(child));
    }
  }
  return result;
}

}  // namespace

StatusOr<AggregateAuditResult> AuditAggregateBalanced(
    const CellStore& store, const std::string& divergence_name) {
  if (store.num_cells() == 0) {
    return Status::FailedPrecondition("cell store is empty");
  }
  FAIRRANK_ASSIGN_OR_RETURN(std::unique_ptr<Divergence> divergence,
                            MakeDivergenceByName(divergence_name));

  // Root partition holding every cell.
  WorkingPartition root(store.num_bins(), store.score_lo(), store.score_hi());
  for (const auto& cell : store.cells()) {
    root.cells.push_back(&cell);
    FAIRRANK_RETURN_NOT_OK(root.histogram.MergeWith(cell.second));
  }
  std::vector<WorkingPartition> current;
  current.push_back(std::move(root));

  std::vector<size_t> attrs(store.specs().size());
  for (size_t i = 0; i < attrs.size(); ++i) attrs[i] = i;
  std::vector<size_t> used;

  // Balanced (Algorithm 1) over cells: pick the worst attribute, split all,
  // stop when the average pairwise divergence no longer increases.
  auto select_worst = [&](const std::vector<WorkingPartition>& parts,
                          const std::vector<size_t>& remaining)
      -> StatusOr<size_t> {
    size_t best_pos = 0;
    double best_avg = -1.0;
    for (size_t pos = 0; pos < remaining.size(); ++pos) {
      FAIRRANK_ASSIGN_OR_RETURN(
          std::vector<WorkingPartition> candidate,
          SplitAllCells(store, parts, remaining[pos]));
      FAIRRANK_ASSIGN_OR_RETURN(double avg,
                                AvgPairwise(candidate, *divergence));
      if (avg > best_avg) {
        best_avg = avg;
        best_pos = pos;
      }
    }
    return best_pos;
  };

  double current_avg = 0.0;
  bool first = true;
  while (!attrs.empty()) {
    FAIRRANK_ASSIGN_OR_RETURN(size_t pos, select_worst(current, attrs));
    size_t attr = attrs[pos];
    attrs.erase(attrs.begin() + static_cast<ptrdiff_t>(pos));
    FAIRRANK_ASSIGN_OR_RETURN(std::vector<WorkingPartition> children,
                              SplitAllCells(store, current, attr));
    FAIRRANK_ASSIGN_OR_RETURN(double children_avg,
                              AvgPairwise(children, *divergence));
    if (!first && current_avg >= children_avg) break;
    current = std::move(children);
    current_avg = children_avg;
    used.push_back(attr);
    first = false;
  }

  AggregateAuditResult result;
  result.unfairness = current_avg;
  result.attributes_used = std::move(used);
  result.partitions.reserve(current.size());
  for (WorkingPartition& part : current) {
    AggregatePartition out;
    out.constraints = std::move(part.constraints);
    out.size = static_cast<size_t>(part.histogram.total());
    out.histogram = std::move(part.histogram);
    result.partitions.push_back(std::move(out));
  }
  return result;
}

}  // namespace fairrank
