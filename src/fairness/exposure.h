#ifndef FAIRRANK_FAIRNESS_EXPOSURE_H_
#define FAIRRANK_FAIRNESS_EXPOSURE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"
#include "marketplace/ranking.h"

namespace fairrank {

/// Position-bias model for exposure: the attention a worker receives at
/// 1-based rank r.
enum class PositionBias {
  /// 1 / log2(r + 1) — the DCG discount used by Singh & Joachims (KDD'18),
  /// which the paper cites as the pre-defined-groups approach it extends.
  kLogarithmic,
  /// 1 / r.
  kReciprocal,
  /// 1 for the top k positions, 0 below (set `top_k`).
  kTopK,
};

struct ExposureOptions {
  PositionBias bias = PositionBias::kLogarithmic;
  /// Used only by PositionBias::kTopK.
  size_t top_k = 10;
};

/// Per-group exposure of one protected attribute under a ranking.
struct GroupExposure {
  std::string group_label;
  size_t group_size = 0;
  /// Mean position-bias weight over the group's members.
  double mean_exposure = 0.0;
  /// Mean score of the group's members (the "merit" side of a disparate-
  /// treatment check).
  double mean_score = 0.0;
};

/// Exposure audit of one attribute: the per-group numbers plus two
/// disparity summaries.
struct ExposureReport {
  std::string attribute;
  std::vector<GroupExposure> groups;
  /// max_g mean_exposure - min_g mean_exposure (demographic-parity gap).
  double exposure_gap = 0.0;
  /// max over group pairs of |e_i/s_i - e_j/s_j| where e is mean exposure
  /// and s mean score — Singh & Joachims' disparate-treatment view
  /// (exposure should be proportional to merit). 0 when any group has mean
  /// score 0.
  double treatment_disparity = 0.0;
};

/// Computes the exposure report of `attr_name` (a protected attribute)
/// under `ranking`, which must be a permutation of the table rows as
/// produced by RankingEngine::Rank. Complements the EMD audit: EMD compares
/// score *distributions*; exposure measures who actually gets seen at the
/// top of the list.
StatusOr<ExposureReport> ComputeExposure(
    const Table& table, const std::vector<RankedWorker>& ranking,
    const std::string& attr_name,
    const ExposureOptions& options = ExposureOptions());

/// Exposure reports for every protected attribute of the table's schema.
StatusOr<std::vector<ExposureReport>> ComputeAllExposures(
    const Table& table, const std::vector<RankedWorker>& ranking,
    const ExposureOptions& options = ExposureOptions());

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_EXPOSURE_H_
