#ifndef FAIRRANK_FAIRNESS_EVAL_CACHE_H_
#define FAIRRANK_FAIRNESS_EVAL_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/budget.h"
#include "common/thread_annotations.h"
#include "stats/histogram.h"

namespace fairrank {

/// Observability counters of one evaluator cache. "Misses" are actual
/// recomputations (histogram builds / divergence evaluations), so a
/// caching-disabled run reports every build as a miss and the hit/miss split
/// directly measures the work the cache saved. Counter totals are exact with
/// num_threads == 1; with a parallel evaluator two workers may race to
/// compute the same pair, so hit/miss splits can wobble by a few counts
/// across runs (the cached *values* never do).
struct EvalCacheStats {
  uint64_t histogram_hits = 0;
  uint64_t histogram_misses = 0;  ///< Histograms actually built.
  uint64_t divergence_hits = 0;
  uint64_t divergence_misses = 0;  ///< Divergences actually computed.
  uint64_t evictions = 0;          ///< Entries dropped by the byte cap.
  uint64_t bytes_used = 0;         ///< Resident cache bytes (approximate).
  uint64_t entries = 0;            ///< Live histogram + divergence entries.

  uint64_t histogram_lookups() const {
    return histogram_hits + histogram_misses;
  }
  uint64_t divergence_lookups() const {
    return divergence_hits + divergence_misses;
  }
  double histogram_hit_rate() const {
    uint64_t n = histogram_lookups();
    return n == 0 ? 0.0 : static_cast<double>(histogram_hits) / n;
  }
  double divergence_hit_rate() const {
    uint64_t n = divergence_lookups();
    return n == 0 ? 0.0 : static_cast<double>(divergence_hits) / n;
  }

  /// Accumulates `other` into this (used to combine the search and
  /// reporting evaluators of one audit).
  void Add(const EvalCacheStats& other);
};

/// Memoization layer for the evaluator hot path: per-partition score
/// histograms keyed by the partition's 64-bit row-set fingerprint, and
/// pairwise divergences keyed by the (unordered) fingerprint pair —
/// divergences are symmetric by the Divergence contract, so keys are
/// normalized to (min, max).
///
/// One cache belongs to exactly one UnfairnessEvaluator: fingerprints
/// identify row sets only, so entries are valid only for that evaluator's
/// fixed score vector and histogram shape. Never share a cache across
/// evaluators.
///
/// Memory discipline:
///  - `max_bytes` caps resident size; when an insert would exceed it the
///    whole cache is dropped in one epoch eviction (deterministic, keeps
///    the hot working set repopulating) and the entries are counted in
///    EvalCacheStats::evictions.
///  - When an ExecutionContext is attached, net new cache memory is charged
///    against its ResourceBudget in batches via CheckMemory allocation
///    checkpoints. Once a checkpoint reports exhaustion the cache stops
///    growing (lookups still serve) and the owning search truncates
///    gracefully at its next budget check — a tight budget degrades, it
///    never OOMs and never changes computed values.
///
/// Thread-safe: a single mutex guards both maps and the counters; with the
/// default serial evaluator it is uncontended.
class EvaluatorCache {
 public:
  /// `enabled` false makes Find/Insert count misses but never store —
  /// cache-off runs keep the same observability counters. `max_bytes` 0
  /// means uncapped.
  EvaluatorCache(bool enabled, uint64_t max_bytes);

  /// Budget charging context (see class comment). Cheap value copy.
  void AttachContext(const ExecutionContext& context);

  /// The cached histogram for `fingerprint`, or null on a miss.
  std::shared_ptr<const Histogram> FindHistogram(uint64_t fingerprint);

  /// Stores a freshly built histogram. No-op when disabled or stopped.
  void InsertHistogram(uint64_t fingerprint,
                       std::shared_ptr<const Histogram> histogram);

  /// True (and `*value` set) when the divergence of the fingerprint pair is
  /// cached. Fingerprint 0 ("unknown row set") never matches.
  bool FindDivergence(uint64_t fp_a, uint64_t fp_b, double* value);

  /// Stores a computed divergence. No-op when disabled, stopped, or either
  /// fingerprint is 0.
  void InsertDivergence(uint64_t fp_a, uint64_t fp_b, double value);

  EvalCacheStats Snapshot() const;

 private:
  struct PairKey {
    uint64_t lo = 0;
    uint64_t hi = 0;
    bool operator==(const PairKey& other) const {
      return lo == other.lo && hi == other.hi;
    }
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& key) const;
  };

  /// Evicts everything (epoch eviction) so `incoming_bytes` can fit, and
  /// charges the budget. Returns false when inserts must be skipped (budget
  /// stop or entry larger than the cap).
  bool ReserveLocked(uint64_t incoming_bytes) FAIRRANK_REQUIRES(mutex_);

  const bool enabled_;      ///< Immutable after construction.
  const uint64_t max_bytes_;  ///< Immutable after construction.

  /// Guards every mutable member below: both maps, the counters, the
  /// batched budget charge, and the attached context (AttachContext may
  /// race a concurrent lookup in principle).
  mutable std::mutex mutex_;
  ExecutionContext context_ FAIRRANK_GUARDED_BY(mutex_);
  std::unordered_map<uint64_t, std::shared_ptr<const Histogram>> histograms_
      FAIRRANK_GUARDED_BY(mutex_);
  std::unordered_map<PairKey, double, PairKeyHash> divergences_
      FAIRRANK_GUARDED_BY(mutex_);
  EvalCacheStats stats_ FAIRRANK_GUARDED_BY(mutex_);
  /// Bytes not yet charged to the budget.
  uint64_t pending_charge_ FAIRRANK_GUARDED_BY(mutex_) = 0;
  /// A CheckMemory checkpoint tripped.
  bool budget_stopped_ FAIRRANK_GUARDED_BY(mutex_) = false;
};

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_EVAL_CACHE_H_
