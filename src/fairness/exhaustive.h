#ifndef FAIRRANK_FAIRNESS_EXHAUSTIVE_H_
#define FAIRRANK_FAIRNESS_EXHAUSTIVE_H_

#include <cstdint>
#include <memory>

#include "fairness/algorithm.h"

namespace fairrank {

/// Budgets for the brute-force search. The paper's exhaustive run "failed to
/// terminate after running for two days"; we bound it explicitly instead.
/// Exhaustion no longer fails the run: the search returns its best-so-far
/// partitioning flagged `truncated` (see PartitioningAlgorithm), optionally
/// after a beam-search fallback.
struct ExhaustiveOptions {
  /// Maximum number of complete partitionings to evaluate before truncating
  /// (a built-in node budget, additive to any ExecutionContext budget).
  uint64_t max_partitionings = 1'000'000;
  /// Wall-clock budget in seconds; <= 0 disables the time limit. Equivalent
  /// to an ExecutionContext deadline (truncation reason "deadline").
  double max_seconds = 0.0;
  /// When the *node* budget trips (max_partitionings or the context's
  /// --max-nodes), rerun as a beam search — bounded by construction — under
  /// the same deadline/cancellation but without the spent node budget, and
  /// return whichever partitioning scores higher. Deadline or cancellation
  /// trips never trigger the fallback: no time is left to spend.
  bool fallback_to_beam = true;
  /// Beam width of the fallback search.
  int fallback_beam_width = 4;
};

/// Exact brute force over the space the heuristics navigate: every
/// *hierarchical* partitioning — each tree node is either a leaf or splits
/// on one attribute not used on its root path, with independent choices per
/// branch (the unbalanced-tree space, a superset of every partitioning the
/// paper's algorithms can return). Returns the partitioning with the highest
/// average pairwise divergence.
///
/// Splits in which the attribute takes a single value inside a partition are
/// skipped (they would re-enumerate an identical partitioning). The trivial
/// root partitioning is part of the space (unfairness 0).
///
/// Exponential; use only on toy instances or with tight budgets.
std::unique_ptr<PartitioningAlgorithm> MakeExhaustiveAlgorithm(
    const ExhaustiveOptions& options = ExhaustiveOptions());

/// Counts the number of hierarchical partitionings of `eval`'s table over
/// `attrs` without evaluating them, stopping (and returning `cap`) once the
/// count exceeds `cap`. Used by the blow-up bench.
uint64_t CountHierarchicalPartitionings(const UnfairnessEvaluator& eval,
                                        std::vector<size_t> attrs,
                                        uint64_t cap);

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_EXHAUSTIVE_H_
