#ifndef FAIRRANK_FAIRNESS_SERIALIZE_H_
#define FAIRRANK_FAIRNESS_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "data/table.h"
#include "fairness/partition.h"

namespace fairrank {

/// How ApplyPartitioningSpec treats rows whose attribute groups match no
/// serialized leaf (possible when the spec was built on a different sample
/// whose split dropped groups that were empty *there*).
enum class UnmatchedRowPolicy {
  /// Fail with InvalidArgument listing the first unmatched row.
  kError,
  /// Collect unmatched rows into one extra partition with an empty path.
  kCollectRest,
};

/// Serializes a partitioning's *structure* (not its row sets) as a stable,
/// human-readable text format:
///
///   # fairrank partitioning v1
///   partition: Gender=0 & Language=2
///   partition: Gender=1
///
/// Steps are `attribute_name=group_index`. A root partition serializes as
/// `partition: <all>`. The structure can be re-applied to any table whose
/// schema has the referenced attributes with at least as many groups —
/// e.g. audit a sample, then apply the found partitioning to the full
/// dataset or to next month's workers.
std::string SerializePartitioning(const Schema& schema,
                                  const Partitioning& partitioning);

/// Parses the text format produced by SerializePartitioning and assigns
/// every row of `table` to the partition whose path it matches. Paths must
/// be mutually exclusive (guaranteed for hierarchical partitionings; a row
/// matching two paths fails with InvalidArgument). Partitions that match no
/// row are dropped, mirroring the splitter's empty-group behaviour.
StatusOr<Partitioning> ApplyPartitioningSpec(
    const Table& table, const std::string& serialized,
    UnmatchedRowPolicy policy = UnmatchedRowPolicy::kError);

}  // namespace fairrank

#endif  // FAIRRANK_FAIRNESS_SERIALIZE_H_
