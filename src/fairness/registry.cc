#include "fairness/registry.h"

#include "fairness/agglomerative.h"
#include "fairness/balanced.h"
#include "fairness/baselines.h"
#include "fairness/beam.h"
#include "fairness/unbalanced.h"

namespace fairrank {

StatusOr<std::unique_ptr<PartitioningAlgorithm>> MakeAlgorithmByName(
    const std::string& name, const AlgorithmConfig& config) {
  if (name == "balanced") {
    return MakeBalancedAlgorithm("balanced", MakeWorstAttributeSelector());
  }
  if (name == "unbalanced") {
    return MakeUnbalancedAlgorithm("unbalanced", MakeWorstAttributeSelector());
  }
  if (name == "r-balanced") {
    return MakeBalancedAlgorithm("r-balanced",
                                 MakeRandomAttributeSelector(config.seed));
  }
  if (name == "r-unbalanced") {
    return MakeUnbalancedAlgorithm("r-unbalanced",
                                   MakeRandomAttributeSelector(config.seed));
  }
  if (name == "all-attributes") {
    return MakeAllAttributesAlgorithm();
  }
  if (name == "exhaustive") {
    return MakeExhaustiveAlgorithm(config.exhaustive);
  }
  if (name == "beam") {
    return MakeBeamAlgorithm(config.beam_width);
  }
  if (name == "merge") {
    return MakeAgglomerativeAlgorithm();
  }
  return Status::NotFound("unknown algorithm '" + name + "'");
}

std::vector<std::string> PaperAlgorithmNames() {
  return {"unbalanced", "r-unbalanced", "balanced", "r-balanced",
          "all-attributes"};
}

std::vector<std::string> KnownAlgorithmNames() {
  std::vector<std::string> names = PaperAlgorithmNames();
  names.push_back("exhaustive");
  names.push_back("beam");
  names.push_back("merge");
  return names;
}

}  // namespace fairrank
