#include "fairness/exposure.h"

#include <cmath>

namespace fairrank {

namespace {

double BiasAt(const ExposureOptions& options, size_t rank_1based) {
  switch (options.bias) {
    case PositionBias::kLogarithmic:
      return 1.0 / std::log2(static_cast<double>(rank_1based) + 1.0);
    case PositionBias::kReciprocal:
      return 1.0 / static_cast<double>(rank_1based);
    case PositionBias::kTopK:
      return rank_1based <= options.top_k ? 1.0 : 0.0;
  }
  return 0.0;
}

}  // namespace

StatusOr<ExposureReport> ComputeExposure(const Table& table,
                                         const std::vector<RankedWorker>& ranking,
                                         const std::string& attr_name,
                                         const ExposureOptions& options) {
  FAIRRANK_ASSIGN_OR_RETURN(size_t attr_index,
                            table.schema().FindIndex(attr_name));
  const AttributeSpec& spec = table.schema().attribute(attr_index);
  if (ranking.size() != table.num_rows()) {
    return Status::InvalidArgument(
        "ranking has " + std::to_string(ranking.size()) + " entries for " +
        std::to_string(table.num_rows()) + " rows");
  }
  std::vector<bool> seen(table.num_rows(), false);

  const size_t num_groups = static_cast<size_t>(spec.num_groups());
  std::vector<double> exposure_sum(num_groups, 0.0);
  std::vector<double> score_sum(num_groups, 0.0);
  std::vector<size_t> count(num_groups, 0);
  for (size_t i = 0; i < ranking.size(); ++i) {
    size_t row = ranking[i].row;
    if (row >= table.num_rows() || seen[row]) {
      return Status::InvalidArgument(
          "ranking is not a permutation of the table rows");
    }
    seen[row] = true;
    size_t g = static_cast<size_t>(table.GroupIndex(row, attr_index));
    exposure_sum[g] += BiasAt(options, i + 1);
    score_sum[g] += ranking[i].score;
    ++count[g];
  }

  ExposureReport report;
  report.attribute = attr_name;
  double min_exposure = 0.0;
  double max_exposure = 0.0;
  bool first = true;
  std::vector<double> ratios;
  for (size_t g = 0; g < num_groups; ++g) {
    if (count[g] == 0) continue;
    GroupExposure group;
    group.group_label = spec.GroupLabel(static_cast<int>(g));
    group.group_size = count[g];
    group.mean_exposure = exposure_sum[g] / static_cast<double>(count[g]);
    group.mean_score = score_sum[g] / static_cast<double>(count[g]);
    if (first) {
      min_exposure = max_exposure = group.mean_exposure;
      first = false;
    } else {
      min_exposure = std::min(min_exposure, group.mean_exposure);
      max_exposure = std::max(max_exposure, group.mean_exposure);
    }
    if (group.mean_score > 0.0) {
      ratios.push_back(group.mean_exposure / group.mean_score);
    }
    report.groups.push_back(std::move(group));
  }
  report.exposure_gap = first ? 0.0 : max_exposure - min_exposure;
  if (ratios.size() >= 2 && ratios.size() == report.groups.size()) {
    double lo = ratios[0];
    double hi = ratios[0];
    for (double r : ratios) {
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
    report.treatment_disparity = hi - lo;
  }
  return report;
}

StatusOr<std::vector<ExposureReport>> ComputeAllExposures(
    const Table& table, const std::vector<RankedWorker>& ranking,
    const ExposureOptions& options) {
  std::vector<ExposureReport> reports;
  for (size_t index : table.schema().ProtectedIndices()) {
    FAIRRANK_ASSIGN_OR_RETURN(
        ExposureReport report,
        ComputeExposure(table, ranking, table.schema().attribute(index).name(),
                        options));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace fairrank
