#ifndef FAIRRANK_MARKETPLACE_TASKS_H_
#define FAIRRANK_MARKETPLACE_TASKS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "fairness/auditor.h"
#include "marketplace/ranking.h"

namespace fairrank {

/// A task category with its canonical requester weight profile over
/// observed attributes — different job types weight the language test and
/// the approval rate differently, inducing different scoring functions
/// (the paper's alpha family, one alpha per category).
struct TaskCategory {
  std::string name;
  std::vector<std::pair<std::string, double>> weights;
};

/// One posted task on the platform.
struct PostedTask {
  size_t id = 0;
  std::string description;
  size_t category_index = 0;
};

/// The platform's task inventory: categories plus posted tasks drawn from
/// them. Categories are the audit unit — every task in a category shares
/// the category's scoring function.
class TaskCatalog {
 public:
  TaskCatalog() = default;

  /// The default five-category catalog spanning the alpha spectrum: from
  /// language-test-dominated ("content writing", the paper's f4 end) to
  /// approval-rate-dominated ("general labor", the f5 end).
  static TaskCatalog MakeDefaultCatalog();

  /// Adds a category. Fails on an empty name, a duplicate, or an empty
  /// weight list.
  Status AddCategory(TaskCategory category);

  size_t num_categories() const { return categories_.size(); }
  const TaskCategory& category(size_t index) const {
    return categories_[index];
  }

  /// Index of the named category, or NotFound.
  StatusOr<size_t> FindCategory(const std::string& name) const;

  /// The category's scoring function as a TaskQuery for RankingEngine.
  TaskQuery QueryFor(size_t category_index) const;

  /// Draws `n` posted tasks with uniformly random categories, numbered from
  /// `first_id`. Deterministic given the Rng state.
  std::vector<PostedTask> GenerateTasks(size_t n, Rng* rng,
                                        size_t first_id = 0) const;

 private:
  std::vector<TaskCategory> categories_;
};

/// One row of a per-category audit.
struct CategoryAuditRow {
  std::string category;
  double unfairness = 0.0;
  size_t num_partitions = 0;
  std::vector<std::string> attributes_used;
  bool truncated = false;  ///< This category's search stopped early.
};

/// Audits every category's scoring function against `workers` with the
/// given options — "which job types does this platform rank least fairly?".
/// Rows come back sorted by descending unfairness. A timeout in
/// `options.limits` is armed once and shared across categories, so the
/// whole catalog audit is bounded; late categories degrade to truncated
/// best-so-far rows.
StatusOr<std::vector<CategoryAuditRow>> AuditCatalog(
    const Table& workers, const TaskCatalog& catalog,
    const AuditOptions& options);

}  // namespace fairrank

#endif  // FAIRRANK_MARKETPLACE_TASKS_H_
