#include "marketplace/scoring.h"

#include "common/str_util.h"
#include "marketplace/worker.h"

namespace fairrank {

LinearScoringFunction::LinearScoringFunction(
    std::string name, std::vector<std::pair<std::string, double>> weights)
    : name_(std::move(name)), weights_(std::move(weights)) {}

StatusOr<std::vector<double>> LinearScoringFunction::ScoreAll(
    const Table& table) const {
  struct Term {
    size_t attr_index;
    double weight;
    double min;
    double inv_range;
  };
  std::vector<Term> terms;
  terms.reserve(weights_.size());
  for (const auto& [name, weight] : weights_) {
    if (weight < 0.0) {
      return Status::InvalidArgument("negative weight for attribute '" + name +
                                     "'");
    }
    if (weight == 0.0) continue;
    FAIRRANK_ASSIGN_OR_RETURN(size_t index, table.schema().FindIndex(name));
    const AttributeSpec& spec = table.schema().attribute(index);
    if (spec.kind() == AttributeKind::kCategorical) {
      return Status::InvalidArgument("scoring attribute '" + name +
                                     "' must be numeric");
    }
    terms.push_back(
        {index, weight, spec.min(), 1.0 / (spec.max() - spec.min())});
  }
  std::vector<double> scores(table.num_rows(), 0.0);
  for (const Term& t : terms) {
    const Column& col = table.column(t.attr_index);
    for (size_t row = 0; row < scores.size(); ++row) {
      double normalized = (col.AsDouble(row) - t.min) * t.inv_range;
      scores[row] += t.weight * normalized;
    }
  }
  return scores;
}

std::unique_ptr<ScoringFunction> MakeAlphaFunction(std::string name,
                                                   double alpha) {
  return std::make_unique<LinearScoringFunction>(
      std::move(name),
      std::vector<std::pair<std::string, double>>{
          {worker_attrs::kLanguageTest, alpha},
          {worker_attrs::kApprovalRate, 1.0 - alpha}});
}

std::vector<std::unique_ptr<ScoringFunction>> MakePaperRandomFunctions() {
  const double kAlphas[] = {0.5, 0.3, 0.7, 1.0, 0.0};
  std::vector<std::unique_ptr<ScoringFunction>> fns;
  for (size_t i = 0; i < 5; ++i) {
    // Stepwise append: chained operator+ trips GCC 12's -Wrestrict false
    // positive (PR105651) under -Werror.
    std::string name = "f";
    name += std::to_string(i + 1);
    name += " (alpha=";
    name += FormatDouble(kAlphas[i], 1);
    name += ")";
    fns.push_back(MakeAlphaFunction(std::move(name), kAlphas[i]));
  }
  return fns;
}

}  // namespace fairrank
