#include "marketplace/worker.h"

namespace fairrank {

StatusOr<Schema> MakePaperWorkerSchema(int numeric_buckets) {
  namespace wa = worker_attrs;
  Schema schema;
  FAIRRANK_RETURN_NOT_OK(schema.AddAttribute(AttributeSpec::Categorical(
      wa::kGender, AttributeRole::kProtected, {"Male", "Female"})));
  FAIRRANK_RETURN_NOT_OK(schema.AddAttribute(AttributeSpec::Categorical(
      wa::kCountry, AttributeRole::kProtected, {"America", "India", "Other"})));
  FAIRRANK_RETURN_NOT_OK(schema.AddAttribute(AttributeSpec::Integer(
      wa::kYearOfBirth, AttributeRole::kProtected, 1950, 2009,
      numeric_buckets)));
  FAIRRANK_RETURN_NOT_OK(schema.AddAttribute(AttributeSpec::Categorical(
      wa::kLanguage, AttributeRole::kProtected,
      {"English", "Indian", "Other"})));
  FAIRRANK_RETURN_NOT_OK(schema.AddAttribute(AttributeSpec::Categorical(
      wa::kEthnicity, AttributeRole::kProtected,
      {"White", "African-American", "Indian", "Other"})));
  FAIRRANK_RETURN_NOT_OK(schema.AddAttribute(AttributeSpec::Integer(
      wa::kYearsExperience, AttributeRole::kProtected, 0, 30,
      numeric_buckets)));
  FAIRRANK_RETURN_NOT_OK(schema.AddAttribute(AttributeSpec::Real(
      wa::kLanguageTest, AttributeRole::kObserved, 25.0, 100.0, 10)));
  FAIRRANK_RETURN_NOT_OK(schema.AddAttribute(AttributeSpec::Real(
      wa::kApprovalRate, AttributeRole::kObserved, 25.0, 100.0, 10)));
  return schema;
}

StatusOr<Schema> MakeToySchema() {
  Schema schema;
  FAIRRANK_RETURN_NOT_OK(schema.AddAttribute(AttributeSpec::Categorical(
      worker_attrs::kGender, AttributeRole::kProtected, {"Male", "Female"})));
  FAIRRANK_RETURN_NOT_OK(schema.AddAttribute(AttributeSpec::Categorical(
      worker_attrs::kLanguage, AttributeRole::kProtected,
      {"English", "Indian", "Other"})));
  FAIRRANK_RETURN_NOT_OK(schema.AddAttribute(
      AttributeSpec::Real("Score", AttributeRole::kObserved, 0.0, 1.0, 10)));
  return schema;
}

StatusOr<Table> MakeToyTable() {
  FAIRRANK_ASSIGN_OR_RETURN(Schema schema, MakeToySchema());
  Table table(std::move(schema));
  struct ToyWorker {
    const char* gender;
    const char* language;
    double score;
  };
  // Males cluster by language at distinct score levels; females share one
  // score regardless of language.
  const ToyWorker kWorkers[] = {
      {"Male", "English", 0.90}, {"Male", "English", 0.85},
      {"Male", "Indian", 0.60},  {"Male", "Indian", 0.65},
      {"Male", "Other", 0.10},   {"Male", "Other", 0.15},
      {"Female", "English", 0.42}, {"Female", "Indian", 0.42},
      {"Female", "Other", 0.42},   {"Female", "Other", 0.42},
  };
  for (const ToyWorker& w : kWorkers) {
    FAIRRANK_RETURN_NOT_OK(table.AppendRow(
        {std::string(w.gender), std::string(w.language), w.score}));
  }
  return table;
}

}  // namespace fairrank
