#ifndef FAIRRANK_MARKETPLACE_WORKER_H_
#define FAIRRANK_MARKETPLACE_WORKER_H_

#include "common/status.h"
#include "data/schema.h"
#include "data/table.h"

namespace fairrank {

/// Attribute names of the paper's crowdsourcing simulation, kept in one
/// place so generators, scoring functions and benches cannot drift apart.
namespace worker_attrs {
inline constexpr const char kGender[] = "Gender";
inline constexpr const char kCountry[] = "Country";
inline constexpr const char kYearOfBirth[] = "YearOfBirth";
inline constexpr const char kLanguage[] = "Language";
inline constexpr const char kEthnicity[] = "Ethnicity";
inline constexpr const char kYearsExperience[] = "YearsExperience";
inline constexpr const char kLanguageTest[] = "LanguageTest";
inline constexpr const char kApprovalRate[] = "ApprovalRate";
}  // namespace worker_attrs

/// Schema of the paper's simulated crowdsourcing platform (Evaluation,
/// "Setting"): six protected attributes
///   Gender          = {Male, Female}
///   Country         = {America, India, Other}
///   YearOfBirth     = [1950, 2009]            (bucketized)
///   Language        = {English, Indian, Other}
///   Ethnicity       = {White, African-American, Indian, Other}
///   YearsExperience = [0, 30]                 (bucketized)
/// and two observed attributes LanguageTest, ApprovalRate in [25, 100].
///
/// `numeric_buckets` controls the bucketization of the two numeric protected
/// attributes; the paper caps every attribute at 5 values, hence default 5.
StatusOr<Schema> MakePaperWorkerSchema(int numeric_buckets = 5);

/// Schema of the Figure 1 toy example: protected Gender = {Male, Female}
/// and Language = {English, Indian, Other}; observed Score in [0, 1].
StatusOr<Schema> MakeToySchema();

/// The 10-worker toy table of Figure 1, constructed so that the optimum
/// hierarchical partitioning is {Male-English, Male-Indian, Male-Other,
/// Female}: each male language group has a tight score cluster at a distinct
/// level, while female scores are identical across languages (so splitting
/// the Female partition only adds zero-distance pairs and lowers the
/// average pairwise EMD). Verified against exhaustive search in tests.
StatusOr<Table> MakeToyTable();

}  // namespace fairrank

#endif  // FAIRRANK_MARKETPLACE_WORKER_H_
