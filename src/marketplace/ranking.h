#ifndef FAIRRANK_MARKETPLACE_RANKING_H_
#define FAIRRANK_MARKETPLACE_RANKING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"
#include "marketplace/scoring.h"

namespace fairrank {

/// One entry of a ranking: a table row and its score.
struct RankedWorker {
  size_t row;
  double score;
};

/// A hiring query on the marketplace: a short description plus the weights
/// a requester assigns to observed attributes, which induce the scoring
/// function used to rank candidates.
struct TaskQuery {
  std::string description;
  /// Observed attribute name -> weight. Converted to a
  /// LinearScoringFunction by RankingEngine::Rank.
  std::vector<std::pair<std::string, double>> weights;
};

/// Ranks workers for tasks — the marketplace-facing substrate whose output
/// the fairness audit inspects. Scores with the query-induced (or supplied)
/// scoring function and sorts descending with deterministic tie-breaking by
/// row index.
class RankingEngine {
 public:
  /// `table` must outlive the engine.
  explicit RankingEngine(const Table* table) : table_(table) {}

  /// Full ranking under an arbitrary scoring function.
  StatusOr<std::vector<RankedWorker>> Rank(const ScoringFunction& fn) const;

  /// Full ranking under the linear function induced by `query`.
  StatusOr<std::vector<RankedWorker>> Rank(const TaskQuery& query) const;

  /// Top-k prefix of Rank(fn). k larger than the table is clamped.
  StatusOr<std::vector<RankedWorker>> TopK(const ScoringFunction& fn,
                                           size_t k) const;

  const Table& table() const { return *table_; }

 private:
  const Table* table_;
};

}  // namespace fairrank

#endif  // FAIRRANK_MARKETPLACE_RANKING_H_
