#include "marketplace/ranking.h"

#include <algorithm>

namespace fairrank {

StatusOr<std::vector<RankedWorker>> RankingEngine::Rank(
    const ScoringFunction& fn) const {
  FAIRRANK_ASSIGN_OR_RETURN(std::vector<double> scores, fn.ScoreAll(*table_));
  std::vector<RankedWorker> ranking(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) ranking[i] = {i, scores[i]};
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const RankedWorker& a, const RankedWorker& b) {
                     return a.score > b.score;
                   });
  return ranking;
}

StatusOr<std::vector<RankedWorker>> RankingEngine::Rank(
    const TaskQuery& query) const {
  LinearScoringFunction fn(query.description, query.weights);
  return Rank(fn);
}

StatusOr<std::vector<RankedWorker>> RankingEngine::TopK(
    const ScoringFunction& fn, size_t k) const {
  FAIRRANK_ASSIGN_OR_RETURN(std::vector<RankedWorker> ranking, Rank(fn));
  if (ranking.size() > k) ranking.resize(k);
  return ranking;
}

}  // namespace fairrank
