#ifndef FAIRRANK_MARKETPLACE_SCORING_H_
#define FAIRRANK_MARKETPLACE_SCORING_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace fairrank {

/// A task-qualification scoring function f : W -> [0,1] (Definition 1).
/// Implementations score an entire table at once (columnar access) and are
/// stateless across calls — scoring the same table twice yields identical
/// scores, including for the randomized biased functions (they reseed per
/// call).
class ScoringFunction {
 public:
  virtual ~ScoringFunction() = default;

  /// Display name, e.g. "f1 (alpha=0.5)".
  virtual std::string Name() const = 0;

  /// Scores every row of `table`; result[i] is the score of row i, in [0,1].
  virtual StatusOr<std::vector<double>> ScoreAll(const Table& table) const = 0;
};

/// The paper's linear family f(w) = sum_i alpha_i * b_i with observed
/// attributes min-max normalized to [0,1] by their schema range (the raw
/// domains are [25,100]; f must land in [0,1]).
///
/// Weights must be non-negative; a zero weight means "attribute not relevant
/// for the user". If the weights sum to 1 the scores are guaranteed in
/// [0,1].
class LinearScoringFunction : public ScoringFunction {
 public:
  /// `weights` maps observed attribute name -> alpha.
  LinearScoringFunction(std::string name,
                        std::vector<std::pair<std::string, double>> weights);

  std::string Name() const override { return name_; }
  StatusOr<std::vector<double>> ScoreAll(const Table& table) const override;

  const std::vector<std::pair<std::string, double>>& weights() const {
    return weights_;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> weights_;
};

/// Builds the paper's two-attribute function
///   f = alpha * LanguageTest + (1 - alpha) * ApprovalRate.
/// The paper's five random functions use alpha in {0, 0.3, 0.5, 0.7, 1}.
std::unique_ptr<ScoringFunction> MakeAlphaFunction(std::string name,
                                                   double alpha);

/// The paper's f1..f5 in order. f4 uses only LanguageTest (alpha=1) and f5
/// only ApprovalRate (alpha=0), matching the paper's statement that f4/f5
/// "rely on one observed attribute only"; f1..f3 use alpha 0.5, 0.3, 0.7.
std::vector<std::unique_ptr<ScoringFunction>> MakePaperRandomFunctions();

}  // namespace fairrank

#endif  // FAIRRANK_MARKETPLACE_SCORING_H_
