#ifndef FAIRRANK_MARKETPLACE_REALISTIC_H_
#define FAIRRANK_MARKETPLACE_REALISTIC_H_

#include <cstdint>

#include "common/status.h"
#include "data/table.h"

namespace fairrank {

/// Options for the realistic population generator.
struct RealisticGeneratorOptions {
  size_t num_workers = 1000;
  uint64_t seed = 42;
  /// Bucket count for the numeric protected attributes (as in the paper's
  /// uniform generator).
  int numeric_buckets = 5;
  /// How strongly the *observed* attributes (the rating-like signals) are
  /// skewed against disadvantaged demographics. 0 = merit only (no bias
  /// channel), 1 = the full effect sizes below. Rating penalties at 1:
  /// female -8 ApprovalRate points, African-American -6, non-English
  /// speakers -6 LanguageTest points on top of the merit model.
  double bias_strength = 1.0;
};

/// Generates a *non-uniform, correlated* worker population modeled on the
/// published observations about real freelancing platforms (Hannák et al.,
/// CSCW 2017 — the paper's reference [4] — found that perceived gender and
/// race correlate with worker ratings on TaskRabbit and Fiverr):
///
///   * skewed demographics (60/40 gender, America-heavy country mix),
///   * correlated attributes (language and ethnicity follow country; years
///     of experience follows age),
///   * observed attributes built from a latent merit score plus
///     `bias_strength`-scaled demographic rating penalties.
///
/// The paper's own evaluation uses the uniform generator "to avoid
/// injecting any bias"; this substrate serves its future-work question —
/// what audits look like on realistic data, where even merit-looking
/// scoring functions inherit rating bias. Same schema as
/// MakePaperWorkerSchema, so every scoring function and audit works
/// unchanged. Deterministic given the seed.
StatusOr<Table> GenerateRealisticWorkers(
    const RealisticGeneratorOptions& options);

}  // namespace fairrank

#endif  // FAIRRANK_MARKETPLACE_REALISTIC_H_
