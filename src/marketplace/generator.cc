#include "marketplace/generator.h"

#include "marketplace/worker.h"

namespace fairrank {

Status AppendRandomWorkers(Table* table, size_t rows, Rng* rng) {
  const Schema& schema = table->schema();
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Cell> cells;
    cells.reserve(schema.num_attributes());
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const AttributeSpec& spec = schema.attribute(a);
      switch (spec.kind()) {
        case AttributeKind::kCategorical:
          cells.emplace_back(
              static_cast<int64_t>(rng->UniformIndex(
                  static_cast<size_t>(spec.num_groups()))));
          break;
        case AttributeKind::kInteger:
          cells.emplace_back(rng->UniformInt(
              static_cast<int64_t>(spec.min()),
              static_cast<int64_t>(spec.max())));
          break;
        case AttributeKind::kReal:
          cells.emplace_back(rng->UniformDouble(spec.min(), spec.max()));
          break;
      }
    }
    FAIRRANK_RETURN_NOT_OK(table->AppendRow(cells));
  }
  return Status::OK();
}

StatusOr<Table> GenerateWorkers(const GeneratorOptions& options) {
  FAIRRANK_ASSIGN_OR_RETURN(Schema schema,
                            MakePaperWorkerSchema(options.numeric_buckets));
  Table table(std::move(schema));
  table.Reserve(options.num_workers);
  Rng rng(options.seed);
  FAIRRANK_RETURN_NOT_OK(
      AppendRandomWorkers(&table, options.num_workers, &rng));
  return table;
}

}  // namespace fairrank
