#include "marketplace/tasks.h"

#include <algorithm>
#include <cassert>

#include "marketplace/worker.h"

namespace fairrank {

TaskCatalog TaskCatalog::MakeDefaultCatalog() {
  namespace wa = worker_attrs;
  TaskCatalog catalog;
  auto add = [&](const char* name, double alpha) {
    TaskCategory category;
    category.name = name;
    category.weights = {{wa::kLanguageTest, alpha},
                        {wa::kApprovalRate, 1.0 - alpha}};
    Status st = catalog.AddCategory(std::move(category));
    // Static catalog: entries are valid by construction — but assert rather
    // than drop the Status, so an edit introducing a duplicate or empty
    // category fails loudly in debug instead of silently shrinking the
    // catalog.
    assert(st.ok() && "default catalog entry rejected");
    (void)st;  // Assert compiles out under NDEBUG.
  };
  add("content writing", 0.9);
  add("web development", 0.7);
  add("customer support", 0.5);
  add("data entry", 0.3);
  add("general labor", 0.0);
  return catalog;
}

Status TaskCatalog::AddCategory(TaskCategory category) {
  if (category.name.empty()) {
    return Status::InvalidArgument("category has empty name");
  }
  if (category.weights.empty()) {
    return Status::InvalidArgument("category '" + category.name +
                                   "' has no weights");
  }
  for (const TaskCategory& existing : categories_) {
    if (existing.name == category.name) {
      return Status::AlreadyExists("category '" + category.name +
                                   "' already in catalog");
    }
  }
  categories_.push_back(std::move(category));
  return Status::OK();
}

StatusOr<size_t> TaskCatalog::FindCategory(const std::string& name) const {
  for (size_t i = 0; i < categories_.size(); ++i) {
    if (categories_[i].name == name) return i;
  }
  return Status::NotFound("no category named '" + name + "'");
}

TaskQuery TaskCatalog::QueryFor(size_t category_index) const {
  const TaskCategory& category = categories_[category_index];
  TaskQuery query;
  query.description = category.name;
  query.weights = category.weights;
  return query;
}

std::vector<PostedTask> TaskCatalog::GenerateTasks(size_t n, Rng* rng,
                                                   size_t first_id) const {
  std::vector<PostedTask> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PostedTask task;
    task.id = first_id + i;
    task.category_index = rng->UniformIndex(categories_.size());
    task.description = categories_[task.category_index].name + " gig #" +
                       std::to_string(task.id);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

StatusOr<std::vector<CategoryAuditRow>> AuditCatalog(
    const Table& workers, const TaskCatalog& catalog,
    const AuditOptions& options) {
  if (catalog.num_categories() == 0) {
    return Status::InvalidArgument("catalog has no categories");
  }
  // Arm a shared deadline so the timeout bounds the whole catalog, not each
  // category separately.
  AuditOptions category_options = options;
  if (category_options.limits.deadline.is_infinite() &&
      category_options.limits.timeout_ms > 0) {
    category_options.limits.deadline =
        Deadline::AfterMillis(category_options.limits.timeout_ms);
  }

  FairnessAuditor auditor(&workers);
  std::vector<CategoryAuditRow> rows;
  rows.reserve(catalog.num_categories());
  for (size_t c = 0; c < catalog.num_categories(); ++c) {
    const TaskCategory& category = catalog.category(c);
    LinearScoringFunction fn(category.name, category.weights);
    FAIRRANK_ASSIGN_OR_RETURN(AuditResult audit,
                              auditor.Audit(fn, category_options));
    CategoryAuditRow row;
    row.category = category.name;
    row.unfairness = audit.unfairness;
    row.num_partitions = audit.partitions.size();
    row.attributes_used = std::move(audit.attributes_used);
    row.truncated = audit.truncated;
    rows.push_back(std::move(row));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const CategoryAuditRow& a, const CategoryAuditRow& b) {
                     return a.unfairness > b.unfairness;
                   });
  return rows;
}

}  // namespace fairrank
