#ifndef FAIRRANK_MARKETPLACE_GENERATOR_H_
#define FAIRRANK_MARKETPLACE_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "data/table.h"

namespace fairrank {

/// Options for the synthetic worker population.
struct GeneratorOptions {
  size_t num_workers = 500;
  uint64_t seed = 42;
  /// Bucket count for the numeric protected attributes (paper: <= 5 values
  /// per attribute).
  int numeric_buckets = 5;
};

/// Generates the paper's simulated worker population: every attribute value
/// drawn uniformly at random over its domain ("populated randomly so as to
/// avoid injecting any bias in the data ourselves"). Deterministic given the
/// seed.
StatusOr<Table> GenerateWorkers(const GeneratorOptions& options);

/// Fills `rows` additional uniformly-random rows into an existing table that
/// uses the paper worker schema. Exposed for incremental/scaling benches.
Status AppendRandomWorkers(Table* table, size_t rows, Rng* rng);

}  // namespace fairrank

#endif  // FAIRRANK_MARKETPLACE_GENERATOR_H_
