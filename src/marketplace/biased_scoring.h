#ifndef FAIRRANK_MARKETPLACE_BIASED_SCORING_H_
#define FAIRRANK_MARKETPLACE_BIASED_SCORING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "marketplace/scoring.h"

namespace fairrank {

/// One predicate of a bias rule: either "categorical attribute == label" or
/// "numeric attribute within [lo, hi]".
struct BiasCondition {
  std::string attribute;

  /// Categorical match (used when `is_categorical` is true).
  std::string label;

  /// Numeric range match, inclusive (used when `is_categorical` is false).
  double lo = 0.0;
  double hi = 0.0;

  bool is_categorical = true;

  static BiasCondition Equals(std::string attribute, std::string label) {
    BiasCondition c;
    c.attribute = std::move(attribute);
    c.label = std::move(label);
    c.is_categorical = true;
    return c;
  }
  static BiasCondition InRange(std::string attribute, double lo, double hi) {
    BiasCondition c;
    c.attribute = std::move(attribute);
    c.lo = lo;
    c.hi = hi;
    c.is_categorical = false;
    return c;
  }
};

/// A bias rule: when every condition matches a worker, their score is drawn
/// uniformly from [score_lo, score_hi).
struct BiasRule {
  std::vector<BiasCondition> conditions;
  double score_lo = 0.0;
  double score_hi = 1.0;
};

/// A scoring function that is *unfair by design*: it ignores the observed
/// attributes and assigns each worker a score drawn uniformly from the range
/// of the first matching rule (rules are checked in order; workers matching
/// no rule draw from [default_lo, default_hi)).
///
/// This models the paper's hand-crafted f6-f9 ("the function scores were
/// generated at random within the specified range"). Deterministic per
/// (seed, table): ScoreAll reseeds its own generator on every call.
class BiasedScoringFunction : public ScoringFunction {
 public:
  BiasedScoringFunction(std::string name, std::vector<BiasRule> rules,
                        uint64_t seed, double default_lo = 0.0,
                        double default_hi = 1.0);

  std::string Name() const override { return name_; }
  StatusOr<std::vector<double>> ScoreAll(const Table& table) const override;

  const std::vector<BiasRule>& rules() const { return rules_; }

 private:
  std::string name_;
  std::vector<BiasRule> rules_;
  uint64_t seed_;
  double default_lo_;
  double default_hi_;
};

/// f6: discriminates against females — males draw from (0.8, 1], females
/// from [0, 0.2).
std::unique_ptr<ScoringFunction> MakeF6(uint64_t seed);

/// f7: biased on gender x country — male&American high, female&American low,
/// Indians mid regardless of gender, female&Other high, male&Other low.
std::unique_ptr<ScoringFunction> MakeF7(uint64_t seed);

/// f8: biased among females by country — female&American high, female&Indian
/// mid, female&Other low; males draw uniformly from [0,1] (the paper leaves
/// male scores unspecified).
std::unique_ptr<ScoringFunction> MakeF8(uint64_t seed);

/// f9: correlates with ethnicity, language and year of birth "similarly to
/// previous ones". The paper does not print the exact rules; we use a
/// three-attribute analogue of f7/f8: White & English & born before 1980
/// high; Indian ethnicity or Indian language mid; everyone else low. See
/// EXPERIMENTS.md.
std::unique_ptr<ScoringFunction> MakeF9(uint64_t seed);

/// All four biased functions f6..f9 with per-function derived seeds.
std::vector<std::unique_ptr<ScoringFunction>> MakePaperBiasedFunctions(
    uint64_t seed);

}  // namespace fairrank

#endif  // FAIRRANK_MARKETPLACE_BIASED_SCORING_H_
