#include "marketplace/biased_scoring.h"

#include "common/rng.h"
#include "marketplace/worker.h"

namespace fairrank {

BiasedScoringFunction::BiasedScoringFunction(std::string name,
                                             std::vector<BiasRule> rules,
                                             uint64_t seed, double default_lo,
                                             double default_hi)
    : name_(std::move(name)),
      rules_(std::move(rules)),
      seed_(seed),
      default_lo_(default_lo),
      default_hi_(default_hi) {}

StatusOr<std::vector<double>> BiasedScoringFunction::ScoreAll(
    const Table& table) const {
  // Resolve attribute references once per call.
  struct ResolvedCondition {
    size_t attr_index;
    bool is_categorical;
    int code;  // Categorical: required code.
    double lo;
    double hi;
  };
  std::vector<std::vector<ResolvedCondition>> resolved(rules_.size());
  for (size_t r = 0; r < rules_.size(); ++r) {
    if (rules_[r].score_lo > rules_[r].score_hi) {
      return Status::InvalidArgument("rule with empty score range in " +
                                     name_);
    }
    for (const BiasCondition& cond : rules_[r].conditions) {
      FAIRRANK_ASSIGN_OR_RETURN(size_t index,
                                table.schema().FindIndex(cond.attribute));
      const AttributeSpec& spec = table.schema().attribute(index);
      ResolvedCondition rc;
      rc.attr_index = index;
      rc.is_categorical = cond.is_categorical;
      rc.code = 0;
      rc.lo = cond.lo;
      rc.hi = cond.hi;
      if (cond.is_categorical) {
        if (spec.kind() != AttributeKind::kCategorical) {
          return Status::InvalidArgument("condition on '" + cond.attribute +
                                         "' expects a categorical attribute");
        }
        FAIRRANK_ASSIGN_OR_RETURN(rc.code, spec.CodeOf(cond.label));
      } else if (spec.kind() == AttributeKind::kCategorical) {
        return Status::InvalidArgument("range condition on categorical '" +
                                       cond.attribute + "'");
      }
      resolved[r].push_back(rc);
    }
  }

  Rng rng(seed_);
  std::vector<double> scores(table.num_rows(), 0.0);
  for (size_t row = 0; row < table.num_rows(); ++row) {
    double lo = default_lo_;
    double hi = default_hi_;
    for (size_t r = 0; r < rules_.size(); ++r) {
      bool match = true;
      for (const ResolvedCondition& rc : resolved[r]) {
        if (rc.is_categorical) {
          if (table.column(rc.attr_index).CodeAt(row) != rc.code) {
            match = false;
            break;
          }
        } else {
          double v = table.ValueAsDouble(row, rc.attr_index);
          if (v < rc.lo || v > rc.hi) {
            match = false;
            break;
          }
        }
      }
      if (match) {
        lo = rules_[r].score_lo;
        hi = rules_[r].score_hi;
        break;
      }
    }
    scores[row] = (lo == hi) ? lo : rng.UniformDouble(lo, hi);
  }
  return scores;
}

namespace {
namespace wa = worker_attrs;
}  // namespace

std::unique_ptr<ScoringFunction> MakeF6(uint64_t seed) {
  std::vector<BiasRule> rules;
  rules.push_back({{BiasCondition::Equals(wa::kGender, "Male")}, 0.8, 1.0});
  rules.push_back({{BiasCondition::Equals(wa::kGender, "Female")}, 0.0, 0.2});
  return std::make_unique<BiasedScoringFunction>("f6 (anti-female)",
                                                 std::move(rules), seed);
}

std::unique_ptr<ScoringFunction> MakeF7(uint64_t seed) {
  std::vector<BiasRule> rules;
  rules.push_back({{BiasCondition::Equals(wa::kGender, "Male"),
                    BiasCondition::Equals(wa::kCountry, "America")},
                   0.8,
                   1.0});
  rules.push_back({{BiasCondition::Equals(wa::kGender, "Female"),
                    BiasCondition::Equals(wa::kCountry, "America")},
                   0.0,
                   0.2});
  rules.push_back({{BiasCondition::Equals(wa::kCountry, "India")}, 0.5, 0.7});
  rules.push_back({{BiasCondition::Equals(wa::kGender, "Female"),
                    BiasCondition::Equals(wa::kCountry, "Other")},
                   0.8,
                   1.0});
  rules.push_back({{BiasCondition::Equals(wa::kGender, "Male"),
                    BiasCondition::Equals(wa::kCountry, "Other")},
                   0.0,
                   0.2});
  return std::make_unique<BiasedScoringFunction>("f7 (gender x country)",
                                                 std::move(rules), seed);
}

std::unique_ptr<ScoringFunction> MakeF8(uint64_t seed) {
  std::vector<BiasRule> rules;
  rules.push_back({{BiasCondition::Equals(wa::kGender, "Female"),
                    BiasCondition::Equals(wa::kCountry, "America")},
                   0.8,
                   1.0});
  rules.push_back({{BiasCondition::Equals(wa::kGender, "Female"),
                    BiasCondition::Equals(wa::kCountry, "India")},
                   0.5,
                   0.8});
  rules.push_back({{BiasCondition::Equals(wa::kGender, "Female"),
                    BiasCondition::Equals(wa::kCountry, "Other")},
                   0.0,
                   0.2});
  // Males are unspecified in the paper; they draw from the default [0,1].
  return std::make_unique<BiasedScoringFunction>("f8 (female x country)",
                                                 std::move(rules), seed);
}

std::unique_ptr<ScoringFunction> MakeF9(uint64_t seed) {
  std::vector<BiasRule> rules;
  rules.push_back({{BiasCondition::Equals(wa::kEthnicity, "White"),
                    BiasCondition::Equals(wa::kLanguage, "English"),
                    BiasCondition::InRange(wa::kYearOfBirth, 1950, 1979)},
                   0.8,
                   1.0});
  rules.push_back(
      {{BiasCondition::Equals(wa::kEthnicity, "Indian")}, 0.5, 0.7});
  rules.push_back(
      {{BiasCondition::Equals(wa::kLanguage, "Indian")}, 0.5, 0.7});
  rules.push_back({{}, 0.0, 0.2});  // Catch-all: everyone else scores low.
  return std::make_unique<BiasedScoringFunction>(
      "f9 (ethnicity x language x birth)", std::move(rules), seed);
}

std::vector<std::unique_ptr<ScoringFunction>> MakePaperBiasedFunctions(
    uint64_t seed) {
  std::vector<std::unique_ptr<ScoringFunction>> fns;
  fns.push_back(MakeF6(seed + 6));
  fns.push_back(MakeF7(seed + 7));
  fns.push_back(MakeF8(seed + 8));
  fns.push_back(MakeF9(seed + 9));
  return fns;
}

}  // namespace fairrank
