#include "marketplace/realistic.h"

#include <algorithm>

#include "common/rng.h"
#include "marketplace/worker.h"

namespace fairrank {

namespace {

double Clamp(double v, double lo, double hi) {
  return std::clamp(v, lo, hi);
}

}  // namespace

StatusOr<Table> GenerateRealisticWorkers(
    const RealisticGeneratorOptions& options) {
  if (options.bias_strength < 0.0 || options.bias_strength > 1.0) {
    return Status::InvalidArgument("bias_strength must be in [0,1]");
  }
  FAIRRANK_ASSIGN_OR_RETURN(Schema schema,
                            MakePaperWorkerSchema(options.numeric_buckets));
  Table table(std::move(schema));
  table.Reserve(options.num_workers);
  Rng rng(options.seed);
  const double bias = options.bias_strength;

  for (size_t i = 0; i < options.num_workers; ++i) {
    // Demographics: skewed and correlated.
    const bool male = rng.Bernoulli(0.60);

    // Country: America 60%, India 25%, Other 15%.
    const size_t country = rng.WeightedIndex({0.60, 0.25, 0.15});

    // Language follows country.
    size_t language;  // 0 English, 1 Indian, 2 Other.
    switch (country) {
      case 0:
        language = rng.WeightedIndex({0.90, 0.02, 0.08});
        break;
      case 1:
        language = rng.WeightedIndex({0.25, 0.70, 0.05});
        break;
      default:
        language = rng.WeightedIndex({0.35, 0.05, 0.60});
        break;
    }

    // Ethnicity follows country. Codes: White, African-American, Indian,
    // Other.
    size_t ethnicity;
    switch (country) {
      case 0:
        ethnicity = rng.WeightedIndex({0.60, 0.18, 0.07, 0.15});
        break;
      case 1:
        ethnicity = rng.WeightedIndex({0.02, 0.01, 0.92, 0.05});
        break;
      default:
        ethnicity = rng.WeightedIndex({0.35, 0.10, 0.10, 0.45});
        break;
    }

    // Age: young-skewed gig workforce; experience follows age.
    int64_t year_of_birth = static_cast<int64_t>(
        std::llround(Clamp(rng.Gaussian(1985.0, 9.0), 1950.0, 2009.0)));
    double age_in_2019 = 2019.0 - static_cast<double>(year_of_birth);
    int64_t experience = static_cast<int64_t>(std::llround(
        Clamp(rng.Gaussian(std::max(0.0, (age_in_2019 - 18.0) * 0.5), 3.0),
              0.0, 30.0)));

    // Latent merit drives both observed signals.
    double merit = rng.Gaussian(0.0, 1.0);

    // LanguageTest: merit + English familiarity - bias against non-English
    // speakers.
    double language_test = 70.0 + 10.0 * merit;
    if (language == 0) language_test += 8.0;
    language_test -= bias * (language != 0 ? 6.0 : 0.0);
    language_test += rng.Gaussian(0.0, 5.0);
    language_test = Clamp(language_test, 25.0, 100.0);

    // ApprovalRate: merit + rating penalties for female and
    // African-American workers (the Hannak et al. effect), scaled by
    // bias_strength.
    double approval = 75.0 + 8.0 * merit;
    if (!male) approval -= bias * 8.0;
    if (ethnicity == 1) approval -= bias * 6.0;
    approval += rng.Gaussian(0.0, 4.0);
    approval = Clamp(approval, 25.0, 100.0);

    FAIRRANK_RETURN_NOT_OK(table.AppendRow({
        static_cast<int64_t>(male ? 0 : 1),
        static_cast<int64_t>(country),
        year_of_birth,
        static_cast<int64_t>(language),
        static_cast<int64_t>(ethnicity),
        experience,
        language_test,
        approval,
    }));
  }
  return table;
}

}  // namespace fairrank
