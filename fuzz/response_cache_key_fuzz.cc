// Fuzz target for the response-cache key: CanonicalRequestKey in
// src/server/handlers.cc plus a pass through the ResponseCache itself.
//
// The cache's correctness story is that equivalent requests — and ONLY
// equivalent requests — share a key. The harness builds several spellings
// of the same request from the fuzz input and checks both directions:
//
//   - '_' and '-' parameter spellings collide.
//   - Parameter order does not matter (later duplicates win, so the check
//     permutes only when the winning set is order-independent).
//   - GET query string and POST form body collide.
//   - Naming the default dataset explicitly collides with omitting it
//     (the regression this PR fixed: the raw dataset flag used to leak
//     into the key next to the resolved dataset name).
//   - Mutating any winning flag value separates the key.
//   - Keys behave in the cache: insert then find round-trips the response
//     bit-identically under the canonical key.

#include "fuzz/fuzz_targets.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "server/handlers.h"
#include "server/http.h"
#include "server/response_cache.h"

namespace fairrank::fuzz {

namespace {

HttpRequest GetRequest(std::vector<std::pair<std::string, std::string>> query) {
  HttpRequest request;
  request.method = "GET";
  request.path = "/audit";
  request.target = "/audit";
  request.query = std::move(query);
  return request;
}

}  // namespace

void FuzzResponseCacheKey(const uint8_t* data, size_t size) {
  FuzzInput in(data, size);
  const uint8_t selector = in.TakeByte();
  const std::string raw_query = in.TakeRest();

  ServerEnv env;
  env.default_dataset = "synthetic";

  const std::vector<std::pair<std::string, std::string>> query =
      ParseQueryString(raw_query);
  const HttpRequest request = GetRequest(query);

  StatusOr<std::string> key = CanonicalRequestKey(env, request);
  StatusOr<std::string> key_again = CanonicalRequestKey(env, request);
  FUZZ_CHECK(key.ok() == key_again.ok());
  if (!key.ok()) {
    FUZZ_CHECK(key.status().code() == StatusCode::kInvalidArgument);
    return;
  }
  FUZZ_CHECK(*key == *key_again);

  // Underscore spellings are aliases for hyphen spellings.
  {
    std::vector<std::pair<std::string, std::string>> underscored = query;
    for (auto& [name, value] : underscored) {
      std::replace(name.begin(), name.end(), '-', '_');
    }
    StatusOr<std::string> alias_key =
        CanonicalRequestKey(env, GetRequest(underscored));
    FUZZ_CHECK(alias_key.ok());
    FUZZ_CHECK(*alias_key == *key);
  }

  // The winning flag set: later duplicates win, names normalized.
  std::map<std::string, std::string> winning;
  for (const auto& [name, value] : query) {
    std::string normalized = name;
    std::replace(normalized.begin(), normalized.end(), '_', '-');
    winning[normalized] = value;
  }

  // Parameter order is irrelevant when every name is unique.
  if (winning.size() == query.size()) {
    std::vector<std::pair<std::string, std::string>> reversed(query.rbegin(),
                                                              query.rend());
    StatusOr<std::string> reversed_key =
        CanonicalRequestKey(env, GetRequest(reversed));
    FUZZ_CHECK(reversed_key.ok());
    FUZZ_CHECK(*reversed_key == *key);
  }

  // GET with a query string == POST with the same form body.
  {
    HttpRequest post;
    post.method = "POST";
    post.path = "/audit";
    post.target = "/audit";
    post.body = raw_query;
    StatusOr<std::string> post_key = CanonicalRequestKey(env, post);
    FUZZ_CHECK(post_key.ok());
    FUZZ_CHECK(*post_key == *key);
  }

  // dataset=<default> spelled out == dataset omitted.
  {
    std::vector<std::pair<std::string, std::string>> base;
    for (const auto& [name, value] : query) {
      std::string normalized = name;
      std::replace(normalized.begin(), normalized.end(), '_', '-');
      if (normalized == "dataset") continue;
      base.emplace_back(name, value);
    }
    StatusOr<std::string> implicit_key =
        CanonicalRequestKey(env, GetRequest(base));
    std::vector<std::pair<std::string, std::string>> explicit_pairs = base;
    explicit_pairs.emplace_back("dataset", env.default_dataset);
    StatusOr<std::string> explicit_key =
        CanonicalRequestKey(env, GetRequest(explicit_pairs));
    FUZZ_CHECK(implicit_key.ok() && explicit_key.ok());
    FUZZ_CHECK(*implicit_key == *explicit_key);
  }

  // Distinct winning option sets must NOT collide: mutate one value.
  if (!winning.empty()) {
    std::vector<std::pair<std::string, std::string>> mutated(winning.begin(),
                                                             winning.end());
    mutated[selector % mutated.size()].second += "x";
    StatusOr<std::string> mutated_key =
        CanonicalRequestKey(env, GetRequest(mutated));
    FUZZ_CHECK(mutated_key.ok());
    FUZZ_CHECK(*mutated_key != *key);
  }

  // Adding a flag that was absent must separate the key too.
  if (winning.find("zz-probe") == winning.end()) {
    std::vector<std::pair<std::string, std::string>> extended = query;
    extended.emplace_back("zz-probe", "1");
    StatusOr<std::string> extended_key =
        CanonicalRequestKey(env, GetRequest(extended));
    FUZZ_CHECK(extended_key.ok());
    FUZZ_CHECK(*extended_key != *key);
  }

  // The key behaves in the cache: a stored 200 comes back bit-identical.
  ResponseCache cache(64 * 1024, nullptr);
  HttpResponse response;
  response.status = 200;
  response.body = raw_query;
  cache.Insert(*key, response);
  HttpResponse found;
  FUZZ_CHECK(cache.Find(*key, &found));
  FUZZ_CHECK(found.status == 200 && found.body == response.body);
  const ResponseCacheStats stats = cache.Snapshot();
  FUZZ_CHECK(stats.hits >= 1 && stats.insertions >= 1);
  FUZZ_CHECK(stats.entries >= 1);
}

}  // namespace fairrank::fuzz

#ifdef FAIRRANK_FUZZ_DRIVER
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  fairrank::fuzz::FuzzResponseCacheKey(data, size);
  return 0;
}
#endif
