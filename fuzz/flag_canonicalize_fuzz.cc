// Fuzz target for the shared CLI/HTTP option pipeline: query string ->
// FlagParser::FromPairs -> AuditOptionsFromFlags / ParseExecutionLimits.
//
// The server promises that a canonicalized flag spelling (sorted names,
// stored values) is *equivalent* to whatever spelling the client sent —
// the response cache depends on it. The harness checks the round-trip:
// re-parsing the canonical form must produce a field-identical
// AuditOptions.
//
// Invariants:
//   - FromPairs / option parsing is deterministic and fails only with
//     InvalidArgument (never crashes, never silently defaults).
//   - Validated ExecutionLimits are non-negative with no int64 -> uint64
//     wraparound (a negative budget must never become near-infinite).
//   - Canonical form (FlagNames() order + GetString values) re-parses to
//     the same AuditOptions, field by field.

#include "fuzz/fuzz_targets.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/status.h"
#include "fairness/option_flags.h"
#include "server/http.h"

namespace fairrank::fuzz {

namespace {

bool SameLimits(const ExecutionLimits& a, const ExecutionLimits& b) {
  return a.timeout_ms == b.timeout_ms && a.max_nodes == b.max_nodes &&
         a.max_memory_mb == b.max_memory_mb;
}

bool SameOptions(const AuditOptions& a, const AuditOptions& b) {
  return a.algorithm == b.algorithm && a.seed == b.seed &&
         a.beam_width == b.beam_width &&
         a.protected_attributes == b.protected_attributes &&
         a.num_worst_pairs == b.num_worst_pairs &&
         a.evaluator.num_bins == b.evaluator.num_bins &&
         a.evaluator.score_lo == b.evaluator.score_lo &&
         a.evaluator.score_hi == b.evaluator.score_hi &&
         a.evaluator.divergence == b.evaluator.divergence &&
         a.evaluator.num_threads == b.evaluator.num_threads &&
         a.evaluator.enable_cache == b.evaluator.enable_cache &&
         a.evaluator.cache_max_bytes == b.evaluator.cache_max_bytes &&
         SameLimits(a.limits, b.limits);
}

}  // namespace

void FuzzFlagCanonicalize(const uint8_t* data, size_t size) {
  FuzzInput in(data, size);
  const std::string query = in.TakeRest();

  // Mirror the server's RequestFlags: decode the query string, then
  // normalize '_' to '-' so both spellings mean the same flag.
  std::vector<std::pair<std::string, std::string>> pairs =
      ParseQueryString(query);
  for (auto& [name, value] : pairs) {
    std::replace(name.begin(), name.end(), '_', '-');
  }

  StatusOr<FlagParser> parsed = FlagParser::FromPairs(pairs);
  if (!parsed.ok()) {
    FUZZ_CHECK(parsed.status().code() == StatusCode::kInvalidArgument);
    return;
  }
  const FlagParser& flags = parsed.value();

  StatusOr<ExecutionLimits> limits = ParseExecutionLimits(flags);
  if (limits.ok()) {
    FUZZ_CHECK(limits->timeout_ms >= 0);
    // Negative inputs are rejected before the widening cast, so a validated
    // budget can never sit in the int64-wraparound range.
    FUZZ_CHECK(limits->max_nodes <= (1ull << 63) - 1);
    FUZZ_CHECK(limits->max_memory_mb <= (1ull << 63) - 1);
  } else {
    FUZZ_CHECK(limits.status().code() == StatusCode::kInvalidArgument);
  }

  StatusOr<AuditOptions> options = AuditOptionsFromFlags(flags);
  StatusOr<AuditOptions> options_again = AuditOptionsFromFlags(flags);
  FUZZ_CHECK(options.ok() == options_again.ok());
  if (!options.ok()) {
    FUZZ_CHECK(options.status().code() == StatusCode::kInvalidArgument);
    return;
  }
  FUZZ_CHECK(SameOptions(options.value(), options_again.value()));

  // Canonical form: names in FlagNames() (sorted) order, stored values.
  std::vector<std::pair<std::string, std::string>> canonical;
  for (const std::string& name : flags.FlagNames()) {
    canonical.emplace_back(name, flags.GetString(name, ""));
  }
  StatusOr<FlagParser> reparsed = FlagParser::FromPairs(canonical);
  FUZZ_CHECK(reparsed.ok());
  StatusOr<AuditOptions> options_canonical =
      AuditOptionsFromFlags(reparsed.value());
  FUZZ_CHECK(options_canonical.ok());
  FUZZ_CHECK(SameOptions(options.value(), options_canonical.value()));
}

}  // namespace fairrank::fuzz

#ifdef FAIRRANK_FUZZ_DRIVER
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  fairrank::fuzz::FuzzFlagCanonicalize(data, size);
  return 0;
}
#endif
