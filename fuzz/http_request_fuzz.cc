// Fuzz target for src/server/http.cc — the bytes-off-the-wire parser.
//
// Input layout: [limits config: 3 bytes][request head bytes...]. Varying
// the size limits from the input drives the 431 (header count), 413
// (Content-Length ceiling) and duplicate-CL/TE rejection paths alongside
// ordinary malformed syntax.
//
// Invariants:
//   - Parsing is deterministic: two parses of the same head agree on
//     success and on every parsed field (bit-determinism of the corpus
//     replay rests on this).
//   - Errors stay within the documented status vocabulary: InvalidArgument
//     (syntax, smuggling hygiene), OutOfRange (header count -> 431),
//     Unimplemented (method / transfer-coding -> 501).
//   - On success: method is GET or POST, the path starts with '/' and
//     prefixes the target, header names are lower-cased, non-empty and
//     trimmed, and the header count respects the configured limit.
//   - ContentLength never exceeds the configured body ceiling on success.
//   - PercentDecode never grows its input; ParseQueryString pairs decode
//     from non-empty segments.
//   - FormatHttpResponse always frames: status line, CRLFCRLF terminator,
//     and the body verbatim at the end.

#include "fuzz/fuzz_targets.h"

#include <algorithm>
#include <string>
#include <string_view>

#include "common/status.h"
#include "server/http.h"

namespace fairrank::fuzz {

namespace {

bool SameRequest(const HttpRequest& a, const HttpRequest& b) {
  return a.method == b.method && a.target == b.target && a.path == b.path &&
         a.minor_version == b.minor_version && a.query == b.query &&
         a.headers == b.headers;
}

bool IsParseErrorCode(StatusCode code) {
  return code == StatusCode::kInvalidArgument ||
         code == StatusCode::kOutOfRange || code == StatusCode::kUnimplemented;
}

}  // namespace

void FuzzHttpRequest(const uint8_t* data, size_t size) {
  FuzzInput in(data, size);
  HttpSizeLimits limits;
  limits.max_head_bytes = 64 + static_cast<size_t>(in.TakeByte() % 4) * 1024;
  limits.max_body_bytes = static_cast<size_t>(in.TakeByte() % 4) * 256;
  limits.max_header_count = 1 + static_cast<size_t>(in.TakeByte() % 8);
  const std::string head = in.TakeRest();

  StatusOr<HttpRequest> first = ParseRequestHead(head, limits);
  StatusOr<HttpRequest> second = ParseRequestHead(head, limits);
  FUZZ_CHECK(first.ok() == second.ok());

  if (!first.ok()) {
    FUZZ_CHECK(IsParseErrorCode(first.status().code()));
    FUZZ_CHECK(first.status().code() == second.status().code());
  } else {
    const HttpRequest& request = first.value();
    FUZZ_CHECK(SameRequest(request, second.value()));
    // A head over the byte cap must never parse, no matter how it arrived:
    // the server's streaming check can be skipped when the whole head lands
    // in one burst, so the parser itself is the backstop (431 path).
    FUZZ_CHECK(limits.max_head_bytes == 0 ||
               head.size() <= limits.max_head_bytes);
    FUZZ_CHECK(request.method == "GET" || request.method == "POST");
    FUZZ_CHECK(!request.path.empty() && request.path[0] == '/');
    FUZZ_CHECK(request.target.compare(0, request.path.size(), request.path) ==
               0);
    FUZZ_CHECK(request.minor_version == 0 || request.minor_version == 1);
    FUZZ_CHECK(request.headers.size() <= limits.max_header_count);
    for (const auto& [name, value] : request.headers) {
      FUZZ_CHECK(!name.empty());
      for (char c : name) {
        FUZZ_CHECK(!(c >= 'A' && c <= 'Z'));
        FUZZ_CHECK(c != ' ' && c != '\t' && c != '\r' && c != '\n');
      }
      FUZZ_CHECK(value.find('\n') == std::string::npos);
    }

    StatusOr<size_t> length_a = ContentLength(request, limits);
    StatusOr<size_t> length_b = ContentLength(request, limits);
    FUZZ_CHECK(length_a.ok() == length_b.ok());
    if (length_a.ok()) {
      FUZZ_CHECK(*length_a == *length_b);
      FUZZ_CHECK(*length_a <= limits.max_body_bytes);
    } else {
      FUZZ_CHECK(length_a.status().code() == StatusCode::kInvalidArgument ||
                 length_a.status().code() == StatusCode::kUnimplemented ||
                 length_a.status().code() == StatusCode::kResourceExhausted);
    }
    FUZZ_CHECK(RequestWantsKeepAlive(request) ==
               RequestWantsKeepAlive(second.value()));
  }

  // The decode helpers accept arbitrary bytes independently of the parse.
  const std::string_view view(head);
  const std::string decoded = PercentDecode(view);
  FUZZ_CHECK(decoded.size() <= head.size());
  for (const auto& [name, value] : ParseQueryString(view)) {
    FUZZ_CHECK(name.size() + value.size() <= head.size());
  }

  // Error responses built from fuzzed fragments must still frame correctly.
  const std::string fragment = head.substr(0, std::min<size_t>(64, head.size()));
  HttpResponse response =
      MakeErrorResponse(400, "InvalidArgument", "bad_request", fragment);
  const std::string wire = FormatHttpResponse(response);
  FUZZ_CHECK(wire.rfind("HTTP/1.1 400 ", 0) == 0);
  FUZZ_CHECK(wire.find("\r\n\r\n") != std::string::npos);
  FUZZ_CHECK(wire.size() >= response.body.size());
  FUZZ_CHECK(wire.compare(wire.size() - response.body.size(),
                          response.body.size(), response.body) == 0);
}

}  // namespace fairrank::fuzz

#ifdef FAIRRANK_FUZZ_DRIVER
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  fairrank::fuzz::FuzzHttpRequest(data, size);
  return 0;
}
#endif
