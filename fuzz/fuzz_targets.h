#ifndef FAIRRANK_FUZZ_FUZZ_TARGETS_H_
#define FAIRRANK_FUZZ_FUZZ_TARGETS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

/// The five fuzz entry points behind fairauditd's untrusted-byte surfaces.
///
/// Each function consumes an arbitrary byte buffer and asserts *structured
/// invariants* of the parser under test (determinism, canonicalization
/// round-trips, error-code discipline, rank-error bounds) — not merely
/// "does not crash". A violated invariant aborts with a message, which
/// libFuzzer records as a crash and turns into a minimized reproducer.
///
/// The same sources compile in two modes:
///   - Fuzzing (clang, -DFAIRRANK_FUZZ=ON): each <name>_fuzz.cc is built
///     into its own libFuzzer binary. FAIRRANK_FUZZ_DRIVER enables the
///     per-target LLVMFuzzerTestOneInput definition.
///   - Regression (any compiler): tests/corpus_regression_test.cc links all
///     five and replays the checked-in corpora under fuzz/corpus/<target>/,
///     so every crash ever found stays a permanent tier-1 test with no
///     libFuzzer dependency.

namespace fairrank::fuzz {

void FuzzHttpRequest(const uint8_t* data, size_t size);
void FuzzFlagCanonicalize(const uint8_t* data, size_t size);
void FuzzCsv(const uint8_t* data, size_t size);
void FuzzResponseCacheKey(const uint8_t* data, size_t size);
void FuzzQuantileSketch(const uint8_t* data, size_t size);

/// Sequential consumer over the fuzz input: configuration bytes off the
/// front, the remainder as payload. Reading past the end yields zeros so
/// every input length is valid.
class FuzzInput {
 public:
  FuzzInput(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t TakeByte() {
    if (pos_ >= size_) return 0;
    return data_[pos_++];
  }

  /// Remaining bytes as a string payload (consumes everything).
  std::string TakeRest() {
    std::string out(reinterpret_cast<const char*>(data_) + pos_,
                    size_ - pos_);
    pos_ = size_;
    return out;
  }

  /// Little-endian doubles, 8 bytes each, until the input runs out.
  bool TakeDouble(double* out) {
    if (pos_ + sizeof(double) > size_) return false;
    std::memcpy(out, data_ + pos_, sizeof(double));
    pos_ += sizeof(double);
    return true;
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace fairrank::fuzz

/// Invariant assertion: active in every build mode (the whole point of the
/// harness is the check, so NDEBUG must not strip it).
#define FUZZ_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FUZZ invariant violated: %s at %s:%d\n", #cond, \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#endif  // FAIRRANK_FUZZ_FUZZ_TARGETS_H_
