// Fuzz target for src/data/csv.cc — the untrusted-file ingest path.
//
// Input layout: [options config: 1 byte][CSV text...]. The config byte
// toggles delimiter, header mode, blank-line handling and the max_rows /
// max_field_bytes hardening caps, so the BOM-stripping, ragged-row and
// limit-enforcement paths all stay reachable from one corpus.
//
// Invariants:
//   - ParseCsvRecord is deterministic and errors only with InvalidArgument
//     (syntax) or ResourceExhausted (field cap); on success every field
//     respects max_field_bytes and the record is non-empty.
//   - Escape/parse round-trip: CsvEscape-ing parsed fields and re-parsing
//     reproduces them exactly (',' delimiter — CsvEscape's contract).
//   - ReadCsv against the paper worker schema is deterministic, errors
//     within the documented vocabulary, and on success honors max_rows.

#include "fuzz/fuzz_targets.h"

#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/str_util.h"
#include "data/csv.h"
#include "data/table.h"
#include "marketplace/worker.h"

namespace fairrank::fuzz {

void FuzzCsv(const uint8_t* data, size_t size) {
  FuzzInput in(data, size);
  const uint8_t config = in.TakeByte();
  CsvOptions options;
  options.delimiter = (config & 1) != 0 ? ';' : ',';
  options.has_header = (config & 2) != 0;
  options.skip_blank_lines = (config & 4) != 0;
  options.max_rows = (config & 8) != 0 ? 16 : 0;
  options.max_field_bytes = (config & 16) != 0 ? 32 : 0;
  const std::string text = in.TakeRest();

  // Single-record parse over the first line.
  const std::string line = text.substr(0, text.find('\n'));
  StatusOr<std::vector<std::string>> record =
      ParseCsvRecord(line, options.delimiter, options.max_field_bytes);
  StatusOr<std::vector<std::string>> record_again =
      ParseCsvRecord(line, options.delimiter, options.max_field_bytes);
  FUZZ_CHECK(record.ok() == record_again.ok());
  if (!record.ok()) {
    FUZZ_CHECK(record.status().code() == StatusCode::kInvalidArgument ||
               record.status().code() == StatusCode::kResourceExhausted);
  } else {
    FUZZ_CHECK(!record->empty());
    FUZZ_CHECK(*record == *record_again);
    if (options.max_field_bytes > 0) {
      for (const std::string& field : *record) {
        FUZZ_CHECK(field.size() <= options.max_field_bytes);
      }
    }
    if (options.delimiter == ',') {
      std::string joined;
      for (size_t i = 0; i < record->size(); ++i) {
        if (i > 0) joined.push_back(',');
        joined += CsvEscape((*record)[i]);
      }
      StatusOr<std::vector<std::string>> round =
          ParseCsvRecord(joined, ',', 0);
      FUZZ_CHECK(round.ok());
      FUZZ_CHECK(*round == *record);
    }
  }

  // Whole-stream read against the real ingest schema.
  StatusOr<Schema> schema = MakePaperWorkerSchema();
  FUZZ_CHECK(schema.ok());
  std::istringstream stream(text);
  StatusOr<Table> table = ReadCsv(stream, schema.value(), options);
  std::istringstream stream_again(text);
  StatusOr<Table> table_again = ReadCsv(stream_again, schema.value(), options);
  FUZZ_CHECK(table.ok() == table_again.ok());
  if (!table.ok()) {
    const StatusCode code = table.status().code();
    FUZZ_CHECK(code == StatusCode::kInvalidArgument ||
               code == StatusCode::kResourceExhausted ||
               code == StatusCode::kNotFound ||
               code == StatusCode::kOutOfRange);
    FUZZ_CHECK(code == table_again.status().code());
  } else {
    FUZZ_CHECK(table->num_rows() == table_again->num_rows());
    if (options.max_rows > 0) {
      FUZZ_CHECK(table->num_rows() <= options.max_rows);
    }
  }
}

}  // namespace fairrank::fuzz

#ifdef FAIRRANK_FUZZ_DRIVER
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  fairrank::fuzz::FuzzCsv(data, size);
  return 0;
}
#endif
