// Fuzz target for src/stats/quantile_sketch.cc — the Greenwald-Khanna
// epsilon-approximate quantile sketch behind the streaming audit paths.
//
// Input layout: [epsilon selector: 1 byte][little-endian doubles...].
// Non-finite doubles are skipped (the sketch's callers feed it scores and
// latencies, which are finite by construction).
//
// Invariants, checked against an exact sorted reference of the same
// stream:
//   - Every Quantile(q) answer is a value that was actually inserted,
//     bounded by the stream min/max.
//   - Rank error <= epsilon*n + 1 (+1 absorbs the 1-based rank rounding at
//     tiny n). This is the bound the fixed containment-based query
//     restores; the old interval-overlap query violated it by up to ~3x.
//   - Quantiles are monotone in q.
//   - Quantile(0) is the exact minimum (the first tuple is never merged).
//   - The sketch never stores more tuples than observations.
//   - EmdFromSketches(a, a) == 0, and EMD is symmetric and non-negative.

#include "fuzz/fuzz_targets.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/status.h"
#include "stats/quantile_sketch.h"

namespace fairrank::fuzz {

namespace {

/// Exact rank error of answering `value` for quantile `q` over sorted
/// `reference`: distance from the target 1-based rank to the nearest rank
/// at which `value` sits.
double RankError(const std::vector<double>& reference, double q,
                 double value) {
  const double n = static_cast<double>(reference.size());
  const double target = q * (n - 1.0) + 1.0;
  const auto lo = std::lower_bound(reference.begin(), reference.end(), value);
  const auto hi = std::upper_bound(reference.begin(), reference.end(), value);
  const double rank_lo = static_cast<double>(lo - reference.begin()) + 1.0;
  const double rank_hi = static_cast<double>(hi - reference.begin());
  if (target < rank_lo) return rank_lo - target;
  if (target > rank_hi) return target - rank_hi;
  return 0.0;
}

}  // namespace

void FuzzQuantileSketch(const uint8_t* data, size_t size) {
  FuzzInput in(data, size);
  static constexpr double kEpsilons[] = {0.5, 0.1, 0.05, 0.01};
  const double epsilon = kEpsilons[in.TakeByte() % 4];

  GkSketch sketch(epsilon);
  GkSketch reversed_sketch(epsilon);
  std::vector<double> values;
  double value = 0.0;
  while (in.TakeDouble(&value)) {
    if (!std::isfinite(value)) continue;
    values.push_back(value);
  }
  for (double v : values) sketch.Insert(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    reversed_sketch.Insert(*it);
  }

  if (values.empty()) {
    StatusOr<double> empty = sketch.Quantile(0.5);
    FUZZ_CHECK(!empty.ok());
    FUZZ_CHECK(empty.status().code() == StatusCode::kFailedPrecondition);
    return;
  }

  FUZZ_CHECK(sketch.count() == values.size());
  FUZZ_CHECK(sketch.tuples() >= 1 && sketch.tuples() <= values.size());

  std::vector<double> reference = values;
  std::sort(reference.begin(), reference.end());
  const double n = static_cast<double>(reference.size());
  const double tolerance = epsilon * n + 1.0;

  StatusOr<double> out_of_range = sketch.Quantile(1.5);
  FUZZ_CHECK(!out_of_range.ok());
  FUZZ_CHECK(out_of_range.status().code() == StatusCode::kInvalidArgument);

  static constexpr double kGrid[] = {0.0,  0.01, 0.1, 0.25, 0.5,
                                     0.75, 0.9,  0.99, 1.0};
  double previous = reference.front();
  for (double q : kGrid) {
    StatusOr<double> answer = sketch.Quantile(q);
    FUZZ_CHECK(answer.ok());
    FUZZ_CHECK(*answer >= reference.front() && *answer <= reference.back());
    FUZZ_CHECK(std::binary_search(reference.begin(), reference.end(),
                                  *answer));
    FUZZ_CHECK(RankError(reference, q, *answer) <= tolerance);
    FUZZ_CHECK(*answer >= previous);
    previous = *answer;
  }
  StatusOr<double> minimum = sketch.Quantile(0.0);
  FUZZ_CHECK(minimum.ok() && *minimum == reference.front());

  StatusOr<double> self = EmdFromSketches(sketch, sketch, 64);
  FUZZ_CHECK(self.ok() && *self == 0.0);
  StatusOr<double> forward = EmdFromSketches(sketch, reversed_sketch, 64);
  StatusOr<double> backward = EmdFromSketches(reversed_sketch, sketch, 64);
  FUZZ_CHECK(forward.ok() && backward.ok());
  FUZZ_CHECK(*forward >= 0.0);
  FUZZ_CHECK(*forward == *backward);
}

}  // namespace fairrank::fuzz

#ifdef FAIRRANK_FUZZ_DRIVER
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  fairrank::fuzz::FuzzQuantileSketch(data, size);
  return 0;
}
#endif
