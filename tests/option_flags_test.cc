// Negative-path coverage for the shared CLI/HTTP option pipeline
// (fairness/option_flags.h): overflow values, empty values, repeated
// flags, and the negative-budget guard that must fire before any
// int64 -> uint64 widening can wrap a "-1" into an unlimited budget.

#include "fairness/option_flags.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/status.h"

namespace fairrank {
namespace {

using Pairs = std::vector<std::pair<std::string, std::string>>;

FlagParser MustParse(const Pairs& pairs) {
  StatusOr<FlagParser> parsed = FlagParser::FromPairs(pairs);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

TEST(ParseExecutionLimitsTest, RejectsNegativeBudgetsBeforeWidening) {
  for (const char* flag : {"timeout-ms", "max-nodes", "max-memory-mb"}) {
    FlagParser flags = MustParse({{flag, "-1"}});
    StatusOr<ExecutionLimits> limits = ParseExecutionLimits(flags);
    ASSERT_FALSE(limits.ok()) << flag;
    EXPECT_EQ(limits.status().code(), StatusCode::kInvalidArgument) << flag;
    EXPECT_NE(limits.status().ToString().find(flag), std::string::npos)
        << "error must name the offending flag: "
        << limits.status().ToString();
  }
}

TEST(ParseExecutionLimitsTest, RejectsInt64Overflow) {
  // One past int64 max: from_chars refuses it, so it can never alias to a
  // small (or negative) budget.
  FlagParser flags = MustParse({{"max-nodes", "9223372036854775808"}});
  StatusOr<ExecutionLimits> limits = ParseExecutionLimits(flags);
  ASSERT_FALSE(limits.ok());
  EXPECT_EQ(limits.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseExecutionLimitsTest, RejectsEmptyAndGarbageValues) {
  for (const char* value : {"", " ", "12x", "0x10", "1e3"}) {
    FlagParser flags = MustParse({{"timeout-ms", value}});
    StatusOr<ExecutionLimits> limits = ParseExecutionLimits(flags);
    ASSERT_FALSE(limits.ok()) << "value '" << value << "'";
    EXPECT_EQ(limits.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ParseExecutionLimitsTest, LastRepeatedFlagWins) {
  FlagParser flags = MustParse({{"max-nodes", "5"}, {"max-nodes", "7"}});
  StatusOr<ExecutionLimits> limits = ParseExecutionLimits(flags);
  ASSERT_TRUE(limits.ok()) << limits.status().ToString();
  EXPECT_EQ(limits->max_nodes, 7u);
}

TEST(ParseExecutionLimitsTest, RepeatedValidThenInvalidFails) {
  // Later duplicates win wholesale — including a later *invalid* value; a
  // valid earlier spelling must not mask it.
  FlagParser flags = MustParse({{"max-nodes", "5"}, {"max-nodes", "-3"}});
  StatusOr<ExecutionLimits> limits = ParseExecutionLimits(flags);
  ASSERT_FALSE(limits.ok());
  EXPECT_EQ(limits.status().code(), StatusCode::kInvalidArgument);
}

TEST(AuditOptionsFromFlagsTest, RejectsOverflowInts) {
  for (const char* flag : {"bins", "seed", "beam-width", "threads",
                           "cache-mb"}) {
    FlagParser flags = MustParse({{flag, "9223372036854775808"}});
    StatusOr<AuditOptions> options = AuditOptionsFromFlags(flags);
    ASSERT_FALSE(options.ok()) << flag;
    EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument) << flag;
  }
}

TEST(AuditOptionsFromFlagsTest, RejectsEmptyNumericValues) {
  for (const char* flag : {"bins", "seed", "beam-width", "threads",
                           "timeout-ms", "cache-mb"}) {
    FlagParser flags = MustParse({{flag, ""}});
    StatusOr<AuditOptions> options = AuditOptionsFromFlags(flags);
    ASSERT_FALSE(options.ok()) << flag;
    EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument) << flag;
  }
}

TEST(AuditOptionsFromFlagsTest, RejectsNegativeCacheMb) {
  FlagParser flags = MustParse({{"cache-mb", "-1"}});
  StatusOr<AuditOptions> options = AuditOptionsFromFlags(flags);
  ASSERT_FALSE(options.ok());
  EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument);
}

TEST(AuditOptionsFromFlagsTest, RejectsBadBooleans) {
  for (const char* value : {"maybe", "2", ""}) {
    FlagParser flags = MustParse({{"no-cache", value}});
    StatusOr<AuditOptions> options = AuditOptionsFromFlags(flags);
    ASSERT_FALSE(options.ok()) << "value '" << value << "'";
    EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(AuditOptionsFromFlagsTest, RepeatedFlagsLastWins) {
  FlagParser flags = MustParse({{"algorithm", "balanced"},
                                {"algorithm", "unbalanced"},
                                {"bins", "10"},
                                {"bins", "32"}});
  StatusOr<AuditOptions> options = AuditOptionsFromFlags(flags);
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->algorithm, "unbalanced");
  EXPECT_EQ(options->evaluator.num_bins, 32);
}

TEST(AuditOptionsFromFlagsTest, EmptyParameterNameFailsAtFromPairs) {
  StatusOr<FlagParser> parsed = FlagParser::FromPairs(Pairs{{"", "value"}});
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(AuditOptionsFromFlagsTest, FlagNamesCoverEveryConsumedFlag) {
  // The published name list is what ValidateKnownFlags trusts; a flag the
  // parser consumes but the list omits would be unreachable over HTTP.
  const std::vector<std::string>& names = AuditOptionFlagNames();
  for (const char* flag :
       {"algorithm", "bins", "divergence", "seed", "beam-width", "threads",
        "attributes", "timeout-ms", "max-nodes", "max-memory-mb", "no-cache",
        "cache-mb"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), flag), names.end())
        << flag << " missing from AuditOptionFlagNames()";
  }
}

TEST(MakeFunctionFromSpecTest, RejectsMalformedSpecs) {
  for (const char* spec :
       {"", "alpha:", "alpha:nope", "f5", "f6:bad", "weights:", "weights:A",
        "weights:A=x", "unknown:1"}) {
    StatusOr<std::unique_ptr<ScoringFunction>> fn = MakeFunctionFromSpec(spec);
    EXPECT_FALSE(fn.ok()) << "spec '" << spec << "' should be rejected";
  }
}

}  // namespace
}  // namespace fairrank
