#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace fairrank {
namespace {

TEST(HistogramTest, MakeValidation) {
  EXPECT_TRUE(Histogram::Make(10, 0.0, 1.0).ok());
  EXPECT_FALSE(Histogram::Make(0, 0.0, 1.0).ok());
  EXPECT_FALSE(Histogram::Make(5, 1.0, 1.0).ok());
  EXPECT_FALSE(Histogram::Make(5, 2.0, 1.0).ok());
}

TEST(HistogramTest, BinAssignment) {
  Histogram h(10, 0.0, 1.0);
  EXPECT_EQ(h.BinOf(0.0), 0);
  EXPECT_EQ(h.BinOf(0.05), 0);
  EXPECT_EQ(h.BinOf(0.1), 1);
  EXPECT_EQ(h.BinOf(0.95), 9);
  EXPECT_EQ(h.BinOf(1.0), 9);  // Upper bound inclusive in last bin.
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
  Histogram h(10, 0.0, 1.0);
  EXPECT_EQ(h.BinOf(-0.5), 0);
  EXPECT_EQ(h.BinOf(2.0), 9);
}

TEST(HistogramTest, InRangeValuesAreNotCountedClamped) {
  Histogram h(10, 0.0, 1.0);
  h.Add(0.0);
  h.Add(0.5);
  h.Add(1.0);  // Upper bound is inclusive, not out of range.
  EXPECT_DOUBLE_EQ(h.clamped_count(), 0.0);
}

TEST(HistogramTest, ClampedCountTracksOutOfRangeMass) {
  Histogram h(10, 0.0, 1.0);
  h.Add(-0.5);
  h.Add(2.0);
  h.AddWeighted(1.5, 2.5);
  h.Add(0.5);
  EXPECT_DOUBLE_EQ(h.clamped_count(), 4.5);
  // Clamped mass still lands in edge bins and counts toward the total.
  EXPECT_DOUBLE_EQ(h.total(), 5.5);
  EXPECT_DOUBLE_EQ(h.counts()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.counts()[9], 3.5);
}

TEST(HistogramTest, MergeSumsClampedCounts) {
  Histogram a(10, 0.0, 1.0);
  Histogram b(10, 0.0, 1.0);
  a.Add(-1.0);
  b.Add(2.0);
  b.Add(3.0);
  ASSERT_TRUE(a.MergeWith(b).ok());
  EXPECT_DOUBLE_EQ(a.clamped_count(), 3.0);
}

TEST(HistogramTest, AddCounts) {
  Histogram h(4, 0.0, 1.0);
  h.Add(0.1);
  h.Add(0.1);
  h.Add(0.6);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
  EXPECT_DOUBLE_EQ(h.counts()[0], 2.0);
  EXPECT_DOUBLE_EQ(h.counts()[2], 1.0);
  EXPECT_FALSE(h.empty());
}

TEST(HistogramTest, AddWeighted) {
  Histogram h(2, 0.0, 1.0);
  h.AddWeighted(0.25, 2.5);
  h.AddWeighted(0.75, 1.5);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.counts()[0], 2.5);
}

TEST(HistogramTest, NormalizedSumsToOne) {
  Histogram h(5, 0.0, 1.0);
  for (double v : {0.05, 0.25, 0.25, 0.45, 0.95}) h.Add(v);
  std::vector<double> p = h.Normalized();
  double sum = 0.0;
  for (double x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(p[1], 0.4);
}

TEST(HistogramTest, CdfIsMonotoneAndEndsAtOne) {
  Histogram h(8, 0.0, 1.0);
  for (int i = 0; i < 50; ++i) h.Add(static_cast<double>(i % 10) / 10.0);
  std::vector<double> cdf = h.Cdf();
  for (size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_NEAR(cdf.back(), 1.0, 1e-12);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h(3, 0.0, 1.0);
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
}

TEST(HistogramTest, BinCenters) {
  Histogram h(10, 0.0, 1.0);
  EXPECT_NEAR(h.BinCenter(0), 0.05, 1e-12);
  EXPECT_NEAR(h.BinCenter(9), 0.95, 1e-12);
}

TEST(HistogramTest, NonUnitRange) {
  Histogram h(5, 25.0, 100.0);
  EXPECT_DOUBLE_EQ(h.bin_width(), 15.0);
  EXPECT_EQ(h.BinOf(25.0), 0);
  EXPECT_EQ(h.BinOf(39.9), 0);
  EXPECT_EQ(h.BinOf(40.0), 1);
  EXPECT_EQ(h.BinOf(100.0), 4);
}

TEST(HistogramTest, SameShape) {
  Histogram a(10, 0.0, 1.0);
  Histogram b(10, 0.0, 1.0);
  Histogram c(9, 0.0, 1.0);
  Histogram d(10, 0.0, 2.0);
  EXPECT_TRUE(a.SameShape(b));
  EXPECT_FALSE(a.SameShape(c));
  EXPECT_FALSE(a.SameShape(d));
}

TEST(HistogramTest, MergeWithSumsCounts) {
  Histogram a(4, 0.0, 1.0);
  a.Add(0.1);
  a.Add(0.6);
  Histogram b(4, 0.0, 1.0);
  b.Add(0.1);
  b.Add(0.9);
  ASSERT_TRUE(a.MergeWith(b).ok());
  EXPECT_DOUBLE_EQ(a.total(), 4.0);
  EXPECT_DOUBLE_EQ(a.counts()[0], 2.0);
  EXPECT_DOUBLE_EQ(a.counts()[2], 1.0);
  EXPECT_DOUBLE_EQ(a.counts()[3], 1.0);
}

TEST(HistogramTest, MergeWithShapeMismatchFails) {
  Histogram a(4, 0.0, 1.0);
  Histogram b(5, 0.0, 1.0);
  EXPECT_EQ(a.MergeWith(b).code(), StatusCode::kInvalidArgument);
  Histogram c(4, 0.0, 2.0);
  EXPECT_FALSE(a.MergeWith(c).ok());
}

TEST(HistogramTest, MergeWithEmptyIsNoOp) {
  Histogram a(4, 0.0, 1.0);
  a.Add(0.5);
  Histogram empty(4, 0.0, 1.0);
  ASSERT_TRUE(a.MergeWith(empty).ok());
  EXPECT_DOUBLE_EQ(a.total(), 1.0);
}

TEST(HistogramTest, ToAsciiRendersBars) {
  Histogram h(2, 0.0, 1.0);
  h.Add(0.1);
  h.Add(0.1);
  h.Add(0.9);
  std::string art = h.ToAscii(10);
  EXPECT_NE(art.find("##########"), std::string::npos);  // Full bar.
  EXPECT_NE(art.find("#####"), std::string::npos);       // Half bar.
}

TEST(HistogramTest, ToAsciiEmptyDoesNotCrash) {
  Histogram h(3, 0.0, 1.0);
  EXPECT_FALSE(h.ToAscii().empty());
}

}  // namespace
}  // namespace fairrank
