#include "fairness/partition.h"

#include <gtest/gtest.h>

#include "marketplace/worker.h"

namespace fairrank {
namespace {

TEST(PartitionTest, MakeRootPartitionCoversAllRows) {
  Partition root = MakeRootPartition(5);
  EXPECT_EQ(root.size(), 5u);
  EXPECT_TRUE(root.path.empty());
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(root.rows[i], i);
}

TEST(PartitionTest, RootLabel) {
  Schema schema = MakeToySchema().value();
  EXPECT_EQ(PartitionLabel(schema, MakeRootPartition(3)), "<all>");
}

TEST(PartitionTest, PathLabel) {
  Schema schema = MakeToySchema().value();
  Partition p;
  p.rows = {0};
  p.path = {{0, 0}, {1, 2}};  // Gender=Male, Language=Other.
  EXPECT_EQ(PartitionLabel(schema, p), "Gender=Male & Language=Other");
}

TEST(PartitionTest, NumericBucketLabel) {
  Schema schema;
  ASSERT_TRUE(schema
                  .AddAttribute(AttributeSpec::Integer(
                      "Age", AttributeRole::kProtected, 0, 30, 3))
                  .ok());
  Partition p;
  p.rows = {0};
  p.path = {{0, 1}};
  EXPECT_EQ(PartitionLabel(schema, p), "Age=[10,20)");
}

TEST(PartitionTest, AttributesUsedDeduplicatesInSchemaOrder) {
  Schema schema = MakeToySchema().value();
  Partitioning partitioning;
  Partition a;
  a.rows = {0};
  a.path = {{1, 0}, {0, 0}};  // Language then Gender.
  Partition b;
  b.rows = {1};
  b.path = {{1, 1}};
  partitioning.push_back(a);
  partitioning.push_back(b);
  EXPECT_EQ(AttributesUsed(schema, partitioning),
            (std::vector<std::string>{"Gender", "Language"}));
}

TEST(PartitionTest, AttributesUsedEmptyForRoot) {
  Schema schema = MakeToySchema().value();
  Partitioning partitioning{MakeRootPartition(4)};
  EXPECT_TRUE(AttributesUsed(schema, partitioning).empty());
}

TEST(IsValidPartitioningTest, ValidCases) {
  Partitioning p;
  Partition a;
  a.rows = {0, 2};
  Partition b;
  b.rows = {1};
  p.push_back(a);
  p.push_back(b);
  EXPECT_TRUE(IsValidPartitioning(p, 3));
  EXPECT_TRUE(IsValidPartitioning({MakeRootPartition(4)}, 4));
}

TEST(IsValidPartitioningTest, DetectsMissingRow) {
  Partitioning p;
  Partition a;
  a.rows = {0, 1};
  p.push_back(a);
  EXPECT_FALSE(IsValidPartitioning(p, 3));
}

TEST(IsValidPartitioningTest, DetectsDuplicateRow) {
  Partitioning p;
  Partition a;
  a.rows = {0, 1};
  Partition b;
  b.rows = {1, 2};
  p.push_back(a);
  p.push_back(b);
  EXPECT_FALSE(IsValidPartitioning(p, 3));
}

TEST(IsValidPartitioningTest, DetectsOutOfRangeRow) {
  Partitioning p;
  Partition a;
  a.rows = {0, 5};
  p.push_back(a);
  EXPECT_FALSE(IsValidPartitioning(p, 3));
}

TEST(IsValidPartitioningTest, DetectsEmptyPartition) {
  Partitioning p;
  Partition a;
  a.rows = {0, 1, 2};
  Partition empty;
  p.push_back(a);
  p.push_back(empty);
  EXPECT_FALSE(IsValidPartitioning(p, 3));
}

TEST(IsValidPartitioningTest, EmptyPartitioningOnlyValidForZeroRows) {
  EXPECT_TRUE(IsValidPartitioning({}, 0));
  EXPECT_FALSE(IsValidPartitioning({}, 1));
}

}  // namespace
}  // namespace fairrank
