// Multi-threaded stress tests of the evaluator memoization layer — the
// companion to cache_test.cc that actually races it. N threads audit
// overlapping partitions against ONE evaluator and must observe bit-identical
// values; a tiny byte cap races epoch eviction against concurrent lookups.
// The TSan CI job (FAIRRANK_SANITIZE=thread) runs this binary to turn any
// latent data race in EvaluatorCache / ParallelFor into a hard failure;
// under the plain build it still verifies determinism under contention.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "fairness/eval_cache.h"
#include "fairness/evaluator.h"
#include "fairness/partition.h"
#include "fairness/registry.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"
#include "stats/histogram.h"

namespace fairrank {
namespace {

constexpr int kThreads = 8;

Table Workers(size_t n, uint64_t seed = 20190326) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = seed;
  return GenerateWorkers(options).value();
}

std::vector<double> Scores(const Table& workers) {
  auto fn = MakeAlphaFunction("f1", 0.5);
  return fn->ScoreAll(workers).value();
}

/// A multi-level partitioning whose cells overlap across levels (each level
/// re-partitions the same rows), so concurrent evaluations keep colliding on
/// the same fingerprints — the worst case for the cache's locking.
Partitioning OverlappingPartitions(const UnfairnessEvaluator& eval,
                                   const Table& workers) {
  auto algo = MakeAlgorithmByName("all-attributes").value();
  Partitioning p =
      algo->Run(eval, workers.schema().ProtectedIndices()).value();
  EXPECT_GE(p.size(), 2u);
  return p;
}

TEST(CacheStressTest, ConcurrentEvaluationsAreBitIdentical) {
  Table workers = Workers(400);
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&workers, Scores(workers), EvaluatorOptions())
          .value();
  Partitioning p = OverlappingPartitions(eval, workers);

  // Serial reference values, computed before any contention.
  const double reference_unfairness =
      eval.AveragePairwiseUnfairness(p).value();
  std::vector<double> reference_distances;
  for (size_t i = 0; i + 1 < p.size(); ++i) {
    reference_distances.push_back(eval.Distance(p[i], p[i + 1]).value());
  }

  // Every thread hammers the SAME evaluator over the SAME partitions.
  // The cache is the only shared mutable state; any torn read or lost
  // insert shows up as a value difference (or a TSan report).
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int round = 0; round < 20; ++round) {
        StatusOr<double> u = eval.AveragePairwiseUnfairness(p);
        if (!u.ok() || *u != reference_unfairness) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        for (size_t i = 0; i + 1 < p.size(); ++i) {
          StatusOr<double> d = eval.Distance(p[i], p[i + 1]);
          if (!d.ok() || *d != reference_distances[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // The shared cache saw real traffic from the race.
  EvalCacheStats stats = eval.cache_stats();
  EXPECT_GT(stats.histogram_hits, 0u);
  EXPECT_GT(stats.divergence_hits, 0u);
}

TEST(CacheStressTest, EvictionRacesLookupsWithoutCorruption) {
  Table workers = Workers(400);
  EvaluatorOptions options;
  // A cap this tiny forces an epoch eviction every few inserts, so lookups
  // constantly race the clear() under the lock.
  options.cache_max_bytes = 2 * 1024;
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&workers, Scores(workers), options).value();
  Partitioning p = OverlappingPartitions(eval, workers);
  const double reference = eval.AveragePairwiseUnfairness(p).value();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int round = 0; round < 10; ++round) {
        StatusOr<double> u = eval.AveragePairwiseUnfairness(p);
        if (!u.ok() || *u != reference) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(eval.cache_stats().evictions, 0u);
}

TEST(CacheStressTest, RawCacheSurvivesConcurrentInsertFindEvict) {
  // Hammer the EvaluatorCache directly: writers insert histograms and
  // divergences whose keys overlap across threads, readers look them up,
  // and the 4 KiB cap keeps epoch eviction firing throughout.
  EvaluatorCache cache(/*enabled=*/true, /*max_bytes=*/4 * 1024);
  std::atomic<int> wrong_values{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (uint64_t i = 1; i <= 2000; ++i) {
        uint64_t fp = 1 + (i + static_cast<uint64_t>(t) * 7) % 97;
        cache.InsertDivergence(fp, fp + 1000, static_cast<double>(fp));
        double d = 0.0;
        if (cache.FindDivergence(fp, fp + 1000, &d) &&
            d != static_cast<double>(fp)) {
          wrong_values.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 16 == 0) {
          auto h = std::make_shared<Histogram>(10, 0.0, 1.0);
          cache.InsertHistogram(fp, std::move(h));
          std::shared_ptr<const Histogram> found = cache.FindHistogram(fp);
          if (found != nullptr && found->counts().size() != 10) {
            wrong_values.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong_values.load(), 0);
  EvalCacheStats stats = cache.Snapshot();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_used, 4u * 1024u);
}

TEST(CacheStressTest, ConcurrentAuditsShareNothingAndStayExact) {
  // Whole audits in parallel: each thread owns its evaluator (the supported
  // sharing model — caches are per-evaluator), all reading one table.
  Table workers = Workers(300);
  auto fn = MakeAlphaFunction("f1", 0.5);
  std::vector<double> scores = fn->ScoreAll(workers).value();

  UnfairnessEvaluator reference_eval =
      UnfairnessEvaluator::Make(&workers, scores, EvaluatorOptions()).value();
  Partitioning p = OverlappingPartitions(reference_eval, workers);
  const double reference =
      reference_eval.AveragePairwiseUnfairness(p).value();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      UnfairnessEvaluator eval =
          UnfairnessEvaluator::Make(&workers, scores, EvaluatorOptions())
              .value();
      Partitioning mine = OverlappingPartitions(eval, workers);
      StatusOr<double> u = eval.AveragePairwiseUnfairness(mine);
      if (!u.ok() || *u != reference) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace fairrank
