#include "fairness/exhaustive.h"

#include <gtest/gtest.h>

#include "fairness/registry.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

std::vector<double> ToyScores(const Table& table) {
  size_t score_col = table.schema().FindIndex("Score").value();
  std::vector<double> scores;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    scores.push_back(table.column(score_col).RealAt(row));
  }
  return scores;
}

TEST(ExhaustiveTest, FindsFigure1Optimum) {
  Table table = MakeToyTable().value();
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&table, ToyScores(table), EvaluatorOptions())
          .value();
  auto algo = MakeExhaustiveAlgorithm();
  Partitioning p =
      algo->Run(eval, table.schema().ProtectedIndices()).value();
  // The optimum is {Male-English, Male-Indian, Male-Other, Female}.
  ASSERT_EQ(p.size(), 4u);
  std::set<std::string> labels;
  for (const Partition& part : p) {
    labels.insert(PartitionLabel(table.schema(), part));
  }
  EXPECT_TRUE(labels.count("Gender=Female"));
  EXPECT_TRUE(labels.count("Gender=Male & Language=English"));
  EXPECT_TRUE(labels.count("Gender=Male & Language=Indian"));
  EXPECT_TRUE(labels.count("Gender=Male & Language=Other"));
}

TEST(ExhaustiveTest, OptimumDominatesHeuristics) {
  // On a small instance exhaustive must be >= every heuristic.
  GeneratorOptions options;
  options.num_workers = 60;
  options.seed = 31;
  Table workers = GenerateWorkers(options).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&workers, fn->ScoreAll(workers).value(),
                                EvaluatorOptions())
          .value();
  std::vector<size_t> attrs = workers.schema().ProtectedIndices();
  attrs.resize(2);  // Keep brute force small.

  ExhaustiveOptions ex;
  ex.max_partitionings = 500000;
  auto exhaustive = MakeExhaustiveAlgorithm(ex);
  double optimum =
      eval.AveragePairwiseUnfairness(exhaustive->Run(eval, attrs).value())
          .value();
  for (const std::string& name : PaperAlgorithmNames()) {
    auto algo = MakeAlgorithmByName(name).value();
    double heuristic =
        eval.AveragePairwiseUnfairness(algo->Run(eval, attrs).value())
            .value();
    EXPECT_GE(optimum + 1e-9, heuristic) << name;
  }
}

TEST(ExhaustiveTest, BudgetExhaustionTruncatesToBestSoFar) {
  GeneratorOptions options;
  options.num_workers = 200;
  options.seed = 13;
  Table workers = GenerateWorkers(options).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&workers, fn->ScoreAll(workers).value(),
                                EvaluatorOptions())
          .value();
  ExhaustiveOptions ex;
  ex.max_partitionings = 50;  // Far too small for 6 attributes.
  ex.fallback_to_beam = false;
  auto algo = MakeExhaustiveAlgorithm(ex);
  SearchResult result = algo->Run(eval, workers.schema().ProtectedIndices(),
                                  ExecutionContext::Unbounded())
                            .value();
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.reason, ExhaustionReason::kNodeBudget);
  EXPECT_TRUE(IsValidPartitioning(result.partitioning, workers.num_rows()));
  EXPECT_EQ(result.nodes_visited, ex.max_partitionings + 1);
}

TEST(ExhaustiveTest, NodeBudgetFallsBackToBeam) {
  GeneratorOptions options;
  options.num_workers = 200;
  options.seed = 13;
  Table workers = GenerateWorkers(options).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&workers, fn->ScoreAll(workers).value(),
                                EvaluatorOptions())
          .value();
  ExhaustiveOptions ex;
  ex.max_partitionings = 50;
  ex.fallback_to_beam = false;
  double without_fallback =
      eval.AveragePairwiseUnfairness(
              MakeExhaustiveAlgorithm(ex)
                  ->Run(eval, workers.schema().ProtectedIndices(),
                        ExecutionContext::Unbounded())
                  .value()
                  .partitioning)
          .value();
  ex.fallback_to_beam = true;
  SearchResult with_fallback =
      MakeExhaustiveAlgorithm(ex)
          ->Run(eval, workers.schema().ProtectedIndices(),
                ExecutionContext::Unbounded())
          .value();
  EXPECT_TRUE(with_fallback.truncated);
  EXPECT_EQ(with_fallback.reason, ExhaustionReason::kNodeBudget);
  EXPECT_TRUE(
      IsValidPartitioning(with_fallback.partitioning, workers.num_rows()));
  // The fallback keeps the better of {enumeration best-so-far, beam}.
  double with_fallback_avg =
      eval.AveragePairwiseUnfairness(with_fallback.partitioning).value();
  EXPECT_GE(with_fallback_avg + 1e-12, without_fallback);
}

TEST(ExhaustiveTest, TimeBudgetTruncatesAsDeadline) {
  GeneratorOptions options;
  options.num_workers = 200;
  options.seed = 13;
  Table workers = GenerateWorkers(options).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&workers, fn->ScoreAll(workers).value(),
                                EvaluatorOptions())
          .value();
  ExhaustiveOptions ex;
  ex.max_seconds = 1e-9;  // Expires after the first evaluated partitioning.
  auto algo = MakeExhaustiveAlgorithm(ex);
  SearchResult result = algo->Run(eval, workers.schema().ProtectedIndices(),
                                  ExecutionContext::Unbounded())
                            .value();
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.reason, ExhaustionReason::kDeadline);
  EXPECT_TRUE(IsValidPartitioning(result.partitioning, workers.num_rows()));
}

TEST(ExhaustiveTest, SingleAttributeSpace) {
  // With one attribute the space is {root} and {split}; optimum is the
  // split whenever it has >= 2 groups.
  Table table = MakeToyTable().value();
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&table, ToyScores(table), EvaluatorOptions())
          .value();
  size_t gender = table.schema().FindIndex("Gender").value();
  auto algo = MakeExhaustiveAlgorithm();
  Partitioning p = algo->Run(eval, {gender}).value();
  EXPECT_EQ(p.size(), 2u);
}

TEST(CountPartitioningsTest, ToyExampleCount) {
  // Toy: Gender (2 values) and Language (3 values), all groups non-empty.
  // Trees: leaf(1) + gender-first (2 branches, each leaf-or-language:
  // 2*2=4) + language-first (3 branches, each leaf-or-gender: 2^3=8) = 13.
  Table table = MakeToyTable().value();
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&table, ToyScores(table), EvaluatorOptions())
          .value();
  EXPECT_EQ(CountHierarchicalPartitionings(
                eval, table.schema().ProtectedIndices(), 1000),
            13u);
}

TEST(CountPartitioningsTest, CapRespected) {
  Table table = MakeToyTable().value();
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&table, ToyScores(table), EvaluatorOptions())
          .value();
  EXPECT_EQ(CountHierarchicalPartitionings(
                eval, table.schema().ProtectedIndices(), 5),
            5u);
}

TEST(CountPartitioningsTest, GrowsExplosivelyWithAttributes) {
  // The paper: brute force "failed to terminate after two days" with six
  // attributes. Verify the count explodes as attributes are added.
  GeneratorOptions options;
  options.num_workers = 120;
  options.seed = 3;
  Table workers = GenerateWorkers(options).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&workers, fn->ScoreAll(workers).value(),
                                EvaluatorOptions())
          .value();
  std::vector<size_t> all = workers.schema().ProtectedIndices();
  uint64_t previous = 0;
  const uint64_t kCap = 2'000'000;
  for (size_t k = 1; k <= 4; ++k) {
    std::vector<size_t> attrs(all.begin(), all.begin() + k);
    uint64_t count = CountHierarchicalPartitionings(eval, attrs, kCap);
    EXPECT_GT(count, previous);
    previous = count;
  }
  EXPECT_EQ(previous, kCap);  // Four attributes already exceed 2M trees.
}

}  // namespace
}  // namespace fairrank
