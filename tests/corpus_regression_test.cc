// Replays every checked-in fuzz corpus file through its harness in a
// normal (non-libFuzzer) build. Each fuzz entry point asserts its own
// structured invariants and aborts on violation, so a corpus input that
// once crashed a parser stays a permanent tier-1 regression case — under
// Release, ASan and TSan alike, with no clang/libFuzzer dependency.
//
// Every file is replayed twice back to back: the harnesses compare parse
// results across calls internally, so a pass here certifies the replay is
// bit-deterministic, which is what lets the response cache and the suite
// goldens trust these parsers.
//
// FAIRRANK_CORPUS_DIR is injected by tests/CMakeLists.txt and points at
// <repo>/fuzz/corpus.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzz_targets.h"

namespace fairrank {
namespace {

namespace fs = std::filesystem;

using FuzzEntryPoint = void (*)(const uint8_t*, size_t);

struct CorpusTarget {
  const char* name;
  FuzzEntryPoint entry;
};

constexpr CorpusTarget kTargets[] = {
    {"http_request", fuzz::FuzzHttpRequest},
    {"flag_canonicalize", fuzz::FuzzFlagCanonicalize},
    {"csv", fuzz::FuzzCsv},
    {"response_cache_key", fuzz::FuzzResponseCacheKey},
    {"quantile_sketch", fuzz::FuzzQuantileSketch},
};

std::vector<uint8_t> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

/// Sorted file list so the replay order (and any failure) is stable.
std::vector<fs::path> CorpusFiles(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

class CorpusRegressionTest : public ::testing::TestWithParam<CorpusTarget> {};

TEST_P(CorpusRegressionTest, ReplaysSeedCorpusDeterministically) {
  const CorpusTarget target = GetParam();
  const fs::path dir = fs::path(FAIRRANK_CORPUS_DIR) / target.name;
  ASSERT_TRUE(fs::is_directory(dir))
      << "missing corpus directory " << dir
      << " — every fuzz target ships a seed corpus";
  const std::vector<fs::path> files = CorpusFiles(dir);
  ASSERT_FALSE(files.empty()) << "empty corpus for " << target.name;
  for (const fs::path& file : files) {
    SCOPED_TRACE(file.string());
    const std::vector<uint8_t> bytes = ReadFile(file);
    // Two replays: the harness cross-checks parse results internally, so
    // surviving both certifies determinism, not just absence of crashes.
    target.entry(bytes.data(), bytes.size());
    target.entry(bytes.data(), bytes.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTargets, CorpusRegressionTest, ::testing::ValuesIn(kTargets),
    [](const ::testing::TestParamInfo<CorpusTarget>& info) {
      return std::string(info.param.name);
    });

// A corpus directory nobody replays is worse than none — it looks like
// coverage. Fail if fuzz/corpus/ grows a directory with no registered
// harness.
TEST(CorpusLayoutTest, EveryCorpusDirectoryHasAHarness) {
  for (const auto& entry : fs::directory_iterator(FAIRRANK_CORPUS_DIR)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    bool known = false;
    for (const CorpusTarget& target : kTargets) {
      known = known || name == target.name;
    }
    EXPECT_TRUE(known) << "corpus directory '" << name
                       << "' has no registered fuzz target";
  }
}

}  // namespace
}  // namespace fairrank
