#include <gtest/gtest.h>

#include "fairness/algorithm.h"
#include "fairness/splitter.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

// The evaluator holds a pointer to its table, so the table lives behind a
// stable unique_ptr address for the fixture's lifetime.
struct Fixture {
  std::unique_ptr<Table> table;
  std::unique_ptr<UnfairnessEvaluator> evaluator;

  const Table& workers() const { return *table; }
  const UnfairnessEvaluator& eval() const { return *evaluator; }
};

Fixture MakeFixture(const ScoringFunction& fn, size_t n = 300,
                    uint64_t seed = 6) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = seed;
  Fixture fx;
  fx.table = std::make_unique<Table>(GenerateWorkers(options).value());
  fx.evaluator = std::make_unique<UnfairnessEvaluator>(
      UnfairnessEvaluator::Make(fx.table.get(),
                                fn.ScoreAll(*fx.table).value(),
                                EvaluatorOptions())
          .value());
  return fx;
}

TEST(WorstAttributeSelectorTest, GlobalPicksGenderUnderF6) {
  auto f6 = MakeF6(3);
  Fixture fx = MakeFixture(*f6);
  auto selector = MakeWorstAttributeSelector();
  Partitioning root{MakeRootPartition(fx.workers().num_rows())};
  std::vector<size_t> attrs = fx.workers().schema().ProtectedIndices();
  size_t pos = selector->SelectGlobal(fx.eval(), root, attrs).value();
  EXPECT_EQ(fx.workers().schema().attribute(attrs[pos]).name(),
            worker_attrs::kGender);
}

TEST(WorstAttributeSelectorTest, LocalPicksCountryInsideGenderUnderF7) {
  auto f7 = MakeF7(3);
  Fixture fx = MakeFixture(*f7, 600);
  auto selector = MakeWorstAttributeSelector();
  size_t gender =
      fx.workers().schema().FindIndex(worker_attrs::kGender).value();
  auto children = SplitPartition(
      fx.workers(), MakeRootPartition(fx.workers().num_rows()), gender);
  ASSERT_EQ(children.size(), 2u);
  std::vector<Partition> siblings = {children[1]};
  std::vector<size_t> attrs = fx.workers().schema().ProtectedIndices();
  attrs.erase(std::find(attrs.begin(), attrs.end(), gender));
  size_t pos =
      selector->SelectLocal(fx.eval(), children[0], siblings, attrs).value();
  EXPECT_EQ(fx.workers().schema().attribute(attrs[pos]).name(),
            worker_attrs::kCountry);
}

TEST(WorstAttributeSelectorTest, EmptyAttributeListFails) {
  auto f6 = MakeF6(3);
  Fixture fx = MakeFixture(*f6, 50);
  auto selector = MakeWorstAttributeSelector();
  Partitioning root{MakeRootPartition(fx.workers().num_rows())};
  EXPECT_FALSE(selector->SelectGlobal(fx.eval(), root, {}).ok());
  EXPECT_FALSE(selector->SelectLocal(fx.eval(), root[0], {}, {}).ok());
}

TEST(RandomAttributeSelectorTest, DeterministicGivenSeed) {
  auto f6 = MakeF6(3);
  Fixture fx = MakeFixture(*f6, 50);
  Partitioning root{MakeRootPartition(fx.workers().num_rows())};
  std::vector<size_t> attrs = fx.workers().schema().ProtectedIndices();
  auto a = MakeRandomAttributeSelector(9);
  auto b = MakeRandomAttributeSelector(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a->SelectGlobal(fx.eval(), root, attrs).value(),
              b->SelectGlobal(fx.eval(), root, attrs).value());
  }
}

TEST(RandomAttributeSelectorTest, CoversAllPositions) {
  auto f6 = MakeF6(3);
  Fixture fx = MakeFixture(*f6, 50);
  Partitioning root{MakeRootPartition(fx.workers().num_rows())};
  std::vector<size_t> attrs = fx.workers().schema().ProtectedIndices();
  auto selector = MakeRandomAttributeSelector(4);
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(selector->SelectGlobal(fx.eval(), root, attrs).value());
  }
  EXPECT_EQ(seen.size(), attrs.size());
}

TEST(RandomAttributeSelectorTest, EmptyAttributeListFails) {
  auto f6 = MakeF6(3);
  Fixture fx = MakeFixture(*f6, 50);
  Partitioning root{MakeRootPartition(fx.workers().num_rows())};
  auto selector = MakeRandomAttributeSelector(1);
  EXPECT_FALSE(selector->SelectGlobal(fx.eval(), root, {}).ok());
}

}  // namespace
}  // namespace fairrank
