#include "marketplace/tasks.h"

#include <gtest/gtest.h>

#include "marketplace/generator.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

Table Workers(size_t n = 300) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = 14;
  return GenerateWorkers(options).value();
}

TEST(TaskCatalogTest, DefaultCatalogShape) {
  TaskCatalog catalog = TaskCatalog::MakeDefaultCatalog();
  EXPECT_EQ(catalog.num_categories(), 5u);
  EXPECT_TRUE(catalog.FindCategory("web development").ok());
  EXPECT_TRUE(catalog.FindCategory("general labor").ok());
  EXPECT_EQ(catalog.FindCategory("bogus").status().code(),
            StatusCode::kNotFound);
}

TEST(TaskCatalogTest, CategoryWeightsSumToOne) {
  TaskCatalog catalog = TaskCatalog::MakeDefaultCatalog();
  for (size_t c = 0; c < catalog.num_categories(); ++c) {
    double total = 0.0;
    for (const auto& [name, weight] : catalog.category(c).weights) {
      total += weight;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << catalog.category(c).name;
  }
}

TEST(TaskCatalogTest, AddCategoryValidation) {
  TaskCatalog catalog;
  TaskCategory empty_name;
  empty_name.weights = {{worker_attrs::kLanguageTest, 1.0}};
  EXPECT_EQ(catalog.AddCategory(empty_name).code(),
            StatusCode::kInvalidArgument);

  TaskCategory no_weights;
  no_weights.name = "x";
  EXPECT_EQ(catalog.AddCategory(no_weights).code(),
            StatusCode::kInvalidArgument);

  TaskCategory ok;
  ok.name = "x";
  ok.weights = {{worker_attrs::kLanguageTest, 1.0}};
  EXPECT_TRUE(catalog.AddCategory(ok).ok());
  EXPECT_EQ(catalog.AddCategory(ok).code(), StatusCode::kAlreadyExists);
}

TEST(TaskCatalogTest, QueryForInducesRanking) {
  Table workers = Workers(100);
  TaskCatalog catalog = TaskCatalog::MakeDefaultCatalog();
  RankingEngine engine(&workers);
  size_t writing = catalog.FindCategory("content writing").value();
  auto ranking = engine.Rank(catalog.QueryFor(writing));
  ASSERT_TRUE(ranking.ok());
  EXPECT_EQ(ranking->size(), workers.num_rows());
}

TEST(TaskCatalogTest, GenerateTasksDeterministic) {
  TaskCatalog catalog = TaskCatalog::MakeDefaultCatalog();
  Rng rng1(5);
  Rng rng2(5);
  auto a = catalog.GenerateTasks(50, &rng1);
  auto b = catalog.GenerateTasks(50, &rng2);
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].category_index, b[i].category_index);
    EXPECT_EQ(a[i].id, i);
    EXPECT_LT(a[i].category_index, catalog.num_categories());
    EXPECT_FALSE(a[i].description.empty());
  }
}

TEST(TaskCatalogTest, GenerateTasksCoversCategories) {
  TaskCatalog catalog = TaskCatalog::MakeDefaultCatalog();
  Rng rng(9);
  auto tasks = catalog.GenerateTasks(200, &rng);
  std::set<size_t> seen;
  for (const PostedTask& t : tasks) seen.insert(t.category_index);
  EXPECT_EQ(seen.size(), catalog.num_categories());
}

TEST(AuditCatalogTest, SortedByUnfairnessAndComplete) {
  Table workers = Workers(400);
  TaskCatalog catalog = TaskCatalog::MakeDefaultCatalog();
  AuditOptions options;
  options.algorithm = "unbalanced";
  auto rows = AuditCatalog(workers, catalog, options);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), catalog.num_categories());
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_GE((*rows)[i - 1].unfairness, (*rows)[i].unfairness);
  }
  for (const CategoryAuditRow& row : *rows) {
    EXPECT_GE(row.num_partitions, 1u);
  }
}

TEST(AuditCatalogTest, ExtremeAlphasMostUnfair) {
  // Single-attribute categories ("content writing" alpha 0.9, "general
  // labor" alpha 0) should audit as least fair, mirroring the paper's
  // f4/f5 observation. The most extreme category must out-rank the most
  // balanced one.
  Table workers = Workers(500);
  TaskCatalog catalog = TaskCatalog::MakeDefaultCatalog();
  AuditOptions options;
  options.algorithm = "balanced";
  auto rows = AuditCatalog(workers, catalog, options).value();
  size_t support_position = 0;
  size_t labor_position = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].category == "customer support") support_position = i;
    if (rows[i].category == "general labor") labor_position = i;
  }
  EXPECT_LT(labor_position, support_position);
}

TEST(AuditCatalogTest, EmptyCatalogFails) {
  Table workers = Workers(50);
  TaskCatalog empty;
  AuditOptions options;
  EXPECT_FALSE(AuditCatalog(workers, empty, options).ok());
}

}  // namespace
}  // namespace fairrank
