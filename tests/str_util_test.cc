#include "common/str_util.h"

#include <gtest/gtest.h>

namespace fairrank {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, NoDelimiter) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nhi\r "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_FALSE(StartsWith("barfoo", "foo"));
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("AbC-123"), "abc-123");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(0.123456, 3), "0.123");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-1.5, 2), "-1.50");
}

TEST(ParseDoubleTest, Valid) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("  -7 ", &v));
  EXPECT_DOUBLE_EQ(v, -7.0);
}

TEST(ParseDoubleTest, Invalid) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

TEST(ParseInt64Test, Valid) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64(" -9 ", &v));
  EXPECT_EQ(v, -9);
}

TEST(ParseInt64Test, Invalid) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12.5", &v));
  EXPECT_FALSE(ParseInt64("x", &v));
}


TEST(CsvEscapeTest, PassesPlainFieldsThrough) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape(""), "");
  EXPECT_EQ(CsvEscape("with space"), "with space");
  EXPECT_EQ(CsvEscape("pipe|join"), "pipe|join");
}

TEST(CsvEscapeTest, QuotesRfc4180Metacharacters) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvEscape("cr\rhere"), "\"cr\rhere\"");
  EXPECT_EQ(CsvEscape("\""), "\"\"\"\"");
}

}  // namespace
}  // namespace fairrank
