#include "data/table.h"

#include <gtest/gtest.h>

namespace fairrank {
namespace {

Schema MakeTestSchema() {
  Schema schema;
  EXPECT_TRUE(schema
                  .AddAttribute(AttributeSpec::Categorical(
                      "Gender", AttributeRole::kProtected, {"Male", "Female"}))
                  .ok());
  EXPECT_TRUE(schema
                  .AddAttribute(AttributeSpec::Integer(
                      "Age", AttributeRole::kProtected, 18, 80, 5))
                  .ok());
  EXPECT_TRUE(schema
                  .AddAttribute(AttributeSpec::Real(
                      "Rating", AttributeRole::kObserved, 0.0, 5.0, 10))
                  .ok());
  return schema;
}

TEST(TableTest, AppendAndRead) {
  Table table(MakeTestSchema());
  ASSERT_TRUE(
      table.AppendRow({std::string("Male"), int64_t{30}, 4.5}).ok());
  ASSERT_TRUE(
      table.AppendRow({std::string("Female"), int64_t{55}, 2.0}).ok());
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_columns(), 3u);
  EXPECT_EQ(table.column(0).CodeAt(0), 0);
  EXPECT_EQ(table.column(0).CodeAt(1), 1);
  EXPECT_EQ(table.column(1).IntAt(0), 30);
  EXPECT_DOUBLE_EQ(table.column(2).RealAt(1), 2.0);
}

TEST(TableTest, CategoricalByCode) {
  Table table(MakeTestSchema());
  ASSERT_TRUE(table.AppendRow({int64_t{1}, int64_t{40}, 3.0}).ok());
  EXPECT_EQ(table.column(0).CodeAt(0), 1);
}

TEST(TableTest, CategoricalCodeOutOfRange) {
  Table table(MakeTestSchema());
  Status st = table.AppendRow({int64_t{2}, int64_t{40}, 3.0});
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TableTest, UnknownCategoryFails) {
  Table table(MakeTestSchema());
  Status st = table.AppendRow({std::string("Robot"), int64_t{40}, 3.0});
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(TableTest, WrongArityFails) {
  Table table(MakeTestSchema());
  Status st = table.AppendRow({std::string("Male"), int64_t{40}});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, FailedAppendLeavesTableUnchanged) {
  Table table(MakeTestSchema());
  ASSERT_TRUE(table.AppendRow({std::string("Male"), int64_t{30}, 4.5}).ok());
  // Third cell is a bad categorical for column 0 only after the first two
  // columns would have been appended — conversion must be all-or-nothing.
  Status st = table.AppendRow(
      {std::string("Male"), int64_t{30}, std::string("junk")});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.column(0).size(), 1u);
  EXPECT_EQ(table.column(1).size(), 1u);
  EXPECT_EQ(table.column(2).size(), 1u);
}

TEST(TableTest, StringCellsParseToNumerics) {
  Table table(MakeTestSchema());
  ASSERT_TRUE(table
                  .AppendRow({std::string("Female"), std::string("64"),
                              std::string("1.25")})
                  .ok());
  EXPECT_EQ(table.column(1).IntAt(0), 64);
  EXPECT_DOUBLE_EQ(table.column(2).RealAt(0), 1.25);
}

TEST(TableTest, IntCellAcceptedForRealColumn) {
  Table table(MakeTestSchema());
  ASSERT_TRUE(table.AppendRow({std::string("Male"), int64_t{20}, int64_t{4}})
                  .ok());
  EXPECT_DOUBLE_EQ(table.column(2).RealAt(0), 4.0);
}

TEST(TableTest, RealCellRejectedForIntColumn) {
  Table table(MakeTestSchema());
  Status st = table.AppendRow({std::string("Male"), 20.5, 4.0});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, NonFiniteRealsRejected) {
  Table table(MakeTestSchema());
  EXPECT_EQ(table
                .AppendRow({std::string("Male"), int64_t{30},
                            std::numeric_limits<double>::quiet_NaN()})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(table
                   .AppendRow({std::string("Male"), int64_t{30},
                               std::numeric_limits<double>::infinity()})
                   .ok());
  EXPECT_FALSE(
      table.AppendRow({std::string("Male"), int64_t{30}, std::string("nan")})
          .ok());
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TableTest, GroupIndexUsesBuckets) {
  Table table(MakeTestSchema());
  // Age [18,80] with 5 buckets of width 12.4: 18->0, 30->0, 31->1, 80->4.
  ASSERT_TRUE(table.AppendRow({std::string("Male"), int64_t{18}, 0.0}).ok());
  ASSERT_TRUE(table.AppendRow({std::string("Male"), int64_t{30}, 0.0}).ok());
  ASSERT_TRUE(table.AppendRow({std::string("Male"), int64_t{31}, 0.0}).ok());
  ASSERT_TRUE(table.AppendRow({std::string("Female"), int64_t{80}, 0.0}).ok());
  EXPECT_EQ(table.GroupIndex(0, 1), 0);
  EXPECT_EQ(table.GroupIndex(1, 1), 0);
  EXPECT_EQ(table.GroupIndex(2, 1), 1);
  EXPECT_EQ(table.GroupIndex(3, 1), 4);
  EXPECT_EQ(table.GroupIndex(0, 0), 0);
  EXPECT_EQ(table.GroupIndex(3, 0), 1);
}

TEST(TableTest, ValueAsDouble) {
  Table table(MakeTestSchema());
  ASSERT_TRUE(table.AppendRow({std::string("Female"), int64_t{44}, 3.5}).ok());
  EXPECT_DOUBLE_EQ(table.ValueAsDouble(0, 0), 1.0);  // Category code.
  EXPECT_DOUBLE_EQ(table.ValueAsDouble(0, 1), 44.0);
  EXPECT_DOUBLE_EQ(table.ValueAsDouble(0, 2), 3.5);
}

TEST(TableTest, CellToString) {
  Table table(MakeTestSchema());
  ASSERT_TRUE(table.AppendRow({std::string("Female"), int64_t{44}, 3.5}).ok());
  EXPECT_EQ(table.CellToString(0, 0), "Female");
  EXPECT_EQ(table.CellToString(0, 1), "44");
  EXPECT_EQ(table.CellToString(0, 2), "3.5000");
}

TEST(TableTest, ReserveDoesNotChangeContents) {
  Table table(MakeTestSchema());
  table.Reserve(100);
  EXPECT_EQ(table.num_rows(), 0u);
  ASSERT_TRUE(table.AppendRow({std::string("Male"), int64_t{20}, 1.0}).ok());
  EXPECT_EQ(table.num_rows(), 1u);
}

}  // namespace
}  // namespace fairrank
