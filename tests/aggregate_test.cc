#include "fairness/aggregate.h"

#include <gtest/gtest.h>

#include "fairness/auditor.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

std::vector<AttributeSpec> ProtectedSpecs(const Table& table) {
  std::vector<AttributeSpec> specs;
  for (size_t i : table.schema().ProtectedIndices()) {
    specs.push_back(table.schema().attribute(i));
  }
  return specs;
}

CellStore FillStore(const Table& table, const std::vector<double>& scores) {
  CellStore store(ProtectedSpecs(table), 10, 0.0, 1.0);
  for (size_t row = 0; row < table.num_rows(); ++row) {
    EXPECT_TRUE(store.AddRow(table, row, scores[row]).ok());
  }
  return store;
}

TEST(CellStoreTest, AddValidation) {
  Schema schema = MakeToySchema().value();
  std::vector<AttributeSpec> specs = {schema.attribute(0),
                                      schema.attribute(1)};
  CellStore store(specs, 10, 0.0, 1.0);
  EXPECT_TRUE(store.Add({0, 1}, 0.5).ok());
  EXPECT_FALSE(store.Add({0}, 0.5).ok());          // Wrong arity.
  EXPECT_FALSE(store.Add({0, 5}, 0.5).ok());       // Group out of range.
  EXPECT_FALSE(store.Add({-1, 0}, 0.5).ok());      // Negative group.
  EXPECT_EQ(store.num_observations(), 1u);
  EXPECT_EQ(store.num_cells(), 1u);
}

TEST(CellStoreTest, CellsDeduplicate) {
  Schema schema = MakeToySchema().value();
  CellStore store({schema.attribute(0), schema.attribute(1)}, 10, 0.0, 1.0);
  ASSERT_TRUE(store.Add({0, 0}, 0.1).ok());
  ASSERT_TRUE(store.Add({0, 0}, 0.2).ok());
  ASSERT_TRUE(store.Add({1, 0}, 0.3).ok());
  EXPECT_EQ(store.num_cells(), 2u);
  EXPECT_EQ(store.num_observations(), 3u);
}

TEST(AggregateAuditTest, EmptyStoreFails) {
  Schema schema = MakeToySchema().value();
  CellStore store({schema.attribute(0)}, 10, 0.0, 1.0);
  EXPECT_EQ(AuditAggregateBalanced(store).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AggregateAuditTest, MatchesTableBasedBalancedAudit) {
  // The headline property: auditing from per-cell aggregates must be
  // *identical* to the table-based balanced audit with the same bins —
  // same unfairness, same number of partitions, same attributes.
  GeneratorOptions gen;
  gen.num_workers = 500;
  gen.seed = 77;
  Table workers = GenerateWorkers(gen).value();
  for (auto make_fn : {+[](uint64_t s) { return MakeF6(s); },
                       +[](uint64_t s) { return MakeF7(s); }}) {
    auto fn = make_fn(9);
    std::vector<double> scores = fn->ScoreAll(workers).value();

    FairnessAuditor auditor(&workers);
    AuditOptions options;
    options.algorithm = "balanced";
    AuditResult table_audit = auditor.Audit(*fn, options).value();

    CellStore store = FillStore(workers, scores);
    AggregateAuditResult aggregate =
        AuditAggregateBalanced(store).value();

    EXPECT_NEAR(aggregate.unfairness, table_audit.unfairness, 1e-9)
        << fn->Name();
    EXPECT_EQ(aggregate.partitions.size(), table_audit.partitions.size())
        << fn->Name();
    EXPECT_EQ(aggregate.attributes_used.size(),
              table_audit.attributes_used.size())
        << fn->Name();
  }
}

TEST(AggregateAuditTest, MatchesOnRandomFunctionToo) {
  GeneratorOptions gen;
  gen.num_workers = 300;
  gen.seed = 31;
  Table workers = GenerateWorkers(gen).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  std::vector<double> scores = fn->ScoreAll(workers).value();

  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "balanced";
  AuditResult table_audit = auditor.Audit(*fn, options).value();

  CellStore store = FillStore(workers, scores);
  AggregateAuditResult aggregate = AuditAggregateBalanced(store).value();
  EXPECT_NEAR(aggregate.unfairness, table_audit.unfairness, 1e-9);
  size_t total = 0;
  for (const AggregatePartition& p : aggregate.partitions) total += p.size;
  EXPECT_EQ(total, workers.num_rows());
}

TEST(AggregateAuditTest, F6RecoverGenderWithLabels) {
  GeneratorOptions gen;
  gen.num_workers = 400;
  gen.seed = 5;
  Table workers = GenerateWorkers(gen).value();
  auto f6 = MakeF6(11);
  std::vector<double> scores = f6->ScoreAll(workers).value();
  CellStore store = FillStore(workers, scores);
  AggregateAuditResult aggregate = AuditAggregateBalanced(store).value();
  ASSERT_EQ(aggregate.partitions.size(), 2u);
  EXPECT_NEAR(aggregate.unfairness, 0.8, 0.05);
  std::set<std::string> labels;
  for (const AggregatePartition& p : aggregate.partitions) {
    labels.insert(AggregatePartitionLabel(store.specs(), p));
  }
  EXPECT_TRUE(labels.count("Gender=Male"));
  EXPECT_TRUE(labels.count("Gender=Female"));
}

TEST(AggregateAuditTest, DivergenceOptionRespected) {
  GeneratorOptions gen;
  gen.num_workers = 200;
  gen.seed = 3;
  Table workers = GenerateWorkers(gen).value();
  auto f6 = MakeF6(2);
  std::vector<double> scores = f6->ScoreAll(workers).value();
  CellStore store = FillStore(workers, scores);
  double emd = AuditAggregateBalanced(store, "emd").value().unfairness;
  double ks = AuditAggregateBalanced(store, "ks").value().unfairness;
  EXPECT_NEAR(ks, 1.0, 1e-9);  // f6 fully separates genders.
  EXPECT_NEAR(emd, 0.8, 0.05);
  EXPECT_FALSE(AuditAggregateBalanced(store, "bogus").ok());
}

TEST(AggregateAuditTest, CompressionIsMassive) {
  // 5000 workers collapse into at most prod(num_groups) cells.
  GeneratorOptions gen;
  gen.num_workers = 5000;
  gen.seed = 8;
  Table workers = GenerateWorkers(gen).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  std::vector<double> scores = fn->ScoreAll(workers).value();
  CellStore store = FillStore(workers, scores);
  EXPECT_EQ(store.num_observations(), 5000u);
  EXPECT_LE(store.num_cells(), 2u * 3u * 5u * 3u * 4u * 5u);
}

}  // namespace
}  // namespace fairrank
