#include "fairness/aggregate.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/deadline.h"
#include "common/fault_injection.h"
#include "fairness/auditor.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

std::vector<AttributeSpec> ProtectedSpecs(const Table& table) {
  std::vector<AttributeSpec> specs;
  for (size_t i : table.schema().ProtectedIndices()) {
    specs.push_back(table.schema().attribute(i));
  }
  return specs;
}

CellStore FillStore(const Table& table, const std::vector<double>& scores) {
  CellStore store(ProtectedSpecs(table), 10, 0.0, 1.0);
  for (size_t row = 0; row < table.num_rows(); ++row) {
    EXPECT_TRUE(store.AddRow(table, row, scores[row]).ok());
  }
  return store;
}

TEST(CellStoreTest, AddValidation) {
  Schema schema = MakeToySchema().value();
  std::vector<AttributeSpec> specs = {schema.attribute(0),
                                      schema.attribute(1)};
  CellStore store(specs, 10, 0.0, 1.0);
  EXPECT_TRUE(store.Add({0, 1}, 0.5).ok());
  EXPECT_FALSE(store.Add({0}, 0.5).ok());          // Wrong arity.
  EXPECT_FALSE(store.Add({0, 5}, 0.5).ok());       // Group out of range.
  EXPECT_FALSE(store.Add({-1, 0}, 0.5).ok());      // Negative group.
  EXPECT_EQ(store.num_observations(), 1u);
  EXPECT_EQ(store.num_cells(), 1u);
}

TEST(CellStoreTest, MakeValidatesConfiguration) {
  Schema schema = MakeToySchema().value();
  std::vector<AttributeSpec> specs = {schema.attribute(0)};
  EXPECT_TRUE(CellStore::Make(specs, 10, 0.0, 1.0).ok());
  // Degenerate bin configs used to flow through the constructor unchecked
  // and every Add built broken Histograms.
  EXPECT_EQ(CellStore::Make(specs, 0, 0.0, 1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CellStore::Make(specs, -3, 0.0, 1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CellStore::Make(specs, 10, 1.0, 1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CellStore::Make(specs, 10, 0.7, 0.2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CellStore::Make({}, 10, 0.0, 1.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CellStoreTest, MergeFromRejectsIncompatibleStores) {
  Schema schema = MakeToySchema().value();
  std::vector<AttributeSpec> specs = {schema.attribute(0),
                                      schema.attribute(1)};
  CellStore store = CellStore::Make(specs, 10, 0.0, 1.0).value();
  ASSERT_TRUE(store.Add({0, 0}, 0.5).ok());

  CellStore other_bins = CellStore::Make(specs, 5, 0.0, 1.0).value();
  ASSERT_TRUE(other_bins.Add({0, 0}, 0.5).ok());
  Status bins = store.MergeFrom(other_bins);
  EXPECT_EQ(bins.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bins.message().find("bins"), std::string::npos);

  CellStore other_range = CellStore::Make(specs, 10, 0.0, 2.0).value();
  EXPECT_EQ(store.MergeFrom(other_range).code(),
            StatusCode::kInvalidArgument);

  CellStore other_specs =
      CellStore::Make({schema.attribute(0)}, 10, 0.0, 1.0).value();
  EXPECT_EQ(store.MergeFrom(other_specs).code(),
            StatusCode::kInvalidArgument);

  // The store is untouched by the failed merges.
  EXPECT_EQ(store.num_observations(), 1u);
}

TEST(CellStoreTest, MergeCellRejectsMismatchedHistogram) {
  Schema schema = MakeToySchema().value();
  CellStore store =
      CellStore::Make({schema.attribute(0)}, 10, 0.0, 1.0).value();
  Histogram wrong_shape(5, 0.0, 1.0);
  wrong_shape.Add(0.5);
  Status status = store.MergeCell({0}, wrong_shape, 1);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The enriched MergeWith message names both bin configurations.
  EXPECT_NE(status.message().find("10 bins"), std::string::npos);
  EXPECT_NE(status.message().find("5 bins"), std::string::npos);
  EXPECT_EQ(store.num_observations(), 0u);
}

TEST(CellStoreTest, MergeFromCombinesCells) {
  GeneratorOptions gen;
  gen.num_workers = 400;
  gen.seed = 21;
  Table workers = GenerateWorkers(gen).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  std::vector<double> scores = fn->ScoreAll(workers).value();

  CellStore whole = FillStore(workers, scores);
  CellStore first =
      CellStore::Make(ProtectedSpecs(workers), 10, 0.0, 1.0).value();
  CellStore second =
      CellStore::Make(ProtectedSpecs(workers), 10, 0.0, 1.0).value();
  for (size_t row = 0; row < workers.num_rows(); ++row) {
    CellStore& half = (row < workers.num_rows() / 2) ? first : second;
    ASSERT_TRUE(half.AddRow(workers, row, scores[row]).ok());
  }
  ASSERT_TRUE(first.MergeFrom(second).ok());

  ASSERT_EQ(first.num_cells(), whole.num_cells());
  ASSERT_EQ(first.num_observations(), whole.num_observations());
  auto merged_it = first.cells().begin();
  for (const auto& [key, cell] : whole.cells()) {
    ASSERT_EQ(merged_it->first, key);
    EXPECT_EQ(merged_it->second.count, cell.count);
    // Bit-identical bin counts: unit weights, integer sums.
    for (int b = 0; b < cell.histogram.num_bins(); ++b) {
      EXPECT_EQ(merged_it->second.histogram.counts()[b],
                cell.histogram.counts()[b]);
    }
    ++merged_it;
  }
}

TEST(CellStoreTest, CellsDeduplicate) {
  Schema schema = MakeToySchema().value();
  CellStore store({schema.attribute(0), schema.attribute(1)}, 10, 0.0, 1.0);
  ASSERT_TRUE(store.Add({0, 0}, 0.1).ok());
  ASSERT_TRUE(store.Add({0, 0}, 0.2).ok());
  ASSERT_TRUE(store.Add({1, 0}, 0.3).ok());
  EXPECT_EQ(store.num_cells(), 2u);
  EXPECT_EQ(store.num_observations(), 3u);
}

TEST(BuildCellStoreParallelTest, ShardedIngestMatchesSerialBitIdentical) {
  // The acceptance property: sharded parallel ingest must be *bit-identical*
  // to serial AddRow ingest — same cells, same exact counts, identical bin
  // doubles — and therefore produce an identical audit (all observation
  // weights are 1.0, so bin-wise sums are exact integers in any merge
  // order).
  GeneratorOptions gen;
  gen.num_workers = 2000;
  gen.seed = 77;
  Table workers = GenerateWorkers(gen).value();
  auto f6 = MakeF6(9);
  std::vector<double> scores = f6->ScoreAll(workers).value();

  CellStore serial = FillStore(workers, scores);
  AggregateAuditResult serial_audit = AuditAggregateBalanced(serial).value();

  for (int threads : {1, 2, 8}) {
    CellStoreIngestOptions options;
    options.num_threads = threads;
    CellStore sharded =
        BuildCellStoreParallel(workers, scores, options).value();

    ASSERT_EQ(sharded.num_cells(), serial.num_cells()) << threads;
    ASSERT_EQ(sharded.num_observations(), serial.num_observations())
        << threads;
    auto sharded_it = sharded.cells().begin();
    for (const auto& [key, cell] : serial.cells()) {
      ASSERT_EQ(sharded_it->first, key) << threads;
      EXPECT_EQ(sharded_it->second.count, cell.count) << threads;
      EXPECT_EQ(sharded_it->second.histogram.clamped_count(),
                cell.histogram.clamped_count())
          << threads;
      for (int b = 0; b < cell.histogram.num_bins(); ++b) {
        EXPECT_EQ(sharded_it->second.histogram.counts()[b],
                  cell.histogram.counts()[b])
            << threads << " bin " << b;
      }
      ++sharded_it;
    }

    AggregateAuditResult audit = AuditAggregateBalanced(sharded).value();
    EXPECT_EQ(audit.unfairness, serial_audit.unfairness) << threads;
    EXPECT_EQ(audit.partitions.size(), serial_audit.partitions.size())
        << threads;
    EXPECT_EQ(audit.attributes_used, serial_audit.attributes_used) << threads;
    for (size_t i = 0; i < audit.partitions.size(); ++i) {
      EXPECT_EQ(audit.partitions[i].size, serial_audit.partitions[i].size)
          << threads << " partition " << i;
    }
  }
}

TEST(BuildCellStoreParallelTest, ValidatesInput) {
  GeneratorOptions gen;
  gen.num_workers = 50;
  gen.seed = 4;
  Table workers = GenerateWorkers(gen).value();
  std::vector<double> too_few(10, 0.5);
  EXPECT_EQ(BuildCellStoreParallel(workers, too_few).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<double> scores(workers.num_rows(), 0.5);
  CellStoreIngestOptions bad_bins;
  bad_bins.num_bins = 0;
  EXPECT_EQ(
      BuildCellStoreParallel(workers, scores, bad_bins).status().code(),
      StatusCode::kInvalidArgument);
  CellStoreIngestOptions bad_range;
  bad_range.score_lo = 1.0;
  bad_range.score_hi = 0.0;
  EXPECT_EQ(
      BuildCellStoreParallel(workers, scores, bad_range).status().code(),
      StatusCode::kInvalidArgument);
  CellStoreIngestOptions bad_attr;
  bad_attr.protected_attributes = {"NoSuchColumn"};
  EXPECT_EQ(
      BuildCellStoreParallel(workers, scores, bad_attr).status().code(),
      StatusCode::kNotFound);
}

TEST(BuildCellStoreParallelTest, RestrictsToNamedAttributes) {
  GeneratorOptions gen;
  gen.num_workers = 300;
  gen.seed = 12;
  Table workers = GenerateWorkers(gen).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  std::vector<double> scores = fn->ScoreAll(workers).value();
  CellStoreIngestOptions options;
  options.protected_attributes = {"Gender"};
  options.num_threads = 2;
  CellStore store = BuildCellStoreParallel(workers, scores, options).value();
  ASSERT_EQ(store.specs().size(), 1u);
  EXPECT_EQ(store.specs()[0].name(), "Gender");
  EXPECT_LE(store.num_cells(),
            static_cast<size_t>(store.specs()[0].num_groups()));
  EXPECT_EQ(store.num_observations(), workers.num_rows());
}

TEST(BuildCellStoreParallelTest, FaultedShardSurfacesOneErrorCleanly) {
  // A shard that throws (fault injection standing in for a production
  // failure) must surface exactly one structured error without poisoning
  // sibling shards — and the very next build must succeed untainted.
  GeneratorOptions gen;
  gen.num_workers = 600;
  gen.seed = 33;
  Table workers = GenerateWorkers(gen).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  std::vector<double> scores = fn->ScoreAll(workers).value();

  CellStoreIngestOptions options;
  options.num_threads = 4;
  {
    fault::FaultPlan plan;
    plan.throw_in_chunk = 2;  // Shard 2 of 4 throws at its start.
    fault::ScopedFaultPlan armed(plan);
    StatusOr<CellStore> store =
        BuildCellStoreParallel(workers, scores, options);
    ASSERT_FALSE(store.ok());
    EXPECT_EQ(store.status().code(), StatusCode::kInternal);
    EXPECT_NE(store.status().ToString().find("ingest shard failed"),
              std::string::npos);
  }
  // Disarmed: the same inputs build cleanly and match serial ingest.
  CellStore rebuilt = BuildCellStoreParallel(workers, scores, options).value();
  CellStore serial = FillStore(workers, scores);
  EXPECT_EQ(rebuilt.num_observations(), serial.num_observations());
  EXPECT_EQ(rebuilt.num_cells(), serial.num_cells());
  EXPECT_EQ(AuditAggregateBalanced(rebuilt).value().unfairness,
            AuditAggregateBalanced(serial).value().unfairness);
}

TEST(BuildCellStoreParallelTest, HonorsDeadlineAndMemoryBudget) {
  GeneratorOptions gen;
  gen.num_workers = 200;
  gen.seed = 6;
  Table workers = GenerateWorkers(gen).value();
  std::vector<double> scores(workers.num_rows(), 0.5);

  // Already-expired deadline: the shard's first checkpoint refuses.
  ExecutionContext expired(Deadline::AfterMillis(0), CancellationToken(),
                          nullptr);
  CellStoreIngestOptions options;
  options.num_threads = 2;
  EXPECT_EQ(BuildCellStoreParallel(workers, scores, options, expired)
                .status()
                .code(),
            StatusCode::kDeadlineExceeded);

  // A 1-byte memory budget trips the shard's up-front array charge.
  ResourceBudget budget(0, 1);
  ExecutionContext strapped(Deadline(), CancellationToken(), &budget);
  EXPECT_EQ(BuildCellStoreParallel(workers, scores, options, strapped)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

TEST(AggregateAuditTest, EmptyStoreFails) {
  Schema schema = MakeToySchema().value();
  CellStore store({schema.attribute(0)}, 10, 0.0, 1.0);
  EXPECT_EQ(AuditAggregateBalanced(store).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AggregateAuditTest, MatchesTableBasedBalancedAudit) {
  // The headline property: auditing from per-cell aggregates must be
  // *identical* to the table-based balanced audit with the same bins —
  // same unfairness, same number of partitions, same attributes.
  GeneratorOptions gen;
  gen.num_workers = 500;
  gen.seed = 77;
  Table workers = GenerateWorkers(gen).value();
  for (auto make_fn : {+[](uint64_t s) { return MakeF6(s); },
                       +[](uint64_t s) { return MakeF7(s); }}) {
    auto fn = make_fn(9);
    std::vector<double> scores = fn->ScoreAll(workers).value();

    FairnessAuditor auditor(&workers);
    AuditOptions options;
    options.algorithm = "balanced";
    AuditResult table_audit = auditor.Audit(*fn, options).value();

    CellStore store = FillStore(workers, scores);
    AggregateAuditResult aggregate =
        AuditAggregateBalanced(store).value();

    EXPECT_NEAR(aggregate.unfairness, table_audit.unfairness, 1e-9)
        << fn->Name();
    EXPECT_EQ(aggregate.partitions.size(), table_audit.partitions.size())
        << fn->Name();
    EXPECT_EQ(aggregate.attributes_used.size(),
              table_audit.attributes_used.size())
        << fn->Name();
  }
}

TEST(AggregateAuditTest, MatchesOnRandomFunctionToo) {
  GeneratorOptions gen;
  gen.num_workers = 300;
  gen.seed = 31;
  Table workers = GenerateWorkers(gen).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  std::vector<double> scores = fn->ScoreAll(workers).value();

  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "balanced";
  AuditResult table_audit = auditor.Audit(*fn, options).value();

  CellStore store = FillStore(workers, scores);
  AggregateAuditResult aggregate = AuditAggregateBalanced(store).value();
  EXPECT_NEAR(aggregate.unfairness, table_audit.unfairness, 1e-9);
  size_t total = 0;
  for (const AggregatePartition& p : aggregate.partitions) total += p.size;
  EXPECT_EQ(total, workers.num_rows());
}

TEST(AggregateAuditTest, F6RecoverGenderWithLabels) {
  GeneratorOptions gen;
  gen.num_workers = 400;
  gen.seed = 5;
  Table workers = GenerateWorkers(gen).value();
  auto f6 = MakeF6(11);
  std::vector<double> scores = f6->ScoreAll(workers).value();
  CellStore store = FillStore(workers, scores);
  AggregateAuditResult aggregate = AuditAggregateBalanced(store).value();
  ASSERT_EQ(aggregate.partitions.size(), 2u);
  EXPECT_NEAR(aggregate.unfairness, 0.8, 0.05);
  std::set<std::string> labels;
  for (const AggregatePartition& p : aggregate.partitions) {
    labels.insert(AggregatePartitionLabel(store.specs(), p));
  }
  EXPECT_TRUE(labels.count("Gender=Male"));
  EXPECT_TRUE(labels.count("Gender=Female"));
}

TEST(AggregateAuditTest, DivergenceOptionRespected) {
  GeneratorOptions gen;
  gen.num_workers = 200;
  gen.seed = 3;
  Table workers = GenerateWorkers(gen).value();
  auto f6 = MakeF6(2);
  std::vector<double> scores = f6->ScoreAll(workers).value();
  CellStore store = FillStore(workers, scores);
  double emd = AuditAggregateBalanced(store, "emd").value().unfairness;
  double ks = AuditAggregateBalanced(store, "ks").value().unfairness;
  EXPECT_NEAR(ks, 1.0, 1e-9);  // f6 fully separates genders.
  EXPECT_NEAR(emd, 0.8, 0.05);
  EXPECT_FALSE(AuditAggregateBalanced(store, "bogus").ok());
}

TEST(AggregateAuditTest, PartitionSizesStayExactUnderClampedScores) {
  // Out-of-range scores get clamped into edge bins; partition sizes used to
  // be read off histogram mass (aggregate.cc:185 before the fix), which
  // future sketch mass would desync from the true population. Sizes must
  // come from exact per-cell counts and cover every observation.
  Schema schema = MakeToySchema().value();
  CellStore store =
      CellStore::Make({schema.attribute(0)}, 10, 0.0, 1.0).value();
  ASSERT_TRUE(store.Add({0}, 0.2).ok());
  ASSERT_TRUE(store.Add({0}, 1.7).ok());   // Clamped into the top bin.
  ASSERT_TRUE(store.Add({1}, -0.4).ok());  // Clamped into the bottom bin.
  ASSERT_TRUE(store.Add({1}, 0.9).ok());
  ASSERT_EQ(store.num_observations(), 4u);

  AggregateAuditResult result = AuditAggregateBalanced(store).value();
  size_t covered = 0;
  for (const AggregatePartition& p : result.partitions) covered += p.size;
  EXPECT_EQ(covered, store.num_observations());
  for (const AggregatePartition& p : result.partitions) {
    EXPECT_EQ(p.size, 2u);
  }
}

TEST(AggregateAuditTest, CompressionIsMassive) {
  // 5000 workers collapse into at most prod(num_groups) cells.
  GeneratorOptions gen;
  gen.num_workers = 5000;
  gen.seed = 8;
  Table workers = GenerateWorkers(gen).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  std::vector<double> scores = fn->ScoreAll(workers).value();
  CellStore store = FillStore(workers, scores);
  EXPECT_EQ(store.num_observations(), 5000u);
  EXPECT_LE(store.num_cells(), 2u * 3u * 5u * 3u * 4u * 5u);
}

}  // namespace
}  // namespace fairrank
