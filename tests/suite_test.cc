#include "fairness/suite.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/fault_injection.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"

namespace fairrank {
namespace {

Table Workers(size_t n = 150) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = 8;
  return GenerateWorkers(options).value();
}

TEST(AuditSuiteTest, DefaultGridShape) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  auto f4 = MakeAlphaFunction("f4", 1.0);
  auto result = suite.Run({f1.get(), f4.get()});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->algorithms, PaperAlgorithmNames());
  EXPECT_EQ(result->functions.size(), 2u);
  ASSERT_EQ(result->cells.size(), 5u);
  for (const auto& row : result->cells) {
    ASSERT_EQ(row.size(), 2u);
    for (const SuiteCell& cell : row) {
      EXPECT_GE(cell.unfairness, 0.0);
      EXPECT_GE(cell.seconds, 0.0);
      EXPECT_GE(cell.num_partitions, 1u);
    }
  }
}

TEST(AuditSuiteTest, CustomAlgorithms) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  auto f6 = MakeF6(3);
  SuiteOptions options;
  options.algorithms = {"balanced", "beam"};
  auto result = suite.Run({f6.get()}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cells.size(), 2u);
  EXPECT_EQ(result->cells[0][0].algorithm, "balanced");
  EXPECT_EQ(result->cells[1][0].algorithm, "beam");
}

TEST(AuditSuiteTest, RestrictedAttributesFlowThrough) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  auto f7 = MakeF7(3);
  SuiteOptions options;
  options.algorithms = {"all-attributes"};
  options.protected_attributes = {"Gender"};
  auto result = suite.Run({f7.get()}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cells[0][0].num_partitions, 2u);
}

TEST(AuditSuiteTest, EmptyFunctionsFails) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  EXPECT_FALSE(suite.Run({}).ok());
}

TEST(AuditSuiteTest, NullFunctionFails) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  EXPECT_FALSE(suite.Run({nullptr}).ok());
}

TEST(AuditSuiteTest, UnknownAlgorithmFails) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  SuiteOptions options;
  options.algorithms = {"bogus"};
  EXPECT_EQ(suite.Run({f1.get()}, options).status().code(),
            StatusCode::kNotFound);
}

TEST(AuditSuiteTest, FormattersRenderGrid) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  auto f6 = MakeF6(3);
  SuiteOptions options;
  options.algorithms = {"balanced", "unbalanced"};
  SuiteResult result = suite.Run({f1.get(), f6.get()}, options).value();
  std::string unfairness = FormatSuiteUnfairness(result);
  EXPECT_NE(unfairness.find("balanced"), std::string::npos);
  EXPECT_NE(unfairness.find("f6"), std::string::npos);
  std::string runtime = FormatSuiteRuntime(result);
  EXPECT_NE(runtime.find("Algorithm"), std::string::npos);
  std::string csv = FormatSuiteCsv(result);
  // Header + 4 cells.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
}

// Regression: a failing cell must degrade that cell alone, never abort the
// grid (the scheduler used to FAIRRANK_ASSIGN_OR_RETURN out of the loop on
// the first failed audit, dropping every other cell's finished work).
TEST(AuditSuiteTest, FailedCellDoesNotAbortGrid) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  SuiteOptions options;
  options.algorithms = {"balanced", "unbalanced"};
  options.num_threads = 1;  // Deterministic cell order: the fault is one-shot.
  fault::FaultPlan plan;
  plan.fail_divergence_eval = 1;  // First divergence computation fails.
  fault::ScopedFaultPlan armed(plan);
  auto result = suite.Run({f1.get()}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->cells[0][0].error.ok());
  EXPECT_TRUE(result->cells[1][0].error.ok());
  EXPECT_GE(result->cells[1][0].num_partitions, 1u);
  EXPECT_EQ(result->summary.cells_failed, 1u);
  EXPECT_NE(FormatSuiteUnfairness(*result).find("ERR"), std::string::npos);
  EXPECT_NE(FormatSuiteCsv(*result).find("Internal"), std::string::npos);
}

// A deadline expiring mid-grid truncates the cells it catches; no cell goes
// missing and none turns into an error.
TEST(AuditSuiteTest, DeadlineExpiryMidGridTruncatesLateCells) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  auto f4 = MakeAlphaFunction("f4", 1.0);
  SuiteOptions options;
  options.algorithms = {"balanced", "unbalanced", "all-attributes"};
  options.limits.deadline = Deadline::AfterMillis(0);  // Already expired.
  auto result = suite.Run({f1.get(), f4.get()}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& row : result->cells) {
    for (const SuiteCell& cell : row) {
      EXPECT_TRUE(cell.error.ok()) << cell.error.ToString();
      EXPECT_TRUE(cell.truncated);
      EXPECT_EQ(cell.exhaustion_reason, ExhaustionReason::kDeadline);
      EXPECT_GE(cell.num_partitions, 1u);  // Best-so-far, not missing.
    }
  }
  EXPECT_EQ(result->summary.cells_truncated, 6u);
}

// kTotal: one hierarchical budget bounds the *aggregate* node work of the
// grid — the whole point of the suite-level budget layer. Before it, a
// 10-cell grid with --max-nodes=K could spend 10*K.
TEST(AuditSuiteTest, HierarchicalNodeBudgetCapsAggregate) {
  Table workers = Workers(300);
  AuditSuite suite(&workers);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  auto f6 = MakeF6(3);
  constexpr uint64_t kMaxNodes = 40;
  for (int threads : {1, 4}) {
    SuiteOptions options;
    options.num_threads = threads;
    options.budget_mode = SuiteBudgetMode::kTotal;
    options.limits.max_nodes = kMaxNodes;
    auto result = suite.Run({f1.get(), f6.get()}, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    uint64_t total_nodes = 0;
    size_t node_truncated = 0;
    for (const auto& row : result->cells) {
      for (const SuiteCell& cell : row) {
        EXPECT_TRUE(cell.error.ok()) << cell.error.ToString();
        total_nodes += cell.nodes_visited;
        if (cell.exhaustion_reason == ExhaustionReason::kNodeBudget) {
          ++node_truncated;
        }
      }
    }
    EXPECT_LE(total_nodes, kMaxNodes) << "threads=" << threads;
    EXPECT_EQ(result->summary.total_nodes, total_nodes);
    EXPECT_GT(node_truncated, 0u) << "threads=" << threads;
  }
}

// kPerCell keeps the legacy semantics: every cell gets the full allowance.
TEST(AuditSuiteTest, PerCellBudgetModeBoundsEachCell) {
  Table workers = Workers(300);
  AuditSuite suite(&workers);
  auto f6 = MakeF6(3);
  constexpr uint64_t kMaxNodes = 40;
  SuiteOptions options;
  options.budget_mode = SuiteBudgetMode::kPerCell;
  options.limits.max_nodes = kMaxNodes;
  auto result = suite.Run({f6.get()}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& row : result->cells) {
    for (const SuiteCell& cell : row) {
      EXPECT_TRUE(cell.error.ok()) << cell.error.ToString();
      EXPECT_LE(cell.nodes_visited, kMaxNodes);
    }
  }
}

// The acceptance bar of the parallel scheduler: without budgets every
// algorithm here is deterministic, so the grid must be bit-identical across
// thread counts (shared column caches store exactly the values the uncached
// path would compute).
TEST(AuditSuiteTest, ParallelMatchesSerialBitIdentical) {
  Table workers = Workers(200);
  AuditSuite suite(&workers);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  auto f6 = MakeF6(3);
  SuiteOptions serial;
  serial.seed = 11;
  serial.num_threads = 1;
  SuiteResult base = suite.Run({f1.get(), f6.get()}, serial).value();
  SuiteOptions parallel = serial;
  parallel.num_threads = 4;
  SuiteResult par = suite.Run({f1.get(), f6.get()}, parallel).value();
  ASSERT_EQ(base.cells.size(), par.cells.size());
  for (size_t a = 0; a < base.cells.size(); ++a) {
    for (size_t f = 0; f < base.cells[a].size(); ++f) {
      const SuiteCell& lhs = base.cells[a][f];
      const SuiteCell& rhs = par.cells[a][f];
      EXPECT_EQ(lhs.unfairness, rhs.unfairness) << lhs.algorithm;
      EXPECT_EQ(lhs.num_partitions, rhs.num_partitions) << lhs.algorithm;
      EXPECT_EQ(lhs.attributes_used, rhs.attributes_used) << lhs.algorithm;
      EXPECT_EQ(lhs.nodes_visited, rhs.nodes_visited) << lhs.algorithm;
    }
  }
}

// RFC-4180: a function name carrying the CSV metacharacters must come back
// quoted with doubled quotes, leaving the row parseable.
TEST(AuditSuiteTest, CsvEscapesHostileFunctionNames) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  auto hostile = MakeAlphaFunction("f,1\"x", 0.5);
  SuiteOptions options;
  options.algorithms = {"balanced"};
  SuiteResult result = suite.Run({hostile.get()}, options).value();
  std::string csv = FormatSuiteCsv(result);
  EXPECT_NE(csv.find("\"f,1\"\"x\""), std::string::npos) << csv;
  // Header + 1 cell: the hostile name must not add rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(AuditSuiteTest, SummaryAndJsonReportTheGrid) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  SuiteOptions options;
  options.algorithms = {"balanced", "unbalanced"};
  SuiteResult result = suite.Run({f1.get()}, options).value();
  uint64_t nodes = 0;
  for (const auto& row : result.cells) {
    for (const SuiteCell& cell : row) nodes += cell.nodes_visited;
  }
  EXPECT_EQ(result.summary.total_nodes, nodes);
  EXPECT_GT(result.summary.wall_seconds, 0.0);
  EXPECT_EQ(result.summary.cells_failed, 0u);
  ASSERT_EQ(result.column_cache.size(), 1u);
  std::string summary = FormatSuiteSummary(result);
  EXPECT_NE(summary.find("2 cells"), std::string::npos) << summary;
  std::string summary_csv = FormatSuiteSummaryCsv(result);
  EXPECT_EQ(std::count(summary_csv.begin(), summary_csv.end(), '\n'), 2);
  std::string json = FormatSuiteJson(result);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\""), std::string::npos);
  EXPECT_NE(json.find("\"total_nodes\""), std::string::npos);
}

// The suite owns per-column cache sharing; a caller-supplied shared cache
// would be reused across score vectors, which is invalid by construction.
TEST(AuditSuiteTest, RejectsCallerSharedCache) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  SuiteOptions options;
  options.evaluator.shared_cache =
      std::make_shared<EvaluatorCache>(true, 0);
  EXPECT_EQ(suite.Run({f1.get()}, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AuditSuiteTest, BiasedColumnDominatesRandomColumn) {
  Table workers = Workers(300);
  AuditSuite suite(&workers);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  auto f6 = MakeF6(3);
  SuiteOptions options;
  options.algorithms = {"balanced"};
  SuiteResult result = suite.Run({f1.get(), f6.get()}, options).value();
  EXPECT_GT(result.cells[0][1].unfairness, result.cells[0][0].unfairness);
}

}  // namespace
}  // namespace fairrank
