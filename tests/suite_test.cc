#include "fairness/suite.h"

#include <gtest/gtest.h>

#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"

namespace fairrank {
namespace {

Table Workers(size_t n = 150) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = 8;
  return GenerateWorkers(options).value();
}

TEST(AuditSuiteTest, DefaultGridShape) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  auto f4 = MakeAlphaFunction("f4", 1.0);
  auto result = suite.Run({f1.get(), f4.get()});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->algorithms, PaperAlgorithmNames());
  EXPECT_EQ(result->functions.size(), 2u);
  ASSERT_EQ(result->cells.size(), 5u);
  for (const auto& row : result->cells) {
    ASSERT_EQ(row.size(), 2u);
    for (const SuiteCell& cell : row) {
      EXPECT_GE(cell.unfairness, 0.0);
      EXPECT_GE(cell.seconds, 0.0);
      EXPECT_GE(cell.num_partitions, 1u);
    }
  }
}

TEST(AuditSuiteTest, CustomAlgorithms) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  auto f6 = MakeF6(3);
  SuiteOptions options;
  options.algorithms = {"balanced", "beam"};
  auto result = suite.Run({f6.get()}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cells.size(), 2u);
  EXPECT_EQ(result->cells[0][0].algorithm, "balanced");
  EXPECT_EQ(result->cells[1][0].algorithm, "beam");
}

TEST(AuditSuiteTest, RestrictedAttributesFlowThrough) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  auto f7 = MakeF7(3);
  SuiteOptions options;
  options.algorithms = {"all-attributes"};
  options.protected_attributes = {"Gender"};
  auto result = suite.Run({f7.get()}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cells[0][0].num_partitions, 2u);
}

TEST(AuditSuiteTest, EmptyFunctionsFails) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  EXPECT_FALSE(suite.Run({}).ok());
}

TEST(AuditSuiteTest, NullFunctionFails) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  EXPECT_FALSE(suite.Run({nullptr}).ok());
}

TEST(AuditSuiteTest, UnknownAlgorithmFails) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  SuiteOptions options;
  options.algorithms = {"bogus"};
  EXPECT_EQ(suite.Run({f1.get()}, options).status().code(),
            StatusCode::kNotFound);
}

TEST(AuditSuiteTest, FormattersRenderGrid) {
  Table workers = Workers();
  AuditSuite suite(&workers);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  auto f6 = MakeF6(3);
  SuiteOptions options;
  options.algorithms = {"balanced", "unbalanced"};
  SuiteResult result = suite.Run({f1.get(), f6.get()}, options).value();
  std::string unfairness = FormatSuiteUnfairness(result);
  EXPECT_NE(unfairness.find("balanced"), std::string::npos);
  EXPECT_NE(unfairness.find("f6"), std::string::npos);
  std::string runtime = FormatSuiteRuntime(result);
  EXPECT_NE(runtime.find("Algorithm"), std::string::npos);
  std::string csv = FormatSuiteCsv(result);
  // Header + 4 cells.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
}

TEST(AuditSuiteTest, BiasedColumnDominatesRandomColumn) {
  Table workers = Workers(300);
  AuditSuite suite(&workers);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  auto f6 = MakeF6(3);
  SuiteOptions options;
  options.algorithms = {"balanced"};
  SuiteResult result = suite.Run({f1.get(), f6.get()}, options).value();
  EXPECT_GT(result.cells[0][1].unfairness, result.cells[0][0].unfairness);
}

}  // namespace
}  // namespace fairrank
