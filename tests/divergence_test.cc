#include "stats/divergence.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fairrank {
namespace {

Histogram FromValues(const std::vector<double>& values, int bins = 10) {
  Histogram h(bins, 0.0, 1.0);
  for (double v : values) h.Add(v);
  return h;
}

TEST(DivergenceFactoryTest, AllKnownNamesResolve) {
  for (const std::string& name : KnownDivergenceNames()) {
    auto d = MakeDivergenceByName(name);
    ASSERT_TRUE(d.ok()) << name;
    EXPECT_EQ((*d)->Name(), name);
  }
}

TEST(DivergenceFactoryTest, UnknownNameFails) {
  EXPECT_EQ(MakeDivergenceByName("euclidean").status().code(),
            StatusCode::kNotFound);
}

TEST(TotalVariationTest, KnownValue) {
  // Disjoint supports: TV = 1.
  auto tv = MakeTotalVariationDivergence();
  EXPECT_NEAR(tv->Distance(FromValues({0.05}), FromValues({0.95})).value(),
              1.0, 1e-12);
}

TEST(TotalVariationTest, HalfOverlap) {
  auto tv = MakeTotalVariationDivergence();
  Histogram a = FromValues({0.05, 0.15});
  Histogram b = FromValues({0.15, 0.25});
  EXPECT_NEAR(tv->Distance(a, b).value(), 0.5, 1e-12);
}

TEST(KolmogorovSmirnovTest, KnownValue) {
  auto ks = MakeKolmogorovSmirnovDivergence();
  // a fully below b: KS = 1.
  EXPECT_NEAR(ks->Distance(FromValues({0.05}), FromValues({0.95})).value(),
              1.0, 1e-12);
  Histogram a = FromValues({0.05, 0.95});
  Histogram b = FromValues({0.95, 0.05});
  EXPECT_NEAR(ks->Distance(a, b).value(), 0.0, 1e-12);
}

TEST(JensenShannonTest, BoundedAndZeroOnIdentical) {
  auto js = MakeJensenShannonDivergence();
  Histogram a = FromValues({0.1, 0.3, 0.5});
  EXPECT_NEAR(js->Distance(a, a).value(), 0.0, 1e-12);
  // Disjoint supports: JS (base 2) = 1.
  EXPECT_NEAR(js->Distance(FromValues({0.05}), FromValues({0.95})).value(),
              1.0, 1e-12);
}

TEST(SymmetricKlTest, FiniteOnDisjointSupports) {
  auto kl = MakeSymmetricKlDivergence();
  double v = kl->Distance(FromValues({0.05}), FromValues({0.95})).value();
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 1.0);  // Strongly divergent, but finite thanks to smoothing.
}

TEST(HellingerTest, BoundedInUnitInterval) {
  auto hellinger = MakeHellingerDivergence();
  EXPECT_NEAR(
      hellinger->Distance(FromValues({0.05}), FromValues({0.95})).value(),
      1.0, 1e-12);
  Histogram a = FromValues({0.1, 0.2});
  EXPECT_NEAR(hellinger->Distance(a, a).value(), 0.0, 1e-12);
}

TEST(GeneralEmdDivergenceTest, AgreesWithClosedForm) {
  auto fast = MakeEmdDivergence();
  auto general = MakeGeneralEmdDivergence();
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Histogram a(10, 0.0, 1.0);
    Histogram b(10, 0.0, 1.0);
    for (int i = 0; i < 30; ++i) {
      a.Add(rng.NextDouble());
      b.Add(rng.NextDouble());
    }
    EXPECT_NEAR(fast->Distance(a, b).value(),
                general->Distance(a, b).value(), 1e-9);
  }
}

TEST(ChiSquareTest, BoundsAndKnownValues) {
  auto chi2 = MakeChiSquareDivergence();
  // Disjoint supports: each occupied bin contributes p^2/p = p; total 2.
  EXPECT_NEAR(chi2->Distance(FromValues({0.05}), FromValues({0.95})).value(),
              2.0, 1e-12);
  Histogram a = FromValues({0.05, 0.15});
  EXPECT_NEAR(chi2->Distance(a, a).value(), 0.0, 1e-12);
}

TEST(BhattacharyyaTest, FiniteOnDisjointSupports) {
  auto bhat = MakeBhattacharyyaDivergence();
  double v =
      bhat->Distance(FromValues({0.05}), FromValues({0.95})).value();
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 5.0);  // Very divergent but finite (epsilon floor).
  Histogram a = FromValues({0.1, 0.2, 0.3});
  EXPECT_NEAR(bhat->Distance(a, a).value(), 0.0, 1e-6);
}

TEST(ThresholdedEmdDivergenceTest, NameAndCap) {
  auto d = MakeThresholdedEmdDivergence(0.3);
  EXPECT_EQ(d->Name(), "emd-thresholded");
  EXPECT_NEAR(d->Distance(FromValues({0.0}), FromValues({1.0})).value(), 0.3,
              1e-9);
}

// --- Property sweep: every divergence is symmetric, non-negative, and zero
// --- on identical histograms.

using DivergenceFactory = std::unique_ptr<Divergence> (*)();

class DivergencePropertyTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(DivergencePropertyTest, SymmetryNonNegativityIdentity) {
  auto divergence = MakeDivergenceByName(GetParam()).value();
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    Histogram a(10, 0.0, 1.0);
    Histogram b(10, 0.0, 1.0);
    int na = static_cast<int>(rng.UniformInt(1, 30));
    int nb = static_cast<int>(rng.UniformInt(1, 30));
    for (int i = 0; i < na; ++i) a.Add(rng.NextDouble());
    for (int i = 0; i < nb; ++i) b.Add(rng.NextDouble());
    double ab = divergence->Distance(a, b).value();
    double ba = divergence->Distance(b, a).value();
    EXPECT_GE(ab, 0.0);
    EXPECT_NEAR(ab, ba, 1e-9);
    EXPECT_NEAR(divergence->Distance(a, a).value(), 0.0, 1e-9);
  }
}

TEST_P(DivergencePropertyTest, RejectsBadInputs) {
  auto divergence = MakeDivergenceByName(GetParam()).value();
  Histogram a(10, 0.0, 1.0);
  a.Add(0.5);
  Histogram mismatched(5, 0.0, 1.0);
  mismatched.Add(0.5);
  Histogram empty(10, 0.0, 1.0);
  EXPECT_FALSE(divergence->Distance(a, mismatched).ok());
  EXPECT_FALSE(divergence->Distance(a, empty).ok());
}

INSTANTIATE_TEST_SUITE_P(AllDivergences, DivergencePropertyTest,
                         ::testing::ValuesIn(KnownDivergenceNames()));

}  // namespace
}  // namespace fairrank
