#!/bin/sh
# End-to-end smoke test of the fairaudit CLI. First argument: path to the
# fairaudit binary. Exercises every subcommand on a small generated
# population and checks key output fragments.
set -eu

FAIRAUDIT="$1"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# generate (uniform + realistic).
"$FAIRAUDIT" generate --workers 400 --seed 3 --out "$WORKDIR/w.csv" \
  | grep -q "wrote 400 uniform workers" || fail "generate uniform"
"$FAIRAUDIT" generate --workers 200 --seed 3 --realistic --bias 0.5 \
  --out "$WORKDIR/r.csv" \
  | grep -q "wrote 200 realistic workers" || fail "generate realistic"

# profile with the association screen.
"$FAIRAUDIT" profile --input "$WORKDIR/w.csv" --function alpha:0.5 \
  > "$WORKDIR/profile.out"
grep -q "Gender" "$WORKDIR/profile.out" || fail "profile lists Gender"
grep -q "eta^2" "$WORKDIR/profile.out" || fail "profile association screen"

# audit + save partitioning; f6 must recover Gender with ~0.8 unfairness.
"$FAIRAUDIT" audit --input "$WORKDIR/w.csv" --function f6 \
  --algorithm balanced --save-partitioning "$WORKDIR/part.txt" \
  > "$WORKDIR/audit.out"
grep -q "attributes used: Gender" "$WORKDIR/audit.out" || fail "audit attrs"
grep -q "unfairness" "$WORKDIR/audit.out" || fail "audit unfairness line"
grep -q "partition: Gender=0" "$WORKDIR/part.txt" || fail "saved spec"

# audit --json is a JSON object.
"$FAIRAUDIT" audit --input "$WORKDIR/w.csv" --function alpha:0.5 --json \
  | grep -q '^{"algorithm"' || fail "audit json"

# audit --trace prints the span tree on stderr, leaving stdout (the report,
# or --json) untouched.
"$FAIRAUDIT" audit --input "$WORKDIR/w.csv" --function f6 --json --trace \
  > "$WORKDIR/trace.out" 2> "$WORKDIR/trace.err"
grep -q '^{"algorithm"' "$WORKDIR/trace.out" || fail "trace kept stdout clean"
grep -q "^trace " "$WORKDIR/trace.err" || fail "trace header line"
grep -q -- "- audit " "$WORKDIR/trace.err" || fail "trace root span"
grep -q -- "  - search " "$WORKDIR/trace.err" || fail "trace child span"
grep -q "totals:" "$WORKDIR/trace.err" || fail "trace totals"

# apply the saved partitioning.
"$FAIRAUDIT" apply --input "$WORKDIR/w.csv" --spec "$WORKDIR/part.txt" \
  --function f6 | grep -q "applied 2 partitions" || fail "apply"

# rank prints the requested number of rows.
RANKED=$("$FAIRAUDIT" rank --input "$WORKDIR/w.csv" --function alpha:0.7 \
  --top 5 | wc -l)
[ "$RANKED" -eq 7 ] || fail "rank row count (got $RANKED)"  # header+rule+5.

# exposure reports every protected attribute.
"$FAIRAUDIT" exposure --input "$WORKDIR/w.csv" --function f6 \
  > "$WORKDIR/exposure.out"
grep -q "exposure gap" "$WORKDIR/exposure.out" || fail "exposure gap"
grep -q "Ethnicity" "$WORKDIR/exposure.out" || fail "exposure attributes"

# repair reports before/after.
"$FAIRAUDIT" repair --input "$WORKDIR/w.csv" --function f6 \
  --strategy quantile --out "$WORKDIR/repaired.csv" > "$WORKDIR/repair.out"
grep -q "repair=quantile" "$WORKDIR/repair.out" || fail "repair summary"
head -1 "$WORKDIR/repaired.csv" | grep -q "repaired_score" \
  || fail "repair csv header"

# significance: f6 must be significant at the minimum p-value.
"$FAIRAUDIT" significance --input "$WORKDIR/w.csv" --function f6 \
  --iterations 19 | grep -q "p-value 0.05" || fail "significance p-value"

# catalog audit covers the default five categories.
CATEGORIES=$("$FAIRAUDIT" catalog --input "$WORKDIR/w.csv" \
  --algorithm all-attributes | grep -c "labor\|writing\|entry\|development\|support")
[ "$CATEGORIES" -eq 5 ] || fail "catalog categories (got $CATEGORIES)"

# list names every algorithm.
"$FAIRAUDIT" list | grep -q "merge" || fail "list algorithms"

# execution limits: a 1 ms deadline must still exit 0 with a truncated
# best-so-far result (graceful degradation, never a hang or hard failure).
"$FAIRAUDIT" audit --input "$WORKDIR/w.csv" --function f6 \
  --algorithm balanced --timeout-ms 1 --json > "$WORKDIR/deadline.json" \
  || fail "audit under tiny deadline must exit 0"
grep -q '"truncated":' "$WORKDIR/deadline.json" \
  || fail "audit json reports truncation field"

# a tiny node budget on the exhaustive search (space >> 100 partitionings)
# must truncate with the node-budget reason, not error out.
"$FAIRAUDIT" audit --input "$WORKDIR/w.csv" --function f6 \
  --algorithm exhaustive --max-nodes 100 --json > "$WORKDIR/budget.json" \
  || fail "audit under node budget must exit 0"
grep -q '"truncated":true' "$WORKDIR/budget.json" \
  || fail "node budget marks result truncated"
grep -q '"exhaustion_reason":"node-budget"' "$WORKDIR/budget.json" \
  || fail "node budget reason reported"

# the truncation note also shows up in the human-readable report.
"$FAIRAUDIT" audit --input "$WORKDIR/w.csv" --function f6 \
  --algorithm exhaustive --max-nodes 100 > "$WORKDIR/budget.out" \
  || fail "text audit under node budget must exit 0"
grep -q "truncated" "$WORKDIR/budget.out" || fail "text report truncation note"

# limits flags must be rejected when malformed.
if "$FAIRAUDIT" audit --input "$WORKDIR/w.csv" --function f6 \
  --timeout-ms -5 > /dev/null 2>&1; then
  fail "negative timeout should fail"
fi
if "$FAIRAUDIT" audit --input "$WORKDIR/w.csv" --function f6 \
  --max-memory-mb -1 > /dev/null 2>&1; then
  fail "negative memory budget should fail"
fi

# a misspelled flag must fail loudly, not silently run an unbounded audit.
if "$FAIRAUDIT" audit --input "$WORKDIR/w.csv" --function f6 \
  --max-node 100 > /dev/null 2>&1; then
  fail "unknown flag --max-node should be rejected"
fi
"$FAIRAUDIT" audit --input "$WORKDIR/w.csv" --function f6 --max-node 100 2>&1 \
  | grep -q "unknown flag --max-node" || fail "unknown flag named in error"
if "$FAIRAUDIT" suite --input "$WORKDIR/w.csv" --suite-thread 2 \
  > /dev/null 2>&1; then
  fail "unknown flag --suite-thread should be rejected"
fi

# error paths: bad input file and unknown subcommand.
if "$FAIRAUDIT" audit --input /nonexistent.csv > /dev/null 2>&1; then
  fail "missing input should fail"
fi
if "$FAIRAUDIT" frobnicate > /dev/null 2>&1; then
  fail "unknown subcommand should fail"
fi

echo "cli_test: all subcommands OK"
