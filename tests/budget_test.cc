#include "common/budget.h"

#include <string>

#include <gtest/gtest.h>

#include "common/deadline.h"

namespace fairrank {
namespace {

TEST(ResourceBudgetTest, DefaultIsUnlimited) {
  ResourceBudget budget;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(budget.ChargeNodes());
  EXPECT_TRUE(budget.ChargeMemoryBytes(uint64_t{1} << 40));
  EXPECT_FALSE(budget.nodes_exhausted());
  EXPECT_FALSE(budget.memory_exhausted());
  EXPECT_EQ(budget.nodes_used(), 1000u);
}

TEST(ResourceBudgetTest, NodeBudgetExhausts) {
  ResourceBudget budget(/*max_nodes=*/3, /*max_memory_bytes=*/0);
  EXPECT_TRUE(budget.ChargeNodes());
  EXPECT_TRUE(budget.ChargeNodes());
  EXPECT_TRUE(budget.ChargeNodes());
  EXPECT_FALSE(budget.nodes_exhausted());  // Exactly at the limit is fine.
  EXPECT_FALSE(budget.ChargeNodes());
  EXPECT_TRUE(budget.nodes_exhausted());
  EXPECT_FALSE(budget.memory_exhausted());
}

TEST(ResourceBudgetTest, BulkChargeMayOvershootButReportsExhaustion) {
  ResourceBudget budget(/*max_nodes=*/5, /*max_memory_bytes=*/0);
  EXPECT_FALSE(budget.ChargeNodes(10));
  EXPECT_TRUE(budget.nodes_exhausted());
  EXPECT_EQ(budget.nodes_used(), 10u);  // The final charge overshoots.
}

TEST(ResourceBudgetTest, MemoryBudgetExhausts) {
  ResourceBudget budget(/*max_nodes=*/0, /*max_memory_bytes=*/1024);
  EXPECT_TRUE(budget.ChargeMemoryBytes(1000));
  EXPECT_FALSE(budget.ChargeMemoryBytes(1000));
  EXPECT_TRUE(budget.memory_exhausted());
  EXPECT_FALSE(budget.nodes_exhausted());
}

TEST(ResourceBudgetTest, TripMemoryLatchesEvenWhenUnlimited) {
  ResourceBudget budget;  // No memory limit.
  EXPECT_TRUE(budget.ChargeMemoryBytes(1));
  budget.TripMemory();
  EXPECT_TRUE(budget.memory_exhausted());
  EXPECT_FALSE(budget.ChargeMemoryBytes(1));
}

TEST(ExecutionContextTest, DefaultIsUnbounded) {
  ExecutionContext context;
  EXPECT_TRUE(context.IsUnbounded());
  EXPECT_EQ(context.Check(), ExhaustionReason::kNone);
  EXPECT_EQ(context.CheckNodes(1000), ExhaustionReason::kNone);
  EXPECT_EQ(context.CheckMemory(uint64_t{1} << 40), ExhaustionReason::kNone);
  EXPECT_TRUE(ExecutionContext::Unbounded().IsUnbounded());
}

TEST(ExecutionContextTest, ExpiredDeadlineReported) {
  ExecutionContext context(Deadline::AfterMillis(0), CancellationToken(),
                           nullptr);
  EXPECT_FALSE(context.IsUnbounded());
  EXPECT_EQ(context.Check(), ExhaustionReason::kDeadline);
}

TEST(ExecutionContextTest, CancellationReported) {
  CancellationSource source;
  ExecutionContext context(Deadline::Infinite(), source.token(), nullptr);
  EXPECT_EQ(context.Check(), ExhaustionReason::kNone);
  source.RequestCancellation();
  EXPECT_EQ(context.Check(), ExhaustionReason::kCancelled);
}

TEST(ExecutionContextTest, DeadlineOutranksCancellationAndBudget) {
  CancellationSource source;
  source.RequestCancellation();
  ResourceBudget budget(/*max_nodes=*/1, /*max_memory_bytes=*/0);
  EXPECT_FALSE(budget.ChargeNodes(5));  // Exhausts the node budget.
  ExecutionContext context(Deadline::AfterMillis(0), source.token(), &budget);
  EXPECT_EQ(context.Check(), ExhaustionReason::kDeadline);
}

TEST(ExecutionContextTest, CheckNodesChargesTheBudget) {
  ResourceBudget budget(/*max_nodes=*/10, /*max_memory_bytes=*/0);
  ExecutionContext context(Deadline::Infinite(), CancellationToken(), &budget);
  EXPECT_EQ(context.CheckNodes(10), ExhaustionReason::kNone);
  EXPECT_EQ(context.CheckNodes(1), ExhaustionReason::kNodeBudget);
  EXPECT_EQ(budget.nodes_used(), 11u);
}

TEST(ExecutionContextTest, CheckMemoryChargesTheBudget) {
  ResourceBudget budget(/*max_nodes=*/0, /*max_memory_bytes=*/100);
  ExecutionContext context(Deadline::Infinite(), CancellationToken(), &budget);
  EXPECT_EQ(context.CheckMemory(100), ExhaustionReason::kNone);
  EXPECT_EQ(context.CheckMemory(1), ExhaustionReason::kMemoryBudget);
}

TEST(ExecutionContextTest, WithoutBudgetKeepsDeadlineAndCancellation) {
  CancellationSource source;
  ResourceBudget budget(/*max_nodes=*/1, /*max_memory_bytes=*/0);
  EXPECT_FALSE(budget.ChargeNodes(5));
  ExecutionContext context(Deadline::Infinite(), source.token(), &budget);
  EXPECT_EQ(context.Check(), ExhaustionReason::kNodeBudget);
  ExecutionContext unbudgeted = context.WithoutBudget();
  EXPECT_EQ(unbudgeted.budget(), nullptr);
  EXPECT_EQ(unbudgeted.Check(), ExhaustionReason::kNone);
  source.RequestCancellation();
  EXPECT_EQ(unbudgeted.Check(), ExhaustionReason::kCancelled);
}

TEST(ExecutionLimitsTest, DefaultIsUnlimited) {
  ExecutionLimits limits;
  EXPECT_TRUE(limits.unlimited());
  ResourceBudget budget = limits.MakeBudget();
  ExecutionContext context = limits.MakeContext(&budget);
  EXPECT_EQ(context.Check(), ExhaustionReason::kNone);
}

TEST(ExecutionLimitsTest, TimeoutArmsDeadlineAtContextCreation) {
  ExecutionLimits limits;
  limits.timeout_ms = 60'000;
  EXPECT_FALSE(limits.unlimited());
  ExecutionContext context = limits.MakeContext(nullptr);
  EXPECT_FALSE(context.deadline().is_infinite());
  EXPECT_GT(context.deadline().RemainingSeconds(), 0.0);
}

TEST(ExecutionLimitsTest, PreArmedDeadlineOverridesTimeout) {
  ExecutionLimits limits;
  limits.timeout_ms = 60'000;
  limits.deadline = Deadline::AfterMillis(0);  // Already expired, shared.
  ExecutionContext context = limits.MakeContext(nullptr);
  EXPECT_EQ(context.Check(), ExhaustionReason::kDeadline);
}

TEST(ExecutionLimitsTest, MaxMemoryMbScalesToBytes) {
  ExecutionLimits limits;
  limits.max_memory_mb = 2;
  limits.max_nodes = 7;
  ResourceBudget budget = limits.MakeBudget();
  EXPECT_EQ(budget.max_memory_bytes(), uint64_t{2} << 20);
  EXPECT_EQ(budget.max_nodes(), 7u);
}

TEST(ExhaustionStatusTest, RoundTripsThroughStatus) {
  EXPECT_TRUE(ExhaustionStatus(ExhaustionReason::kNone).ok());
  for (ExhaustionReason reason :
       {ExhaustionReason::kDeadline, ExhaustionReason::kCancelled,
        ExhaustionReason::kNodeBudget, ExhaustionReason::kMemoryBudget}) {
    Status status = ExhaustionStatus(reason);
    EXPECT_FALSE(status.ok()) << ExhaustionReasonToString(reason);
    EXPECT_TRUE(IsExhaustion(status)) << ExhaustionReasonToString(reason);
    EXPECT_EQ(ExhaustionReasonFromStatus(status), reason);
  }
}

TEST(ExhaustionStatusTest, NonExhaustionStatusesAreNotExhaustion) {
  EXPECT_FALSE(IsExhaustion(Status::OK()));
  EXPECT_FALSE(IsExhaustion(Status::InvalidArgument("bad")));
  EXPECT_FALSE(IsExhaustion(Status::Internal("boom")));
  EXPECT_EQ(ExhaustionReasonFromStatus(Status::OK()), ExhaustionReason::kNone);
  EXPECT_EQ(ExhaustionReasonFromStatus(Status::Internal("boom")),
            ExhaustionReason::kNone);
}

TEST(ExhaustionStatusTest, ReasonNamesAreStable) {
  EXPECT_STREQ(ExhaustionReasonToString(ExhaustionReason::kNone), "none");
  EXPECT_STREQ(ExhaustionReasonToString(ExhaustionReason::kDeadline),
               "deadline");
  EXPECT_STREQ(ExhaustionReasonToString(ExhaustionReason::kCancelled),
               "cancelled");
  EXPECT_STREQ(ExhaustionReasonToString(ExhaustionReason::kNodeBudget),
               "node-budget");
  EXPECT_STREQ(ExhaustionReasonToString(ExhaustionReason::kMemoryBudget),
               "memory-budget");
}


TEST(ResourceBudgetTest, ChildChargesFlowThroughToParent) {
  ResourceBudget parent(10, 0);
  ResourceBudget child(0, 0, &parent);
  EXPECT_EQ(child.parent(), &parent);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(child.ChargeNodes());
  EXPECT_EQ(parent.nodes_used(), 10u);
  EXPECT_FALSE(child.ChargeNodes());
  EXPECT_TRUE(child.nodes_exhausted());
  EXPECT_TRUE(parent.nodes_exhausted());
}

TEST(ResourceBudgetTest, ParentExhaustionStopsSiblingChildren) {
  ResourceBudget parent(5, 0);
  ResourceBudget a(0, 0, &parent);
  ResourceBudget b(0, 0, &parent);
  EXPECT_TRUE(a.ChargeNodes(3));
  EXPECT_TRUE(b.ChargeNodes(2));
  EXPECT_FALSE(a.ChargeNodes());
  EXPECT_TRUE(b.nodes_exhausted());  // Exhausted via the shared parent.
}

TEST(ResourceBudgetTest, ChildMemoryChargesFlowThroughToParent) {
  ResourceBudget parent(0, 100);
  ResourceBudget child(0, 0, &parent);
  EXPECT_TRUE(child.ChargeMemoryBytes(100));
  EXPECT_FALSE(child.ChargeMemoryBytes(1));
  EXPECT_TRUE(child.memory_exhausted());
  EXPECT_TRUE(parent.memory_exhausted());
}

TEST(ResourceBudgetTest, ChargesNeverShortCircuitTheParent) {
  // A child trip must still charge the parent: the parent's counters are
  // the grid-level observability and must reflect all attempted work.
  ResourceBudget parent(100, 0);
  ResourceBudget child(2, 0, &parent);
  EXPECT_TRUE(child.ChargeNodes());
  EXPECT_TRUE(child.ChargeNodes());
  EXPECT_FALSE(child.ChargeNodes());
  EXPECT_FALSE(parent.nodes_exhausted());
  EXPECT_EQ(parent.nodes_used(), 3u);
}

TEST(ExecutionLimitsTest, MakeBudgetChainsToParent) {
  ResourceBudget parent(50, 0);
  ExecutionLimits limits;
  limits.parent_budget = &parent;
  EXPECT_FALSE(limits.unlimited());
  ResourceBudget child = limits.MakeBudget();
  EXPECT_EQ(child.parent(), &parent);
  EXPECT_TRUE(child.ChargeNodes(50));
  EXPECT_FALSE(child.ChargeNodes());
}

TEST(ExecutionLimitsTest, EffectiveDeadlineTakesTheEarlier) {
  ExecutionLimits limits;
  EXPECT_TRUE(limits.EffectiveDeadline().is_infinite());
  limits.timeout_ms = 3600 * 1000;
  Deadline timeout_only = limits.EffectiveDeadline();
  EXPECT_FALSE(timeout_only.is_infinite());
  EXPECT_GT(timeout_only.RemainingSeconds(), 3000.0);
  // A pre-armed deadline earlier than the timeout wins...
  limits.deadline = Deadline::AfterSeconds(1.0);
  EXPECT_LE(limits.EffectiveDeadline().RemainingSeconds(), 1.0);
  // ...and a timeout earlier than the pre-armed deadline wins too (the old
  // arming code let a finite `deadline` silently override timeout_ms).
  limits.deadline = Deadline::AfterSeconds(3600.0);
  limits.timeout_ms = 1000;
  EXPECT_LE(limits.EffectiveDeadline().RemainingSeconds(), 1.0);
  EXPECT_GT(limits.EffectiveDeadline().RemainingSeconds(), 0.0);
}

}  // namespace
}  // namespace fairrank
