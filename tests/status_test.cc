#include "common/status.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fairrank {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Internal("e"), StatusCode::kInternal, "Internal"},
      {Status::Unimplemented("f"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::IOError("g"), StatusCode::kIOError, "IOError"},
      {Status::AlreadyExists("h"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::ResourceExhausted("i"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
      {Status::Cancelled("j"), StatusCode::kCancelled, "Cancelled"},
      {Status::DeadlineExceeded("k"), StatusCode::kDeadlineExceeded,
       "DeadlineExceeded"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeToString(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> so(7);
  ASSERT_TRUE(so.ok());
  EXPECT_EQ(so.value(), 7);
  EXPECT_EQ(*so, 7);
  EXPECT_EQ(so.value_or(0), 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> so(Status::NotFound("nope"));
  ASSERT_FALSE(so.ok());
  EXPECT_EQ(so.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(so.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> so(std::make_unique<int>(5));
  ASSERT_TRUE(so.ok());
  std::unique_ptr<int> v = std::move(so).value();
  EXPECT_EQ(*v, 5);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> so(std::string("hello"));
  EXPECT_EQ(so->size(), 5u);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UsesReturnNotOk(int x) {
  FAIRRANK_RETURN_NOT_OK(ParsePositive(x).ok()
                             ? Status::OK()
                             : ParsePositive(x).status());
  return Status::OK();
}

StatusOr<int> UsesAssignOrReturn(int x) {
  FAIRRANK_ASSIGN_OR_RETURN(int a, ParsePositive(x));
  FAIRRANK_ASSIGN_OR_RETURN(int b, ParsePositive(x + 1));
  return a + b;
}

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(3).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnTwiceInOneScope) {
  StatusOr<int> good = UsesAssignOrReturn(2);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);
  EXPECT_FALSE(UsesAssignOrReturn(0).ok());
}

}  // namespace
}  // namespace fairrank
