#include "data/attribute.h"

#include <gtest/gtest.h>

namespace fairrank {
namespace {

TEST(AttributeTest, CategoricalBasics) {
  AttributeSpec gender = AttributeSpec::Categorical(
      "Gender", AttributeRole::kProtected, {"Male", "Female"});
  EXPECT_TRUE(gender.Validate().ok());
  EXPECT_EQ(gender.name(), "Gender");
  EXPECT_EQ(gender.kind(), AttributeKind::kCategorical);
  EXPECT_TRUE(gender.is_protected());
  EXPECT_FALSE(gender.is_observed());
  EXPECT_EQ(gender.num_groups(), 2);
}

TEST(AttributeTest, CodeOfResolvesLabels) {
  AttributeSpec lang = AttributeSpec::Categorical(
      "Language", AttributeRole::kProtected, {"English", "Indian", "Other"});
  EXPECT_EQ(lang.CodeOf("English").value(), 0);
  EXPECT_EQ(lang.CodeOf("Other").value(), 2);
  EXPECT_EQ(lang.CodeOf("French").status().code(), StatusCode::kNotFound);
}

TEST(AttributeTest, CodeOfOnNumericFails) {
  AttributeSpec yob =
      AttributeSpec::Integer("YearOfBirth", AttributeRole::kProtected, 1950,
                             2009, 5);
  EXPECT_EQ(yob.CodeOf("1960").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AttributeTest, ValidationFailures) {
  EXPECT_FALSE(AttributeSpec::Categorical("", AttributeRole::kOther, {"a"})
                   .Validate()
                   .ok());
  EXPECT_FALSE(
      AttributeSpec::Categorical("X", AttributeRole::kOther, {}).Validate().ok());
  EXPECT_FALSE(AttributeSpec::Categorical("X", AttributeRole::kOther,
                                          {"a", "a"})
                   .Validate()
                   .ok());
  EXPECT_FALSE(
      AttributeSpec::Integer("X", AttributeRole::kOther, 5, 5, 3).Validate().ok());
  EXPECT_FALSE(
      AttributeSpec::Integer("X", AttributeRole::kOther, 0, 10, 0).Validate().ok());
  EXPECT_FALSE(
      AttributeSpec::Real("X", AttributeRole::kOther, 1.0, 0.0, 3).Validate().ok());
}

TEST(AttributeTest, IntegerBucketization) {
  // [1950, 2009] in 5 buckets of width 11.8.
  AttributeSpec yob =
      AttributeSpec::Integer("YearOfBirth", AttributeRole::kProtected, 1950,
                             2009, 5);
  EXPECT_EQ(yob.num_groups(), 5);
  EXPECT_EQ(yob.GroupIndexOfInt(1950), 0);
  EXPECT_EQ(yob.GroupIndexOfInt(1961), 0);
  EXPECT_EQ(yob.GroupIndexOfInt(1962), 1);
  EXPECT_EQ(yob.GroupIndexOfInt(2009), 4);
}

TEST(AttributeTest, BucketizationClampsOutOfRange) {
  AttributeSpec exp = AttributeSpec::Integer(
      "YearsExperience", AttributeRole::kProtected, 0, 30, 5);
  EXPECT_EQ(exp.GroupIndexOfInt(-3), 0);
  EXPECT_EQ(exp.GroupIndexOfInt(500), 4);
  AttributeSpec rate =
      AttributeSpec::Real("Rate", AttributeRole::kObserved, 0.0, 1.0, 10);
  EXPECT_EQ(rate.GroupIndexOfReal(-0.1), 0);
  EXPECT_EQ(rate.GroupIndexOfReal(1.5), 9);
  EXPECT_EQ(rate.GroupIndexOfReal(1.0), 9);  // Upper bound inclusive.
}

TEST(AttributeTest, RealBucketBoundaries) {
  AttributeSpec r =
      AttributeSpec::Real("R", AttributeRole::kObserved, 0.0, 1.0, 4);
  EXPECT_EQ(r.GroupIndexOfReal(0.0), 0);
  EXPECT_EQ(r.GroupIndexOfReal(0.249), 0);
  EXPECT_EQ(r.GroupIndexOfReal(0.25), 1);
  EXPECT_EQ(r.GroupIndexOfReal(0.75), 3);
}

TEST(AttributeTest, GroupLabels) {
  AttributeSpec gender = AttributeSpec::Categorical(
      "Gender", AttributeRole::kProtected, {"Male", "Female"});
  EXPECT_EQ(gender.GroupLabel(0), "Male");
  EXPECT_EQ(gender.GroupLabel(1), "Female");
  EXPECT_EQ(gender.GroupLabel(7), "<invalid>");

  AttributeSpec exp = AttributeSpec::Integer(
      "YearsExperience", AttributeRole::kProtected, 0, 30, 3);
  EXPECT_EQ(exp.GroupLabel(0), "[0,10)");
  EXPECT_EQ(exp.GroupLabel(2), "[20,30]");  // Last bucket closes the range.
}

TEST(AttributeTest, CategoricalGroupIndexClamps) {
  AttributeSpec gender = AttributeSpec::Categorical(
      "Gender", AttributeRole::kProtected, {"Male", "Female"});
  EXPECT_EQ(gender.GroupIndexOfInt(-1), 0);
  EXPECT_EQ(gender.GroupIndexOfInt(9), 1);
}

TEST(AttributeTest, KindAndRoleNames) {
  EXPECT_STREQ(AttributeKindToString(AttributeKind::kCategorical),
               "categorical");
  EXPECT_STREQ(AttributeKindToString(AttributeKind::kInteger), "integer");
  EXPECT_STREQ(AttributeKindToString(AttributeKind::kReal), "real");
  EXPECT_STREQ(AttributeRoleToString(AttributeRole::kProtected), "protected");
  EXPECT_STREQ(AttributeRoleToString(AttributeRole::kObserved), "observed");
  EXPECT_STREQ(AttributeRoleToString(AttributeRole::kOther), "other");
}

}  // namespace
}  // namespace fairrank
