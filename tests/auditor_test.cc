#include "fairness/auditor.h"

#include <gtest/gtest.h>

#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

Table Workers(size_t n = 200, uint64_t seed = 6) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = seed;
  return GenerateWorkers(options).value();
}

TEST(AuditorTest, BasicAuditSucceeds) {
  Table workers = Workers();
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "unbalanced";
  auto result = auditor.Audit(*MakeAlphaFunction("f1", 0.5), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->algorithm, "unbalanced");
  EXPECT_NE(result->scoring_function.find("f1"), std::string::npos);
  EXPECT_GE(result->unfairness, 0.0);
  EXPECT_GE(result->seconds, 0.0);
  EXPECT_TRUE(IsValidPartitioning(result->partitioning, workers.num_rows()));
  EXPECT_EQ(result->partitions.size(), result->partitioning.size());
}

TEST(AuditorTest, PartitionSummariesAreConsistent) {
  Table workers = Workers();
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "balanced";
  auto result = auditor.Audit(*MakeF6(3), options);
  ASSERT_TRUE(result.ok());
  size_t total = 0;
  for (const PartitionSummary& p : result->partitions) {
    total += p.size;
    EXPECT_FALSE(p.label.empty());
    EXPECT_GE(p.mean_score, 0.0);
    EXPECT_LE(p.mean_score, 1.0);
    EXPECT_DOUBLE_EQ(p.histogram.total(), static_cast<double>(p.size));
  }
  EXPECT_EQ(total, workers.num_rows());
  // Sorted by descending size.
  for (size_t i = 1; i < result->partitions.size(); ++i) {
    EXPECT_GE(result->partitions[i - 1].size, result->partitions[i].size);
  }
}

TEST(AuditorTest, F6AuditFindsGenderBias) {
  Table workers = Workers(400);
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "balanced";
  auto result = auditor.Audit(*MakeF6(9), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->attributes_used,
            (std::vector<std::string>{worker_attrs::kGender}));
  EXPECT_NEAR(result->unfairness, 0.8, 0.05);
  // Male partition mean is high, female low.
  ASSERT_EQ(result->partitions.size(), 2u);
  for (const PartitionSummary& p : result->partitions) {
    if (p.label == "Gender=Male") {
      EXPECT_GT(p.mean_score, 0.8);
    }
    if (p.label == "Gender=Female") {
      EXPECT_LT(p.mean_score, 0.2);
    }
  }
}

TEST(AuditorTest, RestrictedProtectedAttributes) {
  Table workers = Workers();
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "all-attributes";
  options.protected_attributes = {worker_attrs::kGender,
                                  worker_attrs::kCountry};
  auto result = auditor.Audit(*MakeAlphaFunction("f1", 0.5), options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->partitions.size(), 6u);  // 2 genders x 3 countries.
  for (const std::string& used : result->attributes_used) {
    EXPECT_TRUE(used == worker_attrs::kGender ||
                used == worker_attrs::kCountry);
  }
}

TEST(AuditorTest, UnknownProtectedAttributeFails) {
  Table workers = Workers();
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.protected_attributes = {"Nonexistent"};
  EXPECT_EQ(auditor.Audit(*MakeAlphaFunction("f1", 0.5), options)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(AuditorTest, UnknownAlgorithmFails) {
  Table workers = Workers();
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "magic";
  EXPECT_EQ(auditor.Audit(*MakeAlphaFunction("f1", 0.5), options)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(AuditorTest, EmptyTableFails) {
  Table empty(MakePaperWorkerSchema().value());
  FairnessAuditor auditor(&empty);
  AuditOptions options;
  EXPECT_EQ(auditor.Audit(*MakeAlphaFunction("f1", 0.5), options)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(AuditorTest, AuditScoresWithExternalScores) {
  Table workers = Workers(100);
  FairnessAuditor auditor(&workers);
  std::vector<double> scores(workers.num_rows(), 0.0);
  // Score = 1 for males, 0 for females: a blatantly unfair external model.
  size_t gender = workers.schema().FindIndex(worker_attrs::kGender).value();
  for (size_t row = 0; row < workers.num_rows(); ++row) {
    scores[row] = workers.column(gender).CodeAt(row) == 0 ? 1.0 : 0.0;
  }
  AuditOptions options;
  options.algorithm = "balanced";
  auto result = auditor.AuditScores(scores, "external model", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->scoring_function, "external model");
  EXPECT_NEAR(result->unfairness, 0.9, 1e-9);  // Extreme bins, 10 bins.
}

TEST(AuditorTest, ScoreSizeMismatchFails) {
  Table workers = Workers(50);
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  EXPECT_FALSE(auditor.AuditScores({0.5, 0.5}, "bad", options).ok());
}

TEST(AuditorTest, DivergenceOptionFlowsThrough) {
  Table workers = Workers(200);
  FairnessAuditor auditor(&workers);
  AuditOptions emd_options;
  emd_options.algorithm = "balanced";
  AuditOptions ks_options = emd_options;
  ks_options.evaluator.divergence = "ks";
  auto emd_result = auditor.Audit(*MakeF6(4), emd_options);
  auto ks_result = auditor.Audit(*MakeF6(4), ks_options);
  ASSERT_TRUE(emd_result.ok() && ks_result.ok());
  // f6 separates genders completely: KS = 1, EMD ~ 0.8.
  EXPECT_NEAR(ks_result->unfairness, 1.0, 1e-9);
  EXPECT_NEAR(emd_result->unfairness, 0.8, 0.05);
}

TEST(AuditorTest, BinCountOptionFlowsThrough) {
  Table workers = Workers(200);
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "balanced";
  options.evaluator.num_bins = 40;
  auto result = auditor.Audit(*MakeF6(4), options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->partitions.empty());
  EXPECT_EQ(result->partitions[0].histogram.num_bins(), 40);
}

TEST(AuditorTest, WorstPairsReported) {
  Table workers = Workers(300);
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "balanced";
  options.num_worst_pairs = 2;
  auto result = auditor.Audit(*MakeF6(4), options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->worst_pairs.size(), 1u);  // Only 2 partitions = 1 pair.
  EXPECT_NEAR(result->worst_pairs[0].distance, result->unfairness, 1e-12);
  std::set<std::string> labels = {result->worst_pairs[0].label_a,
                                  result->worst_pairs[0].label_b};
  EXPECT_TRUE(labels.count("Gender=Male"));
  EXPECT_TRUE(labels.count("Gender=Female"));
}

TEST(AuditorTest, WorstPairsDisabled) {
  Table workers = Workers(100);
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.num_worst_pairs = 0;
  auto result = auditor.Audit(*MakeAlphaFunction("f1", 0.5), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->worst_pairs.empty());
}

TEST(AuditorTest, SeedAffectsRandomBaseline) {
  Table workers = Workers(200);
  FairnessAuditor auditor(&workers);
  std::set<size_t> first_split_attrs;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    AuditOptions options;
    options.algorithm = "r-balanced";
    options.seed = seed;
    auto result = auditor.Audit(*MakeAlphaFunction("f1", 0.5), options);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->partitioning.empty());
    ASSERT_FALSE(result->partitioning[0].path.empty());
    first_split_attrs.insert(result->partitioning[0].path[0].attr_index);
  }
  EXPECT_GT(first_split_attrs.size(), 1u);
}

}  // namespace
}  // namespace fairrank
