#include "marketplace/worker.h"

#include <gtest/gtest.h>

namespace fairrank {
namespace {

TEST(PaperSchemaTest, HasPaperAttributes) {
  auto schema = MakePaperWorkerSchema();
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_attributes(), 8u);
  EXPECT_EQ(schema->ProtectedIndices().size(), 6u);
  EXPECT_EQ(schema->ObservedIndices().size(), 2u);
  for (const char* name :
       {worker_attrs::kGender, worker_attrs::kCountry,
        worker_attrs::kYearOfBirth, worker_attrs::kLanguage,
        worker_attrs::kEthnicity, worker_attrs::kYearsExperience,
        worker_attrs::kLanguageTest, worker_attrs::kApprovalRate}) {
    EXPECT_TRUE(schema->FindIndex(name).ok()) << name;
  }
}

TEST(PaperSchemaTest, DomainsMatchPaper) {
  auto schema = MakePaperWorkerSchema();
  ASSERT_TRUE(schema.ok());
  const AttributeSpec& gender =
      schema->attribute(schema->FindIndex(worker_attrs::kGender).value());
  EXPECT_EQ(gender.categories(),
            (std::vector<std::string>{"Male", "Female"}));
  const AttributeSpec& ethnicity =
      schema->attribute(schema->FindIndex(worker_attrs::kEthnicity).value());
  EXPECT_EQ(ethnicity.num_groups(), 4);
  const AttributeSpec& yob =
      schema->attribute(schema->FindIndex(worker_attrs::kYearOfBirth).value());
  EXPECT_DOUBLE_EQ(yob.min(), 1950.0);
  EXPECT_DOUBLE_EQ(yob.max(), 2009.0);
  const AttributeSpec& lt =
      schema->attribute(schema->FindIndex(worker_attrs::kLanguageTest).value());
  EXPECT_TRUE(lt.is_observed());
  EXPECT_DOUBLE_EQ(lt.min(), 25.0);
  EXPECT_DOUBLE_EQ(lt.max(), 100.0);
}

TEST(PaperSchemaTest, NumericBucketsCapAttributeValues) {
  auto schema = MakePaperWorkerSchema(5);
  ASSERT_TRUE(schema.ok());
  // Every protected attribute has at most 5 groups (the paper's cap).
  for (size_t i : schema->ProtectedIndices()) {
    EXPECT_LE(schema->attribute(i).num_groups(), 5) << i;
  }
}

TEST(PaperSchemaTest, CustomBucketCount) {
  auto schema = MakePaperWorkerSchema(3);
  ASSERT_TRUE(schema.ok());
  const AttributeSpec& yob =
      schema->attribute(schema->FindIndex(worker_attrs::kYearOfBirth).value());
  EXPECT_EQ(yob.num_groups(), 3);
}

TEST(ToySchemaTest, Shape) {
  auto schema = MakeToySchema();
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->ProtectedIndices().size(), 2u);
  EXPECT_EQ(schema->ObservedIndices().size(), 1u);
}

TEST(ToyTableTest, TenWorkers) {
  auto table = MakeToyTable();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 10u);
  // Six males, four females.
  int males = 0;
  for (size_t row = 0; row < table->num_rows(); ++row) {
    if (table->CellToString(row, 0) == "Male") ++males;
  }
  EXPECT_EQ(males, 6);
}

TEST(ToyTableTest, FemaleScoresIdentical) {
  auto table = MakeToyTable();
  ASSERT_TRUE(table.ok());
  size_t score_col = table->schema().FindIndex("Score").value();
  for (size_t row = 0; row < table->num_rows(); ++row) {
    if (table->CellToString(row, 0) == "Female") {
      EXPECT_DOUBLE_EQ(table->column(score_col).RealAt(row), 0.42);
    }
  }
}

}  // namespace
}  // namespace fairrank
