#include "stats/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/emd.h"

namespace fairrank {
namespace {

TEST(GkSketchTest, EmptySketchFails) {
  GkSketch sketch(0.01);
  EXPECT_EQ(sketch.Quantile(0.5).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(GkSketchTest, OutOfRangeQFails) {
  GkSketch sketch(0.01);
  sketch.Insert(1.0);
  EXPECT_FALSE(sketch.Quantile(-0.1).ok());
  EXPECT_FALSE(sketch.Quantile(1.1).ok());
}

TEST(GkSketchTest, SingleValue) {
  GkSketch sketch(0.01);
  sketch.Insert(7.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0).value(), 7.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5).value(), 7.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0).value(), 7.0);
}

TEST(GkSketchTest, SmallExactStream) {
  GkSketch sketch(0.01);
  for (int i = 1; i <= 10; ++i) sketch.Insert(static_cast<double>(i));
  EXPECT_EQ(sketch.count(), 10u);
  EXPECT_NEAR(sketch.Quantile(0.0).value(), 1.0, 1.0);
  EXPECT_NEAR(sketch.Quantile(0.5).value(), 5.5, 1.0);
  EXPECT_NEAR(sketch.Quantile(1.0).value(), 10.0, 1.0);
}

TEST(GkSketchTest, RankErrorWithinBoundOnUniformStream) {
  const double epsilon = 0.01;
  const size_t n = 50000;
  GkSketch sketch(epsilon);
  Rng rng(7);
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double v = rng.NextDouble();
    values.push_back(v);
    sketch.Insert(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double approx = sketch.Quantile(q).value();
    // Empirical rank of the returned value.
    auto it = std::lower_bound(values.begin(), values.end(), approx);
    double rank = static_cast<double>(it - values.begin());
    double target = q * static_cast<double>(n - 1);
    EXPECT_NEAR(rank, target, 2.5 * epsilon * static_cast<double>(n))
        << "q=" << q;
  }
}

TEST(GkSketchTest, SpaceStaysSublinear) {
  GkSketch sketch(0.01);
  Rng rng(9);
  for (size_t i = 0; i < 100000; ++i) sketch.Insert(rng.NextDouble());
  // Exact storage would be 100k tuples; the sketch should be orders of
  // magnitude smaller.
  EXPECT_LT(sketch.tuples(), 4000u);
}

TEST(GkSketchTest, SortedAndReverseSortedStreams) {
  for (bool reverse : {false, true}) {
    GkSketch sketch(0.02);
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      double v = reverse ? static_cast<double>(n - i) : static_cast<double>(i);
      sketch.Insert(v);
    }
    double median = sketch.Quantile(0.5).value();
    EXPECT_NEAR(median, n / 2.0, 0.05 * n) << "reverse=" << reverse;
  }
}

TEST(GkSketchTest, DuplicateHeavyStream) {
  GkSketch sketch(0.01);
  for (int i = 0; i < 10000; ++i) sketch.Insert(0.5);
  for (int i = 0; i < 100; ++i) sketch.Insert(0.9);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5).value(), 0.5);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.999).value(), 0.9);
}

TEST(EmdFromSketchesTest, MatchesExactSampleEmd) {
  Rng rng(21);
  GkSketch sa(0.005);
  GkSketch sb(0.005);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 30000; ++i) {
    double va = rng.UniformDouble(0.0, 0.6);
    double vb = rng.UniformDouble(0.4, 1.0);
    a.push_back(va);
    b.push_back(vb);
    sa.Insert(va);
    sb.Insert(vb);
  }
  double exact = EmdSamples1D(a, b).value();
  double approx = EmdFromSketches(sa, sb).value();
  EXPECT_NEAR(approx, exact, 0.01);
}

TEST(EmdFromSketchesTest, IdenticalStreamsNearZero) {
  Rng rng(22);
  GkSketch sa(0.01);
  GkSketch sb(0.01);
  for (int i = 0; i < 20000; ++i) {
    double v = rng.NextDouble();
    sa.Insert(v);
    sb.Insert(v);
  }
  EXPECT_NEAR(EmdFromSketches(sa, sb).value(), 0.0, 0.02);
}

TEST(EmdFromSketchesTest, PointMassesExact) {
  GkSketch sa(0.01);
  GkSketch sb(0.01);
  sa.Insert(0.2);
  sb.Insert(0.7);
  EXPECT_NEAR(EmdFromSketches(sa, sb).value(), 0.5, 1e-12);
}

TEST(EmdFromSketchesTest, FailureModes) {
  GkSketch sa(0.01);
  GkSketch sb(0.01);
  sa.Insert(0.5);
  EXPECT_FALSE(EmdFromSketches(sa, sb).ok());  // b empty.
  sb.Insert(0.5);
  EXPECT_FALSE(EmdFromSketches(sa, sb, 0).ok());  // Zero points.
}

}  // namespace
}  // namespace fairrank
