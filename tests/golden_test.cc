// Golden regression values: every stochastic component is seeded, so these
// exact numbers are stable on a given platform and pin the semantics of the
// whole pipeline (generator -> scoring -> histogram -> EMD -> search).
// A change here means an intentional semantic change — update the values
// and EXPERIMENTS.md together.

#include <gtest/gtest.h>

#include "fairness/auditor.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

constexpr uint64_t kBenchSeed = 20190326;  // bench_common.h kDataSeed.
constexpr double kTolerance = 1e-3;

Table BenchWorkers(size_t n) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = kBenchSeed;
  return GenerateWorkers(options).value();
}

TEST(GoldenTest, ToyExampleOptimum) {
  Table table = MakeToyTable().value();
  LinearScoringFunction score("toy", {{"Score", 1.0}});
  FairnessAuditor auditor(&table);
  AuditOptions options;
  options.algorithm = "exhaustive";
  AuditResult result = auditor.Audit(score, options).value();
  EXPECT_NEAR(result.unfairness, 0.400, 1e-9);
  options.algorithm = "balanced";
  EXPECT_NEAR(auditor.Audit(score, options).value().unfairness, 0.300, 1e-9);
  options.algorithm = "unbalanced";
  EXPECT_NEAR(auditor.Audit(score, options).value().unfairness, 0.400, 1e-9);
}

TEST(GoldenTest, Table1BalancedRow) {
  // The balanced row of bench/table1_500_workers (seed 20190326).
  Table workers = BenchWorkers(500);
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "balanced";
  const struct {
    double alpha;
    double expected;
  } kCells[] = {
      {0.5, 0.226}, {0.3, 0.244}, {0.7, 0.248}, {1.0, 0.327}, {0.0, 0.321},
  };
  for (const auto& cell : kCells) {
    auto fn = MakeAlphaFunction("f", cell.alpha);
    EXPECT_NEAR(auditor.Audit(*fn, options).value().unfairness,
                cell.expected, kTolerance)
        << "alpha=" << cell.alpha;
  }
}

TEST(GoldenTest, Table3BalancedF6F7) {
  // Table 3's headline cells (function seed 7 as in the bench): f6 at
  // ~0.802 (paper: 0.800) splitting on gender; f7 on gender+country.
  Table workers = BenchWorkers(7300);
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "balanced";
  AuditResult f6 = auditor.Audit(*MakeF6(7 + 6), options).value();
  EXPECT_NEAR(f6.unfairness, 0.802, kTolerance);
  EXPECT_EQ(f6.attributes_used,
            (std::vector<std::string>{worker_attrs::kGender}));
  AuditResult f7 = auditor.Audit(*MakeF7(7 + 7), options).value();
  EXPECT_NEAR(f7.unfairness, 0.426, kTolerance);
  EXPECT_EQ(f7.attributes_used,
            (std::vector<std::string>{worker_attrs::kGender,
                                      worker_attrs::kCountry}));
}

TEST(GoldenTest, Table2AlgorithmsConverge) {
  // At 7300 workers all algorithms tie to 3 decimals on f1 (Table 2's
  // "all the algorithms behave similarly").
  Table workers = BenchWorkers(7300);
  FairnessAuditor auditor(&workers);
  auto fn = MakeAlphaFunction("f1", 0.5);
  double reference = -1.0;
  for (const std::string& name :
       {std::string("balanced"), std::string("all-attributes"),
        std::string("r-balanced")}) {
    AuditOptions options;
    options.algorithm = name;
    options.seed = 2;  // Matches the table2 bench baseline.
    double u = auditor.Audit(*fn, options).value().unfairness;
    if (reference < 0.0) reference = u;
    EXPECT_NEAR(u, reference, 2e-3) << name;
  }
}

}  // namespace
}  // namespace fairrank
