#include "repair/repair.h"

#include <gtest/gtest.h>

#include "fairness/auditor.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"

namespace fairrank {
namespace {

struct Audited {
  Table table;
  Partitioning partitioning;
  std::vector<double> scores;
};

Audited AuditF6(size_t n = 400) {
  GeneratorOptions gen;
  gen.num_workers = n;
  gen.seed = 10;
  Table workers = GenerateWorkers(gen).value();
  auto f6 = MakeF6(20);
  std::vector<double> scores = f6->ScoreAll(workers).value();
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "balanced";
  AuditResult result = auditor.Audit(*f6, options).value();
  return {std::move(workers), std::move(result.partitioning),
          std::move(scores)};
}

TEST(QuantileRepairTest, DrivesUnfairnessToNearZero) {
  Audited a = AuditF6();
  auto repair = MakeQuantileRepair();
  auto eval = EvaluateRepair(a.table, a.partitioning, a.scores, *repair,
                             EvaluatorOptions());
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  EXPECT_GT(eval->unfairness_before, 0.7);  // f6 is extremely unfair.
  EXPECT_LT(eval->unfairness_after, 0.05);
  EXPECT_GT(eval->mean_score_change, 0.0);
}

TEST(QuantileRepairTest, PreservesWithinPartitionOrder) {
  Audited a = AuditF6(200);
  auto repaired =
      MakeQuantileRepair()->Repair(a.table, a.partitioning, a.scores).value();
  for (const Partition& p : a.partitioning) {
    for (size_t i = 0; i < p.rows.size(); ++i) {
      for (size_t j = i + 1; j < p.rows.size(); ++j) {
        if (a.scores[p.rows[i]] < a.scores[p.rows[j]]) {
          EXPECT_LE(repaired[p.rows[i]], repaired[p.rows[j]]);
        }
      }
    }
  }
}

TEST(QuantileRepairTest, NoOpOnSinglePartition) {
  Audited a = AuditF6(100);
  Partitioning root{MakeRootPartition(a.table.num_rows())};
  auto repaired =
      MakeQuantileRepair()->Repair(a.table, root, a.scores).value();
  // With one partition the within-partition quantile map is (approximately)
  // the identity on the pooled distribution.
  std::vector<double> sorted_original = a.scores;
  std::vector<double> sorted_repaired = repaired;
  std::sort(sorted_original.begin(), sorted_original.end());
  std::sort(sorted_repaired.begin(), sorted_repaired.end());
  for (size_t i = 0; i < sorted_original.size(); ++i) {
    EXPECT_NEAR(sorted_original[i], sorted_repaired[i], 0.02);
  }
}

TEST(InterpolationRepairTest, LambdaZeroIsIdentity) {
  Audited a = AuditF6(150);
  auto repaired = MakeInterpolationRepair(0.0)
                      ->Repair(a.table, a.partitioning, a.scores)
                      .value();
  for (size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(repaired[i], a.scores[i]);
  }
}

TEST(InterpolationRepairTest, LambdaOneEqualsQuantile) {
  Audited a = AuditF6(150);
  auto full = MakeQuantileRepair()
                  ->Repair(a.table, a.partitioning, a.scores)
                  .value();
  auto interp = MakeInterpolationRepair(1.0)
                    ->Repair(a.table, a.partitioning, a.scores)
                    .value();
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(interp[i], full[i], 1e-12);
  }
}

TEST(InterpolationRepairTest, UnfairnessMonotoneInLambda) {
  Audited a = AuditF6();
  double previous = 1e9;
  for (double lambda : {0.0, 0.5, 1.0}) {
    auto repair = MakeInterpolationRepair(lambda);
    auto eval = EvaluateRepair(a.table, a.partitioning, a.scores, *repair,
                               EvaluatorOptions());
    ASSERT_TRUE(eval.ok());
    EXPECT_LE(eval->unfairness_after, previous + 1e-9);
    previous = eval->unfairness_after;
  }
}

TEST(InterpolationRepairTest, BadLambdaFails) {
  Audited a = AuditF6(50);
  EXPECT_FALSE(MakeInterpolationRepair(-0.1)
                   ->Repair(a.table, a.partitioning, a.scores)
                   .ok());
  EXPECT_FALSE(MakeInterpolationRepair(1.5)
                   ->Repair(a.table, a.partitioning, a.scores)
                   .ok());
}

TEST(AffineRepairTest, AlignsMeans) {
  Audited a = AuditF6();
  auto repaired =
      MakeAffineRepair()->Repair(a.table, a.partitioning, a.scores).value();
  double pooled_mean = 0.0;
  for (double s : a.scores) pooled_mean += s;
  pooled_mean /= static_cast<double>(a.scores.size());
  for (const Partition& p : a.partitioning) {
    double mean = 0.0;
    for (size_t row : p.rows) mean += repaired[row];
    mean /= static_cast<double>(p.rows.size());
    EXPECT_NEAR(mean, pooled_mean, 0.06);  // Clamping perturbs slightly.
  }
}

TEST(AffineRepairTest, RespectsClampBounds) {
  Audited a = AuditF6();
  auto repaired =
      MakeAffineRepair(0.0, 1.0)->Repair(a.table, a.partitioning, a.scores)
          .value();
  for (double s : repaired) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(RepairTest, InvalidPartitioningFails) {
  Audited a = AuditF6(50);
  Partitioning bad;  // Empty: does not cover the table.
  EXPECT_EQ(MakeQuantileRepair()
                ->Repair(a.table, bad, a.scores)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(RepairTest, ScoreSizeMismatchFails) {
  Audited a = AuditF6(50);
  std::vector<double> short_scores(10, 0.5);
  EXPECT_FALSE(
      MakeQuantileRepair()->Repair(a.table, a.partitioning, short_scores).ok());
}

TEST(EvaluateRepairTest, ReportsUtilityMetrics) {
  Audited a = AuditF6();
  auto eval = EvaluateRepair(a.table, a.partitioning, a.scores,
                             *MakeQuantileRepair(), EvaluatorOptions());
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->repaired_scores.size(), a.scores.size());
  EXPECT_GE(eval->rank_correlation, -1.0);
  EXPECT_LE(eval->rank_correlation, 1.0);
  // Quantile repair on f6 flips large parts of the global order; the
  // correlation must still be defined and the change non-trivial.
  EXPECT_GT(eval->mean_score_change, 0.1);
}

}  // namespace
}  // namespace fairrank
