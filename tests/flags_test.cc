#include "common/flags.h"

#include <gtest/gtest.h>

namespace fairrank {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  auto parser = FlagParser::Parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(parser.ok());
  return std::move(parser).value();
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser p = Parse({"--workers=500", "--seed=7"});
  EXPECT_TRUE(p.Has("workers"));
  EXPECT_EQ(p.GetInt("workers", 0).value(), 500);
  EXPECT_EQ(p.GetInt("seed", 0).value(), 7);
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser p = Parse({"--algorithm", "balanced", "--bins", "20"});
  EXPECT_EQ(p.GetString("algorithm", ""), "balanced");
  EXPECT_EQ(p.GetInt("bins", 0).value(), 20);
}

TEST(FlagParserTest, BareBoolean) {
  FlagParser p = Parse({"--json", "--histograms"});
  EXPECT_TRUE(p.GetBool("json", false).value());
  EXPECT_TRUE(p.GetBool("histograms", false).value());
  EXPECT_FALSE(p.GetBool("absent", false).value());
}

TEST(FlagParserTest, BooleanValues) {
  FlagParser p = Parse({"--a=true", "--b=false", "--c=1", "--d=0", "--e=yes"});
  EXPECT_TRUE(p.GetBool("a", false).value());
  EXPECT_FALSE(p.GetBool("b", true).value());
  EXPECT_TRUE(p.GetBool("c", false).value());
  EXPECT_FALSE(p.GetBool("d", true).value());
  EXPECT_TRUE(p.GetBool("e", false).value());
}

TEST(FlagParserTest, BadBooleanFails) {
  FlagParser p = Parse({"--x=maybe"});
  EXPECT_FALSE(p.GetBool("x", false).ok());
}

TEST(FlagParserTest, Positional) {
  FlagParser p = Parse({"audit", "--bins=5", "extra"});
  EXPECT_EQ(p.positional(),
            (std::vector<std::string>{"audit", "extra"}));
}

TEST(FlagParserTest, DoubleDashEndsFlags) {
  FlagParser p = Parse({"--a=1", "--", "--not-a-flag"});
  EXPECT_TRUE(p.Has("a"));
  EXPECT_EQ(p.positional(), (std::vector<std::string>{"--not-a-flag"}));
}

TEST(FlagParserTest, FallbacksWhenAbsent) {
  FlagParser p = Parse({});
  EXPECT_EQ(p.GetString("x", "def"), "def");
  EXPECT_EQ(p.GetInt("x", 9).value(), 9);
  EXPECT_DOUBLE_EQ(p.GetDouble("x", 1.5).value(), 1.5);
}

TEST(FlagParserTest, BadNumbersFail) {
  FlagParser p = Parse({"--n=abc", "--d=xyz"});
  EXPECT_FALSE(p.GetInt("n", 0).ok());
  EXPECT_FALSE(p.GetDouble("d", 0.0).ok());
}

TEST(FlagParserTest, DoubleValues) {
  FlagParser p = Parse({"--lambda=0.25"});
  EXPECT_DOUBLE_EQ(p.GetDouble("lambda", 0.0).value(), 0.25);
}

TEST(FlagParserTest, EmptyFlagNameFails) {
  const char* args[] = {"--=5"};
  EXPECT_FALSE(FlagParser::Parse(1, args).ok());
}

TEST(FlagParserTest, LastValueWins) {
  FlagParser p = Parse({"--x=1", "--x=2"});
  EXPECT_EQ(p.GetInt("x", 0).value(), 2);
}

TEST(FlagParserTest, FlagNamesLists) {
  FlagParser p = Parse({"--b=1", "--a=2"});
  EXPECT_EQ(p.FlagNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(FlagParserTest, EmptyValueViaEquals) {
  FlagParser p = Parse({"--out="});
  EXPECT_TRUE(p.Has("out"));
  EXPECT_EQ(p.GetString("out", "def"), "");
}

}  // namespace
}  // namespace fairrank
