#include "common/fault_injection.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/parallel.h"
#include "fairness/evaluator.h"
#include "fairness/registry.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

TEST(FaultInjectionTest, DisarmedByDefault) {
  // No FAIRRANK_FAULT_* variables are set in the test environment, so the
  // hooks must be inert.
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::OnAllocCheckpoint());
  ExecutionContext context;
  EXPECT_EQ(context.CheckMemory(1024), ExhaustionReason::kNone);
}

TEST(FaultInjectionTest, FailsExactlyTheNthAllocCheckpoint) {
  fault::ScopedFaultPlan scoped([] {
    fault::FaultPlan plan;
    plan.fail_alloc_checkpoint = 2;
    return plan;
  }());
  ExecutionContext context;
  EXPECT_EQ(context.CheckMemory(1), ExhaustionReason::kNone);
  EXPECT_EQ(context.CheckMemory(1), ExhaustionReason::kMemoryBudget);
  EXPECT_EQ(context.CheckMemory(1), ExhaustionReason::kNone);
  EXPECT_EQ(fault::alloc_checkpoints_hit(), 3u);
}

TEST(FaultInjectionTest, FailedCheckpointLatchesTheBudget) {
  fault::ScopedFaultPlan scoped([] {
    fault::FaultPlan plan;
    plan.fail_alloc_checkpoint = 1;
    return plan;
  }());
  ResourceBudget budget;  // Unlimited — only the fault can trip it.
  ExecutionContext context(Deadline::Infinite(), CancellationToken(), &budget);
  EXPECT_EQ(context.CheckMemory(1), ExhaustionReason::kMemoryBudget);
  // The trip latches: later checkpoints fail through the budget even though
  // the armed fault only targeted the first one.
  EXPECT_TRUE(budget.memory_exhausted());
  EXPECT_EQ(context.CheckMemory(1), ExhaustionReason::kMemoryBudget);
}

TEST(FaultInjectionTest, DisarmRestoresNormalOperation) {
  {
    fault::FaultPlan plan;
    plan.fail_alloc_checkpoint = 1;
    fault::Arm(plan);
  }
  fault::Disarm();
  EXPECT_FALSE(fault::armed());
  ExecutionContext context;
  EXPECT_EQ(context.CheckMemory(1), ExhaustionReason::kNone);
}

TEST(FaultInjectionTest, WorkerExceptionRethrownOnCallingThread) {
  fault::FaultPlan plan;
  plan.throw_in_chunk = 1;  // A spawned worker, not the calling thread.
  fault::ScopedFaultPlan scoped(plan);
  EXPECT_THROW(
      ParallelFor(10'000, 4, [](size_t, size_t) {}),
      std::runtime_error);
}

TEST(FaultInjectionTest, CallingThreadExceptionAlsoPropagates) {
  fault::FaultPlan plan;
  plan.throw_in_chunk = 0;  // Chunk 0 runs inline on the calling thread.
  fault::ScopedFaultPlan scoped(plan);
  EXPECT_THROW(ParallelFor(100, 1, [](size_t, size_t) {}),
               std::runtime_error);
}

TEST(FaultInjectionTest, SurvivingChunksStillJoinAfterAThrow) {
  fault::FaultPlan plan;
  plan.throw_in_chunk = 0;
  fault::ScopedFaultPlan scoped(plan);
  const size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  try {
    ParallelFor(n, 4, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    FAIL() << "expected the injected exception";
  } catch (const std::runtime_error&) {
  }
  // Every index ran at most once: the throw must not double-run any chunk.
  for (size_t i = 0; i < n; ++i) EXPECT_LE(hits[i].load(), 1) << i;
}

TEST(FaultInjectionTest, StalledChunkAbortsOnCancellation) {
  fault::FaultPlan plan;
  plan.stall_chunk = 0;
  plan.stall_ms = 60'000;  // Would dwarf the test timeout if not aborted.
  fault::ScopedFaultPlan scoped(plan);
  CancellationSource source;
  source.RequestCancellation();
  auto start = std::chrono::steady_clock::now();
  bool complete = ParallelForCancellable(10'000, 2, source.token(),
                                         Deadline::Infinite(),
                                         [](size_t, size_t) {});
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(complete);
  EXPECT_LT(elapsed, 10.0);  // Stall slices observe the cancellation fast.
}

TEST(FaultInjectionTest, EvaluatorConvertsWorkerExceptionToStatus) {
  GeneratorOptions gen;
  gen.num_workers = 300;
  gen.seed = 7;
  Table workers = GenerateWorkers(gen).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&workers, fn->ScoreAll(workers).value(),
                                EvaluatorOptions())
          .value();
  auto algo = MakeAlgorithmByName("all-attributes").value();
  Partitioning p =
      algo->Run(eval, workers.schema().ProtectedIndices()).value();

  fault::FaultPlan plan;
  plan.throw_in_chunk = 0;
  fault::ScopedFaultPlan scoped(plan);
  StatusOr<double> avg = eval.AveragePairwiseUnfairness(p);
  ASSERT_FALSE(avg.ok());
  EXPECT_EQ(avg.status().code(), StatusCode::kInternal);
  EXPECT_NE(avg.status().message().find("fault injection"), std::string::npos);
}

TEST(FaultInjectionTest, DivergenceFaultAbortsSiblingChunksEarly) {
  GeneratorOptions gen;
  gen.num_workers = 500;
  gen.seed = 11;
  Table workers = GenerateWorkers(gen).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  std::vector<double> scores = fn->ScoreAll(workers).value();
  UnfairnessEvaluator setup_eval =
      UnfairnessEvaluator::Make(&workers, scores, EvaluatorOptions()).value();
  auto algo = MakeAlgorithmByName("all-attributes").value();
  Partitioning p =
      algo->Run(setup_eval, workers.schema().ProtectedIndices()).value();
  const size_t num_pairs = p.size() * (p.size() - 1) / 2;
  ASSERT_GE(num_pairs, 100u);

  // A fresh evaluator, so every pair would actually be computed (the setup
  // evaluator's cache already holds them all and cache hits skip the hook).
  EvaluatorOptions options;
  options.num_threads = 4;
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&workers, scores, options).value();
  fault::FaultPlan plan;
  plan.fail_divergence_eval = 1;
  fault::ScopedFaultPlan scoped(plan);
  StatusOr<double> avg = eval.AveragePairwiseUnfairness(p);
  ASSERT_FALSE(avg.ok());
  EXPECT_EQ(avg.status().code(), StatusCode::kInternal);
  EXPECT_NE(avg.status().message().find("fault injection"), std::string::npos);
  // Sibling chunks observe the abort flag: after the first failure the loop
  // must stop instead of burning through the remaining pairs.
  EXPECT_LT(fault::divergence_evals_hit(), num_pairs / 4);
}

TEST(FaultInjectionTest, SimulatedAllocFailureDegradesMergeSearch) {
  // The merge algorithm's distance matrix is guarded by an allocation
  // checkpoint; failing it must yield a valid truncated result, not an
  // error or a crash.
  Table table = MakeToyTable().value();
  size_t score_col = table.schema().FindIndex("Score").value();
  std::vector<double> scores;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    scores.push_back(table.column(score_col).RealAt(row));
  }
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&table, scores, EvaluatorOptions()).value();

  fault::FaultPlan plan;
  plan.fail_alloc_checkpoint = 1;
  fault::ScopedFaultPlan scoped(plan);
  auto algo = MakeAlgorithmByName("merge").value();
  SearchResult result = algo->Run(eval, table.schema().ProtectedIndices(),
                                  ExecutionContext::Unbounded())
                            .value();
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.reason, ExhaustionReason::kMemoryBudget);
  EXPECT_TRUE(IsValidPartitioning(result.partitioning, table.num_rows()));
  EXPECT_FALSE(result.partitioning.empty());
}

}  // namespace
}  // namespace fairrank
