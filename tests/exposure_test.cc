#include "fairness/exposure.h"

#include <cmath>

#include <gtest/gtest.h>

#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

Table Workers(size_t n = 300, uint64_t seed = 12) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = seed;
  return GenerateWorkers(options).value();
}

std::vector<RankedWorker> Rank(const Table& workers,
                               const ScoringFunction& fn) {
  RankingEngine engine(&workers);
  return engine.Rank(fn).value();
}

TEST(ExposureTest, BiasedFunctionGivesMalesMoreExposure) {
  Table workers = Workers();
  auto f6 = MakeF6(9);
  auto ranking = Rank(workers, *f6);
  auto report =
      ComputeExposure(workers, ranking, worker_attrs::kGender);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->groups.size(), 2u);
  double male_exposure = 0.0;
  double female_exposure = 0.0;
  for (const GroupExposure& g : report->groups) {
    if (g.group_label == "Male") male_exposure = g.mean_exposure;
    if (g.group_label == "Female") female_exposure = g.mean_exposure;
  }
  EXPECT_GT(male_exposure, female_exposure);
  EXPECT_GT(report->exposure_gap, 0.05);
}

TEST(ExposureTest, FairFunctionHasSmallGap) {
  Table workers = Workers(1000);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  auto ranking = Rank(workers, *f1);
  auto report =
      ComputeExposure(workers, ranking, worker_attrs::kGender);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->exposure_gap, 0.05);
}

TEST(ExposureTest, GroupSizesCoverPopulation) {
  Table workers = Workers();
  auto f1 = MakeAlphaFunction("f1", 0.5);
  auto ranking = Rank(workers, *f1);
  auto report =
      ComputeExposure(workers, ranking, worker_attrs::kCountry);
  ASSERT_TRUE(report.ok());
  size_t total = 0;
  for (const GroupExposure& g : report->groups) total += g.group_size;
  EXPECT_EQ(total, workers.num_rows());
}

TEST(ExposureTest, LogBiasMatchesManualComputation) {
  // Tiny table: two males at ranks 1,3 and two females at ranks 2,4.
  Schema schema = MakeToySchema().value();
  Table table(schema);
  ASSERT_TRUE(table.AppendRow({std::string("Male"), std::string("English"),
                               0.9}).ok());
  ASSERT_TRUE(table.AppendRow({std::string("Female"), std::string("English"),
                               0.8}).ok());
  ASSERT_TRUE(table.AppendRow({std::string("Male"), std::string("English"),
                               0.7}).ok());
  ASSERT_TRUE(table.AppendRow({std::string("Female"), std::string("English"),
                               0.6}).ok());
  LinearScoringFunction fn("s", {{"Score", 1.0}});
  RankingEngine engine(&table);
  auto ranking = engine.Rank(fn).value();
  auto report = ComputeExposure(table, ranking, worker_attrs::kGender);
  ASSERT_TRUE(report.ok());
  double male_expected = (1.0 / std::log2(2.0) + 1.0 / std::log2(4.0)) / 2.0;
  double female_expected = (1.0 / std::log2(3.0) + 1.0 / std::log2(5.0)) / 2.0;
  for (const GroupExposure& g : report->groups) {
    if (g.group_label == "Male") {
      EXPECT_NEAR(g.mean_exposure, male_expected, 1e-12);
    } else {
      EXPECT_NEAR(g.mean_exposure, female_expected, 1e-12);
    }
  }
}

TEST(ExposureTest, TopKBiasCountsOnlyTopPositions) {
  Table workers = Workers(100);
  auto f6 = MakeF6(3);
  auto ranking = Rank(workers, *f6);
  ExposureOptions options;
  options.bias = PositionBias::kTopK;
  options.top_k = 10;
  auto report =
      ComputeExposure(workers, ranking, worker_attrs::kGender, options);
  ASSERT_TRUE(report.ok());
  // All top-10 under f6 are male: female mean exposure must be exactly 0.
  for (const GroupExposure& g : report->groups) {
    if (g.group_label == "Female") {
      EXPECT_DOUBLE_EQ(g.mean_exposure, 0.0);
    }
    if (g.group_label == "Male") {
      EXPECT_GT(g.mean_exposure, 0.0);
    }
  }
}

TEST(ExposureTest, ReciprocalBiasDecaysFaster) {
  Table workers = Workers(200);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  auto ranking = Rank(workers, *f1);
  ExposureOptions log_bias;
  ExposureOptions reciprocal;
  reciprocal.bias = PositionBias::kReciprocal;
  auto log_report = ComputeExposure(workers, ranking,
                                    worker_attrs::kGender, log_bias);
  auto rec_report = ComputeExposure(workers, ranking,
                                    worker_attrs::kGender, reciprocal);
  ASSERT_TRUE(log_report.ok() && rec_report.ok());
  // Reciprocal bias concentrates mass at the top: total mean exposure lower.
  EXPECT_LT(rec_report->groups[0].mean_exposure,
            log_report->groups[0].mean_exposure);
}

TEST(ExposureTest, ComputeAllCoversEveryProtectedAttribute) {
  Table workers = Workers();
  auto f1 = MakeAlphaFunction("f1", 0.5);
  auto ranking = Rank(workers, *f1);
  auto reports = ComputeAllExposures(workers, ranking);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports->size(), 6u);
}

TEST(ExposureTest, BadRankingFails) {
  Table workers = Workers(10);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  auto ranking = Rank(workers, *f1);
  // Wrong size.
  std::vector<RankedWorker> short_ranking(ranking.begin(),
                                          ranking.begin() + 5);
  EXPECT_FALSE(
      ComputeExposure(workers, short_ranking, worker_attrs::kGender).ok());
  // Duplicate rows.
  auto dup = ranking;
  dup[1] = dup[0];
  EXPECT_FALSE(ComputeExposure(workers, dup, worker_attrs::kGender).ok());
}

TEST(ExposureTest, UnknownAttributeFails) {
  Table workers = Workers(10);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  auto ranking = Rank(workers, *f1);
  EXPECT_EQ(ComputeExposure(workers, ranking, "Nope").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace fairrank
