#include <gtest/gtest.h>

#include "fairness/registry.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

UnfairnessEvaluator MakeEvaluator(const Table* table,
                                  const ScoringFunction& fn,
                                  EvaluatorOptions options = {}) {
  return UnfairnessEvaluator::Make(table, fn.ScoreAll(*table).value(),
                                   options)
      .value();
}

Table Workers(size_t n, uint64_t seed = 42) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = seed;
  return GenerateWorkers(options).value();
}

TEST(RegistryTest, AllNamesResolve) {
  for (const std::string& name : KnownAlgorithmNames()) {
    auto algo = MakeAlgorithmByName(name);
    ASSERT_TRUE(algo.ok()) << name;
    EXPECT_EQ((*algo)->Name(), name);
  }
  EXPECT_EQ(KnownAlgorithmNames().size(), 8u);
  EXPECT_EQ(PaperAlgorithmNames().size(), 5u);
}

TEST(RegistryTest, UnknownNameFails) {
  EXPECT_EQ(MakeAlgorithmByName("gradient-descent").status().code(),
            StatusCode::kNotFound);
}

// Every algorithm must return a valid full disjoint partitioning
// (Definition 1 constraints) on a real workload.
class AlgorithmContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AlgorithmContractTest, ReturnsValidPartitioning) {
  Table workers = Workers(120);
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval = MakeEvaluator(&workers, *fn);
  AlgorithmConfig config;
  config.seed = 7;
  config.exhaustive.max_partitionings = 200000;
  auto algo = MakeAlgorithmByName(GetParam(), config).value();
  std::vector<size_t> attrs = workers.schema().ProtectedIndices();
  if (GetParam() == "exhaustive") {
    attrs.resize(2);  // Keep brute force tractable.
  }
  auto partitioning = algo->Run(eval, attrs);
  ASSERT_TRUE(partitioning.ok()) << partitioning.status().ToString();
  EXPECT_TRUE(IsValidPartitioning(*partitioning, workers.num_rows()));
}

TEST_P(AlgorithmContractTest, EmptyAttributeListYieldsRoot) {
  Table workers = Workers(30);
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval = MakeEvaluator(&workers, *fn);
  auto algo = MakeAlgorithmByName(GetParam()).value();
  auto partitioning = algo->Run(eval, {});
  ASSERT_TRUE(partitioning.ok());
  ASSERT_EQ(partitioning->size(), 1u);
  EXPECT_EQ((*partitioning)[0].size(), workers.num_rows());
}

TEST_P(AlgorithmContractTest, DeterministicGivenSameConfig) {
  Table workers = Workers(80);
  auto fn = MakeAlphaFunction("f2", 0.3);
  UnfairnessEvaluator eval = MakeEvaluator(&workers, *fn);
  AlgorithmConfig config;
  config.seed = 99;
  std::vector<size_t> attrs = workers.schema().ProtectedIndices();
  if (GetParam() == "exhaustive") attrs.resize(2);

  auto run = [&]() {
    auto algo = MakeAlgorithmByName(GetParam(), config).value();
    return algo->Run(eval, attrs).value();
  };
  Partitioning a = run();
  Partitioning b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rows, b[i].rows);
    EXPECT_EQ(a[i].path.size(), b[i].path.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmContractTest,
                         ::testing::ValuesIn(KnownAlgorithmNames()));

// Degenerate populations every algorithm must survive.
class DegenerateInputTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DegenerateInputTest, SingleWorker) {
  Table workers = Workers(1);
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval = MakeEvaluator(&workers, *fn);
  AlgorithmConfig config;
  config.seed = 1;
  auto algo = MakeAlgorithmByName(GetParam(), config).value();
  std::vector<size_t> attrs = workers.schema().ProtectedIndices();
  if (GetParam() == "exhaustive") attrs.resize(2);
  auto p = algo->Run(eval, attrs);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(IsValidPartitioning(*p, 1));
}

TEST_P(DegenerateInputTest, TwoWorkers) {
  Table workers = Workers(2);
  auto fn = MakeAlphaFunction("f4", 1.0);
  UnfairnessEvaluator eval = MakeEvaluator(&workers, *fn);
  AlgorithmConfig config;
  config.seed = 1;
  auto algo = MakeAlgorithmByName(GetParam(), config).value();
  std::vector<size_t> attrs = workers.schema().ProtectedIndices();
  if (GetParam() == "exhaustive") attrs.resize(3);
  auto p = algo->Run(eval, attrs);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(IsValidPartitioning(*p, 2));
}

TEST_P(DegenerateInputTest, HomogeneousAttributes) {
  // Every worker identical on every protected attribute: all splits are
  // single-child; every algorithm must return one partition of everyone.
  Schema schema = MakeToySchema().value();
  Table table(schema);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(table
                    .AppendRow({std::string("Female"), std::string("Indian"),
                                rng.NextDouble()})
                    .ok());
  }
  LinearScoringFunction fn("score", {{"Score", 1.0}});
  UnfairnessEvaluator eval = MakeEvaluator(&table, fn);
  AlgorithmConfig config;
  config.seed = 1;
  auto algo = MakeAlgorithmByName(GetParam(), config).value();
  auto p = algo->Run(eval, table.schema().ProtectedIndices());
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->size(), 1u);
  EXPECT_EQ((*p)[0].size(), 20u);
  EXPECT_DOUBLE_EQ(eval.AveragePairwiseUnfairness(*p).value(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, DegenerateInputTest,
                         ::testing::ValuesIn(KnownAlgorithmNames()));

TEST(BalancedTest, AllLeavesShareSplitAttributes) {
  Table workers = Workers(200);
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval = MakeEvaluator(&workers, *fn);
  auto algo = MakeAlgorithmByName("balanced").value();
  Partitioning p =
      algo->Run(eval, workers.schema().ProtectedIndices()).value();
  ASSERT_FALSE(p.empty());
  // Balanced tree: every leaf's path uses the same attribute sequence.
  std::vector<size_t> first_attrs;
  for (const SplitStep& s : p[0].path) first_attrs.push_back(s.attr_index);
  for (const Partition& leaf : p) {
    std::vector<size_t> attrs;
    for (const SplitStep& s : leaf.path) attrs.push_back(s.attr_index);
    EXPECT_EQ(attrs, first_attrs);
  }
}

TEST(BalancedTest, FindsGenderForF6) {
  // f6 discriminates purely on gender; balanced must split on gender only
  // ("for f6, balanced partitions the workers on only gender").
  Table workers = Workers(500);
  auto f6 = MakeF6(1234);
  UnfairnessEvaluator eval = MakeEvaluator(&workers, *f6);
  auto algo = MakeAlgorithmByName("balanced").value();
  Partitioning p =
      algo->Run(eval, workers.schema().ProtectedIndices()).value();
  EXPECT_EQ(AttributesUsed(workers.schema(), p),
            (std::vector<std::string>{worker_attrs::kGender}));
  EXPECT_EQ(p.size(), 2u);
  EXPECT_NEAR(eval.AveragePairwiseUnfairness(p).value(), 0.8, 0.05);
}

TEST(BalancedTest, FindsGenderAndCountryForF7) {
  Table workers = Workers(500);
  auto f7 = MakeF7(1234);
  UnfairnessEvaluator eval = MakeEvaluator(&workers, *f7);
  auto algo = MakeAlgorithmByName("balanced").value();
  Partitioning p =
      algo->Run(eval, workers.schema().ProtectedIndices()).value();
  EXPECT_EQ(AttributesUsed(workers.schema(), p),
            (std::vector<std::string>{worker_attrs::kGender,
                                      worker_attrs::kCountry}));
}

TEST(UnbalancedTest, CanUseDifferentAttributesPerBranch) {
  // f8 biases only females by country; males are uniform. The unbalanced
  // tree should split females by country but may leave males alone.
  Table workers = Workers(600);
  auto f8 = MakeF8(77);
  UnfairnessEvaluator eval = MakeEvaluator(&workers, *f8);
  auto algo = MakeAlgorithmByName("unbalanced").value();
  Partitioning p =
      algo->Run(eval, workers.schema().ProtectedIndices()).value();
  EXPECT_TRUE(IsValidPartitioning(p, workers.num_rows()));
  // At minimum gender and country must both appear somewhere.
  auto used = AttributesUsed(workers.schema(), p);
  EXPECT_NE(std::find(used.begin(), used.end(), worker_attrs::kGender),
            used.end());
  EXPECT_NE(std::find(used.begin(), used.end(), worker_attrs::kCountry),
            used.end());
}

TEST(AllAttributesTest, UsesEveryAttribute) {
  Table workers = Workers(400);
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval = MakeEvaluator(&workers, *fn);
  auto algo = MakeAlgorithmByName("all-attributes").value();
  Partitioning p =
      algo->Run(eval, workers.schema().ProtectedIndices()).value();
  EXPECT_EQ(AttributesUsed(workers.schema(), p).size(), 6u);
}

TEST(AllAttributesTest, PartitionCountBoundedByCellCount) {
  Table workers = Workers(100);
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval = MakeEvaluator(&workers, *fn);
  auto algo = MakeAlgorithmByName("all-attributes").value();
  Partitioning p =
      algo->Run(eval, workers.schema().ProtectedIndices()).value();
  // With 100 workers there can be at most 100 non-empty cells.
  EXPECT_LE(p.size(), 100u);
  EXPECT_GT(p.size(), 1u);
}

TEST(RandomBaselinesTest, SeedChangesChoice) {
  Table workers = Workers(150);
  auto fn = MakeAlphaFunction("f3", 0.7);
  UnfairnessEvaluator eval = MakeEvaluator(&workers, *fn);
  std::vector<size_t> attrs = workers.schema().ProtectedIndices();
  // Across several seeds the first split attribute should vary.
  std::set<size_t> first_attrs;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    AlgorithmConfig config;
    config.seed = seed;
    auto algo = MakeAlgorithmByName("r-balanced", config).value();
    Partitioning p = algo->Run(eval, attrs).value();
    ASSERT_FALSE(p.empty());
    ASSERT_FALSE(p[0].path.empty());
    first_attrs.insert(p[0].path[0].attr_index);
  }
  EXPECT_GT(first_attrs.size(), 1u);
}

TEST(GreedyVsRandomTest, WorstSelectorNeverWorseOnFirstSplit) {
  // The first split of balanced maximizes average pairwise EMD by
  // construction, so it must be >= the first split of any r-balanced run.
  Table workers = Workers(300);
  auto f6 = MakeF6(5);
  UnfairnessEvaluator eval = MakeEvaluator(&workers, *f6);
  std::vector<size_t> attrs = workers.schema().ProtectedIndices();

  auto first_split_avg = [&](const std::string& name, uint64_t seed) {
    AlgorithmConfig config;
    config.seed = seed;
    auto algo = MakeAlgorithmByName(name, config).value();
    Partitioning p = algo->Run(eval, attrs).value();
    return eval.AveragePairwiseUnfairness(p).value();
  };
  double greedy = first_split_avg("balanced", 0);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    EXPECT_GE(greedy + 1e-9, first_split_avg("r-balanced", seed));
  }
}

}  // namespace
}  // namespace fairrank
