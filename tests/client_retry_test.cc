// Wire-level tests for HttpClient's stale-connection retry policy
// (src/server/client.cc): a reused connection the server closed while idle
// is retried once on a fresh socket, but the moment any response bytes
// were received for a request the retry is off — replaying it could run a
// POST's side effects twice. Drives the real client against a scripted
// raw-socket server, so the policy is pinned at the byte level.

#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/status.h"

namespace fairrank {
namespace {

/// A listening socket on an ephemeral loopback port.
class TestListener {
 public:
  TestListener() {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    int one = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(bind(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)),
              0);
    EXPECT_EQ(listen(fd_, 4), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                          &len),
              0);
    port_ = ntohs(addr.sin_port);
  }
  ~TestListener() {
    if (fd_ >= 0) close(fd_);
  }

  int Accept() { return accept(fd_, nullptr, nullptr); }

  /// Accept with a timeout; -1 when nothing connected in time.
  int AcceptWithTimeout(int timeout_ms) {
    struct timeval tv;
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    fd_set fds;
    FD_ZERO(&fds);
    FD_SET(fd_, &fds);
    if (select(fd_ + 1, &fds, nullptr, nullptr, &tv) <= 0) return -1;
    return Accept();
  }

  int port() const { return port_; }

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Reads from `fd` until the head terminator; returns everything read.
std::string ReadRequestHead(int fd) {
  std::string data;
  char chunk[1024];
  while (data.find("\r\n\r\n") == std::string::npos) {
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    data.append(chunk, static_cast<size_t>(n));
  }
  return data;
}

void SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

std::string OkResponse(const std::string& body) {
  return "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: " +
         std::to_string(body.size()) +
         "\r\nConnection: keep-alive\r\n\r\n" + body;
}

TEST(HttpClientRetryTest, RetriesOnceWhenServerClosedIdleConnection) {
  TestListener listener;
  std::atomic<int> accepted{0};

  std::thread server([&] {
    // Connection 1: answer one request, then close while idle.
    int conn = listener.Accept();
    ASSERT_GE(conn, 0);
    ++accepted;
    ASSERT_NE(ReadRequestHead(conn).find("GET /one"), std::string::npos);
    SendAll(conn, OkResponse("first"));
    close(conn);
    // Connection 2: the retry of request two lands here.
    conn = listener.AcceptWithTimeout(5000);
    ASSERT_GE(conn, 0);
    ++accepted;
    ASSERT_NE(ReadRequestHead(conn).find("GET /two"), std::string::npos);
    SendAll(conn, OkResponse("second"));
    close(conn);
  });

  HttpClient client("127.0.0.1", listener.port());
  StatusOr<HttpFetchResult> first = client.Fetch("GET", "/one", "", 5000);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status_code, 200);
  EXPECT_EQ(first->body, "first");

  // The server closed the kept-alive socket between requests: the client
  // must notice the stale connection and transparently retry once.
  StatusOr<HttpFetchResult> second = client.Fetch("GET", "/two", "", 5000);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->body, "second");
  EXPECT_EQ(client.connects(), 2u);

  server.join();
  EXPECT_EQ(accepted.load(), 2);
}

TEST(HttpClientRetryTest, NoRetryOncePartialResponseBytesArrived) {
  TestListener listener;
  std::atomic<int> extra_connections{0};

  std::thread server([&] {
    int conn = listener.Accept();
    ASSERT_GE(conn, 0);
    ASSERT_NE(ReadRequestHead(conn).find("POST /pay"), std::string::npos);
    SendAll(conn, OkResponse("charged-once"));
    // Second request on the same connection: receive it, leak HALF a
    // status line, then die. The server demonstrably processed the
    // request, so the client must surface an error — a retry here could
    // charge the customer twice.
    ASSERT_FALSE(ReadRequestHead(conn).empty());
    SendAll(conn, "HTTP/1.1 2");
    close(conn);
    // A retry would show up as a fresh connection; give it a moment.
    if (listener.AcceptWithTimeout(300) >= 0) ++extra_connections;
  });

  HttpClient client("127.0.0.1", listener.port());
  StatusOr<HttpFetchResult> first =
      client.Fetch("POST", "/pay", "amount=5", 5000);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->body, "charged-once");

  StatusOr<HttpFetchResult> second =
      client.Fetch("POST", "/pay", "amount=5", 5000);
  ASSERT_FALSE(second.ok())
      << "a request with received response bytes must fail, not retry";
  EXPECT_EQ(client.connects(), 1u) << "client must not have reconnected";

  server.join();
  EXPECT_EQ(extra_connections.load(), 0)
      << "client retried a request the server had already answered in part";
}

TEST(HttpClientRetryTest, PipelinedExtraBytesSuppressRetryAfterAbort) {
  TestListener listener;
  std::atomic<int> extra_connections{0};

  std::thread server([&] {
    int conn = listener.Accept();
    ASSERT_GE(conn, 0);
    ASSERT_FALSE(ReadRequestHead(conn).empty());
    // Respond, then leak one pipelined byte past the Content-Length (a
    // desynchronized or malicious server) and abort with an RST
    // (SO_LINGER 0). The stray byte lands in the client's carry buffer:
    // response bytes were received on this socket, so the next request
    // must NOT be retried whichever syscall surfaces the reset.
    SendAll(conn, OkResponse("ok") + "X");
    struct linger hard_close;
    hard_close.l_onoff = 1;
    hard_close.l_linger = 0;
    setsockopt(conn, SOL_SOCKET, SO_LINGER, &hard_close, sizeof(hard_close));
    close(conn);
    if (listener.AcceptWithTimeout(300) >= 0) ++extra_connections;
  });

  HttpClient client("127.0.0.1", listener.port());
  StatusOr<HttpFetchResult> first = client.Fetch("POST", "/pay", "a=1", 5000);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->body, "ok");

  // Let the RST land so the second attempt fails on a reused-but-dead
  // socket rather than racing the close.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  StatusOr<HttpFetchResult> second =
      client.Fetch("POST", "/pay", "a=1", 5000);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(client.connects(), 1u);

  server.join();
  EXPECT_EQ(extra_connections.load(), 0)
      << "carried response bytes must veto the stale retry";
}

}  // namespace
}  // namespace fairrank
