#include "fairness/agglomerative.h"

#include <gtest/gtest.h>

#include "fairness/registry.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

UnfairnessEvaluator MakeEval(const Table* table, const ScoringFunction& fn) {
  return UnfairnessEvaluator::Make(table, fn.ScoreAll(*table).value(),
                                   EvaluatorOptions())
      .value();
}

Table Workers(size_t n, uint64_t seed = 42) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = seed;
  return GenerateWorkers(options).value();
}

TEST(AgglomerativeTest, RegisteredAsMerge) {
  auto algo = MakeAlgorithmByName("merge");
  ASSERT_TRUE(algo.ok());
  EXPECT_EQ((*algo)->Name(), "merge");
}

TEST(AgglomerativeTest, ReturnsValidPartitioning) {
  Table workers = Workers(200);
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval = MakeEval(&workers, *fn);
  auto algo = MakeAgglomerativeAlgorithm();
  auto p = algo->Run(eval, workers.schema().ProtectedIndices());
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(IsValidPartitioning(*p, workers.num_rows()));
}

TEST(AgglomerativeTest, AtLeastAsUnfairAsAllAttributes) {
  // merge starts from the all-attributes partitioning and only commits
  // average-raising merges, so its result dominates the baseline.
  for (uint64_t seed : {1u, 2u, 3u}) {
    Table workers = Workers(300, seed);
    for (double alpha : {0.5, 1.0}) {
      auto fn = MakeAlphaFunction("f", alpha);
      UnfairnessEvaluator eval = MakeEval(&workers, *fn);
      std::vector<size_t> attrs = workers.schema().ProtectedIndices();
      auto baseline = MakeAlgorithmByName("all-attributes").value();
      double baseline_u =
          eval.AveragePairwiseUnfairness(baseline->Run(eval, attrs).value())
              .value();
      auto merge = MakeAgglomerativeAlgorithm();
      double merge_u =
          eval.AveragePairwiseUnfairness(merge->Run(eval, attrs).value())
              .value();
      EXPECT_GE(merge_u + 1e-9, baseline_u)
          << "seed=" << seed << " alpha=" << alpha;
    }
  }
}

TEST(AgglomerativeTest, MergedPartitionsCarryUnionLabels) {
  // Under f6 every cell is either a high-score (male) or low-score (female)
  // cluster; merging same-treatment cells raises the average, so merges
  // must fire and carry union labels.
  Table workers = Workers(200);
  auto f6 = MakeF6(3);
  UnfairnessEvaluator eval = MakeEval(&workers, *f6);
  auto algo = MakeAgglomerativeAlgorithm();
  std::vector<size_t> attrs = workers.schema().ProtectedIndices();
  attrs.resize(3);  // Keep the initial cell count moderate.
  Partitioning p = algo->Run(eval, attrs).value();
  bool saw_merged = false;
  for (const Partition& part : p) {
    if (part.is_merged()) {
      saw_merged = true;
      EXPECT_GE(part.merged_paths.size(), 2u);
      std::string label = PartitionLabel(workers.schema(), part);
      EXPECT_NE(label.find(" | "), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_merged);
}

TEST(AgglomerativeTest, RecoversClusterStructureUnderF6) {
  // Bottom-up merging of a full split under f6 should approach the
  // two-cluster optimum (~0.8), far above the all-attributes baseline —
  // a partitioning no tree algorithm can express (cells merged across
  // different gender prefixes stay separate there).
  Table workers = Workers(400);
  auto f6 = MakeF6(5);
  UnfairnessEvaluator eval = MakeEval(&workers, *f6);
  std::vector<size_t> attrs = workers.schema().ProtectedIndices();
  auto baseline = MakeAlgorithmByName("all-attributes").value();
  double baseline_u =
      eval.AveragePairwiseUnfairness(baseline->Run(eval, attrs).value())
          .value();
  auto merge = MakeAgglomerativeAlgorithm();
  double merge_u =
      eval.AveragePairwiseUnfairness(merge->Run(eval, attrs).value()).value();
  EXPECT_GT(merge_u, baseline_u + 0.2);
  EXPECT_GT(merge_u, 0.7);
}

TEST(AgglomerativeTest, MergedRowsStaySorted) {
  Table workers = Workers(120);
  auto fn = MakeAlphaFunction("f2", 0.3);
  UnfairnessEvaluator eval = MakeEval(&workers, *fn);
  auto algo = MakeAgglomerativeAlgorithm();
  Partitioning p =
      algo->Run(eval, workers.schema().ProtectedIndices()).value();
  for (const Partition& part : p) {
    for (size_t i = 1; i < part.rows.size(); ++i) {
      EXPECT_LT(part.rows[i - 1], part.rows[i]);
    }
  }
}

TEST(AgglomerativeTest, EmptyAttributesYieldRoot) {
  Table workers = Workers(50);
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval = MakeEval(&workers, *fn);
  auto algo = MakeAgglomerativeAlgorithm();
  auto p = algo->Run(eval, {});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 1u);
}

TEST(AgglomerativeTest, KeepsCleanSeparationIntact) {
  // Under f6, a gender-only search space gives two perfectly separated
  // partitions; merge must not collapse them (merging would drop the
  // average from 0.8 to 0).
  Table workers = Workers(300);
  auto f6 = MakeF6(5);
  UnfairnessEvaluator eval = MakeEval(&workers, *f6);
  size_t gender =
      workers.schema().FindIndex(worker_attrs::kGender).value();
  auto algo = MakeAgglomerativeAlgorithm();
  Partitioning p = algo->Run(eval, {gender}).value();
  EXPECT_EQ(p.size(), 2u);
}

TEST(AgglomerativeTest, AttributesUsedIncludesMergedPaths) {
  Table workers = Workers(150);
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval = MakeEval(&workers, *fn);
  auto algo = MakeAgglomerativeAlgorithm();
  Partitioning p =
      algo->Run(eval, workers.schema().ProtectedIndices()).value();
  // The full split used all six attributes; merging must not lose that.
  EXPECT_EQ(AttributesUsed(workers.schema(), p).size(), 6u);
}

}  // namespace
}  // namespace fairrank
