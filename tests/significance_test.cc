#include "fairness/significance.h"

#include <gtest/gtest.h>

#include "fairness/auditor.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"

namespace fairrank {
namespace {

struct Audited {
  Table table;
  std::vector<double> scores;
  Partitioning partitioning;
};

Audited Audit(const ScoringFunction& fn, size_t n = 400,
              const std::string& algorithm = "balanced") {
  GeneratorOptions gen;
  gen.num_workers = n;
  gen.seed = 15;
  Table workers = GenerateWorkers(gen).value();
  std::vector<double> scores = fn.ScoreAll(workers).value();
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = algorithm;
  AuditResult result = auditor.Audit(fn, options).value();
  return {std::move(workers), std::move(scores),
          std::move(result.partitioning)};
}

UnfairnessEvaluator MakeEval(const Audited& a) {
  return UnfairnessEvaluator::Make(&a.table, a.scores, EvaluatorOptions())
      .value();
}

TEST(PermutationTest, BiasedFunctionIsSignificant) {
  auto f6 = MakeF6(3);
  Audited a = Audit(*f6);
  UnfairnessEvaluator eval = MakeEval(a);
  auto result = PermutationTestUnfairness(eval, a.partitioning, 99, 7);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Gender fully determines f6's score range: nothing in the null comes
  // close.
  EXPECT_LE(result->p_value, 0.011);
  EXPECT_LT(result->null_mean, result->observed / 2.0);
}

TEST(PermutationTest, RandomFunctionOnFixedSplitIsNotSignificant) {
  // Audit a *fixed* two-way gender split under a random linear function:
  // permuting scores should produce comparable unfairness often.
  GeneratorOptions gen;
  gen.num_workers = 400;
  gen.seed = 15;
  Table workers = GenerateWorkers(gen).value();
  auto f1 = MakeAlphaFunction("f1", 0.5);
  std::vector<double> scores = f1->ScoreAll(workers).value();
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&workers, scores, EvaluatorOptions()).value();
  // Fixed gender partitioning, not the maximized one.
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "all-attributes";
  options.protected_attributes = {"Gender"};
  AuditResult audit = auditor.Audit(*f1, options).value();
  auto result = PermutationTestUnfairness(eval, audit.partitioning, 99, 7);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->p_value, 0.05);
}

TEST(PermutationTest, Deterministic) {
  auto f7 = MakeF7(3);
  Audited a = Audit(*f7, 200);
  UnfairnessEvaluator eval = MakeEval(a);
  auto r1 = PermutationTestUnfairness(eval, a.partitioning, 50, 11).value();
  auto r2 = PermutationTestUnfairness(eval, a.partitioning, 50, 11).value();
  EXPECT_DOUBLE_EQ(r1.p_value, r2.p_value);
  EXPECT_DOUBLE_EQ(r1.null_mean, r2.null_mean);
}

TEST(PermutationTest, InvalidInputsFail) {
  auto f6 = MakeF6(3);
  Audited a = Audit(*f6, 100);
  UnfairnessEvaluator eval = MakeEval(a);
  EXPECT_FALSE(PermutationTestUnfairness(eval, a.partitioning, 0, 1).ok());
  Partitioning bad;
  EXPECT_FALSE(PermutationTestUnfairness(eval, bad, 10, 1).ok());
}

TEST(BootstrapTest, IntervalCoversObservedForStableSplit) {
  auto f6 = MakeF6(3);
  Audited a = Audit(*f6);
  UnfairnessEvaluator eval = MakeEval(a);
  auto result = BootstrapUnfairness(eval, a.partitioning, 100, 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->ci_lo, result->ci_hi);
  // f6's separation is extreme and stable: a tight interval around ~0.8
  // that contains the observed value.
  EXPECT_GE(result->observed, result->ci_lo - 0.05);
  EXPECT_LE(result->observed, result->ci_hi + 0.05);
  EXPECT_NEAR(result->mean, result->observed, 0.05);
}

TEST(BootstrapTest, Deterministic) {
  auto f7 = MakeF7(3);
  Audited a = Audit(*f7, 200);
  UnfairnessEvaluator eval = MakeEval(a);
  auto r1 = BootstrapUnfairness(eval, a.partitioning, 50, 9).value();
  auto r2 = BootstrapUnfairness(eval, a.partitioning, 50, 9).value();
  EXPECT_DOUBLE_EQ(r1.mean, r2.mean);
  EXPECT_DOUBLE_EQ(r1.ci_lo, r2.ci_lo);
  EXPECT_DOUBLE_EQ(r1.ci_hi, r2.ci_hi);
}

TEST(BootstrapTest, WiderIntervalForSmallerSample) {
  auto f1 = MakeAlphaFunction("f1", 0.5);
  Audited small = Audit(*f1, 80);
  Audited large = Audit(*f1, 2000);
  UnfairnessEvaluator eval_small = MakeEval(small);
  UnfairnessEvaluator eval_large = MakeEval(large);
  auto r_small =
      BootstrapUnfairness(eval_small, small.partitioning, 100, 3).value();
  auto r_large =
      BootstrapUnfairness(eval_large, large.partitioning, 100, 3).value();
  EXPECT_GT(r_small.ci_hi - r_small.ci_lo, 0.0);
  // More data -> tighter relative interval (compare normalized widths).
  double width_small = (r_small.ci_hi - r_small.ci_lo) / r_small.observed;
  double width_large = (r_large.ci_hi - r_large.ci_lo) / r_large.observed;
  EXPECT_LT(width_large, width_small);
}

TEST(BootstrapTest, InvalidInputsFail) {
  auto f6 = MakeF6(3);
  Audited a = Audit(*f6, 100);
  UnfairnessEvaluator eval = MakeEval(a);
  EXPECT_FALSE(BootstrapUnfairness(eval, a.partitioning, 0, 1).ok());
  Partitioning bad;
  EXPECT_FALSE(BootstrapUnfairness(eval, bad, 10, 1).ok());
}

}  // namespace
}  // namespace fairrank
