// End-to-end scenarios spanning the data pipeline, marketplace, audit, and
// repair modules — miniature versions of the paper's experiments.

#include <sstream>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "fairness/auditor.h"
#include "fairness/report.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/ranking.h"
#include "marketplace/worker.h"
#include "repair/repair.h"

namespace fairrank {
namespace {

TEST(IntegrationTest, Figure1ToyPipeline) {
  // Exhaustive, balanced and unbalanced on the Figure 1 toy data; the
  // exhaustive optimum must be the paper's partitioning, and unbalanced
  // must reach the same unfairness.
  Table table = MakeToyTable().value();
  LinearScoringFunction score("toy", {{"Score", 1.0}});
  FairnessAuditor auditor(&table);

  AuditOptions exhaustive;
  exhaustive.algorithm = "exhaustive";
  AuditResult optimum = auditor.Audit(score, exhaustive).value();
  EXPECT_EQ(optimum.partitions.size(), 4u);

  AuditOptions unbalanced;
  unbalanced.algorithm = "unbalanced";
  AuditResult heuristic = auditor.Audit(score, unbalanced).value();
  EXPECT_NEAR(heuristic.unfairness, optimum.unfairness, 1e-9);
}

TEST(IntegrationTest, MiniTable1Shape) {
  // 200-worker miniature of Table 1: f4/f5 (single observed attribute) must
  // exhibit at least as much unfairness as the mixed functions for the
  // paper's algorithms. Uses the same uniform generator as the paper.
  GeneratorOptions gen;
  gen.num_workers = 200;
  gen.seed = 2024;
  Table workers = GenerateWorkers(gen).value();
  FairnessAuditor auditor(&workers);

  auto fns = MakePaperRandomFunctions();
  std::vector<double> unfairness;
  for (const auto& fn : fns) {
    AuditOptions options;
    options.algorithm = "unbalanced";
    unfairness.push_back(auditor.Audit(*fn, options).value().unfairness);
  }
  // f4 (index 3) and f5 (index 4) should top f1..f3 (allow small slack —
  // one random dataset, small n).
  double mixed_max =
      std::max({unfairness[0], unfairness[1], unfairness[2]});
  EXPECT_GT(unfairness[3] + 0.02, mixed_max);
  EXPECT_GT(unfairness[4] + 0.02, mixed_max);
}

TEST(IntegrationTest, MiniTable3BiasedBeatsRandom) {
  // Biased functions must show far higher unfairness than random linear
  // functions ("the average EMD is much higher compared to the functions
  // used in our simulation experiment").
  GeneratorOptions gen;
  gen.num_workers = 300;
  gen.seed = 7;
  Table workers = GenerateWorkers(gen).value();
  FairnessAuditor auditor(&workers);

  AuditOptions options;
  options.algorithm = "balanced";
  double random_unfairness =
      auditor.Audit(*MakeAlphaFunction("f1", 0.5), options).value().unfairness;
  for (const auto& biased : MakePaperBiasedFunctions(55)) {
    double biased_unfairness =
        auditor.Audit(*biased, options).value().unfairness;
    EXPECT_GT(biased_unfairness, random_unfairness) << biased->Name();
  }
}

TEST(IntegrationTest, CsvIngestThenAudit) {
  // External data path: write a worker population to CSV, read it back, and
  // audit the scores carried in the file.
  GeneratorOptions gen;
  gen.num_workers = 150;
  gen.seed = 99;
  Table workers = GenerateWorkers(gen).value();
  std::ostringstream buffer;
  ASSERT_TRUE(WriteCsv(buffer, workers).ok());

  std::istringstream in(buffer.str());
  Table round = ReadCsv(in, workers.schema()).value();
  ASSERT_EQ(round.num_rows(), workers.num_rows());

  FairnessAuditor auditor(&round);
  AuditOptions options;
  options.algorithm = "unbalanced";
  auto result = auditor.Audit(*MakeAlphaFunction("f1", 0.5), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsValidPartitioning(result->partitioning, round.num_rows()));
}

TEST(IntegrationTest, RankThenAuditThenRepair) {
  // Full marketplace loop: rank workers for a task with a biased function,
  // audit the scores, repair, and verify the repaired ranking is fair.
  GeneratorOptions gen;
  gen.num_workers = 500;
  gen.seed = 11;
  Table workers = GenerateWorkers(gen).value();
  auto f7 = MakeF7(31);

  RankingEngine engine(&workers);
  auto ranking = engine.TopK(*f7, 10).value();
  ASSERT_EQ(ranking.size(), 10u);
  // Under f7, every top-10 worker scores > 0.8.
  for (const RankedWorker& r : ranking) EXPECT_GT(r.score, 0.8);

  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "balanced";
  AuditResult audit = auditor.Audit(*f7, options).value();
  EXPECT_GT(audit.unfairness, 0.3);

  std::vector<double> scores = f7->ScoreAll(workers).value();
  auto evaluation = EvaluateRepair(workers, audit.partitioning, scores,
                                   *MakeQuantileRepair(), EvaluatorOptions());
  ASSERT_TRUE(evaluation.ok());
  EXPECT_LT(evaluation->unfairness_after, 0.05);

  // Re-audit repaired scores over the attributes the repair covered
  // (gender and country — the ones balanced split on): every partitioning
  // of these attributes is a union of repaired cells, so unfairness must
  // collapse. (Auditing over *all* attributes can still surface residual
  // subgroup noise on unrepaired attributes — that is the subgroup-fairness
  // point of the paper, demonstrated in bench/repair_sweep.)
  AuditOptions restricted = options;
  restricted.protected_attributes = {worker_attrs::kGender,
                                     worker_attrs::kCountry};
  AuditResult reaudit =
      auditor
          .AuditScores(evaluation->repaired_scores, "repaired f7", restricted)
          .value();
  EXPECT_LT(reaudit.unfairness, 0.1);
  EXPECT_LT(reaudit.unfairness, audit.unfairness / 2.0);
}

TEST(IntegrationTest, ReportRendersEndToEnd) {
  GeneratorOptions gen;
  gen.num_workers = 100;
  gen.seed = 5;
  Table workers = GenerateWorkers(gen).value();
  FairnessAuditor auditor(&workers);
  AuditOptions options;
  options.algorithm = "balanced";
  AuditResult result = auditor.Audit(*MakeF6(3), options).value();
  ReportOptions report;
  report.include_histograms = true;
  std::string text = FormatAuditReport(result, report);
  EXPECT_NE(text.find("Gender=Male"), std::string::npos);
  EXPECT_NE(text.find("#"), std::string::npos);
  EXPECT_FALSE(FormatAuditCsvRow(result).empty());
}

TEST(IntegrationTest, AllPaperAlgorithmsAgreeOnF6Direction) {
  // Every algorithm must flag f6 as far more unfair than f1 even if their
  // exact partitionings differ.
  GeneratorOptions gen;
  gen.num_workers = 300;
  gen.seed = 21;
  Table workers = GenerateWorkers(gen).value();
  FairnessAuditor auditor(&workers);
  for (const std::string& name : PaperAlgorithmNames()) {
    AuditOptions options;
    options.algorithm = name;
    options.seed = 3;
    double f1 = auditor.Audit(*MakeAlphaFunction("f1", 0.5), options)
                    .value()
                    .unfairness;
    double f6 = auditor.Audit(*MakeF6(5), options).value().unfairness;
    EXPECT_GT(f6, f1) << name;
  }
}

}  // namespace
}  // namespace fairrank
