#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "fairness/evaluator.h"
#include "fairness/registry.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"

namespace fairrank {
namespace {

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  const size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, 4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, ZeroElementsNoCall) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  std::vector<int> hits(100, 0);
  ParallelFor(hits.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ParallelForTest, TinyRangeStaysInline) {
  // Ranges below the per-thread minimum must not spawn (observable only
  // via correctness here; the point is it doesn't crash or double-run).
  std::vector<int> hits(5, 0);
  ParallelFor(hits.size(), 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(HardwareThreadsTest, AtLeastOne) { EXPECT_GE(HardwareThreads(), 1); }

TEST(ParallelEvaluatorTest, SameResultAcrossThreadCounts) {
  GeneratorOptions gen;
  gen.num_workers = 2000;
  gen.seed = 33;
  Table workers = GenerateWorkers(gen).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  std::vector<double> scores = fn->ScoreAll(workers).value();

  // A large partitioning (full split) to exercise the pair loop.
  auto build = [&](int threads) {
    EvaluatorOptions options;
    options.num_threads = threads;
    UnfairnessEvaluator eval =
        UnfairnessEvaluator::Make(&workers, scores, options).value();
    auto algo = MakeAlgorithmByName("all-attributes").value();
    Partitioning p =
        algo->Run(eval, workers.schema().ProtectedIndices()).value();
    return eval.AveragePairwiseUnfairness(p).value();
  };
  double serial = build(1);
  for (int threads : {2, 4, 8}) {
    EXPECT_DOUBLE_EQ(serial, build(threads)) << threads;
  }
}

TEST(ParallelEvaluatorTest, AuditMatchesSerial) {
  GeneratorOptions gen;
  gen.num_workers = 1000;
  gen.seed = 44;
  Table workers = GenerateWorkers(gen).value();
  auto fn = MakeAlphaFunction("f4", 1.0);
  std::vector<double> scores = fn->ScoreAll(workers).value();
  auto run = [&](int threads) {
    EvaluatorOptions options;
    options.num_threads = threads;
    UnfairnessEvaluator eval =
        UnfairnessEvaluator::Make(&workers, scores, options).value();
    auto algo = MakeAlgorithmByName("balanced").value();
    Partitioning p =
        algo->Run(eval, workers.schema().ProtectedIndices()).value();
    return eval.AveragePairwiseUnfairness(p).value();
  };
  EXPECT_DOUBLE_EQ(run(1), run(4));
}

}  // namespace
}  // namespace fairrank
