#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fairness/evaluator.h"
#include "fairness/registry.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"

namespace fairrank {
namespace {

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  const size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, 4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, ZeroElementsNoCall) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  std::vector<int> hits(100, 0);
  ParallelFor(hits.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ParallelForTest, TinyRangeStaysInline) {
  // Ranges below the per-thread minimum must not spawn (observable only
  // via correctness here; the point is it doesn't crash or double-run).
  std::vector<int> hits(5, 0);
  ParallelFor(hits.size(), 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, BodyExceptionRethrownAfterJoin) {
  const size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  EXPECT_THROW(
      ParallelFor(n, 4,
                  [&](size_t begin, size_t end) {
                    for (size_t i = begin; i < end; ++i) {
                      if (i == 7'000) throw std::runtime_error("injected");
                      hits[i].fetch_add(1);
                    }
                  }),
      std::runtime_error);
  // The range before the faulting chunk's throw still ran exactly once; no
  // index ran twice (workers were joined, not abandoned).
  for (size_t i = 0; i < n; ++i) EXPECT_LE(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, FirstExceptionByChunkIndexWins) {
  // Two chunks throw; the rethrown exception must deterministically be the
  // lowest chunk's regardless of scheduling.
  const size_t n = 10'000;
  for (int attempt = 0; attempt < 5; ++attempt) {
    try {
      ParallelFor(n, 4, [&](size_t begin, size_t) {
        throw std::runtime_error("chunk@" + std::to_string(begin));
      });
      FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk@0");
    }
  }
}

TEST(ParallelForCancellableTest, CompletesWhenUnrestricted) {
  const size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  bool complete = ParallelForCancellable(
      n, 4, CancellationToken(), Deadline::Infinite(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
  EXPECT_TRUE(complete);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForCancellableTest, PreCancelledStopsEarly) {
  CancellationSource source;
  source.RequestCancellation();
  std::atomic<size_t> processed{0};
  bool complete = ParallelForCancellable(
      100'000, 4, source.token(), Deadline::Infinite(),
      [&](size_t begin, size_t end) { processed.fetch_add(end - begin); });
  EXPECT_FALSE(complete);
  EXPECT_LT(processed.load(), 100'000u);
}

TEST(ParallelForCancellableTest, MidFlightCancellationStops) {
  CancellationSource source;
  std::atomic<size_t> processed{0};
  bool complete = ParallelForCancellable(
      1'000'000, 2, source.token(), Deadline::Infinite(),
      [&](size_t begin, size_t end) {
        processed.fetch_add(end - begin);
        source.RequestCancellation();  // First block cancels the rest.
      });
  EXPECT_FALSE(complete);
  EXPECT_LT(processed.load(), 1'000'000u);
}

TEST(ParallelForCancellableTest, ExpiredDeadlineStopsEarly) {
  std::atomic<size_t> processed{0};
  bool complete = ParallelForCancellable(
      100'000, 4, CancellationToken(), Deadline::AfterMillis(0),
      [&](size_t begin, size_t end) { processed.fetch_add(end - begin); });
  EXPECT_FALSE(complete);
  EXPECT_LT(processed.load(), 100'000u);
}

TEST(HardwareThreadsTest, AtLeastOne) { EXPECT_GE(HardwareThreads(), 1); }

TEST(ParallelEvaluatorTest, SameResultAcrossThreadCounts) {
  GeneratorOptions gen;
  gen.num_workers = 2000;
  gen.seed = 33;
  Table workers = GenerateWorkers(gen).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  std::vector<double> scores = fn->ScoreAll(workers).value();

  // A large partitioning (full split) to exercise the pair loop.
  auto build = [&](int threads) {
    EvaluatorOptions options;
    options.num_threads = threads;
    UnfairnessEvaluator eval =
        UnfairnessEvaluator::Make(&workers, scores, options).value();
    auto algo = MakeAlgorithmByName("all-attributes").value();
    Partitioning p =
        algo->Run(eval, workers.schema().ProtectedIndices()).value();
    return eval.AveragePairwiseUnfairness(p).value();
  };
  double serial = build(1);
  for (int threads : {2, 4, 8}) {
    EXPECT_DOUBLE_EQ(serial, build(threads)) << threads;
  }
}

TEST(ParallelEvaluatorTest, AuditMatchesSerial) {
  GeneratorOptions gen;
  gen.num_workers = 1000;
  gen.seed = 44;
  Table workers = GenerateWorkers(gen).value();
  auto fn = MakeAlphaFunction("f4", 1.0);
  std::vector<double> scores = fn->ScoreAll(workers).value();
  auto run = [&](int threads) {
    EvaluatorOptions options;
    options.num_threads = threads;
    UnfairnessEvaluator eval =
        UnfairnessEvaluator::Make(&workers, scores, options).value();
    auto algo = MakeAlgorithmByName("balanced").value();
    Partitioning p =
        algo->Run(eval, workers.schema().ProtectedIndices()).value();
    return eval.AveragePairwiseUnfairness(p).value();
  };
  EXPECT_DOUBLE_EQ(run(1), run(4));
}


TEST(ParallelForEachTest, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 3, 8}) {
    std::vector<std::atomic<int>> counts(100);
    ParallelForEach(100, threads,
                    [&](size_t i) { counts[i].fetch_add(1); });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1) << threads;
  }
}

TEST(ParallelForEachTest, ZeroItemsIsANoOp) {
  bool ran = false;
  ParallelForEach(0, 4, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForEachTest, SmallGridStillUsesDynamicScheduling) {
  // Unlike ParallelFor (whose min-per-thread heuristic serializes small
  // ranges), the scheduler must parallelize even a 6-item grid — suite
  // cells are few and expensive, the opposite of data-parallel loops.
  std::atomic<int> ran{0};
  ParallelForEach(6, 3, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 6);
}

TEST(ParallelForEachTest, LowestIndexExceptionWinsAndPoolDrains) {
  for (int threads : {1, 4}) {
    std::atomic<int> completed{0};
    try {
      ParallelForEach(64, threads, [&](size_t i) {
        if (i == 3 || i == 40) {
          throw std::runtime_error("task " + std::to_string(i));
        }
        completed.fetch_add(1);
      });
      FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3") << threads;
    }
    // A faulting task must not take down its worker: the rest of the grid
    // still runs.
    EXPECT_EQ(completed.load(), 62) << threads;
  }
}

}  // namespace
}  // namespace fairrank
