#include "fairness/beam.h"

#include <gtest/gtest.h>

#include "fairness/registry.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

UnfairnessEvaluator MakeEval(const Table* table, const ScoringFunction& fn) {
  return UnfairnessEvaluator::Make(table, fn.ScoreAll(*table).value(),
                                   EvaluatorOptions())
      .value();
}

Table Workers(size_t n, uint64_t seed = 42) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = seed;
  return GenerateWorkers(options).value();
}

TEST(BeamTest, RegisteredInRegistry) {
  AlgorithmConfig config;
  config.beam_width = 2;
  auto algo = MakeAlgorithmByName("beam", config);
  ASSERT_TRUE(algo.ok());
  EXPECT_EQ((*algo)->Name(), "beam");
}

TEST(BeamTest, ReturnsValidPartitioning) {
  Table workers = Workers(150);
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval = MakeEval(&workers, *fn);
  auto algo = MakeBeamAlgorithm(3);
  auto p = algo->Run(eval, workers.schema().ProtectedIndices());
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(IsValidPartitioning(*p, workers.num_rows()));
}

TEST(BeamTest, InvalidWidthFails) {
  Table workers = Workers(20);
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval = MakeEval(&workers, *fn);
  auto algo = MakeBeamAlgorithm(0);
  EXPECT_EQ(algo->Run(eval, workers.schema().ProtectedIndices())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(BeamTest, EmptyAttributesYieldRoot) {
  Table workers = Workers(30);
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval = MakeEval(&workers, *fn);
  auto algo = MakeBeamAlgorithm(3);
  auto p = algo->Run(eval, {});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 1u);
}

TEST(BeamTest, AtLeastAsGoodAsBalanced) {
  // Beam width w >= 1 explores a superset of balanced's greedy path and
  // keeps the best-so-far, so it can never return a worse partitioning.
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Table workers = Workers(200, seed);
    for (double alpha : {0.5, 1.0}) {
      auto fn = MakeAlphaFunction("f", alpha);
      UnfairnessEvaluator eval = MakeEval(&workers, *fn);
      std::vector<size_t> attrs = workers.schema().ProtectedIndices();
      auto balanced = MakeAlgorithmByName("balanced").value();
      double balanced_u =
          eval.AveragePairwiseUnfairness(balanced->Run(eval, attrs).value())
              .value();
      auto beam = MakeBeamAlgorithm(3);
      double beam_u =
          eval.AveragePairwiseUnfairness(beam->Run(eval, attrs).value())
              .value();
      EXPECT_GE(beam_u + 1e-9, balanced_u)
          << "seed=" << seed << " alpha=" << alpha;
    }
  }
}

TEST(BeamTest, RecoversGenderForF6) {
  Table workers = Workers(400);
  auto f6 = MakeF6(5);
  UnfairnessEvaluator eval = MakeEval(&workers, *f6);
  auto algo = MakeBeamAlgorithm(3);
  Partitioning p =
      algo->Run(eval, workers.schema().ProtectedIndices()).value();
  EXPECT_EQ(AttributesUsed(workers.schema(), p),
            (std::vector<std::string>{worker_attrs::kGender}));
}

TEST(BeamTest, WidthOneIsDeterministic) {
  Table workers = Workers(100);
  auto fn = MakeAlphaFunction("f2", 0.3);
  UnfairnessEvaluator eval = MakeEval(&workers, *fn);
  auto run = [&]() {
    auto algo = MakeBeamAlgorithm(1);
    return algo->Run(eval, workers.schema().ProtectedIndices()).value();
  };
  Partitioning a = run();
  Partitioning b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].rows, b[i].rows);
}

TEST(BeamTest, WiderBeamNeverHurts) {
  Table workers = Workers(200, 9);
  auto f7 = MakeF7(11);
  UnfairnessEvaluator eval = MakeEval(&workers, *f7);
  std::vector<size_t> attrs = workers.schema().ProtectedIndices();
  double previous = -1.0;
  for (int width : {1, 2, 4, 8}) {
    auto algo = MakeBeamAlgorithm(width);
    double u =
        eval.AveragePairwiseUnfairness(algo->Run(eval, attrs).value())
            .value();
    EXPECT_GE(u + 1e-9, previous) << "width=" << width;
    previous = u;
  }
}

}  // namespace
}  // namespace fairrank
