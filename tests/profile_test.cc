#include "data/profile.h"

#include <gtest/gtest.h>

#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

Table Workers(size_t n = 500, uint64_t seed = 4) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = seed;
  return GenerateWorkers(options).value();
}

TEST(ProfileTest, CoversEveryAttribute) {
  Table workers = Workers();
  auto profile = ProfileTable(workers);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->num_rows, workers.num_rows());
  EXPECT_EQ(profile->attributes.size(), 8u);
}

TEST(ProfileTest, GroupCountsSumToRows) {
  Table workers = Workers();
  TableProfile profile = ProfileTable(workers).value();
  for (const AttributeProfile& ap : profile.attributes) {
    size_t total = 0;
    double fraction_sum = 0.0;
    for (const GroupCount& g : ap.groups) {
      total += g.count;
      fraction_sum += g.fraction;
    }
    EXPECT_EQ(total, workers.num_rows()) << ap.name;
    EXPECT_NEAR(fraction_sum, 1.0, 1e-9) << ap.name;
  }
}

TEST(ProfileTest, NumericSummaries) {
  Table workers = Workers(2000);
  TableProfile profile = ProfileTable(workers).value();
  for (const AttributeProfile& ap : profile.attributes) {
    if (ap.name == worker_attrs::kLanguageTest) {
      EXPECT_GE(ap.min, 25.0);
      EXPECT_LE(ap.max, 100.0);
      EXPECT_NEAR(ap.mean, 62.5, 2.0);  // Uniform [25,100].
      EXPECT_GT(ap.stddev, 15.0);
    }
    if (ap.name == worker_attrs::kYearOfBirth) {
      EXPECT_GE(ap.min, 1950.0);
      EXPECT_LE(ap.max, 2009.0);
    }
  }
}

TEST(ProfileTest, EmptyTableFails) {
  Table empty(MakePaperWorkerSchema().value());
  EXPECT_EQ(ProfileTable(empty).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ProfileTest, FormatIncludesEveryGroup) {
  Table workers = Workers(100);
  std::string text = FormatTableProfile(ProfileTable(workers).value());
  EXPECT_NE(text.find("Gender"), std::string::npos);
  EXPECT_NE(text.find("Male"), std::string::npos);
  EXPECT_NE(text.find("Female"), std::string::npos);
  EXPECT_NE(text.find("%"), std::string::npos);
}

TEST(ScoreAssociationTest, F6PointsAtGender) {
  Table workers = Workers(800);
  auto f6 = MakeF6(7);
  std::vector<double> scores = f6->ScoreAll(workers).value();
  auto associations = ScoreAssociations(workers, scores);
  ASSERT_TRUE(associations.ok());
  ASSERT_EQ(associations->size(), 6u);
  // Sorted descending by eta^2, gender dominates.
  EXPECT_EQ((*associations)[0].attribute, worker_attrs::kGender);
  EXPECT_GT((*associations)[0].eta_squared, 0.8);
  EXPECT_LT((*associations)[1].eta_squared, 0.1);
  EXPECT_GT((*associations)[0].max_mean_gap, 0.3);
}

TEST(ScoreAssociationTest, RandomScoresShowNoAssociation) {
  Table workers = Workers(2000);
  auto f1 = MakeAlphaFunction("f1", 0.5);
  std::vector<double> scores = f1->ScoreAll(workers).value();
  auto associations = ScoreAssociations(workers, scores).value();
  for (const ScoreAssociation& a : associations) {
    EXPECT_LT(a.eta_squared, 0.02) << a.attribute;
  }
}

TEST(ScoreAssociationTest, F7SplitsAcrossGenderAndCountry) {
  // f7's bias flips sign between countries within each gender, so the
  // *marginal* single-attribute association is weak — exactly the case the
  // subgroup search exists for (and the single-attribute screen misses).
  Table workers = Workers(2000);
  auto f7 = MakeF7(7);
  std::vector<double> scores = f7->ScoreAll(workers).value();
  auto associations = ScoreAssociations(workers, scores).value();
  double gender_eta = 0.0;
  for (const ScoreAssociation& a : associations) {
    if (a.attribute == worker_attrs::kGender) gender_eta = a.eta_squared;
  }
  EXPECT_LT(gender_eta, 0.1);
}

TEST(ScoreAssociationTest, SizeMismatchFails) {
  Table workers = Workers(50);
  EXPECT_FALSE(ScoreAssociations(workers, {0.1, 0.2}).ok());
}

TEST(ScoreAssociationTest, ConstantScoresYieldZeroEta) {
  Table workers = Workers(100);
  std::vector<double> scores(workers.num_rows(), 0.5);
  auto associations = ScoreAssociations(workers, scores).value();
  for (const ScoreAssociation& a : associations) {
    EXPECT_DOUBLE_EQ(a.eta_squared, 0.0);
    EXPECT_DOUBLE_EQ(a.max_mean_gap, 0.0);
  }
}

}  // namespace
}  // namespace fairrank
