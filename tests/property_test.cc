// Property-based sweeps over randomized workloads: invariants that must hold
// for every (algorithm, scoring function, dataset seed) combination.

#include <sstream>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "fairness/registry.h"
#include "fairness/serialize.h"
#include "fairness/splitter.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

struct Workload {
  std::string algorithm;
  uint64_t data_seed;
};

std::vector<Workload> AllWorkloads() {
  std::vector<Workload> out;
  for (const std::string& algorithm : PaperAlgorithmNames()) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      out.push_back({algorithm, seed});
    }
  }
  return out;
}

std::string WorkloadName(const ::testing::TestParamInfo<Workload>& info) {
  std::string name = info.param.algorithm + "_seed" +
                     std::to_string(info.param.data_seed);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class AlgorithmPropertyTest : public ::testing::TestWithParam<Workload> {
 protected:
  void SetUp() override {
    GeneratorOptions gen;
    gen.num_workers = 150;
    gen.seed = GetParam().data_seed;
    table_ = std::make_unique<Table>(GenerateWorkers(gen).value());
  }

  UnfairnessEvaluator Eval(const ScoringFunction& fn) {
    return UnfairnessEvaluator::Make(table_.get(),
                                     fn.ScoreAll(*table_).value(),
                                     EvaluatorOptions())
        .value();
  }

  Partitioning Run(const UnfairnessEvaluator& eval) {
    AlgorithmConfig config;
    config.seed = GetParam().data_seed * 31;
    auto algo = MakeAlgorithmByName(GetParam().algorithm, config).value();
    return algo->Run(eval, table_->schema().ProtectedIndices()).value();
  }

  std::unique_ptr<Table> table_;
};

TEST_P(AlgorithmPropertyTest, PartitioningIsDisjointCover) {
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval = Eval(*fn);
  Partitioning p = Run(eval);
  EXPECT_TRUE(IsValidPartitioning(p, table_->num_rows()));
}

TEST_P(AlgorithmPropertyTest, PathsAreConsistentWithMembership) {
  // Every row of a partition must actually match every step of the
  // partition's split path.
  auto fn = MakeAlphaFunction("f2", 0.3);
  UnfairnessEvaluator eval = Eval(*fn);
  Partitioning p = Run(eval);
  for (const Partition& part : p) {
    for (size_t row : part.rows) {
      for (const SplitStep& step : part.path) {
        EXPECT_EQ(table_->GroupIndex(row, step.attr_index), step.group_index);
      }
    }
  }
}

TEST_P(AlgorithmPropertyTest, NoAttributeRepeatsOnAPath) {
  auto fn = MakeAlphaFunction("f3", 0.7);
  UnfairnessEvaluator eval = Eval(*fn);
  Partitioning p = Run(eval);
  for (const Partition& part : p) {
    std::set<size_t> seen;
    for (const SplitStep& step : part.path) {
      EXPECT_TRUE(seen.insert(step.attr_index).second)
          << "attribute repeated on path";
    }
  }
}

TEST_P(AlgorithmPropertyTest, UnfairnessIsNonNegativeAndBounded) {
  auto f6 = MakeF6(GetParam().data_seed);
  UnfairnessEvaluator eval = Eval(*f6);
  Partitioning p = Run(eval);
  double u = eval.AveragePairwiseUnfairness(p).value();
  EXPECT_GE(u, 0.0);
  // 10 bins on [0,1]: max possible pairwise EMD is 0.9.
  EXPECT_LE(u, 0.9 + 1e-9);
}

TEST_P(AlgorithmPropertyTest, ConstantScoresYieldZeroUnfairness) {
  // A constant scoring function cannot be unfair under any partitioning.
  std::vector<BiasRule> rules;
  rules.push_back({{}, 0.5, 0.5});
  BiasedScoringFunction constant("const", rules, 1);
  UnfairnessEvaluator eval = Eval(constant);
  Partitioning p = Run(eval);
  EXPECT_DOUBLE_EQ(eval.AveragePairwiseUnfairness(p).value(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlgorithmPropertyTest,
                         ::testing::ValuesIn(AllWorkloads()), WorkloadName);

// --- Permutation invariance: shuffling worker order must not change the
// --- unfairness the deterministic algorithms find.

class PermutationInvarianceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PermutationInvarianceTest, BalancedInvariantUnderRowShuffle) {
  GeneratorOptions gen;
  gen.num_workers = 120;
  gen.seed = GetParam();
  Table original = GenerateWorkers(gen).value();

  // Build a shuffled copy.
  Rng rng(GetParam() + 1000);
  std::vector<size_t> order(original.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  Table shuffled(original.schema());
  for (size_t row : order) {
    std::vector<Cell> cells;
    for (size_t a = 0; a < original.num_columns(); ++a) {
      cells.emplace_back(original.CellToString(row, a));
    }
    ASSERT_TRUE(shuffled.AppendRow(cells).ok());
  }

  auto fn = MakeAlphaFunction("f1", 0.5);
  auto run = [&](const Table& t) {
    UnfairnessEvaluator eval =
        UnfairnessEvaluator::Make(&t, fn->ScoreAll(t).value(),
                                  EvaluatorOptions())
            .value();
    auto algo = MakeAlgorithmByName("balanced").value();
    Partitioning p = algo->Run(eval, t.schema().ProtectedIndices()).value();
    return eval.AveragePairwiseUnfairness(p).value();
  };
  // CellToString truncates reals to 4 decimals, so allow a tiny tolerance.
  EXPECT_NEAR(run(original), run(shuffled), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationInvarianceTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- Bin-count sensitivity: EMD-based unfairness must be stable (not
// --- wildly divergent) across reasonable bin counts.

class BinCountTest : public ::testing::TestWithParam<int> {};

TEST_P(BinCountTest, F6UnfairnessStableAcrossBinCounts) {
  GeneratorOptions gen;
  gen.num_workers = 400;
  gen.seed = 17;
  Table workers = GenerateWorkers(gen).value();
  auto f6 = MakeF6(17);
  EvaluatorOptions options;
  options.num_bins = GetParam();
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&workers, f6->ScoreAll(workers).value(),
                                options)
          .value();
  size_t gender =
      workers.schema().FindIndex(worker_attrs::kGender).value();
  auto children = SplitPartition(
      workers, MakeRootPartition(workers.num_rows()), gender);
  Partitioning p(children.begin(), children.end());
  // True Wasserstein distance between U(0.8,1) and U(0,0.2) is 0.8; the
  // binned estimate converges to it as bins grow.
  double u = eval.AveragePairwiseUnfairness(p).value();
  EXPECT_NEAR(u, 0.8, 0.9 / GetParam() + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Bins, BinCountTest,
                         ::testing::Values(5, 10, 20, 50, 100));

// --- Round-trip fuzz: random worker tables must survive CSV and
// --- partitioning-spec round trips bit-for-bit (up to cell formatting).

class RoundTripFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripFuzzTest, CsvRoundTripPreservesEveryCell) {
  GeneratorOptions gen;
  gen.num_workers = 60 + GetParam() * 13;
  gen.seed = GetParam();
  Table original = GenerateWorkers(gen).value();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(out, original).ok());
  std::istringstream in(out.str());
  Table round = ReadCsv(in, original.schema()).value();
  ASSERT_EQ(round.num_rows(), original.num_rows());
  for (size_t row = 0; row < original.num_rows(); ++row) {
    for (size_t col = 0; col < original.num_columns(); ++col) {
      EXPECT_EQ(original.CellToString(row, col), round.CellToString(row, col));
    }
  }
}

TEST_P(RoundTripFuzzTest, SerializeRoundTripPreservesRowSets) {
  GeneratorOptions gen;
  gen.num_workers = 100;
  gen.seed = GetParam() + 50;
  Table workers = GenerateWorkers(gen).value();
  auto fn = MakeAlphaFunction("f1", 0.5);
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&workers, fn->ScoreAll(workers).value(),
                                EvaluatorOptions())
          .value();
  AlgorithmConfig config;
  config.seed = GetParam();
  auto algo = MakeAlgorithmByName("r-unbalanced", config).value();
  Partitioning p =
      algo->Run(eval, workers.schema().ProtectedIndices()).value();

  std::string text = SerializePartitioning(workers.schema(), p);
  Partitioning round = ApplyPartitioningSpec(workers, text).value();
  ASSERT_EQ(round.size(), p.size());
  for (size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(round[i].rows, p[i].rows);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace fairrank
