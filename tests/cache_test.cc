// Tests of the evaluator memoization layer (fairness/eval_cache.h): cache-on
// and cache-off runs must agree bit-for-bit across every algorithm, the byte
// cap must evict instead of erroring, tight memory budgets must degrade
// gracefully, and the counters must show the cache actually saving work.

#include "fairness/eval_cache.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "fairness/auditor.h"
#include "fairness/evaluator.h"
#include "fairness/partition.h"
#include "fairness/registry.h"
#include "marketplace/generator.h"
#include "marketplace/scoring.h"

namespace fairrank {
namespace {

Table Workers(size_t n, uint64_t seed = 20190326) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = seed;
  return GenerateWorkers(options).value();
}

std::vector<double> Scores(const Table& workers) {
  auto fn = MakeAlphaFunction("f1", 0.5);
  return fn->ScoreAll(workers).value();
}

bool SamePartitioning(const Partitioning& a, const Partitioning& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].rows != b[i].rows) return false;
  }
  return true;
}

TEST(EvalCacheTest, FingerprintIsStableAndOrderSensitiveRowSetHash) {
  EXPECT_EQ(RowSetFingerprint({1, 2, 3}), RowSetFingerprint({1, 2, 3}));
  EXPECT_NE(RowSetFingerprint({1, 2, 3}), RowSetFingerprint({1, 2, 4}));
  EXPECT_NE(RowSetFingerprint({1, 2, 3}), RowSetFingerprint({1, 2}));
  EXPECT_NE(RowSetFingerprint({}), 0u);  // Never 0, even for empty sets.
}

TEST(EvalCacheTest, SplitterAssignsFingerprintsMatchingRowSets) {
  Table workers = Workers(200);
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&workers, Scores(workers), EvaluatorOptions())
          .value();
  auto algo = MakeAlgorithmByName("all-attributes").value();
  Partitioning p =
      algo->Run(eval, workers.schema().ProtectedIndices()).value();
  ASSERT_GE(p.size(), 2u);
  for (const Partition& part : p) {
    EXPECT_NE(part.fingerprint, 0u);
    EXPECT_EQ(part.fingerprint, RowSetFingerprint(part.rows));
  }
}

TEST(EvalCacheTest, HitAndMissCountersTrackLookups) {
  EvaluatorCache cache(/*enabled=*/true, /*max_bytes=*/0);
  EXPECT_EQ(cache.FindHistogram(42), nullptr);
  auto h = std::make_shared<Histogram>(10, 0.0, 1.0);
  cache.InsertHistogram(42, h);
  EXPECT_EQ(cache.FindHistogram(42), h);
  double d = 0.0;
  EXPECT_FALSE(cache.FindDivergence(1, 2, &d));
  cache.InsertDivergence(1, 2, 0.75);
  // Symmetric key: (2, 1) must hit the (1, 2) entry.
  EXPECT_TRUE(cache.FindDivergence(2, 1, &d));
  EXPECT_DOUBLE_EQ(d, 0.75);
  EvalCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.histogram_hits, 1u);
  EXPECT_EQ(stats.histogram_misses, 1u);
  EXPECT_EQ(stats.divergence_hits, 1u);
  EXPECT_EQ(stats.divergence_misses, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.bytes_used, 0u);
}

TEST(EvalCacheTest, DisabledCacheCountsMissesButNeverStores) {
  EvaluatorCache cache(/*enabled=*/false, /*max_bytes=*/0);
  cache.InsertHistogram(42, std::make_shared<Histogram>(10, 0.0, 1.0));
  EXPECT_EQ(cache.FindHistogram(42), nullptr);
  cache.InsertDivergence(1, 2, 0.5);
  double d = 0.0;
  EXPECT_FALSE(cache.FindDivergence(1, 2, &d));
  EvalCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.histogram_hits, 0u);
  EXPECT_EQ(stats.histogram_misses, 1u);
  EXPECT_EQ(stats.divergence_misses, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes_used, 0u);
}

TEST(EvalCacheTest, ByteCapTriggersEpochEviction) {
  // Cap so small that a handful of divergence entries overflow it.
  EvaluatorCache cache(/*enabled=*/true, /*max_bytes=*/256);
  for (uint64_t i = 1; i <= 100; ++i) {
    cache.InsertDivergence(i, i + 1000, 0.5);
  }
  EvalCacheStats stats = cache.Snapshot();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_used, 256u);
  // Entries larger than the whole cap are refused outright, not thrashed.
  EvaluatorCache tiny(/*enabled=*/true, /*max_bytes=*/8);
  tiny.InsertHistogram(7, std::make_shared<Histogram>(10, 0.0, 1.0));
  EXPECT_EQ(tiny.Snapshot().entries, 0u);
}

TEST(EvalCacheTest, CacheOnAndOffAgreeBitForBitAcrossAlgorithms) {
  // 300 workers keeps the exhaustive row tractable while still producing
  // multi-attribute partitionings for every algorithm.
  Table workers = Workers(300);
  FairnessAuditor auditor(&workers);
  auto fn = MakeAlphaFunction("f1", 0.5);
  for (const std::string& algorithm : KnownAlgorithmNames()) {
    AuditOptions on;
    on.algorithm = algorithm;
    on.seed = 3;
    AuditOptions off = on;
    off.evaluator.enable_cache = false;
    AuditResult with_cache = auditor.Audit(*fn, on).value();
    AuditResult without_cache = auditor.Audit(*fn, off).value();
    // Bit-identical, not approximately equal: the cache must return exactly
    // the double the uncached path computes.
    EXPECT_EQ(with_cache.unfairness, without_cache.unfairness) << algorithm;
    EXPECT_TRUE(SamePartitioning(with_cache.partitioning,
                                 without_cache.partitioning))
        << algorithm;
    ASSERT_EQ(with_cache.worst_pairs.size(), without_cache.worst_pairs.size())
        << algorithm;
    for (size_t i = 0; i < with_cache.worst_pairs.size(); ++i) {
      EXPECT_EQ(with_cache.worst_pairs[i].distance,
                without_cache.worst_pairs[i].distance)
          << algorithm;
    }
  }
}

TEST(EvalCacheTest, CacheSavesAtLeastHalfTheHistogramBuilds) {
  Table workers = Workers(500);
  FairnessAuditor auditor(&workers);
  auto fn = MakeAlphaFunction("f1", 0.5);
  AuditOptions on;
  on.algorithm = "unbalanced";
  AuditOptions off = on;
  off.evaluator.enable_cache = false;
  AuditResult with_cache = auditor.Audit(*fn, on).value();
  AuditResult without_cache = auditor.Audit(*fn, off).value();
  // Both runs perform identical lookups (the search is deterministic), and
  // misses count actual computations in both modes. The memoized run must
  // build at most half the histograms (the >= 2x bar) and strictly fewer
  // divergences (its hit rate on this workload is just under one half).
  EXPECT_EQ(with_cache.cache.histogram_lookups(),
            without_cache.cache.histogram_lookups());
  EXPECT_EQ(with_cache.cache.divergence_lookups(),
            without_cache.cache.divergence_lookups());
  EXPECT_GT(without_cache.cache.histogram_misses, 0u);
  EXPECT_LE(2 * with_cache.cache.histogram_misses,
            without_cache.cache.histogram_misses);
  EXPECT_LT(with_cache.cache.divergence_misses,
            without_cache.cache.divergence_misses);
  EXPECT_GT(with_cache.cache.divergence_hits, 0u);
  EXPECT_GT(with_cache.cache.histogram_hits, 0u);
  EXPECT_EQ(without_cache.cache.histogram_hits, 0u);
}

TEST(EvalCacheTest, TinyByteCapEvictsButKeepsResultsIdentical) {
  Table workers = Workers(500);
  FairnessAuditor auditor(&workers);
  auto fn = MakeAlphaFunction("f1", 0.5);
  AuditOptions roomy;
  roomy.algorithm = "balanced";
  AuditOptions tight = roomy;
  tight.evaluator.cache_max_bytes = 4 * 1024;  // Forces constant eviction.
  AuditResult roomy_result = auditor.Audit(*fn, roomy).value();
  AuditResult tight_result = auditor.Audit(*fn, tight).value();
  EXPECT_GT(tight_result.cache.evictions, 0u);
  EXPECT_EQ(tight_result.unfairness, roomy_result.unfairness);
  EXPECT_TRUE(
      SamePartitioning(tight_result.partitioning, roomy_result.partitioning));
}

TEST(EvalCacheTest, TightMemoryBudgetDegradesGracefully) {
  Table workers = Workers(500);
  FairnessAuditor auditor(&workers);
  auto fn = MakeAlphaFunction("f1", 0.5);
  AuditOptions options;
  options.algorithm = "balanced";
  options.limits.max_memory_mb = 1;  // Far below what the search wants.
  StatusOr<AuditResult> result = auditor.Audit(*fn, options);
  // A tight budget is an answer, not an error: the audit returns a valid
  // (possibly truncated) partitioning and correct metrics for it.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(IsValidPartitioning(result->partitioning, workers.num_rows()));
  UnfairnessEvaluator check =
      UnfairnessEvaluator::Make(&workers, Scores(workers), EvaluatorOptions())
          .value();
  EXPECT_EQ(result->unfairness,
            check.AveragePairwiseUnfairness(result->partitioning).value());
}

TEST(EvalCacheTest, BudgetStopFreezesCacheGrowthWithoutChangingValues) {
  // A budget that trips almost immediately: the cache must stop growing
  // (latched), keep serving lookups, and keep returning exact values.
  ResourceBudget budget(/*max_nodes=*/0, /*max_memory_bytes=*/1);
  ExecutionContext context(Deadline::Infinite(), CancellationToken(), &budget);
  EvaluatorCache cache(/*enabled=*/true, /*max_bytes=*/0);
  cache.AttachContext(context);
  // Push enough entries to cross the charge batch and trip the budget.
  for (uint64_t i = 1; i <= 3000; ++i) {
    cache.InsertDivergence(i, i + 100000, static_cast<double>(i));
  }
  EvalCacheStats stats = cache.Snapshot();
  EXPECT_LT(stats.entries, 3000u);  // Growth stopped mid-way.
  // Entries stored before the stop still serve exact values.
  double d = 0.0;
  ASSERT_TRUE(cache.FindDivergence(1, 100001, &d));
  EXPECT_DOUBLE_EQ(d, 1.0);
}

TEST(EvalCacheTest, DistanceCachedAcrossRepeatedCalls) {
  Table workers = Workers(200);
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&workers, Scores(workers), EvaluatorOptions())
          .value();
  auto algo = MakeAlgorithmByName("all-attributes").value();
  Partitioning p =
      algo->Run(eval, workers.schema().ProtectedIndices()).value();
  ASSERT_GE(p.size(), 2u);
  double first = eval.Distance(p[0], p[1]).value();
  EvalCacheStats before = eval.cache_stats();
  double second = eval.Distance(p[0], p[1]).value();
  EvalCacheStats after = eval.cache_stats();
  EXPECT_EQ(first, second);
  EXPECT_EQ(after.divergence_hits, before.divergence_hits + 1);
  EXPECT_EQ(after.divergence_misses, before.divergence_misses);
}

}  // namespace
}  // namespace fairrank
