#include "stats/transportation.h"

#include <gtest/gtest.h>

namespace fairrank {
namespace {

TEST(TransportationTest, TrivialSingleNode) {
  auto plan = SolveTransportation({5}, {5}, {{2.0}});
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->total_cost, 10.0);
  ASSERT_EQ(plan->shipments.size(), 1u);
  EXPECT_EQ(plan->shipments[0].amount, 5);
}

TEST(TransportationTest, PrefersCheaperRoute) {
  // Supply node 0 can ship to demand 0 (cost 1) or demand 1 (cost 10);
  // supply node 1 the reverse. Optimal: diagonal of cost 1.
  auto plan = SolveTransportation({3, 4}, {3, 4},
                                  {{1.0, 10.0}, {10.0, 1.0}});
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->total_cost, 3.0 + 4.0);
}

TEST(TransportationTest, ForcedExpensiveRoute) {
  // Demands force splitting a supply across both destinations.
  auto plan = SolveTransportation({10}, {4, 6}, {{1.0, 2.0}});
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->total_cost, 4.0 * 1.0 + 6.0 * 2.0);
  EXPECT_EQ(plan->shipments.size(), 2u);
}

TEST(TransportationTest, ClassicThreeByThree) {
  // Known instance: optimal cost 7*2+3*4+6*3+5*1+5*4 would be suboptimal;
  // verify against a hand-checked optimum.
  std::vector<int64_t> supply = {20, 30, 25};
  std::vector<int64_t> demand = {10, 35, 30};
  std::vector<std::vector<double>> cost = {
      {2.0, 3.0, 1.0}, {5.0, 4.0, 8.0}, {5.0, 6.0, 8.0}};
  auto plan = SolveTransportation(supply, demand, cost);
  ASSERT_TRUE(plan.ok());
  // Optimum: s0->d2:20 (20), s1->d1:30 (120), s2->d0:10 (50), s2->d1:5 (30),
  // s2->d2:10 (80) = 300.
  EXPECT_DOUBLE_EQ(plan->total_cost, 300.0);
}

TEST(TransportationTest, ShipmentsSatisfyConstraints) {
  std::vector<int64_t> supply = {7, 13, 5};
  std::vector<int64_t> demand = {11, 6, 8};
  std::vector<std::vector<double>> cost = {
      {4.0, 1.0, 3.0}, {2.0, 9.0, 5.0}, {6.0, 2.0, 7.0}};
  auto plan = SolveTransportation(supply, demand, cost);
  ASSERT_TRUE(plan.ok());
  std::vector<int64_t> shipped_from(3, 0);
  std::vector<int64_t> shipped_to(3, 0);
  double recomputed = 0.0;
  for (const Shipment& s : plan->shipments) {
    EXPECT_GT(s.amount, 0);
    shipped_from[s.from] += s.amount;
    shipped_to[s.to] += s.amount;
    recomputed += static_cast<double>(s.amount) * cost[s.from][s.to];
  }
  EXPECT_EQ(shipped_from, supply);
  EXPECT_EQ(shipped_to, demand);
  EXPECT_DOUBLE_EQ(recomputed, plan->total_cost);
}

TEST(TransportationTest, ZeroSupplyNodesSkipped) {
  auto plan = SolveTransportation({0, 5}, {5, 0}, {{1.0, 1.0}, {2.0, 2.0}});
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->total_cost, 10.0);
}

TEST(TransportationTest, UnbalancedFails) {
  EXPECT_EQ(SolveTransportation({5}, {6}, {{1.0}}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TransportationTest, NegativeSupplyFails) {
  EXPECT_FALSE(SolveTransportation({-1, 6}, {5}, {{1.0}, {1.0}}).ok());
}

TEST(TransportationTest, NegativeCostFails) {
  EXPECT_FALSE(SolveTransportation({5}, {5}, {{-1.0}}).ok());
}

TEST(TransportationTest, WrongMatrixShapeFails) {
  EXPECT_FALSE(SolveTransportation({5, 5}, {10}, {{1.0}}).ok());
  EXPECT_FALSE(SolveTransportation({5}, {2, 3}, {{1.0}}).ok());
}

TEST(TransportationTest, EmptyInputsFail) {
  EXPECT_FALSE(SolveTransportation({}, {}, {}).ok());
}

TEST(TransportationTest, AllZeroInstance) {
  auto plan = SolveTransportation({0}, {0}, {{3.0}});
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->total_cost, 0.0);
  EXPECT_TRUE(plan->shipments.empty());
}

}  // namespace
}  // namespace fairrank
