#include "marketplace/generator.h"

#include <gtest/gtest.h>

#include "marketplace/worker.h"

namespace fairrank {
namespace {

TEST(GeneratorTest, ProducesRequestedRows) {
  GeneratorOptions options;
  options.num_workers = 250;
  auto table = GenerateWorkers(options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 250u);
  EXPECT_EQ(table->num_columns(), 8u);
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  GeneratorOptions options;
  options.num_workers = 50;
  options.seed = 77;
  auto a = GenerateWorkers(options);
  auto b = GenerateWorkers(options);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t row = 0; row < a->num_rows(); ++row) {
    for (size_t col = 0; col < a->num_columns(); ++col) {
      EXPECT_EQ(a->CellToString(row, col), b->CellToString(row, col));
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions a_options;
  a_options.num_workers = 50;
  a_options.seed = 1;
  GeneratorOptions b_options = a_options;
  b_options.seed = 2;
  auto a = GenerateWorkers(a_options);
  auto b = GenerateWorkers(b_options);
  ASSERT_TRUE(a.ok() && b.ok());
  int differing = 0;
  for (size_t row = 0; row < a->num_rows(); ++row) {
    if (a->CellToString(row, 0) != b->CellToString(row, 0) ||
        a->CellToString(row, 6) != b->CellToString(row, 6)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 10);
}

TEST(GeneratorTest, ValuesInDomains) {
  GeneratorOptions options;
  options.num_workers = 500;
  options.seed = 5;
  auto table = GenerateWorkers(options);
  ASSERT_TRUE(table.ok());
  const Schema& schema = table->schema();
  size_t yob = schema.FindIndex(worker_attrs::kYearOfBirth).value();
  size_t exp = schema.FindIndex(worker_attrs::kYearsExperience).value();
  size_t lt = schema.FindIndex(worker_attrs::kLanguageTest).value();
  size_t ar = schema.FindIndex(worker_attrs::kApprovalRate).value();
  for (size_t row = 0; row < table->num_rows(); ++row) {
    int64_t year = table->column(yob).IntAt(row);
    EXPECT_GE(year, 1950);
    EXPECT_LE(year, 2009);
    int64_t experience = table->column(exp).IntAt(row);
    EXPECT_GE(experience, 0);
    EXPECT_LE(experience, 30);
    double test_score = table->column(lt).RealAt(row);
    EXPECT_GE(test_score, 25.0);
    EXPECT_LT(test_score, 100.0);
    double approval = table->column(ar).RealAt(row);
    EXPECT_GE(approval, 25.0);
    EXPECT_LT(approval, 100.0);
  }
}

TEST(GeneratorTest, RoughlyUniformCategories) {
  GeneratorOptions options;
  options.num_workers = 6000;
  options.seed = 9;
  auto table = GenerateWorkers(options);
  ASSERT_TRUE(table.ok());
  size_t gender = table->schema().FindIndex(worker_attrs::kGender).value();
  int males = 0;
  for (size_t row = 0; row < table->num_rows(); ++row) {
    if (table->column(gender).CodeAt(row) == 0) ++males;
  }
  EXPECT_NEAR(static_cast<double>(males) / 6000.0, 0.5, 0.03);
}

TEST(GeneratorTest, AppendRandomWorkersExtends) {
  GeneratorOptions options;
  options.num_workers = 10;
  auto table = GenerateWorkers(options);
  ASSERT_TRUE(table.ok());
  Rng rng(123);
  ASSERT_TRUE(AppendRandomWorkers(&table.value(), 15, &rng).ok());
  EXPECT_EQ(table->num_rows(), 25u);
}

}  // namespace
}  // namespace fairrank
