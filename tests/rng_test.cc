#include "common/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace fairrank {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1'000'000) != b.UniformInt(0, 1'000'000)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 40);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntHitsBothEndpoints) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformDoubleRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(13);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.UniformIndex(5)];
  for (int c : counts) EXPECT_GT(c, 800);  // ~1000 each.
}

TEST(RngTest, BernoulliApproximatesP) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(2.0, 0.5);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, WeightedIndexSingleElement) {
  Rng rng(29);
  EXPECT_EQ(rng.WeightedIndex({5.0}), 0u);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = items;
  rng.Shuffle(&items);
  EXPECT_TRUE(std::is_permutation(items.begin(), items.end(),
                                  original.begin()));
}

TEST(RngTest, ShuffleHandlesSmallInputs) {
  Rng rng(37);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  // Child stream differs from the parent's continued stream.
  int differences = 0;
  for (int i = 0; i < 20; ++i) {
    if (parent.UniformInt(0, 1'000'000) != child.UniformInt(0, 1'000'000)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 15);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(43);
  Rng b(43);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ca.UniformInt(0, 1000), cb.UniformInt(0, 1000));
  }
}

}  // namespace
}  // namespace fairrank
