#include "common/deadline.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace fairrank {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingSeconds(), std::numeric_limits<double>::infinity());
}

TEST(DeadlineTest, InfiniteFactoryMatchesDefault) {
  Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, ZeroOrNegativeMillisAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).Expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).Expired());
  EXPECT_TRUE(Deadline::AfterSeconds(0.0).Expired());
  EXPECT_TRUE(Deadline::AfterSeconds(-1.0).Expired());
}

TEST(DeadlineTest, FutureDeadlineNotYetExpired) {
  Deadline d = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(d.is_infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingSeconds(), 0.0);
  EXPECT_LE(d.RemainingSeconds(), 60.0);
}

TEST(DeadlineTest, ExpiresAfterElapsing) {
  Deadline d = Deadline::AfterMillis(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(d.Expired());
  EXPECT_LE(d.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, CopiesShareTheSameExpiry) {
  Deadline original = Deadline::AfterMillis(1);
  Deadline copy = original;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(original.Expired());
  EXPECT_TRUE(copy.Expired());
}

TEST(CancellationTest, DefaultTokenNeverCancels) {
  CancellationToken token;
  EXPECT_FALSE(token.cancel_requested());
}

TEST(CancellationTest, SourceCancelsItsTokens) {
  CancellationSource source;
  CancellationToken token = source.token();
  EXPECT_FALSE(source.cancel_requested());
  EXPECT_FALSE(token.cancel_requested());
  source.RequestCancellation();
  EXPECT_TRUE(source.cancel_requested());
  EXPECT_TRUE(token.cancel_requested());
}

TEST(CancellationTest, TokenCopiesShareTheFlag) {
  CancellationSource source;
  CancellationToken a = source.token();
  CancellationToken b = a;
  source.RequestCancellation();
  EXPECT_TRUE(a.cancel_requested());
  EXPECT_TRUE(b.cancel_requested());
}

TEST(CancellationTest, CancellationIsSticky) {
  CancellationSource source;
  source.RequestCancellation();
  source.RequestCancellation();  // Idempotent.
  EXPECT_TRUE(source.cancel_requested());
}

TEST(CancellationTest, TokenOutlivesSource) {
  CancellationToken token;
  {
    CancellationSource source;
    token = source.token();
    source.RequestCancellation();
  }
  EXPECT_TRUE(token.cancel_requested());
}

TEST(CancellationTest, IndependentSourcesDoNotInterfere) {
  CancellationSource a;
  CancellationSource b;
  a.RequestCancellation();
  EXPECT_TRUE(a.token().cancel_requested());
  EXPECT_FALSE(b.token().cancel_requested());
}


TEST(DeadlineTest, EarlierPicksTheSoonerDeadline) {
  Deadline inf = Deadline::Infinite();
  Deadline soon = Deadline::AfterSeconds(1.0);
  Deadline late = Deadline::AfterSeconds(3600.0);
  EXPECT_TRUE(Deadline::Earlier(inf, inf).is_infinite());
  EXPECT_LE(Deadline::Earlier(inf, soon).RemainingSeconds(), 1.0);
  EXPECT_LE(Deadline::Earlier(soon, inf).RemainingSeconds(), 1.0);
  EXPECT_LE(Deadline::Earlier(soon, late).RemainingSeconds(), 1.0);
  EXPECT_LE(Deadline::Earlier(late, soon).RemainingSeconds(), 1.0);
  EXPECT_GT(Deadline::Earlier(late, soon).RemainingSeconds(), 0.0);
}

}  // namespace
}  // namespace fairrank
