#include "fairness/splitter.h"

#include <gtest/gtest.h>

#include "marketplace/generator.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

TEST(SplitterTest, SplitsToyTableByGender) {
  Table table = MakeToyTable().value();
  Partition root = MakeRootPartition(table.num_rows());
  size_t gender = table.schema().FindIndex("Gender").value();
  auto children = SplitPartition(table, root, gender);
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0].size(), 6u);  // Males.
  EXPECT_EQ(children[1].size(), 4u);  // Females.
  EXPECT_EQ(children[0].path.size(), 1u);
  EXPECT_EQ(children[0].path[0].attr_index, gender);
  EXPECT_EQ(children[0].path[0].group_index, 0);
}

TEST(SplitterTest, ChildrenFormValidPartitioning) {
  Table table = MakeToyTable().value();
  Partition root = MakeRootPartition(table.num_rows());
  size_t language = table.schema().FindIndex("Language").value();
  auto children = SplitPartition(table, root, language);
  Partitioning p(children.begin(), children.end());
  EXPECT_TRUE(IsValidPartitioning(p, table.num_rows()));
}

TEST(SplitterTest, DropsEmptyGroups) {
  // A table where nobody speaks "Other".
  Schema schema = MakeToySchema().value();
  Table table(schema);
  ASSERT_TRUE(
      table.AppendRow({std::string("Male"), std::string("English"), 0.5})
          .ok());
  ASSERT_TRUE(
      table.AppendRow({std::string("Male"), std::string("Indian"), 0.5})
          .ok());
  size_t language = table.schema().FindIndex("Language").value();
  auto children =
      SplitPartition(table, MakeRootPartition(2), language);
  EXPECT_EQ(children.size(), 2u);
}

TEST(SplitterTest, SingleValuePartitionYieldsOneChild) {
  Schema schema = MakeToySchema().value();
  Table table(schema);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        table.AppendRow({std::string("Female"), std::string("Other"), 0.1})
            .ok());
  }
  size_t gender = table.schema().FindIndex("Gender").value();
  auto children = SplitPartition(table, MakeRootPartition(3), gender);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0].size(), 3u);
  EXPECT_EQ(children[0].path.size(), 1u);  // Path still extended.
}

TEST(SplitterTest, PreservesRowOrderWithinChildren) {
  Table table = MakeToyTable().value();
  size_t gender = table.schema().FindIndex("Gender").value();
  auto children =
      SplitPartition(table, MakeRootPartition(table.num_rows()), gender);
  for (const Partition& child : children) {
    for (size_t i = 1; i < child.rows.size(); ++i) {
      EXPECT_LT(child.rows[i - 1], child.rows[i]);
    }
  }
}

TEST(SplitterTest, NestedSplitExtendsPath) {
  Table table = MakeToyTable().value();
  size_t gender = table.schema().FindIndex("Gender").value();
  size_t language = table.schema().FindIndex("Language").value();
  auto by_gender =
      SplitPartition(table, MakeRootPartition(table.num_rows()), gender);
  auto males_by_language = SplitPartition(table, by_gender[0], language);
  ASSERT_EQ(males_by_language.size(), 3u);
  for (const Partition& p : males_by_language) {
    ASSERT_EQ(p.path.size(), 2u);
    EXPECT_EQ(p.path[0].attr_index, gender);
    EXPECT_EQ(p.path[1].attr_index, language);
  }
}

TEST(SplitterTest, SplitAllSplitsEveryPartition) {
  Table table = MakeToyTable().value();
  size_t gender = table.schema().FindIndex("Gender").value();
  size_t language = table.schema().FindIndex("Language").value();
  Partitioning current{MakeRootPartition(table.num_rows())};
  current = SplitAll(table, current, gender);
  EXPECT_EQ(current.size(), 2u);
  current = SplitAll(table, current, language);
  // Males: 3 languages; females: 3 languages (one row each in E/I, two in O).
  EXPECT_EQ(current.size(), 6u);
  EXPECT_TRUE(IsValidPartitioning(current, table.num_rows()));
}

TEST(SplitterTest, NumericAttributeSplitsIntoBuckets) {
  GeneratorOptions options;
  options.num_workers = 300;
  options.seed = 8;
  Table workers = GenerateWorkers(options).value();
  size_t yob =
      workers.schema().FindIndex(worker_attrs::kYearOfBirth).value();
  auto children = SplitPartition(
      workers, MakeRootPartition(workers.num_rows()), yob);
  EXPECT_EQ(children.size(), 5u);  // All buckets populated at n=300.
  Partitioning p(children.begin(), children.end());
  EXPECT_TRUE(IsValidPartitioning(p, workers.num_rows()));
}

}  // namespace
}  // namespace fairrank
