#include "stats/emd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fairrank {
namespace {

Histogram FromValues(const std::vector<double>& values, int bins = 10,
                     double lo = 0.0, double hi = 1.0) {
  Histogram h(bins, lo, hi);
  for (double v : values) h.Add(v);
  return h;
}

TEST(Emd1DTest, IdenticalHistogramsAreZero) {
  Histogram a = FromValues({0.1, 0.5, 0.9});
  ASSERT_TRUE(Emd1D(a, a).ok());
  EXPECT_DOUBLE_EQ(Emd1D(a, a).value(), 0.0);
}

TEST(Emd1DTest, AdjacentBinsSingleMass) {
  // All mass one bin apart: EMD = bin width.
  Histogram a = FromValues({0.05});
  Histogram b = FromValues({0.15});
  EXPECT_NEAR(Emd1D(a, b).value(), 0.1, 1e-12);
}

TEST(Emd1DTest, ExtremeBins) {
  // All mass at opposite ends of [0,1] with 10 bins: EMD = 0.9 (9 bins).
  Histogram a = FromValues({0.0});
  Histogram b = FromValues({1.0});
  EXPECT_NEAR(Emd1D(a, b).value(), 0.9, 1e-12);
}

TEST(Emd1DTest, Symmetry) {
  Histogram a = FromValues({0.1, 0.2, 0.3, 0.35});
  Histogram b = FromValues({0.6, 0.7, 0.95});
  EXPECT_DOUBLE_EQ(Emd1D(a, b).value(), Emd1D(b, a).value());
}

TEST(Emd1DTest, NormalizationMakesSizesIrrelevant) {
  // b has every value duplicated; distribution identical.
  Histogram a = FromValues({0.1, 0.5});
  Histogram b = FromValues({0.1, 0.1, 0.5, 0.5});
  EXPECT_NEAR(Emd1D(a, b).value(), 0.0, 1e-12);
}

TEST(Emd1DTest, PaperF6Scenario) {
  // f6: males uniform in (0.8, 1], females uniform in [0, 0.2). With 10
  // bins the distance is ~0.8 — exactly the balanced row of Table 3.
  Rng rng(99);
  std::vector<double> male;
  std::vector<double> female;
  for (int i = 0; i < 5000; ++i) {
    male.push_back(rng.UniformDouble(0.8, 1.0));
    female.push_back(rng.UniformDouble(0.0, 0.2));
  }
  double emd = Emd1D(FromValues(male), FromValues(female)).value();
  EXPECT_NEAR(emd, 0.8, 0.01);
}

TEST(Emd1DTest, ShapeMismatchFails) {
  Histogram a(10, 0.0, 1.0);
  a.Add(0.5);
  Histogram b(5, 0.0, 1.0);
  b.Add(0.5);
  EXPECT_EQ(Emd1D(a, b).status().code(), StatusCode::kInvalidArgument);
  Histogram c(10, 0.0, 2.0);
  c.Add(0.5);
  EXPECT_EQ(Emd1D(a, c).status().code(), StatusCode::kInvalidArgument);
}

TEST(Emd1DTest, EmptyHistogramFails) {
  Histogram a(10, 0.0, 1.0);
  Histogram b(10, 0.0, 1.0);
  b.Add(0.5);
  EXPECT_EQ(Emd1D(a, b).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Emd1D(b, a).status().code(), StatusCode::kFailedPrecondition);
}

TEST(Emd1DMassTest, ClosedForm) {
  // Mass 1 at bin 0 vs mass 1 at bin 2 with width 0.5: EMD = 1.0.
  EXPECT_NEAR(Emd1DMass({1, 0, 0}, {0, 0, 1}, 0.5), 1.0, 1e-12);
  // Split mass: {0.5, 0.5, 0} vs {0, 0.5, 0.5} moves 0.5 by one bin twice.
  EXPECT_NEAR(Emd1DMass({0.5, 0.5, 0.0}, {0.0, 0.5, 0.5}, 0.5), 0.5, 1e-12);
}

TEST(Emd1DMassTest, UnnormalizedMassImbalanceIsNotDropped) {
  // The final CDF term used to be skipped, silently discarding whatever
  // mass imbalance accumulated through the last bin. {1, 0} vs {0, 0.5}
  // with width 1: CDF differences are 1 (after bin 0) and 0.5 (after bin
  // 1), so the cost is 1.5 — not the 1.0 the truncated loop reported.
  EXPECT_NEAR(Emd1DMass({1.0, 0.0}, {0.0, 0.5}, 1.0), 1.5, 1e-12);
  // Pure mass difference in a single bin: the whole cost is the final term.
  EXPECT_NEAR(Emd1DMass({1.0}, {0.25}, 2.0), 1.5, 1e-12);
  // Drifted "normalized" masses: a rounding-sized imbalance must surface as
  // a rounding-sized cost, not zero-by-construction.
  EXPECT_NEAR(Emd1DMass({0.5, 0.5 + 1e-9}, {0.5, 0.5}, 1.0), 1e-9, 1e-12);
  // Equal-mass inputs are unchanged by the fix: final CDF term is zero.
  EXPECT_NEAR(Emd1DMass({0.5, 0.5}, {0.5, 0.5}, 1.0), 0.0, 1e-15);
}

TEST(EmdGeneralTest, MatchesClosedFormOnRandomHistograms) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Histogram a(10, 0.0, 1.0);
    Histogram b(10, 0.0, 1.0);
    int na = static_cast<int>(rng.UniformInt(1, 60));
    int nb = static_cast<int>(rng.UniformInt(1, 60));
    for (int i = 0; i < na; ++i) a.Add(rng.NextDouble());
    for (int i = 0; i < nb; ++i) b.Add(rng.NextDouble());
    double closed = Emd1D(a, b).value();
    double general = EmdGeneral1DCost(a, b).value();
    EXPECT_NEAR(closed, general, 1e-9)
        << "trial " << trial << " na=" << na << " nb=" << nb;
  }
}

TEST(EmdGeneralTest, CustomCostMatrix) {
  // Two bins; cost 0 everywhere makes any plan free.
  Histogram a(2, 0.0, 1.0);
  a.Add(0.1);
  Histogram b(2, 0.0, 1.0);
  b.Add(0.9);
  std::vector<std::vector<double>> zero_cost = {{0.0, 0.0}, {0.0, 0.0}};
  EXPECT_DOUBLE_EQ(EmdGeneral(a, b, zero_cost).value(), 0.0);
}

TEST(EmdGeneralTest, RejectsNegativeCost) {
  Histogram a(2, 0.0, 1.0);
  a.Add(0.1);
  Histogram b(2, 0.0, 1.0);
  b.Add(0.9);
  std::vector<std::vector<double>> bad = {{0.0, -1.0}, {1.0, 0.0}};
  EXPECT_FALSE(EmdGeneral(a, b, bad).ok());
}

TEST(EmdThresholdedTest, LargeThresholdEqualsPlainEmd) {
  Histogram a = FromValues({0.05, 0.15, 0.25});
  Histogram b = FromValues({0.75, 0.85, 0.95});
  double plain = Emd1D(a, b).value();
  double thresholded = EmdThresholded(a, b, 10.0).value();
  EXPECT_NEAR(plain, thresholded, 1e-9);
}

TEST(EmdThresholdedTest, SmallThresholdCapsDistance) {
  Histogram a = FromValues({0.0});
  Histogram b = FromValues({1.0});
  // Plain distance 0.9; threshold 0.2 caps it.
  EXPECT_NEAR(EmdThresholded(a, b, 0.2).value(), 0.2, 1e-9);
}

TEST(EmdThresholdedTest, RejectsNonPositiveThreshold) {
  Histogram a = FromValues({0.5});
  EXPECT_FALSE(EmdThresholded(a, a, 0.0).ok());
  EXPECT_FALSE(EmdThresholded(a, a, -1.0).ok());
}

TEST(EmdSamples1DTest, PointMasses) {
  // Point masses at 0.2 and 0.7: W1 = 0.5 exactly (no binning error).
  EXPECT_NEAR(EmdSamples1D({0.2}, {0.7}).value(), 0.5, 1e-12);
}

TEST(EmdSamples1DTest, IdenticalSamplesAreZero) {
  std::vector<double> v = {0.1, 0.4, 0.4, 0.9};
  EXPECT_NEAR(EmdSamples1D(v, v).value(), 0.0, 1e-12);
}

TEST(EmdSamples1DTest, DifferentSizes) {
  // {0, 1} vs {0.5}: F_a steps 0.5 at 0 and 1; F_b steps 1 at 0.5.
  // Integral |Fa - Fb| = 0.5 * 0.5 + 0.5 * 0.5 = 0.5.
  EXPECT_NEAR(EmdSamples1D({0.0, 1.0}, {0.5}).value(), 0.5, 1e-12);
}

TEST(EmdSamples1DTest, ShiftedUniformGrids) {
  // Uniform grid shifted by delta: W1 = delta.
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(i * 0.01);
    b.push_back(i * 0.01 + 0.03);
  }
  EXPECT_NEAR(EmdSamples1D(a, b).value(), 0.03, 1e-12);
}

TEST(EmdSamples1DTest, EmptySampleFails) {
  EXPECT_FALSE(EmdSamples1D({}, {0.5}).ok());
  EXPECT_FALSE(EmdSamples1D({0.5}, {}).ok());
}

TEST(EmdSamples1DTest, HistogramEmdConvergesToSampleEmd) {
  Rng rng(123);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.UniformDouble(0.0, 0.6));
    b.push_back(rng.UniformDouble(0.4, 1.0));
  }
  double exact = EmdSamples1D(a, b).value();
  double previous_error = 1e9;
  for (int bins : {5, 20, 80, 320}) {
    Histogram ha(bins, 0.0, 1.0);
    Histogram hb(bins, 0.0, 1.0);
    for (double v : a) ha.Add(v);
    for (double v : b) hb.Add(v);
    double binned = Emd1D(ha, hb).value();
    double error = std::abs(binned - exact);
    EXPECT_LE(error, previous_error + 1e-9) << bins;
    previous_error = error;
  }
  EXPECT_LT(previous_error, 0.01);
}

TEST(EmdSamples1DTest, Symmetry) {
  Rng rng(5);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(rng.NextDouble());
    b.push_back(rng.NextDouble());
  }
  EXPECT_DOUBLE_EQ(EmdSamples1D(a, b).value(), EmdSamples1D(b, a).value());
}

TEST(Make1DCostMatrixTest, Dimensions) {
  Histogram a(4, 0.0, 1.0);
  Histogram b(4, 0.0, 1.0);
  auto cost = Make1DCostMatrix(a, b);
  ASSERT_EQ(cost.size(), 4u);
  ASSERT_EQ(cost[0].size(), 4u);
  EXPECT_DOUBLE_EQ(cost[0][0], 0.0);
  EXPECT_NEAR(cost[0][3], 0.75, 1e-12);
  EXPECT_NEAR(cost[3][0], 0.75, 1e-12);
}

// --- Property sweep: metric axioms of Emd1D on random histograms ---

class EmdPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EmdPropertyTest, MetricAxioms) {
  Rng rng(GetParam());
  auto random_hist = [&]() {
    Histogram h(10, 0.0, 1.0);
    int n = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < n; ++i) h.Add(rng.NextDouble());
    return h;
  };
  Histogram a = random_hist();
  Histogram b = random_hist();
  Histogram c = random_hist();
  double ab = Emd1D(a, b).value();
  double ba = Emd1D(b, a).value();
  double ac = Emd1D(a, c).value();
  double cb = Emd1D(c, b).value();
  // Non-negativity, symmetry, identity, triangle inequality, upper bound.
  EXPECT_GE(ab, 0.0);
  EXPECT_NEAR(ab, ba, 1e-12);
  EXPECT_NEAR(Emd1D(a, a).value(), 0.0, 1e-12);
  EXPECT_LE(ab, ac + cb + 1e-9);
  EXPECT_LE(ab, 0.9 + 1e-9);  // Max distance: extreme bins, 10 bins.
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, EmdPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{26}));

}  // namespace
}  // namespace fairrank
