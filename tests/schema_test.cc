#include "data/schema.h"

#include <gtest/gtest.h>

namespace fairrank {
namespace {

Schema MakeTestSchema() {
  Schema schema;
  EXPECT_TRUE(schema
                  .AddAttribute(AttributeSpec::Categorical(
                      "Gender", AttributeRole::kProtected, {"Male", "Female"}))
                  .ok());
  EXPECT_TRUE(schema
                  .AddAttribute(AttributeSpec::Integer(
                      "Age", AttributeRole::kProtected, 18, 80, 5))
                  .ok());
  EXPECT_TRUE(schema
                  .AddAttribute(AttributeSpec::Real(
                      "Rating", AttributeRole::kObserved, 0.0, 5.0, 10))
                  .ok());
  return schema;
}

TEST(SchemaTest, AddAndLookup) {
  Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.num_attributes(), 3u);
  EXPECT_EQ(schema.FindIndex("Gender").value(), 0u);
  EXPECT_EQ(schema.FindIndex("Rating").value(), 2u);
  EXPECT_EQ(schema.FindIndex("Nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(schema.attribute(1).name(), "Age");
}

TEST(SchemaTest, RejectsDuplicateNames) {
  Schema schema = MakeTestSchema();
  Status st = schema.AddAttribute(AttributeSpec::Categorical(
      "Gender", AttributeRole::kOther, {"x"}));
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(schema.num_attributes(), 3u);
}

TEST(SchemaTest, RejectsInvalidSpec) {
  Schema schema;
  Status st = schema.AddAttribute(
      AttributeSpec::Categorical("Bad", AttributeRole::kOther, {}));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(schema.num_attributes(), 0u);
}

TEST(SchemaTest, RoleIndexLists) {
  Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.ProtectedIndices(), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(schema.ObservedIndices(), (std::vector<size_t>{2}));
}

TEST(SchemaTest, EmptySchema) {
  Schema schema;
  EXPECT_EQ(schema.num_attributes(), 0u);
  EXPECT_TRUE(schema.ProtectedIndices().empty());
  EXPECT_TRUE(schema.ObservedIndices().empty());
}

TEST(SchemaTest, ToStringMentionsEveryAttribute) {
  Schema schema = MakeTestSchema();
  std::string s = schema.ToString();
  EXPECT_NE(s.find("Gender"), std::string::npos);
  EXPECT_NE(s.find("Age"), std::string::npos);
  EXPECT_NE(s.find("Rating"), std::string::npos);
  EXPECT_NE(s.find("protected"), std::string::npos);
  EXPECT_NE(s.find("observed"), std::string::npos);
}

}  // namespace
}  // namespace fairrank
