#include "fairness/evaluator.h"

#include <gtest/gtest.h>

#include "fairness/splitter.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

/// Toy table + the toy observed score as the audited scores.
struct Fixture {
  Table table;
  UnfairnessEvaluator eval;
};

std::vector<double> ToyScores(const Table& table) {
  size_t score_col = table.schema().FindIndex("Score").value();
  std::vector<double> scores;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    scores.push_back(table.column(score_col).RealAt(row));
  }
  return scores;
}

UnfairnessEvaluator MakeToyEvaluator(const Table* table,
                                     EvaluatorOptions options = {}) {
  return UnfairnessEvaluator::Make(table, ToyScores(*table), options).value();
}

TEST(EvaluatorTest, MakeValidation) {
  Table table = MakeToyTable().value();
  EvaluatorOptions options;
  EXPECT_FALSE(
      UnfairnessEvaluator::Make(nullptr, {}, options).ok());
  EXPECT_FALSE(
      UnfairnessEvaluator::Make(&table, {0.5}, options).ok());  // Size.
  options.num_bins = 0;
  EXPECT_FALSE(
      UnfairnessEvaluator::Make(&table, ToyScores(table), options).ok());
  options.num_bins = 10;
  options.score_hi = options.score_lo;
  EXPECT_FALSE(
      UnfairnessEvaluator::Make(&table, ToyScores(table), options).ok());
  options = EvaluatorOptions();
  options.divergence = "bogus";
  EXPECT_FALSE(
      UnfairnessEvaluator::Make(&table, ToyScores(table), options).ok());
}

TEST(EvaluatorTest, NonFiniteScoresRejected) {
  Table table = MakeToyTable().value();
  std::vector<double> scores = ToyScores(table);
  scores[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(
      UnfairnessEvaluator::Make(&table, scores, EvaluatorOptions()).ok());
  scores[3] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(
      UnfairnessEvaluator::Make(&table, scores, EvaluatorOptions()).ok());
}

TEST(EvaluatorTest, OutOfRangeScoresCountedByDefault) {
  Table table = MakeToyTable().value();
  std::vector<double> scores = ToyScores(table);
  scores[0] = -0.25;
  scores[1] = 1.5;
  UnfairnessEvaluator eval =
      UnfairnessEvaluator::Make(&table, scores, EvaluatorOptions()).value();
  EXPECT_EQ(eval.num_out_of_range(), 2u);
  // In-range vectors report zero.
  EXPECT_EQ(MakeToyEvaluator(&table).num_out_of_range(), 0u);
}

TEST(EvaluatorTest, OutOfRangeScoresRejectedUnderRejectPolicy) {
  Table table = MakeToyTable().value();
  std::vector<double> scores = ToyScores(table);
  scores[0] = 1.5;
  EvaluatorOptions options;
  options.out_of_range = OutOfRangePolicy::kReject;
  StatusOr<UnfairnessEvaluator> eval =
      UnfairnessEvaluator::Make(&table, scores, options);
  EXPECT_EQ(eval.status().code(), StatusCode::kInvalidArgument);
  // The boundary itself is in range (hi is inclusive).
  scores[0] = 1.0;
  EXPECT_TRUE(UnfairnessEvaluator::Make(&table, scores, options).ok());
}

TEST(EvaluatorTest, BuildHistogramCountsPartitionScores) {
  Table table = MakeToyTable().value();
  UnfairnessEvaluator eval = MakeToyEvaluator(&table);
  size_t gender = table.schema().FindIndex("Gender").value();
  auto children =
      SplitPartition(table, MakeRootPartition(table.num_rows()), gender);
  Histogram female = eval.BuildHistogram(children[1]);
  EXPECT_DOUBLE_EQ(female.total(), 4.0);
  EXPECT_DOUBLE_EQ(female.counts()[4], 4.0);  // All four at 0.42.
}

TEST(EvaluatorTest, SinglePartitionUnfairnessIsZero) {
  Table table = MakeToyTable().value();
  UnfairnessEvaluator eval = MakeToyEvaluator(&table);
  Partitioning p{MakeRootPartition(table.num_rows())};
  EXPECT_DOUBLE_EQ(eval.AveragePairwiseUnfairness(p).value(), 0.0);
}

TEST(EvaluatorTest, TwoPartitionUnfairnessEqualsTheirDistance) {
  Table table = MakeToyTable().value();
  UnfairnessEvaluator eval = MakeToyEvaluator(&table);
  size_t gender = table.schema().FindIndex("Gender").value();
  auto children =
      SplitPartition(table, MakeRootPartition(table.num_rows()), gender);
  Partitioning p(children.begin(), children.end());
  double unfairness = eval.AveragePairwiseUnfairness(p).value();
  double distance = eval.Distance(children[0], children[1]).value();
  EXPECT_DOUBLE_EQ(unfairness, distance);
  EXPECT_GT(unfairness, 0.0);
}

TEST(EvaluatorTest, AverageIsMeanOverPairs) {
  Table table = MakeToyTable().value();
  UnfairnessEvaluator eval = MakeToyEvaluator(&table);
  size_t gender = table.schema().FindIndex("Gender").value();
  size_t language = table.schema().FindIndex("Language").value();
  auto by_gender =
      SplitPartition(table, MakeRootPartition(table.num_rows()), gender);
  auto males = SplitPartition(table, by_gender[0], language);
  Partitioning p(males.begin(), males.end());
  p.push_back(by_gender[1]);
  ASSERT_EQ(p.size(), 4u);
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    for (size_t j = i + 1; j < p.size(); ++j) {
      sum += eval.Distance(p[i], p[j]).value();
    }
  }
  EXPECT_NEAR(eval.AveragePairwiseUnfairness(p).value(), sum / 6.0, 1e-12);
}

TEST(EvaluatorTest, AverageWithSiblingsEmptyIsZero) {
  Table table = MakeToyTable().value();
  UnfairnessEvaluator eval = MakeToyEvaluator(&table);
  Partition root = MakeRootPartition(table.num_rows());
  EXPECT_DOUBLE_EQ(eval.AverageWithSiblings(root, {}).value(), 0.0);
}

TEST(EvaluatorTest, AverageWithSiblingsMatchesManualMean) {
  Table table = MakeToyTable().value();
  UnfairnessEvaluator eval = MakeToyEvaluator(&table);
  size_t language = table.schema().FindIndex("Language").value();
  auto parts =
      SplitPartition(table, MakeRootPartition(table.num_rows()), language);
  ASSERT_EQ(parts.size(), 3u);
  std::vector<Partition> siblings = {parts[1], parts[2]};
  double manual = (eval.Distance(parts[0], parts[1]).value() +
                   eval.Distance(parts[0], parts[2]).value()) /
                  2.0;
  EXPECT_NEAR(eval.AverageWithSiblings(parts[0], siblings).value(), manual,
              1e-12);
}

TEST(EvaluatorTest, ChildPairsReadingCountsChildPairsOnly) {
  Table table = MakeToyTable().value();
  UnfairnessEvaluator eval = MakeToyEvaluator(&table);
  size_t gender = table.schema().FindIndex("Gender").value();
  size_t language = table.schema().FindIndex("Language").value();
  auto by_gender =
      SplitPartition(table, MakeRootPartition(table.num_rows()), gender);
  auto male_children = SplitPartition(table, by_gender[0], language);
  std::vector<Partition> siblings = {by_gender[1]};

  // Manual: 3 child-child pairs + 3 child-sibling pairs.
  double sum = 0.0;
  for (size_t i = 0; i < male_children.size(); ++i) {
    for (size_t j = i + 1; j < male_children.size(); ++j) {
      sum += eval.Distance(male_children[i], male_children[j]).value();
    }
    sum += eval.Distance(male_children[i], siblings[0]).value();
  }
  EXPECT_NEAR(
      eval.AverageChildrenWithSiblings(male_children, siblings).value(),
      sum / 6.0, 1e-12);
}

TEST(EvaluatorTest, AllPairsReadingIncludesSiblingPairs) {
  Table table = MakeToyTable().value();
  EvaluatorOptions options;
  options.sibling_comparison = SiblingComparison::kAllPairs;
  UnfairnessEvaluator eval = MakeToyEvaluator(&table, options);
  size_t gender = table.schema().FindIndex("Gender").value();
  size_t language = table.schema().FindIndex("Language").value();
  auto by_language =
      SplitPartition(table, MakeRootPartition(table.num_rows()), language);
  ASSERT_EQ(by_language.size(), 3u);
  auto children = SplitPartition(table, by_language[0], gender);
  std::vector<Partition> siblings = {by_language[1], by_language[2]};
  // All-pairs reading equals the average pairwise unfairness of
  // children ∪ siblings.
  Partitioning combined(children.begin(), children.end());
  combined.insert(combined.end(), siblings.begin(), siblings.end());
  EXPECT_NEAR(eval.AverageChildrenWithSiblings(children, siblings).value(),
              eval.AveragePairwiseUnfairness(combined).value(), 1e-12);
}

TEST(EvaluatorTest, NoQualifyingPairsYieldsZero) {
  Table table = MakeToyTable().value();
  UnfairnessEvaluator eval = MakeToyEvaluator(&table);
  size_t gender = table.schema().FindIndex("Gender").value();
  auto children =
      SplitPartition(table, MakeRootPartition(table.num_rows()), gender);
  // Single child, no siblings: no pairs at all.
  EXPECT_DOUBLE_EQ(
      eval.AverageChildrenWithSiblings({children[0]}, {}).value(), 0.0);
}

TEST(TopDivergentPairsTest, SortedAndClamped) {
  Table table = MakeToyTable().value();
  UnfairnessEvaluator eval = MakeToyEvaluator(&table);
  size_t gender = table.schema().FindIndex("Gender").value();
  size_t language = table.schema().FindIndex("Language").value();
  auto by_gender =
      SplitPartition(table, MakeRootPartition(table.num_rows()), gender);
  auto males = SplitPartition(table, by_gender[0], language);
  Partitioning p(males.begin(), males.end());
  p.push_back(by_gender[1]);  // 4 partitions -> 6 pairs.

  auto pairs = TopDivergentPairs(eval, p, 100);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 6u);  // k larger than pair count is clamped.
  for (size_t i = 1; i < pairs->size(); ++i) {
    EXPECT_GE((*pairs)[i - 1].distance, (*pairs)[i].distance);
  }
  auto top2 = TopDivergentPairs(eval, p, 2).value();
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_DOUBLE_EQ(top2[0].distance, (*pairs)[0].distance);

  // The most divergent pair in the toy data is Male-English (0.875 mean)
  // vs Male-Other (0.125 mean).
  std::set<std::string> labels = {
      PartitionLabel(table.schema(), p[top2[0].index_a]),
      PartitionLabel(table.schema(), p[top2[0].index_b])};
  EXPECT_TRUE(labels.count("Gender=Male & Language=English"));
  EXPECT_TRUE(labels.count("Gender=Male & Language=Other"));
}

TEST(TopDivergentPairsTest, DegenerateInputs) {
  Table table = MakeToyTable().value();
  UnfairnessEvaluator eval = MakeToyEvaluator(&table);
  Partitioning root{MakeRootPartition(table.num_rows())};
  EXPECT_TRUE(TopDivergentPairs(eval, root, 5)->empty());
  size_t gender = table.schema().FindIndex("Gender").value();
  auto children =
      SplitPartition(table, MakeRootPartition(table.num_rows()), gender);
  Partitioning p(children.begin(), children.end());
  EXPECT_TRUE(TopDivergentPairs(eval, p, 0)->empty());
}

TEST(EvaluatorTest, DivergenceOptionChangesMeasure) {
  Table table = MakeToyTable().value();
  EvaluatorOptions emd_options;
  EvaluatorOptions tv_options;
  tv_options.divergence = "tv";
  UnfairnessEvaluator emd_eval = MakeToyEvaluator(&table, emd_options);
  UnfairnessEvaluator tv_eval = MakeToyEvaluator(&table, tv_options);
  size_t gender = table.schema().FindIndex("Gender").value();
  auto children =
      SplitPartition(table, MakeRootPartition(table.num_rows()), gender);
  Partitioning p(children.begin(), children.end());
  EXPECT_NE(emd_eval.AveragePairwiseUnfairness(p).value(),
            tv_eval.AveragePairwiseUnfairness(p).value());
}

}  // namespace
}  // namespace fairrank
