// Tests for the telemetry subsystem: the metrics registry (including its
// behaviour under concurrent registration + updates, which the TSan CI job
// replays), the GK-backed latency sketch, metric-name validation, and the
// TraceContext span machinery (parent links, ordering, the span cap, and
// the sampling gate).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/telemetry.h"
#include "common/trace.h"

namespace fairrank {
namespace {

// ---------------------------------------------------------------------------
// LatencySketch

TEST(LatencySketchTest, EmptySketchHasNoQuantile) {
  LatencySketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_FALSE(sketch.QuantileSeconds(0.5).ok());
}

TEST(LatencySketchTest, QuantilesTrackUniformStream) {
  LatencySketch sketch;
  // 1ms..1000ms uniform: p50 ~ 0.5s, p99 ~ 0.99s.
  for (int i = 1; i <= 1000; ++i) {
    sketch.Observe(static_cast<double>(i) / 1000.0);
  }
  EXPECT_EQ(sketch.count(), 1000u);
  EXPECT_DOUBLE_EQ(sketch.max_seconds(), 1.0);
  EXPECT_NEAR(sketch.sum_seconds(), 500.5, 1e-9);

  StatusOr<double> p50 = sketch.QuantileSeconds(0.5);
  StatusOr<double> p99 = sketch.QuantileSeconds(0.99);
  ASSERT_TRUE(p50.ok());
  ASSERT_TRUE(p99.ok());
  // GK epsilon=0.005 over 1000 samples: ±5 ranks = ±0.005s, plus slack.
  EXPECT_NEAR(*p50, 0.5, 0.02);
  EXPECT_NEAR(*p99, 0.99, 0.02);
  EXPECT_LT(*p50, *p99);
}

TEST(LatencySketchTest, SingleObservationIsEveryQuantile) {
  LatencySketch sketch;
  sketch.Observe(0.25);
  ASSERT_TRUE(sketch.QuantileSeconds(0.5).ok());
  EXPECT_DOUBLE_EQ(*sketch.QuantileSeconds(0.5), 0.25);
  EXPECT_DOUBLE_EQ(*sketch.QuantileSeconds(0.99), 0.25);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, GetReturnsStablePointerPerName) {
  MetricsRegistry registry;
  MetricCounter* a = registry.GetCounter("fairrank_example_total", "help");
  MetricCounter* b = registry.GetCounter("fairrank_example_total", "other");
  EXPECT_EQ(a, b);
  MetricGauge* g = registry.GetGauge("fairrank_example_count", "help");
  EXPECT_EQ(g, registry.GetGauge("fairrank_example_count", "help"));
  MetricHistogram* h =
      registry.GetHistogram("fairrank_example_seconds", "help");
  EXPECT_EQ(h, registry.GetHistogram("fairrank_example_seconds", "help"));
}

TEST(MetricsRegistryTest, RenderPrometheusEmitsAllFamiliesSorted) {
  MetricsRegistry registry;
  registry.GetCounter("fairrank_zz_total", "Last counter")->Increment(3);
  registry.GetCounter("fairrank_aa_total", "First counter")->Increment(1);
  registry.GetGauge("fairrank_depth_count", "A gauge")->Set(-7);
  MetricHistogram* h = registry.GetHistogram("fairrank_mid_seconds", "Mid");
  h->Observe(0.5);
  h->Observe(1.5);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP fairrank_aa_total First counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fairrank_zz_total counter"), std::string::npos);
  EXPECT_NE(text.find("fairrank_zz_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fairrank_depth_count gauge"),
            std::string::npos);
  EXPECT_NE(text.find("fairrank_depth_count -7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fairrank_mid_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("fairrank_mid_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("fairrank_mid_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  // Deterministic ordering: sorted by name within each kind.
  EXPECT_LT(text.find("fairrank_aa_total"), text.find("fairrank_zz_total"));
}

// The TSan job runs this: concurrent registration of the SAME names plus
// lock-free updates from many threads must be race-free and lose nothing.
TEST(MetricsRegistryTest, ConcurrentRegistrationAndUpdates) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &ready] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      // Every thread races GetCounter for the same name — first one
      // registers, the rest must get the same pointer.
      MetricCounter* counter =
          registry.GetCounter("fairrank_race_total", "contended");
      MetricGauge* gauge = registry.GetGauge("fairrank_race_count", "gauge");
      MetricHistogram* histogram =
          registry.GetHistogram("fairrank_race_seconds", "histogram");
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        counter->Increment();
        gauge->Add(1);
        if (i % 100 == 0) histogram->Observe(0.001 * (i % 7));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("fairrank_race_total", "")->value(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
  EXPECT_EQ(registry.GetGauge("fairrank_race_count", "")->value(),
            static_cast<int64_t>(kThreads) * kIncrementsPerThread);
  MetricHistogram::Snapshot snapshot =
      registry.GetHistogram("fairrank_race_seconds", "")->TakeSnapshot();
  EXPECT_EQ(snapshot.count,
            static_cast<uint64_t>(kThreads) * (kIncrementsPerThread / 100));
}

TEST(MetricsRegistryTest, IsValidMetricName) {
  EXPECT_TRUE(MetricsRegistry::IsValidMetricName("fairrank_audits_total"));
  EXPECT_TRUE(
      MetricsRegistry::IsValidMetricName("fairrank_audit_search_seconds"));
  EXPECT_TRUE(
      MetricsRegistry::IsValidMetricName("fairrank_response_cache_bytes"));
  EXPECT_TRUE(MetricsRegistry::IsValidMetricName("fairrank_queue_depth_count"));
  EXPECT_TRUE(MetricsRegistry::IsValidMetricName("fairrank_hit_ratio"));
  EXPECT_TRUE(MetricsRegistry::IsValidMetricName("fairrank_draining_info"));

  EXPECT_FALSE(MetricsRegistry::IsValidMetricName(""));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("audits_total"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("fairrank_Audits_total"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("fairrank_audits"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("fairrank__audits_total"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("fairrank_audits_total_"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("fairrank_audits-total"));
}

// ---------------------------------------------------------------------------
// TraceContext

TEST(TraceContextTest, SpanParentChildOrdering) {
  TraceContext trace;
  EXPECT_TRUE(trace.sampled());
  EXPECT_FALSE(trace.trace_id().empty());

  const int64_t root = trace.StartSpan("audit");
  const int64_t search = trace.StartSpan("search", root);
  const int64_t expand = trace.StartSpan("expand", search);
  trace.EndSpan(expand);
  trace.EndSpan(search);
  trace.Event("cache-hit", search);
  trace.EndSpan(root);

  std::vector<TraceContext::Span> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Ids are assigned in start order and equal the snapshot index.
  EXPECT_EQ(spans[0].id, root);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[2].parent, search);
  EXPECT_EQ(spans[3].parent, search);
  EXPECT_STREQ(spans[3].name, "cache-hit");
  // Every span closed; children end no later than their parents here.
  for (const TraceContext::Span& span : spans) {
    EXPECT_GE(span.end_ns, span.start_ns) << span.name;
    EXPECT_NE(span.end_ns, 0u) << span.name;
  }
  EXPECT_LE(spans[2].end_ns, spans[1].end_ns);
  EXPECT_LE(spans[1].end_ns, spans[0].end_ns);
}

TEST(TraceContextTest, TotalsAggregateByNameSorted) {
  TraceContext trace;
  const int64_t root = trace.StartSpan("audit");
  trace.AddEvent("emd", root, 100);
  trace.AddEvent("emd", root, 200);
  trace.AddEvent("histogram", root, 50);
  trace.EndSpan(root);

  std::vector<TraceContext::NamedTotal> totals = trace.Totals();
  ASSERT_EQ(totals.size(), 3u);  // audit, emd, histogram — sorted by name.
  EXPECT_EQ(totals[0].name, "audit");
  EXPECT_EQ(totals[1].name, "emd");
  EXPECT_EQ(totals[1].count, 2u);
  EXPECT_EQ(totals[1].total_ns, 300u);
  EXPECT_EQ(totals[2].name, "histogram");
  EXPECT_EQ(totals[2].count, 1u);
}

TEST(TraceContextTest, UnsampledContextRecordsNothing) {
  TraceContext trace(/*sampled=*/false);
  EXPECT_FALSE(trace.sampled());
  EXPECT_EQ(trace.StartSpan("audit"), -1);
  trace.EndSpan(-1);
  trace.AddEvent("emd", -1, 100);
  EXPECT_EQ(trace.span_count(), 0u);
  EXPECT_TRUE(trace.Totals().empty());
}

TEST(TraceContextTest, SpanCapDropsButTotalsStayExact) {
  TraceContext trace(/*sampled=*/true, /*max_spans=*/4);
  for (int i = 0; i < 10; ++i) {
    trace.AddEvent("emd", -1, 10);
  }
  EXPECT_EQ(trace.span_count(), 4u);
  EXPECT_EQ(trace.spans_dropped(), 6u);
  std::vector<TraceContext::NamedTotal> totals = trace.Totals();
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_EQ(totals[0].count, 10u);  // All ten, not just the four kept.
  EXPECT_EQ(totals[0].total_ns, 100u);
}

TEST(TraceContextTest, FormatTreeShowsHierarchyAndTotals) {
  TraceContext trace;
  const int64_t root = trace.StartSpan("audit");
  const int64_t search = trace.StartSpan("search", root);
  trace.EndSpan(search);
  trace.EndSpan(root);

  const std::string tree = trace.FormatTree();
  EXPECT_NE(tree.find("trace " + trace.trace_id()), std::string::npos);
  EXPECT_NE(tree.find("- audit "), std::string::npos);
  EXPECT_NE(tree.find("  - search "), std::string::npos);  // Indented child.
  EXPECT_NE(tree.find("totals:"), std::string::npos);
  EXPECT_LT(tree.find("- audit "), tree.find("- search "));
}

// Span recording from many threads (the pairwise-distance pool does this)
// must be race-free; run under TSan in CI.
TEST(TraceContextTest, ConcurrentSpanRecording) {
  TraceContext trace;
  const int64_t root = trace.StartSpan("audit");
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, root] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        trace.AddEvent("emd", root, 5);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  trace.EndSpan(root);
  std::vector<TraceContext::NamedTotal> totals = trace.Totals();
  ASSERT_EQ(totals.size(), 2u);  // audit + emd.
  EXPECT_EQ(totals[1].count,
            static_cast<uint64_t>(kThreads) * kEventsPerThread);
  EXPECT_EQ(trace.span_count() + trace.spans_dropped(),
            static_cast<uint64_t>(kThreads) * kEventsPerThread + 1);
}

TEST(TraceContextTest, TraceIdsAreUnique) {
  TraceContext a;
  TraceContext b;
  EXPECT_NE(a.trace_id(), b.trace_id());
}

TEST(RequestIdTest, NextRequestIdIsUniquePrintableAndBounded) {
  const std::string a = NextRequestId();
  const std::string b = NextRequestId();
  EXPECT_NE(a, b);
  EXPECT_EQ(a.rfind("req-", 0), 0u);
  EXPECT_LE(a.size(), 64u);
  for (char c : a) {
    EXPECT_GE(c, 0x20);
    EXPECT_LE(c, 0x7E);
  }
}

}  // namespace
}  // namespace fairrank
