#include "fairness/serialize.h"

#include <gtest/gtest.h>

#include "fairness/auditor.h"
#include "fairness/splitter.h"
#include "marketplace/biased_scoring.h"
#include "marketplace/generator.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

Table Workers(size_t n, uint64_t seed) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = seed;
  return GenerateWorkers(options).value();
}

TEST(SerializeTest, RoundTripOnSameTable) {
  Table workers = Workers(300, 3);
  FairnessAuditor auditor(&workers);
  auto f7 = MakeF7(5);
  AuditOptions options;
  options.algorithm = "balanced";
  AuditResult audit = auditor.Audit(*f7, options).value();

  std::string text =
      SerializePartitioning(workers.schema(), audit.partitioning);
  auto applied = ApplyPartitioningSpec(workers, text);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ASSERT_EQ(applied->size(), audit.partitioning.size());
  EXPECT_TRUE(IsValidPartitioning(*applied, workers.num_rows()));
  // Same row sets (order of partitions preserved by the format).
  for (size_t i = 0; i < applied->size(); ++i) {
    EXPECT_EQ((*applied)[i].rows, audit.partitioning[i].rows);
  }
}

TEST(SerializeTest, RootPartitioningRoundTrips) {
  Table workers = Workers(20, 1);
  Partitioning root{MakeRootPartition(workers.num_rows())};
  std::string text = SerializePartitioning(workers.schema(), root);
  EXPECT_NE(text.find("<all>"), std::string::npos);
  auto applied = ApplyPartitioningSpec(workers, text);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied->size(), 1u);
  EXPECT_EQ((*applied)[0].size(), workers.num_rows());
}

TEST(SerializeTest, AppliesToLargerDataset) {
  // Audit a 200-worker sample, apply the found structure to 2000 workers.
  Table sample = Workers(200, 3);
  FairnessAuditor auditor(&sample);
  auto f6 = MakeF6(5);
  AuditOptions options;
  options.algorithm = "balanced";
  AuditResult audit = auditor.Audit(*f6, options).value();
  std::string text = SerializePartitioning(sample.schema(), audit.partitioning);

  Table full = Workers(2000, 99);
  auto applied = ApplyPartitioningSpec(full, text);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_TRUE(IsValidPartitioning(*applied, full.num_rows()));
  // f6's audit splits on gender: the applied partitioning must too.
  EXPECT_EQ(applied->size(), 2u);
}

TEST(SerializeTest, MissingHeaderFails) {
  Table workers = Workers(10, 1);
  EXPECT_EQ(ApplyPartitioningSpec(workers, "partition: <all>\n")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SerializeTest, UnknownAttributeFails) {
  Table workers = Workers(10, 1);
  std::string text =
      "# fairrank partitioning v1\npartition: Bogus=0\npartition: Bogus=1\n";
  EXPECT_EQ(ApplyPartitioningSpec(workers, text).status().code(),
            StatusCode::kNotFound);
}

TEST(SerializeTest, OutOfRangeGroupFails) {
  Table workers = Workers(10, 1);
  std::string text =
      "# fairrank partitioning v1\npartition: Gender=5\npartition: Gender=0\n";
  EXPECT_EQ(ApplyPartitioningSpec(workers, text).status().code(),
            StatusCode::kOutOfRange);
}

TEST(SerializeTest, MalformedStepFails) {
  Table workers = Workers(10, 1);
  std::string text = "# fairrank partitioning v1\npartition: Gender\n";
  EXPECT_FALSE(ApplyPartitioningSpec(workers, text).ok());
}

TEST(SerializeTest, NonExclusivePathsFail) {
  Table workers = Workers(10, 1);
  // <all> overlaps with every other path.
  std::string text =
      "# fairrank partitioning v1\npartition: <all>\npartition: Gender=0\n";
  auto applied = ApplyPartitioningSpec(workers, text);
  EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(applied.status().message().find("mutually exclusive"),
            std::string::npos);
}

TEST(SerializeTest, UnmatchedRowErrorPolicy) {
  Table workers = Workers(50, 1);
  // Only one gender listed: the other gender's rows match nothing.
  std::string text = "# fairrank partitioning v1\npartition: Gender=0\n";
  EXPECT_EQ(ApplyPartitioningSpec(workers, text).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SerializeTest, CollectRestPolicyBucketsUnmatched) {
  Table workers = Workers(50, 1);
  std::string text = "# fairrank partitioning v1\npartition: Gender=0\n";
  auto applied = ApplyPartitioningSpec(workers, text,
                                       UnmatchedRowPolicy::kCollectRest);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->size(), 2u);
  EXPECT_TRUE(IsValidPartitioning(*applied, workers.num_rows()));
  EXPECT_TRUE((*applied)[1].path.empty());  // The rest bucket.
}

TEST(SerializeTest, CommentsAndBlankLinesIgnored) {
  Table workers = Workers(50, 1);
  std::string text =
      "# fairrank partitioning v1\n"
      "\n"
      "# a comment\n"
      "partition: Gender=0\n"
      "partition: Gender=1\n";
  auto applied = ApplyPartitioningSpec(workers, text);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied->size(), 2u);
}

TEST(SerializeTest, EmptySpecFails) {
  Table workers = Workers(10, 1);
  EXPECT_FALSE(
      ApplyPartitioningSpec(workers, "# fairrank partitioning v1\n").ok());
}

}  // namespace
}  // namespace fairrank
