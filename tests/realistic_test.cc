#include "marketplace/realistic.h"

#include <gtest/gtest.h>

#include "data/profile.h"
#include "fairness/auditor.h"
#include "marketplace/scoring.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

Table Realistic(size_t n, double bias = 1.0, uint64_t seed = 5) {
  RealisticGeneratorOptions options;
  options.num_workers = n;
  options.seed = seed;
  options.bias_strength = bias;
  return GenerateRealisticWorkers(options).value();
}

TEST(RealisticGeneratorTest, SchemaAndDomains) {
  Table workers = Realistic(500);
  EXPECT_EQ(workers.num_rows(), 500u);
  EXPECT_EQ(workers.num_columns(), 8u);
  const Schema& schema = workers.schema();
  size_t yob = schema.FindIndex(worker_attrs::kYearOfBirth).value();
  size_t exp = schema.FindIndex(worker_attrs::kYearsExperience).value();
  size_t lt = schema.FindIndex(worker_attrs::kLanguageTest).value();
  size_t ar = schema.FindIndex(worker_attrs::kApprovalRate).value();
  for (size_t row = 0; row < workers.num_rows(); ++row) {
    EXPECT_GE(workers.column(yob).IntAt(row), 1950);
    EXPECT_LE(workers.column(yob).IntAt(row), 2009);
    EXPECT_GE(workers.column(exp).IntAt(row), 0);
    EXPECT_LE(workers.column(exp).IntAt(row), 30);
    EXPECT_GE(workers.column(lt).RealAt(row), 25.0);
    EXPECT_LE(workers.column(lt).RealAt(row), 100.0);
    EXPECT_GE(workers.column(ar).RealAt(row), 25.0);
    EXPECT_LE(workers.column(ar).RealAt(row), 100.0);
  }
}

TEST(RealisticGeneratorTest, Deterministic) {
  Table a = Realistic(100);
  Table b = Realistic(100);
  for (size_t row = 0; row < a.num_rows(); ++row) {
    for (size_t col = 0; col < a.num_columns(); ++col) {
      EXPECT_EQ(a.CellToString(row, col), b.CellToString(row, col));
    }
  }
}

TEST(RealisticGeneratorTest, SkewedDemographics) {
  Table workers = Realistic(5000);
  TableProfile profile = ProfileTable(workers).value();
  for (const AttributeProfile& ap : profile.attributes) {
    if (ap.name == worker_attrs::kGender) {
      EXPECT_NEAR(ap.groups[0].fraction, 0.60, 0.03);  // Male share.
    }
    if (ap.name == worker_attrs::kCountry) {
      EXPECT_NEAR(ap.groups[0].fraction, 0.60, 0.03);  // America share.
      EXPECT_NEAR(ap.groups[1].fraction, 0.25, 0.03);  // India share.
    }
  }
}

TEST(RealisticGeneratorTest, LanguageFollowsCountry) {
  Table workers = Realistic(5000);
  size_t country = workers.schema().FindIndex(worker_attrs::kCountry).value();
  size_t language =
      workers.schema().FindIndex(worker_attrs::kLanguage).value();
  size_t india_total = 0;
  size_t india_indian_speakers = 0;
  for (size_t row = 0; row < workers.num_rows(); ++row) {
    if (workers.CellToString(row, country) == "India") {
      ++india_total;
      if (workers.CellToString(row, language) == "Indian") {
        ++india_indian_speakers;
      }
    }
  }
  ASSERT_GT(india_total, 0u);
  EXPECT_NEAR(static_cast<double>(india_indian_speakers) /
                  static_cast<double>(india_total),
              0.70, 0.05);
}

TEST(RealisticGeneratorTest, BiasLowersFemaleApproval) {
  Table workers = Realistic(5000, /*bias=*/1.0);
  size_t gender = workers.schema().FindIndex(worker_attrs::kGender).value();
  size_t ar =
      workers.schema().FindIndex(worker_attrs::kApprovalRate).value();
  double male_sum = 0.0;
  double female_sum = 0.0;
  size_t males = 0;
  size_t females = 0;
  for (size_t row = 0; row < workers.num_rows(); ++row) {
    if (workers.column(gender).CodeAt(row) == 0) {
      male_sum += workers.column(ar).RealAt(row);
      ++males;
    } else {
      female_sum += workers.column(ar).RealAt(row);
      ++females;
    }
  }
  double gap = male_sum / males - female_sum / females;
  EXPECT_NEAR(gap, 8.0, 1.5);
}

TEST(RealisticGeneratorTest, ZeroBiasRemovesGenderGap) {
  Table workers = Realistic(5000, /*bias=*/0.0);
  size_t gender = workers.schema().FindIndex(worker_attrs::kGender).value();
  size_t ar =
      workers.schema().FindIndex(worker_attrs::kApprovalRate).value();
  double male_sum = 0.0;
  double female_sum = 0.0;
  size_t males = 0;
  size_t females = 0;
  for (size_t row = 0; row < workers.num_rows(); ++row) {
    if (workers.column(gender).CodeAt(row) == 0) {
      male_sum += workers.column(ar).RealAt(row);
      ++males;
    } else {
      female_sum += workers.column(ar).RealAt(row);
      ++females;
    }
  }
  EXPECT_NEAR(male_sum / males - female_sum / females, 0.0, 1.0);
}

TEST(RealisticGeneratorTest, InvalidBiasStrengthFails) {
  RealisticGeneratorOptions options;
  options.bias_strength = 1.5;
  EXPECT_FALSE(GenerateRealisticWorkers(options).ok());
  options.bias_strength = -0.1;
  EXPECT_FALSE(GenerateRealisticWorkers(options).ok());
}

TEST(RealisticGeneratorTest, AuditDetectsInheritedBias) {
  // The "merit-looking" ApprovalRate-only function (the paper's f5)
  // inherits the rating bias: audited unfairness on the biased attributes
  // (gender, ethnicity) must rise with bias_strength. The audit is
  // restricted to those attributes because a full six-attribute search has
  // a sampling floor (~0.12 at n=2000) that swamps the moderate rating
  // penalties.
  auto f5 = MakeAlphaFunction("f5", 0.0);
  double previous = -1.0;
  for (double bias : {0.0, 0.5, 1.0}) {
    Table workers = Realistic(2000, bias);
    FairnessAuditor auditor(&workers);
    AuditOptions options;
    options.algorithm = "balanced";
    options.protected_attributes = {worker_attrs::kGender,
                                    worker_attrs::kEthnicity};
    double u = auditor.Audit(*f5, options).value().unfairness;
    EXPECT_GT(u, previous) << bias;
    previous = u;
  }
}

}  // namespace
}  // namespace fairrank
