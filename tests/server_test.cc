// End-to-end tests of the fairauditd serving layer: request/response parity
// with the library, structured failure of bad input, chaos (fault-injected
// library failures and stalls) isolated to the afflicted request, admission
// control bounding aggregate work, and graceful drain.
//
// Tests talk to a real FairAuditServer over loopback sockets. Each fixture
// start binds an ephemeral port (port 0), so parallel ctest runs never
// collide. std::thread is used directly here (sanctioned in tests/) to host
// Serve() and to fire concurrent clients.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "data/table.h"
#include "fairness/aggregate.h"
#include "fairness/auditor.h"
#include "fairness/option_flags.h"
#include "fairness/report.h"
#include "gtest/gtest.h"
#include "marketplace/generator.h"
#include "server/client.h"
#include "server/http.h"
#include "server/server.h"

namespace fairrank {
namespace {

constexpr int kNumWorkersRows = 150;

std::map<std::string, std::unique_ptr<Table>> MakeTables() {
  GeneratorOptions options;
  options.num_workers = kNumWorkersRows;
  options.seed = 7;
  StatusOr<Table> table = GenerateWorkers(options);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  std::map<std::string, std::unique_ptr<Table>> tables;
  tables["synthetic"] = std::make_unique<Table>(std::move(table).value());
  return tables;
}

/// A started server plus the thread hosting Serve(). Stop() drains and
/// joins; the destructor stops too, so a failing ASSERT can't hang a test.
struct RunningServer {
  std::unique_ptr<FairAuditServer> server;
  std::thread serve_thread;
  Status serve_status = Status::OK();

  ~RunningServer() { Stop(); }

  void Stop() {
    if (!serve_thread.joinable()) return;
    server->RequestShutdown();
    serve_thread.join();
  }
};

std::unique_ptr<RunningServer> StartServer(ServerOptions options) {
  auto running = std::make_unique<RunningServer>();
  running->server = std::make_unique<FairAuditServer>(
      MakeTables(), "synthetic", std::move(options));
  Status started = running->server->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  if (!started.ok()) return running;
  FairAuditServer* server = running->server.get();
  Status* status = &running->serve_status;
  running->serve_thread =
      std::thread([server, status] { *status = server->Serve(); });
  return running;
}

ServerOptions DefaultOptions() {
  ServerOptions options;
  options.port = 0;
  options.num_workers = 3;
  options.request_timeout_ceiling_ms = 30000;
  // Off by default so repeated identical requests exercise the full pipeline
  // (fault injection, admission) instead of replaying a cached body; the
  // cache tests opt back in.
  options.response_cache_mb = 0;
  return options;
}

HttpFetchResult Fetch(const RunningServer& running, const std::string& target,
                      int64_t timeout_ms = 30000) {
  StatusOr<HttpFetchResult> result = HttpFetch(
      "127.0.0.1", running.server->port(), "GET", target, "", timeout_ms);
  EXPECT_TRUE(result.ok()) << target << ": " << result.status().ToString();
  return result.ok() ? std::move(result).value() : HttpFetchResult{};
}

/// Strips the wall-clock-dependent fields from an audit JSON body so two
/// runs of the same deterministic audit compare bit-identically.
std::string StripVolatile(std::string body) {
  for (const char* key : {"\"seconds\":", "\"nodes_per_sec\":",
                          "\"ingest_seconds\":", "\"audit_seconds\":"}) {
    size_t pos = 0;
    while ((pos = body.find(key, pos)) != std::string::npos) {
      size_t end = body.find_first_of(",}", pos);
      if (end == std::string::npos) end = body.size();
      // Leaves a doubled comma behind; both sides of every comparison are
      // stripped by this same function, so the artifacts align.
      body.erase(pos, end - pos);
    }
  }
  return body;
}

TEST(ServerTest, HealthzStatsAndNotFound) {
  auto running = StartServer(DefaultOptions());
  HttpFetchResult health = Fetch(*running, "/healthz");
  EXPECT_EQ(health.status_code, 200);
  EXPECT_NE(health.body.find("\"ok\""), std::string::npos);

  HttpFetchResult stats = Fetch(*running, "/stats");
  EXPECT_EQ(stats.status_code, 200);
  EXPECT_NE(stats.body.find("\"in_flight\":"), std::string::npos);
  EXPECT_NE(stats.body.find("\"budget\":"), std::string::npos);

  HttpFetchResult missing = Fetch(*running, "/nope");
  EXPECT_EQ(missing.status_code, 404);
  EXPECT_NE(missing.body.find("\"code\":\"NotFound\""), std::string::npos);
}

TEST(ServerTest, AuditEndpointMatchesLibrary) {
  auto running = StartServer(DefaultOptions());
  HttpFetchResult response =
      Fetch(*running, "/audit?function=f6&algorithm=unbalanced&seed=3");
  ASSERT_EQ(response.status_code, 200) << response.body;

  // The same audit straight through the library, using the same defaults
  // the handler's flag parsing applies.
  GeneratorOptions gen;
  gen.num_workers = kNumWorkersRows;
  gen.seed = 7;
  StatusOr<Table> table = GenerateWorkers(gen);
  ASSERT_TRUE(table.ok());
  StatusOr<std::unique_ptr<ScoringFunction>> fn = MakeFunctionFromSpec("f6");
  ASSERT_TRUE(fn.ok());
  AuditOptions options;
  options.algorithm = "unbalanced";
  options.seed = 3;
  FairnessAuditor auditor(&table.value());
  StatusOr<AuditResult> direct = auditor.Audit(**fn, options);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  std::string expected = StripVolatile(FormatAuditJson(*direct));
  std::string actual = StripVolatile(response.body);
  // The body ends with a newline-less JSON object; compare modulo trailing
  // whitespace.
  while (!actual.empty() && (actual.back() == '\n' || actual.back() == '\r')) {
    actual.pop_back();
  }
  EXPECT_EQ(actual, expected);
}

TEST(ServerTest, AggregateAuditEndpointMatchesLibrary) {
  auto running = StartServer(DefaultOptions());
  // ingest-threads is clamped to max_request_threads (1 here); results are
  // bit-identical across thread counts, so only the echoed thread count in
  // the body depends on the clamp.
  HttpFetchResult response =
      Fetch(*running, "/audit?function=f6&aggregate=1&ingest-threads=2");
  ASSERT_EQ(response.status_code, 200) << response.body;

  GeneratorOptions gen;
  gen.num_workers = kNumWorkersRows;
  gen.seed = 7;
  Table table = GenerateWorkers(gen).value();
  StatusOr<std::unique_ptr<ScoringFunction>> fn = MakeFunctionFromSpec("f6");
  ASSERT_TRUE(fn.ok());
  StatusOr<std::vector<double>> scores = (*fn)->ScoreAll(table);
  ASSERT_TRUE(scores.ok());
  StatusOr<CellStore> store = BuildCellStoreParallel(table, *scores);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  StatusOr<AggregateAuditResult> result = AuditAggregateBalanced(*store);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  AggregateReportInfo info;
  info.scoring_function = (*fn)->Name();
  info.ingest_threads = 1;

  std::string expected =
      StripVolatile(FormatAggregateAuditJson(*store, *result, info));
  std::string actual = StripVolatile(response.body);
  while (!actual.empty() && (actual.back() == '\n' || actual.back() == '\r')) {
    actual.pop_back();
  }
  EXPECT_EQ(actual, expected);

  // The canonicalizer folds aggregate params into the cache key by
  // iterating FlagNames(), so the aggregate and row-level bodies can never
  // alias: sanity-check they differ.
  HttpFetchResult row_level = Fetch(*running, "/audit?function=f6");
  ASSERT_EQ(row_level.status_code, 200) << row_level.body;
  EXPECT_NE(row_level.body, response.body);
}

TEST(ServerTest, BadInputFailsStructurallyNotFatally) {
  auto running = StartServer(DefaultOptions());
  // Unknown query parameter: the misspelled limit must 400, exactly like a
  // misspelled CLI flag.
  HttpFetchResult typo = Fetch(*running, "/audit?function=f6&max-node=5");
  EXPECT_EQ(typo.status_code, 400);
  EXPECT_NE(typo.body.find("unknown flag --max-node"), std::string::npos);

  // Unknown function spec.
  HttpFetchResult bad_fn = Fetch(*running, "/audit?function=nosuch");
  EXPECT_EQ(bad_fn.status_code, 400);
  EXPECT_NE(bad_fn.body.find("unknown function spec"), std::string::npos);

  // Negative limit: rejected before the int64 -> uint64 cast can wrap it
  // into a near-infinite budget.
  HttpFetchResult negative = Fetch(*running, "/audit?function=f6&max-nodes=-1");
  EXPECT_EQ(negative.status_code, 400);
  EXPECT_NE(negative.body.find("--max-nodes must be >= 0"), std::string::npos);

  // Unknown dataset.
  HttpFetchResult no_data = Fetch(*running, "/audit?function=f6&dataset=prod");
  EXPECT_EQ(no_data.status_code, 400);
  EXPECT_NE(no_data.body.find("unknown dataset"), std::string::npos);

  // The process survived all of it.
  EXPECT_EQ(Fetch(*running, "/healthz").status_code, 200);
}

TEST(ServerTest, SuiteEndpointRunsGrid) {
  auto running = StartServer(DefaultOptions());
  HttpFetchResult response = Fetch(
      *running,
      "/suite?functions=alpha:0.25,f6&algorithms=unbalanced,balanced&seed=5");
  ASSERT_EQ(response.status_code, 200) << response.body;
  EXPECT_NE(response.body.find("\"cells\""), std::string::npos);
  EXPECT_NE(response.body.find("\"unbalanced\""), std::string::npos);
}

TEST(ServerTest, ChaosDivergenceFaultIsolatedToOneRequest) {
  auto running = StartServer(DefaultOptions());
  const std::string target = "/audit?function=f6&algorithm=unbalanced&seed=3";

  // Fault-free baseline for the bit-identical comparison.
  HttpFetchResult baseline = Fetch(*running, target);
  ASSERT_EQ(baseline.status_code, 200);

  // Arm: the next (1st) divergence evaluation process-wide fails. Exactly
  // one of the three concurrent requests hits it; the library surfaces it
  // as an Internal error, the server as a structured 500 on that request
  // alone.
  std::vector<HttpFetchResult> results(3);
  {
    fault::FaultPlan plan;
    plan.fail_divergence_eval = 1;
    fault::ScopedFaultPlan armed(plan);
    std::vector<std::thread> clients;
    clients.reserve(results.size());
    for (size_t i = 0; i < results.size(); ++i) {
      clients.emplace_back([&running, &results, &target, i] {
        StatusOr<HttpFetchResult> r = HttpFetch(
            "127.0.0.1", running->server->port(), "GET", target, "", 30000);
        if (r.ok()) results[i] = std::move(r).value();
      });
    }
    for (std::thread& t : clients) t.join();
  }

  int failures = 0;
  for (const HttpFetchResult& r : results) {
    if (r.status_code == 500) {
      ++failures;
      EXPECT_NE(r.body.find("fault injection"), std::string::npos) << r.body;
    } else {
      ASSERT_EQ(r.status_code, 200) << r.body;
      EXPECT_EQ(StripVolatile(r.body), StripVolatile(baseline.body));
    }
  }
  EXPECT_EQ(failures, 1);

  // The process survived the chaos.
  EXPECT_EQ(Fetch(*running, "/healthz").status_code, 200);
}

TEST(ServerTest, ChaosStallWithDeadlineReturnsTruncated) {
  auto running = StartServer(DefaultOptions());
  // Stall the first parallel chunk well past the request deadline: the
  // request must still come back — 200 with truncated: true — instead of
  // hanging or erroring.
  fault::FaultPlan plan;
  plan.stall_chunk = 0;
  plan.stall_ms = 150;
  fault::ScopedFaultPlan armed(plan);
  HttpFetchResult response = Fetch(
      *running, "/audit?function=f6&algorithm=unbalanced&timeout-ms=40");
  ASSERT_EQ(response.status_code, 200) << response.body;
  EXPECT_NE(response.body.find("\"truncated\":true"), std::string::npos)
      << response.body;
}

TEST(ServerTest, AdmissionShedsOnceProcessBudgetExhausts) {
  ServerOptions options = DefaultOptions();
  options.max_total_nodes = 10;  // Tiny aggregate allowance.
  options.retry_after_ms = 333;
  auto running = StartServer(options);

  // First request: admitted (budget untouched), runs, and truncates when
  // the process-level parent budget trips mid-search — a bounded answer,
  // not an error.
  HttpFetchResult first =
      Fetch(*running, "/audit?function=f6&algorithm=unbalanced");
  ASSERT_EQ(first.status_code, 200) << first.body;
  EXPECT_NE(first.body.find("\"truncated\":true"), std::string::npos);

  // From now on admission must latch: no headroom, so audit work is shed
  // with a structured 503 + retry_after_ms before any search runs.
  for (int i = 0; i < 2; ++i) {
    HttpFetchResult shed =
        Fetch(*running, "/audit?function=f6&algorithm=unbalanced");
    EXPECT_EQ(shed.status_code, 503) << shed.body;
    EXPECT_NE(shed.body.find("budget_exhausted"), std::string::npos);
    EXPECT_NE(shed.body.find("\"retry_after_ms\":333"), std::string::npos);
  }

  // /stats proves the aggregate bound: nodes_used may overshoot max_nodes
  // by at most the final bulk charge of the one admitted request (the
  // budget's documented granularity), never by another admitted search.
  HttpFetchResult stats = Fetch(*running, "/stats");
  ASSERT_EQ(stats.status_code, 200);
  size_t pos = stats.body.find("\"nodes_used\":");
  ASSERT_NE(pos, std::string::npos);
  uint64_t nodes_used = std::stoull(stats.body.substr(pos + 13));
  EXPECT_LE(nodes_used, 10u + 64u) << stats.body;
  EXPECT_NE(stats.body.find("\"budget_exhausted\":2"), std::string::npos)
      << stats.body;

  // /healthz and /stats stay available even with the budget gone.
  EXPECT_EQ(Fetch(*running, "/healthz").status_code, 200);
}

TEST(ServerTest, OverloadShedsWith429) {
  ServerOptions options = DefaultOptions();
  options.num_workers = 3;
  options.max_inflight_audits = 1;
  auto running = StartServer(options);

  // One slow audit (exhaustive, deadline-bounded) occupies the single
  // in-flight slot; a concurrent audit must shed 429 "overloaded" while
  // /healthz keeps answering.
  std::thread slow([&running] {
    StatusOr<HttpFetchResult> r = HttpFetch(
        "127.0.0.1", running->server->port(), "GET",
        "/audit?function=f6&algorithm=exhaustive&timeout-ms=800", "", 30000);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_EQ(r->status_code, 200) << r->body;
    }
  });

  // Poll until the slow request is in flight, then fire the contender.
  bool shed_seen = false;
  for (int attempt = 0; attempt < 50 && !shed_seen; ++attempt) {
    HttpFetchResult contender =
        Fetch(*running, "/audit?function=f6&algorithm=unbalanced");
    if (contender.status_code == 429) {
      EXPECT_NE(contender.body.find("overloaded"), std::string::npos);
      shed_seen = true;
    }
  }
  EXPECT_TRUE(shed_seen);
  EXPECT_EQ(Fetch(*running, "/healthz").status_code, 200);
  slow.join();
}

// ---------------------------------------------------------------------------
// HTTP parsing hardening: pure string-level tests of the edge cases the
// wire-level tests below exercise end to end.

TEST(HttpParseTest, DuplicateContentLengthRejected) {
  StatusOr<HttpRequest> r = ParseRequestHead(
      "GET / HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\nContent-Length: 3");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("duplicate content-length"),
            std::string::npos);
}

TEST(HttpParseTest, DuplicateTransferEncodingRejected) {
  StatusOr<HttpRequest> r = ParseRequestHead(
      "POST / HTTP/1.1\r\nTransfer-Encoding: identity\r\n"
      "Transfer-Encoding: chunked");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("duplicate transfer-encoding"),
            std::string::npos);
}

TEST(HttpParseTest, OtherDuplicateHeadersMergeAsList) {
  StatusOr<HttpRequest> r = ParseRequestHead(
      "GET / HTTP/1.1\r\nAccept: a\r\nAccept: b");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->headers.at("accept"), "a, b");
}

TEST(HttpParseTest, HeaderCountLimitIsOutOfRange) {
  HttpSizeLimits limits;
  limits.max_header_count = 2;
  StatusOr<HttpRequest> r = ParseRequestHead(
      "GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3", limits);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(HttpParseTest, TransferEncodingIdentityListAccepted) {
  StatusOr<HttpRequest> r = ParseRequestHead(
      "POST / HTTP/1.1\r\nTransfer-Encoding: identity , identity\r\n"
      "Content-Length: 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  StatusOr<size_t> length = ContentLength(*r, HttpSizeLimits{});
  ASSERT_TRUE(length.ok()) << length.status().ToString();
  EXPECT_EQ(*length, 2u);
}

TEST(HttpParseTest, ChunkedTransferEncodingIsUnimplemented) {
  StatusOr<HttpRequest> r =
      ParseRequestHead("POST / HTTP/1.1\r\nTransfer-Encoding: chunked");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  StatusOr<size_t> length = ContentLength(*r, HttpSizeLimits{});
  ASSERT_FALSE(length.ok());
  EXPECT_EQ(length.status().code(), StatusCode::kUnimplemented);
}

TEST(HttpParseTest, KeepAliveDefaultsFollowHttpVersion) {
  auto parse = [](const char* head) {
    StatusOr<HttpRequest> r = ParseRequestHead(head);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  };
  EXPECT_TRUE(RequestWantsKeepAlive(parse("GET / HTTP/1.1")));
  EXPECT_FALSE(
      RequestWantsKeepAlive(parse("GET / HTTP/1.1\r\nConnection: close")));
  EXPECT_FALSE(RequestWantsKeepAlive(parse("GET / HTTP/1.0")));
  EXPECT_TRUE(RequestWantsKeepAlive(
      parse("GET / HTTP/1.0\r\nConnection: keep-alive")));
}

// ---------------------------------------------------------------------------
// Wire-level tests: raw sockets (sanctioned in tests/) for malformed input
// the HttpClient cannot be convinced to send.

/// Sends raw bytes on a fresh blocking connection and reads to EOF.
std::string RawRoundTrip(int port, const std::string& wire) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr)),
            0);
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

TEST(ServerTest, DuplicateContentLengthIsStructured400OnTheWire) {
  auto running = StartServer(DefaultOptions());
  std::string response = RawRoundTrip(
      running->server->port(),
      "GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n"
      "Content-Length: 0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400 "), std::string::npos) << response;
  EXPECT_NE(response.find("duplicate content-length"), std::string::npos)
      << response;
  // The error tore the connection down (recv hit EOF above) and the server
  // survived.
  EXPECT_EQ(Fetch(*running, "/healthz").status_code, 200);
}

TEST(ServerTest, TooManyHeadersIs431OnTheWire) {
  auto running = StartServer(DefaultOptions());
  std::string wire = "GET /healthz HTTP/1.1\r\nHost: t\r\n";
  for (int i = 0; i < 80; ++i) {
    wire += "X-Padding-" + std::to_string(i) + ": v\r\n";
  }
  wire += "\r\n";
  std::string response = RawRoundTrip(running->server->port(), wire);
  EXPECT_NE(response.find("HTTP/1.1 431 "), std::string::npos) << response;
  EXPECT_EQ(Fetch(*running, "/healthz").status_code, 200);
}

TEST(ServerTest, ChunkedBodyIs501OnTheWire) {
  auto running = StartServer(DefaultOptions());
  std::string response = RawRoundTrip(
      running->server->port(),
      "POST /audit HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n"
      "\r\n0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 501 "), std::string::npos) << response;
  EXPECT_NE(response.find("not supported"), std::string::npos) << response;
}

// ---------------------------------------------------------------------------
// Keep-alive and the response cache.

TEST(ServerTest, KeepAliveServesTwoRequestsOnOneConnection) {
  auto running = StartServer(DefaultOptions());
  const std::string target = "/audit?function=f6&algorithm=unbalanced&seed=3";

  // Two fresh connections (the pre-keep-alive cost model)...
  HttpFetchResult fresh1 = Fetch(*running, target);
  HttpFetchResult fresh2 = Fetch(*running, target);
  ASSERT_EQ(fresh1.status_code, 200);

  // ...and two requests on ONE kept-alive connection.
  HttpClient client("127.0.0.1", running->server->port());
  StatusOr<HttpFetchResult> kept1 = client.Fetch("GET", target, "", 30000);
  StatusOr<HttpFetchResult> kept2 = client.Fetch("GET", target, "", 30000);
  ASSERT_TRUE(kept1.ok()) << kept1.status().ToString();
  ASSERT_TRUE(kept2.ok()) << kept2.status().ToString();
  EXPECT_EQ(client.connects(), 1u) << "second request reopened a connection";
  ASSERT_EQ(kept1->status_code, 200);
  ASSERT_EQ(kept2->status_code, 200);

  // Bit-identical to the fresh-connection bodies modulo wall-clock fields
  // (the cache is off here, so every response is computed independently).
  EXPECT_EQ(StripVolatile(kept1->body), StripVolatile(fresh1.body));
  EXPECT_EQ(StripVolatile(kept2->body), StripVolatile(fresh2.body));

  // /stats counts the reuse.
  HttpFetchResult stats = Fetch(*running, "/stats");
  EXPECT_EQ(stats.body.find("\"keep_alive_reuses\":0"), std::string::npos)
      << stats.body;
}

TEST(ServerTest, ResponseCacheHitIsByteIdentical) {
  ServerOptions options = DefaultOptions();
  options.response_cache_mb = 8;
  auto running = StartServer(options);
  const std::string target = "/audit?function=f6&algorithm=unbalanced&seed=3";

  HttpFetchResult first = Fetch(*running, target);   // Miss: computes.
  HttpFetchResult second = Fetch(*running, target);  // Hit: replays.
  ASSERT_EQ(first.status_code, 200);
  ASSERT_EQ(second.status_code, 200);
  // Byte-identical INCLUDING the wall-clock fields — only a replay of the
  // stored body can achieve that; an independent recomputation would differ
  // in "seconds".
  EXPECT_EQ(second.body, first.body);

  // The canonicalized key ignores flag spelling: '_' vs '-' and query order
  // hit the same entry.
  HttpFetchResult spelled =
      Fetch(*running, "/audit?algorithm=unbalanced&seed=3&function=f6");
  EXPECT_EQ(spelled.body, first.body);

  HttpFetchResult stats = Fetch(*running, "/stats");
  EXPECT_NE(stats.body.find("\"response_cache\":{"), std::string::npos);
  EXPECT_EQ(stats.body.find("\"hits\":0,"), std::string::npos) << stats.body;
}

TEST(ServerTest, ResponseCacheConcurrentIdenticalRequestsAreDeterministic) {
  ServerOptions options = DefaultOptions();
  options.response_cache_mb = 8;
  auto running = StartServer(options);
  const std::string target =
      "/audit?function=alpha:0.5&algorithm=unbalanced&seed=5";

  // A burst of identical requests races misses against the first insert;
  // every response must be a complete 200 regardless of who won.
  std::vector<HttpFetchResult> results(8);
  std::vector<std::thread> clients;
  clients.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    clients.emplace_back([&running, &results, &target, i] {
      StatusOr<HttpFetchResult> r = HttpFetch(
          "127.0.0.1", running->server->port(), "GET", target, "", 30000);
      if (r.ok()) results[i] = std::move(r).value();
    });
  }
  for (std::thread& t : clients) t.join();
  for (const HttpFetchResult& r : results) {
    ASSERT_EQ(r.status_code, 200) << r.body;
    EXPECT_EQ(StripVolatile(r.body), StripVolatile(results[0].body));
  }

  // Once the dust settles the cache serves one canonical body: two
  // sequential fetches are byte-identical.
  HttpFetchResult settled1 = Fetch(*running, target);
  HttpFetchResult settled2 = Fetch(*running, target);
  EXPECT_EQ(settled1.body, settled2.body);
}

TEST(ServerTest, ResponseCacheEvictsUnderByteCapAndChargesBudget) {
  ServerOptions options = DefaultOptions();
  options.response_cache_mb = 1;  // Small cap so distinct keys overflow it.
  auto running = StartServer(options);

  // Distinct seeds are distinct cache keys; enough of them must overflow
  // the 1 MB cap (bodies run a few hundred bytes each) and trigger LRU
  // eviction.
  for (int seed = 1; seed <= 1800; ++seed) {
    HttpFetchResult r = Fetch(
        *running, "/audit?function=f6&algorithm=unbalanced&seed=" +
                      std::to_string(seed));
    ASSERT_EQ(r.status_code, 200) << r.body;
  }

  HttpFetchResult stats = Fetch(*running, "/stats");
  ASSERT_EQ(stats.status_code, 200);
  size_t pos = stats.body.find("\"response_cache\":{");
  ASSERT_NE(pos, std::string::npos);
  std::string cache_json =
      stats.body.substr(pos, stats.body.find('}', pos) - pos);
  EXPECT_EQ(cache_json.find("\"evictions\":0"), std::string::npos)
      << cache_json;
  EXPECT_EQ(cache_json.find("\"insertions\":0"), std::string::npos)
      << cache_json;

  // Resident bytes respect the cap...
  size_t bytes_pos = cache_json.find("\"bytes_used\":");
  ASSERT_NE(bytes_pos, std::string::npos);
  uint64_t bytes_used = std::stoull(cache_json.substr(bytes_pos + 13));
  EXPECT_LE(bytes_used, uint64_t{1} << 20) << cache_json;
  EXPECT_GT(bytes_used, 0u) << cache_json;

  // ...and cache memory was charged to the process budget: the cumulative
  // memory axis must have absorbed at least the currently-resident bytes.
  size_t mem_pos = stats.body.find("\"memory_used_bytes\":");
  ASSERT_NE(mem_pos, std::string::npos);
  uint64_t memory_used = std::stoull(stats.body.substr(mem_pos + 20));
  EXPECT_GE(memory_used, bytes_used) << stats.body;
}

// ---------------------------------------------------------------------------
// Telemetry surfaces: /metrics, request ids, access logs, slow-request dumps.

TEST(ServerTest, MetricsEndpointServesPrometheusFamilies) {
  auto running = StartServer(DefaultOptions());
  // Drive the pipeline once so the audit/pipeline counters are live.
  HttpFetchResult audit =
      Fetch(*running, "/audit?function=f6&algorithm=unbalanced&seed=3");
  ASSERT_EQ(audit.status_code, 200) << audit.body;

  HttpFetchResult metrics = Fetch(*running, "/metrics");
  ASSERT_EQ(metrics.status_code, 200);
  EXPECT_NE(metrics.head.find("text/plain; version=0.0.4"), std::string::npos)
      << metrics.head;
  // Server-layer families.
  EXPECT_NE(metrics.body.find(
                "fairrank_http_requests_total{endpoint=\"/audit\"} 1"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("# TYPE fairrank_http_request_duration_seconds"),
            std::string::npos);
  EXPECT_NE(metrics.body.find(
                "fairrank_http_request_duration_seconds{endpoint=\"/audit\","
                "quantile=\"0.5\"}"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("fairrank_http_shed_total{reason=\"total\"} 0"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("fairrank_http_in_flight_count"),
            std::string::npos);
  // Process-registry families fed by the library pipeline. The registry is
  // process-global (cumulative across every test in this binary), so assert
  // presence and non-zero rather than exact values.
  EXPECT_NE(metrics.body.find("# TYPE fairrank_audits_total counter"),
            std::string::npos);
  EXPECT_EQ(metrics.body.find("fairrank_audits_total 0\n"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("fairrank_pipeline_emd_computations_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("fairrank_audit_search_seconds_count"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("fairrank_budget_nodes_used_count"),
            std::string::npos);
}

TEST(ServerTest, StatsAndMetricsQuantilesReadTheSameSketch) {
  auto running = StartServer(DefaultOptions());
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(
        Fetch(*running, "/audit?function=f6&algorithm=unbalanced&seed=3")
            .status_code,
        200);
  }

  // /stats reports milliseconds (3 decimals), /metrics seconds (6 decimals)
  // — 1 µs resolution both ways, read off the SAME per-endpoint GK sketch.
  // The /stats fetch itself lands in the "/stats" sketch, so the "/audit"
  // sketch is identical across the two scrapes.
  HttpFetchResult stats = Fetch(*running, "/stats");
  HttpFetchResult metrics = Fetch(*running, "/metrics");
  ASSERT_EQ(stats.status_code, 200);
  ASSERT_EQ(metrics.status_code, 200);

  size_t audit_pos = stats.body.find("\"/audit\"");
  ASSERT_NE(audit_pos, std::string::npos) << stats.body;
  size_t p50_pos = stats.body.find("\"p50_ms\":", audit_pos);
  ASSERT_NE(p50_pos, std::string::npos) << stats.body;
  const double stats_p50_ms = std::stod(stats.body.substr(p50_pos + 9));

  const std::string needle =
      "fairrank_http_request_duration_seconds{endpoint=\"/audit\","
      "quantile=\"0.5\"} ";
  size_t metric_pos = metrics.body.find(needle);
  ASSERT_NE(metric_pos, std::string::npos) << metrics.body;
  const double metrics_p50_seconds =
      std::stod(metrics.body.substr(metric_pos + needle.size()));

  EXPECT_GT(stats_p50_ms, 0.0);
  EXPECT_NEAR(stats_p50_ms, metrics_p50_seconds * 1000.0, 0.002);
}

TEST(ServerTest, RequestIdIsEchoedOrMintedOnEveryResponse) {
  auto running = StartServer(DefaultOptions());
  const int port = running->server->port();

  // A valid client-supplied id comes back verbatim.
  StatusOr<HttpFetchResult> echoed =
      HttpFetch("127.0.0.1", port, "GET", "/healthz", "", 30000,
                "X-Request-Id: client-id-42\r\n");
  ASSERT_TRUE(echoed.ok());
  EXPECT_NE(echoed->head.find("X-Request-Id: client-id-42"),
            std::string::npos)
      << echoed->head;

  // Errors echo too — the id is how a client correlates its failure.
  StatusOr<HttpFetchResult> error =
      HttpFetch("127.0.0.1", port, "GET", "/nope", "", 30000,
                "X-Request-Id: err-7\r\n");
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->status_code, 404);
  EXPECT_NE(error->head.find("X-Request-Id: err-7"), std::string::npos)
      << error->head;

  // No client id: the server mints one.
  HttpFetchResult minted = Fetch(*running, "/healthz");
  EXPECT_NE(minted.head.find("X-Request-Id: req-"), std::string::npos)
      << minted.head;

  // An invalid id (too long) is replaced by a minted one, not echoed.
  const std::string oversized(65, 'x');
  StatusOr<HttpFetchResult> replaced =
      HttpFetch("127.0.0.1", port, "GET", "/healthz", "", 30000,
                "X-Request-Id: " + oversized + "\r\n");
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced->head.find(oversized), std::string::npos);
  EXPECT_NE(replaced->head.find("X-Request-Id: req-"), std::string::npos)
      << replaced->head;
}

TEST(ServerTest, ShedResponsesCarryTheRequestId) {
  ServerOptions options = DefaultOptions();
  options.max_total_nodes = 10;
  auto running = StartServer(options);

  // Exhaust the process budget, then a shed 503 must still echo the id.
  ASSERT_EQ(Fetch(*running, "/audit?function=f6&algorithm=unbalanced")
                .status_code,
            200);
  StatusOr<HttpFetchResult> shed = HttpFetch(
      "127.0.0.1", running->server->port(), "GET",
      "/audit?function=f6&algorithm=unbalanced", "", 30000,
      "X-Request-Id: shed-correlate-1\r\n");
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->status_code, 503) << shed->body;
  EXPECT_NE(shed->head.find("X-Request-Id: shed-correlate-1"),
            std::string::npos)
      << shed->head;
}

TEST(ServerTest, AccessLogAndSlowRequestDump) {
  ServerOptions options = DefaultOptions();
  options.access_log = true;
  options.slow_request_ms = 1;  // Any audit exceeds 1 ms: every one dumps.
  std::mutex log_mutex;
  std::vector<std::string> lines;
  options.log_sink = [&log_mutex, &lines](const std::string& line) {
    std::lock_guard<std::mutex> lock(log_mutex);
    lines.push_back(line);
  };
  auto running = StartServer(std::move(options));

  // Deadline-bounded exhaustive search: runs ~50 ms (then truncates), which
  // reliably crosses the 1 ms slow threshold; a plain unbalanced audit on
  // 150 rows can finish in under a millisecond.
  StatusOr<HttpFetchResult> response = HttpFetch(
      "127.0.0.1", running->server->port(), "GET",
      "/audit?function=f6&algorithm=exhaustive&timeout-ms=50", "", 30000,
      "X-Request-Id: slow-1\r\n");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status_code, 200) << response->body;
  running->Stop();  // Flushes: no more sink calls after join.

  std::lock_guard<std::mutex> lock(log_mutex);
  bool saw_access_line = false;
  bool saw_slow_dump = false;
  for (const std::string& line : lines) {
    if (line.find("\"request_id\":\"slow-1\"") != std::string::npos &&
        line.find("\"path\":\"/audit\"") != std::string::npos) {
      saw_access_line = true;
      EXPECT_NE(line.find("\"status\":200"), std::string::npos) << line;
      EXPECT_NE(line.find("\"trace_id\":\""), std::string::npos) << line;
    }
    if (line.find("slow request slow-1") != std::string::npos) {
      saw_slow_dump = true;
      // The dump is the span tree: audit root with search/report children.
      EXPECT_NE(line.find("- audit "), std::string::npos) << line;
      EXPECT_NE(line.find("  - search "), std::string::npos) << line;
      EXPECT_NE(line.find("totals:"), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(saw_access_line) << lines.size() << " lines captured";
  EXPECT_TRUE(saw_slow_dump) << lines.size() << " lines captured";
}

TEST(ServerTest, DrainClosesIdleKeptAliveConnectionPromptly) {
  ServerOptions options = DefaultOptions();
  options.keep_alive_idle_ms = 30000;  // Idle expiry alone would take 30 s.
  options.drain_grace_ms = 200;
  auto running = StartServer(options);

  // Park a kept-alive connection in the between-requests idle wait.
  HttpClient client("127.0.0.1", running->server->port());
  StatusOr<HttpFetchResult> first = client.Fetch("GET", "/healthz", "", 5000);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status_code, 200);

  // Drain must close that idle connection promptly — well before the 30 s
  // idle deadline — or Serve() (and this Stop()) would hang on the worker
  // parked in ReadRequest.
  Stopwatch watch;
  running->server->RequestShutdown();
  running->serve_thread.join();
  EXPECT_LT(watch.ElapsedMillis(), 5000.0);
  EXPECT_TRUE(running->serve_status.ok())
      << running->serve_status.ToString();

  // The kept-alive socket is dead; a fresh request finds no listener.
  StatusOr<HttpFetchResult> after = client.Fetch("GET", "/healthz", "", 500);
  EXPECT_FALSE(after.ok());
}

TEST(ServerTest, DrainCancelsStragglersAndExitsCleanly) {
  ServerOptions options = DefaultOptions();
  options.drain_grace_ms = 50;
  auto running = StartServer(options);

  // A request that would run for ~20s without intervention; drain's grace
  // window (50 ms) expires first, cancellation fires, and the request comes
  // back truncated with reason "cancelled" instead of being dropped.
  std::thread straggler([&running] {
    StatusOr<HttpFetchResult> r = HttpFetch(
        "127.0.0.1", running->server->port(), "GET",
        "/audit?function=f6&algorithm=exhaustive&timeout-ms=20000", "", 30000);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) {
      EXPECT_EQ(r->status_code, 200) << r->body;
      EXPECT_NE(r->body.find("\"truncated\":true"), std::string::npos)
          << r->body;
      EXPECT_NE(r->body.find("\"exhaustion_reason\":\"cancelled\""),
                std::string::npos)
          << r->body;
    }
  });

  // Let the straggler get admitted before draining.
  for (int attempt = 0; attempt < 500; ++attempt) {
    HttpFetchResult stats = Fetch(*running, "/stats");
    if (stats.body.find("\"in_flight\":1") != std::string::npos) break;
  }

  running->server->RequestShutdown();
  running->serve_thread.join();
  EXPECT_TRUE(running->serve_status.ok())
      << running->serve_status.ToString();
  straggler.join();

  // The final stats flush still works after Serve() returned.
  std::string final_stats = running->server->StatsJson();
  EXPECT_NE(final_stats.find("\"draining\":true"), std::string::npos);
  EXPECT_NE(final_stats.find("\"/audit\""), std::string::npos);
}

}  // namespace
}  // namespace fairrank
