#include "marketplace/ranking.h"

#include <gtest/gtest.h>

#include "marketplace/generator.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

Table Workers(size_t n = 100) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = 4;
  return GenerateWorkers(options).value();
}

TEST(RankingTest, SortedDescending) {
  Table workers = Workers();
  RankingEngine engine(&workers);
  auto fn = MakeAlphaFunction("f1", 0.5);
  auto ranking = engine.Rank(*fn);
  ASSERT_TRUE(ranking.ok());
  ASSERT_EQ(ranking->size(), workers.num_rows());
  for (size_t i = 1; i < ranking->size(); ++i) {
    EXPECT_GE((*ranking)[i - 1].score, (*ranking)[i].score);
  }
}

TEST(RankingTest, CoversEveryRowOnce) {
  Table workers = Workers();
  RankingEngine engine(&workers);
  auto ranking = engine.Rank(*MakeAlphaFunction("f1", 0.5)).value();
  std::vector<bool> seen(workers.num_rows(), false);
  for (const RankedWorker& r : ranking) {
    EXPECT_FALSE(seen[r.row]);
    seen[r.row] = true;
  }
}

TEST(RankingTest, TopKClamps) {
  Table workers = Workers(10);
  RankingEngine engine(&workers);
  auto fn = MakeAlphaFunction("f1", 0.5);
  EXPECT_EQ(engine.TopK(*fn, 3).value().size(), 3u);
  EXPECT_EQ(engine.TopK(*fn, 100).value().size(), 10u);
}

TEST(RankingTest, TopKIsPrefixOfFullRanking) {
  Table workers = Workers();
  RankingEngine engine(&workers);
  auto fn = MakeAlphaFunction("f1", 0.5);
  auto full = engine.Rank(*fn).value();
  auto top = engine.TopK(*fn, 5).value();
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].row, full[i].row);
  }
}

TEST(RankingTest, TiesBreakByRowIndex) {
  // Constant scores: stable sort must keep row order.
  auto schema = MakeToySchema();
  ASSERT_TRUE(schema.ok());
  Table table(*schema);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        table.AppendRow({std::string("Male"), std::string("English"), 0.5})
            .ok());
  }
  RankingEngine engine(&table);
  LinearScoringFunction fn("s", {{"Score", 1.0}});
  auto ranking = engine.Rank(fn).value();
  for (size_t i = 0; i < ranking.size(); ++i) EXPECT_EQ(ranking[i].row, i);
}

TEST(RankingTest, QueryInducedRanking) {
  Table workers = Workers();
  RankingEngine engine(&workers);
  TaskQuery query;
  query.description = "html gig";
  query.weights = {{worker_attrs::kLanguageTest, 0.2},
                   {worker_attrs::kApprovalRate, 0.8}};
  auto ranking = engine.Rank(query);
  ASSERT_TRUE(ranking.ok());
  EXPECT_EQ(ranking->size(), workers.num_rows());
}

TEST(RankingTest, BadQueryPropagatesError) {
  Table workers = Workers();
  RankingEngine engine(&workers);
  TaskQuery query;
  query.weights = {{"Bogus", 1.0}};
  EXPECT_FALSE(engine.Rank(query).ok());
}

}  // namespace
}  // namespace fairrank
