#include "marketplace/biased_scoring.h"

#include <gtest/gtest.h>

#include "marketplace/generator.h"
#include "marketplace/worker.h"

namespace fairrank {
namespace {

namespace wa = worker_attrs;

Table Workers(size_t n = 400, uint64_t seed = 3) {
  GeneratorOptions options;
  options.num_workers = n;
  options.seed = seed;
  return GenerateWorkers(options).value();
}

TEST(BiasedScoringTest, F6SeparatesGenders) {
  Table workers = Workers();
  auto f6 = MakeF6(11);
  auto scores = f6->ScoreAll(workers).value();
  size_t gender = workers.schema().FindIndex(wa::kGender).value();
  for (size_t row = 0; row < workers.num_rows(); ++row) {
    if (workers.column(gender).CodeAt(row) == 0) {  // Male.
      EXPECT_GE(scores[row], 0.8);
    } else {
      EXPECT_LT(scores[row], 0.2);
    }
  }
}

TEST(BiasedScoringTest, F7GenderCountryRules) {
  Table workers = Workers();
  auto f7 = MakeF7(12);
  auto scores = f7->ScoreAll(workers).value();
  size_t gender = workers.schema().FindIndex(wa::kGender).value();
  size_t country = workers.schema().FindIndex(wa::kCountry).value();
  for (size_t row = 0; row < workers.num_rows(); ++row) {
    bool male = workers.column(gender).CodeAt(row) == 0;
    std::string c = workers.CellToString(row, country);
    double s = scores[row];
    if (c == "India") {
      EXPECT_GE(s, 0.5);
      EXPECT_LT(s, 0.7);
    } else if (c == "America") {
      if (male) EXPECT_GE(s, 0.8);
      else EXPECT_LT(s, 0.2);
    } else {  // Other.
      if (male) EXPECT_LT(s, 0.2);
      else EXPECT_GE(s, 0.8);
    }
  }
}

TEST(BiasedScoringTest, F8FemaleRulesAndMaleDefault) {
  Table workers = Workers();
  auto f8 = MakeF8(13);
  auto scores = f8->ScoreAll(workers).value();
  size_t gender = workers.schema().FindIndex(wa::kGender).value();
  size_t country = workers.schema().FindIndex(wa::kCountry).value();
  for (size_t row = 0; row < workers.num_rows(); ++row) {
    double s = scores[row];
    if (workers.column(gender).CodeAt(row) == 1) {  // Female.
      std::string c = workers.CellToString(row, country);
      if (c == "America") EXPECT_GE(s, 0.8);
      else if (c == "India") { EXPECT_GE(s, 0.5); EXPECT_LT(s, 0.8); }
      else EXPECT_LT(s, 0.2);
    } else {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(BiasedScoringTest, F9UsesEthnicityLanguageBirth) {
  Table workers = Workers(800);
  auto f9 = MakeF9(14);
  auto scores = f9->ScoreAll(workers).value();
  size_t ethnicity = workers.schema().FindIndex(wa::kEthnicity).value();
  size_t language = workers.schema().FindIndex(wa::kLanguage).value();
  size_t yob = workers.schema().FindIndex(wa::kYearOfBirth).value();
  for (size_t row = 0; row < workers.num_rows(); ++row) {
    double s = scores[row];
    std::string e = workers.CellToString(row, ethnicity);
    std::string l = workers.CellToString(row, language);
    int64_t year = workers.column(yob).IntAt(row);
    if (e == "White" && l == "English" && year <= 1979) {
      EXPECT_GE(s, 0.8);
    } else if (e == "Indian" || l == "Indian") {
      EXPECT_GE(s, 0.5);
      EXPECT_LT(s, 0.7);
    } else {
      EXPECT_LT(s, 0.2);
    }
  }
}

TEST(BiasedScoringTest, DeterministicAcrossCalls) {
  Table workers = Workers();
  auto f7 = MakeF7(21);
  EXPECT_EQ(f7->ScoreAll(workers).value(), f7->ScoreAll(workers).value());
}

TEST(BiasedScoringTest, SeedChangesScoresNotRanges) {
  Table workers = Workers();
  auto a = MakeF6(1)->ScoreAll(workers).value();
  auto b = MakeF6(2)->ScoreAll(workers).value();
  EXPECT_NE(a, b);
}

TEST(BiasedScoringTest, FirstMatchingRuleWins) {
  // Two rules both matching males; the first must apply.
  std::vector<BiasRule> rules;
  rules.push_back({{BiasCondition::Equals(wa::kGender, "Male")}, 0.9, 1.0});
  rules.push_back({{BiasCondition::Equals(wa::kGender, "Male")}, 0.0, 0.1});
  BiasedScoringFunction fn("test", rules, 5);
  Table workers = Workers(100);
  auto scores = fn.ScoreAll(workers).value();
  size_t gender = workers.schema().FindIndex(wa::kGender).value();
  for (size_t row = 0; row < workers.num_rows(); ++row) {
    if (workers.column(gender).CodeAt(row) == 0) {
      EXPECT_GE(scores[row], 0.9);
    }
  }
}

TEST(BiasedScoringTest, EmptyConditionListMatchesEveryone) {
  std::vector<BiasRule> rules;
  rules.push_back({{}, 0.4, 0.5});
  BiasedScoringFunction fn("catch-all", rules, 5);
  Table workers = Workers(50);
  std::vector<double> scores = fn.ScoreAll(workers).value();
  for (double s : scores) {
    EXPECT_GE(s, 0.4);
    EXPECT_LT(s, 0.5);
  }
}

TEST(BiasedScoringTest, DegenerateRangeYieldsConstant) {
  std::vector<BiasRule> rules;
  rules.push_back({{}, 0.5, 0.5});
  BiasedScoringFunction fn("const", rules, 5);
  Table workers = Workers(20);
  std::vector<double> scores = fn.ScoreAll(workers).value();
  for (double s : scores) EXPECT_DOUBLE_EQ(s, 0.5);
}

TEST(BiasedScoringTest, UnknownAttributeFails) {
  std::vector<BiasRule> rules;
  rules.push_back({{BiasCondition::Equals("Nope", "x")}, 0.0, 1.0});
  BiasedScoringFunction fn("bad", rules, 5);
  Table workers = Workers(10);
  EXPECT_EQ(fn.ScoreAll(workers).status().code(), StatusCode::kNotFound);
}

TEST(BiasedScoringTest, UnknownCategoryFails) {
  std::vector<BiasRule> rules;
  rules.push_back({{BiasCondition::Equals(wa::kGender, "Robot")}, 0.0, 1.0});
  BiasedScoringFunction fn("bad", rules, 5);
  Table workers = Workers(10);
  EXPECT_EQ(fn.ScoreAll(workers).status().code(), StatusCode::kNotFound);
}

TEST(BiasedScoringTest, RangeConditionOnCategoricalFails) {
  std::vector<BiasRule> rules;
  rules.push_back({{BiasCondition::InRange(wa::kGender, 0, 1)}, 0.0, 1.0});
  BiasedScoringFunction fn("bad", rules, 5);
  Table workers = Workers(10);
  EXPECT_EQ(fn.ScoreAll(workers).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BiasedScoringTest, CategoricalConditionOnNumericFails) {
  std::vector<BiasRule> rules;
  rules.push_back(
      {{BiasCondition::Equals(wa::kYearOfBirth, "1960")}, 0.0, 1.0});
  BiasedScoringFunction fn("bad", rules, 5);
  Table workers = Workers(10);
  EXPECT_EQ(fn.ScoreAll(workers).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BiasedScoringTest, InvertedScoreRangeFails) {
  std::vector<BiasRule> rules;
  rules.push_back({{}, 0.9, 0.1});
  BiasedScoringFunction fn("bad", rules, 5);
  Table workers = Workers(10);
  EXPECT_EQ(fn.ScoreAll(workers).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BiasedScoringTest, PaperBiasedFamilyHasFourFunctions) {
  auto fns = MakePaperBiasedFunctions(42);
  ASSERT_EQ(fns.size(), 4u);
  EXPECT_NE(fns[0]->Name().find("f6"), std::string::npos);
  EXPECT_NE(fns[3]->Name().find("f9"), std::string::npos);
}

}  // namespace
}  // namespace fairrank
