#include "data/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace fairrank {
namespace {

Schema MakeTestSchema() {
  Schema schema;
  EXPECT_TRUE(schema
                  .AddAttribute(AttributeSpec::Categorical(
                      "Gender", AttributeRole::kProtected, {"Male", "Female"}))
                  .ok());
  EXPECT_TRUE(schema
                  .AddAttribute(AttributeSpec::Integer(
                      "Age", AttributeRole::kProtected, 18, 80, 5))
                  .ok());
  EXPECT_TRUE(schema
                  .AddAttribute(AttributeSpec::Real(
                      "Rating", AttributeRole::kObserved, 0.0, 5.0, 10))
                  .ok());
  return schema;
}

TEST(ParseCsvRecordTest, SimpleFields) {
  auto fields = ParseCsvRecord("a,b,c", ',');
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParseCsvRecordTest, QuotedFieldWithDelimiter) {
  auto fields = ParseCsvRecord("\"a,b\",c", ',');
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a,b", "c"}));
}

TEST(ParseCsvRecordTest, EscapedQuotes) {
  auto fields = ParseCsvRecord("\"say \"\"hi\"\"\",x", ',');
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "say \"hi\"");
}

TEST(ParseCsvRecordTest, EmptyFields) {
  auto fields = ParseCsvRecord(",,", ',');
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 3u);
}

TEST(ParseCsvRecordTest, TrailingCarriageReturn) {
  auto fields = ParseCsvRecord("a,b\r", ',');
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b"}));
}

TEST(ParseCsvRecordTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsvRecord("\"abc", ',').ok());
}

TEST(ParseCsvRecordTest, QuoteMidFieldFails) {
  EXPECT_FALSE(ParseCsvRecord("ab\"c\",d", ',').ok());
}

TEST(ReadCsvTest, HeaderMatchingByName) {
  std::istringstream in(
      "Rating,Gender,Age\n"
      "4.5,Male,30\n"
      "2.0,Female,55\n");
  auto table = ReadCsv(in, MakeTestSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->CellToString(0, 0), "Male");
  EXPECT_EQ(table->column(1).IntAt(1), 55);
  EXPECT_DOUBLE_EQ(table->column(2).RealAt(0), 4.5);
}

TEST(ReadCsvTest, ExtraColumnsIgnored) {
  std::istringstream in(
      "Gender,Nick,Age,Rating\n"
      "Male,zed,30,4.5\n");
  auto table = ReadCsv(in, MakeTestSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 1u);
}

TEST(ReadCsvTest, MissingColumnFails) {
  std::istringstream in("Gender,Age\nMale,30\n");
  auto table = ReadCsv(in, MakeTestSchema());
  EXPECT_EQ(table.status().code(), StatusCode::kNotFound);
}

TEST(ReadCsvTest, EmptyStreamFails) {
  std::istringstream in("");
  EXPECT_EQ(ReadCsv(in, MakeTestSchema()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ReadCsvTest, BlankLinesSkipped) {
  std::istringstream in(
      "Gender,Age,Rating\n"
      "\n"
      "Male,30,4.5\n"
      "   \n");
  auto table = ReadCsv(in, MakeTestSchema());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1u);
}

TEST(ReadCsvTest, BadCellReportsLineNumber) {
  std::istringstream in(
      "Gender,Age,Rating\n"
      "Male,30,4.5\n"
      "Male,notanumber,1.0\n");
  auto table = ReadCsv(in, MakeTestSchema());
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("line 3"), std::string::npos);
}

TEST(ReadCsvTest, ShortRowFails) {
  std::istringstream in(
      "Gender,Age,Rating\n"
      "Male,30\n");
  EXPECT_FALSE(ReadCsv(in, MakeTestSchema()).ok());
}

TEST(ReadCsvTest, NoHeaderPositional) {
  std::istringstream in("Male,30,4.5\n");
  CsvOptions options;
  options.has_header = false;
  auto table = ReadCsv(in, MakeTestSchema(), options);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(table->CellToString(0, 0), "Male");
}

TEST(ReadCsvTest, CustomDelimiter) {
  std::istringstream in(
      "Gender;Age;Rating\n"
      "Female;44;3.5\n");
  CsvOptions options;
  options.delimiter = ';';
  auto table = ReadCsv(in, MakeTestSchema(), options);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->CellToString(0, 0), "Female");
}

TEST(ParseCsvRecordTest, MaxFieldBytesEnforced) {
  EXPECT_TRUE(ParseCsvRecord("abcde,xyz", ',', 5).ok());
  EXPECT_EQ(ParseCsvRecord("abcdef,xyz", ',', 5).status().code(),
            StatusCode::kResourceExhausted);
  // A quoted field swallowing the delimiter counts its full contents.
  EXPECT_EQ(ParseCsvRecord("\"abc,def\",x", ',', 5).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ReadCsvTest, Utf8BomStripped) {
  std::istringstream in(
      "\xEF\xBB\xBFGender,Age,Rating\n"
      "Male,30,4.5\n");
  auto table = ReadCsv(in, MakeTestSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(table->CellToString(0, 0), "Male");
}

TEST(ReadCsvTest, Utf8BomStrippedWithoutHeader) {
  std::istringstream in("\xEF\xBB\xBFMale,30,4.5\n");
  CsvOptions options;
  options.has_header = false;
  auto table = ReadCsv(in, MakeTestSchema(), options);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->CellToString(0, 0), "Male");
}

TEST(ReadCsvTest, RaggedRowFailsWithLineNumber) {
  // Row 3 has an extra field; silent acceptance would mean misaligned
  // columns whenever a field contains an unquoted delimiter.
  std::istringstream in(
      "Gender,Age,Rating\n"
      "Male,30,4.5\n"
      "Female,55,2.0,stray\n");
  auto table = ReadCsv(in, MakeTestSchema());
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(table.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(table.status().message().find("ragged"), std::string::npos);
}

TEST(ReadCsvTest, RaggedRowCheckedAgainstFirstRowWhenHeaderless) {
  std::istringstream in(
      "Male,30,4.5\n"
      "Female,55,2.0,stray\n");
  CsvOptions options;
  options.has_header = false;
  auto table = ReadCsv(in, MakeTestSchema(), options);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(table.status().message().find("line 2"), std::string::npos);
}

TEST(ReadCsvTest, MaxRowsEnforced) {
  std::istringstream in(
      "Gender,Age,Rating\n"
      "Male,30,4.5\n"
      "Female,55,2.0\n"
      "Male,40,3.0\n");
  CsvOptions options;
  options.max_rows = 2;
  auto table = ReadCsv(in, MakeTestSchema(), options);
  EXPECT_EQ(table.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(table.status().message().find("max_rows"), std::string::npos);
}

TEST(ReadCsvTest, MaxRowsNotTrippedAtTheLimit) {
  std::istringstream in(
      "Gender,Age,Rating\n"
      "Male,30,4.5\n"
      "Female,55,2.0\n");
  CsvOptions options;
  options.max_rows = 2;
  auto table = ReadCsv(in, MakeTestSchema(), options);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 2u);
}

TEST(ReadCsvTest, MaxFieldBytesAppliesToRows) {
  std::istringstream in(
      "Gender,Age,Rating\n"
      "Male,30,4.5\n"
      "Male,300000000,4.5\n");
  CsvOptions options;
  options.max_field_bytes = 6;
  auto table = ReadCsv(in, MakeTestSchema(), options);
  EXPECT_EQ(table.status().code(), StatusCode::kResourceExhausted);
}

TEST(WriteCsvTest, RoundTrip) {
  Table table(MakeTestSchema());
  ASSERT_TRUE(table.AppendRow({std::string("Male"), int64_t{30}, 4.5}).ok());
  ASSERT_TRUE(table.AppendRow({std::string("Female"), int64_t{55}, 2.0}).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(out, table).ok());

  std::istringstream in(out.str());
  auto round = ReadCsv(in, MakeTestSchema());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->num_rows(), 2u);
  EXPECT_EQ(round->CellToString(1, 0), "Female");
  EXPECT_EQ(round->column(1).IntAt(0), 30);
}

TEST(WriteCsvTest, QuotesFieldsWithDelimiters) {
  Schema schema;
  ASSERT_TRUE(schema
                  .AddAttribute(AttributeSpec::Categorical(
                      "City", AttributeRole::kOther, {"Paris, France"}))
                  .ok());
  Table table(schema);
  ASSERT_TRUE(table.AppendRow({std::string("Paris, France")}).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(out, table).ok());
  EXPECT_NE(out.str().find("\"Paris, France\""), std::string::npos);
}

TEST(ReadCsvFileTest, MissingFileFails) {
  EXPECT_EQ(
      ReadCsvFile("/nonexistent/path.csv", MakeTestSchema()).status().code(),
      StatusCode::kIOError);
}

TEST(CsvFileTest, FileRoundTrip) {
  Table table(MakeTestSchema());
  ASSERT_TRUE(table.AppendRow({std::string("Male"), int64_t{25}, 1.5}).ok());
  std::string path = ::testing::TempDir() + "/fairrank_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  auto round = ReadCsvFile(path, MakeTestSchema());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->num_rows(), 1u);
}

}  // namespace
}  // namespace fairrank
