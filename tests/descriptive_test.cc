#include "stats/descriptive.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairrank {
namespace {

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}).value(), 2.0);
  EXPECT_DOUBLE_EQ(Mean({-1.0, 1.0}).value(), 0.0);
  EXPECT_FALSE(Mean({}).ok());
}

TEST(DescribeTest, KnownSample) {
  auto s = Describe({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->count, 8u);
  EXPECT_DOUBLE_EQ(s->mean, 5.0);
  EXPECT_DOUBLE_EQ(s->variance, 4.0);
  EXPECT_DOUBLE_EQ(s->stddev, 2.0);
  EXPECT_DOUBLE_EQ(s->min, 2.0);
  EXPECT_DOUBLE_EQ(s->max, 9.0);
  EXPECT_DOUBLE_EQ(s->median, 4.5);
}

TEST(DescribeTest, SingleValue) {
  auto s = Describe({3.0});
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->variance, 0.0);
  EXPECT_DOUBLE_EQ(s->median, 3.0);
}

TEST(DescribeTest, EmptyFails) { EXPECT_FALSE(Describe({}).ok()); }

TEST(QuantileTest, Interpolation) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0).value(), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5).value(), 2.5);
  EXPECT_NEAR(Quantile(v, 1.0 / 3.0).value(), 2.0, 1e-12);
}

TEST(QuantileTest, UnsortedInput) {
  EXPECT_DOUBLE_EQ(Quantile({4.0, 1.0, 3.0, 2.0}, 0.5).value(), 2.5);
}

TEST(QuantileTest, BadInputs) {
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  EXPECT_FALSE(Quantile({1.0}, -0.1).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.1).ok());
}

TEST(PearsonTest, PerfectCorrelations) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(x, y).value(), 1.0, 1e-12);
  std::vector<double> z = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, z).value(), -1.0, 1e-12);
}

TEST(PearsonTest, UncorrelatedIsSmall) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {1.0, -1.0, -1.0, 1.0};
  EXPECT_NEAR(PearsonCorrelation(x, y).value(), 0.0, 1e-9);
}

TEST(PearsonTest, FailureModes) {
  EXPECT_FALSE(PearsonCorrelation({1.0}, {2.0}).ok());
  EXPECT_FALSE(PearsonCorrelation({1.0, 2.0}, {2.0}).ok());
  EXPECT_EQ(PearsonCorrelation({1.0, 1.0}, {1.0, 2.0}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y;
  for (double v : x) y.push_back(std::exp(v));  // Monotone, nonlinear.
  EXPECT_NEAR(SpearmanCorrelation(x, y).value(), 1.0, 1e-12);
}

TEST(SpearmanTest, HandlesTies) {
  std::vector<double> x = {1.0, 2.0, 2.0, 3.0};
  std::vector<double> y = {10.0, 20.0, 20.0, 30.0};
  EXPECT_NEAR(SpearmanCorrelation(x, y).value(), 1.0, 1e-12);
}

TEST(SpearmanTest, ReversedIsMinusOne) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {9.0, 5.0, 1.0};
  EXPECT_NEAR(SpearmanCorrelation(x, y).value(), -1.0, 1e-12);
}

}  // namespace
}  // namespace fairrank
